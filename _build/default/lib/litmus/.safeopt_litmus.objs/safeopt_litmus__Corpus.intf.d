lib/litmus/corpus.mli: Litmus
