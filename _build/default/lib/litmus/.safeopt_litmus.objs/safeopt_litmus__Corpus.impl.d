lib/litmus/corpus.ml: List Litmus
