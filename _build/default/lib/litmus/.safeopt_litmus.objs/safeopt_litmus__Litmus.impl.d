lib/litmus/litmus.ml: Ast Behaviour Fmt Interp List Parser Safeopt_exec Safeopt_lang
