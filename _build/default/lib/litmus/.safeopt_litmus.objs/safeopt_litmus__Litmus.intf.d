lib/litmus/litmus.mli: Ast Behaviour Fmt Safeopt_exec Safeopt_lang
