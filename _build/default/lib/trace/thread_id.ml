type t = int

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b
let hash (t : t) = Hashtbl.hash t
let pp = Fmt.int
