(** Traces: sequences of memory actions of a single thread (section 3).

    This module provides the list/indexing vocabulary the paper uses:
    prefixes, [dom]/[ldom], filtered sublists [t|S], and the
    well-formedness conditions imposed on members of a traceset
    (well-lockedness and properly-started-ness). *)

type t = Action.t list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val to_string : t -> string

val length : t -> int

val nth : t -> int -> Action.t
(** [nth t i] is the action [t_i] (0-based).  @raise Invalid_argument if
    [i] is out of [dom t]. *)

val dom : t -> int list
(** [ldom t = [0; ...; length t - 1]], the indices of [t] in increasing
    order (the paper's [ldom]; [dom] is the same set). *)

val is_prefix : t -> t -> bool
(** [is_prefix t t'] iff [t <= t'], i.e. [t' = t ++ s] for some [s]. *)

val is_strict_prefix : t -> t -> bool

val prefixes : t -> t list
(** All prefixes of [t], shortest first, including [[]] and [t]. *)

val restrict : t -> int list -> t
(** [restrict t is] is the paper's [t|S]: the sublist of [t] whose
    indices are in [is].  Indices out of range are ignored; [is] need not
    be sorted (it is sorted and deduplicated internally). *)

val complement : t -> int list -> int list
(** [complement t is] is [dom t \ is], sorted increasing. *)

val filteri : (int -> Action.t -> bool) -> t -> t
(** The paper's map-filter [\[a <- t. P(a)\]] restricted to filtering. *)

val indices_where : (int -> Action.t -> bool) -> t -> int list

val well_locked : t -> bool
(** For each monitor [m], no prefix of [t] contains more unlocks of [m]
    than locks of [m] (section 3).  Checking every prefix (rather than
    just the whole trace) matches the paper's requirement on tracesets,
    which are prefix-closed. *)

val properly_started : t -> bool
(** A non-empty trace must begin with a start action (section 3). *)

val lock_depth : t -> Monitor.t -> int
(** Number of locks of [m] minus number of unlocks of [m] in [t]. *)

val locations : t -> Location.Set.t
(** All locations accessed by reads or writes in [t]. *)

val has_release_acquire_pair_between : Location.Volatile.t -> t -> int -> int -> bool
(** [has_release_acquire_pair_between vol t i j] iff there are indices
    [i < r < a < j] such that [t_r] is a release and [t_a] is an acquire
    (Definition 1's "release-acquire pair between [i] and [j]").

    Note: the release and the acquire need not be a matching pair; the
    definition only requires a release strictly followed by an acquire,
    both strictly between the endpoints. *)

val final_values : t -> Value.t Location.Map.t
(** The value last written to each location in [t] (used by tests and the
    TSO machine; not part of the paper's definitions). *)
