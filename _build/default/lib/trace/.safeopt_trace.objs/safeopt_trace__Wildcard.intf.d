lib/trace/wildcard.mli: Action Fmt Location Seq Trace Value
