lib/trace/syntax.ml: Action Fmt List String Wildcard
