lib/trace/trace.ml: Action Fmt Fun Int List Location Monitor Option Printf
