lib/trace/thread_id.ml: Fmt Hashtbl Int
