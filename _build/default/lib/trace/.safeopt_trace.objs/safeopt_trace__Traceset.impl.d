lib/trace/traceset.ml: Action Fmt Int List Location Seq Set Thread_id Trace Value Wildcard
