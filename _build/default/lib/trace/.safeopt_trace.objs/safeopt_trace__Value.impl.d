lib/trace/value.ml: Fmt Hashtbl Int
