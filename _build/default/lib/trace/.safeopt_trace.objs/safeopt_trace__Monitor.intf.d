lib/trace/monitor.mli: Fmt Map
