lib/trace/trace.mli: Action Fmt Location Monitor Value
