lib/trace/traceset.mli: Fmt Location Thread_id Trace Value Wildcard
