lib/trace/action.mli: Fmt Location Monitor Thread_id Value
