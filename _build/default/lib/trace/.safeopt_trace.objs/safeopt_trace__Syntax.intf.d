lib/trace/syntax.mli: Action Trace Wildcard
