lib/trace/monitor.ml: Fmt Hashtbl Map String
