lib/trace/wildcard.ml: Action Fmt Int List Location Seq Value
