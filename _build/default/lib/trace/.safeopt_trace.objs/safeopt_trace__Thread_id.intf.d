lib/trace/thread_id.mli: Fmt
