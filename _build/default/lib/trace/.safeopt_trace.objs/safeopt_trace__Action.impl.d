lib/trace/action.ml: Fmt Hashtbl Int Location Monitor Thread_id Value
