lib/trace/location.mli: Fmt Map Set
