lib/trace/location.ml: Fmt Hashtbl Map Set String
