lib/trace/value.mli: Fmt
