(** Thread identifiers.

    The paper creates threads statically and uses thread identifiers as
    entry points (section 3), so a thread id is just the index of the
    thread in the parallel composition. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t
