type t = string

let equal = String.equal
let compare = String.compare
let hash (l : t) = Hashtbl.hash l
let pp = Fmt.string

module Set = Set.Make (String)
module Map = Map.Make (String)

module Volatile = struct
  type t = Set.t

  let none = Set.empty
  let of_list = Set.of_list
  let to_list = Set.elements
  let mem vs l = Set.mem l vs
  let add = Set.add
  let is_empty = Set.is_empty
  let equal = Set.equal
  let pp ppf vs = Fmt.(braces (list ~sep:comma string)) ppf (Set.elements vs)
end
