module S = Set.Make (struct
  type t = Trace.t

  let compare = Trace.compare
end)

type t = S.t

let empty = S.add [] S.empty
let is_empty s = S.is_empty (S.remove [] s)
let cardinal = S.cardinal
let mem t s = S.mem t s

let add t s =
  List.fold_left (fun s p -> S.add p s) s (Trace.prefixes t)

let union = S.union
let equal = S.equal
let subset = S.subset
let of_list ts = List.fold_left (fun s t -> add t s) empty ts

let to_list s =
  S.elements s
  |> List.sort (fun a b ->
         let c = Int.compare (Trace.length a) (Trace.length b) in
         if c <> 0 then c else Trace.compare a b)

let maximal s =
  S.elements s
  |> List.filter (fun t ->
         not (S.exists (fun t' -> Trace.is_strict_prefix t t') s))

let elements_of_thread tid s =
  S.elements s
  |> List.filter (fun t ->
         match t with
         | Action.Start tid' :: _ -> Thread_id.equal tid tid'
         | _ -> false)

let thread_ids s =
  S.fold
    (fun t acc ->
      match t with
      | Action.Start tid :: _ when not (List.mem tid acc) -> tid :: acc
      | _ -> acc)
    s []
  |> List.sort Thread_id.compare

let filter p s = of_list (List.filter p (S.elements s))
let map_traces f s = of_list (List.map f (S.elements s))
let iter f s = S.iter f s
let fold f s init = S.fold f s init
let pp ppf s = Fmt.(braces (list ~sep:semi Trace.pp)) ppf (to_list s)

let prefix_closed s =
  S.for_all
    (fun t -> List.for_all (fun p -> S.mem p s) (Trace.prefixes t))
    s

let well_locked s = S.for_all Trace.well_locked s
let properly_started s = S.for_all Trace.properly_started s
let well_formed s = prefix_closed s && well_locked s && properly_started s

let belongs_to s w ~universe =
  if Wildcard.wildcard_count w = 0 then
    match Wildcard.to_trace w with Some t -> mem t s | None -> false
  else Seq.for_all (fun t -> mem t s) (Wildcard.instances ~universe w)

let locations s =
  S.fold (fun t acc -> Location.Set.union (Trace.locations t) acc) s
    Location.Set.empty

let values s =
  S.fold
    (fun t acc ->
      List.fold_left
        (fun acc a ->
          match Action.value a with Some v -> v :: acc | None -> acc)
        acc t)
    s []
  |> List.sort_uniq Value.compare
