(** Values manipulated by programs and carried by memory actions.

    The paper's language (Fig. 6) computes over natural numbers with
    equality tests only; we model values as OCaml [int]s.  Every memory
    location is zero-initialised, so [default] is [0] (paper, section 2). *)

type t = int

val default : t
(** The default (initial) value of every location: [0]. *)

val is_default : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : t Fmt.t
val to_string : t -> string
