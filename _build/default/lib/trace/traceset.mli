(** Explicit finite tracesets (section 3).

    A program denotes a set of traces of its individual threads.  The
    paper requires tracesets to be (i) prefix-closed, (ii) well-locked,
    and (iii) properly started.  Programs with unconstrained reads have
    infinite tracesets; this module is the {e explicit} representation
    used by the semantic-transformation checkers on bounded examples.
    The intensional representation (a membership oracle backed by the
    small-step semantics) lives in [Safeopt_lang.Denote]. *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int

val mem : Trace.t -> t -> bool
val add : Trace.t -> t -> t
(** [add t s] adds [t] {e and all its prefixes} (preserving prefix
    closure). *)

val union : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val of_list : Trace.t list -> t
(** Prefix closure of the given traces. *)

val to_list : t -> Trace.t list
(** All traces, shortest first, then lexicographic. *)

val maximal : t -> Trace.t list
(** The traces of [t] that are not strict prefixes of another trace of
    [t]. *)

val elements_of_thread : Thread_id.t -> t -> Trace.t list
(** Traces whose start action is [S(tid)] (plus the empty trace is
    excluded). *)

val thread_ids : t -> Thread_id.t list

val filter : (Trace.t -> bool) -> t -> t
(** [filter p s] keeps traces satisfying [p]; the result is re-prefix-
    closed, so this is mainly useful with prefix-closed predicates. *)

val map_traces : (Trace.t -> Trace.t) -> t -> t
(** Apply a function to every trace and re-close under prefixes. *)

val iter : (Trace.t -> unit) -> t -> unit
val fold : (Trace.t -> 'a -> 'a) -> t -> 'a -> 'a
val pp : t Fmt.t

(** {1 Well-formedness (paper, section 3)} *)

val prefix_closed : t -> bool
val well_locked : t -> bool
val properly_started : t -> bool

val well_formed : t -> bool
(** Conjunction of the three conditions above. *)

val belongs_to : t -> Wildcard.t -> universe:Value.t list -> bool
(** [belongs_to s w ~universe]: do {e all} instances of [w] over
    [universe] lie in [s]?  This is the paper's "belongs-to" restricted
    to a finite value universe (see DESIGN.md on the small-model
    argument). *)

val locations : t -> Location.Set.t
val values : t -> Value.t list
(** All values occurring in actions of the traceset, sorted, distinct. *)
