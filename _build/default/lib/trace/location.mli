(** Shared-memory locations.

    Locations are named; in the paper's examples they are the variables
    [x], [y], [z], ...  A location is either {e normal} or {e volatile};
    volatility is not a property of the location name itself but of the
    program it occurs in (paper, section 2: "the set of volatile locations
    should be part of a program"), so it is carried separately as a
    {!Volatile.t} set. *)

type t = string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** The set of volatile locations of a program. *)
module Volatile : sig
  type location := t

  type t
  (** An immutable set of location names designated volatile. *)

  val none : t
  (** No location is volatile (the default in the paper's examples). *)

  val of_list : location list -> t
  val to_list : t -> location list
  val mem : t -> location -> bool
  val add : location -> t -> t
  val is_empty : t -> bool
  val equal : t -> t -> bool
  val pp : t Fmt.t
end
