type t = int

let default = 0
let is_default v = v = default
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b
let hash (v : t) = Hashtbl.hash v
let pp = Fmt.int
let to_string = string_of_int
