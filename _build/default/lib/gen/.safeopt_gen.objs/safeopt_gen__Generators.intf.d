lib/gen/generators.mli: Action Ast Location QCheck2 Safeopt_lang Safeopt_trace Trace Wildcard
