lib/gen/generators.ml: Action Ast Interp List Location Monitor Option Pp QCheck2 Safeopt_lang Safeopt_trace Trace Wildcard
