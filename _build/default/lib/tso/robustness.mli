(** Robustness enforcement: compile-for-TSO by restoring data race
    freedom.

    The DRF guarantee transported to hardware (paper, sections 1 and 8):
    a data-race-free program has no observable store-buffering weakness,
    because every TSO reordering is covered by the safe transformations
    and those cannot change DRF behaviours.  So the cheapest way to
    make a program SC-on-TSO is to make it DRF — here by promoting
    raced locations to volatile (compilers would emit fences or
    lock-prefixed instructions for those accesses; in the paper's
    language, volatility is exactly that annotation).

    {!enforce} iterates the race detector: each witness execution ends
    in an adjacent conflicting pair on some location; that location is
    promoted and the search repeats until the program is DRF.  This is
    a coarse but sound fence-inference (a delay-set analysis would be
    finer-grained); minimality is not guaranteed. *)

open Safeopt_trace
open Safeopt_lang

val raced_location :
  ?fuel:int -> ?max_states:int -> Ast.program -> Location.t option
(** The location of the adjacent conflicting pair of some racy
    execution, if the program has one. *)

val enforce :
  ?fuel:int ->
  ?max_states:int ->
  Ast.program ->
  Ast.program * Location.t list
(** The program with enough locations promoted to volatile to be data
    race free, and the promoted locations (possibly empty).  Terminates:
    each iteration promotes a fresh location and there are finitely
    many. *)

val is_robust : ?fuel:int -> ?max_states:int -> Ast.program -> bool
(** No TSO-weak behaviours ({!Machine.weak_behaviours} is empty). *)
