open Safeopt_trace
open Safeopt_exec
open Safeopt_lang

(* Per-thread, per-location FIFO buffers; list newest-first. *)
type 'ts state = {
  threads : 'ts array;
  buffers : Value.t list Location.Map.t array;
  mem : Value.t Location.Map.t;
  locks : (Thread_id.t * int) Monitor.Map.t;
}

let state_key sys st =
  let b = Buffer.create 64 in
  Array.iter
    (fun ts ->
      Buffer.add_string b (sys.System.key ts);
      Buffer.add_char b '\x00')
    st.threads;
  Buffer.add_char b '\x01';
  Array.iter
    (fun bufs ->
      Location.Map.iter
        (fun l vs ->
          Buffer.add_string b l;
          Buffer.add_char b '=';
          List.iter (fun v -> Buffer.add_string b (string_of_int v ^ ",")) vs;
          Buffer.add_char b ';')
        bufs;
      Buffer.add_char b '\x00')
    st.buffers;
  Buffer.add_char b '\x01';
  Location.Map.iter
    (fun l v -> Buffer.add_string b (Printf.sprintf "%s=%d;" l v))
    st.mem;
  Buffer.add_char b '\x01';
  Monitor.Map.iter
    (fun m (o, d) -> Buffer.add_string b (Printf.sprintf "%s=%d,%d;" m o d))
    st.locks;
  Buffer.contents b

let buffer_of st tid l =
  Option.value ~default:[] (Location.Map.find_opt l st.buffers.(tid))

let buffers_empty st tid = Location.Map.for_all (fun _ vs -> vs = []) st.buffers.(tid)

let read_value st tid l =
  match buffer_of st tid l with
  | v :: _ -> v (* newest pending write to l *)
  | [] -> Option.value ~default:Value.default (Location.Map.find_opt l st.mem)

let transitions vol sys st =
  let out = ref [] in
  (* Drain: the oldest entry of any per-location queue. *)
  Array.iteri
    (fun tid bufs ->
      Location.Map.iter
        (fun l vs ->
          match List.rev vs with
          | [] -> ()
          | oldest :: _ ->
              let vs' = List.filteri (fun i _ -> i < List.length vs - 1) vs in
              let buffers = Array.copy st.buffers in
              buffers.(tid) <-
                (if vs' = [] then Location.Map.remove l bufs
                 else Location.Map.add l vs' bufs);
              out :=
                (None, { st with buffers; mem = Location.Map.add l oldest st.mem })
                :: !out)
        bufs)
    st.buffers;
  (* Thread steps. *)
  Array.iteri
    (fun tid ts ->
      List.iter
        (fun step ->
          match step with
          | System.Read (l, k) -> (
              let v = read_value st tid l in
              match k v with
              | Some ts' ->
                  let threads = Array.copy st.threads in
                  threads.(tid) <- ts';
                  out := (Some (Action.Read (l, v)), { st with threads }) :: !out
              | None -> ())
          | System.Emit (a, ts') -> (
              let commit st' =
                let threads = Array.copy st'.threads in
                threads.(tid) <- ts';
                out := (Some a, { st' with threads }) :: !out
              in
              match a with
              | Action.Read _ ->
                  invalid_arg "Pso: reads must use System.Read steps"
              | Action.Write (l, v) ->
                  if Location.Volatile.mem vol l then begin
                    if buffers_empty st tid then
                      commit { st with mem = Location.Map.add l v st.mem }
                  end
                  else begin
                    let buffers = Array.copy st.buffers in
                    buffers.(tid) <-
                      Location.Map.add l (v :: buffer_of st tid l)
                        st.buffers.(tid);
                    commit { st with buffers }
                  end
              | Action.Lock m ->
                  if buffers_empty st tid then (
                    match Monitor.Map.find_opt m st.locks with
                    | None ->
                        commit
                          { st with locks = Monitor.Map.add m (tid, 1) st.locks }
                    | Some (owner, d) when Thread_id.equal owner tid ->
                        commit
                          {
                            st with
                            locks = Monitor.Map.add m (tid, d + 1) st.locks;
                          }
                    | Some _ -> ())
              | Action.Unlock m ->
                  if buffers_empty st tid then (
                    match Monitor.Map.find_opt m st.locks with
                    | Some (owner, d) when Thread_id.equal owner tid ->
                        let locks =
                          if d = 1 then Monitor.Map.remove m st.locks
                          else Monitor.Map.add m (tid, d - 1) st.locks
                        in
                        commit { st with locks }
                    | _ -> ())
              | Action.External _ | Action.Start _ -> commit st))
        (sys.System.steps ts))
    st.threads;
  List.rev !out

let behaviours ?(max_states = Enumerate.default_max_states) vol sys =
  let memo : (string, Behaviour.Set.t) Hashtbl.t = Hashtbl.create 997 in
  let on_stack : (string, unit) Hashtbl.t = Hashtbl.create 97 in
  let count = ref 0 in
  let rec go st =
    let k = state_key sys st in
    match Hashtbl.find_opt memo k with
    | Some s -> s
    | None ->
        if Hashtbl.mem on_stack k then raise Enumerate.Cyclic;
        Hashtbl.add on_stack k ();
        incr count;
        if !count > max_states then raise (Enumerate.Too_many_states !count);
        let s =
          List.fold_left
            (fun acc (a, st') ->
              let sub = go st' in
              let sub =
                match a with
                | Some (Action.External v) ->
                    Behaviour.Set.map (fun b -> v :: b) sub
                | _ -> sub
              in
              Behaviour.Set.union acc sub)
            (Behaviour.Set.singleton [])
            (transitions vol sys st)
        in
        Hashtbl.remove on_stack k;
        Hashtbl.replace memo k s;
        s
  in
  go
    {
      threads = Array.of_list sys.System.initial;
      buffers =
        Array.make (List.length sys.System.initial) Location.Map.empty;
      mem = Location.Map.empty;
      locks = Monitor.Map.empty;
    }

let program_behaviours ?fuel ?max_states (p : Ast.program) =
  behaviours ?max_states p.Ast.volatile (Thread_system.make ?fuel p)

let weak_behaviours ?fuel ?max_states p =
  Behaviour.Set.diff
    (program_behaviours ?fuel ?max_states p)
    (Interp.behaviours ?fuel ?max_states p)

let weak_beyond_tso ?fuel ?max_states p =
  Behaviour.Set.diff
    (program_behaviours ?fuel ?max_states p)
    (Machine.program_behaviours ?fuel ?max_states p)

let explained_by_transformations ?fuel ?max_states ?(max_programs = 2_000) p =
  let pso = program_behaviours ?fuel ?max_states p in
  let rules =
    (* the silent move-commutation rules only make desugared stores
       adjacent; they are identity transformations on tracesets *)
    Safeopt_opt.Rule.moves
    @ List.filter_map Safeopt_opt.Rule.by_name [ "R-WW"; "R-WR"; "E-RAW" ]
  in
  let reachable = Safeopt_opt.Transform.reachable ~max_programs rules p in
  let sc_union =
    List.fold_left
      (fun acc q ->
        Behaviour.Set.union acc (Interp.behaviours ?fuel ?max_states q))
      Behaviour.Set.empty reachable
  in
  (pso, sc_union, Behaviour.Set.subset pso sc_union)
