open Safeopt_trace
open Safeopt_exec
open Safeopt_lang

let raced_location ?fuel ?max_states p =
  match Interp.find_race ?fuel ?max_states p with
  | None -> None
  | Some i -> (
      (* the witness ends in the adjacent conflicting pair *)
      let n = Interleaving.length i in
      match Action.location (Interleaving.nth i (n - 1)).Interleaving.action with
      | Some l -> Some l
      | None -> None)

let enforce ?fuel ?max_states p =
  let rec go p promoted =
    match raced_location ?fuel ?max_states p with
    | None -> (p, List.rev promoted)
    | Some l ->
        let p' =
          { p with Ast.volatile = Location.Volatile.add l p.Ast.volatile }
        in
        go p' (l :: promoted)
  in
  go p []

let is_robust ?fuel ?max_states p =
  Behaviour.Set.is_empty (Machine.weak_behaviours ?fuel ?max_states p)
