lib/tso/robustness.ml: Action Ast Behaviour Interleaving Interp List Location Machine Safeopt_exec Safeopt_lang Safeopt_trace
