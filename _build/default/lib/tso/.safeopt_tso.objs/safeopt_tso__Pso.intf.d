lib/tso/pso.mli: Ast Behaviour Location Safeopt_exec Safeopt_lang Safeopt_trace System
