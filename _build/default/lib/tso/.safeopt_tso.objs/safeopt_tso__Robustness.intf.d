lib/tso/robustness.mli: Ast Location Safeopt_lang Safeopt_trace
