open Safeopt_lang

type t = Reg.Set.t

let use_operand acc = function
  | Ast.Reg r -> Reg.Set.add r acc
  | Ast.Nat _ -> acc

let use_test acc = function
  | Ast.Eq (a, b) | Ast.Ne (a, b) -> use_operand (use_operand acc a) b

let rec stmt (s : Ast.stmt) (live_out : t) : t =
  match s with
  | Ast.Store (_, r) | Ast.Print r -> Reg.Set.add r live_out
  | Ast.Load (r, _) -> Reg.Set.remove r live_out
  | Ast.Move (r, o) -> use_operand (Reg.Set.remove r live_out) o
  | Ast.Lock _ | Ast.Unlock _ | Ast.Skip -> live_out
  | Ast.Block l -> thread l live_out
  | Ast.If (t, s1, s2) ->
      use_test (Reg.Set.union (stmt s1 live_out) (stmt s2 live_out)) t
  | Ast.While (t, body) ->
      (* fixpoint: live-in of the loop includes the test's uses and the
         body's live-in with the loop's own live-in as its live-out;
         two iterations reach the fixpoint because the domain is a
         union of the two bounds *)
      let once = use_test (Reg.Set.union live_out (stmt body live_out)) t in
      use_test (Reg.Set.union live_out (stmt body once)) t

and thread (l : Ast.thread) (live_out : t) : t =
  List.fold_right stmt l live_out

let annotate l =
  let rec go = function
    | [] -> ([], Reg.Set.empty)
    | s :: rest ->
        let annotated, live_after_rest = go rest in
        ((s, live_after_rest) :: annotated, stmt s live_after_rest)
  in
  fst (go l)

let dead_move s live_out =
  match s with
  | Ast.Move (r, _) -> not (Reg.Set.mem r live_out)
  | _ -> false

let dead_load s live_out =
  match s with
  | Ast.Load (r, _) -> not (Reg.Set.mem r live_out)
  | _ -> false
