(** Syntactic transformation rules (paper, Figs. 10 and 11).

    A rule rewrites a window at the head of a statement list and
    returns the whole rewritten list; the engine ({!Transform}) tries
    every position of every statement list of the program, including
    inside blocks, conditionals and loop bodies (the Fig. 9 congruence
    template).

    The three-statement elimination windows [first; S; last] take any
    {e run} of statements as the middle [S] where the paper has a
    single statement; this is the same transformation set (wrap the run
    in a block) and matches how a compiler would use the rules.  Side
    conditions are the paper's: the middle must be sync-free and must
    not mention the window's location or registers. *)

open Safeopt_trace
open Safeopt_lang

type t = {
  name : string;  (** e.g. "E-RAR" *)
  descr : string;
  rewrites_at :
    Location.Volatile.t -> ctx:Reg.Set.t -> Ast.thread -> Ast.thread list;
      (** All single rewrites whose window starts at the head of the
          given list; each result is the full rewritten list.  [ctx] is
          the register set of the whole enclosing thread (used by rules
          that need globally fresh registers). *)
}

val pp : t Fmt.t

(** {1 Fig. 10: eliminations} *)

val e_rar : t
(** [r1:=x; S; r2:=x  ~>  r1:=x; S; r2:=r1] *)

val e_raw : t
(** [x:=r1; S; r2:=x  ~>  x:=r1; S; r2:=r1] *)

val e_war : t
(** [r:=x; S; x:=r  ~>  r:=x; S] *)

val e_wbw : t
(** [x:=r1; S; x:=r2  ~>  S; x:=r2] *)

val e_ir : t
(** [r:=x; r:=i  ~>  r:=i] *)

val eliminations : t list

(** {1 Fig. 11: reorderings} *)

val r_rr : t
(** [r1:=x; r2:=y  ~>  r2:=y; r1:=x]  (r1 <> r2, x not volatile) *)

val r_ww : t
(** [x:=r1; y:=r2  ~>  y:=r2; x:=r1]  (x <> y, y not volatile) *)

val r_wr : t
(** [x:=r1; r2:=y  ~>  r2:=y; x:=r1]  (r1 <> r2, x <> y, x or y not
    volatile) *)

val r_rw : t
(** [r1:=x; y:=r2  ~>  y:=r2; r1:=x]  (r1 <> r2, x <> y, both not
    volatile) *)

val r_wl : t
(** [x:=r; lock m  ~>  lock m; x:=r]  (roach motel) *)

val r_rl : t
(** [r:=x; lock m  ~>  lock m; r:=x] *)

val r_uw : t
(** [unlock m; x:=r  ~>  x:=r; unlock m] *)

val r_ur : t
(** [unlock m; r:=x  ~>  r:=x; unlock m] *)

val r_xr : t
(** [print r1; r2:=x  ~>  r2:=x; print r1]  (r1 <> r2) *)

val r_xw : t
(** [print r1; x:=r2  ~>  x:=r2; print r1] *)

val reorderings : t list

(** {1 Beyond Figs. 10-11} *)

val i_ir : t
(** Irrelevant read {e introduction}: [S ~> r:=x; S] for a dead fresh
    register [r] — the Fig. 3 transformation that is {b unsafe} in
    combination with cross-synchronisation read elimination.  Provided
    to reproduce the paper's limitation example; not in
    {!eliminations}/{!reorderings}. *)

val m_fwd : t
val m_bwd : t
(** Commute a register move with an adjacent dependency-free statement.
    Moves are silent in the trace semantics, so these are identity
    transformations on tracesets (trivially safe, section 2.1); they
    let the window rules fire on programs where desugaring interleaved
    moves between memory accesses. *)

val moves : t list

val all : t list
(** {!eliminations} followed by {!reorderings} (not {!i_ir}, not
    {!moves}). *)

val by_name : string -> t option

(** {1 Helpers shared with the passes} *)

val names_of_run : Ast.stmt list -> Location.Set.t * Reg.Set.t
(** Locations and registers mentioned by a run of statements. *)

val window_ok :
  Location.Volatile.t ->
  Location.t ->
  Reg.t list ->
  Ast.stmt list ->
  bool
(** The middle of a 3-window is admissible: sync-free, does not mention
    the location, does not mention any of the registers. *)
