(** The Fig. 9 congruence engine: apply rules anywhere in a program.

    A {e step} applies one rule instance at one site of one thread (the
    reflexive-transitive closure of such steps equals the paper's
    simultaneous relation, since each sub-position may also stay
    unchanged by T-ID). *)

open Safeopt_trace
open Safeopt_lang

type step = {
  rule : string;
  thread : Thread_id.t;
  before : Ast.program;
  after : Ast.program;
}

val pp_step : step Fmt.t

type chain = step list
(** Earliest step first; [before] of each step is [after] of the
    previous. *)

val pp_chain : chain Fmt.t

val thread_rewrites :
  Rule.t -> Location.Volatile.t -> Ast.thread -> Ast.thread list
(** All single applications of the rule in one thread: at every
    position of the top-level list and recursively inside blocks,
    conditional branches and loop bodies. *)

val program_rewrites : Rule.t list -> Ast.program -> step list
(** All single-rule single-site successors of a program. *)

val reachable :
  ?max_programs:int -> Rule.t list -> Ast.program -> Ast.program list
(** All programs reachable by any composition of the rules (BFS with
    deduplication).  Includes the program itself. *)

val find_chain :
  ?max_programs:int ->
  Rule.t list ->
  source:Ast.program ->
  target:Ast.program ->
  chain option
(** A rule chain rewriting [source] into [target], if one is reachable
    within the budget. *)

val apply_named : string -> Ast.program -> (Ast.program, string) Result.t
(** Apply the first available instance of the named rule ([Rule.by_name])
    anywhere in the program; [Error] if the rule is unknown or does not
    apply. *)
