lib/opt/liveness.ml: Ast List Reg Safeopt_lang
