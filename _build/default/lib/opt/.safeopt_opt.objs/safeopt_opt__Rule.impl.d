lib/opt/rule.ml: Ast Fmt List Location Reg Safeopt_lang Safeopt_trace String
