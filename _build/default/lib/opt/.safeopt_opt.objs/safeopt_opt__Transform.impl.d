lib/opt/transform.ml: Ast Fmt Hashtbl List Pp Printf Queue Rule Safeopt_lang Safeopt_trace Thread_id
