lib/opt/validate.mli: Ast Behaviour Fmt Interleaving Safeopt_exec Safeopt_lang Safeopt_trace Trace
