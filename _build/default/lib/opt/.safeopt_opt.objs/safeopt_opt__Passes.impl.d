lib/opt/passes.ml: Ast List Liveness Location Option Pp Printf Reg Rule Safeopt_lang Safeopt_trace Transform
