lib/opt/passes.mli: Ast Result Rule Safeopt_lang Transform
