lib/opt/validate.ml: Ast Behaviour Denote Fmt Hashtbl Interleaving Interp List Option Safeopt_core Safeopt_exec Safeopt_lang Safeopt_trace Trace Traceset
