lib/opt/liveness.mli: Ast Reg Safeopt_lang
