lib/opt/rule.mli: Ast Fmt Location Reg Safeopt_lang Safeopt_trace
