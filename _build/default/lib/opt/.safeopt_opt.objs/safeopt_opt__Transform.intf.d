lib/opt/transform.mli: Ast Fmt Location Result Rule Safeopt_lang Safeopt_trace Thread_id
