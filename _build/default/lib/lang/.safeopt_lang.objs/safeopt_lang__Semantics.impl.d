lib/lang/semantics.ml: Action Ast Buffer List Location Monitor Option Pp Printf Reg Safeopt_trace Value
