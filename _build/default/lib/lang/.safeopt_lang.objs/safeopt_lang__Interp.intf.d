lib/lang/interp.mli: Ast Behaviour Interleaving Safeopt_exec Safeopt_trace Value
