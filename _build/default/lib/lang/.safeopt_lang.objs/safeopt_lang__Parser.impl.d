lib/lang/parser.ml: Ast Fmt Lexer List Location Monitor Printf Reg Safeopt_trace
