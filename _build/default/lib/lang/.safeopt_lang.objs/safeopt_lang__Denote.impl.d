lib/lang/denote.ml: Action Ast Int List Safeopt_trace Semantics Seq Traceset Wildcard
