lib/lang/ast.mli: Location Monitor Reg Safeopt_trace
