lib/lang/semantics.mli: Ast Location Monitor Reg Safeopt_trace Trace Value
