lib/lang/reg.ml: Fmt Map Set String
