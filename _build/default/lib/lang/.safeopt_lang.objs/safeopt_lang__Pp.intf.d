lib/lang/pp.mli: Ast Fmt
