lib/lang/thread_system.mli: Ast Safeopt_exec Safeopt_trace
