lib/lang/interp.ml: Ast Behaviour Enumerate List Option Safeopt_exec Safeopt_trace String Thread_system Value
