lib/lang/thread_system.ml: Action Ast List Location Printf Safeopt_exec Safeopt_trace Semantics Thread_id
