lib/lang/lexer.ml: Fmt List Option Printf String
