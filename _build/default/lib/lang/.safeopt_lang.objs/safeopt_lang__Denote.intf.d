lib/lang/denote.mli: Ast Safeopt_trace Trace Traceset Value Wildcard
