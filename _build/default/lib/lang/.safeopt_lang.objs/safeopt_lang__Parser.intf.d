lib/lang/parser.mli: Ast Lexer
