lib/lang/ast.ml: Int List Location Monitor Printf Reg Safeopt_trace Stdlib
