lib/lang/pp.ml: Ast Fmt List Location Monitor Reg Safeopt_trace String
