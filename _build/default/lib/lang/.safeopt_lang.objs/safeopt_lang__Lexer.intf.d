lib/lang/lexer.mli: Fmt
