lib/lang/reg.mli: Fmt Map Set
