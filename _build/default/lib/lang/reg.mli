(** Thread-local register names.

    By the paper's convention (section 2), identifiers beginning with
    ['r'] denote registers; the parser enforces this. *)

type t = string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val is_register_name : string -> bool
(** True iff the identifier starts with ['r']. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
