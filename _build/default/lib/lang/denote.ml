open Safeopt_trace

let universe_of_constants consts =
  let consts = List.sort_uniq Int.compare (0 :: consts) in
  let mx = List.fold_left max 0 consts in
  consts @ [ mx + 1; mx + 2 ]

let universe p = universe_of_constants (Ast.all_constants_program p)

let joint_universe ps =
  universe_of_constants (List.concat_map Ast.all_constants_program ps)

let issues_program ?tau_fuel p t =
  match t with
  | [] -> true
  | Action.Start i :: rest -> (
      match List.nth_opt p.Ast.threads i with
      | Some thread -> Semantics.issues ?tau_fuel (Semantics.initial thread) rest
      | None -> false)
  | _ -> false

let belongs_to ?tau_fuel ~universe p w =
  Seq.for_all (issues_program ?tau_fuel p) (Wildcard.instances ~universe w)

let traceset ?tau_fuel ~universe ~max_len p =
  (* Enumerate each thread's traces by DFS over [Semantics.next], reads
     drawn from the universe.  All prefixes are collected. *)
  let acc = ref Traceset.empty in
  let add t = acc := Traceset.add t !acc in
  List.iteri
    (fun tid thread ->
      let rec go c rev_trace len =
        add (List.rev rev_trace);
        if len < max_len then
          match Semantics.next ?tau_fuel c with
          | Semantics.Done | Semantics.Diverged -> ()
          | Semantics.Write (l, v, c') ->
              go c' (Action.Write (l, v) :: rev_trace) (len + 1)
          | Semantics.Read (l, k) ->
              List.iter
                (fun v -> go (k v) (Action.Read (l, v) :: rev_trace) (len + 1))
                universe
          | Semantics.Lock (m, c') ->
              go c' (Action.Lock m :: rev_trace) (len + 1)
          | Semantics.Unlock (m, c') ->
              go c' (Action.Unlock m :: rev_trace) (len + 1)
          | Semantics.Output (v, c') ->
              go c' (Action.External v :: rev_trace) (len + 1)
      in
      go (Semantics.initial thread) [ Action.Start tid ] 1)
    p.Ast.threads;
  !acc
