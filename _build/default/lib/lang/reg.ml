type t = string

let equal = String.equal
let compare = String.compare
let pp = Fmt.string
let is_register_name s = String.length s > 0 && s.[0] = 'r'

module Set = Set.Make (String)
module Map = Map.Make (String)
