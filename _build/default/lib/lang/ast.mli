(** Abstract syntax of the simple concurrent language (paper, Fig. 6).

    {v
    ri ::= r | i
    T  ::= ri == ri | ri != ri
    S  ::= l := r; | r := l; | r := ri; | lock m; | unlock m; | skip;
         | print r; | {L} | if (T) S else S | while (T) S
    L  ::= S | S L
    P  ::= L || L || ... || L
    v}

    A program additionally carries its set of volatile locations
    (section 2: "the set of volatile locations should be part of a
    program"). *)

open Safeopt_trace

type operand = Reg of Reg.t | Nat of int  (** [ri ::= r | i] *)

type test =
  | Eq of operand * operand  (** [ri == ri] *)
  | Ne of operand * operand  (** [ri != ri] *)

type stmt =
  | Store of Location.t * Reg.t  (** [l := r;] *)
  | Load of Reg.t * Location.t  (** [r := l;] *)
  | Move of Reg.t * operand  (** [r := ri;] *)
  | Lock of Monitor.t  (** [lock m;] *)
  | Unlock of Monitor.t  (** [unlock m;] *)
  | Skip  (** [skip;] *)
  | Print of Reg.t  (** [print r;] *)
  | Block of stmt list  (** [{L}] *)
  | If of test * stmt * stmt  (** [if (T) S else S] *)
  | While of test * stmt  (** [while (T) S] *)

type thread = stmt list  (** [L] *)

type program = { threads : thread list; volatile : Location.Volatile.t }

val program : ?volatile:Location.t list -> thread list -> program

val equal_operand : operand -> operand -> bool
val equal_test : test -> test -> bool
val equal_stmt : stmt -> stmt -> bool
val equal_thread : thread -> thread -> bool
val equal_program : program -> program -> bool
val compare_stmt : stmt -> stmt -> int

(** {1 Static analyses used by the transformation rules} *)

val fv_stmt : stmt -> Location.Set.t
(** [fv(S)]: all shared-memory locations occurring in [S] (Fig. 10's
    side conditions). *)

val fv_thread : thread -> Location.Set.t
val fv_program : program -> Location.Set.t

val regs_stmt : stmt -> Reg.Set.t
(** All register names occurring in [S] (read or written). *)

val regs_thread : thread -> Reg.Set.t

val sync_free_stmt : Location.Volatile.t -> stmt -> bool
(** [S] contains no lock/unlock statements and no accesses to volatile
    locations (section 6.1). *)

val sync_free_thread : Location.Volatile.t -> thread -> bool

val constants_stmt : stmt -> int list
(** All integer literals [i] occurring in statements of the form
    [r := i] (the only way the language can mention a value; used for
    the out-of-thin-air Theorem 5). *)

val constants_thread : thread -> int list
val constants_program : program -> int list

val all_constants_program : program -> int list
(** Every literal in the program, including those in tests (a superset
    of {!constants_program}; useful for choosing value universes). *)

val monitors_program : program -> Monitor.t list

val stmt_size : stmt -> int
(** Number of AST nodes (for generators and benchmarks). *)

val thread_size : thread -> int
val program_size : program -> int

val fresh_reg : Reg.Set.t -> Reg.t
(** A register name not in the given set (used by desugaring and
    transformations that need temporaries). *)
