(** Pretty-printing of programs in the concrete syntax accepted by
    {!Parser} (round-trip property tested in the suite). *)

val operand : Ast.operand Fmt.t
val test : Ast.test Fmt.t
val stmt : Ast.stmt Fmt.t
val thread : Ast.thread Fmt.t
val program : Ast.program Fmt.t

val stmt_to_string : Ast.stmt -> string
val thread_to_string : Ast.thread -> string
val program_to_string : Ast.program -> string

val stmt_compact : Ast.stmt -> string
(** Single-line rendering (used in state keys and error messages). *)

val thread_compact : Ast.thread -> string
