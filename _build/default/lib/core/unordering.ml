open Safeopt_trace
open Safeopt_exec

type result = { interleaving : Interleaving.t; f : int array }

let pp_result ppf r =
  Fmt.pf ppf "@[<v>I = %a@ f = %a@]" Interleaving.pp r.interleaving
    Fmt.(brackets (list ~sep:comma (pair ~sep:(any "->") int int)))
    (Array.to_list (Array.mapi (fun i j -> (i, j)) r.f))

(* Restrict the global matching to one thread, producing a trace-level
   permutation of that thread's positions. *)
let thread_restriction i' f tid =
  let positions =
    List.mapi (fun q (p : Interleaving.pair) -> (q, p)) i'
    |> List.filter (fun (_, (p : Interleaving.pair)) ->
           Thread_id.equal p.tid tid)
    |> List.map fst
  in
  (* Trace-level f: the k-th action of the thread goes to the rank of
     f.(q_k) among { f.(q) | q in positions }. *)
  let images = List.map (fun q -> f.(q)) positions in
  let sorted = List.sort Int.compare images in
  let rank v =
    let rec go i = function
      | [] -> invalid_arg "thread_restriction"
      | x :: rest -> if x = v then i else go (i + 1) rest
    in
    go 0 sorted
  in
  Array.of_list (List.map rank images)

let is_unordering vol ~mem ~transformed ~f =
  let arr = Array.of_list transformed in
  let n = Array.length arr in
  let is_perm =
    Array.length f = n
    &&
    let seen = Array.make n false in
    Array.for_all
      (fun j ->
        j >= 0 && j < n
        &&
        if seen.(j) then false
        else begin
          seen.(j) <- true;
          true
        end)
      f
  in
  if not is_perm then false
  else
    let cond1 = ref true and cond2 = ref true in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let pi = arr.(i) and pj = arr.(j) in
        if
          Thread_id.equal pi.Interleaving.tid pj.Interleaving.tid
          && (not
                (Action.reorderable vol pj.Interleaving.action
                   pi.Interleaving.action))
          && f.(i) >= f.(j)
        then cond1 := false;
        if
          Action.is_sync_or_external vol pi.Interleaving.action
          && Action.is_sync_or_external vol pj.Interleaving.action
          && f.(i) >= f.(j)
        then cond2 := false
      done
    done;
    !cond1 && !cond2
    && List.for_all
         (fun tid ->
           let t = Interleaving.trace_of tid transformed in
           let ft = thread_restriction transformed f tid in
           Reorder.de_permutes vol ft t ~mem)
         (Interleaving.threads transformed)

let construct vol ~find_f i' =
  let tids = Interleaving.threads i' in
  let arr = Array.of_list i' in
  let n = Array.length arr in
  (* Per-thread de-permuting functions. *)
  let per_thread =
    List.map
      (fun tid ->
        let t = Interleaving.trace_of tid i' in
        match find_f tid t with
        | Some f -> Some (tid, f)
        | None -> None)
      tids
  in
  if List.exists Option.is_none per_thread then None
  else
    let per_thread = List.filter_map Fun.id per_thread in
    (* For each I' index, its thread and its thread-local position. *)
    let thread_pos = Array.make n 0 in
    let counters = Hashtbl.create 8 in
    Array.iteri
      (fun q (p : Interleaving.pair) ->
        let c =
          Option.value ~default:0 (Hashtbl.find_opt counters p.tid)
        in
        thread_pos.(q) <- c;
        Hashtbl.replace counters p.tid (c + 1))
      arr;
    (* Target per-thread successor chains: thread positions ordered by
       f_theta. *)
    let succs = Array.make n [] in
    let indeg = Array.make n 0 in
    let add_edge a b =
      if a <> b then begin
        succs.(a) <- b :: succs.(a);
        indeg.(b) <- indeg.(b) + 1
      end
    in
    List.iter
      (fun (tid, f_t) ->
        let positions =
          List.filter
            (fun q -> Thread_id.equal arr.(q).Interleaving.tid tid)
            (List.init n Fun.id)
        in
        (* order positions by f_t of their thread-local index *)
        let ordered =
          List.sort
            (fun q1 q2 ->
              Int.compare f_t.(thread_pos.(q1)) f_t.(thread_pos.(q2)))
            positions
        in
        let rec chain = function
          | a :: (b :: _ as rest) ->
              add_edge a b;
              chain rest
          | _ -> ()
        in
        chain ordered)
      per_thread;
    (* Global sync/external order from I'. *)
    let sync_idx =
      List.filter
        (fun q ->
          Action.is_sync_or_external vol arr.(q).Interleaving.action)
        (List.init n Fun.id)
    in
    let rec chain = function
      | a :: (b :: _ as rest) ->
          add_edge a b;
          chain rest
      | _ -> ()
    in
    chain sync_idx;
    (* Kahn, preferring small I' index. *)
    let emitted = Array.make n false in
    let order = ref [] in
    let remaining = ref n in
    let stuck = ref false in
    while !remaining > 0 && not !stuck do
      let best = ref None in
      for q = n - 1 downto 0 do
        if (not emitted.(q)) && indeg.(q) = 0 then best := Some q
      done;
      match !best with
      | None -> stuck := true
      | Some q ->
          emitted.(q) <- true;
          decr remaining;
          order := q :: !order;
          List.iter (fun j -> indeg.(j) <- indeg.(j) - 1) succs.(q)
    done;
    if !stuck then None
    else
      let order = List.rev !order in
      let interleaving = List.map (fun q -> arr.(q)) order in
      let f = Array.make n (-1) in
      List.iteri (fun out_pos q -> f.(q) <- out_pos) order;
      Some { interleaving; f }

let construct_from_oracle vol ~mem i' =
  construct vol ~find_f:(fun _tid t -> Reorder.find vol t ~mem) i'
