(** Semantic reorderings (paper, section 4).

    A bijection [f] on the indices of a (transformed) trace [t'] is a
    {e reordering function} for [t'] if whenever it inverts a pair
    ([i < j] but [f j < f i]), the later action is reorderable with the
    earlier one ([t'_j] reorderable with [t'_i]).  [f] maps positions
    of the transformed trace to positions of the original trace.

    [f] {e de-permutes} [t'] into a traceset [T] if additionally the
    de-permutation of every prefix of [t'] lies in [T]: take the first
    [n] elements of [t'] and arrange them by their [f]-images.

    A traceset [T'] is a {e reordering} of [T] if every trace of [T']
    has a function de-permuting it into [T]. *)

open Safeopt_trace

type f = int array
(** [f.(k)] is the original-trace position of the transformed trace's
    [k]-th action. *)

val pp_f : f Fmt.t

val is_permutation : f -> bool

val is_reordering_function : Location.Volatile.t -> Trace.t -> f -> bool
(** The inversion condition above (plus bijectivity). *)

val depermute_prefix : f -> Trace.t -> int -> Trace.t
(** [depermute_prefix f t' n]: the elements [t'_k] with [k < n],
    sorted by [f k] (the paper's de-permutation of length [n], after
    its prose reading "apply the permutation to a prefix of [t']";
    see DESIGN.md). *)

val depermute : f -> Trace.t -> Trace.t
(** [depermute_prefix f t' (length t')]: the reconstructed original
    trace. *)

val de_permutes :
  Location.Volatile.t -> f -> Trace.t -> mem:(Trace.t -> bool) -> bool
(** [f] is a reordering function for the trace and all prefix
    de-permutations are members of the original traceset. *)

val find :
  Location.Volatile.t -> Trace.t -> mem:(Trace.t -> bool) -> f option
(** Search for a de-permuting function by inserting each successive
    transformed action into the reconstructed original trace, pruning
    with the membership oracle and the reorderability condition. *)

val identity : int -> f

val is_reordering :
  Location.Volatile.t ->
  original:Traceset.t ->
  transformed:Traceset.t ->
  bool
(** Every trace of [transformed] de-permutes into [original]. *)

val find_undepermutable :
  Location.Volatile.t ->
  mem:(Trace.t -> bool) ->
  transformed:Traceset.t ->
  Trace.t option
(** The first transformed trace with no de-permuting function — the
    diagnostic behind a negative reordering check. *)

val is_reordering_of_oracle :
  Location.Volatile.t ->
  mem:(Trace.t -> bool) ->
  transformed:Traceset.t ->
  bool
(** As {!is_reordering} with an intensional original traceset — used
    with the elimination-closure oracle for Lemma 5 (syntactic
    reordering = elimination then reordering). *)

(** {1 The reorderability matrix (section 4)} *)

val matrix_headers : string list
(** ["W\[y\]"; "R\[y\]"; "Acq"; "Rel"; "Ext"]. *)

val matrix : same_location:bool -> bool array array
(** [matrix ~same_location] regenerates the paper's reorderability
    table: rows are the earlier action [a], columns the later action
    [b]; entry is [reorderable a b].  With [same_location = false] the
    two accesses touch distinct locations [x <> y] (the table's
    check-marked entries); with [true] they touch the same location
    (the [x = y] side conditions). *)

val pp_matrix : unit Fmt.t
(** Renders both tables in the paper's layout (for the bench harness
    and the CLI). *)
