(** The unordering construction (paper, section 5, Theorem 2).

    Given a traceset [T] and an interleaving [I'] of a reordering [T']
    of [T], an {e unordering} from [I'] to [T] is a complete matching
    [f] on [dom(I')] such that

    + if [i < j], [T(I'_i) = T(I'_j)] and [A(I'_j)] is {e not}
      reorderable with [A(I'_i)], then [f(i) < f(j)];
    + if [i < j] and both actions are synchronisation or external
      actions, then [f(i) < f(j)]; and
    + for each thread, [f] restricted to that thread's actions
      de-permutes its trace into [T].

    [f.(I')] — the elements of [I'] arranged by [f] — is then an
    interleaving of [T]; the paper proves by induction that it is an
    execution with the same behaviour when [T] is data race free. *)

open Safeopt_trace
open Safeopt_exec

type result = {
  interleaving : Interleaving.t;  (** [f.(I')] *)
  f : int array;  (** I' index -> index in [interleaving] *)
}

val pp_result : result Fmt.t

val is_unordering :
  Location.Volatile.t ->
  mem:(Trace.t -> bool) ->
  transformed:Interleaving.t ->
  f:int array ->
  bool
(** Check the three clauses for a candidate matching. *)

val construct :
  Location.Volatile.t ->
  find_f:(Thread_id.t -> Trace.t -> Reorder.f option) ->
  Interleaving.t ->
  result option
(** Find per-thread de-permuting functions and merge them, preserving
    the global order of synchronisation and external actions. *)

val construct_from_oracle :
  Location.Volatile.t ->
  mem:(Trace.t -> bool) ->
  Interleaving.t ->
  result option
(** Wrapper using {!Reorder.find} per thread. *)
