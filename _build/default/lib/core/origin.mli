(** Origins and the out-of-thin-air guarantee (paper, section 5,
    Lemmas 2-3).

    A trace [t] is an {e origin} for a value [v] if some [t_i] is a
    write of [v] or an external action with value [v] and no earlier
    [t_j] reads [v].  The transformations cannot introduce origins
    (Lemma 2), and a traceset without an origin for [v] has no
    execution that reads, writes or outputs [v] (Lemma 3) — so if a
    program cannot "build" [v], no composition of transformations makes
    it produce [v]. *)

open Safeopt_trace
open Safeopt_exec

val origin_index : Value.t -> Trace.t -> int option
(** The first index making the trace an origin for [v], if any. *)

val is_origin : Value.t -> Trace.t -> bool

val wild_is_origin : Value.t -> Wildcard.t -> bool
(** Origin on wildcard traces: a wildcard read is not a read of any
    particular value, so it neither blocks nor establishes an origin
    (only concrete reads of [v] can license later writes of [v]). *)

val traceset_has_origin : Value.t -> Traceset.t -> bool

val interleaving_mentions : Value.t -> Interleaving.t -> bool
(** Some action of the interleaving reads, writes or outputs [v]. *)

val check_lemma3 :
  Value.t -> Traceset.t -> max_steps:int -> (unit, Interleaving.t) Result.t
(** Empirically validate Lemma 3 on an explicit traceset: if the
    traceset has no origin for [v], no enumerated execution mentions
    [v]; returns a counterexample execution otherwise.  (A
    counterexample would falsify the implementation, not the paper.) *)
