(** End-to-end validation of the paper's theorems on explicit
    tracesets.

    Theorem 1 (elimination) and Theorem 2 (reordering) both have the
    shape: if [T] is data race free and [T'] is a transformation of
    [T], then [T'] is data race free and every execution of [T'] has
    the same behaviour as some execution of [T].  The {!check}
    functions verify all three conjuncts by exhaustive enumeration and
    report which (if any) fails, together with a counterexample. *)

open Safeopt_trace
open Safeopt_exec

type verdict = {
  original_drf : bool;
  transformed_drf : bool;
  behaviours_included : bool;
      (** behaviours(T') is a subset of behaviours(T) *)
  relation_holds : bool;
      (** the claimed traceset relation (elimination/reordering) was
          verified *)
  counterexample : Behaviour.t option;
      (** a behaviour of [T'] absent from [T], if any *)
}

val pp_verdict : verdict Fmt.t

val drf_guarantee_ok : verdict -> bool
(** The DRF guarantee as the paper states it: {e if} the original is
    DRF {e and} the relation holds, then behaviours are included and
    the transformed program is DRF.  Vacuously true when the original
    is racy or the relation fails. *)

val behaviour_subset :
  Behaviour.Set.t -> Behaviour.Set.t -> Behaviour.t option
(** [None] if the first is a subset of the second, otherwise a witness
    member of the difference. *)

val check_elimination :
  ?proper:bool ->
  ?max_states:int ->
  Location.Volatile.t ->
  original:Traceset.t ->
  transformed:Traceset.t ->
  universe:Value.t list ->
  verdict
(** Validate Theorem 1 on a concrete pair of tracesets. *)

val check_reordering :
  ?max_states:int ->
  Location.Volatile.t ->
  original:Traceset.t ->
  transformed:Traceset.t ->
  verdict
(** Validate Theorem 2. *)

val check_behaviours_only :
  ?max_states:int ->
  Location.Volatile.t ->
  original:Traceset.t ->
  transformed:Traceset.t ->
  verdict
(** DRF and behaviour-inclusion checks without any traceset-relation
    claim ([relation_holds] is [true]); for transformation chains
    whose per-step relations were checked separately. *)
