lib/core/elimination.ml: Action Array Eliminable Fmt Fun Int List Option Safeopt_trace Trace Traceset Wildcard
