lib/core/elimination.mli: Fmt Location Safeopt_trace Trace Traceset Value Wildcard
