lib/core/origin.ml: Action Enumerate Interleaving List Option Safeopt_exec Safeopt_trace Traceset Traceset_system Value Wildcard
