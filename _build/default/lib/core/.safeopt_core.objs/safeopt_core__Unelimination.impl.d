lib/core/unelimination.ml: Action Array Eliminable Elimination Fmt Fun Hashtbl Int Interleaving List Option Safeopt_exec Safeopt_trace Thread_id Traceset Wildcard
