lib/core/eliminable.mli: Fmt Location Safeopt_trace Wildcard
