lib/core/reorder.ml: Action Array Fmt Fun Int List Location Option Safeopt_trace Traceset
