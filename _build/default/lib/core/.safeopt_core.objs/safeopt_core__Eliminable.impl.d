lib/core/eliminable.ml: Action Fmt Fun List Location Option Safeopt_trace Value Wildcard
