lib/core/unelimination.mli: Elimination Fmt Interleaving Location Safeopt_exec Safeopt_trace Thread_id Trace Traceset Value
