lib/core/safety.mli: Behaviour Fmt Location Safeopt_exec Safeopt_trace Traceset Value
