lib/core/unordering.mli: Fmt Interleaving Location Reorder Safeopt_exec Safeopt_trace Thread_id Trace
