lib/core/origin.mli: Interleaving Result Safeopt_exec Safeopt_trace Trace Traceset Value Wildcard
