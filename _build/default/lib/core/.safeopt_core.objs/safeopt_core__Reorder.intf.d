lib/core/reorder.mli: Fmt Location Safeopt_trace Trace Traceset
