lib/core/unordering.ml: Action Array Fmt Fun Hashtbl Int Interleaving List Option Reorder Safeopt_exec Safeopt_trace Thread_id
