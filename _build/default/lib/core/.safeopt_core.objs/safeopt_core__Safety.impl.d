lib/core/safety.ml: Behaviour Elimination Enumerate Fmt Option Reorder Safeopt_exec Traceset_system
