open Safeopt_trace
open Safeopt_exec

type result = { wild : Interleaving.Wild.wt; matching : int array }

let pp_result ppf r =
  Fmt.pf ppf "@[<v>I = %a@ f = %a@]" Interleaving.Wild.pp r.wild
    Fmt.(brackets (list ~sep:comma (pair ~sep:(any "->") int int)))
    (Array.to_list (Array.mapi (fun i j -> (i, j)) r.matching))

let wild_is_sync_or_external vol e = Wildcard.is_sync_or_external vol e

let is_unelimination_function vol ~transformed ~wild ~f =
  let n' = List.length transformed in
  let n = List.length wild in
  let tarr = Array.of_list transformed in
  let warr = Array.of_list wild in
  let in_range = Array.for_all (fun j -> j >= 0 && j < n) f in
  let injective =
    let seen = Hashtbl.create 16 in
    Array.for_all
      (fun j ->
        if Hashtbl.mem seen j then false
        else begin
          Hashtbl.add seen j ();
          true
        end)
      f
  in
  let matches =
    Array.length f = n' && in_range && injective
    && Array.for_all
         (fun k ->
           let p = tarr.(k) and q = warr.(f.(k)) in
           Thread_id.equal p.Interleaving.tid q.Interleaving.Wild.tid
           && Wildcard.matches_action q.Interleaving.Wild.elt
                p.Interleaving.action
           &&
           match q.Interleaving.Wild.elt with
           | Wildcard.Concrete _ -> true
           | Wildcard.Wild_read _ -> false)
         (Array.init n' Fun.id)
  in
  if not matches then false
  else
    let rng = Array.to_list f in
    let introduced =
      List.filter (fun j -> not (List.mem j rng)) (List.init n Fun.id)
    in
    (* (i) per-thread order *)
    let cond1 = ref true in
    for i = 0 to n' - 1 do
      for j = i + 1 to n' - 1 do
        if
          Thread_id.equal tarr.(i).Interleaving.tid tarr.(j).Interleaving.tid
          && f.(i) >= f.(j)
        then cond1 := false
      done
    done;
    (* (ii) synchronisation/external order among matched *)
    let cond2 = ref true in
    for i = 0 to n' - 1 do
      for j = i + 1 to n' - 1 do
        if
          Action.is_sync_or_external vol tarr.(i).Interleaving.action
          && Action.is_sync_or_external vol tarr.(j).Interleaving.action
          && f.(i) >= f.(j)
        then cond2 := false
      done
    done;
    (* (iii) introduced sync/ext after matched sync/ext *)
    let cond3 =
      List.for_all
        (fun j ->
          (not (wild_is_sync_or_external vol warr.(j).Interleaving.Wild.elt))
          || List.for_all
               (fun i ->
                 (not
                    (wild_is_sync_or_external vol
                       warr.(i).Interleaving.Wild.elt))
                 || i < j)
               rng)
        introduced
    in
    (* (iv) introduced indices eliminable in their thread's trace *)
    let cond4 =
      List.for_all
        (fun j ->
          let tid = warr.(j).Interleaving.Wild.tid in
          let thread_trace = Interleaving.Wild.trace_of tid wild in
          let p = Interleaving.Wild.thread_index wild j in
          Eliminable.eliminable vol thread_trace p)
        introduced
    in
    !cond1 && !cond2 && cond3 && cond4

(* --- Construction --- *)

type node = {
  tid : Thread_id.t;
  pos : int;  (** position in the thread's wildcard trace *)
  elt : Wildcard.elt;
  matched : int option;  (** the I' index this node matches *)
}

let construct vol ~witness_for i' =
  let tids = Interleaving.threads i' in
  let witnesses =
    List.map
      (fun tid ->
        let t = Interleaving.trace_of tid i' in
        match witness_for tid t with
        | Some w -> Some (tid, t, w)
        | None -> None)
      tids
  in
  if List.exists Option.is_none witnesses then None
  else
    let witnesses = List.filter_map Fun.id witnesses in
    (* Map the k-th action of thread [tid] in I' to its I' index. *)
    let i'_arr = Array.of_list i' in
    let i'_index_of tid k =
      let count = ref (-1) in
      let found = ref None in
      Array.iteri
        (fun q p ->
          if Thread_id.equal p.Interleaving.tid tid then begin
            incr count;
            if !count = k && !found = None then found := Some q
          end)
        i'_arr;
      Option.get !found
    in
    (* Build nodes. *)
    let nodes =
      List.concat_map
        (fun (tid, _t, (w : Elimination.witness)) ->
          let kept = List.sort Int.compare w.Elimination.kept in
          List.mapi
            (fun pos elt ->
              let matched =
                match
                  List.find_index (fun s -> s = pos) kept
                with
                | Some k -> Some (i'_index_of tid k)
                | None -> None
              in
              { tid; pos; elt; matched })
            w.Elimination.wild)
        witnesses
    in
    let narr = Array.of_list nodes in
    let n = Array.length narr in
    let idx_of tid pos =
      let r = ref (-1) in
      Array.iteri
        (fun i nd -> if Thread_id.equal nd.tid tid && nd.pos = pos then r := i)
        narr;
      !r
    in
    (* Edges. *)
    let succs = Array.make n [] in
    let indeg = Array.make n 0 in
    let add_edge a b =
      succs.(a) <- b :: succs.(a);
      indeg.(b) <- indeg.(b) + 1
    in
    Array.iteri
      (fun i nd ->
        (* program order *)
        let j = idx_of nd.tid (nd.pos + 1) in
        if j >= 0 then add_edge i j)
      narr;
    (* matched sync/ext in I' order; matched sync/ext before introduced
       sync/ext *)
    let sync_nodes =
      Array.to_list narr
      |> List.mapi (fun i nd -> (i, nd))
      |> List.filter (fun (_, nd) -> wild_is_sync_or_external vol nd.elt)
    in
    List.iter
      (fun (i, ndi) ->
        List.iter
          (fun (j, ndj) ->
            if i <> j then
              match (ndi.matched, ndj.matched) with
              | Some qi, Some qj -> if qi < qj then add_edge i j
              | Some _, None -> add_edge i j
              | None, _ -> ())
          sync_nodes)
      sync_nodes;
    (* Kahn's algorithm.  Ready matched nodes are emitted in I' order;
       introduced nodes are emitted just in time: deadline = the I'
       index of the nearest matched program-order successor. *)
    let deadline = Array.make n max_int in
    Array.iteri
      (fun i nd ->
        match nd.matched with
        | Some q -> deadline.(i) <- q
        | None ->
            let rec look pos =
              let j = idx_of nd.tid pos in
              if j < 0 then max_int
              else
                match narr.(j).matched with
                | Some q -> q
                | None -> look (pos + 1)
            in
            deadline.(i) <- look (nd.pos + 1))
      narr;
    let emitted = Array.make n false in
    let order = ref [] in
    let remaining = ref n in
    while !remaining > 0 do
      let best = ref None in
      Array.iteri
        (fun i _nd ->
          if (not emitted.(i)) && indeg.(i) = 0 then
            let key =
              (deadline.(i), (match narr.(i).matched with None -> 0 | Some _ -> 1), i)
            in
            match !best with
            | Some (bk, _) when compare bk key <= 0 -> ()
            | _ -> best := Some (key, i))
        narr;
      match !best with
      | None ->
          (* Constraint cycle: cannot happen for valid witnesses
             (see the acyclicity argument in the module documentation),
             but fail gracefully. *)
          remaining := -1
      | Some (_, i) ->
          emitted.(i) <- true;
          decr remaining;
          order := i :: !order;
          List.iter (fun j -> indeg.(j) <- indeg.(j) - 1) succs.(i)
    done;
    if !remaining < 0 then None
    else
      let order = List.rev !order in
      let wild =
        List.map
          (fun i ->
            { Interleaving.Wild.tid = narr.(i).tid; elt = narr.(i).elt })
          order
      in
      let matching = Array.make (Array.length i'_arr) (-1) in
      List.iteri
        (fun out_pos i ->
          match narr.(i).matched with
          | Some q -> matching.(q) <- out_pos
          | None -> ())
        order;
      Some { wild; matching }

let construct_from_traceset ?proper vol ~original ~universe i' =
  let belongs_to w = Traceset.belongs_to original w ~universe in
  let candidates = Traceset.to_list original in
  construct vol
    ~witness_for:(fun _tid t ->
      Elimination.find_witness ?proper vol ~belongs_to ~candidates
        ~transformed:t)
    i'
