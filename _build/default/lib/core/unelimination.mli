(** The unelimination construction (paper, Lemma 1 and Fig. 5).

    Given a traceset [T], an elimination [T'] of [T], and an
    interleaving [I'] of [T'], Lemma 1 produces a wildcard interleaving
    [I] belonging-to [T] and an {e unelimination function} [f]: a
    complete matching from [I'] into [I] such that

    + [f] preserves per-thread order,
    + [f] preserves the mutual order of synchronisation and external
      actions,
    + every synchronisation/external action {e introduced} by the
      untransformation is ordered after all matched
      synchronisation/external actions, and
    + every introduced index is eliminable in [I].

    The construction follows the paper's three steps: decompose [I']
    into threads, uneliminate each thread's trace using an elimination
    witness, and re-interleave, appending introduced actions as late as
    their thread's program order allows. *)

open Safeopt_trace
open Safeopt_exec

type result = {
  wild : Interleaving.Wild.wt;  (** the wildcard interleaving [I] *)
  matching : int array;  (** [f]: index in [I'] -> index in [I] *)
}

val pp_result : result Fmt.t

val is_unelimination_function :
  Location.Volatile.t ->
  transformed:Interleaving.t ->
  wild:Interleaving.Wild.wt ->
  f:int array ->
  bool
(** Check the four clauses above for a candidate matching
    (eliminability is checked per Definition 1 on each thread's trace
    of [wild]). *)

val construct :
  Location.Volatile.t ->
  witness_for:(Thread_id.t -> Trace.t -> Elimination.witness option) ->
  Interleaving.t ->
  result option
(** [construct vol ~witness_for i'] uneliminates [i'].  [witness_for
    tid t] must produce an elimination witness of thread [tid]'s trace
    [t] against the original traceset (e.g. via
    {!Elimination.find_witness}); [None] aborts the construction. *)

val construct_from_traceset :
  ?proper:bool ->
  Location.Volatile.t ->
  original:Traceset.t ->
  universe:Value.t list ->
  Interleaving.t ->
  result option
(** Convenience wrapper searching witnesses in an explicit original
    traceset. *)
