open Safeopt_trace

type 'ts step =
  | Emit of Action.t * 'ts
  | Read of Location.t * (Value.t -> 'ts option)

type 'ts t = {
  initial : 'ts list;
  steps : 'ts -> 'ts step list;
  key : 'ts -> string;
}
