open Safeopt_trace

type t = Value.t list

let equal = List.equal Value.equal
let compare = List.compare Value.compare
let pp = Fmt.(brackets (list ~sep:semi Value.pp))
let to_string = Fmt.to_to_string pp

module Set = struct
  include Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)

  let pp ppf s =
    Fmt.(braces (list ~sep:semi pp)) ppf (elements s)

  let rec list_prefixes : elt -> elt list = function
    | [] -> [ [] ]
    | v :: rest -> [] :: List.map (fun p -> v :: p) (list_prefixes rest)

  let prefix_closure s =
    fold (fun b acc -> List.fold_left (fun acc p -> add p acc) acc (list_prefixes b)) s s

  let is_prefix_closed s =
    for_all (fun b -> List.for_all (fun p -> mem p s) (list_prefixes b)) s

  let is_strict_prefix a b =
    let rec go a b =
      match (a, b) with
      | [], [] -> false
      | [], _ :: _ -> true
      | _, [] -> false
      | x :: a, y :: b -> Value.equal x y && go a b
    in
    go a b

  let maximal s =
    elements s
    |> List.filter (fun b -> not (exists (fun b' -> is_strict_prefix b b') s))
end
