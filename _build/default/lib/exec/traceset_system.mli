(** Explicit tracesets as thread systems.

    A thread's state is its identifier paired with the trace it has
    issued so far; its possible next actions are the one-action
    extensions present in the (prefix-closed) traceset, except that from
    the empty trace a thread [i] may only issue its own start action
    [S(i)] (entry points, section 3).  Reads of the same location with
    different values are grouped into a single {!System.Read} step whose
    continuation checks membership of the extension. *)

open Safeopt_trace

val make : Traceset.t -> (Thread_id.t * Trace.t) System.t
(** Threads are the traceset's start-action entry points [0..n-1]; an
    entry point absent from the traceset yields a thread stuck at the
    empty trace. *)
