open Safeopt_trace

type t = {
  n : int;
  vol : Location.Volatile.t;
  tids : Thread_id.t array;
  acts : Action.t array;
  reach : bool array array;
}

let make vol i =
  let arr = Array.of_list i in
  let n = Array.length arr in
  let tids = Array.map (fun p -> p.Interleaving.tid) arr in
  let acts = Array.map (fun p -> p.Interleaving.action) arr in
  (* Edge relation: program order + synchronises-with.  All edges go
     forward in the index order, so one backward pass computes the
     transitive closure. *)
  let reach = Array.make_matrix n n false in
  for a = 0 to n - 1 do
    reach.(a).(a) <- true;
    for b = a + 1 to n - 1 do
      if
        Thread_id.equal tids.(a) tids.(b)
        || Action.release_acquire_pair vol acts.(a) acts.(b)
      then reach.(a).(b) <- true
    done
  done;
  for a = n - 1 downto 0 do
    for b = a + 1 to n - 1 do
      if reach.(a).(b) then
        for c = b + 1 to n - 1 do
          if reach.(b).(c) then reach.(a).(c) <- true
        done
    done
  done;
  { n; vol; tids; acts; reach }

let program_order t i j =
  i >= 0 && j < t.n && i <= j && Thread_id.equal t.tids.(i) t.tids.(j)

let synchronises_with t i j =
  i >= 0 && j < t.n && i < j
  && Action.release_acquire_pair t.vol t.acts.(i) t.acts.(j)

let hb t i j = i >= 0 && j < t.n && i <= j && t.reach.(i).(j)
let hb_strict t i j = i <> j && hb t i j
let ordered t i j = hb t i j || hb t j i
let size t = t.n
