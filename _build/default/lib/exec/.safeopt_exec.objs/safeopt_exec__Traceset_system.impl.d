lib/exec/traceset_system.ml: Action List Location Printf Safeopt_trace System Thread_id Trace Traceset
