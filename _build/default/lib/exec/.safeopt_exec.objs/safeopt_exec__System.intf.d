lib/exec/system.mli: Action Location Safeopt_trace Value
