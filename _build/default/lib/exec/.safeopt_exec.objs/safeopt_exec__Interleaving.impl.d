lib/exec/interleaving.ml: Action Array Fmt Fun Int List Location Monitor Option Printf Safeopt_trace Thread_id Trace Traceset Value Wildcard
