lib/exec/happens_before.ml: Action Array Interleaving Location Safeopt_trace Thread_id
