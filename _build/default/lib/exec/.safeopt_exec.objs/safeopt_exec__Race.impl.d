lib/exec/race.ml: Action Array Enumerate Happens_before Interleaving Option Safeopt_trace Thread_id Traceset_system
