lib/exec/enumerate.ml: Action Array Behaviour Buffer Hashtbl Interleaving List Location Monitor Option Printf Random Safeopt_trace System Thread_id Value
