lib/exec/interleaving.mli: Action Fmt Location Safeopt_trace Thread_id Trace Traceset Value Wildcard
