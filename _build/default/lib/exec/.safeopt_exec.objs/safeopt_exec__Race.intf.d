lib/exec/race.mli: Interleaving Location Safeopt_trace
