lib/exec/enumerate.mli: Action Behaviour Interleaving Location Safeopt_trace System
