lib/exec/system.ml: Action Location Safeopt_trace Value
