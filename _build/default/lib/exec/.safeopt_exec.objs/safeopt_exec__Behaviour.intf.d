lib/exec/behaviour.mli: Fmt Safeopt_trace Set Value
