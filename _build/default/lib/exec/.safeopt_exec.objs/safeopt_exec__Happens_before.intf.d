lib/exec/happens_before.mli: Interleaving Location Safeopt_trace
