lib/exec/behaviour.ml: Fmt List Safeopt_trace Set Value
