lib/exec/traceset_system.mli: Safeopt_trace System Thread_id Trace Traceset
