open Safeopt_trace

exception Cyclic
exception Too_many_states of int

let default_max_states = 2_000_000

type 'ts sched = {
  threads : 'ts array;
  mem : Value.t Location.Map.t;
  locks : (Thread_id.t * int) Monitor.Map.t;
      (** monitor -> (owner, nesting depth > 0) *)
}

let initial sys = {
  threads = Array.of_list sys.System.initial;
  mem = Location.Map.empty;
  locks = Monitor.Map.empty;
}

let sched_key sys st =
  let b = Buffer.create 64 in
  Array.iter
    (fun ts ->
      Buffer.add_string b (sys.System.key ts);
      Buffer.add_char b '\x00')
    st.threads;
  Buffer.add_char b '\x01';
  Location.Map.iter
    (fun l v ->
      Buffer.add_string b l;
      Buffer.add_char b '=';
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ';')
    st.mem;
  Buffer.add_char b '\x01';
  Monitor.Map.iter
    (fun m (o, d) -> Buffer.add_string b (Printf.sprintf "%s=%d,%d;" m o d))
    st.locks;
  Buffer.contents b

let read_value st l =
  Option.value ~default:Value.default (Location.Map.find_opt l st.mem)

(* All enabled transitions from a scheduler state:
   (thread id, action, successor state). *)
let enabled sys st =
  let out = ref [] in
  Array.iteri
    (fun tid ts ->
      List.iter
        (fun step ->
          match step with
          | System.Read (l, k) -> (
              match k (read_value st l) with
              | Some ts' ->
                  let threads = Array.copy st.threads in
                  threads.(tid) <- ts';
                  out :=
                    (tid, Action.Read (l, read_value st l), { st with threads })
                    :: !out
              | None -> ())
          | System.Emit (a, ts') -> (
              let commit st' =
                let threads = Array.copy st.threads in
                threads.(tid) <- ts';
                out := (tid, a, { st' with threads }) :: !out
              in
              match a with
              | Action.Read _ ->
                  invalid_arg "Enumerate: reads must use System.Read steps"
              | Action.Write (l, v) ->
                  commit { st with mem = Location.Map.add l v st.mem }
              | Action.Lock m -> (
                  match Monitor.Map.find_opt m st.locks with
                  | None ->
                      commit
                        { st with locks = Monitor.Map.add m (tid, 1) st.locks }
                  | Some (owner, d) when Thread_id.equal owner tid ->
                      commit
                        {
                          st with
                          locks = Monitor.Map.add m (tid, d + 1) st.locks;
                        }
                  | Some _ -> ())
              | Action.Unlock m -> (
                  match Monitor.Map.find_opt m st.locks with
                  | Some (owner, d) when Thread_id.equal owner tid ->
                      let locks =
                        if d = 1 then Monitor.Map.remove m st.locks
                        else Monitor.Map.add m (tid, d - 1) st.locks
                      in
                      commit { st with locks }
                  | _ -> ())
              | Action.External _ | Action.Start _ -> commit st))
        (sys.System.steps ts))
    st.threads;
  List.rev !out

(* Partial-order reduction: a singleton persistent set.  A transition
   whose action is a start action or satisfies [local] is invisible and
   independent of every other thread, so if it is the unique enabled
   transition of its thread it may be explored alone. *)
let por_select local succs =
  let by_tid tid =
    List.filter (fun (t, _, _) -> t = tid) succs
  in
  let is_local a =
    match a with Action.Start _ -> true | _ -> local a
  in
  match
    List.find_opt
      (fun (tid, a, _) -> is_local a && List.length (by_tid tid) = 1)
      succs
  with
  | Some t -> [ t ]
  | None -> succs

let select = function
  | None -> fun succs -> succs
  | Some local -> por_select local

let behaviours ?(max_states = default_max_states) ?local sys =
  let select = select local in
  let memo : (string, Behaviour.Set.t) Hashtbl.t = Hashtbl.create 997 in
  let on_stack : (string, unit) Hashtbl.t = Hashtbl.create 97 in
  let count = ref 0 in
  let rec go st =
    let k = sched_key sys st in
    match Hashtbl.find_opt memo k with
    | Some s -> s
    | None ->
        if Hashtbl.mem on_stack k then raise Cyclic;
        Hashtbl.add on_stack k ();
        incr count;
        if !count > max_states then raise (Too_many_states !count);
        let s =
          List.fold_left
            (fun acc (_tid, a, st') ->
              let sub = go st' in
              let sub =
                match a with
                | Action.External v ->
                    Behaviour.Set.map (fun b -> v :: b) sub
                | _ -> sub
              in
              Behaviour.Set.union acc sub)
            (Behaviour.Set.singleton [])
            (select (enabled sys st))
        in
        Hashtbl.remove on_stack k;
        Hashtbl.replace memo k s;
        s
  in
  go (initial sys)

let maximal_executions ?(max_steps = 1_000_000) sys =
  let steps = ref 0 in
  let out = ref [] in
  let rec go st rev_path =
    match enabled sys st with
    | [] -> out := List.rev rev_path :: !out
    | succs ->
        List.iter
          (fun (tid, a, st') ->
            incr steps;
            if !steps > max_steps then raise (Too_many_states !steps);
            go st' (Interleaving.pair tid a :: rev_path))
          succs
  in
  go (initial sys) [];
  List.rev !out

let find_adjacent_race ?(max_states = default_max_states) vol sys =
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 997 in
  let count = ref 0 in
  let exception Found of Interleaving.t in
  let rec go st rev_path =
    let k = sched_key sys st in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.add visited k ();
      incr count;
      if !count > max_states then raise (Too_many_states !count);
      let succs = enabled sys st in
      List.iter
        (fun (tid, a, st') ->
          (* Adjacent-race check on the edge: is some conflicting action
             of another thread enabled right after [a]? *)
          List.iter
            (fun (tid', b, _) ->
              if (not (Thread_id.equal tid tid')) && Action.conflicting vol a b
              then
                raise
                  (Found
                     (List.rev
                        (Interleaving.pair tid' b
                        :: Interleaving.pair tid a
                        :: rev_path))))
            (enabled sys st');
          go st' (Interleaving.pair tid a :: rev_path))
        succs
    end
  in
  try
    go (initial sys) [];
    None
  with Found i -> Some i

let is_drf ?max_states vol sys =
  Option.is_none (find_adjacent_race ?max_states vol sys)

let count_states ?(max_states = default_max_states) ?local sys =
  let select = select local in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 997 in
  let count = ref 0 in
  let rec go st =
    let k = sched_key sys st in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.add visited k ();
      incr count;
      if !count > max_states then raise (Too_many_states !count);
      List.iter (fun (_, _, st') -> go st') (select (enabled sys st))
    end
  in
  go (initial sys);
  !count

let count_executions ?max_steps sys =
  List.length (maximal_executions ?max_steps sys)

let find_deadlock ?(max_states = default_max_states) sys =
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 997 in
  let count = ref 0 in
  let exception Found of Interleaving.t in
  let rec go st rev_path =
    let k = sched_key sys st in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.add visited k ();
      incr count;
      if !count > max_states then raise (Too_many_states !count);
      match enabled sys st with
      | [] ->
          let blocked =
            Array.exists (fun ts -> sys.System.steps ts <> []) st.threads
          in
          if blocked then raise (Found (List.rev rev_path))
      | succs ->
          List.iter
            (fun (tid, a, st') -> go st' (Interleaving.pair tid a :: rev_path))
            succs
    end
  in
  try
    go (initial sys) [];
    None
  with Found i -> Some i

let sample_behaviours ?(max_actions = 10_000) ~seed ~runs sys =
  let rng = Random.State.make [| seed |] in
  let out = ref Behaviour.Set.empty in
  for _ = 1 to runs do
    let rec go st rev_beh n =
      if n >= max_actions then ()
      else
        match enabled sys st with
        | [] ->
            out :=
              Behaviour.Set.union !out
                (Behaviour.Set.of_list
                   (Behaviour.Set.list_prefixes (List.rev rev_beh)))
        | succs ->
            let _, a, st' =
              List.nth succs (Random.State.int rng (List.length succs))
            in
            let rev_beh =
              match a with
              | Action.External v -> v :: rev_beh
              | _ -> rev_beh
            in
            go st' rev_beh (n + 1)
    in
    go (initial sys) [] 0
  done;
  !out
