open Safeopt_trace

type pair = { tid : Thread_id.t; action : Action.t }
type t = pair list

let pair tid action = { tid; action }
let tid p = p.tid
let action p = p.action

let equal_pair a b =
  Thread_id.equal a.tid b.tid && Action.equal a.action b.action

let compare_pair a b =
  let c = Thread_id.compare a.tid b.tid in
  if c <> 0 then c else Action.compare a.action b.action

let equal = List.equal equal_pair
let compare = List.compare compare_pair
let pp_pair ppf p = Fmt.pf ppf "(%a,%a)" Thread_id.pp p.tid Action.pp p.action
let pp = Fmt.(brackets (list ~sep:semi pp_pair))
let to_string = Fmt.to_to_string pp
let length = List.length

let nth i k =
  match List.nth_opt i k with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Interleaving.nth: index %d" k)

let dom i = List.init (length i) Fun.id

let prefixes i =
  let rec go acc rev_pre = function
    | [] -> List.rev acc
    | p :: rest ->
        let rev_pre = p :: rev_pre in
        go (List.rev rev_pre :: acc) rev_pre rest
  in
  go [ [] ] [] i

let restrict i is =
  let is = List.sort_uniq Int.compare is in
  let rec go k i is =
    match (i, is) with
    | _, [] | [], _ -> []
    | p :: i, j :: is' ->
        if k = j then p :: go (k + 1) i is' else go (k + 1) i is
  in
  go 0 i is

let threads i =
  List.fold_left
    (fun acc p -> if List.mem p.tid acc then acc else p.tid :: acc)
    [] i
  |> List.sort Thread_id.compare

let trace_of t i =
  List.filter_map
    (fun p -> if Thread_id.equal p.tid t then Some p.action else None)
    i

let thread_traces i = List.map (fun t -> (t, trace_of t i)) (threads i)

let thread_index i k =
  let p = nth i k in
  let rec count j acc = function
    | [] -> acc
    | q :: rest ->
        if j >= k then acc
        else
          count (j + 1) (if Thread_id.equal q.tid p.tid then acc + 1 else acc) rest
  in
  count 0 0 i

let entry_points_ok i =
  List.for_all
    (fun p ->
      match p.action with
      | Action.Start e -> Thread_id.equal e p.tid
      | _ -> true)
    i
  && List.for_all
       (fun t ->
         match trace_of t i with
         | [] -> true
         | tr ->
             Trace.properly_started tr
             && List.length (List.filter Action.is_start tr) = 1)
       (threads i)

let respects_mutex i =
  let arr = Array.of_list i in
  let n = Array.length arr in
  let ok = ref true in
  for k = 0 to n - 1 do
    match arr.(k).action with
    | Action.Lock m ->
        let locker = arr.(k).tid in
        List.iter
          (fun t ->
            if not (Thread_id.equal t locker) then begin
              let locks = ref 0 and unlocks = ref 0 in
              for j = 0 to k - 1 do
                if Thread_id.equal arr.(j).tid t then
                  match arr.(j).action with
                  | Action.Lock m' when Monitor.equal m m' -> incr locks
                  | Action.Unlock m' when Monitor.equal m m' -> incr unlocks
                  | _ -> ()
              done;
              if !locks <> !unlocks then ok := false
            end)
          (threads i)
    | _ -> ()
  done;
  !ok

let well_locked i =
  List.for_all (fun t -> Trace.well_locked (trace_of t i)) (threads i)

let is_interleaving_of ts i =
  entry_points_ok i && respects_mutex i && well_locked i
  && List.for_all (fun t -> Traceset.mem (trace_of t i) ts) (threads i)

let location_of_index i k = Action.location (nth i k).action

let sees_write i r w =
  w < r && r < length i
  &&
  match ((nth i r).action, (nth i w).action) with
  | Action.Read (l, v), Action.Write (l', v') ->
      Location.equal l l' && Value.equal v v'
      && List.for_all
           (fun j ->
             not
               (j > w && j < r
               &&
               match (nth i j).action with
               | Action.Write (l'', _) -> Location.equal l l''
               | _ -> false))
           (dom i)
  | _ -> false

let sees_default i r =
  match (nth i r).action with
  | Action.Read (l, v) ->
      Value.is_default v
      && List.for_all
           (fun j ->
             not
               (j < r
               &&
               match (nth i j).action with
               | Action.Write (l', _) -> Location.equal l l'
               | _ -> false))
           (dom i)
  | _ -> false

let sees_most_recent_write i r =
  match (nth i r).action with
  | Action.Read _ ->
      sees_default i r || List.exists (fun w -> sees_write i r w) (dom i)
  | _ -> true

let is_sequentially_consistent i =
  List.for_all (fun k -> sees_most_recent_write i k) (dom i)

let is_execution_of ts i =
  is_interleaving_of ts i && is_sequentially_consistent i

let behaviour i =
  List.filter_map
    (fun p ->
      match p.action with Action.External v -> Some v | _ -> None)
    i

let memory_after i =
  List.fold_left
    (fun m p ->
      match p.action with
      | Action.Write (l, v) -> Location.Map.add l v m
      | _ -> m)
    Location.Map.empty i

let _ = location_of_index

module Wild = struct
  type wpair = { tid : Thread_id.t; elt : Wildcard.elt }
  type wt = wpair list

  let of_interleaving i =
    List.map
      (fun (p : pair) -> { tid = p.tid; elt = Wildcard.Concrete p.action })
      i

  let pp_wpair ppf p =
    Fmt.pf ppf "(%a,%a)" Thread_id.pp p.tid Wildcard.pp_elt p.elt

  let pp = Fmt.(brackets (list ~sep:semi pp_wpair))
  let length = List.length

  let trace_of t i =
    List.filter_map
      (fun p -> if Thread_id.equal p.tid t then Some p.elt else None)
      i

  let thread_index i k =
    let p = List.nth i k in
    List.filteri (fun j q -> j < k && Thread_id.equal q.tid p.tid) i
    |> List.length

  let instance w =
    let rec go mem acc = function
      | [] -> List.rev acc
      | p :: rest ->
          let resolve l =
            Option.value ~default:Value.default (Location.Map.find_opt l mem)
          in
          let a =
            match p.elt with
            | Wildcard.Concrete a -> a
            | Wildcard.Wild_read l -> Action.Read (l, resolve l)
          in
          let mem =
            match a with
            | Action.Write (l, v) -> Location.Map.add l v mem
            | _ -> mem
          in
          go mem ({ tid = p.tid; action = a } :: acc) rest
    in
    go Location.Map.empty [] w
end
