(** Program order, synchronises-with and happens-before (section 3).

    All three are relations on the {e indices} of an interleaving.  The
    happens-before order is the transitive closure of program order and
    synchronises-with; it is a partial order because it is contained in
    the (total) index order. *)

open Safeopt_trace

type t
(** A precomputed happens-before structure for one interleaving. *)

val make : Location.Volatile.t -> Interleaving.t -> t

val program_order : t -> int -> int -> bool
(** [i <=po j]: same thread and [i <= j]. *)

val synchronises_with : t -> int -> int -> bool
(** [i <sw j]: [i < j] and [A(I_i), A(I_j)] are a release-acquire pair
    (unlock/lock of the same monitor, or volatile write/read of the same
    location). *)

val hb : t -> int -> int -> bool
(** [i <=hb j]: transitive closure of program order and
    synchronises-with.  Reflexive. *)

val hb_strict : t -> int -> int -> bool
(** [i <=hb j] and [i <> j]. *)

val ordered : t -> int -> int -> bool
(** [hb t i j || hb t j i]. *)

val size : t -> int
