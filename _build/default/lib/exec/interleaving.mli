(** Interleavings and executions (paper, section 3).

    An interleaving is a sequence of (thread-identifier, action) pairs.
    An interleaving of a traceset [T] additionally (i) projects to traces
    of [T] on every thread, (ii) has thread identifiers matching start
    entry points, and (iii) respects mutual exclusion.  An {e execution}
    is a sequentially consistent interleaving: every read sees the most
    recent write (or the default value if there is none). *)

open Safeopt_trace

type pair = { tid : Thread_id.t; action : Action.t }
type t = pair list

val pair : Thread_id.t -> Action.t -> pair
val tid : pair -> Thread_id.t
val action : pair -> Action.t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val pp_pair : pair Fmt.t
val to_string : t -> string

val length : t -> int
val nth : t -> int -> pair
val dom : t -> int list
val prefixes : t -> t list
val restrict : t -> int list -> t

val threads : t -> Thread_id.t list
(** Thread identifiers appearing in the interleaving, sorted. *)

val trace_of : Thread_id.t -> t -> Trace.t
(** The trace of thread [tid]: [\[A(p) | p <- I. T(p) = tid\]]. *)

val thread_traces : t -> (Thread_id.t * Trace.t) list

val thread_index : t -> int -> int
(** [thread_index i k] is the index of [I_k] within the trace of its own
    thread, i.e. [|{j | j < k /\ T(I_j) = T(I_k)}|] (used to transport
    per-trace properties such as eliminability to interleavings). *)

val entry_points_ok : t -> bool
(** Every start action [S(e)] is performed by thread [e], every thread's
    trace is properly started, and no thread starts twice. *)

val respects_mutex : t -> bool
(** The lock condition of section 3: whenever [I_i = L\[m\]] by thread
    [theta], every {e other} thread has performed as many unlocks of [m]
    as locks of [m] before [i] (reentrant locking by the owner is
    permitted). *)

val well_locked : t -> bool
(** Every thread's trace is well-locked (no unlock without a lock). *)

val is_interleaving_of : Traceset.t -> t -> bool
(** Conditions (i)-(iii) above against an explicit traceset. *)

val sees_write : t -> int -> int -> bool
(** [sees_write i r w]: index [r] is a read, [w < r] is a write to the
    same location with the same value, and no write to that location
    lies strictly between them. *)

val sees_default : t -> int -> bool
(** [r] reads the default value and no earlier write to its location
    exists. *)

val sees_most_recent_write : t -> int -> bool
(** [r] sees the default value, or sees some write, or is not a read. *)

val is_sequentially_consistent : t -> bool
(** All indices see the most recent write. *)

val is_execution_of : Traceset.t -> t -> bool
(** A sequentially consistent interleaving of the traceset. *)

val behaviour : t -> Value.t list
(** The observable behaviour: the sequence of values of external actions
    in interleaving order. *)

val memory_after : t -> Value.t Location.Map.t
(** Final memory: last written value per location (locations never
    written are absent; their value is the default). *)

(** {1 Wildcard interleavings (section 4)}

    A wildcard interleaving may contain wildcard reads; its {e instance}
    is unique: each wildcard read is resolved to the value of the most
    recent write before it (or the default value). *)

module Wild : sig
  type wpair = { tid : Thread_id.t; elt : Wildcard.elt }
  type wt = wpair list

  val of_interleaving : t -> wt
  val pp : wt Fmt.t
  val length : wt -> int
  val trace_of : Thread_id.t -> wt -> Wildcard.t
  val thread_index : wt -> int -> int
  val instance : wt -> t
  (** The unique instance (section 4): wildcards resolved to the most
      recent write's value, or the default. *)
end
