(** Observable behaviours.

    The behaviour of an interleaving is its sequence of external-action
    values in interleaving order (section 3: behaviours are "sequences of
    externally observable actions (input or output) of all interleavings
    of the program").  Because tracesets are prefix-closed, behaviour
    sets are prefix-closed too. *)

open Safeopt_trace

type t = Value.t list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val to_string : t -> string

module Set : sig
  include Set.S with type elt = t

  val pp : t Fmt.t

  val list_prefixes : elt -> elt list
  (** All prefixes of one behaviour, shortest first. *)

  val prefix_closure : t -> t
  val is_prefix_closed : t -> bool

  val maximal : t -> elt list
  (** Behaviours that are not strict prefixes of other members. *)
end
