(** Exhaustive enumeration of sequentially consistent executions.

    A depth-first scheduler over an abstract thread system
    ({!System.t}).  The scheduler owns the shared memory and the monitor
    table: reads are resolved to the most recent write (so only
    executions, in the paper's sense, are generated), locks respect
    mutual exclusion with reentrancy, and unlocks require ownership.

    All analyses are exact for systems whose global state graph is
    finite and acyclic (bounded programs; the language front-end
    guarantees acyclicity with a fuel counter).  A cyclic graph raises
    {!Cyclic}; exceeding the state budget raises {!Too_many_states}. *)

open Safeopt_trace

exception Cyclic
exception Too_many_states of int

val default_max_states : int

val behaviours :
  ?max_states:int -> ?local:(Action.t -> bool) -> 'ts System.t ->
  Behaviour.Set.t
(** The set of behaviours of all executions.  Prefix-closed.

    [local] enables a sound partial-order reduction: it must return
    [true] only for actions that are {e invisible} (not external) and
    {e independent of every other thread} — reads and writes of
    locations accessed by a single thread.  When some thread's unique
    enabled transition is a start action or a [local] action, only that
    transition is explored (a singleton persistent set): the action
    commutes with all other threads' actions, cannot enable or disable
    them, and contributes nothing observable, so the behaviour set is
    unchanged while the explored state space can shrink dramatically
    (see the bench ablation).  Default: no reduction. *)

val maximal_executions : ?max_steps:int -> 'ts System.t -> Interleaving.t list
(** All executions that cannot be extended (every execution is a prefix
    of one of these).  Exponential in general; intended for small
    systems in tests and figure reproductions.  [max_steps] bounds the
    total number of scheduler transitions explored. *)

val find_adjacent_race :
  ?max_states:int ->
  Location.Volatile.t ->
  'ts System.t ->
  Interleaving.t option
(** A witness execution whose last two actions are adjacent conflicting
    accesses by different threads, if one exists. *)

val is_drf : ?max_states:int -> Location.Volatile.t -> 'ts System.t -> bool
(** No execution has an (adjacent) data race. *)

val count_states :
  ?max_states:int -> ?local:(Action.t -> bool) -> 'ts System.t -> int
(** Number of distinct scheduler states explored (for benchmarks);
    [local] as in {!behaviours}. *)

val count_executions : ?max_steps:int -> 'ts System.t -> int
(** Number of maximal executions (no memoisation; benchmarks/tests). *)

val find_deadlock :
  ?max_states:int -> 'ts System.t -> Interleaving.t option
(** A witness execution reaching a state where no transition is enabled
    but some thread still offers steps (it is blocked on a lock) —
    i.e. a deadlock.  [None] if every blocked-free path ends with all
    threads out of steps. *)

val sample_behaviours :
  ?max_actions:int -> seed:int -> runs:int -> 'ts System.t -> Behaviour.Set.t
(** A randomised scheduler: [runs] executions with uniformly chosen
    enabled transitions, collecting their behaviours (prefix-closed).
    Sound under-approximation of {!behaviours} for systems too large to
    enumerate; deterministic for a fixed [seed]. *)
