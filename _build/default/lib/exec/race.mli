(** Data races and data race freedom (section 3).

    The paper's primary definition: an interleaving has a data race if
    it contains two {e adjacent} conflicting actions from different
    threads.  The equivalent happens-before characterisation: an
    execution is racy if two conflicting actions are unordered by
    happens-before.  Both are implemented; their agreement on executions
    is checked by a QCheck property in the test suite. *)

open Safeopt_trace

val adjacent_race : Location.Volatile.t -> Interleaving.t -> (int * int) option
(** The first pair of adjacent conflicting actions from different
    threads, if any. *)

val has_adjacent_race : Location.Volatile.t -> Interleaving.t -> bool

val hb_race : Location.Volatile.t -> Interleaving.t -> (int * int) option
(** The first pair of conflicting actions unordered by happens-before,
    if any. *)

val has_hb_race : Location.Volatile.t -> Interleaving.t -> bool

val traceset_drf :
  Location.Volatile.t -> Safeopt_trace.Traceset.t -> max_states:int -> bool
(** Exhaustively checks that no execution of the (explicit, finite)
    traceset has an adjacent data race.
    @raise Failure if more than [max_states] scheduler states are
    explored (the traceset is too large for exhaustive checking). *)

val find_racy_execution :
  Location.Volatile.t ->
  Safeopt_trace.Traceset.t ->
  max_states:int ->
  Interleaving.t option
(** A witness execution ending in an adjacent conflicting pair, if the
    traceset is racy. *)
