(* Quickstart: parse a program, enumerate its SC behaviours, check data
   race freedom, apply one syntactic transformation, and validate the
   transformation against the DRF guarantee.

   Run with: dune exec examples/quickstart.exe *)

open Safeopt_lang

let source =
  {|
thread {
  data := 1;
  lock m;
  flag := 1;
  unlock m;
}
thread {
  lock m;
  r1 := flag;
  unlock m;
  if (r1 == 1) { r2 := data; print r2; }
}
|}

let () =
  (* 1. Parse. *)
  let p = Parser.parse_program source in
  Fmt.pr "--- program ---@.%a@.@." Pp.program p;

  (* 2. Enumerate all sequentially consistent behaviours. *)
  let behaviours = Interp.behaviours p in
  Fmt.pr "behaviours: %a@."
    Fmt.(list ~sep:comma string)
    (Interp.behaviour_strings behaviours);

  (* 3. Data race freedom (the paper's adjacent-conflict definition,
        checked over every execution). *)
  Fmt.pr "data race free: %b@.@." (Interp.is_drf p);

  (* 4. Apply a roach-motel reordering: move the store to [data] into
        the critical section (rule R-WL of Fig. 11). *)
  let p' =
    match Safeopt_opt.Transform.apply_named "R-WL" p with
    | Ok p' -> p'
    | Error e -> failwith e
  in
  Fmt.pr "--- after R-WL (store moved into the critical section) ---@.%a@.@."
    Pp.program p';

  (* 5. Validate: the original is DRF, so the transformed program must
        be DRF and must not exhibit new behaviours (Theorem 4). *)
  let report = Safeopt_opt.Validate.validate ~original:p ~transformed:p' () in
  Fmt.pr "%a@." Safeopt_opt.Validate.pp_report report;
  Fmt.pr "DRF guarantee: %s@."
    (if Safeopt_opt.Validate.ok report then "HOLDS" else "VIOLATED")
