(* A small optimising compiler built from the paper's rules: constant
   propagation, copy propagation and rule-driven redundancy
   elimination, with every elimination step justified by a Fig. 10 rule
   and the whole pipeline validated against the DRF guarantee and the
   semantic elimination relation.

   Run with: dune exec examples/compiler_pipeline.exe *)

open Safeopt_lang
open Safeopt_opt

let banner fmt = Fmt.pr ("@.== " ^^ fmt ^^ " ==@.")

let source =
  {|
thread {
  r1 := 1;
  x := r1;
  r2 := x;
  y := r2;
  r3 := x;
  z := r3;
  r4 := z;
  z := r4;
  print r3;
}
thread {
  lock m;
  r5 := y;
  r6 := y;
  x := r5;
  x := r6;
  unlock m;
}
|}

let () =
  let p = Parser.parse_program source in
  banner "input";
  Fmt.pr "%a@." Pp.program p;

  banner "constant + copy propagation (trace preserving)";
  let p1 = Passes.copy_propagation (Passes.constant_propagation p) in
  Fmt.pr "%a@." Pp.program p1;

  banner "rule-driven redundancy elimination";
  let p2, chain = Passes.eliminate_redundancy p1 in
  List.iter (fun s -> Fmt.pr "  applied %a@." Transform.pp_step s) chain;
  Fmt.pr "%a@." Pp.program p2;

  banner "validation";
  let report = Validate.validate ~original:p ~transformed:p2 () in
  Fmt.pr "%a@." Validate.pp_report report;
  Fmt.pr "DRF guarantee: %s@."
    (if Validate.ok report then "HOLDS" else "VIOLATED");

  banner "semantic justification (bounded denotations)";
  let report' =
    Validate.validate_semantic ~max_len:14 ~relation:Validate.Elimination
      ~original:p ~transformed:p2 ()
  in
  Fmt.pr "transformed traceset is a semantic elimination: %a@."
    Fmt.(option bool)
    report'.Validate.relation_holds
