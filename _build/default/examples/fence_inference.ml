(* A memory-model tour: run the classic litmus shapes under SC, TSO and
   PSO, then let the robustness pass infer the volatile annotations
   (fences) that restore sequential consistency on hardware — the DRF
   guarantee as a compilation strategy (paper, sections 1 and 8).

   Run with: dune exec examples/fence_inference.exe *)

open Safeopt_exec
open Safeopt_lang
open Safeopt_litmus
open Safeopt_tso

let tour t =
  let p = Litmus.program t in
  let sc = Interp.behaviours p in
  let tso = Machine.program_behaviours p in
  let pso = Pso.program_behaviours p in
  Fmt.pr "  %-14s SC=%-3d TSO=+%-3d PSO=+%-3d   tso-weak=%-10s pso-weak=%s@."
    t.Litmus.name
    (Behaviour.Set.cardinal sc)
    (Behaviour.Set.cardinal (Behaviour.Set.diff tso sc))
    (Behaviour.Set.cardinal (Behaviour.Set.diff pso sc))
    (Fmt.str "%a" Behaviour.Set.pp (Behaviour.Set.diff tso sc))
    (Fmt.str "%a" Behaviour.Set.pp (Behaviour.Set.diff pso sc))

let () =
  Fmt.pr "== behaviours per memory model ==@.";
  List.iter tour
    [
      Corpus.sb;
      Corpus.mp;
      Corpus.lb;
      Corpus.corr;
      Corpus.iriw;
      Corpus.sb_volatile;
      Corpus.mp_volatile;
    ];

  Fmt.pr "@.== fence inference ==@.";
  List.iter
    (fun t ->
      let p = Litmus.program t in
      let p', promoted = Robustness.enforce p in
      Fmt.pr "  %-14s promote { %s }  ->  TSO-robust: %b, PSO-weak: %a@."
        t.Litmus.name
        (String.concat ", " promoted)
        (Robustness.is_robust p')
        Behaviour.Set.pp (Pso.weak_behaviours p'))
    [ Corpus.sb; Corpus.mp; Corpus.lb ];

  Fmt.pr "@.== why it works: DRF transports SC to hardware ==@.";
  Fmt.pr
    "  Every TSO/PSO reordering is one of the paper's safe transformations@.";
  Fmt.pr
    "  (R-WR, R-WW, E-RAW); safe transformations cannot change the@.";
  Fmt.pr
    "  behaviours of DRF programs (Theorems 1-2) — so making the program@.";
  Fmt.pr "  DRF makes the hardware invisible.@.";

  Fmt.pr "@.== sampling vs exhaustive (large-program escape hatch) ==@.";
  let p = Litmus.program Corpus.iriw in
  let exact = Interp.behaviours p in
  List.iter
    (fun runs ->
      let sampled = Interp.sample_behaviours ~seed:11 ~runs p in
      Fmt.pr "  %4d runs: %d/%d behaviours found@." runs
        (Behaviour.Set.cardinal sampled)
        (Behaviour.Set.cardinal exact))
    [ 10; 100; 1000 ]
