(* Out-of-thin-air, executable (section 5, Lemmas 2-3, Theorem 5): the
   relay program cannot output 42 — no trace of it is an origin for 42,
   no transformation can create one, and no execution of any
   transformation of it mentions 42.

   Run with: dune exec examples/oota_demo.exe *)

open Safeopt_trace
open Safeopt_lang
open Safeopt_litmus
open Safeopt_core

let () =
  let p = Litmus.program Corpus.oota in
  Fmt.pr "== the relay program ==@.%a@.@." Pp.program p;

  (* Lemma 6: no statement r := 42, so no trace is an origin for 42. *)
  Fmt.pr "constants in the program: %a@."
    Fmt.(brackets (list ~sep:comma int))
    (Ast.constants_program p);
  let universe = 0 :: 42 :: Denote.universe p in
  let ts = Denote.traceset ~universe ~max_len:8 p in
  Fmt.pr "traceset (bounded, universe includes 42): %d traces@."
    (Traceset.cardinal ts);
  Fmt.pr "some trace is an origin for 42: %b@."
    (Origin.traceset_has_origin 42 ts);
  Fmt.pr "some trace is an origin for 1:  %b@."
    (Origin.traceset_has_origin 1 ts);

  (* Lemma 3 on the bounded traceset: no execution mentions 42. *)
  (match Origin.check_lemma3 42 ts ~max_steps:2_000_000 with
  | Ok () -> Fmt.pr "Lemma 3 check: no execution mentions 42@."
  | Error cex ->
      Fmt.pr "Lemma 3 COUNTEREXAMPLE: %a@." Safeopt_exec.Interleaving.pp cex);

  (* Theorem 5: no composition of the syntactic rules makes it print
     42.  We take the whole reachable set under all rules and check
     every program. *)
  let reachable =
    Safeopt_opt.Transform.reachable ~max_programs:2_000
      (Safeopt_opt.Rule.all @ [ Safeopt_opt.Rule.i_ir ])
      p
  in
  Fmt.pr "@.programs reachable via all rules (incl. read introduction): %d@."
    (List.length reachable);
  let bad =
    List.filter (fun q -> Interp.can_output q 42) reachable
  in
  Fmt.pr "...of which can output 42: %d@." (List.length bad);
  (* 1 is not a constant of the program either, so it is equally
     unmanufacturable (Theorem 5 with c = 1). *)
  let can_1 = List.filter (fun q -> Interp.can_output q 1) reachable in
  Fmt.pr "...of which can output 1: %d@." (List.length can_1)
