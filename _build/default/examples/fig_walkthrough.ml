(* Walk through the paper's Figures 1-3 and the section-4 worked
   example, reproducing each claim with the exhaustive interpreter and
   the semantic transformation checkers.

   Run with: dune exec examples/fig_walkthrough.exe *)

open Safeopt_trace
open Safeopt_exec
open Safeopt_lang
open Safeopt_litmus

let show t =
  let o = Litmus.check t in
  Fmt.pr "  %-18s drf=%-5b behaviours=%a@." t.Litmus.name o.Litmus.drf_actual
    Fmt.(list ~sep:sp string)
    (Interp.behaviour_strings o.Litmus.behaviours)

let banner fmt = Fmt.pr ("@.== " ^^ fmt ^^ " ==@.")

(* --- Figure 1: eliminations change racy behaviours ------------------- *)

let fig1 () =
  banner "Figure 1 (elimination)";
  show Corpus.fig1_original;
  show Corpus.fig1_transformed;
  let orig = Litmus.program Corpus.fig1_original in
  let trans = Litmus.program Corpus.fig1_transformed in
  Fmt.pr "  original can print 1 then 0: %b@."
    (Behaviour.Set.mem [ 1; 0 ] (Interp.behaviours orig));
  Fmt.pr "  transformed can print 1 then 0: %b@."
    (Behaviour.Set.mem [ 1; 0 ] (Interp.behaviours trans));
  (* The transformation is a legitimate semantic elimination, so the
     new behaviour is only possible because the original is racy. *)
  let universe = Denote.joint_universe [ orig; trans ] in
  let ts_o = Denote.traceset ~universe ~max_len:10 orig in
  let ts_t = Denote.traceset ~universe ~max_len:10 trans in
  Fmt.pr "  transformed traceset is an elimination of the original: %b@."
    (Safeopt_core.Elimination.is_elimination orig.Ast.volatile ~original:ts_o
       ~universe ~transformed:ts_t);
  (* The paper's worked trace: t' is obtained from a trace of the
     original by dropping the redundant second read of x. *)
  let t' =
    Action.
      [ Start 1; Read ("y", 1); External 1; Read ("x", 0); External 0 ]
  in
  let witness =
    Safeopt_core.Elimination.find_witness orig.Ast.volatile
      ~belongs_to:(Denote.belongs_to ~universe orig)
      ~candidates:(Traceset.to_list ts_o) ~transformed:t'
  in
  match witness with
  | Some w ->
      Fmt.pr "  witness for %a:@.    %a@." Trace.pp t'
        Safeopt_core.Elimination.pp_witness w
  | None -> Fmt.pr "  (no witness found — unexpected)@."

(* --- Figure 2: reordering --------------------------------------------- *)

let fig2 () =
  banner "Figure 2 (reordering)";
  show Corpus.fig2_original;
  show Corpus.fig2_transformed;
  let orig = Litmus.program Corpus.fig2_original in
  let trans = Litmus.program Corpus.fig2_transformed in
  Fmt.pr "  transformed can print 1: %b (original: %b)@."
    (Interp.can_output trans 1) (Interp.can_output orig 1);
  (* Syntactically, Fig. 2 is R-RW in thread 0 (the desugared constant
     store also needs its silent move commuted past the load). *)
  (match
     Safeopt_opt.Transform.find_chain
       (Safeopt_opt.Rule.reorderings @ Safeopt_opt.Rule.moves)
       ~source:orig ~target:trans
   with
  | Some chain ->
      Fmt.pr "  rule chain: %a@." Safeopt_opt.Transform.pp_chain chain
  | None -> Fmt.pr "  (no rule chain — unexpected)@.");
  (* Semantically it is an elimination followed by a reordering, as
     worked in section 4 (the trace [S(0); W[x=1]] needs an irrelevant
     read of y eliminated before the permutation). *)
  let universe = Denote.joint_universe [ orig; trans ] in
  let ts_o = Denote.traceset ~universe ~max_len:8 orig in
  let ts_t = Denote.traceset ~universe ~max_len:8 trans in
  let direct =
    Safeopt_core.Reorder.is_reordering orig.Ast.volatile ~original:ts_o
      ~transformed:ts_t
  in
  let via_elim =
    Safeopt_core.Reorder.is_reordering_of_oracle orig.Ast.volatile
      ~mem:(fun t ->
        Safeopt_core.Elimination.is_member orig.Ast.volatile ~original:ts_o
          ~universe t)
      ~transformed:ts_t
  in
  Fmt.pr "  reordering of the original traceset directly: %b@." direct;
  Fmt.pr "  reordering of an elimination of the original:  %b@." via_elim

(* --- Figure 3: the DRF-guarantee limitation --------------------------- *)

let fig3 () =
  banner "Figure 3 (irrelevant read introduction)";
  show Corpus.fig3_a;
  show Corpus.fig3_b;
  show Corpus.fig3_c;
  let a = Litmus.program Corpus.fig3_a in
  let b = Litmus.program Corpus.fig3_b in
  let c = Litmus.program Corpus.fig3_c in
  Fmt.pr "  (a) can print 0,0: %b   (b): %b   (c): %b@."
    (Behaviour.Set.mem [ 0; 0 ] (Interp.behaviours a))
    (Behaviour.Set.mem [ 0; 0 ] (Interp.behaviours b))
    (Behaviour.Set.mem [ 0; 0 ] (Interp.behaviours c));
  (* (a) -> (b) is the pass [introduce_irrelevant_reads]; it preserves
     SC behaviour but destroys DRF. *)
  let b' = Safeopt_opt.Passes.introduce_irrelevant_reads a in
  Fmt.pr "  (a)->(b) preserves SC behaviours: %b; destroys DRF: %b@."
    (Behaviour.Set.equal (Interp.behaviours a) (Interp.behaviours b'))
    (not (Interp.is_drf b'));
  (* (b) -> (c) is redundant read elimination across an acquire — a
     legitimate Definition-1 elimination.  The result differs from the
     corpus (c) only in temporary register names, so compare
     semantically. *)
  let c' = Safeopt_opt.Passes.eliminate_reads_across_acquires b in
  Fmt.pr "  (b)->(c) by E-RAR-ACQ reproduces Fig. 3(c)'s behaviours: %b@."
    (Behaviour.Set.equal (Interp.behaviours c) (Interp.behaviours c'));
  let universe = Denote.joint_universe [ b; c ] in
  let ts_b = Denote.traceset ~universe ~max_len:9 b in
  let ts_c = Denote.traceset ~universe ~max_len:9 c in
  Fmt.pr "  (c)'s traceset is an elimination of (b)'s: %b@."
    (Safeopt_core.Elimination.is_elimination b.Ast.volatile ~original:ts_b
       ~universe ~transformed:ts_c);
  Fmt.pr
    "  => each step is individually defensible, yet (a) is DRF and (c)@.     \
     prints two zeros: the composition breaks the DRF guarantee.@."

(* --- Section 4's traceset elimination example ------------------------- *)

let sec4 () =
  banner "Section 4 (traceset elimination example)";
  show Corpus.sec4_elim_original;
  show Corpus.sec4_elim_transformed;
  let orig = Litmus.program Corpus.sec4_elim_original in
  let trans = Litmus.program Corpus.sec4_elim_transformed in
  let universe = Denote.joint_universe [ orig; trans ] in
  let ts_o = Denote.traceset ~universe ~max_len:12 orig in
  let ts_t = Denote.traceset ~universe ~max_len:12 trans in
  Fmt.pr "  transformed traceset is an elimination of the original: %b@."
    (Safeopt_core.Elimination.is_elimination orig.Ast.volatile ~original:ts_o
       ~universe ~transformed:ts_t)

let () =
  fig1 ();
  fig2 ();
  fig3 ();
  sec4 ()
