(* The section-8 outlook, executable: a store-buffer TSO machine runs
   the classic litmus shapes, and every weak behaviour it exhibits is
   reproduced under SC by a program reachable through the paper's
   transformations (write-read reordering R-WR + store-to-load
   forwarding E-RAW).

   Run with: dune exec examples/tso_demo.exe *)

open Safeopt_exec
open Safeopt_lang
open Safeopt_litmus

let check name p =
  let tso, sc_union, explained =
    Safeopt_tso.Machine.explained_by_transformations p
  in
  let weak = Safeopt_tso.Machine.weak_behaviours p in
  Fmt.pr "  %-16s weak=%a explained-by-transformations=%b (tso %d, union %d)@."
    name Behaviour.Set.pp weak explained
    (Behaviour.Set.cardinal tso)
    (Behaviour.Set.cardinal sc_union)

let () =
  Fmt.pr "== TSO weak behaviours and their transformation explanations ==@.";
  List.iter
    (fun t -> check t.Litmus.name (Litmus.program t))
    [
      Corpus.sb;
      Corpus.lb;
      Corpus.mp;
      Corpus.mp_volatile;
      Corpus.mp_locked;
      Corpus.corr;
      Corpus.fig2_original;
      Corpus.dekker_volatile;
    ];
  Fmt.pr "@.== DRF programs have no weak behaviours (Theorem 2 + sec. 8) ==@.";
  List.iter
    (fun t ->
      let p = Litmus.program t in
      let weak = Safeopt_tso.Machine.weak_behaviours p in
      Fmt.pr "  %-16s drf=%b weak=%a@." t.Litmus.name (Interp.is_drf p)
        Behaviour.Set.pp weak)
    [ Corpus.fig3_a; Corpus.mp_volatile; Corpus.mp_locked; Corpus.intro_volatile ]
