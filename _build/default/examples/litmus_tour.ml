(* Tour the whole litmus corpus through every analysis in the library:
   SC behaviours, race freedom, TSO/PSO weakness and fence inference —
   a one-screen summary of what the toolkit knows about each shape.
   This example uses the umbrella [Safeopt] module.

   Run with: dune exec examples/litmus_tour.exe *)

open Safeopt

let () =
  Fmt.pr "%-18s %-5s %-28s %-10s %-10s %s@." "test" "drf" "maximal behaviours"
    "tso-weak" "pso-weak" "fences";
  Fmt.pr "%s@." (String.make 96 '-');
  List.iter
    (fun t ->
      let p = Litmus.program t in
      let o = Litmus.check t in
      assert (Litmus.passed o);
      let show_weak w =
        if Behaviour.Set.is_empty w then "-"
        else Fmt.str "%a" Behaviour.Set.pp w
      in
      let _, promoted = Robustness.enforce p in
      Fmt.pr "%-18s %-5b %-28s %-10s %-10s %s@." t.Litmus.name
        o.Litmus.drf_actual
        (String.concat " " (Interp.behaviour_strings o.Litmus.behaviours)
        |> fun s ->
         if String.length s > 26 then String.sub s 0 23 ^ "..." else s)
        (show_weak (Tso.weak_behaviours p))
        (show_weak (Pso.weak_behaviours p))
        (if promoted = [] then "-" else String.concat "," promoted))
    Corpus.all;
  Fmt.pr "@.%d tests, all expectations hold.@." (List.length Corpus.all)
