(* Message passing three ways: racy flags, volatile flag, lock-
   protected — the workloads the paper's introduction motivates.  For
   each variant: DRF verdict, behaviours, and what the optimiser may
   and may not do to it.

   Run with: dune exec examples/message_passing.exe *)

open Safeopt_lang
open Safeopt_litmus

let banner fmt = Fmt.pr ("@.== " ^^ fmt ^^ " ==@.")

let describe name p =
  Fmt.pr "  %-12s drf=%-5b behaviours: %a@." name (Interp.is_drf p)
    Fmt.(list ~sep:comma string)
    (Interp.behaviour_strings (Interp.behaviours p))

let () =
  banner "three message-passing idioms";
  let racy = Litmus.program Corpus.mp in
  let vol = Litmus.program Corpus.mp_volatile in
  let locked = Litmus.program Corpus.mp_locked in
  describe "racy" racy;
  describe "volatile" vol;
  describe "locked" locked;

  banner "what reordering does to each";
  (* Swapping the data and flag writes (rule R-WW) is allowed
     syntactically only when the flag is non-volatile.  Core syntax so
     the two stores are adjacent. *)
  let writer_core ~volatile =
    Parser.parse_program
      ((if volatile then "volatile flag;\n" else "")
      ^ {|
thread {
  rd := 1;
  rf := 1;
  data := rd;
  flag := rf;
}
thread {
  r1 := flag;
  if (r1 == 1) { r2 := data; print r2; }
}
|})
  in
  let try_swap name p =
    match Safeopt_opt.Transform.apply_named "R-WW" p with
    | Ok p' ->
        let r = Safeopt_opt.Validate.validate ~original:p ~transformed:p' () in
        Fmt.pr "  %-12s R-WW applies; new behaviour: %a; DRF guarantee %s@."
          name
          Fmt.(option ~none:(any "none") Safeopt_exec.Behaviour.pp)
          r.Safeopt_opt.Validate.new_behaviour
          (if Safeopt_opt.Validate.ok r then "HOLDS (racy original, vacuous)"
           else "VIOLATED")
    | Error _ -> Fmt.pr "  %-12s R-WW does not apply (flag is volatile)@." name
  in
  try_swap "racy" (writer_core ~volatile:false);
  try_swap "volatile" (writer_core ~volatile:true);

  banner "roach motel on the locked variant";
  (* Move the reader's conditional print... not movable; but the
     writer's store to data can move INTO the critical section. *)
  let locked' =
    Parser.parse_program
      {|
thread {
  data := 1;
  lock m;
  flag := 1;
  unlock m;
}
thread {
  lock m;
  r1 := flag;
  if (r1 == 1) { r2 := data; print r2; }
  unlock m;
}
|}
  in
  describe "hoistable" locked';
  (match Safeopt_opt.Transform.apply_named "R-WL" locked' with
  | Ok p' ->
      Fmt.pr "  after R-WL:@.%a@." Pp.program p';
      let r = Safeopt_opt.Validate.validate ~original:locked' ~transformed:p' () in
      Fmt.pr "  DRF guarantee: %s@."
        (if Safeopt_opt.Validate.ok r then "HOLDS" else "VIOLATED")
  | Error e -> Fmt.pr "  R-WL failed: %s@." e);

  banner "the unsafe direction";
  (* Moving an access OUT of a critical section is not a rule, and for
     good reason: doing it by hand creates a race. *)
  let escaped =
    Parser.parse_program
      {|
thread {
  lock m;
  flag := 1;
  unlock m;
  data := 1;
}
thread {
  lock m;
  r1 := flag;
  if (r1 == 1) { r2 := data; print r2; }
  unlock m;
}
|}
  in
  let r =
    Safeopt_opt.Validate.validate ~original:locked' ~transformed:escaped ()
  in
  Fmt.pr "  store sunk out of the lock: %a@." Safeopt_opt.Validate.pp_report r;
  Fmt.pr "  DRF guarantee: %s@."
    (if Safeopt_opt.Validate.ok r then "HOLDS" else "VIOLATED")
