examples/quickstart.ml: Fmt Interp Parser Pp Safeopt_lang Safeopt_opt
