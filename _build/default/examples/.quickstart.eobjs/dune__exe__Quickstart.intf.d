examples/quickstart.mli:
