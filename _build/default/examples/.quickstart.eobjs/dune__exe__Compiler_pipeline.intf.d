examples/compiler_pipeline.mli:
