examples/fence_inference.mli:
