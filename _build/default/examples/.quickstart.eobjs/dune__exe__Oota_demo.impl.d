examples/oota_demo.ml: Ast Corpus Denote Fmt Interp List Litmus Origin Pp Safeopt_core Safeopt_exec Safeopt_lang Safeopt_litmus Safeopt_opt Safeopt_trace Traceset
