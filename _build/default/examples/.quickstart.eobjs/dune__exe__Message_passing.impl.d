examples/message_passing.ml: Corpus Fmt Interp Litmus Parser Pp Safeopt_exec Safeopt_lang Safeopt_litmus Safeopt_opt
