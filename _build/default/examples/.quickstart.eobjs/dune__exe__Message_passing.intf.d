examples/message_passing.mli:
