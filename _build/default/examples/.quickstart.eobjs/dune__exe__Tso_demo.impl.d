examples/tso_demo.ml: Behaviour Corpus Fmt Interp List Litmus Safeopt_exec Safeopt_lang Safeopt_litmus Safeopt_tso
