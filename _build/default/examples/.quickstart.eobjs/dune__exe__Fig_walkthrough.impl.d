examples/fig_walkthrough.ml: Action Ast Behaviour Corpus Denote Fmt Interp Litmus Safeopt_core Safeopt_exec Safeopt_lang Safeopt_litmus Safeopt_opt Safeopt_trace Trace Traceset
