examples/tso_demo.mli:
