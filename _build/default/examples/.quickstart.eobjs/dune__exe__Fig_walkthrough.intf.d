examples/fig_walkthrough.mli:
