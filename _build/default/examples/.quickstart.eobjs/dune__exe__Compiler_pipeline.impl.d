examples/compiler_pipeline.ml: Fmt List Parser Passes Pp Safeopt_lang Safeopt_opt Transform Validate
