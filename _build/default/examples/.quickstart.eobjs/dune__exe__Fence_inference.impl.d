examples/fence_inference.ml: Behaviour Corpus Fmt Interp List Litmus Machine Pso Robustness Safeopt_exec Safeopt_lang Safeopt_litmus Safeopt_tso String
