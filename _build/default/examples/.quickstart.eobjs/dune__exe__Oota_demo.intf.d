examples/oota_demo.mli:
