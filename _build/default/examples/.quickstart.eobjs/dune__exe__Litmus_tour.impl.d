examples/litmus_tour.ml: Behaviour Corpus Fmt Interp List Litmus Pso Robustness Safeopt String Tso
