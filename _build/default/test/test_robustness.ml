open Safeopt_lang
open Safeopt_litmus
open Safeopt_tso

let check_b = Alcotest.(check bool)

let test_sb () =
  let sb = Litmus.program Corpus.sb in
  check_b "sb not robust" false (Robustness.is_robust sb);
  let sb', promoted = Robustness.enforce sb in
  check_b "promotions happened" true (promoted <> []);
  check_b "now DRF" true (Interp.is_drf sb');
  check_b "now robust" true (Robustness.is_robust sb');
  (* behaviours under SC unchanged by volatility annotations *)
  check_b "SC behaviours unchanged" true
    (Safeopt_exec.Behaviour.Set.equal (Interp.behaviours sb)
       (Interp.behaviours sb'))

let test_already_drf () =
  let p = Litmus.program Corpus.mp_locked in
  let p', promoted = Robustness.enforce p in
  check_b "no promotions" true (promoted = []);
  check_b "unchanged" true (Ast.equal_program p p')

let test_raced_location () =
  let sb = Litmus.program Corpus.sb in
  (match Robustness.raced_location sb with
  | Some l -> check_b "raced location is x or y" true (l = "x" || l = "y")
  | None -> Alcotest.fail "sb must have a raced location");
  check_b "DRF program has none" true
    (Robustness.raced_location (Litmus.program Corpus.fig3_a) = None)

let test_mp () =
  let mp = Litmus.program Corpus.mp in
  let mp', promoted = Robustness.enforce mp in
  check_b "flag (at least) promoted" true (promoted <> []);
  check_b "mp robust afterwards" true (Robustness.is_robust mp');
  check_b "PSO-robust too (DRF covers PSO as well)" true
    (Safeopt_exec.Behaviour.Set.is_empty (Pso.weak_behaviours mp'))

let test_whole_corpus () =
  List.iter
    (fun t ->
      let p = Litmus.program t in
      let p', _ = Robustness.enforce p in
      if not (Interp.is_drf p') then
        Alcotest.failf "%s: enforce did not reach DRF" t.Litmus.name;
      if not (Robustness.is_robust p') then
        Alcotest.failf "%s: enforced program still TSO-weak" t.Litmus.name)
    Corpus.all

let () =
  Alcotest.run "robustness"
    [
      ( "robustness",
        [
          Alcotest.test_case "store buffering" `Quick test_sb;
          Alcotest.test_case "already DRF" `Quick test_already_drf;
          Alcotest.test_case "raced location" `Quick test_raced_location;
          Alcotest.test_case "message passing" `Quick test_mp;
          Alcotest.test_case "whole corpus" `Slow test_whole_corpus;
        ] );
    ]
