open Safeopt_trace
open Helpers

let check = Alcotest.(check bool)

let test_shapes () =
  check "read is read" true (Action.is_read (r "x" 1));
  check "write is not read" false (Action.is_read (w "x" 1));
  check "write is access" true (Action.is_access (w "x" 1));
  check "lock is not access" false (Action.is_access (lk "m"));
  check "external" true (Action.is_external (ext 3));
  check "start" true (Action.is_start (st 0));
  Alcotest.(check (option string)) "location of read" (Some "x")
    (Action.location (r "x" 0));
  Alcotest.(check (option string)) "location of lock" None
    (Action.location (lk "m"));
  Alcotest.(check (option int)) "value of write" (Some 7)
    (Action.value (w "z" 7));
  Alcotest.(check (option int)) "value of external" (Some 7)
    (Action.value (ext 7));
  Alcotest.(check (option int)) "value of lock" None (Action.value (lk "m"));
  Alcotest.(check (option string)) "monitor" (Some "m") (Action.monitor (ul "m"))

let test_equal_compare () =
  check "equal reads" true (Action.equal (r "x" 1) (r "x" 1));
  check "unequal value" false (Action.equal (r "x" 1) (r "x" 2));
  check "read/write differ" false (Action.equal (r "x" 1) (w "x" 1));
  Alcotest.(check int) "compare reflexive" 0 (Action.compare (ext 1) (ext 1));
  check "compare antisym" true
    (Action.compare (r "x" 1) (w "x" 1) = -Action.compare (w "x" 1) (r "x" 1))

let test_volatility () =
  check "volatile read is acquire" true (Action.is_acquire vol_v (r "v" 0));
  check "normal read is not acquire" false (Action.is_acquire vol_v (r "x" 0));
  check "lock is acquire" true (Action.is_acquire none (lk "m"));
  check "volatile write is release" true (Action.is_release vol_v (w "v" 0));
  check "unlock is release" true (Action.is_release none (ul "m"));
  check "normal write is not release" false (Action.is_release vol_v (w "x" 0));
  check "volatile access" true (Action.is_volatile_access vol_v (r "v" 1));
  check "normal access" true (Action.is_normal_access vol_v (r "x" 1));
  check "volatile read not normal" false (Action.is_normal_read vol_v (r "v" 1));
  check "sync" true (Action.is_sync vol_v (w "v" 0));
  check "sync-or-external covers external" true
    (Action.is_sync_or_external none (ext 0));
  check "plain write not sync" false (Action.is_sync vol_v (w "x" 0))

let test_conflicting () =
  check "write-write same loc" true (Action.conflicting none (w "x" 1) (w "x" 2));
  check "write-read same loc" true (Action.conflicting none (w "x" 1) (r "x" 0));
  check "read-read same loc" false (Action.conflicting none (r "x" 1) (r "x" 0));
  check "different locations" false
    (Action.conflicting none (w "x" 1) (w "y" 1));
  check "volatile accesses never conflict" false
    (Action.conflicting vol_v (w "v" 1) (r "v" 1));
  check "lock does not conflict" false
    (Action.conflicting none (lk "m") (w "x" 1))

let test_release_acquire_pair () =
  check "unlock-lock same monitor" true
    (Action.release_acquire_pair none (ul "m") (lk "m"));
  check "unlock-lock different monitors" false
    (Action.release_acquire_pair none (ul "m") (lk "n"));
  check "volatile write-read" true
    (Action.release_acquire_pair vol_v (w "v" 1) (r "v" 0));
  check "normal write-read is not a pair" false
    (Action.release_acquire_pair none (w "x" 1) (r "x" 1));
  check "wrong order" false (Action.release_acquire_pair none (lk "m") (ul "m"))

(* The asymmetries called out in section 4. *)
let test_reorderable_asymmetry () =
  check "write past later acquire (roach motel)" true
    (Action.reorderable none (w "x" 1) (lk "m"));
  check "acquire past later write: forbidden" false
    (Action.reorderable none (lk "m") (w "x" 1));
  check "release past later write" true
    (Action.reorderable none (ul "m") (w "x" 1));
  check "write past later release: forbidden" false
    (Action.reorderable none (w "x" 1) (ul "m"));
  check "volatile write (release) past later normal write" true
    (Action.reorderable vol_v (w "v" 1) (w "x" 1));
  check "normal write past later volatile read (acquire)" true
    (Action.reorderable vol_v (w "x" 1) (r "v" 0))

let test_reorderable_conflicts () =
  check "same-location writes" false
    (Action.reorderable none (w "x" 1) (w "x" 2));
  check "same-location write-read" false
    (Action.reorderable none (w "x" 1) (r "x" 1));
  check "same-location reads are reorderable" true
    (Action.reorderable none (r "x" 1) (r "x" 2));
  check "distinct-location accesses" true
    (Action.reorderable none (w "x" 1) (w "y" 1));
  check "external with external: forbidden" false
    (Action.reorderable none (ext 1) (ext 2));
  check "external past later read" true (Action.reorderable none (ext 1) (r "x" 0));
  check "write past later external" true
    (Action.reorderable none (w "x" 1) (ext 1));
  check "sync with sync: forbidden" false
    (Action.reorderable none (ul "m") (lk "m"));
  check "start is not reorderable with anything" false
    (Action.reorderable none (st 0) (w "x" 1))

let () =
  Alcotest.run "action"
    [
      ( "classification",
        [
          Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "equal/compare" `Quick test_equal_compare;
          Alcotest.test_case "volatility" `Quick test_volatility;
          Alcotest.test_case "conflicting" `Quick test_conflicting;
          Alcotest.test_case "release-acquire pairs" `Quick
            test_release_acquire_pair;
        ] );
      ( "reorderable",
        [
          Alcotest.test_case "asymmetry" `Quick test_reorderable_asymmetry;
          Alcotest.test_case "conflicts" `Quick test_reorderable_conflicts;
        ] );
    ]
