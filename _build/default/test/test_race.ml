open Safeopt_exec
open Helpers

let check_b = Alcotest.(check bool)

let racy_i = il [ (0, st 0); (1, st 1); (0, w "x" 1); (1, r "x" 1) ]

let locked_i =
  il
    [
      (0, st 0);
      (1, st 1);
      (0, lk "m");
      (0, w "x" 1);
      (0, ul "m");
      (1, lk "m");
      (1, r "x" 1);
      (1, ul "m");
    ]

let test_adjacent () =
  Alcotest.(check (option (pair int int))) "adjacent pair" (Some (2, 3))
    (Race.adjacent_race none racy_i);
  check_b "locked has none" false (Race.has_adjacent_race none locked_i);
  (* same thread conflicting accesses are not a race *)
  let same = il [ (0, st 0); (0, w "x" 1); (0, r "x" 1) ] in
  check_b "same thread" false (Race.has_adjacent_race none same);
  (* volatile conflicting accesses are not races *)
  let voli = il [ (0, st 0); (1, st 1); (0, w "v" 1); (1, r "v" 1) ] in
  check_b "volatile access" false (Race.has_adjacent_race vol_v voli);
  check_b "same without volatility" true (Race.has_adjacent_race none voli)

let test_hb_race () =
  check_b "racy by hb too" true (Race.has_hb_race none racy_i);
  check_b "locked has no hb race" false (Race.has_hb_race none locked_i);
  (* Non-adjacent but unordered conflict: hb-race without adjacency in
     THIS interleaving (adjacency appears in a different schedule). *)
  let spread =
    il [ (0, st 0); (1, st 1); (0, w "x" 1); (0, ext 0); (1, r "x" 1) ]
  in
  check_b "spread conflict is an hb race" true (Race.has_hb_race none spread);
  check_b "spread conflict not adjacent here" false
    (Race.has_adjacent_race none spread)

let test_traceset_drf () =
  let racy_ts =
    Safeopt_trace.Traceset.of_list
      [ [ st 0; w "x" 1 ]; [ st 1; r "x" 0 ]; [ st 1; r "x" 1 ] ]
  in
  check_b "racy traceset" false (Race.traceset_drf none racy_ts ~max_states:10_000);
  (match Race.find_racy_execution none racy_ts ~max_states:10_000 with
  | Some i ->
      let n = Interleaving.length i in
      check_b "witness ends in adjacent conflict" true
        (Race.adjacent_race none i = Some (n - 2, n - 1))
  | None -> Alcotest.fail "expected a racy witness");
  let locked_ts =
    Safeopt_trace.Traceset.of_list
      [
        [ st 0; lk "m"; w "x" 1; ul "m" ];
        [ st 1; lk "m"; r "x" 0; ul "m" ];
        [ st 1; lk "m"; r "x" 1; ul "m" ];
      ]
  in
  check_b "locked traceset DRF" true
    (Race.traceset_drf none locked_ts ~max_states:10_000)

let () =
  Alcotest.run "race"
    [
      ( "race",
        [
          Alcotest.test_case "adjacent definition" `Quick test_adjacent;
          Alcotest.test_case "happens-before definition" `Quick test_hb_race;
          Alcotest.test_case "traceset DRF" `Quick test_traceset_drf;
        ] );
    ]
