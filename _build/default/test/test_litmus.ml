open Safeopt_litmus

let test_corpus () =
  List.iter
    (fun t ->
      let o = Litmus.check t in
      if not (Litmus.passed o) then
        Alcotest.failf "%a" Litmus.pp_outcome o)
    Corpus.all

let test_by_name () =
  Alcotest.(check bool) "sb found" true (Corpus.by_name "sb" <> None);
  Alcotest.(check bool) "unknown" true (Corpus.by_name "nope" = None);
  Alcotest.(check int) "corpus size" 26 (List.length Corpus.all)

let test_expect_machinery () =
  (* a deliberately wrong expectation is reported, not crashed *)
  let bogus =
    Litmus.make ~name:"bogus" ~descr:"wrong expectations" ~drf:false
      ~can:[ [ 9 ] ] ~cannot:[ [ 1 ] ]
      "thread { r1 := 1; print r1; }"
  in
  let o = Litmus.check bogus in
  Alcotest.(check bool) "failed" false (Litmus.passed o);
  Alcotest.(check int) "three failures" 3 (List.length o.Litmus.failures)

let test_sources_parse_and_print () =
  (* every corpus source pretty-prints and re-parses to the same AST *)
  List.iter
    (fun t ->
      let p = Litmus.program t in
      let p2 =
        Safeopt_lang.Parser.parse_program
          (Safeopt_lang.Pp.program_to_string p)
      in
      if not (Safeopt_lang.Ast.equal_program p p2) then
        Alcotest.failf "%s does not round-trip" t.Litmus.name)
    Corpus.all

let () =
  Alcotest.run "litmus"
    [
      ( "litmus",
        [
          Alcotest.test_case "corpus expectations" `Slow test_corpus;
          Alcotest.test_case "lookup" `Quick test_by_name;
          Alcotest.test_case "failure reporting" `Quick test_expect_machinery;
          Alcotest.test_case "sources round-trip" `Quick
            test_sources_parse_and_print;
        ] );
    ]
