open Safeopt_core
open Helpers

let check_b = Alcotest.(check bool)

let test_origin_index () =
  Alcotest.(check (option int)) "write without prior read" (Some 1)
    (Origin.origin_index 7 [ st 0; w "x" 7 ]);
  Alcotest.(check (option int)) "external without prior read" (Some 1)
    (Origin.origin_index 7 [ st 0; ext 7 ]);
  Alcotest.(check (option int)) "read first blocks" None
    (Origin.origin_index 7 [ st 0; r "y" 7; w "x" 7 ]);
  Alcotest.(check (option int)) "other-value reads do not block" (Some 2)
    (Origin.origin_index 7 [ st 0; r "y" 6; w "x" 7 ]);
  Alcotest.(check (option int)) "no mention" None
    (Origin.origin_index 7 [ st 0; w "x" 1; ext 2 ]);
  check_b "is_origin" true (Origin.is_origin 7 [ st 0; w "x" 7 ])

let test_wild_origin () =
  check_b "wildcard read does not block" true
    (Origin.wild_is_origin 7 [ c (st 0); wild "y"; c (w "x" 7) ]);
  check_b "concrete read blocks" false
    (Origin.wild_is_origin 7 [ c (st 0); c (r "y" 7); c (w "x" 7) ])

let test_traceset_origin () =
  let relay = parse "thread { r1 := x; y := r1; print r1; }" in
  let universe = [ 0; 7 ] in
  let ts = Safeopt_lang.Denote.traceset ~universe ~max_len:6 relay in
  check_b "relay never originates 7" false (Origin.traceset_has_origin 7 ts);
  let producer = parse "thread { r1 := 7; y := r1; }" in
  let ts_p = Safeopt_lang.Denote.traceset ~universe ~max_len:6 producer in
  check_b "producer originates 7" true (Origin.traceset_has_origin 7 ts_p)

(* Lemma 2 empirically: rule-derived transformations of the relay
   program never create an origin the source lacked. *)
let test_lemma2 () =
  let oota = Safeopt_litmus.Litmus.program Safeopt_litmus.Corpus.oota in
  let universe = [ 0; 42 ] in
  let has_origin p =
    Origin.traceset_has_origin 42
      (Safeopt_lang.Denote.traceset ~universe ~max_len:8 p)
  in
  check_b "source has no origin for 42" false (has_origin oota);
  let reachable =
    Safeopt_opt.Transform.reachable ~max_programs:200
      ((Safeopt_opt.Rule.i_ir :: Safeopt_opt.Rule.moves) @ Safeopt_opt.Rule.all)
      oota
  in
  check_b "several programs reachable" true (List.length reachable > 1);
  check_b "no transformation creates an origin" true
    (List.for_all (fun p -> not (has_origin p)) reachable)

let test_lemma3 () =
  let oota = Safeopt_litmus.Litmus.program Safeopt_litmus.Corpus.oota in
  let universe = [ 0; 42 ] in
  let ts = Safeopt_lang.Denote.traceset ~universe ~max_len:8 oota in
  (match Origin.check_lemma3 42 ts ~max_steps:2_000_000 with
  | Ok () -> ()
  | Error cex ->
      Alcotest.failf "lemma 3 counterexample: %a" Safeopt_exec.Interleaving.pp
        cex);
  (* sanity: a program that CAN output 42 makes the check vacuous
     (an origin exists, so Ok is returned without enumerating) *)
  let producer = parse "thread { r1 := 42; y := r1; print r1; }" in
  let ts_p = Safeopt_lang.Denote.traceset ~universe ~max_len:6 producer in
  check_b "producer has an origin" true (Origin.traceset_has_origin 42 ts_p);
  match Origin.check_lemma3 42 ts_p ~max_steps:100_000 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "vacuous case should be Ok"

let test_mentions () =
  let i = il [ (0, st 0); (0, w "x" 7); (0, ext 3) ] in
  check_b "mentions write value" true (Origin.interleaving_mentions 7 i);
  check_b "mentions external value" true (Origin.interleaving_mentions 3 i);
  check_b "does not mention" false (Origin.interleaving_mentions 9 i)

let () =
  Alcotest.run "origin"
    [
      ( "out-of-thin-air",
        [
          Alcotest.test_case "origin index" `Quick test_origin_index;
          Alcotest.test_case "wildcard origins" `Quick test_wild_origin;
          Alcotest.test_case "traceset origins" `Quick test_traceset_origin;
          Alcotest.test_case "lemma 2 (no new origins)" `Quick test_lemma2;
          Alcotest.test_case "lemma 3 (no thin-air executions)" `Quick
            test_lemma3;
          Alcotest.test_case "interleaving mentions" `Quick test_mentions;
        ] );
    ]
