open Safeopt_trace
open Helpers

let check_b = Alcotest.(check bool)

let ts = Traceset.of_list [ [ st 0; w "x" 1; r "y" 0 ]; [ st 1; ext 1 ] ]

let test_prefix_closure () =
  check_b "contains empty" true (Traceset.mem [] ts);
  check_b "contains proper prefix" true (Traceset.mem [ st 0; w "x" 1 ] ts);
  check_b "contains full" true (Traceset.mem [ st 0; w "x" 1; r "y" 0 ] ts);
  check_b "does not contain others" false (Traceset.mem [ st 0; r "y" 0 ] ts);
  check_b "prefix closed" true (Traceset.prefix_closed ts);
  Alcotest.(check int) "cardinal counts prefixes" 6 (Traceset.cardinal ts)

let test_wf () =
  check_b "well formed" true (Traceset.well_formed ts);
  let bad = Traceset.of_list [ [ st 0; ul "m" ] ] in
  check_b "unlock-first is not well locked" false (Traceset.well_locked bad);
  let unstarted = Traceset.of_list [ [ w "x" 1 ] ] in
  check_b "not properly started" false (Traceset.properly_started unstarted)

let test_maximal_threads () =
  Alcotest.(check int) "two maximal traces" 2 (List.length (Traceset.maximal ts));
  Alcotest.(check (list int)) "thread ids" [ 0; 1 ] (Traceset.thread_ids ts);
  Alcotest.(check int) "thread 0 traces (non-empty ones)" 3
    (List.length (Traceset.elements_of_thread 0 ts))

let test_belongs_to () =
  let uni = [ 0; 1 ] in
  (* All instances of the relay wildcard trace belong to fig2's
     traceset. *)
  check_b "wildcard relay belongs" true
    (Traceset.belongs_to fig2_original_traceset
       [ c (st 0); wild "x" ] ~universe:uni);
  (* [S(0); R[x=*]; W[y=1]] does not: the write value must match the
     read. *)
  check_b "value-dependent continuation does not belong" false
    (Traceset.belongs_to fig2_original_traceset
       [ c (st 0); wild "x"; c (w "y" 1) ]
       ~universe:uni);
  check_b "concrete member" true
    (Traceset.belongs_to fig2_original_traceset
       (Wildcard.of_trace [ st 0; r "x" 1; w "y" 1 ])
       ~universe:uni);
  check_b "concrete non-member" false
    (Traceset.belongs_to fig2_original_traceset
       (Wildcard.of_trace [ st 0; r "x" 1; w "y" 0 ])
       ~universe:uni)

let test_ops () =
  let ts2 = Traceset.add [ st 2; lk "m" ] ts in
  check_b "added" true (Traceset.mem [ st 2; lk "m" ] ts2);
  check_b "add preserves closure" true (Traceset.prefix_closed ts2);
  check_b "subset" true (Traceset.subset ts ts2);
  check_b "union" true
    (Traceset.equal ts2 (Traceset.union ts ts2));
  Alcotest.(check (list int)) "values" [ 0; 1 ] (Traceset.values ts);
  Alcotest.(check (list string)) "locations" [ "x"; "y" ]
    (Location.Set.elements (Traceset.locations ts));
  let mapped = Traceset.map_traces (fun t -> List.filter Action.is_start t) ts in
  check_b "map re-closes" true (Traceset.prefix_closed mapped)

let () =
  Alcotest.run "traceset"
    [
      ( "traceset",
        [
          Alcotest.test_case "prefix closure" `Quick test_prefix_closure;
          Alcotest.test_case "well-formedness" `Quick test_wf;
          Alcotest.test_case "maximal and threads" `Quick test_maximal_threads;
          Alcotest.test_case "belongs-to" `Quick test_belongs_to;
          Alcotest.test_case "operations" `Quick test_ops;
        ] );
    ]
