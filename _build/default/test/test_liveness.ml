open Safeopt_lang
open Safeopt_opt

let check_b = Alcotest.(check bool)

let regs l = Reg.Set.of_list l
let set = Alcotest.testable (fun ppf s ->
    Fmt.(list ~sep:comma string) ppf (Reg.Set.elements s))
    Reg.Set.equal

let test_stmt () =
  (* store uses its register *)
  Alcotest.check set "store uses" (regs [ "r1" ])
    (Liveness.stmt (Ast.Store ("x", "r1")) Reg.Set.empty);
  (* load kills its target *)
  Alcotest.check set "load kills" Reg.Set.empty
    (Liveness.stmt (Ast.Load ("r1", "x")) (regs [ "r1" ]));
  (* move kills target, uses source *)
  Alcotest.check set "move" (regs [ "r2" ])
    (Liveness.stmt (Ast.Move ("r1", Ast.Reg "r2")) (regs [ "r1" ]));
  (* print uses *)
  Alcotest.check set "print" (regs [ "r1"; "r9" ])
    (Liveness.stmt (Ast.Print "r1") (regs [ "r9" ]));
  (* locks are neutral *)
  Alcotest.check set "lock" (regs [ "r1" ])
    (Liveness.stmt (Ast.Lock "m") (regs [ "r1" ]))

let test_control () =
  (* both branches and the test contribute *)
  let s =
    Ast.If
      ( Ast.Eq (Ast.Reg "rc", Ast.Nat 0),
        Ast.Store ("x", "r1"),
        Ast.Print "r2" )
  in
  Alcotest.check set "if" (regs [ "rc"; "r1"; "r2" ])
    (Liveness.stmt s Reg.Set.empty);
  (* loop: body uses survive the fixpoint *)
  let w = Ast.While (Ast.Ne (Ast.Reg "rc", Ast.Nat 1), Ast.Store ("x", "r1")) in
  Alcotest.check set "while" (regs [ "rc"; "r1" ])
    (Liveness.stmt w Reg.Set.empty);
  (* loop-carried: body loads what it later stores *)
  let w2 =
    Ast.While
      ( Ast.Ne (Ast.Reg "rc", Ast.Nat 1),
        Ast.Block [ Ast.Store ("x", "racc"); Ast.Load ("racc", "y") ] )
  in
  check_b "loop-carried use live" true
    (Reg.Set.mem "racc" (Liveness.stmt w2 Reg.Set.empty))

let test_thread_annotate () =
  let l =
    Parser.parse_thread "r1 := x; r2 := r1; y := r2; print r1;"
  in
  let annotated = Liveness.annotate l in
  Alcotest.(check int) "four entries" 4 (List.length annotated);
  (* after the first load, r1 is live (used by move and print) *)
  let _, live1 = List.nth annotated 0 in
  check_b "r1 live after load" true (Reg.Set.mem "r1" live1);
  (* after the print, nothing is live *)
  let _, live3 = List.nth annotated 3 in
  Alcotest.check set "nothing live at the end" Reg.Set.empty live3

let test_dead_predicates () =
  check_b "dead move" true
    (Liveness.dead_move (Ast.Move ("r1", Ast.Nat 5)) Reg.Set.empty);
  check_b "live move" false
    (Liveness.dead_move (Ast.Move ("r1", Ast.Nat 5)) (regs [ "r1" ]));
  check_b "dead load" true
    (Liveness.dead_load (Ast.Load ("r1", "x")) Reg.Set.empty);
  check_b "store never dead" false
    (Liveness.dead_move (Ast.Store ("x", "r1")) Reg.Set.empty)

let () =
  Alcotest.run "liveness"
    [
      ( "liveness",
        [
          Alcotest.test_case "statements" `Quick test_stmt;
          Alcotest.test_case "control flow" `Quick test_control;
          Alcotest.test_case "annotate" `Quick test_thread_annotate;
          Alcotest.test_case "dead predicates" `Quick test_dead_predicates;
        ] );
    ]
