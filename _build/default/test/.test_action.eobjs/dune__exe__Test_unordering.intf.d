test/test_unordering.mli:
