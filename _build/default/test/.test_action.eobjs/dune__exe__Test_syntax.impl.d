test/test_syntax.ml: Alcotest Helpers List Safeopt_trace Syntax Trace Wildcard
