test/test_passes.ml: Alcotest Ast Behaviour Denote Helpers Interp List Passes Pp Result Rule Safeopt_exec Safeopt_lang Safeopt_litmus Safeopt_opt Safeopt_trace Transform Validate
