test/test_elimination.mli:
