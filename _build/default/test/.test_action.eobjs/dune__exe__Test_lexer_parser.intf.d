test/test_lexer_parser.mli:
