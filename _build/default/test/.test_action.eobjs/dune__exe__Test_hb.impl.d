test/test_hb.ml: Alcotest Happens_before Helpers Safeopt_exec
