test/test_traceset.mli:
