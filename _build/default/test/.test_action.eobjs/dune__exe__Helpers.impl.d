test/helpers.ml: Action Alcotest List Location Safeopt_exec Safeopt_lang Safeopt_trace String Trace Traceset Wildcard
