test/test_enumerate.ml: Alcotest Behaviour Enumerate Helpers Interleaving List Safeopt_exec Safeopt_trace Traceset Traceset_system
