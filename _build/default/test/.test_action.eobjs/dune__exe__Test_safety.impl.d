test/test_safety.ml: Alcotest Helpers Safeopt_core Safeopt_exec Safeopt_lang Safeopt_litmus Safeopt_trace Safety Traceset
