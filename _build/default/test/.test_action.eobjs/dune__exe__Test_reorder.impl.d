test/test_reorder.ml: Alcotest Array Elimination Fmt Helpers Reorder Safeopt_core Safeopt_trace Traceset
