test/test_interp.ml: Alcotest Behaviour Helpers Interleaving Interp List Safeopt_exec Safeopt_lang
