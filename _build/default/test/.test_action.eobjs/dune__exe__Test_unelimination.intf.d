test/test_unelimination.mli:
