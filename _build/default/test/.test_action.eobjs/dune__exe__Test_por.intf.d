test/test_por.mli:
