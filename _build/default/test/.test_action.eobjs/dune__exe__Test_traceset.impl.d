test/test_traceset.ml: Action Alcotest Helpers List Location Safeopt_trace Traceset Wildcard
