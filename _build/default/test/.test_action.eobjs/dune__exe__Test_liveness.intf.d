test/test_liveness.mli:
