test/test_tso.ml: Alcotest Behaviour Corpus Helpers Interp List Litmus Machine Safeopt_exec Safeopt_lang Safeopt_litmus Safeopt_tso
