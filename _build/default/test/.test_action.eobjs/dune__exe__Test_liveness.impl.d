test/test_liveness.ml: Alcotest Ast Fmt List Liveness Parser Reg Safeopt_lang Safeopt_opt
