test/test_origin.mli:
