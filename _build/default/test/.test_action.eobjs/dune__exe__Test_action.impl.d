test/test_action.ml: Action Alcotest Helpers Safeopt_trace
