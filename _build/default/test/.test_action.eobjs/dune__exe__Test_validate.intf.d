test/test_validate.mli:
