test/test_tso.mli:
