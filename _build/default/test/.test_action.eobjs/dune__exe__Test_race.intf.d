test/test_race.mli:
