test/test_pso.ml: Alcotest Behaviour Corpus Helpers Interp List Litmus Machine Pso Safeopt_exec Safeopt_lang Safeopt_litmus Safeopt_tso
