test/test_origin.ml: Alcotest Helpers List Origin Safeopt_core Safeopt_exec Safeopt_lang Safeopt_litmus Safeopt_opt
