test/test_rules.ml: Alcotest Ast Fmt Helpers List Location Parser Pp Reg Rule Safeopt_lang Safeopt_opt Safeopt_trace
