test/test_pso.mli:
