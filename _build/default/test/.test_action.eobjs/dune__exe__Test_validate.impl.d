test/test_validate.ml: Alcotest Fmt Helpers List Safeopt_litmus Safeopt_opt Validate
