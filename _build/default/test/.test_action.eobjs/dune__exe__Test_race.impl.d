test/test_race.ml: Alcotest Helpers Interleaving Race Safeopt_exec Safeopt_trace
