test/test_lexer_parser.ml: Alcotest Ast Helpers Lexer List Parser Pp Safeopt_lang Safeopt_trace
