test/test_unelimination.ml: Alcotest Array Enumerate Helpers Interleaving List Safeopt_core Safeopt_exec Safeopt_lang Safeopt_trace Traceset Unelimination
