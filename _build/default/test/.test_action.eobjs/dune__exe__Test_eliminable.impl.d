test/test_eliminable.ml: Alcotest Eliminable Fmt Helpers List Safeopt_core Safeopt_trace Wildcard
