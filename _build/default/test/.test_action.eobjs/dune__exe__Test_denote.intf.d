test/test_denote.mli:
