test/test_robustness.mli:
