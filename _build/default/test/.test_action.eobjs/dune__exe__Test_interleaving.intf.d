test/test_interleaving.mli:
