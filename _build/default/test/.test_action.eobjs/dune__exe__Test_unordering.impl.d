test/test_unordering.ml: Alcotest Array Elimination Enumerate Fun Hashtbl Helpers Interleaving List Safeopt_core Safeopt_exec Safeopt_lang Safeopt_trace Trace Traceset Unordering
