test/test_wildcard.mli:
