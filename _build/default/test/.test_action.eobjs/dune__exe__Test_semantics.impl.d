test/test_semantics.ml: Alcotest Ast Hashtbl Helpers Option Parser Safeopt_lang Semantics
