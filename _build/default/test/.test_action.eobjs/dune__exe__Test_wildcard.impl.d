test/test_wildcard.ml: Alcotest Helpers List Safeopt_trace Wildcard
