test/test_transform.ml: Alcotest Ast Helpers List Result Rule Safeopt_lang Safeopt_litmus Safeopt_opt Transform Validate
