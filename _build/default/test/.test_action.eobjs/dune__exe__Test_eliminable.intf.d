test/test_eliminable.mli:
