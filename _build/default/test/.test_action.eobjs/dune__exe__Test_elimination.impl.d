test/test_elimination.ml: Alcotest Elimination Helpers List Safeopt_core Safeopt_lang Safeopt_trace Traceset Wildcard
