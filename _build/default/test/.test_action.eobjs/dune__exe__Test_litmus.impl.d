test/test_litmus.ml: Alcotest Corpus List Litmus Safeopt_lang Safeopt_litmus
