test/test_por.ml: Alcotest Behaviour Corpus Helpers Interp List Litmus Printf Safeopt_exec Safeopt_lang Safeopt_litmus Thread_system
