test/test_enumerate.mli:
