test/test_robustness.ml: Alcotest Ast Corpus Interp List Litmus Pso Robustness Safeopt_exec Safeopt_lang Safeopt_litmus Safeopt_tso
