test/test_safety.mli:
