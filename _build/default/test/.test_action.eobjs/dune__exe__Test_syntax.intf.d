test/test_syntax.mli:
