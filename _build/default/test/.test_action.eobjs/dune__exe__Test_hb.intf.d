test/test_hb.mli:
