test/test_denote.ml: Alcotest Denote Helpers List Safeopt_lang Safeopt_trace Trace Traceset
