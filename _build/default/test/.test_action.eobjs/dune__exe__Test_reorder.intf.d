test/test_reorder.mli:
