test/test_trace.ml: Action Alcotest Helpers List Location Safeopt_trace Trace
