test/test_semantics.mli:
