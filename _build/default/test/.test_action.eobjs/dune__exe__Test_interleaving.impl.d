test/test_interleaving.ml: Alcotest Helpers Interleaving Location Safeopt_exec Safeopt_trace Traceset
