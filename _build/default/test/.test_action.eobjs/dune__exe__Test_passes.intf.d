test/test_passes.mli:
