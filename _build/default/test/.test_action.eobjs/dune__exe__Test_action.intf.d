test/test_action.mli:
