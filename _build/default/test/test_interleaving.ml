open Safeopt_trace
open Safeopt_exec
open Helpers

let check_b = Alcotest.(check bool)

(* A lock-protected exchange. *)
let i1 =
  il
    [
      (0, st 0);
      (1, st 1);
      (0, lk "m");
      (0, w "x" 1);
      (0, ul "m");
      (1, lk "m");
      (1, r "x" 1);
      (1, ext 1);
      (1, ul "m");
    ]

let ts1 =
  Traceset.of_list
    [
      [ st 0; lk "m"; w "x" 1; ul "m" ];
      [ st 1; lk "m"; r "x" 1; ext 1; ul "m" ];
      [ st 1; lk "m"; r "x" 0; ext 0; ul "m" ];
    ]

let test_projections () =
  Alcotest.(check (list int)) "threads" [ 0; 1 ] (Interleaving.threads i1);
  Alcotest.check trace "trace of 0"
    [ st 0; lk "m"; w "x" 1; ul "m" ]
    (Interleaving.trace_of 0 i1);
  Alcotest.(check int) "thread_index of last" 4 (Interleaving.thread_index i1 8);
  Alcotest.(check int) "thread_index mid" 2 (Interleaving.thread_index i1 3);
  Alcotest.check interleaving "restrict"
    (il [ (0, st 0); (0, lk "m") ])
    (Interleaving.restrict i1 [ 0; 2 ])

let test_entry_points () =
  check_b "ok" true (Interleaving.entry_points_ok i1);
  check_b "wrong entry" false
    (Interleaving.entry_points_ok (il [ (0, st 1) ]));
  check_b "double start" false
    (Interleaving.entry_points_ok (il [ (0, st 0); (0, st 0) ]));
  check_b "missing start" false
    (Interleaving.entry_points_ok (il [ (0, w "x" 1) ]))

let test_mutex () =
  check_b "respects mutex" true (Interleaving.respects_mutex i1);
  let bad =
    il [ (0, st 0); (1, st 1); (0, lk "m"); (1, lk "m") ]
  in
  check_b "double lock" false (Interleaving.respects_mutex bad);
  let reentrant = il [ (0, st 0); (0, lk "m"); (0, lk "m") ] in
  check_b "reentrant self-lock ok" true (Interleaving.respects_mutex reentrant);
  let handover =
    il [ (0, st 0); (1, st 1); (0, lk "m"); (0, ul "m"); (1, lk "m") ]
  in
  check_b "handover ok" true (Interleaving.respects_mutex handover)

let test_interleaving_of () =
  check_b "is interleaving of ts1" true (Interleaving.is_interleaving_of ts1 i1);
  check_b "prefix also ok" true
    (Interleaving.is_interleaving_of ts1 (Interleaving.restrict i1 [ 0; 1; 2 ]));
  let alien = il [ (0, st 0); (0, w "z" 9) ] in
  check_b "alien trace rejected" false
    (Interleaving.is_interleaving_of ts1 alien)

let test_sc () =
  check_b "i1 is SC" true (Interleaving.is_sequentially_consistent i1);
  check_b "sees_write" true (Interleaving.sees_write i1 6 3);
  let stale =
    il [ (0, st 0); (1, st 1); (0, w "x" 1); (1, r "x" 0) ]
  in
  check_b "stale read not SC" false
    (Interleaving.is_sequentially_consistent stale);
  let default_read = il [ (1, st 1); (1, r "x" 0) ] in
  check_b "default read is SC" true
    (Interleaving.is_sequentially_consistent default_read);
  check_b "sees_default" true (Interleaving.sees_default default_read 1);
  let wrong_default = il [ (1, st 1); (1, r "x" 1) ] in
  check_b "non-zero default not SC" false
    (Interleaving.is_sequentially_consistent wrong_default);
  (* intervening write breaks sees_write *)
  let shadowed =
    il [ (0, st 0); (0, w "x" 1); (0, w "x" 2); (0, r "x" 1) ]
  in
  check_b "shadowed write" false
    (Interleaving.is_sequentially_consistent shadowed);
  check_b "execution of" true (Interleaving.is_execution_of ts1 i1)

let test_behaviour_memory () =
  Alcotest.check behaviour "behaviour" [ 1 ] (Interleaving.behaviour i1);
  Alcotest.(check (option int)) "final x" (Some 1)
    (Location.Map.find_opt "x" (Interleaving.memory_after i1))

let test_wild_instance () =
  let wi =
    [
      { Interleaving.Wild.tid = 0; elt = c (st 0) };
      { Interleaving.Wild.tid = 0; elt = wild "x" };
      { Interleaving.Wild.tid = 0; elt = c (w "x" 5) };
      { Interleaving.Wild.tid = 0; elt = wild "x" };
    ]
  in
  Alcotest.check interleaving "instance resolves wildcards"
    (il [ (0, st 0); (0, r "x" 0); (0, w "x" 5); (0, r "x" 5) ])
    (Interleaving.Wild.instance wi);
  Alcotest.check wildcard "wild trace_of"
    [ c (st 0); wild "x"; c (w "x" 5); wild "x" ]
    (Interleaving.Wild.trace_of 0 wi);
  Alcotest.(check int) "wild thread_index" 2
    (Interleaving.Wild.thread_index wi 2)

let () =
  Alcotest.run "interleaving"
    [
      ( "interleaving",
        [
          Alcotest.test_case "projections" `Quick test_projections;
          Alcotest.test_case "entry points" `Quick test_entry_points;
          Alcotest.test_case "mutual exclusion" `Quick test_mutex;
          Alcotest.test_case "interleaving-of" `Quick test_interleaving_of;
          Alcotest.test_case "sequential consistency" `Quick test_sc;
          Alcotest.test_case "behaviour and memory" `Quick
            test_behaviour_memory;
          Alcotest.test_case "wildcard instance" `Quick test_wild_instance;
        ] );
    ]
