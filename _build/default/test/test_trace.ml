open Safeopt_trace
open Helpers

let check_b = Alcotest.(check bool)
let check_t = Alcotest.check trace

let t1 = [ st 0; w "x" 1; r "y" 0; lk "m"; w "x" 2; ul "m"; ext 2 ]

let test_basics () =
  Alcotest.(check int) "length" 7 (Trace.length t1);
  Alcotest.check action "nth" (lk "m") (Trace.nth t1 3);
  Alcotest.(check (list int)) "dom" [ 0; 1; 2; 3; 4; 5; 6 ] (Trace.dom t1);
  Alcotest.check_raises "nth out of range"
    (Invalid_argument "Trace.nth: index 9 out of range") (fun () ->
      ignore (Trace.nth t1 9))

let test_prefix () =
  check_b "empty is prefix" true (Trace.is_prefix [] t1);
  check_b "self prefix" true (Trace.is_prefix t1 t1);
  check_b "proper prefix" true (Trace.is_prefix [ st 0; w "x" 1 ] t1);
  check_b "not strict of self" false (Trace.is_strict_prefix t1 t1);
  check_b "strict" true (Trace.is_strict_prefix [ st 0 ] t1);
  check_b "non-prefix" false (Trace.is_prefix [ w "x" 1 ] t1);
  Alcotest.(check int) "prefix count" 8 (List.length (Trace.prefixes t1));
  check_b "all prefixes are prefixes" true
    (List.for_all (fun p -> Trace.is_prefix p t1) (Trace.prefixes t1))

let test_restrict () =
  check_t "restrict keeps order" [ st 0; r "y" 0 ] (Trace.restrict t1 [ 2; 0 ]);
  check_t "restrict out-of-range ignored" [ ext 2 ]
    (Trace.restrict t1 [ 6; 99 ]);
  check_t "restrict duplicates" [ w "x" 1 ] (Trace.restrict t1 [ 1; 1 ]);
  Alcotest.(check (list int)) "complement" [ 1; 3; 4; 5; 6 ]
    (Trace.complement t1 [ 0; 2 ]);
  Alcotest.(check (list int)) "indices_where writes" [ 1; 4 ]
    (Trace.indices_where (fun _ a -> Action.is_write a) t1)

let test_well_locked () =
  check_b "balanced" true (Trace.well_locked t1);
  check_b "unlock first" false (Trace.well_locked [ st 0; ul "m" ]);
  check_b "pending lock ok" true (Trace.well_locked [ st 0; lk "m" ]);
  check_b "nested" true
    (Trace.well_locked [ st 0; lk "m"; lk "m"; ul "m"; ul "m" ]);
  check_b "over-unlock inside" false
    (Trace.well_locked [ st 0; lk "m"; ul "m"; ul "m"; lk "m" ]);
  check_b "distinct monitors independent" false
    (Trace.well_locked [ st 0; lk "m"; ul "n" ]);
  Alcotest.(check int) "lock_depth" 1
    (Trace.lock_depth [ st 0; lk "m"; lk "m"; ul "m" ] "m")

let test_properly_started () =
  check_b "empty ok" true (Trace.properly_started []);
  check_b "start first" true (Trace.properly_started [ st 1; w "x" 1 ]);
  check_b "no start" false (Trace.properly_started [ w "x" 1 ])

let test_ra_pair_between () =
  (* release at 2, acquire at 3 within (0,5) *)
  let t = [ st 0; w "x" 1; ul "m"; lk "m"; w "y" 1; r "x" 1 ] in
  check_b "pair present" true (Trace.has_release_acquire_pair_between none t 0 5);
  check_b "pair needs release strictly before acquire" false
    (Trace.has_release_acquire_pair_between none t 2 5);
  (* only an acquire between: no pair *)
  let t2 = [ st 0; w "x" 1; lk "m"; r "x" 1 ] in
  check_b "acquire alone is no pair" false
    (Trace.has_release_acquire_pair_between none t2 0 3);
  (* acquire then release: no pair *)
  let t3 = [ st 0; r "y" 0; lk "m"; ul "m"; r "y" 0 ] in
  check_b "acquire-release order is no pair" false
    (Trace.has_release_acquire_pair_between none t3 1 4);
  (* volatile write (release) then volatile read (acquire) *)
  let t4 = [ st 0; r "x" 0; w "v" 1; r "v" 1; r "x" 0 ] in
  check_b "volatile pair" true
    (Trace.has_release_acquire_pair_between vol_v t4 1 4);
  check_b "without volatility no pair" false
    (Trace.has_release_acquire_pair_between none t4 1 4)

let test_locations_finals () =
  Alcotest.(check (list string)) "locations" [ "x"; "y" ]
    (Location.Set.elements (Trace.locations t1));
  let fv = Trace.final_values t1 in
  Alcotest.(check (option int)) "final x" (Some 2)
    (Location.Map.find_opt "x" fv);
  Alcotest.(check (option int)) "final y" None (Location.Map.find_opt "y" fv)

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "prefixes" `Quick test_prefix;
          Alcotest.test_case "restrict/complement" `Quick test_restrict;
          Alcotest.test_case "well-locked" `Quick test_well_locked;
          Alcotest.test_case "properly started" `Quick test_properly_started;
          Alcotest.test_case "release-acquire between" `Quick
            test_ra_pair_between;
          Alcotest.test_case "locations and finals" `Quick
            test_locations_finals;
        ] );
    ]
