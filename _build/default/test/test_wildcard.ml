open Safeopt_trace
open Helpers

let check_b = Alcotest.(check bool)

let wt = [ c (st 0); wild "x"; c (w "y" 1); wild "z" ]

let test_basics () =
  Alcotest.(check int) "length" 4 (Wildcard.length wt);
  Alcotest.(check int) "wildcard count" 2 (Wildcard.wildcard_count wt);
  Alcotest.(check (list int)) "wildcard indices" [ 1; 3 ]
    (Wildcard.wildcard_indices wt);
  check_b "not concrete" false (Wildcard.is_concrete wt);
  check_b "of_trace concrete" true
    (Wildcard.is_concrete (Wildcard.of_trace [ st 0; r "x" 1 ]));
  Alcotest.(check (option trace)) "to_trace on concrete"
    (Some [ st 0; r "x" 1 ])
    (Wildcard.to_trace (Wildcard.of_trace [ st 0; r "x" 1 ]));
  Alcotest.(check (option trace)) "to_trace with wildcards" None
    (Wildcard.to_trace wt)

let test_instances () =
  Alcotest.(check (option trace)) "instantiate"
    (Some [ st 0; r "x" 5; w "y" 1; r "z" 7 ])
    (Wildcard.instantiate wt [ 5; 7 ]);
  Alcotest.(check (option trace)) "wrong arity" None
    (Wildcard.instantiate wt [ 5 ]);
  let insts = List.of_seq (Wildcard.instances ~universe:[ 0; 1 ] wt) in
  Alcotest.(check int) "2^2 instances" 4 (List.length insts);
  check_b "all are instances" true
    (List.for_all (fun t -> Wildcard.is_instance wt t) insts);
  check_b "wrong shape is not an instance" false
    (Wildcard.is_instance wt [ st 0; w "x" 5; w "y" 1; r "z" 7 ]);
  check_b "wrong concrete value is not an instance" false
    (Wildcard.is_instance wt [ st 0; r "x" 5; w "y" 2; r "z" 7 ]);
  (* No wildcards: exactly one instance. *)
  let concrete = Wildcard.of_trace [ st 0; w "x" 1 ] in
  Alcotest.(check int) "concrete has one instance" 1
    (List.length (List.of_seq (Wildcard.instances ~universe:[ 0; 1; 2 ] concrete)))

let test_matching () =
  check_b "concrete matches equal" true
    (Wildcard.matches_action (c (w "x" 1)) (w "x" 1));
  check_b "concrete rejects unequal" false
    (Wildcard.matches_action (c (w "x" 1)) (w "x" 2));
  check_b "wildcard matches any read of its location" true
    (Wildcard.matches_action (wild "x") (r "x" 42));
  check_b "wildcard rejects other location" false
    (Wildcard.matches_action (wild "x") (r "y" 0));
  check_b "wildcard rejects writes" false
    (Wildcard.matches_action (wild "x") (w "x" 0));
  Alcotest.check action "action_of_elt default" (r "x" 0)
    (Wildcard.action_of_elt ~default:0 (wild "x"))

let test_classification () =
  check_b "wildcard is read" true (Wildcard.is_read (wild "x"));
  check_b "wildcard is access" true (Wildcard.is_access (wild "x"));
  check_b "wildcard not write" false (Wildcard.is_write (wild "x"));
  check_b "volatile wildcard is acquire" true
    (Wildcard.is_acquire vol_v (wild "v"));
  check_b "normal wildcard not acquire" false
    (Wildcard.is_acquire vol_v (wild "x"));
  check_b "wildcard never release" false (Wildcard.is_release vol_v (wild "v"));
  check_b "normal access" true (Wildcard.is_normal_access vol_v (wild "x"));
  check_b "conflict wildcard vs write" true
    (Wildcard.conflicting none (wild "x") (c (w "x" 1)));
  check_b "no conflict between wildcard reads" false
    (Wildcard.conflicting none (wild "x") (wild "x"))

let test_restrict () =
  Alcotest.check wildcard "restrict" [ c (st 0); wild "z" ]
    (Wildcard.restrict wt [ 0; 3 ])

let test_ra_pair () =
  let t = [ c (st 0); c (ul "m"); c (lk "m"); wild "x" ] in
  check_b "pair across wildcard window" true
    (Wildcard.has_release_acquire_pair_between none t 0 3);
  check_b "wildcard read is not a release" false
    (Wildcard.has_release_acquire_pair_between vol_v
       [ c (st 0); wild "v"; c (lk "m"); c (r "x" 0) ]
       0 3)

let () =
  Alcotest.run "wildcard"
    [
      ( "wildcard",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "instances" `Quick test_instances;
          Alcotest.test_case "matching" `Quick test_matching;
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "release-acquire" `Quick test_ra_pair;
        ] );
    ]
