open Safeopt_trace
open Safeopt_lang
open Helpers

let check_b = Alcotest.(check bool)

let relay = parse "thread { r1 := x; y := r1; }"

let test_universe () =
  let p = parse "thread { r1 := 5; if (r1 == 7) skip; }" in
  let u = Denote.universe p in
  check_b "contains 0" true (List.mem 0 u);
  check_b "contains literals" true (List.mem 5 u && List.mem 7 u);
  check_b "two fresh values" true (List.mem 8 u && List.mem 9 u);
  let u2 = Denote.joint_universe [ p; parse "thread { r9 := 11; }" ] in
  check_b "joint covers both" true (List.mem 7 u2 && List.mem 11 u2)

let test_issues_program () =
  check_b "empty" true (Denote.issues_program relay []);
  check_b "start only" true (Denote.issues_program relay [ st 0 ]);
  check_b "relay trace" true
    (Denote.issues_program relay [ st 0; r "x" 2; w "y" 2 ]);
  check_b "mismatched relay" false
    (Denote.issues_program relay [ st 0; r "x" 2; w "y" 3 ]);
  check_b "unknown thread" false (Denote.issues_program relay [ st 4 ]);
  check_b "not starting with start" false
    (Denote.issues_program relay [ r "x" 2 ])

let test_traceset () =
  let universe = [ 0; 1 ] in
  let ts = Denote.traceset ~universe ~max_len:4 relay in
  check_b "wf" true (Traceset.well_formed ts);
  check_b "contains both relays" true
    (Traceset.mem [ st 0; r "x" 0; w "y" 0 ] ts
    && Traceset.mem [ st 0; r "x" 1; w "y" 1 ] ts);
  check_b "no mismatches" false (Traceset.mem [ st 0; r "x" 0; w "y" 1 ] ts);
  (* agreement with the membership oracle on everything enumerated *)
  check_b "oracle agrees" true
    (List.for_all (Denote.issues_program relay) (Traceset.to_list ts))

let test_traceset_bound () =
  let universe = [ 0; 1 ] in
  let ts = Denote.traceset ~universe ~max_len:2 relay in
  check_b "bounded" true
    (List.for_all (fun t -> Trace.length t <= 2) (Traceset.to_list ts));
  check_b "still prefix closed" true (Traceset.prefix_closed ts)

let test_belongs_to () =
  let universe = [ 0; 1 ] in
  check_b "wildcard relay start belongs" true
    (Denote.belongs_to ~universe relay [ c (st 0); wild "x" ]);
  check_b "value-forgetting continuation does not" false
    (Denote.belongs_to ~universe relay [ c (st 0); wild "x"; c (w "y" 1) ]);
  (* branching on the read value: all instances must issue *)
  let branchy =
    parse "thread { r1 := x; if (r1 == 1) { y := 1; } else { y := 1; } }"
  in
  check_b "both branches write 1, so wildcard belongs" true
    (Denote.belongs_to ~universe branchy
       [ c (st 0); wild "x"; c (w "y" 1) ]);
  let asym =
    parse "thread { r1 := x; if (r1 == 1) { y := 1; } else { y := 2; } }"
  in
  check_b "asymmetric branches: wildcard does not belong" false
    (Denote.belongs_to ~universe asym [ c (st 0); wild "x"; c (w "y" 1) ])

(* The section-2.1 observation: control-dependent but value-identical
   branches have the same traceset. *)
let test_same_traceset () =
  let p1 = parse "thread { r1 := x; if (r1 == 0) y := 1; else y := 1; }" in
  let p2 = parse "thread { r1 := x; y := 1; }" in
  let universe = Denote.joint_universe [ p1; p2 ] in
  let t1 = Denote.traceset ~universe ~max_len:6 p1 in
  let t2 = Denote.traceset ~universe ~max_len:6 p2 in
  Alcotest.check traceset "identical tracesets" t1 t2

let () =
  Alcotest.run "denote"
    [
      ( "denote",
        [
          Alcotest.test_case "universe" `Quick test_universe;
          Alcotest.test_case "issues_program" `Quick test_issues_program;
          Alcotest.test_case "traceset extraction" `Quick test_traceset;
          Alcotest.test_case "length bound" `Quick test_traceset_bound;
          Alcotest.test_case "belongs-to" `Quick test_belongs_to;
          Alcotest.test_case "same traceset (sec 2.1)" `Quick
            test_same_traceset;
        ] );
    ]
