open Safeopt_trace
open Safeopt_core
open Helpers

let check_b = Alcotest.(check bool)

(* The paper's Fig. 4 trace and function:
   t' = [S(0); W[x=1]; R[y=1]; X(1)], f = {0->0, 1->2, 2->1, 3->3}. *)
let t' = [ st 1; w "x" 1; r "y" 1; ext 1 ]
let f : Reorder.f = [| 0; 2; 1; 3 |]

(* T-bar: fig2's original traceset extended with [S(1); W[x=1]] (the
   section-4 elimination step). *)
let t_bar = Traceset.add [ st 1; w "x" 1 ] fig2_original_traceset

let test_permutations () =
  check_b "valid permutation" true (Reorder.is_permutation f);
  check_b "identity" true (Reorder.is_permutation (Reorder.identity 4));
  check_b "not injective" false (Reorder.is_permutation [| 0; 0; 1; 2 |]);
  check_b "out of range" false (Reorder.is_permutation [| 0; 1; 2; 4 |])

let test_reordering_function () =
  check_b "paper's f is a reordering function" true
    (Reorder.is_reordering_function none t' f);
  (* Swapping the external with the read would invert X and R with
     X(1) earlier: that is allowed (Ext row, R column is reorderable);
     swapping two conflicting accesses is not. *)
  let conflict = [ st 0; w "x" 1; r "x" 1 ] in
  check_b "conflicting swap rejected" false
    (Reorder.is_reordering_function none conflict [| 0; 2; 1 |]);
  check_b "identity always ok" true
    (Reorder.is_reordering_function none conflict (Reorder.identity 3))

let test_depermute_fig4 () =
  (* n = 4: the original trace (read before write) *)
  Alcotest.check trace "n=4"
    [ st 1; r "y" 1; w "x" 1; ext 1 ]
    (Reorder.depermute f t');
  (* n = 3 *)
  Alcotest.check trace "n=3"
    [ st 1; r "y" 1; w "x" 1 ]
    (Reorder.depermute_prefix f t' 3);
  (* n = 2: the elimination-closure trace [S; W[x=1]] *)
  Alcotest.check trace "n=2" [ st 1; w "x" 1 ] (Reorder.depermute_prefix f t' 2);
  Alcotest.check trace "n=1" [ st 1 ] (Reorder.depermute_prefix f t' 1);
  Alcotest.check trace "n=0" [] (Reorder.depermute_prefix f t' 0)

let test_de_permutes () =
  check_b "f de-permutes t' into T-bar" true
    (Reorder.de_permutes none f t' ~mem:(fun t -> Traceset.mem t t_bar));
  (* without the added trace the n=2 de-permutation fails *)
  check_b "fails against T alone" false
    (Reorder.de_permutes none f t' ~mem:(fun t ->
         Traceset.mem t fig2_original_traceset))

let test_find () =
  (match Reorder.find none t' ~mem:(fun t -> Traceset.mem t t_bar) with
  | Some g ->
      check_b "found function de-permutes" true
        (Reorder.de_permutes none g t' ~mem:(fun t -> Traceset.mem t t_bar))
  | None -> Alcotest.fail "expected a de-permuting function");
  Alcotest.(check bool) "no function against T alone" true
    (Reorder.find none t' ~mem:(fun t -> Traceset.mem t fig2_original_traceset)
    = None)

let test_is_reordering () =
  (* The paper: T' is NOT a reordering of T directly... *)
  check_b "not a reordering of T" false
    (Reorder.is_reordering none ~original:fig2_original_traceset
       ~transformed:fig2_transformed_traceset);
  (* ...but is a reordering of T-bar. *)
  check_b "reordering of T-bar" true
    (Reorder.is_reordering none ~original:t_bar
       ~transformed:fig2_transformed_traceset);
  (* and via the elimination-closure oracle, without materialising
     T-bar. *)
  check_b "reordering of elimination closure" true
    (Reorder.is_reordering_of_oracle none
       ~mem:(fun t ->
         Elimination.is_member none ~original:fig2_original_traceset
           ~universe:[ 0; 1 ] t)
       ~transformed:fig2_transformed_traceset);
  (* identity reordering *)
  check_b "T reorders to itself" true
    (Reorder.is_reordering none ~original:fig2_original_traceset
       ~transformed:fig2_original_traceset)

let test_volatile_blocks () =
  (* Reordering a volatile read with a later write is forbidden even
     modulo elimination; with a non-volatile location the same swap is
     a reordering of the elimination closure (the closure supplies the
     prefix de-permutations, exactly as in Fig. 2). *)
  (* the original traceset is receptive: it reads either value, as a
     real program's denotation would *)
  let orig =
    Traceset.of_list
      [ [ st 0; r "v" 0; w "x" 1 ]; [ st 0; r "v" 1; w "x" 1 ] ]
  in
  let trans = Traceset.of_list [ [ st 0; w "x" 1; r "v" 0 ] ] in
  let closure vol t =
    Elimination.is_member vol ~original:orig ~universe:[ 0; 1 ] t
  in
  check_b "acquire blocks reordering" false
    (Reorder.is_reordering_of_oracle vol_v ~mem:(closure vol_v)
       ~transformed:trans);
  check_b "fine when not volatile (via closure)" true
    (Reorder.is_reordering_of_oracle none ~mem:(closure none)
       ~transformed:trans);
  (* pure reordering without elimination fails on the prefix
     de-permutations even in the non-volatile case — this is why
     Lemma 5 composes the two transformations *)
  check_b "pure reordering lacks the prefixes" false
    (Reorder.is_reordering none ~original:orig ~transformed:trans)

let test_matrix () =
  let m = Reorder.matrix ~same_location:false in
  (* spot check against the paper's table *)
  check_b "W-W distinct" true m.(0).(0);
  check_b "W-Acq" true m.(0).(2);
  check_b "W-Rel" false m.(0).(3);
  check_b "Acq row all blocked" true (Array.for_all not m.(2));
  check_b "Rel-W" true m.(3).(0);
  check_b "Ext-Ext" false m.(4).(4);
  let ms = Reorder.matrix ~same_location:true in
  check_b "W-W same location" false ms.(0).(0);
  check_b "R-R same location" true ms.(1).(1);
  (* the rendered table mentions both variants *)
  let rendered = Fmt.str "%a" Reorder.pp_matrix () in
  check_b "render mentions both tables" true
    (contains_substring rendered "distinct locations"
    && contains_substring rendered "same location")

let () =
  Alcotest.run "reorder"
    [
      ( "reorder",
        [
          Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "reordering functions" `Quick
            test_reordering_function;
          Alcotest.test_case "Fig. 4 de-permutations" `Quick
            test_depermute_fig4;
          Alcotest.test_case "de_permutes" `Quick test_de_permutes;
          Alcotest.test_case "search" `Quick test_find;
          Alcotest.test_case "traceset reordering" `Quick test_is_reordering;
          Alcotest.test_case "volatility blocks" `Quick test_volatile_blocks;
          Alcotest.test_case "matrix" `Quick test_matrix;
        ] );
    ]
