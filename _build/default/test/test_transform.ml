open Safeopt_lang
open Safeopt_opt
open Helpers

let check_b = Alcotest.(check bool)

let test_program_rewrites () =
  let p = parse "thread { r1 := x; r2 := x; }\nthread { r3 := x; r4 := x; }" in
  let steps = Transform.program_rewrites [ Rule.e_rar ] p in
  Alcotest.(check int) "one site per thread" 2 (List.length steps);
  List.iter
    (fun s ->
      check_b "before is p" true (Ast.equal_program s.Transform.before p);
      check_b "after differs" false (Ast.equal_program s.Transform.after p))
    steps

let test_nested_sites () =
  (* the rule applies inside blocks, branches and loop bodies *)
  let p = parse "thread { if (r9 == 0) { r1 := x; r2 := x; } }" in
  check_b "inside if-block" true
    (Transform.program_rewrites [ Rule.e_rar ] p <> []);
  let p2 = parse "thread { while (r9 == 0) { r1 := x; r2 := x; } }" in
  check_b "inside while" true
    (Transform.program_rewrites [ Rule.e_rar ] p2 <> []);
  let p3 = parse "thread { if (r9 == 0) skip; else { r1 := x; r2 := x; } }" in
  check_b "inside else" true
    (Transform.program_rewrites [ Rule.e_rar ] p3 <> [])

let test_reachable () =
  let p = parse "thread { r1 := x; r2 := y; r3 := z; }" in
  (* R-RR can permute the three independent reads: 6 arrangements *)
  let reach = Transform.reachable [ Rule.r_rr ] p in
  Alcotest.(check int) "all permutations" 6 (List.length reach);
  check_b "includes source" true
    (List.exists (fun q -> Ast.equal_program q p) reach);
  (* budget respected *)
  let small = Transform.reachable ~max_programs:2 [ Rule.r_rr ] p in
  check_b "bounded" true (List.length small <= 3)

let test_find_chain () =
  let source = parse "thread { r1 := x; r2 := y; }" in
  let target = parse "thread { r2 := y; r1 := x; }" in
  (match Transform.find_chain [ Rule.r_rr ] ~source ~target with
  | Some [ s ] -> Alcotest.(check string) "one R-RR step" "R-RR" s.Transform.rule
  | Some c -> Alcotest.failf "expected 1 step, got %d" (List.length c)
  | None -> Alcotest.fail "expected a chain");
  (* unreachable target *)
  let bad = parse "thread { r1 := z; r2 := y; }" in
  check_b "unreachable" true
    (Transform.find_chain [ Rule.r_rr ] ~source ~target:bad = None);
  (* empty chain when source = target *)
  match Transform.find_chain [ Rule.r_rr ] ~source ~target:source with
  | Some [] -> ()
  | _ -> Alcotest.fail "expected the empty chain"

let test_apply_named () =
  let p = parse "thread { r1 := x; r2 := x; }" in
  (match Transform.apply_named "E-RAR" p with
  | Ok p' ->
      check_b "applied" true
        (Ast.equal_program p' (parse "thread { r1 := x; r2 := r1; }"))
  | Error e -> Alcotest.fail e);
  check_b "unknown rule" true (Result.is_error (Transform.apply_named "nope" p));
  check_b "inapplicable rule" true
    (Result.is_error (Transform.apply_named "R-WL" p))

(* Theorems 3 and 4, empirically: applying any safe rule to a DRF
   corpus program preserves DRF and adds no behaviours. *)
let test_theorems_3_4_on_corpus () =
  let drf_tests =
    List.filter (fun t -> t.Safeopt_litmus.Litmus.drf) Safeopt_litmus.Corpus.all
  in
  List.iter
    (fun t ->
      let p = Safeopt_litmus.Litmus.program t in
      let steps = Transform.program_rewrites Rule.all p in
      List.iter
        (fun s ->
          let report =
            Validate.validate ~original:p ~transformed:s.Transform.after ()
          in
          if not (Validate.behaviours_ok report) then
            Alcotest.failf "%s: rule %s broke the DRF guarantee"
              t.Safeopt_litmus.Litmus.name s.Transform.rule)
        steps)
    drf_tests

let () =
  Alcotest.run "transform"
    [
      ( "engine",
        [
          Alcotest.test_case "program rewrites" `Quick test_program_rewrites;
          Alcotest.test_case "nested sites" `Quick test_nested_sites;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "find_chain" `Quick test_find_chain;
          Alcotest.test_case "apply_named" `Quick test_apply_named;
        ] );
      ( "theorems",
        [
          Alcotest.test_case "rules are safe on the DRF corpus" `Slow
            test_theorems_3_4_on_corpus;
        ] );
    ]
