open Safeopt_trace
open Safeopt_core
open Helpers

let check_b = Alcotest.(check bool)
let wc = Wildcard.of_trace

let test_check_witness () =
  let wild = [ c (st 0); c (r "x" 1); wild "y"; c (r "x" 1); c (ext 1) ] in
  (* drop the wildcard (irrelevant) and the second read (RaR) *)
  let witness = { Elimination.wild; kept = [ 0; 1; 4 ] } in
  check_b "valid witness" true
    (Elimination.check_witness none
       ~transformed:[ st 0; r "x" 1; ext 1 ]
       witness);
  check_b "wrong transformed" false
    (Elimination.check_witness none
       ~transformed:[ st 0; r "x" 2; ext 1 ]
       witness);
  (* keeping a wildcard is never valid *)
  check_b "kept wildcard invalid" false
    (Elimination.check_witness none
       ~transformed:[ st 0; r "x" 1; r "y" 0; ext 1 ]
       { Elimination.wild; kept = [ 0; 1; 2; 4 ] });
  (* dropping a non-eliminable index is invalid: the write to z is
     followed by a kept read of z, so it is not a redundant last
     write and no other clause applies *)
  check_b "non-eliminable drop" false
    (Elimination.check_witness none
       ~transformed:[ st 0; r "x" 1; r "z" 1; ext 1 ]
       {
         Elimination.wild = wc [ st 0; r "x" 1; w "z" 1; r "z" 1; ext 1 ];
         kept = [ 0; 1; 3; 4 ];
       });
  (* proper mode rejects last-action eliminations *)
  let last_write = wc [ st 0; r "x" 1; ext 1; w "z" 1 ] in
  check_b "last write ok by default" true
    (Elimination.check_witness none
       ~transformed:[ st 0; r "x" 1; ext 1 ]
       { Elimination.wild = last_write; kept = [ 0; 1; 2 ] });
  check_b "last write rejected when proper" false
    (Elimination.check_witness ~proper:true none
       ~transformed:[ st 0; r "x" 1; ext 1 ]
       { Elimination.wild = last_write; kept = [ 0; 1; 2 ] })

let test_embeddings () =
  let wild = wc [ st 0; r "x" 1; r "x" 1; ext 1 ] in
  (* either read can be the kept one *)
  let embs = Elimination.embeddings none ~transformed:[ st 0; r "x" 1; ext 1 ] ~wild in
  (* only the FIRST read can be kept: the second is redundant-after-
     read, but the first has no earlier licensing action, so skipping
     it is not allowed *)
  Alcotest.(check int) "one embedding" 1 (List.length embs);
  check_b "all valid" true
    (List.for_all
       (fun kept ->
         Elimination.check_witness none
           ~transformed:[ st 0; r "x" 1; ext 1 ]
           { Elimination.wild; kept })
       embs);
  Alcotest.(check (option (list int))) "first embedding"
    (Some [ 0; 1; 3 ])
    (Elimination.trace_elimination_of none
       ~transformed:[ st 0; r "x" 1; ext 1 ]
       ~wild);
  Alcotest.(check (option (list int))) "impossible embedding" None
    (Elimination.trace_elimination_of none
       ~transformed:[ st 0; w "q" 9 ]
       ~wild)

let test_generalisations () =
  let universe = [ 0; 1 ] in
  let belongs_to w = Traceset.belongs_to fig2_original_traceset w ~universe in
  let gens =
    Elimination.generalisations ~belongs_to [ st 0; r "x" 1; w "y" 1 ]
  in
  (* the read can NOT be generalised alone (the write value depends on
     it), so only the concrete trace survives *)
  Alcotest.(check int) "only concrete" 1 (List.length gens);
  let gens2 = Elimination.generalisations ~belongs_to [ st 0; r "x" 1 ] in
  Alcotest.(check int) "read alone generalises" 2 (List.length gens2)

(* Section 4's example: the one-trace program x:=1;print 1;lock;x:=1;unlock
   is an elimination of the longer single-thread program. *)
let test_sec4_tracesets () =
  let orig = Safeopt_lang.Parser.parse_program
      {|thread {
  x := 1;
  r1 := y;
  r2 := x;
  print r2;
  if (r2 != 0) { lock m; x := 2; x := r2; unlock m; }
}|}
  in
  let trans = Safeopt_lang.Parser.parse_program
      {|thread { x := 1; print 1; lock m; x := 1; unlock m; }|}
  in
  let universe = Safeopt_lang.Denote.joint_universe [ orig; trans ] in
  let ts_o = Safeopt_lang.Denote.traceset ~universe ~max_len:12 orig in
  let ts_t = Safeopt_lang.Denote.traceset ~universe ~max_len:12 trans in
  check_b "is elimination" true
    (Elimination.is_elimination none ~original:ts_o ~universe
       ~transformed:ts_t);
  (* and not the other way round: the original has behaviours the
     transformed cannot eliminate its way into (e.g. reading y) *)
  check_b "not an elimination the other way" false
    (Elimination.is_elimination none ~original:ts_t ~universe
       ~transformed:ts_o)

let test_is_member () =
  let universe = [ 0; 1 ] in
  (* [S(0); W[x=1]] is in the elimination closure of fig2's original
     traceset (drop the irrelevant read) — the section-4 step. *)
  check_b "W[x=1] member via irrelevant read" true
    (Elimination.is_member none ~original:fig2_original_traceset ~universe
       [ st 1; w "x" 1 ]);
  check_b "original trace is a member" true
    (Elimination.is_member none ~original:fig2_original_traceset ~universe
       [ st 0; r "x" 1; w "y" 1 ]);
  check_b "alien trace is not" false
    (Elimination.is_member none ~original:fig2_original_traceset ~universe
       [ st 0; w "q" 1 ])

let test_negative () =
  (* A transformed traceset with a fresh action cannot be an
     elimination. *)
  let orig = Traceset.of_list [ [ st 0; w "x" 1 ] ] in
  let bad = Traceset.of_list [ [ st 0; w "x" 2 ] ] in
  check_b "fresh write rejected" false
    (Elimination.is_elimination none ~original:orig ~universe:[ 0; 1; 2 ]
       ~transformed:bad);
  (* Dropping a non-eliminable action is rejected: W[x=1] between two
     reads of x cannot be dropped. *)
  let orig2 = Traceset.of_list [ [ st 0; r "x" 0; w "x" 1; r "x" 1 ] ] in
  let bad2 = Traceset.of_list [ [ st 0; r "x" 0; r "x" 1 ] ] in
  check_b "load-bearing write not eliminable" false
    (Elimination.is_elimination none ~original:orig2 ~universe:[ 0; 1 ]
       ~transformed:bad2)

let () =
  Alcotest.run "elimination"
    [
      ( "elimination",
        [
          Alcotest.test_case "witness checking" `Quick test_check_witness;
          Alcotest.test_case "embeddings" `Quick test_embeddings;
          Alcotest.test_case "generalisations" `Quick test_generalisations;
          Alcotest.test_case "section-4 tracesets" `Quick test_sec4_tracesets;
          Alcotest.test_case "closure membership" `Quick test_is_member;
          Alcotest.test_case "negative cases" `Quick test_negative;
        ] );
    ]
