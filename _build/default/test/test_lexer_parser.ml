open Safeopt_lang
open Helpers

let check_b = Alcotest.(check bool)

let test_tokens () =
  let toks = Lexer.tokenize "r1 := x; // comment\nlock m;" |> List.map fst in
  Alcotest.(check int) "token count" 8 (List.length toks);
  check_b "shape" true
    (toks
    = [
        Lexer.IDENT "r1";
        Lexer.ASSIGN;
        Lexer.IDENT "x";
        Lexer.SEMI;
        Lexer.LOCK;
        Lexer.IDENT "m";
        Lexer.SEMI;
        Lexer.EOF;
      ]);
  let toks2 = Lexer.tokenize "a == b != 12 {}()" |> List.map fst in
  check_b "operators" true
    (toks2
    = [
        Lexer.IDENT "a";
        Lexer.EQ;
        Lexer.IDENT "b";
        Lexer.NE;
        Lexer.NAT 12;
        Lexer.LBRACE;
        Lexer.RBRACE;
        Lexer.LPAREN;
        Lexer.RPAREN;
        Lexer.EOF;
      ]);
  ignore (Lexer.tokenize "/* block \n comment */ x");
  Alcotest.check_raises "bad char"
    (Lexer.Error ({ Lexer.line = 1; col = 1 }, "unexpected character '@'"))
    (fun () -> ignore (Lexer.tokenize "@"))

let test_positions () =
  match Lexer.tokenize "x := 1;\n  y := 2;" with
  | _ :: _ :: _ :: _ :: (Lexer.IDENT "y", pos) :: _ ->
      Alcotest.(check int) "line" 2 pos.Lexer.line;
      Alcotest.(check int) "col" 3 pos.Lexer.col
  | _ -> Alcotest.fail "unexpected token stream"

let test_core_forms () =
  let t = Parser.parse_thread "x := r1; r2 := x; r3 := r2; r4 := 7;" in
  check_b "core statements" true
    (t
    = [
        Ast.Store ("x", "r1");
        Ast.Load ("r2", "x");
        Ast.Move ("r3", Ast.Reg "r2");
        Ast.Move ("r4", Ast.Nat 7);
      ]);
  let t2 = Parser.parse_thread "lock m; skip; print r1; unlock m;" in
  check_b "sync and print" true
    (t2 = [ Ast.Lock "m"; Ast.Skip; Ast.Print "r1"; Ast.Unlock "m" ])

let test_control () =
  let t = Parser.parse_thread "if (r1 == 1) x := r1; else skip;" in
  check_b "if-else" true
    (t = [ Ast.If (Ast.Eq (Ast.Reg "r1", Ast.Nat 1), Ast.Store ("x", "r1"), Ast.Skip) ]);
  let t2 = Parser.parse_thread "if (r1 != r2) { skip; }" in
  check_b "missing else becomes skip" true
    (t2
    = [ Ast.If (Ast.Ne (Ast.Reg "r1", Ast.Reg "r2"), Ast.Block [ Ast.Skip ], Ast.Skip) ]);
  let t3 = Parser.parse_thread "while (r1 == 0) r1 := x;" in
  check_b "while" true
    (t3 = [ Ast.While (Ast.Eq (Ast.Reg "r1", Ast.Nat 0), Ast.Load ("r1", "x")) ])

let test_desugaring () =
  check_b "store constant" true
    (Parser.parse_thread "x := 5;"
    = [ Ast.Move ("rt0", Ast.Nat 5); Ast.Store ("x", "rt0") ]);
  check_b "store location" true
    (Parser.parse_thread "x := y;"
    = [ Ast.Load ("rt0", "y"); Ast.Store ("x", "rt0") ]);
  check_b "print location" true
    (Parser.parse_thread "print x;"
    = [ Ast.Load ("rt0", "x"); Ast.Print "rt0" ]);
  check_b "print constant" true
    (Parser.parse_thread "print 3;"
    = [ Ast.Move ("rt0", Ast.Nat 3); Ast.Print "rt0" ]);
  check_b "condition hoists load" true
    (Parser.parse_thread "if (x == 1) skip;"
    = [
        Ast.Load ("rt0", "x");
        Ast.If (Ast.Eq (Ast.Reg "rt0", Ast.Nat 1), Ast.Skip, Ast.Skip);
      ]);
  (* fresh temporaries avoid user registers named rtN *)
  check_b "fresh avoids clashes" true
    (Parser.parse_thread "rt0 := 1; x := 5;"
    = [
        Ast.Move ("rt0", Ast.Nat 1);
        Ast.Move ("rt1", Ast.Nat 5);
        Ast.Store ("x", "rt1");
      ])

let test_program_volatiles () =
  let p = parse "volatile v, w;\nthread { x := r1; }\nthread { r1 := x; }" in
  Alcotest.(check int) "two threads" 2 (List.length p.Ast.threads);
  check_b "v volatile" true
    (Safeopt_trace.Location.Volatile.mem p.Ast.volatile "v");
  check_b "w volatile" true
    (Safeopt_trace.Location.Volatile.mem p.Ast.volatile "w");
  check_b "x not volatile" false
    (Safeopt_trace.Location.Volatile.mem p.Ast.volatile "x")

let test_errors () =
  let expect_error src =
    match Parser.parse_program src with
    | exception Parser.Error _ -> ()
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.failf "expected a parse error for %S" src
  in
  expect_error "thread { x := ; }";
  expect_error "thread { x = 1; }";
  expect_error "thread { if r1 == 1 skip; }";
  expect_error "thread { lock 5; }";
  expect_error "nonsense";
  expect_error "thread { x := 1 }";
  (* while with a location in the condition is rejected, not silently
     hoisted *)
  expect_error "thread { while (x == 1) skip; }";
  (* self-assignment of a location has no core form *)
  expect_error "thread { x := x; }"

let test_roundtrip () =
  (* parse . pp = identity on core programs *)
  let srcs =
    [
      "thread {\n  x := r1;\n  r2 := x;\n  lock m;\n  print r2;\n  unlock m;\n}";
      "volatile v;\nthread {\n  r1 := v;\n  if (r1 == 1)\n    x := r1;\n  \
       else\n    skip;\n}";
      "thread {\n  while (r1 != 1)\n    r1 := x;\n  print r1;\n}";
    ]
  in
  List.iter
    (fun src ->
      let p = parse src in
      let p2 = parse (Pp.program_to_string p) in
      Alcotest.check program "roundtrip" p p2)
    srcs

let () =
  Alcotest.run "lexer-parser"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_tokens;
          Alcotest.test_case "positions" `Quick test_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "core forms" `Quick test_core_forms;
          Alcotest.test_case "control" `Quick test_control;
          Alcotest.test_case "desugaring" `Quick test_desugaring;
          Alcotest.test_case "volatiles" `Quick test_program_volatiles;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        ] );
    ]
