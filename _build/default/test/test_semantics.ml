open Safeopt_lang
open Helpers

let check_b = Alcotest.(check bool)

let conf stmts = Semantics.initial stmts

let rec drive c n =
  (* follow [n] visible steps, reads get value 9 *)
  if n = 0 then Semantics.next c
  else
    match Semantics.next c with
    | Semantics.Write (_, _, c')
    | Semantics.Lock (_, c')
    | Semantics.Unlock (_, c')
    | Semantics.Output (_, c') ->
        drive c' (n - 1)
    | Semantics.Read (_, k) -> drive (k 9) (n - 1)
    | o -> o

let test_write () =
  match Semantics.next (conf [ Ast.Move ("r", Ast.Nat 5); Ast.Store ("x", "r") ]) with
  | Semantics.Write ("x", 5, _) -> ()
  | _ -> Alcotest.fail "expected W[x=5]"

let test_read_binds () =
  match
    Semantics.next (conf [ Ast.Load ("r", "x"); Ast.Print "r" ])
  with
  | Semantics.Read ("x", k) -> (
      match Semantics.next (k 7) with
      | Semantics.Output (7, _) -> ()
      | _ -> Alcotest.fail "print should see the read value")
  | _ -> Alcotest.fail "expected a read"

let test_default_register () =
  (* registers are zero-initialised *)
  match Semantics.next (conf [ Ast.Print "r9" ]) with
  | Semantics.Output (0, _) -> ()
  | _ -> Alcotest.fail "expected X(0)"

let test_lock_unlock () =
  match drive (conf [ Ast.Lock "m"; Ast.Unlock "m" ]) 1 with
  | Semantics.Unlock ("m", c') ->
      check_b "done after" true (Semantics.next c' = Semantics.Done)
  | _ -> Alcotest.fail "expected U[m]"

let test_eulk_silent () =
  (* E-ULK: unlocking an un-held monitor is silent *)
  match Semantics.next (conf [ Ast.Unlock "m"; Ast.Print "r" ]) with
  | Semantics.Output (0, _) -> ()
  | _ -> Alcotest.fail "unheld unlock should be silent"

let test_nested_locks () =
  let c = conf [ Ast.Lock "m"; Ast.Lock "m"; Ast.Unlock "m"; Ast.Unlock "m" ] in
  match drive c 3 with
  | Semantics.Unlock ("m", _) -> ()
  | _ -> Alcotest.fail "nested unlock should emit"

let test_conditionals () =
  let p t = [ Ast.If (t, Ast.Print "r1", Ast.Store ("x", "r1")) ] in
  (match Semantics.next (conf (p (Ast.Eq (Ast.Nat 1, Ast.Nat 1)))) with
  | Semantics.Output _ -> ()
  | _ -> Alcotest.fail "true branch");
  (match Semantics.next (conf (p (Ast.Ne (Ast.Nat 1, Ast.Nat 1)))) with
  | Semantics.Write _ -> ()
  | _ -> Alcotest.fail "false branch");
  (* Val on registers *)
  let c =
    conf [ Ast.Move ("r1", Ast.Nat 2); Ast.If (Ast.Eq (Ast.Reg "r1", Ast.Nat 2), Ast.Print "r1", Ast.Skip) ]
  in
  match Semantics.next c with
  | Semantics.Output (2, _) -> ()
  | _ -> Alcotest.fail "register compare"

let test_loop () =
  (* while unrolls; countdown via r == 0 test on a register set by reads *)
  let body = Ast.While (Ast.Ne (Ast.Reg "r", Ast.Nat 1), Ast.Load ("r", "x")) in
  let c = conf [ body; Ast.Print "r" ] in
  (* read 0 twice, then 1, then loop exits *)
  match Semantics.next c with
  | Semantics.Read ("x", k) -> (
      match Semantics.next (k 0) with
      | Semantics.Read ("x", k2) -> (
          match Semantics.next (k2 1) with
          | Semantics.Output (1, _) -> ()
          | _ -> Alcotest.fail "loop should exit after reading 1")
      | _ -> Alcotest.fail "loop should re-read")
  | _ -> Alcotest.fail "loop should read"

let test_divergence () =
  let spin = [ Ast.While (Ast.Eq (Ast.Nat 0, Ast.Nat 0), Ast.Skip) ] in
  check_b "silent spin diverges" true
    (Semantics.next ~tau_fuel:1000 (conf spin) = Semantics.Diverged)

let test_blocks () =
  let c = conf [ Ast.Block [ Ast.Skip; Ast.Block [ Ast.Print "r" ] ]; Ast.Store ("x", "r") ] in
  match Semantics.next c with
  | Semantics.Output (0, c') -> (
      match Semantics.next c' with
      | Semantics.Write ("x", 0, _) -> ()
      | _ -> Alcotest.fail "after block")
  | _ -> Alcotest.fail "block flattening"

let test_issues () =
  let c () = conf (Parser.parse_thread "r1 := x; y := r1; print r1;") in
  check_b "full trace" true
    (Semantics.issues (c ()) [ r "x" 3; w "y" 3; ext 3 ]);
  check_b "prefix" true (Semantics.issues (c ()) [ r "x" 3 ]);
  check_b "empty" true (Semantics.issues (c ()) []);
  check_b "wrong write value" false
    (Semantics.issues (c ()) [ r "x" 3; w "y" 4 ]);
  check_b "wrong action kind" false (Semantics.issues (c ()) [ w "y" 0 ]);
  check_b "too long" false
    (Semantics.issues (c ()) [ r "x" 3; w "y" 3; ext 3; ext 3 ])

let test_run_sequential () =
  let mem = Hashtbl.create 7 in
  let read l = Option.value ~default:0 (Hashtbl.find_opt mem l) in
  let write l v = Hashtbl.replace mem l v in
  let t =
    Semantics.run_sequential
      (conf (Parser.parse_thread "x := 4; r1 := x; y := r1; print r1;"))
      ~read ~write
  in
  Alcotest.check trace "sequential trace"
    [ w "x" 4; r "x" 4; w "y" 4; ext 4 ]
    (* desugaring inserts a Move which is silent *)
    t;
  Alcotest.(check int) "memory updated" 4 (read "y")

let test_config_key () =
  let c1 = conf [ Ast.Print "r" ] and c2 = conf [ Ast.Print "r" ] in
  Alcotest.(check string) "equal configs equal keys"
    (Semantics.config_key c1) (Semantics.config_key c2);
  check_b "different code different keys" true
    (Semantics.config_key (conf [ Ast.Skip ])
    <> Semantics.config_key (conf [ Ast.Print "r" ]))

let () =
  Alcotest.run "semantics"
    [
      ( "small-step",
        [
          Alcotest.test_case "write" `Quick test_write;
          Alcotest.test_case "read binds" `Quick test_read_binds;
          Alcotest.test_case "default register" `Quick test_default_register;
          Alcotest.test_case "lock/unlock" `Quick test_lock_unlock;
          Alcotest.test_case "E-ULK silent" `Quick test_eulk_silent;
          Alcotest.test_case "nested locks" `Quick test_nested_locks;
          Alcotest.test_case "conditionals" `Quick test_conditionals;
          Alcotest.test_case "loops" `Quick test_loop;
          Alcotest.test_case "divergence" `Quick test_divergence;
          Alcotest.test_case "blocks" `Quick test_blocks;
        ] );
      ( "multi-step",
        [
          Alcotest.test_case "issues" `Quick test_issues;
          Alcotest.test_case "run_sequential" `Quick test_run_sequential;
          Alcotest.test_case "config keys" `Quick test_config_key;
        ] );
    ]
