open Safeopt_trace
open Safeopt_core
open Helpers

let check_b = Alcotest.(check bool)

(* Fig. 1's single-thread DRF shrink: eliminating in a DRF traceset
   must preserve behaviours (Theorem 1). *)
let test_theorem1_drf () =
  let orig =
    Traceset.of_list
      [ [ st 0; w "x" 1; r "x" 1; r "x" 1; ext 1 ] ]
  in
  let trans = Traceset.of_list [ [ st 0; w "x" 1; r "x" 1; ext 1 ] ] in
  let v =
    Safety.check_elimination none ~original:orig ~transformed:trans
      ~universe:[ 0; 1 ]
  in
  check_b "original DRF" true v.Safety.original_drf;
  check_b "transformed DRF" true v.Safety.transformed_drf;
  check_b "behaviours included" true v.Safety.behaviours_included;
  check_b "relation holds" true v.Safety.relation_holds;
  check_b "guarantee" true (Safety.drf_guarantee_ok v)

(* Fig. 1 proper: racy original, elimination adds behaviour [1;0] —
   the guarantee is vacuous but the verdict reports the new
   behaviour. *)
let test_fig1_racy () =
  let p_orig = Safeopt_litmus.Litmus.program Safeopt_litmus.Corpus.fig1_original in
  let p_trans =
    Safeopt_litmus.Litmus.program Safeopt_litmus.Corpus.fig1_transformed
  in
  let universe = Safeopt_lang.Denote.joint_universe [ p_orig; p_trans ] in
  let orig = Safeopt_lang.Denote.traceset ~universe ~max_len:10 p_orig in
  let trans = Safeopt_lang.Denote.traceset ~universe ~max_len:10 p_trans in
  let v = Safety.check_elimination none ~original:orig ~transformed:trans ~universe in
  check_b "original racy" false v.Safety.original_drf;
  check_b "relation holds" true v.Safety.relation_holds;
  check_b "new behaviour appears" false v.Safety.behaviours_included;
  Alcotest.(check (option behaviour)) "the new behaviour is 1,0"
    (Some [ 1; 0 ])
    (match v.Safety.counterexample with
    | Some b when Safeopt_exec.Behaviour.equal b [ 1; 0 ] -> Some [ 1; 0 ]
    | other -> other);
  check_b "guarantee vacuously holds" true (Safety.drf_guarantee_ok v)

let test_theorem2_fig2 () =
  (* Fig. 2: transformed is a reordering of T-bar but not of T; both
     racy. *)
  let t_bar = Traceset.add [ st 1; w "x" 1 ] fig2_original_traceset in
  let v =
    Safety.check_reordering none ~original:t_bar
      ~transformed:fig2_transformed_traceset
  in
  check_b "relation holds" true v.Safety.relation_holds;
  check_b "racy so vacuous" true (Safety.drf_guarantee_ok v);
  let v2 =
    Safety.check_reordering none ~original:fig2_original_traceset
      ~transformed:fig2_transformed_traceset
  in
  check_b "not a reordering of T" false v2.Safety.relation_holds

(* A DRF reordering.  The original traceset must already contain the
   de-permuted prefixes (here [S(0); W[y=1]], obtainable by eliminating
   the last write) — a traceset-level T-bar, as in the paper's
   section-4 example. *)
let test_theorem2_drf () =
  let orig =
    Traceset.of_list
      [
        [ st 0; w "x" 1; w "y" 1; ext 1 ];
        [ st 0; w "y" 1 ];
        [ st 1; ext 9 ];
      ]
  in
  let trans =
    Traceset.of_list
      [ [ st 0; w "y" 1; w "x" 1; ext 1 ]; [ st 1; ext 9 ] ]
  in
  (* x and y belong to thread 0 alone: DRF *)
  let v = Safety.check_reordering none ~original:orig ~transformed:trans in
  check_b "original drf" true v.Safety.original_drf;
  check_b "relation" true v.Safety.relation_holds;
  check_b "behaviours included" true v.Safety.behaviours_included;
  check_b "transformed drf" true v.Safety.transformed_drf;
  check_b "guarantee holds" true (Safety.drf_guarantee_ok v)

let test_behaviour_subset () =
  let b1 = behaviours_of_list [ []; [ 1 ] ] in
  let b2 = behaviours_of_list [ []; [ 1 ]; [ 2 ] ] in
  Alcotest.(check (option behaviour)) "subset" None (Safety.behaviour_subset b1 b2);
  Alcotest.(check (option behaviour)) "witness" (Some [ 2 ])
    (Safety.behaviour_subset b2 b1)

let test_guarantee_logic () =
  let base =
    {
      Safety.original_drf = true;
      transformed_drf = true;
      behaviours_included = true;
      relation_holds = true;
      counterexample = None;
    }
  in
  check_b "all good" true (Safety.drf_guarantee_ok base);
  check_b "racy original vacuous" true
    (Safety.drf_guarantee_ok { base with Safety.original_drf = false; behaviours_included = false });
  check_b "violation detected" false
    (Safety.drf_guarantee_ok { base with Safety.behaviours_included = false });
  check_b "drf loss detected" false
    (Safety.drf_guarantee_ok { base with Safety.transformed_drf = false });
  check_b "no relation no claim" true
    (Safety.drf_guarantee_ok
       { base with Safety.relation_holds = false; behaviours_included = false })

let () =
  Alcotest.run "safety"
    [
      ( "safety",
        [
          Alcotest.test_case "theorem 1 on DRF traceset" `Quick
            test_theorem1_drf;
          Alcotest.test_case "fig 1 racy elimination" `Quick test_fig1_racy;
          Alcotest.test_case "theorem 2 on fig 2" `Quick test_theorem2_fig2;
          Alcotest.test_case "theorem 2 on DRF traceset" `Quick
            test_theorem2_drf;
          Alcotest.test_case "behaviour subset" `Quick test_behaviour_subset;
          Alcotest.test_case "guarantee logic" `Quick test_guarantee_logic;
        ] );
    ]
