open Safeopt_exec
open Helpers

let check_b = Alcotest.(check bool)

(* Message passing through a lock:
   0: S(0) 2: L[m] 3: W[x=1] 4: U[m]
   1: S(1)                          5: L[m] 6: R[x=1] 7: U[m] *)
let i =
  il
    [
      (0, st 0);
      (1, st 1);
      (0, lk "m");
      (0, w "x" 1);
      (0, ul "m");
      (1, lk "m");
      (1, r "x" 1);
      (1, ul "m");
    ]

let hb = Happens_before.make none i

let test_po () =
  check_b "same thread ordered" true (Happens_before.program_order hb 0 3);
  check_b "po reflexive" true (Happens_before.program_order hb 3 3);
  check_b "cross thread not po" false (Happens_before.program_order hb 0 1);
  check_b "po respects index order" false (Happens_before.program_order hb 3 0)

let test_sw () =
  check_b "unlock-lock sw" true (Happens_before.synchronises_with hb 4 5);
  check_b "not backwards" false (Happens_before.synchronises_with hb 5 4);
  check_b "lock-lock not sw" false (Happens_before.synchronises_with hb 2 5);
  check_b "write-read not sw (non-volatile)" false
    (Happens_before.synchronises_with hb 3 6)

let test_hb () =
  check_b "po in hb" true (Happens_before.hb hb 0 4);
  check_b "sw in hb" true (Happens_before.hb hb 4 5);
  check_b "transitive: write hb read" true (Happens_before.hb hb 3 6);
  check_b "start-0 hb everything of thread 0" true (Happens_before.hb hb 0 4);
  check_b "no hb between starts" false (Happens_before.hb hb 0 1);
  check_b "reflexive" true (Happens_before.hb hb 6 6);
  check_b "strict excludes equal" false (Happens_before.hb_strict hb 6 6);
  check_b "ordered" true (Happens_before.ordered hb 3 6);
  Alcotest.(check int) "size" 8 (Happens_before.size hb)

(* Volatile write/read synchronise; plain ones do not. *)
let test_volatile_sw () =
  let j =
    il [ (0, st 0); (1, st 1); (0, w "x" 1); (0, w "v" 1); (1, r "v" 1); (1, r "x" 1) ]
  in
  let hbv = Happens_before.make vol_v j in
  check_b "volatile sw" true (Happens_before.synchronises_with hbv 3 4);
  check_b "data write hb data read via volatile" true
    (Happens_before.hb hbv 2 5);
  let hbn = Happens_before.make none j in
  check_b "without volatility, unordered" false (Happens_before.ordered hbn 2 5)

(* hb is contained in the index order, hence a partial order. *)
let test_partial_order () =
  let n = Happens_before.size hb in
  let ok = ref true in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if Happens_before.hb_strict hb a b && Happens_before.hb_strict hb b a
      then ok := false;
      for cc = 0 to n - 1 do
        if
          Happens_before.hb hb a b && Happens_before.hb hb b cc
          && not (Happens_before.hb hb a cc)
        then ok := false
      done
    done
  done;
  check_b "antisymmetric and transitive" true !ok

let () =
  Alcotest.run "happens-before"
    [
      ( "happens-before",
        [
          Alcotest.test_case "program order" `Quick test_po;
          Alcotest.test_case "synchronises-with" `Quick test_sw;
          Alcotest.test_case "happens-before" `Quick test_hb;
          Alcotest.test_case "volatile sw" `Quick test_volatile_sw;
          Alcotest.test_case "partial order laws" `Quick test_partial_order;
        ] );
    ]
