open Safeopt_opt
open Helpers

let check_b = Alcotest.(check bool)

let test_identity () =
  let p = parse "thread { x := 1; print x; }" in
  let r = Validate.validate ~original:p ~transformed:p () in
  check_b "identity ok" true (Validate.ok r);
  check_b "drf recorded" true r.Validate.original_drf;
  check_b "no new behaviour" true (r.Validate.new_behaviour = None)

let test_fig2_report () =
  let orig = Safeopt_litmus.Litmus.program Safeopt_litmus.Corpus.fig2_original in
  let trans =
    Safeopt_litmus.Litmus.program Safeopt_litmus.Corpus.fig2_transformed
  in
  let r = Validate.validate ~original:orig ~transformed:trans () in
  check_b "racy original" false r.Validate.original_drf;
  check_b "new behaviour detected" true (r.Validate.new_behaviour <> None);
  (* the guarantee is vacuous for racy programs *)
  check_b "vacuously ok" true (Validate.ok r)

let test_drf_violation_detected () =
  (* Break a DRF program by sinking a write out of its lock. *)
  let orig =
    parse
      "thread { lock m; x := 1; unlock m; }\n\
       thread { lock m; r1 := x; print r1; unlock m; }"
  in
  let bad =
    parse
      "thread { x := 1; lock m; skip; unlock m; }\n\
       thread { lock m; r1 := x; print r1; unlock m; }"
  in
  let r = Validate.validate ~original:orig ~transformed:bad () in
  check_b "original drf" true r.Validate.original_drf;
  check_b "transformed racy" false r.Validate.transformed_drf;
  check_b "race witness produced" true (r.Validate.race_witness <> None);
  check_b "guarantee violated" false (Validate.ok r)

let test_new_behaviour_detected () =
  let orig = parse "thread { r1 := 1; print r1; }" in
  let bad = parse "thread { r1 := 2; print r1; }" in
  let r = Validate.validate ~original:orig ~transformed:bad () in
  Alcotest.(check (option behaviour)) "behaviour [2] is new" (Some [ 2 ])
    r.Validate.new_behaviour;
  check_b "violated" false (Validate.ok r)

let test_semantic_relations () =
  (* elimination relation validated end to end *)
  let orig = parse "thread { x := r1; r2 := x; y := r2; }" in
  let trans = parse "thread { x := r1; r2 := r1; y := r2; }" in
  let r =
    Validate.validate_semantic ~max_len:8 ~relation:Validate.Elimination
      ~original:orig ~transformed:trans ()
  in
  Alcotest.(check (option bool)) "elimination holds" (Some true)
    r.Validate.relation_holds;
  check_b "overall ok" true (Validate.ok r);
  (* a wrong claim is refuted *)
  let r2 =
    Validate.validate_semantic ~max_len:8 ~relation:Validate.Elimination
      ~original:trans ~transformed:orig ()
  in
  Alcotest.(check (option bool)) "reverse direction refuted" (Some false)
    r2.Validate.relation_holds;
  check_b "refutation carries an unwitnessed trace" true
    (r2.Validate.relation_counterexample <> None);
  check_b "refutation fails ok" false (Validate.ok r2);
  check_b "positive checks carry no counterexample" true
    (r.Validate.relation_counterexample = None);
  (* reordering via elimination closure (Lemma 5): swap two loads *)
  let orig3 = parse "thread { r1 := x; r2 := y; print r1; print r2; }" in
  let trans3 = parse "thread { r2 := y; r1 := x; print r1; print r2; }" in
  let r3 =
    Validate.validate_semantic ~max_len:8
      ~relation:Validate.Elimination_then_reordering ~original:orig3
      ~transformed:trans3 ()
  in
  Alcotest.(check (option bool)) "elim-then-reorder holds" (Some true)
    r3.Validate.relation_holds

let test_chain () =
  (* the paper's main result shape: a finite chain of safe steps from a
     DRF program adds no behaviours end to end *)
  let p0 = parse "thread { r1 := x; skip; r2 := x; y := r2; y := r1; }" in
  let p1 =
    match Safeopt_opt.Transform.apply_named "E-RAR" p0 with
    | Ok p -> p
    | Error e -> failwith e
  in
  let p2, _ = Safeopt_opt.Passes.eliminate_redundancy p1 in
  let report = Validate.validate_chain [ p0; p1; p2 ] in
  Alcotest.(check int) "two pairwise reports" 2
    (List.length report.Validate.pairwise);
  check_b "chain holds" true (Validate.chain_ok report);
  (* a broken chain is detected end to end *)
  let bad = parse "thread { r1 := 1; print r1; }" in
  let broken = Validate.validate_chain [ p0; p1; bad ] in
  check_b "broken chain detected" false (Validate.chain_ok broken);
  (* singleton chain is the identity *)
  let single = Validate.validate_chain [ p0 ] in
  check_b "singleton ok" true (Validate.chain_ok single);
  Alcotest.check_raises "empty chain rejected"
    (Invalid_argument "Validate.validate_chain: empty chain") (fun () ->
      ignore (Validate.validate_chain []))

let test_pp () =
  let p = parse "thread { x := 1; }" in
  let r = Validate.validate ~original:p ~transformed:p () in
  let s = Fmt.str "%a" Validate.pp_report r in
  check_b "mentions DRF" true (contains_substring s "DRF")

let () =
  Alcotest.run "validate"
    [
      ( "validate",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "fig2 report" `Quick test_fig2_report;
          Alcotest.test_case "DRF violation detected" `Quick
            test_drf_violation_detected;
          Alcotest.test_case "new behaviour detected" `Quick
            test_new_behaviour_detected;
          Alcotest.test_case "semantic relations" `Slow test_semantic_relations;
          Alcotest.test_case "transformation chains" `Quick test_chain;
          Alcotest.test_case "report printing" `Quick test_pp;
        ] );
    ]
