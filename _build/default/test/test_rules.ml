open Safeopt_trace
open Safeopt_lang
open Safeopt_opt
open Helpers

let check_b = Alcotest.(check bool)

let apply_at rule vol thread = rule.Rule.rewrites_at vol ~ctx:Reg.Set.empty thread

let thread_testable =
  Alcotest.testable
    (fun ppf t -> Fmt.string ppf (Pp.thread_compact t))
    Ast.equal_thread

let test_e_rar () =
  let t = Parser.parse_thread "r1 := x; z := r3; r2 := x;" in
  (match apply_at Rule.e_rar none t with
  | [ t' ] ->
      Alcotest.check thread_testable "RAR result"
        (Parser.parse_thread "r1 := x; z := r3; r2 := r1;")
        t'
  | other -> Alcotest.failf "expected 1 rewrite, got %d" (List.length other));
  (* volatile x blocks *)
  check_b "volatile blocked" true
    (apply_at Rule.e_rar (Location.Volatile.of_list [ "x" ])
       (Parser.parse_thread "r1 := x; r2 := x;")
    = []);
  (* the middle must not write x *)
  check_b "interfering middle blocked" true
    (apply_at Rule.e_rar none (Parser.parse_thread "r1 := x; x := r3; r2 := x;")
    = []);
  (* the middle must not touch r1 *)
  check_b "register clash blocked" true
    (apply_at Rule.e_rar none (Parser.parse_thread "r1 := x; r1 := 5; r2 := x;")
    = []);
  (* the middle must be sync free *)
  check_b "lock in middle blocked" true
    (apply_at Rule.e_rar none
       (Parser.parse_thread "r1 := x; lock m; unlock m; r2 := x;")
    = [])

let test_e_raw () =
  match apply_at Rule.e_raw none (Parser.parse_thread "x := r1; skip; r2 := x;") with
  | [ t' ] ->
      Alcotest.check thread_testable "RAW result"
        (Parser.parse_thread "x := r1; skip; r2 := r1;")
        t'
  | other -> Alcotest.failf "expected 1 rewrite, got %d" (List.length other)

let test_e_war () =
  (match apply_at Rule.e_war none (Parser.parse_thread "r1 := x; skip; x := r1;") with
  | [ t' ] ->
      Alcotest.check thread_testable "WAR result"
        (Parser.parse_thread "r1 := x; skip;")
        t'
  | other -> Alcotest.failf "expected 1 rewrite, got %d" (List.length other));
  check_b "different register blocked" true
    (apply_at Rule.e_war none (Parser.parse_thread "r1 := x; x := r2;") = [])

let test_e_wbw () =
  match apply_at Rule.e_wbw none (Parser.parse_thread "x := r1; skip; x := r2;") with
  | [ t' ] ->
      Alcotest.check thread_testable "WBW result"
        (Parser.parse_thread "skip; x := r2;")
        t'
  | other -> Alcotest.failf "expected 1 rewrite, got %d" (List.length other)

let test_e_ir () =
  (match apply_at Rule.e_ir none (Parser.parse_thread "r1 := x; r1 := 5;") with
  | [ t' ] ->
      Alcotest.check thread_testable "IR result" (Parser.parse_thread "r1 := 5;") t'
  | other -> Alcotest.failf "expected 1 rewrite, got %d" (List.length other));
  check_b "only adjacent" true
    (apply_at Rule.e_ir none (Parser.parse_thread "r1 := x; skip; r1 := 5;") = [])

let swap_case name rule src expected blocked_srcs =
  Alcotest.test_case name `Quick (fun () ->
      (match apply_at rule none (Parser.parse_thread src) with
      | [ t' ] ->
          Alcotest.check thread_testable name (Parser.parse_thread expected) t'
      | other ->
          Alcotest.failf "%s: expected 1 rewrite, got %d" name
            (List.length other));
      List.iter
        (fun s ->
          check_b (name ^ " blocked") true
            (apply_at rule none (Parser.parse_thread s) = []))
        blocked_srcs)

let test_swap_volatility () =
  let volx = Location.Volatile.of_list [ "x" ] in
  let voly = Location.Volatile.of_list [ "y" ] in
  (* R-WR allows one of the two locations volatile, but not both *)
  check_b "R-WR volatile x ok" true
    (apply_at Rule.r_wr volx (Parser.parse_thread "x := r1; r2 := y;") <> []);
  check_b "R-WR volatile y ok" true
    (apply_at Rule.r_wr voly (Parser.parse_thread "x := r1; r2 := y;") <> []);
  check_b "R-WR both volatile blocked" true
    (apply_at Rule.r_wr
       (Location.Volatile.of_list [ "x"; "y" ])
       (Parser.parse_thread "x := r1; r2 := y;")
    = []);
  (* R-RW needs both non-volatile *)
  check_b "R-RW volatile x blocked" true
    (apply_at Rule.r_rw volx (Parser.parse_thread "r1 := x; y := r2;") = []);
  (* R-WW needs the second store non-volatile *)
  check_b "R-WW volatile y blocked" true
    (apply_at Rule.r_ww voly (Parser.parse_thread "x := r1; y := r2;") = []);
  check_b "R-WW volatile x ok (release roach motel)" true
    (apply_at Rule.r_ww volx (Parser.parse_thread "x := r1; y := r2;") <> []);
  (* roach motel rules require non-volatile access *)
  check_b "R-WL volatile blocked" true
    (apply_at Rule.r_wl volx (Parser.parse_thread "x := r1; lock m;") = [])

let test_i_ir () =
  let t = Parser.parse_thread "lock m; r1 := x; print r1; unlock m;" in
  let results = apply_at Rule.i_ir none t in
  check_b "introduces a read" true
    (List.exists
       (fun t' ->
         match t' with
         | Ast.Load (r, "x") :: rest ->
             Ast.equal_thread rest t && not (Reg.Set.mem r (Ast.regs_thread t))
         | _ -> false)
       results);
  (* nothing to read: no introduction *)
  check_b "no reads no introduction" true
    (apply_at Rule.i_ir none (Parser.parse_thread "x := r1;") = [])

let test_moves () =
  (match apply_at Rule.m_fwd none (Parser.parse_thread "r1 := 5; x := r2;") with
  | [ t' ] ->
      Alcotest.check thread_testable "move forward"
        (Parser.parse_thread "x := r2; r1 := 5;")
        t'
  | other -> Alcotest.failf "expected 1 rewrite, got %d" (List.length other));
  (* dependency blocks *)
  check_b "dependent store blocks" true
    (apply_at Rule.m_fwd none (Parser.parse_thread "r1 := 5; x := r1;") = []);
  check_b "source overwrite blocks" true
    (apply_at Rule.m_fwd none (Parser.parse_thread "r1 := r2; r2 := 7;") = [])

let test_by_name () =
  check_b "found" true (Rule.by_name "e-rar" <> None);
  check_b "case insensitive" true (Rule.by_name "R-WL" <> None);
  check_b "i-ir findable" true (Rule.by_name "I-IR" <> None);
  check_b "unknown" true (Rule.by_name "X-YZ" = None);
  Alcotest.(check int) "5 eliminations" 5 (List.length Rule.eliminations);
  Alcotest.(check int) "10 reorderings" 10 (List.length Rule.reorderings);
  Alcotest.(check int) "15 safe rules" 15 (List.length Rule.all)

let () =
  Alcotest.run "rules"
    [
      ( "eliminations",
        [
          Alcotest.test_case "E-RAR" `Quick test_e_rar;
          Alcotest.test_case "E-RAW" `Quick test_e_raw;
          Alcotest.test_case "E-WAR" `Quick test_e_war;
          Alcotest.test_case "E-WBW" `Quick test_e_wbw;
          Alcotest.test_case "E-IR" `Quick test_e_ir;
        ] );
      ( "reorderings",
        [
          swap_case "R-RR" Rule.r_rr "r1 := x; r2 := y;" "r2 := y; r1 := x;"
            [ "r1 := x; r1 := y;" ];
          swap_case "R-WW" Rule.r_ww "x := r1; y := r2;" "y := r2; x := r1;"
            [ "x := r1; x := r2;" ];
          swap_case "R-WR" Rule.r_wr "x := r1; r2 := y;" "r2 := y; x := r1;"
            [ "x := r1; r1 := y;"; "x := r1; r2 := x;" ];
          swap_case "R-RW" Rule.r_rw "r1 := x; y := r2;" "y := r2; r1 := x;"
            [ "r1 := x; y := r1;"; "r1 := x; x := r2;" ];
          swap_case "R-WL" Rule.r_wl "x := r1; lock m;" "lock m; x := r1;" [];
          swap_case "R-RL" Rule.r_rl "r1 := x; lock m;" "lock m; r1 := x;" [];
          swap_case "R-UW" Rule.r_uw "unlock m; x := r1;" "x := r1; unlock m;"
            [];
          swap_case "R-UR" Rule.r_ur "unlock m; r1 := x;" "r1 := x; unlock m;"
            [];
          swap_case "R-XR" Rule.r_xr "print r1; r2 := x;" "r2 := x; print r1;"
            [ "print r1; r1 := x;" ];
          swap_case "R-XW" Rule.r_xw "print r1; x := r2;" "x := r2; print r1;"
            [];
          Alcotest.test_case "volatility side conditions" `Quick
            test_swap_volatility;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "I-IR" `Quick test_i_ir;
          Alcotest.test_case "move commutation" `Quick test_moves;
          Alcotest.test_case "by_name" `Quick test_by_name;
        ] );
    ]
