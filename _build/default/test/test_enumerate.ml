open Safeopt_trace
open Safeopt_exec
open Helpers

let check_b = Alcotest.(check bool)

(* SB as an explicit traceset over {0,1}. *)
let sb_ts =
  Traceset.of_list
    (List.concat_map
       (fun v ->
         [ [ st 0; w "x" 1; r "y" v; ext v ]; [ st 1; w "y" 1; r "x" v; ext v ] ])
       [ 0; 1 ])

let test_behaviours () =
  let bs = Enumerate.behaviours (Traceset_system.make sb_ts) in
  check_b "prefix closed" true (Behaviour.Set.is_prefix_closed bs);
  check_b "can 0,1" true (Behaviour.Set.mem [ 0; 1 ] bs);
  check_b "can 1,1" true (Behaviour.Set.mem [ 1; 1 ] bs);
  check_b "cannot 0,0 (SC)" false (Behaviour.Set.mem [ 0; 0 ] bs)

let test_executions () =
  let execs = Enumerate.maximal_executions (Traceset_system.make sb_ts) in
  check_b "nonempty" true (execs <> []);
  check_b "all SC" true
    (List.for_all Interleaving.is_sequentially_consistent execs);
  check_b "all are executions of the traceset" true
    (List.for_all (Interleaving.is_execution_of sb_ts) execs);
  (* every maximal execution runs all 8 actions *)
  check_b "maximal length" true
    (List.for_all (fun i -> Interleaving.length i = 8) execs);
  Alcotest.(check int) "count matches count_executions"
    (List.length execs)
    (Enumerate.count_executions (Traceset_system.make sb_ts))

let test_race_search () =
  check_b "sb racy" false (Enumerate.is_drf none (Traceset_system.make sb_ts));
  let locked =
    Traceset.of_list
      [
        [ st 0; lk "m"; w "x" 1; ul "m" ];
        [ st 1; lk "m"; r "x" 0; ul "m" ];
        [ st 1; lk "m"; r "x" 1; ul "m" ];
      ]
  in
  check_b "locked drf" true (Enumerate.is_drf none (Traceset_system.make locked))

let test_locks_block () =
  (* Two threads both want m; the engine must serialise them. *)
  let ts =
    Traceset.of_list
      [
        [ st 0; lk "m"; w "x" 1; ul "m" ];
        [ st 1; lk "m"; w "x" 2; ul "m" ];
      ]
  in
  let execs = Enumerate.maximal_executions (Traceset_system.make ts) in
  check_b "all respect mutex" true
    (List.for_all Interleaving.respects_mutex execs);
  (* Deadlock shape: each thread holds one lock and wants the other;
     maximal executions may be stuck before completion. *)
  let dl =
    Traceset.of_list
      [
        [ st 0; lk "m"; lk "n"; ul "n"; ul "m" ];
        [ st 1; lk "n"; lk "m"; ul "m"; ul "n" ];
      ]
  in
  let dl_execs = Enumerate.maximal_executions (Traceset_system.make dl) in
  check_b "some execution deadlocks" true
    (List.exists (fun i -> Interleaving.length i < 10) dl_execs);
  check_b "some execution completes" true
    (List.exists (fun i -> Interleaving.length i = 10) dl_execs)

let test_deadlock () =
  let dl =
    Traceset.of_list
      [
        [ st 0; lk "m"; lk "n"; ul "n"; ul "m" ];
        [ st 1; lk "n"; lk "m"; ul "m"; ul "n" ];
      ]
  in
  (match Enumerate.find_deadlock (Traceset_system.make dl) with
  | Some i ->
      check_b "witness is a prefix execution" true
        (Interleaving.is_sequentially_consistent i)
  | None -> Alcotest.fail "lock inversion must deadlock");
  (* consistent lock order: no deadlock *)
  let ordered =
    Traceset.of_list
      [
        [ st 0; lk "m"; lk "n"; ul "n"; ul "m" ];
        [ st 1; lk "m"; lk "n"; ul "n"; ul "m" ];
      ]
  in
  check_b "ordered locks deadlock-free" true
    (Enumerate.find_deadlock (Traceset_system.make ordered) = None)

let test_sampling () =
  let bs_full = Enumerate.behaviours (Traceset_system.make sb_ts) in
  let bs_sample =
    Enumerate.sample_behaviours ~seed:7 ~runs:200 (Traceset_system.make sb_ts)
  in
  check_b "sampled subset of exhaustive" true
    (Behaviour.Set.subset bs_sample bs_full);
  check_b "sampling finds something" true
    (Behaviour.Set.cardinal bs_sample > 1);
  (* determinism for a fixed seed *)
  check_b "deterministic" true
    (Behaviour.Set.equal bs_sample
       (Enumerate.sample_behaviours ~seed:7 ~runs:200
          (Traceset_system.make sb_ts)))

let test_budget () =
  Alcotest.check_raises "state budget enforced"
    (Enumerate.Too_many_states 3) (fun () ->
      ignore (Enumerate.count_states ~max_states:2 (Traceset_system.make sb_ts)))

let test_count_states () =
  let n = Enumerate.count_states (Traceset_system.make sb_ts) in
  check_b "some states" true (n > 10);
  (* memoisation: states are far fewer than execution steps *)
  let execs = Enumerate.count_executions (Traceset_system.make sb_ts) in
  check_b "fewer states than 8 * executions" true (n < 8 * execs)

let test_reads_see_most_recent () =
  (* A reader that would read a stale value is never scheduled. *)
  let ts =
    Traceset.of_list
      [ [ st 0; w "x" 1 ]; [ st 1; r "x" 0; ext 0 ]; [ st 1; r "x" 1; ext 1 ] ]
  in
  let bs = Enumerate.behaviours (Traceset_system.make ts) in
  check_b "can read 0 before write" true (Behaviour.Set.mem [ 0 ] bs);
  check_b "can read 1 after write" true (Behaviour.Set.mem [ 1 ] bs);
  let execs = Enumerate.maximal_executions (Traceset_system.make ts) in
  check_b "every execution SC" true
    (List.for_all Interleaving.is_sequentially_consistent execs)

let () =
  Alcotest.run "enumerate"
    [
      ( "enumerate",
        [
          Alcotest.test_case "behaviours" `Quick test_behaviours;
          Alcotest.test_case "maximal executions" `Quick test_executions;
          Alcotest.test_case "race search" `Quick test_race_search;
          Alcotest.test_case "locks" `Quick test_locks_block;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock;
          Alcotest.test_case "random sampling" `Quick test_sampling;
          Alcotest.test_case "state budget" `Quick test_budget;
          Alcotest.test_case "count_states" `Quick test_count_states;
          Alcotest.test_case "reads see most recent" `Quick
            test_reads_see_most_recent;
        ] );
    ]
