open Safeopt_trace
open Safeopt_core
open Helpers

let check_b = Alcotest.(check bool)
let wc = Wildcard.of_trace

(* The paper's section-4 worked example:
   [S(0); W[x=1]; R[y=*]; R[x=1]; X(1); L[m]; W[x=2]; W[x=1]; U[m]]. *)
let sec4 =
  [
    c (st 0);
    c (w "x" 1);
    wild "y";
    c (r "x" 1);
    c (ext 1);
    c (lk "m");
    c (w "x" 2);
    c (w "x" 1);
    c (ul "m");
  ]

let test_sec4_example () =
  (* The paper says "the indices 2, 3, and 6 are eliminable"; by the
     letter of Definition 1 the final release U[m] at index 8 is also a
     redundant release (no later synchronisation or external action),
     which the paper's enumeration omits — its example elimination
     keeps it, which "could be" allows. *)
  Alcotest.(check (list int)) "eliminable indices" [ 2; 3; 6; 8 ]
    (Eliminable.eliminable_indices none sec4);
  (match Eliminable.classify none sec4 2 with
  | Some Eliminable.Irrelevant_read -> ()
  | k -> Alcotest.failf "index 2: %a" Fmt.(option Eliminable.pp_kind) k);
  (match Eliminable.classify none sec4 3 with
  | Some (Eliminable.Redundant_read_after_write 1) -> ()
  | k -> Alcotest.failf "index 3: %a" Fmt.(option Eliminable.pp_kind) k);
  match Eliminable.classify none sec4 6 with
  | Some (Eliminable.Overwritten_write 7) -> ()
  | k -> Alcotest.failf "index 6: %a" Fmt.(option Eliminable.pp_kind) k

let test_rar () =
  let t = wc [ st 0; r "x" 1; w "y" 0; r "x" 1 ] in
  check_b "read after read" true (Eliminable.eliminable none t 3);
  (* mismatched value *)
  check_b "different value" false
    (Eliminable.eliminable none (wc [ st 0; r "x" 1; r "x" 2 ]) 2);
  (* intervening write to the same location *)
  check_b "intervening write" false
    (Eliminable.eliminable none (wc [ st 0; r "x" 1; w "x" 2; r "x" 1 ]) 3);
  (* a release-acquire pair in between *)
  check_b "release-acquire pair blocks" false
    (Eliminable.eliminable none
       (wc [ st 0; r "x" 1; ul "m"; lk "m"; r "x" 1 ])
       4);
  (* an acquire alone does NOT block (the [12] / Fig. 3 case) *)
  check_b "acquire alone does not block" true
    (Eliminable.eliminable none (wc [ st 0; r "x" 1; lk "m"; r "x" 1 ]) 3);
  (* a release alone does not block either *)
  check_b "release alone does not block" true
    (Eliminable.eliminable none
       (wc [ st 0; lk "m"; r "x" 1; ul "m"; r "x" 1 ])
       4);
  (* volatile reads are never redundant *)
  check_b "volatile read" false
    (Eliminable.eliminable vol_v (wc [ st 0; r "v" 1; r "v" 1 ]) 2)

let test_raw () =
  let t = wc [ st 0; w "x" 5; r "y" 0; r "x" 5 ] in
  check_b "read after write" true (Eliminable.eliminable none t 3);
  check_b "wrong value" false
    (Eliminable.eliminable none (wc [ st 0; w "x" 5; r "x" 6 ]) 2)

let test_war () =
  let t = wc [ st 0; r "x" 5; ext 0; w "x" 5 ] in
  check_b "write after read" true (Eliminable.eliminable none t 3);
  (* a second read of the same value re-licenses the write *)
  check_b "adjacent second read licenses" true
    (Eliminable.properly_eliminable none
       (wc [ st 0; r "x" 5; r "x" 5; w "x" 5 ])
       3);
  (* an intervening write blocks clause 4 (and clause 6 is excluded by
     proper mode) *)
  check_b "intervening write blocks" false
    (Eliminable.properly_eliminable none
       (wc [ st 0; r "x" 5; w "x" 7; w "x" 5 ])
       3)

let test_wbw () =
  check_b "overwritten write" true
    (Eliminable.eliminable none (wc [ st 0; w "x" 1; w "x" 2 ]) 1);
  check_b "intervening read blocks" false
    (Eliminable.properly_eliminable none
       (wc [ st 0; w "x" 1; r "x" 1; w "x" 2 ])
       1);
  check_b "release-acquire blocks" false
    (Eliminable.properly_eliminable none
       (wc [ st 0; w "x" 1; ul "m"; lk "m"; w "x" 2 ])
       1)

let test_last_actions () =
  (* redundant last write *)
  check_b "last write" true
    (Eliminable.eliminable none (wc [ st 0; w "x" 1; r "y" 0 ]) 1);
  check_b "last write blocked by later release" false
    (Eliminable.eliminable none (wc [ st 0; w "x" 1; ul "m" ]) 1);
  check_b "last write blocked by later same-location read" false
    (Eliminable.eliminable none (wc [ st 0; w "x" 1; r "x" 1 ]) 1);
  (* redundant release *)
  check_b "redundant release" true
    (Eliminable.eliminable none (wc [ st 0; lk "m"; ul "m"; r "x" 0 ]) 2);
  check_b "release blocked by later sync" false
    (Eliminable.eliminable none (wc [ st 0; lk "m"; ul "m"; lk "m" ]) 2);
  check_b "release blocked by later external" false
    (Eliminable.eliminable none (wc [ st 0; lk "m"; ul "m"; ext 0 ]) 2);
  (* redundant external *)
  check_b "redundant external" true
    (Eliminable.eliminable none (wc [ st 0; ext 1; r "x" 0 ]) 1);
  check_b "external blocked by later external" false
    (Eliminable.eliminable none (wc [ st 0; ext 1; ext 2 ]) 1);
  (* volatile write as redundant release *)
  check_b "volatile write release" true
    (Eliminable.eliminable vol_v (wc [ st 0; w "v" 1; r "x" 0 ]) 1)

let test_proper_subset () =
  (* properly eliminable excludes the last-action clauses *)
  check_b "last write not proper" false
    (Eliminable.properly_eliminable none (wc [ st 0; w "x" 1 ]) 1);
  check_b "release not proper" false
    (Eliminable.properly_eliminable none (wc [ st 0; lk "m"; ul "m" ]) 2);
  check_b "external not proper" false
    (Eliminable.properly_eliminable none (wc [ st 0; ext 1 ]) 1);
  check_b "RaR is proper" true
    (Eliminable.properly_eliminable none (wc [ st 0; r "x" 1; r "x" 1 ]) 2);
  (* proper mode excludes the final release at index 8 *)
  Alcotest.(check (list int)) "proper subset of eliminable" [ 2; 3; 6 ]
    (Eliminable.properly_eliminable_indices none sec4);
  check_b "proper implies eliminable" true
    (List.for_all
       (fun i -> Eliminable.eliminable none sec4 i)
       (Eliminable.properly_eliminable_indices none sec4))

let test_wildcards () =
  check_b "irrelevant read" true
    (Eliminable.eliminable none [ c (st 0); wild "x" ] 1);
  check_b "volatile wildcard not irrelevant" false
    (Eliminable.eliminable vol_v [ c (st 0); wild "v" ] 1);
  (* start actions are never eliminable *)
  check_b "start never eliminable" false
    (Eliminable.eliminable none (wc [ st 0; w "x" 1; w "x" 2 ]) 0)

let () =
  Alcotest.run "eliminable"
    [
      ( "definition 1",
        [
          Alcotest.test_case "section-4 worked example" `Quick
            test_sec4_example;
          Alcotest.test_case "redundant read after read" `Quick test_rar;
          Alcotest.test_case "redundant read after write" `Quick test_raw;
          Alcotest.test_case "redundant write after read" `Quick test_war;
          Alcotest.test_case "overwritten write" `Quick test_wbw;
          Alcotest.test_case "last-action clauses" `Quick test_last_actions;
          Alcotest.test_case "properly eliminable" `Quick test_proper_subset;
          Alcotest.test_case "wildcards and starts" `Quick test_wildcards;
        ] );
    ]
