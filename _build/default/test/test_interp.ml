open Safeopt_exec
open Safeopt_lang
open Helpers

let check_b = Alcotest.(check bool)

let test_single_thread () =
  let p = parse "thread { x := 3; r1 := x; print r1; }" in
  Alcotest.check behaviour_set "deterministic"
    (behaviours_of_list [ []; [ 3 ] ])
    (Interp.behaviours p);
  check_b "drf" true (Interp.is_drf p)

let test_two_threads () =
  let p = parse "thread { x := 1; } thread { r1 := x; print r1; }" in
  Alcotest.check behaviour_set "both orders"
    (behaviours_of_list [ []; [ 0 ]; [ 1 ] ])
    (Interp.behaviours p);
  check_b "racy" false (Interp.is_drf p);
  check_b "can output 1" true (Interp.can_output p 1);
  check_b "cannot output 2" false (Interp.can_output p 2)

let test_race_witness () =
  let p = parse "thread { x := 1; } thread { r1 := x; }" in
  match Interp.find_race p with
  | Some i ->
      let n = Interleaving.length i in
      check_b "ends in conflict" true
        (Safeopt_exec.Race.adjacent_race none i = Some (n - 2, n - 1))
  | None -> Alcotest.fail "expected racy"

let test_loop_fuel () =
  (* spin on a flag that the other thread sets: terminates under SC
     enumeration thanks to fuel; behaviours bounded but sound *)
  let p =
    parse
      "volatile flag;\n\
       thread { data := 1; flag := 1; }\n\
       thread { r1 := flag; while (r1 != 1) r1 := flag; r2 := data; print r2; }"
  in
  let bs = Interp.behaviours ~fuel:12 p in
  check_b "prints 1 when loop exits" true (Behaviour.Set.mem [ 1 ] bs);
  check_b "never prints 0" false (Behaviour.Set.mem [ 0 ] bs);
  check_b "drf (volatile spin)" true (Interp.is_drf ~fuel:8 p)

let test_locks_interleaving () =
  let p =
    parse
      "thread { lock m; x := 1; x := 2; unlock m; }\n\
       thread { lock m; r1 := x; r2 := x; unlock m; if (r1 == r2) print r1; }"
  in
  (* reader sees 0,0 or 2,2 — never a torn 1 *)
  Alcotest.check behaviour_set "atomic sections"
    (behaviours_of_list [ []; [ 0 ]; [ 2 ] ])
    (Interp.behaviours p);
  check_b "drf" true (Interp.is_drf p)

let test_max_executions () =
  let p = parse "thread { x := 1; } thread { y := 1; }" in
  let execs = Interp.maximal_executions p in
  (* 2 starts then 2 writes interleaved: 4!/(2!2!) = 6 *)
  Alcotest.(check int) "interleaving count" 6 (List.length execs);
  check_b "positive state count" true (Interp.count_states p > 0)

let test_deadlock_and_sampling () =
  let dl =
    parse
      "thread { lock m; lock n; unlock n; unlock m; }\n\
       thread { lock n; lock m; unlock m; unlock n; }"
  in
  check_b "deadlock found" true (Interp.find_deadlock dl <> None);
  let ok = parse "thread { lock m; unlock m; }\nthread { lock m; unlock m; }" in
  check_b "no deadlock" true (Interp.find_deadlock ok = None);
  let p = parse "thread { x := 1; r1 := y; print r1; }\nthread { y := 1; r2 := x; print r2; }" in
  check_b "samples within exhaustive" true
    (Behaviour.Set.subset
       (Interp.sample_behaviours ~seed:1 ~runs:100 p)
       (Interp.behaviours p))

let test_volatile_not_race () =
  let p = parse "volatile x;\nthread { x := 1; }\nthread { r1 := x; }" in
  check_b "volatile accesses do not race" true (Interp.is_drf p)

let () =
  Alcotest.run "interp"
    [
      ( "interp",
        [
          Alcotest.test_case "single thread" `Quick test_single_thread;
          Alcotest.test_case "two threads" `Quick test_two_threads;
          Alcotest.test_case "race witness" `Quick test_race_witness;
          Alcotest.test_case "loops under fuel" `Quick test_loop_fuel;
          Alcotest.test_case "critical sections" `Quick
            test_locks_interleaving;
          Alcotest.test_case "executions" `Quick test_max_executions;
          Alcotest.test_case "volatile accesses" `Quick test_volatile_not_race;
          Alcotest.test_case "deadlock and sampling" `Quick
            test_deadlock_and_sampling;
        ] );
    ]
