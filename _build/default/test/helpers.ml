(* Shared test vocabulary: action shorthands, testables, and common
   fixtures. *)

open Safeopt_trace

(* Action shorthands in paper notation. *)
let r l v = Action.Read (l, v)
let w l v = Action.Write (l, v)
let lk m = Action.Lock m
let ul m = Action.Unlock m
let ext v = Action.External v
let st t = Action.Start t

(* Wildcard shorthands. *)
let c a = Wildcard.Concrete a
let wild l = Wildcard.Wild_read l

let none = Location.Volatile.none
let vol_v = Location.Volatile.of_list [ "v" ]

(* Alcotest testables. *)
let action = Alcotest.testable Action.pp Action.equal
let trace = Alcotest.testable Trace.pp Trace.equal
let wildcard = Alcotest.testable Wildcard.pp Wildcard.equal

let traceset =
  Alcotest.testable Traceset.pp Traceset.equal

let behaviour =
  Alcotest.testable Safeopt_exec.Behaviour.pp Safeopt_exec.Behaviour.equal

let behaviour_set =
  Alcotest.testable Safeopt_exec.Behaviour.Set.pp
    Safeopt_exec.Behaviour.Set.equal

let interleaving =
  Alcotest.testable Safeopt_exec.Interleaving.pp
    Safeopt_exec.Interleaving.equal

let program =
  Alcotest.testable Safeopt_lang.Pp.program Safeopt_lang.Ast.equal_program

(* Interleaving builder: [(tid, action); ...]. *)
let il pairs =
  List.map (fun (t, a) -> Safeopt_exec.Interleaving.pair t a) pairs

let parse = Safeopt_lang.Parser.parse_program

let behaviours_of_list l =
  List.fold_left
    (fun acc b -> Safeopt_exec.Behaviour.Set.add b acc)
    Safeopt_exec.Behaviour.Set.empty l

(* The Fig. 2 tracesets from section 4, explicit over {0,1}. *)
let fig2_original_traceset =
  Traceset.of_list
    (List.concat_map
       (fun v ->
         [ [ st 0; r "x" v; w "y" v ]; [ st 1; r "y" v; w "x" 1; ext v ] ])
       [ 0; 1 ])

let fig2_transformed_traceset =
  Traceset.of_list
    (List.concat_map
       (fun v ->
         [ [ st 0; r "x" v; w "y" v ]; [ st 1; w "x" 1; r "y" v; ext v ] ])
       [ 0; 1 ])

(* Substring search for output checks. *)
let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0
