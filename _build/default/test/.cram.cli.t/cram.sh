  $ drfopt matrix
  $ drfopt eliminable "S(0); W[x=1]; R[y=*]; R[x=1]; X(1); L[m]; W[x=2]; W[x=1]; U[m]"
  $ cat > mp.lit <<'PROG'
  > volatile flag;
  > thread { data := 1; flag := 1; }
  > thread { r1 := flag; if (r1 == 1) { r2 := data; print r2; } }
  > PROG
  $ drfopt run mp.lit | tail -3
  $ drfopt drf mp.lit
  $ cat > relay.lit <<'PROG'
  > thread { r1 := x; y := r1; }
  > PROG
  $ drfopt denote relay.lit
  $ cat > rar.lit <<'PROG'
  > thread { r1 := x; r2 := x; print r2; }
  > PROG
  $ drfopt transform rar.lit --rule E-RAR
  $ drfopt litmus sb
  $ cat > dl.lit <<'PROG'
  > thread { lock m; lock n; unlock n; unlock m; }
  > thread { lock n; lock m; unlock m; unlock n; }
  > PROG
  $ drfopt deadlock dl.lit
  $ cat > sb.lit <<'PROG'
  > thread { x := 1; r1 := y; print r1; }
  > thread { y := 1; r2 := x; print r2; }
  > PROG
  $ drfopt robust sb.lit | head -2
