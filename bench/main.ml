(* The benchmark harness regenerates every figure, table and in-text
   example of the paper (the reproduction report, experiment ids E1-E12
   of DESIGN.md), then times each experiment's workload with Bechamel
   (performance series P1).

   Run with: dune exec bench/main.exe *)

open Safeopt_trace
open Safeopt_exec
open Safeopt_lang
open Safeopt_litmus

let vol0 = Location.Volatile.none

let hr fmt =
  Fmt.pr "@.=== %s ===@." (Fmt.str fmt)

let claim name expected actual =
  Fmt.pr "  %-58s %s (expected %b, got %b)@." name
    (if expected = actual then "OK" else "MISMATCH")
    expected actual

let behaviours_str p =
  String.concat " | " (Interp.behaviour_strings (Interp.behaviours p))

(* ------------------------------------------------------------------ *)
(* E1: the section-1 motivating example                                *)
(* ------------------------------------------------------------------ *)

let e1 () =
  hr "E1: section 1 intro example (constant propagation)";
  let orig = Litmus.program Corpus.intro_racy in
  let opt = Litmus.program Corpus.intro_racy_opt in
  let volp = Litmus.program Corpus.intro_volatile in
  Fmt.pr "  original behaviours:    %s@." (behaviours_str orig);
  Fmt.pr "  optimised behaviours:   %s@." (behaviours_str opt);
  Fmt.pr "  volatile behaviours:    %s@." (behaviours_str volp);
  claim "original cannot print 1" true (not (Interp.can_output orig 1));
  claim "optimised can print 1" true (Interp.can_output opt 1);
  claim "original is racy (flags)" true (not (Interp.is_drf orig));
  claim "volatile variant is DRF" true (Interp.is_drf volp);
  claim "volatile variant still cannot print 1" true
    (not (Interp.can_output volp 1));
  (* the racy rewrite is a legitimate semantic elimination, the
     volatile one is not *)
  let universe = Denote.joint_universe [ orig; opt ] in
  let elim p p' =
    Safeopt_core.Elimination.is_elimination p.Ast.volatile
      ~original:(Denote.traceset ~universe ~max_len:12 p)
      ~universe
      ~transformed:(Denote.traceset ~universe ~max_len:12 p')
  in
  claim "racy rewrite is a semantic elimination" true (elim orig opt);
  let vol_opt =
    { opt with Ast.volatile = volp.Ast.volatile }
  in
  claim "same rewrite on the volatile program is NOT an elimination" true
    (not (elim volp vol_opt))

(* ------------------------------------------------------------------ *)
(* E2: Figure 1                                                        *)
(* ------------------------------------------------------------------ *)

let e2 () =
  hr "E2: Figure 1 (write and read elimination)";
  let orig = Litmus.program Corpus.fig1_original in
  let trans = Litmus.program Corpus.fig1_transformed in
  Fmt.pr "  original behaviours:    %s@." (behaviours_str orig);
  Fmt.pr "  transformed behaviours: %s@." (behaviours_str trans);
  claim "original cannot output 1 then 0" true
    (not (Behaviour.Set.mem [ 1; 0 ] (Interp.behaviours orig)));
  claim "transformed can output 1 then 0" true
    (Behaviour.Set.mem [ 1; 0 ] (Interp.behaviours trans));
  claim "both racy (no DRF guarantee violation)" true
    ((not (Interp.is_drf orig)) && not (Interp.is_drf trans));
  let universe = Denote.joint_universe [ orig; trans ] in
  claim "transformed traceset is an elimination of the original" true
    (Safeopt_core.Elimination.is_elimination vol0
       ~original:(Denote.traceset ~universe ~max_len:10 orig)
       ~universe
       ~transformed:(Denote.traceset ~universe ~max_len:10 trans))

(* ------------------------------------------------------------------ *)
(* E3: Figure 2                                                        *)
(* ------------------------------------------------------------------ *)

let fig2_elim_closure_mem orig_ts universe =
  let memo = Hashtbl.create 97 in
  fun t ->
    let k = Trace.to_string t in
    match Hashtbl.find_opt memo k with
    | Some b -> b
    | None ->
        let b =
          Safeopt_core.Elimination.is_member vol0 ~original:orig_ts ~universe t
        in
        Hashtbl.add memo k b;
        b

let e3 () =
  hr "E3: Figure 2 (read/write reordering)";
  let orig = Litmus.program Corpus.fig2_original in
  let trans = Litmus.program Corpus.fig2_transformed in
  Fmt.pr "  original behaviours:    %s@." (behaviours_str orig);
  Fmt.pr "  transformed behaviours: %s@." (behaviours_str trans);
  claim "original cannot print 1" true (not (Interp.can_output orig 1));
  claim "transformed can print 1" true (Interp.can_output trans 1);
  let universe = Denote.joint_universe [ orig; trans ] in
  let ts_o = Denote.traceset ~universe ~max_len:8 orig in
  let ts_t = Denote.traceset ~universe ~max_len:8 trans in
  claim "NOT a reordering of the original traceset alone" true
    (not (Safeopt_core.Reorder.is_reordering vol0 ~original:ts_o ~transformed:ts_t));
  claim "a reordering of an elimination of the original (sec. 4)" true
    (Safeopt_core.Reorder.is_reordering_of_oracle vol0
       ~mem:(fig2_elim_closure_mem ts_o universe)
       ~transformed:ts_t)

(* ------------------------------------------------------------------ *)
(* E4: Figure 3                                                        *)
(* ------------------------------------------------------------------ *)

let e4 () =
  hr "E4: Figure 3 (irrelevant read introduction breaks the guarantee)";
  let a = Litmus.program Corpus.fig3_a in
  let b = Litmus.program Corpus.fig3_b in
  let c = Litmus.program Corpus.fig3_c in
  Fmt.pr "  (a) %s@.  (b) %s@.  (c) %s@." (behaviours_str a)
    (behaviours_str b) (behaviours_str c);
  let can00 p = Behaviour.Set.mem [ 0; 0 ] (Interp.behaviours p) in
  claim "(a) DRF, cannot print two zeros" true
    (Interp.is_drf a && not (can00 a));
  claim "(b) racy, still cannot print two zeros" true
    ((not (Interp.is_drf b)) && not (can00 b));
  claim "(c) prints two zeros" true (can00 c);
  let b' = Safeopt_opt.Passes.introduce_irrelevant_reads a in
  claim "(a)->(b): SC behaviours preserved, DRF destroyed" true
    (Behaviour.Set.equal (Interp.behaviours a) (Interp.behaviours b')
    && not (Interp.is_drf b'));
  let c' = Safeopt_opt.Passes.eliminate_reads_across_acquires b in
  claim "(b)->(c): cross-acquire elimination reproduces (c)" true
    (Behaviour.Set.equal (Interp.behaviours c) (Interp.behaviours c'))

(* ------------------------------------------------------------------ *)
(* E5: the reorderability matrix                                       *)
(* ------------------------------------------------------------------ *)

let e5 () =
  hr "E5: section 4 reorderability matrix";
  Fmt.pr "%a" Safeopt_core.Reorder.pp_matrix ();
  (* the paper's check-marks, row-major, distinct locations:
     W: y y y x y / R: y y y x y / Acq: all x / Rel: y y x x x /
     Ext: y y x x x *)
  let expected =
    [
      [ true; true; true; false; true ];
      [ true; true; true; false; true ];
      [ false; false; false; false; false ];
      [ true; true; false; false; false ];
      [ true; true; false; false; false ];
    ]
  in
  let m = Safeopt_core.Reorder.matrix ~same_location:false in
  claim "matrix matches the paper's table" true
    (List.for_all2
       (fun row i -> List.for_all2 (fun e j -> m.(i).(j) = e) row (List.init 5 Fun.id) |> fun l -> l)
       expected (List.init 5 Fun.id))

(* ------------------------------------------------------------------ *)
(* E6: Figure 4 (de-permutations)                                      *)
(* ------------------------------------------------------------------ *)

(* Fig. 2's tracesets (section 4), explicit over {0,1}. *)
let fig2_original_ts =
  Traceset.of_list
    (List.concat_map
       (fun v ->
         Action.
           [
             [ Start 0; Read ("x", v); Write ("y", v) ];
             [ Start 1; Read ("y", v); Write ("x", 1); External v ];
           ])
       [ 0; 1 ])

let fig2_transformed_ts =
  Traceset.of_list
    (List.concat_map
       (fun v ->
         Action.
           [
             [ Start 0; Read ("x", v); Write ("y", v) ];
             [ Start 1; Write ("x", 1); Read ("y", v); External v ];
           ])
       [ 0; 1 ])

let fig4_t' =
  Action.[ Start 1; Write ("x", 1); Read ("y", 1); External 1 ]

let fig4_f : Safeopt_core.Reorder.f = [| 0; 2; 1; 3 |]

let fig4_t_bar =
  Traceset.add Action.[ Start 1; Write ("x", 1) ] fig2_original_ts

let e6 () =
  hr "E6: Figure 4 (de-permutation of prefixes)";
  List.iter
    (fun n ->
      let t = Safeopt_core.Reorder.depermute_prefix fig4_f fig4_t' n in
      Fmt.pr "  n=%d: %a  in T-bar: %b@." n Trace.pp t
        (Traceset.mem t fig4_t_bar))
    [ 4; 3; 2; 1; 0 ];
  claim "f de-permutes t' into T-bar" true
    (Safeopt_core.Reorder.de_permutes vol0 fig4_f fig4_t' ~mem:(fun t ->
         Traceset.mem t fig4_t_bar))

(* ------------------------------------------------------------------ *)
(* E7: Figure 5 (unelimination)                                        *)
(* ------------------------------------------------------------------ *)

let fig5_original_ts =
  Traceset.of_list
    (List.concat_map
       (fun v ->
         Action.
           [
             [ Start 0; Write ("v", 1); Write ("y", 1) ];
             [ Start 1; Read ("x", v); Read ("v", 0); External 0 ];
             [ Start 1; Read ("x", v); Read ("v", 1); External 1 ];
           ])
       [ 0; 1 ])

let fig5_i' =
  List.map
    (fun (t, a) -> Interleaving.pair t a)
    Action.
      [
        (0, Start 0);
        (1, Start 1);
        (0, Write ("y", 1));
        (1, Read ("v", 0));
        (1, External 0);
      ]

let fig5_vol = Location.Volatile.of_list [ "v" ]

let e7 () =
  hr "E7: Figure 5 (unelimination construction)";
  match
    Safeopt_core.Unelimination.construct_from_traceset fig5_vol
      ~original:fig5_original_ts ~universe:[ 0; 1 ] fig5_i'
  with
  | None -> Fmt.pr "  FAILED to construct@."
  | Some { Safeopt_core.Unelimination.wild; matching } ->
      Fmt.pr "  I' = %a@." Interleaving.pp fig5_i';
      Fmt.pr "  I  = %a@." Interleaving.Wild.pp wild;
      claim "f maps index 2 to position 6 (paper's example)" true
        (matching.(2) = 6);
      claim "all four unelimination clauses hold" true
        (Safeopt_core.Unelimination.is_unelimination_function fig5_vol
           ~transformed:fig5_i' ~wild ~f:matching);
      let inst = Interleaving.Wild.instance wild in
      claim "the instance is an execution of T with the same behaviour" true
        (Interleaving.is_execution_of fig5_original_ts inst
        && Behaviour.equal
             (Interleaving.behaviour inst)
             (Interleaving.behaviour fig5_i'))

(* ------------------------------------------------------------------ *)
(* E8: out-of-thin-air                                                 *)
(* ------------------------------------------------------------------ *)

let e8 () =
  hr "E8: section 5 out-of-thin-air program";
  let p = Litmus.program Corpus.oota in
  let universe = [ 0; 42 ] in
  let ts = Denote.traceset ~universe ~max_len:8 p in
  claim "no trace is an origin for 42" true
    (not (Safeopt_core.Origin.traceset_has_origin 42 ts));
  claim "no bounded execution mentions 42 (Lemma 3)" true
    (Safeopt_core.Origin.check_lemma3 42 ts ~max_steps:2_000_000 = Ok ());
  let reachable =
    Safeopt_opt.Transform.reachable ~max_programs:500
      (Safeopt_opt.Rule.i_ir :: Safeopt_opt.Rule.all)
      p
  in
  Fmt.pr "  programs reachable via the rules: %d@." (List.length reachable);
  claim "none can output 42 (Theorem 5)" true
    (List.for_all (fun q -> not (Interp.can_output q 42)) reachable)

(* ------------------------------------------------------------------ *)
(* E9: section 4 elimination example                                   *)
(* ------------------------------------------------------------------ *)

let e9_orig = Litmus.program Corpus.sec4_elim_original
let e9_trans = Litmus.program Corpus.sec4_elim_transformed

let e9_check () =
  let universe = Denote.joint_universe [ e9_orig; e9_trans ] in
  Safeopt_core.Elimination.is_elimination vol0
    ~original:(Denote.traceset ~universe ~max_len:12 e9_orig)
    ~universe
    ~transformed:(Denote.traceset ~universe ~max_len:12 e9_trans)

let e9 () =
  hr "E9: section 4 traceset elimination example";
  claim "x:=1;print 1;lock;x:=1;unlock eliminates the long program" true
    (e9_check ())

(* ------------------------------------------------------------------ *)
(* E10/E11: guarantee sweeps over the corpus                           *)
(* ------------------------------------------------------------------ *)

let e10_sweep () =
  List.for_all
    (fun t ->
      let p = Litmus.program t in
      List.for_all
        (fun s ->
          Safeopt_opt.Validate.behaviours_ok
            (Safeopt_opt.Validate.validate ~original:p
               ~transformed:s.Safeopt_opt.Transform.after ()))
        (Safeopt_opt.Transform.program_rewrites Safeopt_opt.Rule.all p))
    Corpus.all

let e10 () =
  hr "E10: Theorems 1-4 sweep (all corpus programs x all rules)";
  let total =
    List.fold_left
      (fun acc t ->
        acc
        + List.length
            (Safeopt_opt.Transform.program_rewrites Safeopt_opt.Rule.all
               (Litmus.program t)))
      0 Corpus.all
  in
  Fmt.pr "  rule applications checked: %d@." total;
  claim "every safe-rule application preserves the DRF guarantee" true
    (e10_sweep ())

let e11 () =
  hr "E11: Theorem 5 sweep (no rule chain manufactures a fresh constant)";
  let fresh_value = 23 in
  let ok =
    List.for_all
      (fun t ->
        let p = Litmus.program t in
        if List.mem fresh_value (Ast.all_constants_program p) then true
        else
          Safeopt_opt.Transform.reachable ~max_programs:60
            Safeopt_opt.Rule.all p
          |> List.for_all (fun q -> not (Interp.can_output q fresh_value)))
      Corpus.all
  in
  claim "23 never appears out of thin air across the corpus" true ok

(* ------------------------------------------------------------------ *)
(* E12: TSO                                                            *)
(* ------------------------------------------------------------------ *)

let e12 () =
  hr "E12: section 8 — TSO explained by the transformations";
  Fmt.pr "  %-18s %-24s %-10s %s@." "test" "weak behaviours" "explained"
    "drf";
  List.iter
    (fun t ->
      let p = Litmus.program t in
      let weak = Safeopt_tso.Machine.weak_behaviours p in
      let _, _, expl = Safeopt_tso.Machine.explained_by_transformations p in
      Fmt.pr "  %-18s %-24s %-10b %b@." t.Litmus.name
        (Fmt.str "%a" Behaviour.Set.pp weak)
        expl (Interp.is_drf p))
    [
      Corpus.sb;
      Corpus.lb;
      Corpus.mp;
      Corpus.mp_volatile;
      Corpus.mp_locked;
      Corpus.corr;
      Corpus.fig3_a;
      Corpus.dekker_volatile;
    ];
  claim "SB exhibits exactly the 0,0 weakness" true
    (Behaviour.Set.equal
       (Safeopt_tso.Machine.weak_behaviours (Litmus.program Corpus.sb))
       (Behaviour.Set.singleton [ 0; 0 ]))

(* ------------------------------------------------------------------ *)
(* E13: PSO (other memory models, section 8's outlook)                 *)
(* ------------------------------------------------------------------ *)

let e13 () =
  hr "E13: PSO — per-location store buffers (extension)";
  Fmt.pr "  %-14s %-16s %-18s %s@." "test" "pso-weak" "beyond-tso" "explained";
  List.iter
    (fun t ->
      let p = Litmus.program t in
      let weak = Safeopt_tso.Pso.weak_behaviours p in
      let beyond = Safeopt_tso.Pso.weak_beyond_tso p in
      let _, _, expl = Safeopt_tso.Pso.explained_by_transformations p in
      Fmt.pr "  %-14s %-16s %-18s %b@." t.Litmus.name
        (Fmt.str "%a" Behaviour.Set.pp weak)
        (Fmt.str "%a" Behaviour.Set.pp beyond)
        expl)
    [ Corpus.sb; Corpus.mp; Corpus.lb; Corpus.corr; Corpus.mp_volatile ];
  claim "PSO weakens MP (write-write reordering), beyond TSO" true
    (Behaviour.Set.mem [ 0 ]
       (Safeopt_tso.Pso.weak_beyond_tso (Litmus.program Corpus.mp)));
  claim "MP's PSO weakness is explained by R-WW (+R-WR, E-RAW)" true
    (let _, _, e =
       Safeopt_tso.Pso.explained_by_transformations (Litmus.program Corpus.mp)
     in
     e)

(* ------------------------------------------------------------------ *)
(* E14: robustness enforcement                                         *)
(* ------------------------------------------------------------------ *)

let e14 () =
  hr "E14: fence inference (DRF enforcement makes programs SC-on-TSO)";
  Fmt.pr "  %-14s %-20s %s@." "test" "promoted" "robust after";
  List.iter
    (fun t ->
      let p = Litmus.program t in
      let p', promoted = Safeopt_tso.Robustness.enforce p in
      Fmt.pr "  %-14s %-20s %b@." t.Litmus.name
        (if promoted = [] then "(already DRF)"
         else String.concat ", " promoted)
        (Safeopt_tso.Robustness.is_robust p'))
    [ Corpus.sb; Corpus.mp; Corpus.lb; Corpus.mp_locked ];
  claim "every enforced corpus program is TSO-robust" true
    (List.for_all
       (fun t ->
         let p', _ = Safeopt_tso.Robustness.enforce (Litmus.program t) in
         Safeopt_tso.Robustness.is_robust p')
       Corpus.all)

(* ------------------------------------------------------------------ *)
(* P1: scaling data                                                    *)
(* ------------------------------------------------------------------ *)

let writer_reader_program n_threads =
  (* n threads, each writes its own location then reads its neighbour's *)
  {
    Ast.threads =
      List.init n_threads (fun i ->
          let mine = Printf.sprintf "x%d" i in
          let next = Printf.sprintf "x%d" ((i + 1) mod n_threads) in
          [
            Ast.Move ("r1", Ast.Nat 1);
            Ast.Store (mine, "r1");
            Ast.Load ("r2", next);
            Ast.Print "r2";
          ]);
    volatile = Location.Volatile.none;
  }

let p1 () =
  hr "P1: scaling of exhaustive enumeration";
  Fmt.pr "  %-8s %-12s %-14s %-12s@." "threads" "states" "behaviours" "drf";
  List.iter
    (fun n ->
      let p = writer_reader_program n in
      let states = Interp.count_states p in
      let bs = Behaviour.Set.cardinal (Interp.behaviours p) in
      Fmt.pr "  %-8d %-12d %-14d %-12b@." n states bs (Interp.is_drf p))
    [ 1; 2; 3; 4 ]

(* n threads with [k] private actions around one shared store. *)
let private_work_program n k =
  {
    Ast.threads =
      List.init n (fun i ->
          let priv j = Printf.sprintf "p%d_%d" i j in
          List.init k (fun j -> Ast.Store (priv j, "r1"))
          @ [ Ast.Store ("shared", "r1") ]
          @ List.init k (fun j -> Ast.Load ("r2", priv j)));
    volatile = Location.Volatile.none;
  }

let p2 () =
  hr "P2: partial-order reduction ablation";
  Fmt.pr "  %-20s %-14s %-12s %-10s@." "program" "states (full)" "with POR"
    "reduction";
  List.iter
    (fun (n, k) ->
      let p = private_work_program n k in
      let full = Interp.count_states p in
      let por = Interp.count_states ~por:true p in
      Fmt.pr "  %dt x %d private     %-14d %-12d %.1fx@." n k full por
        (float_of_int full /. float_of_int (max 1 por)))
    [ (2, 2); (2, 4); (3, 2); (3, 3) ];
  claim "POR preserves behaviours on the ablation programs" true
    (List.for_all
       (fun (n, k) ->
         let p = private_work_program n k in
         Behaviour.Set.equal (Interp.behaviours p)
           (Interp.behaviours ~por:true p))
       [ (2, 2); (2, 4); (3, 2); (3, 3) ])

(* ------------------------------------------------------------------ *)
(* P3: exploration engine benchmark -> BENCH_explore.json              *)
(* ------------------------------------------------------------------ *)

(* Reference numbers for the same workload (reps = 20 over the full
   litmus corpus), measured on the hash-table engine the packed-arena
   visited set replaced, at the commit immediately preceding it.  The
   original string-keyed anchor (count_states 0.4204s / 21880 states)
   predates the RMW litmus programs and measured a corpus a fifth this
   size, so it was re-based here on the grown corpus.  Kept fixed so
   BENCH_explore.json tracks the trajectory against a stable anchor;
   the claim below is a regression gate against it. *)
let baseline_pre_arena =
  [
    ("count_states", (1.0528, 102520));
    ("count_states_por", (0.9260, 92240));
    ("behaviours", (1.1420, 2240));
    ("behaviours_por", (1.0224, 2240));
  ]

(* Wall-clock timing on the monotonic clock (Clock): immune to system
   time adjustments, so benchmark walls are never negative or skewed. *)
let time f =
  let t0 = Clock.now () in
  let r = f () in
  (r, Clock.elapsed t0)

(* Benchmark JSON must never carry NaN / infinity (division by a zero
   wall): refuse to emit the file instead of publishing garbage. *)
let rate_or_die ~what num den =
  let r = num /. den in
  if den <= 0. || not (Float.is_finite r) then begin
    Fmt.epr
      "bench: refusing to emit %s: non-finite rate (%f / %f); the workload \
       completed too fast to time@."
      what num den;
    exit 1
  end;
  r

(* Per-phase wall-time breakdowns for the BENCH_* files: the benchmark
   runs under a Memory tracer sink (entry-point spans only, a few
   events per exploration — negligible next to the workloads), and the
   stopped event buffer folds into a {"phase": {count, wall_s}} object
   via the same aggregation [drfopt report] uses. *)
module Obs = Safeopt_obs

let phases_json events =
  let t = Obs.Report.aggregate events in
  let rows =
    List.map
      (fun (name, count, wall) ->
        Printf.sprintf "    %S: {\"count\": %d, \"wall_s\": %.6f}" name count
          wall)
      (Obs.Report.phase_walls t)
  in
  match rows with
  | [] -> "{}"
  | _ -> "{\n" ^ String.concat ",\n" rows ^ "\n  }"

(* [quick] runs a quarter of the reps — the CI smoke mode behind
   `drfopt bench diff`.  The fixed pre-arena anchor walls are scaled by
   reps/20 so the speedup and the regression-gate claim stay
   comparable; units_per_sec is reps-independent either way, which is
   what `bench diff` compares a quick run against the committed full
   run on. *)
let explore_bench ?(quick = false) () =
  if quick then
    hr "P3: exploration engine (quick smoke mode) -> BENCH_explore.json"
  else hr "P3: exploration engine on the litmus corpus -> BENCH_explore.json";
  Obs.Tracer.start Obs.Tracer.Memory;
  let programs = List.map Litmus.program Corpus.all in
  let reps = if quick then 5 else 20 in
  let scale_anchor w = w *. float_of_int reps /. 20. in
  let count_run por () =
    let acc = ref 0 in
    for _ = 1 to reps do
      List.iter (fun p -> acc := !acc + Interp.count_states ~por p) programs
    done;
    !acc
  in
  let beh_run por () =
    let acc = ref 0 in
    for _ = 1 to reps do
      List.iter
        (fun p ->
          acc := !acc + Behaviour.Set.cardinal (Interp.behaviours ~por p))
        programs
    done;
    !acc
  in
  let experiments =
    [
      ("count_states", time (count_run false));
      ("count_states_por", time (count_run true));
      ("behaviours", time (beh_run false));
      ("behaviours_por", time (beh_run true));
    ]
  in
  (* POR soundness over the whole corpus (the acceptance criterion),
     with one stats sink accumulating across every exploration. *)
  let stats = Explorer.create_stats () in
  let identical =
    List.for_all
      (fun p ->
        Behaviour.Set.equal
          (Interp.behaviours ~stats p)
          (Interp.behaviours ~por:true ~stats p))
      programs
  in
  Fmt.pr "  %-18s %-10s %-12s %-14s %s@." "experiment" "total" "wall (s)"
    "units/s" "speedup";
  let rows =
    List.map
      (fun (name, (total, wall)) ->
        let base_wall, _ = List.assoc name baseline_pre_arena in
        let base_wall = scale_anchor base_wall in
        let speedup =
          rate_or_die ~what:("BENCH_explore.json " ^ name) base_wall wall
        in
        let per_sec =
          rate_or_die
            ~what:("BENCH_explore.json " ^ name)
            (float_of_int total) wall
        in
        Fmt.pr "  %-18s %-10d %-12.4f %-14.0f %.2fx@." name total wall per_sec
          speedup;
        Printf.sprintf
          "    {\"name\": %S, \"total\": %d, \"wall_s\": %.4f, \
           \"units_per_sec\": %.0f, \"baseline_wall_s\": %.4f, \"speedup\": \
           %.2f}"
          name total wall per_sec base_wall speedup)
      experiments
  in
  claim "POR-reduced and full behaviour sets identical on the corpus" true
    identical;
  claim "count_states no slower than the pre-packed-arena baseline" true
    (let _, wall = List.assoc "count_states" experiments in
     scale_anchor (fst (List.assoc "count_states" baseline_pre_arena)) /. wall
     >= 0.9);
  let phases = phases_json (Obs.Tracer.stop ()) in
  let json =
    String.concat "\n"
      ([
         "{";
         "  \"schema\": \"bench_explore/v2\",";
         Printf.sprintf "  \"quick\": %b," quick;
         Printf.sprintf "  \"reps\": %d," reps;
         Printf.sprintf "  \"programs\": %d," (List.length programs);
         "  \"experiments\": [";
       ]
      @ [ String.concat ",\n" rows ]
      @ [
          "  ],";
          Printf.sprintf "  \"phases\": %s," phases;
          Printf.sprintf "  \"por_behaviour_sets_identical\": %b," identical;
          Printf.sprintf "  \"explorer_stats\": %s"
            (Explorer.stats_to_json stats);
          "}";
        ])
  in
  let oc = open_out "BENCH_explore.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "  wrote BENCH_explore.json@."

(* ------------------------------------------------------------------ *)
(* P4: pass-manager pipeline benchmark -> BENCH_pipeline.json          *)
(* ------------------------------------------------------------------ *)

(* Run the default safe pipeline with per-pass differential validation
   over the litmus corpus, recording per-program pass work (rewrite
   sites, validation wall time, exploration states).  [quick] trims the
   corpus to its first few programs — the CI smoke mode. *)
let pipeline_bench ?(quick = false) () =
  let open Safeopt_opt in
  if quick then
    hr "P4: pass-manager pipeline (quick smoke mode) -> BENCH_pipeline.json"
  else hr "P4: pass-manager pipeline over the litmus corpus -> \
           BENCH_pipeline.json";
  Obs.Tracer.start Obs.Tracer.Memory;
  let corpus =
    if quick then List.filteri (fun i _ -> i < 4) Corpus.all else Corpus.all
  in
  let spec =
    match Pipeline.parse "constprop;copyprop;cse*;dead-moves;dse;normalise"
    with
    | Ok s -> s
    | Error e -> failwith e
  in
  let t0 = Clock.now () in
  let rows =
    List.map
      (fun (l : Litmus.t) ->
        let p = Litmus.program l in
        let o = Pipeline.run ~validate_each:true spec p in
        let sites =
          List.fold_left
            (fun n ps -> n + List.length ps.Pipeline.ps_sites)
            0 o.Pipeline.steps
        in
        let states =
          List.fold_left
            (fun n ps -> n + ps.Pipeline.ps_explorer.Explorer.states)
            0 o.Pipeline.steps
        in
        let vwall =
          List.fold_left
            (fun w ps -> w +. ps.Pipeline.ps_validation_wall)
            0. o.Pipeline.steps
        in
        let rejected = Option.is_some o.Pipeline.failure in
        Fmt.pr "  %-24s %2d sites, %5d states, %7.2f ms validation%s@."
          l.Litmus.name sites states (vwall *. 1000.)
          (if rejected then "  REJECTED" else "");
        ( rejected,
          Printf.sprintf
            "    {\"name\": %S, \"sites\": %d, \"validation_states\": %d, \
             \"validation_wall_s\": %.6f, \"rejected\": %b}"
            l.Litmus.name sites states vwall rejected ))
      corpus
  in
  let wall = Clock.elapsed t0 in
  let phases = phases_json (Obs.Tracer.stop ()) in
  let none_rejected = List.for_all (fun (r, _) -> not r) rows in
  claim "no safe pipeline rejected on the corpus" true none_rejected;
  let json =
    String.concat "\n"
      ([
         "{";
         "  \"schema\": \"bench_pipeline/v1\",";
         Printf.sprintf "  \"quick\": %b," quick;
         "  \"pipeline\": \"constprop;copyprop;cse*;dead-moves;dse;normalise\",";
         Printf.sprintf "  \"programs\": %d," (List.length corpus);
         Printf.sprintf "  \"wall_s\": %.4f," wall;
         Printf.sprintf "  \"phases\": %s," phases;
         "  \"per_program\": [";
       ]
      @ [ String.concat ",\n" (List.map snd rows) ]
      @ [
          "  ],";
          Printf.sprintf "  \"all_validated\": %b" none_rejected;
          "}";
        ])
  in
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "  wrote BENCH_pipeline.json@."

(* ------------------------------------------------------------------ *)
(* P5: domain-parallel exploration -> BENCH_parallel.json              *)
(* ------------------------------------------------------------------ *)

(* Time the corpus workloads sequentially and across [jobs] domains on
   one shared pool of work-stealing workers, recording wall-clock
   speedups, steal counts, and state-visit parity.  Every parallel
   total is compared against the sequential one, and the acceptance
   criteria are re-checked explicitly: parallel behaviour sets must be
   identical to the sequential ones program by program, and parallel
   state counts (with the reduction on) must equal sequential ones
   exactly — a parity failure exits nonzero so CI fails.  [quick]
   trims the repetitions — the CI smoke mode.

   Honesty: speedup is bounded by the host's core count.  The JSON
   records both the requested and the effective parallelism, and on a
   host with fewer than 2 cores it carries ["degraded": true] — the
   speedup figures of such a run measure scheduling overhead, not
   scaling, and trajectory tooling must not read them as regressions.
   The headline ">1x" claim is only made when the host can express
   it. *)
let parallel_bench ?(quick = false) ~jobs () =
  let jobs_requested = Par.resolve_jobs jobs in
  hr "P5: work-stealing parallel exploration -> BENCH_parallel.json";
  let host_cores = Domain.recommended_domain_count () in
  let jobs_effective = min jobs_requested host_cores in
  let degraded = host_cores < 2 in
  let reps = if quick then 2 else 8 in
  Fmt.pr "  %d domains requested (%d effective), %d cores on this host, %d \
          reps%s@."
    jobs_requested jobs_effective host_cores reps
    (if degraded then " [degraded: single-core host]" else "");
  let programs = List.map Litmus.program Corpus.all in
  let big = [ writer_reader_program 3; private_work_program 3 3 ] in
  let all = programs @ big in
  Par.Pool.with_pool jobs_requested (fun pool ->
      let beh ?pool () =
        let acc = ref 0 in
        for _ = 1 to reps do
          List.iter
            (fun p ->
              acc := !acc + Behaviour.Set.cardinal (Interp.behaviours ?pool p))
            all
        done;
        !acc
      in
      let count ?pool () =
        let acc = ref 0 in
        for _ = 1 to reps do
          List.iter (fun p -> acc := !acc + Interp.count_states ?pool p) all
        done;
        !acc
      in
      let litmus ?pool () =
        let acc = ref 0 in
        for _ = 1 to reps do
          List.iter
            (fun o -> if Litmus.passed o then incr acc)
            (Litmus.check_all ?pool Corpus.all)
        done;
        !acc
      in
      let experiments =
        List.map
          (fun (name, (f : ?pool:Par.Pool.t -> unit -> int)) ->
            let rseq, wseq = time (fun () -> f ?pool:None ()) in
            let rpar, wpar = time (fun () -> f ~pool ()) in
            (name, rseq, wseq, rpar, wpar))
          [
            ("behaviours", beh);
            ("count_states", count);
            ("litmus_corpus", litmus);
          ]
      in
      Fmt.pr "  %-18s %-10s %-12s %-12s %s@." "experiment" "total" "seq (s)"
        "par (s)" "speedup";
      let rows =
        List.map
          (fun (name, rseq, wseq, rpar, wpar) ->
            let speedup =
              rate_or_die ~what:("BENCH_parallel.json " ^ name) wseq wpar
            in
            Fmt.pr "  %-18s %-10d %-12.4f %-12.4f %.2fx@." name rseq wseq wpar
              speedup;
            ( speedup,
              Printf.sprintf
                "    {\"name\": %S, \"total\": %d, \"seq_wall_s\": %.4f, \
                 \"par_wall_s\": %.4f, \"speedup\": %.2f, \"totals_equal\": \
                 %b}"
                name rseq wseq wpar speedup (rseq = rpar) ))
          experiments
      in
      let totals_equal =
        List.for_all (fun (_, rseq, _, rpar, _) -> rseq = rpar) experiments
      in
      let identical =
        List.for_all
          (fun p ->
            Behaviour.Set.equal (Interp.behaviours p)
              (Interp.behaviours ~pool p))
          all
      in
      (* Exact reduced-count parity per program — the property the
         per-item sleep sets restore — plus aggregate steal counts from
         the work-stealing scheduler. *)
      let pstats = Explorer.create_stats () in
      let states_parity =
        List.for_all
          (fun p ->
            Interp.count_states ~por:true p
            = Interp.count_states ~por:true ~stats:pstats ~pool p)
          all
      in
      Fmt.pr "  steals: %d, starvation waits: %d (reduced corpus pass)@."
        pstats.Explorer.steals pstats.Explorer.lock_waits;
      (* Per-jobs scaling curve on the count_states workload: one rep
         per point, sequential baseline at jobs 1. *)
      let _, w1 =
        time (fun () ->
            List.iter (fun p -> ignore (Interp.count_states p)) all)
      in
      let curve_points =
        List.sort_uniq compare
          (List.filter (fun j -> j > 1) [ 2; 4; jobs_requested ])
      in
      let curve =
        List.map
          (fun j ->
            Par.Pool.with_pool j (fun pl ->
                let _, wj =
                  time (fun () ->
                      List.iter
                        (fun p -> ignore (Interp.count_states ~pool:pl p))
                        all)
                in
                let sp =
                  rate_or_die
                    ~what:
                      (Printf.sprintf "BENCH_parallel.json scaling jobs %d" j)
                    w1 wj
                in
                Fmt.pr "  scaling: jobs %d -> %.4f s (%.2fx)@." j wj sp;
                Printf.sprintf
                  "    {\"jobs\": %d, \"wall_s\": %.4f, \"speedup\": %.2f}" j
                  wj sp))
          curve_points
      in
      claim "parallel totals equal sequential totals" true totals_equal;
      claim "parallel and sequential behaviour sets identical" true identical;
      claim "reduced state counts identical across jobs" true states_parity;
      if not degraded then begin
        let above =
          List.length (List.filter (fun (sp, _) -> sp > 1.0) rows)
        in
        claim "work-stealing speedup > 1.0x on at least two experiments" true
          (above >= 2)
      end
      else
        Fmt.pr
          "  (headline speedup claim skipped: host has %d core(s), scaling \
           cannot be expressed)@."
          host_cores;
      let json =
        String.concat "\n"
          ([
             "{";
             "  \"schema\": \"bench_parallel/v2\",";
             Printf.sprintf "  \"quick\": %b," quick;
             Printf.sprintf "  \"jobs_requested\": %d," jobs_requested;
             Printf.sprintf "  \"jobs_effective\": %d," jobs_effective;
             Printf.sprintf "  \"host_cores\": %d," host_cores;
             Printf.sprintf "  \"degraded\": %b," degraded;
             Printf.sprintf "  \"reps\": %d," reps;
             Printf.sprintf "  \"programs\": %d," (List.length all);
             Printf.sprintf "  \"steals\": %d," pstats.Explorer.steals;
             Printf.sprintf "  \"lock_waits\": %d," pstats.Explorer.lock_waits;
             "  \"experiments\": [";
           ]
          @ [ String.concat ",\n" (List.map snd rows) ]
          @ [ "  ],"; "  \"scaling\": [" ]
          @ [ String.concat ",\n" curve ]
          @ [
              "  ],";
              Printf.sprintf "  \"parallel_totals_equal\": %b," totals_equal;
              Printf.sprintf "  \"parallel_states_identical\": %b,"
                states_parity;
              Printf.sprintf "  \"parallel_behaviour_sets_identical\": %b"
                identical;
              "}";
            ])
      in
      let oc = open_out "BENCH_parallel.json" in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Fmt.pr "  wrote BENCH_parallel.json@.";
      if not (totals_equal && identical && states_parity) then begin
        Fmt.epr
          "bench: parallel parity broken (totals_equal=%b identical=%b \
           states_parity=%b)@."
          totals_equal identical states_parity;
        exit 1
      end)

(* ------------------------------------------------------------------ *)
(* P6: thread-local refinement validator -> BENCH_refine.json          *)
(* ------------------------------------------------------------------ *)

(* n threads, each reading a thread-private location twice and printing
   the second read — E-RAR's redundant read, once per thread.  All
   locations are private, so the per-thread tracesets stay constant as
   n grows while the interleaving count (the exhaustive validator's
   cost) explodes: the separation the refinement validator exploits. *)
let redundant_read_program n =
  {
    Ast.threads =
      List.init n (fun i ->
          let x = Printf.sprintf "x%d" i in
          [ Ast.Load ("r1", x); Ast.Load ("r2", x); Ast.Print "r2" ]);
    volatile = Location.Volatile.none;
  }

(* Two halves, both feeding BENCH_refine.json:

   1. Differential over the litmus corpus: the default safe pipeline
      with per-pass validation under [Auto] must agree, pass for pass,
      with the same run under [Exhaustive] (the refine rung escalates
      instead of rejecting, so this agreement is exact, not
      approximate).  The metrics registry is enabled only around the
      [Auto] sweep, so the validate.* counters give a clean fast-path
      hit rate; the acceptance criterion is that a majority of
      validations are decided without enumerating one interleaving.

   2. Scaling: validate cse on [redundant_read_program n] for growing
      n, by refinement and by exhaustive enumeration under a state
      budget.  At n = 8 the exhaustive validator must exceed the
      budget while refinement still answers (and its per-thread
      verdicts carry completeness, so the answer is sound).

   [quick] trims the corpus sweep — the CI smoke mode. *)
let refine_bench ?(quick = false) () =
  let open Safeopt_opt in
  hr "P6: thread-local refinement validator -> BENCH_refine.json";
  let corpus =
    if quick then List.filteri (fun i _ -> i < 6) Corpus.all else Corpus.all
  in
  let spec =
    match Pipeline.parse "constprop;copyprop;cse*;dead-moves;dse;normalise"
    with
    | Ok s -> s
    | Error e -> failwith e
  in
  let sweep validator =
    List.map
      (fun (l : Litmus.t) ->
        (l.Litmus.name, Pipeline.run ~validate_each:true ~validator spec
                          (Litmus.program l)))
      corpus
  in
  (* metrics on only around the Auto sweep: clean fast-path counters *)
  Obs.Metrics.reset_global ();
  Obs.Metrics.set_enabled true;
  let auto_runs, auto_wall = time (fun () -> sweep Validate.Auto) in
  Obs.Metrics.set_enabled false;
  let counter n =
    Option.value ~default:0 Obs.Metrics.(find_counter global n)
  in
  let outcomes = counter "validate.outcomes" in
  let static_hits = counter "validate.static_hits" in
  let refine_hits = counter "validate.refine_hits" in
  let refine_misses = counter "validate.refine_misses" in
  let exhaustive_runs = counter "validate.exhaustive_runs" in
  let exh_runs, exh_wall = time (fun () -> sweep Validate.Exhaustive) in
  let verdict (o : Pipeline.outcome) =
    match o.Pipeline.failure with
    | None -> "ok"
    | Some (pass, _) -> "REJECTED at " ^ pass
  in
  let agreements =
    List.map2
      (fun (name, (a : Pipeline.outcome)) (_, (e : Pipeline.outcome)) ->
        let agree =
          verdict a = verdict e && Ast.equal_program a.final e.final
        in
        (name, verdict a, agree))
      auto_runs exh_runs
  in
  let all_agree = List.for_all (fun (_, _, a) -> a) agreements in
  List.iter
    (fun (name, v, agree) ->
      Fmt.pr "  %-24s auto: %-10s agree with exhaustive: %b@." name v agree)
    agreements;
  let decided_fast = static_hits + refine_hits in
  Fmt.pr
    "  validations: %d  static: %d  refine: %d  escalated: %d  exhaustive \
     runs: %d@."
    outcomes static_hits refine_hits refine_misses exhaustive_runs;
  Fmt.pr "  auto sweep: %.2f ms; exhaustive sweep: %.2f ms@."
    (auto_wall *. 1000.) (exh_wall *. 1000.);
  claim "auto and exhaustive pipeline verdicts agree on the corpus" true
    all_agree;
  claim "majority of validations decided without interleavings" true
    (2 * decided_fast > outcomes);
  (* scaling: refinement answers where enumeration exceeds its budget *)
  let state_budget = 200_000 in
  Fmt.pr "  %-8s %-14s %-12s %-22s@." "threads" "refine (ms)" "verdict"
    "exhaustive (budget)";
  let scaling =
    List.map
      (fun n ->
        let p = redundant_read_program n in
        let p' =
          match Passes.run_pipeline [ "redundancy" ] p with
          | Ok p' -> p'
          | Error e -> failwith e
        in
        let r, rwall =
          time (fun () -> Safeopt_analysis.Refine.check ~original:p
                            ~transformed:p' ())
        in
        let safe = Safeopt_analysis.Refine.verdict r = Safeopt_analysis.Refine.Safe in
        let exh, ewall =
          time (fun () ->
              try
                let rep =
                  Validate.validate ~max_states:state_budget ~original:p
                    ~transformed:p' ()
                in
                if Validate.ok rep then `Ok else `Failed
              with Explorer.Too_many_states s -> `Budget s)
        in
        let exh_str =
          match exh with
          | `Ok -> "ok"
          | `Failed -> "FAILED"
          | `Budget s -> Printf.sprintf "exceeded budget (%d states)" s
        in
        Fmt.pr "  %-8d %-14.2f %-12s %-22s@." n (rwall *. 1000.)
          (if safe then "safe" else "NOT SAFE")
          exh_str;
        (n, safe, rwall, exh, ewall))
      [ 2; 4; 8 ]
  in
  claim "refinement validates every scaling point" true
    (List.for_all (fun (_, safe, _, _, _) -> safe) scaling);
  claim "exhaustive exceeds its state budget at 8 threads" true
    (List.exists
       (fun (n, _, _, exh, _) ->
         n = 8 && match exh with `Budget _ -> true | _ -> false)
       scaling);
  let scaling_rows =
    List.map
      (fun (n, safe, rwall, exh, ewall) ->
        Printf.sprintf
          "    {\"threads\": %d, \"refine_safe\": %b, \"refine_wall_s\": \
           %.6f, \"exhaustive\": %S, \"exhaustive_wall_s\": %.6f}"
          n safe rwall
          (match exh with
          | `Ok -> "ok"
          | `Failed -> "failed"
          | `Budget s -> Printf.sprintf "budget_exceeded:%d" s)
          ewall)
      scaling
  in
  let corpus_rows =
    List.map
      (fun (name, v, agree) ->
        Printf.sprintf "    {\"name\": %S, \"verdict\": %S, \"agree\": %b}"
          name v agree)
      agreements
  in
  let json =
    String.concat "\n"
      ([
         "{";
         "  \"schema\": \"bench_refine/v1\",";
         Printf.sprintf "  \"quick\": %b," quick;
         "  \"pipeline\": \"constprop;copyprop;cse*;dead-moves;dse;normalise\",";
         Printf.sprintf "  \"programs\": %d," (List.length corpus);
         Printf.sprintf "  \"validations\": %d," outcomes;
         Printf.sprintf "  \"static_hits\": %d," static_hits;
         Printf.sprintf "  \"refine_hits\": %d," refine_hits;
         Printf.sprintf "  \"refine_misses\": %d," refine_misses;
         Printf.sprintf "  \"exhaustive_runs\": %d," exhaustive_runs;
         Printf.sprintf "  \"fast_path_rate\": %.3f,"
           (if outcomes = 0 then 0.
            else float_of_int decided_fast /. float_of_int outcomes);
         Printf.sprintf "  \"auto_wall_s\": %.4f," auto_wall;
         Printf.sprintf "  \"exhaustive_wall_s\": %.4f," exh_wall;
         Printf.sprintf "  \"all_verdicts_agree\": %b," all_agree;
         Printf.sprintf "  \"state_budget\": %d," state_budget;
         "  \"corpus\": [";
       ]
      @ [ String.concat ",\n" corpus_rows ]
      @ [ "  ],"; "  \"scaling\": [" ]
      @ [ String.concat ",\n" scaling_rows ]
      @ [ "  ]"; "}" ])
  in
  let oc = open_out "BENCH_refine.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "  wrote BENCH_refine.json@."

(* ------------------------------------------------------------------ *)
(* P7: the lock-free atomic pack -> BENCH_rmw.json                     *)
(* ------------------------------------------------------------------ *)

(* The RMW acceptance gates, timed: (1) every lock-free scenario passes
   its exhaustive litmus validation; (2) the store-buffer machines give
   SB-with-xchg no relaxed outcome (RMWs flush); (3) the default
   pipeline over the pack, per-pass-validated under [Auto], agrees with
   [Exhaustive] — atomic threads make the refine rung return Bounded,
   so the metrics show how often the ladder escalates on this
   atomic-heavy corpus (contrast BENCH_refine.json's fast-path rate on
   the full corpus). *)
let lock_free_pack =
  [
    Corpus.atomic_faa_counter;
    Corpus.atomic_ticket_lock;
    Corpus.atomic_treiber;
    Corpus.atomic_sense_barrier;
    Corpus.atomic_spin_then_block;
    Corpus.atomic_sb_xchg;
  ]

let rmw_bench () =
  let open Safeopt_opt in
  hr "P7: lock-free atomic pack -> BENCH_rmw.json";
  Fmt.pr "  %-24s %-8s %12s@." "scenario" "litmus" "wall (ms)";
  let walls =
    List.map
      (fun (l : Litmus.t) ->
        let o, wall = time (fun () -> Litmus.check l) in
        let ok = Litmus.passed o in
        Fmt.pr "  %-24s %-8s %12.2f@." l.Litmus.name
          (if ok then "ok" else "FAILED")
          (wall *. 1000.);
        (l.Litmus.name, ok, wall))
      lock_free_pack
  in
  claim "every lock-free scenario passes its expectations" true
    (List.for_all (fun (_, ok, _) -> ok) walls);
  let sb_x = Litmus.program Corpus.atomic_sb_xchg in
  let tso_flush =
    Behaviour.Set.is_empty (Safeopt_tso.Machine.weak_behaviours sb_x)
  in
  let pso_flush =
    Behaviour.Set.is_empty (Safeopt_tso.Pso.weak_behaviours sb_x)
  in
  claim "SB-with-xchg has no relaxed TSO outcome (buffer flushed)" true
    tso_flush;
  claim "nor under PSO (all per-location buffers flushed)" true pso_flush;
  let spec =
    match Pipeline.parse "constprop;copyprop;cse*;dead-moves;dse;normalise"
    with
    | Ok s -> s
    | Error e -> failwith e
  in
  let sweep validator =
    List.map
      (fun (l : Litmus.t) ->
        ( l.Litmus.name,
          Pipeline.run ~validate_each:true ~validator spec
            (Litmus.program l) ))
      lock_free_pack
  in
  Obs.Metrics.reset_global ();
  Obs.Metrics.set_enabled true;
  let auto_runs, auto_wall = time (fun () -> sweep Validate.Auto) in
  Obs.Metrics.set_enabled false;
  let counter n =
    Option.value ~default:0 Obs.Metrics.(find_counter global n)
  in
  let outcomes = counter "validate.outcomes" in
  let static_hits = counter "validate.static_hits" in
  let refine_hits = counter "validate.refine_hits" in
  let refine_misses = counter "validate.refine_misses" in
  let exhaustive_runs = counter "validate.exhaustive_runs" in
  let exh_runs, exh_wall = time (fun () -> sweep Validate.Exhaustive) in
  let verdict (o : Pipeline.outcome) =
    match o.Pipeline.failure with
    | None -> "ok"
    | Some (pass, _) -> "REJECTED at " ^ pass
  in
  let agreements =
    List.map2
      (fun (name, (a : Pipeline.outcome)) (_, (e : Pipeline.outcome)) ->
        let agree =
          verdict a = verdict e && Ast.equal_program a.final e.final
        in
        (name, verdict a, agree))
      auto_runs exh_runs
  in
  let all_agree = List.for_all (fun (_, _, a) -> a) agreements in
  List.iter
    (fun (name, v, agree) ->
      Fmt.pr "  %-24s auto: %-10s agree with exhaustive: %b@." name v agree)
    agreements;
  Fmt.pr
    "  validations: %d  static: %d  refine: %d  escalated: %d  exhaustive \
     runs: %d@."
    outcomes static_hits refine_hits refine_misses exhaustive_runs;
  Fmt.pr "  auto sweep: %.2f ms; exhaustive sweep: %.2f ms@."
    (auto_wall *. 1000.) (exh_wall *. 1000.);
  claim "auto and exhaustive pipeline verdicts agree on the pack" true
    all_agree;
  claim "no atomic-bearing rewrite is decided by the refine rung" true
    (refine_hits = 0 || outcomes > refine_hits);
  let scenario_rows =
    List.map2
      (fun (name, ok, wall) (_, v, agree) ->
        Printf.sprintf
          "    {\"name\": %S, \"litmus_ok\": %b, \"litmus_wall_s\": %.6f, \
           \"pipeline_verdict\": %S, \"ladder_agrees\": %b}"
          name ok wall v agree)
      walls agreements
  in
  let json =
    String.concat "\n"
      ([
         "{";
         "  \"schema\": \"bench_rmw/v1\",";
         "  \"pipeline\": \"constprop;copyprop;cse*;dead-moves;dse;normalise\",";
         Printf.sprintf "  \"scenarios\": %d," (List.length lock_free_pack);
         Printf.sprintf "  \"tso_flush\": %b," tso_flush;
         Printf.sprintf "  \"pso_flush\": %b," pso_flush;
         Printf.sprintf "  \"validations\": %d," outcomes;
         Printf.sprintf "  \"static_hits\": %d," static_hits;
         Printf.sprintf "  \"refine_hits\": %d," refine_hits;
         Printf.sprintf "  \"refine_misses\": %d," refine_misses;
         Printf.sprintf "  \"exhaustive_runs\": %d," exhaustive_runs;
         Printf.sprintf "  \"fast_path_rate\": %.3f,"
           (if outcomes = 0 then 0.
            else
              float_of_int (static_hits + refine_hits)
              /. float_of_int outcomes);
         Printf.sprintf "  \"auto_wall_s\": %.4f," auto_wall;
         Printf.sprintf "  \"exhaustive_wall_s\": %.4f," exh_wall;
         Printf.sprintf "  \"all_verdicts_agree\": %b," all_agree;
         "  \"scenarios_detail\": [";
       ]
      @ [ String.concat ",\n" scenario_rows ]
      @ [ "  ]"; "}" ])
  in
  let oc = open_out "BENCH_rmw.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "  wrote BENCH_rmw.json@."

(* ------------------------------------------------------------------ *)
(* P8: pass x memory-model portability -> BENCH_portability.json       *)
(* ------------------------------------------------------------------ *)

(* Sweep the pass registry over the litmus corpus under each memory
   model and pin the portability asymmetries as claims: at least one
   pass must be safe under SC yet unsafe under TSO (the compiler
   reordering the store buffer exposes), and every unsafe cell's
   counterexample behaviour must replay from scratch under its model.
   [quick] trims the registry to the four passes that carry the
   asymmetries — the CI smoke mode. *)
let portability_bench ?(quick = false) () =
  let open Safeopt_litmus in
  hr "P8: pass x memory-model portability matrix -> BENCH_portability.json";
  let passes =
    if quick then
      List.filter
        (fun (p : Safeopt_opt.Pass.t) ->
          List.mem p.Safeopt_opt.Pass.name
            [ "dead-stores"; "store-load-reorder"; "read-intro"; "redundancy" ])
        Safeopt_opt.Pipeline.registry
    else Safeopt_opt.Pipeline.registry
  in
  let m, wall = time (fun () -> Portability.sweep ~passes ()) in
  Fmt.pr "%a" Portability.pp m;
  let verdict_of ~pass ~model =
    Option.map
      (fun c -> c.Portability.c_verdict)
      (Portability.cell m ~pass ~model)
  in
  let sc_safe_tso_unsafe =
    List.filter
      (fun pass ->
        match
          ( verdict_of ~pass ~model:Safeopt_model.Memory_model.Sc,
            verdict_of ~pass ~model:Safeopt_model.Memory_model.Tso )
        with
        | Some Portability.Safe, Some (Portability.Unsafe _) -> true
        | _ -> false)
      m.Portability.passes
  in
  let unsafe = Portability.unsafe_cells m in
  let weak_unsafe_replayed =
    List.for_all
      (fun ((c : Portability.cell), (u : Portability.unsafe_evidence)) ->
        Safeopt_model.Memory_model.equal c.Portability.c_model
          Safeopt_model.Memory_model.Sc
        || u.Portability.u_replayed)
      unsafe
  in
  Fmt.pr "  SC-safe but TSO-unsafe passes: %a@."
    Fmt.(list ~sep:(any ", ") string)
    sc_safe_tso_unsafe;
  claim "some pass is safe under SC but unsafe under TSO" true
    (sc_safe_tso_unsafe <> []);
  claim "every weak-model unsafe cell's witness replays from scratch" true
    weak_unsafe_replayed;
  let cell_rows =
    List.map
      (fun (c : Portability.cell) ->
        let extra =
          match c.Portability.c_verdict with
          | Portability.Unsafe u ->
              Printf.sprintf ", \"test\": %S, \"behaviour\": %S, \
                              \"replayed\": %b"
                u.Portability.u_test
                (match u.Portability.u_behaviour with
                | Some b -> Fmt.str "%a" Behaviour.pp b
                | None -> "")
                u.Portability.u_replayed
          | _ -> ""
        in
        Printf.sprintf
          "    {\"pass\": %S, \"model\": %S, \"verdict\": %S, \"checked\": \
           %d%s}"
          c.Portability.c_pass
          (Safeopt_model.Memory_model.name c.Portability.c_model)
          (Portability.verdict_tag c.Portability.c_verdict)
          c.Portability.c_checked extra)
      m.Portability.cells
  in
  let json =
    String.concat "\n"
      ([
         "{";
         "  \"schema\": \"bench_portability/v1\",";
         Printf.sprintf "  \"quick\": %b," quick;
         Printf.sprintf "  \"passes\": %d," (List.length m.Portability.passes);
         Printf.sprintf "  \"models\": %d," (List.length m.Portability.models);
         Printf.sprintf "  \"tests\": %d," (List.length m.Portability.tests);
         Printf.sprintf "  \"wall_s\": %.4f," wall;
         Printf.sprintf "  \"sc_safe_tso_unsafe\": [%s],"
           (String.concat ", "
              (List.map (Printf.sprintf "%S") sc_safe_tso_unsafe));
         Printf.sprintf "  \"weak_unsafe_witnesses_replayed\": %b,"
           weak_unsafe_replayed;
         "  \"cells\": [";
       ]
      @ [ String.concat ",\n" cell_rows ]
      @ [ "  ]"; "}" ])
  in
  let oc = open_out "BENCH_portability.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "  wrote BENCH_portability.json@."

(* ------------------------------------------------------------------ *)
(* obs-overhead: the disabled-telemetry cost guard                     *)
(* ------------------------------------------------------------------ *)

(* The instrumentation contract is that a disabled call site costs one
   flag load and one branch — no closure, no allocation.  This mode
   pins it three ways and exits 1 on any violation, so CI catches an
   accidentally-allocating guard:
     1. [Gc.minor_words] across a million disabled guard hits stays
        below a thousand words (i.e. the loop itself allocates nothing;
        the slack absorbs unrelated runtime noise);
     2. a disabled guard hit costs well under 20 ns;
     3. two interleaved runs of the same macro workload (corpus
        behaviour enumeration, all guards disabled) land within 1.25x
        of each other — the instrumented hot loops are within run-to-run
        noise of themselves. *)
let obs_overhead () =
  hr "obs-overhead: disabled-telemetry cost guard";
  let failed = ref false in
  let check name ok detail =
    Fmt.pr "  %-58s %s (%s)@." name (if ok then "OK" else "VIOLATION") detail;
    if not ok then failed := true
  in
  assert (not (Obs.Tracer.enabled ()));
  assert (not (Obs.Metrics.enabled ()));
  assert (not (Obs.Snapshot.enabled ()));
  let hits = 1_000_000 in
  let sink = ref 0 in
  (* 1: allocation-free fast path *)
  let w0 = Gc.minor_words () in
  for _ = 1 to hits do
    if Obs.Tracer.enabled () then incr sink;
    if Obs.Metrics.enabled () then incr sink;
    if Obs.Snapshot.enabled () then incr sink
  done;
  let dw = Gc.minor_words () -. w0 in
  check "disabled guards allocate nothing" (dw < 1_000.)
    (Printf.sprintf "%.0f minor words / %d hits" dw hits);
  (* 2: per-hit cost *)
  let t0 = Clock.now () in
  for _ = 1 to hits do
    if Obs.Tracer.enabled () then incr sink
  done;
  let ns = Clock.elapsed t0 *. 1e9 /. float_of_int hits in
  check "disabled guard costs < 20 ns" (ns < 20.)
    (Printf.sprintf "%.2f ns/hit" ns);
  ignore (Sys.opaque_identity !sink);
  (* 3: macro A/A stability with every guard on the hot paths disabled *)
  let programs = List.map Litmus.program Corpus.all in
  let macro () =
    List.iter (fun p -> ignore (Interp.behaviours p)) programs
  in
  macro ();
  (* warm-up *)
  let wa = ref 0. and wb = ref 0. in
  for _ = 1 to 5 do
    let _, w = time macro in
    wa := !wa +. w;
    let _, w = time macro in
    wb := !wb +. w
  done;
  let ratio = Float.max (!wa /. !wb) (!wb /. !wa) in
  check "interleaved A/A macro runs within 1.25x" (ratio < 1.25)
    (Printf.sprintf "%.4fs vs %.4fs, ratio %.3f" !wa !wb ratio);
  if !failed then exit 1;
  Fmt.pr "  disabled-telemetry overhead within bounds@."

(* ------------------------------------------------------------------ *)
(* Bechamel timing                                                     *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  let sb = Litmus.program Corpus.sb in
  let fig1_o = Litmus.program Corpus.fig1_original in
  let fig1_t = Litmus.program Corpus.fig1_transformed in
  let fig1_uni = Denote.joint_universe [ fig1_o; fig1_t ] in
  let fig1_tso = Denote.traceset ~universe:fig1_uni ~max_len:10 fig1_o in
  let fig1_tst = Denote.traceset ~universe:fig1_uni ~max_len:10 fig1_t in
  let fig3a = Litmus.program Corpus.fig3_a in
  let oota = Litmus.program Corpus.oota in
  let oota_ts = Denote.traceset ~universe:[ 0; 42 ] ~max_len:8 oota in
  [
    Test.make_grouped ~name:"figures"
      [
        t "e1_intro_behaviours" (fun () ->
            Interp.behaviours (Litmus.program Corpus.intro_racy));
        t "e2_fig1_elimination_check" (fun () ->
            Safeopt_core.Elimination.is_elimination vol0 ~original:fig1_tso
              ~universe:fig1_uni ~transformed:fig1_tst);
        t "e3_fig2_reorder_via_closure" (fun () ->
            Safeopt_core.Reorder.is_reordering_of_oracle vol0
              ~mem:(fun tr ->
                Safeopt_core.Elimination.is_member vol0
                  ~original:fig2_original_ts ~universe:[ 0; 1 ] tr)
              ~transformed:fig2_transformed_ts);
        t "e4_fig3_pipeline" (fun () ->
            Safeopt_opt.Passes.eliminate_reads_across_acquires
              (Safeopt_opt.Passes.introduce_irrelevant_reads fig3a));
        t "e5_matrix" (fun () ->
            ( Safeopt_core.Reorder.matrix ~same_location:false,
              Safeopt_core.Reorder.matrix ~same_location:true ));
        t "e6_fig4_depermute" (fun () ->
            Safeopt_core.Reorder.de_permutes vol0 fig4_f fig4_t'
              ~mem:(fun tr -> Traceset.mem tr fig4_t_bar));
        t "e7_fig5_unelimination" (fun () ->
            Safeopt_core.Unelimination.construct_from_traceset fig5_vol
              ~original:fig5_original_ts ~universe:[ 0; 1 ] fig5_i');
        t "e8_oota_origins" (fun () ->
            Safeopt_core.Origin.traceset_has_origin 42 oota_ts);
        t "e9_sec4_elimination" (fun () -> e9_check ());
        t "e12_tso_sb" (fun () -> Safeopt_tso.Machine.weak_behaviours sb);
        t "e13_pso_mp" (fun () ->
            Safeopt_tso.Pso.weak_behaviours (Litmus.program Corpus.mp));
        t "e14_robust_sb" (fun () -> Safeopt_tso.Robustness.enforce sb);
      ];
    Test.make_grouped ~name:"scaling"
      (List.concat_map
         (fun n ->
           let p = writer_reader_program n in
           [
             t (Printf.sprintf "behaviours_%dt" n) (fun () ->
                 Interp.behaviours p);
             t (Printf.sprintf "drf_%dt" n) (fun () -> Interp.is_drf p);
           ])
         [ 1; 2; 3 ]);
    Test.make_grouped ~name:"por_ablation"
      (List.concat_map
         (fun (n, k) ->
           let p = private_work_program n k in
           [
             t (Printf.sprintf "full_%dt_%dp" n k) (fun () ->
                 Interp.count_states p);
             t (Printf.sprintf "por_%dt_%dp" n k) (fun () ->
                 Interp.count_states ~por:true p);
           ])
         [ (2, 2); (3, 2) ]);
    Test.make_grouped ~name:"infrastructure"
      [
        t "parse_corpus" (fun () -> List.map Litmus.program Corpus.all);
        t "litmus_sb_check" (fun () -> Litmus.check Corpus.sb);
        t "optimise_pipeline" (fun () ->
            Safeopt_opt.Passes.optimise (Litmus.program Corpus.mp_locked));
      ];
  ]

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  hr "Bechamel timings (ns per run, OLS on monotonic clock)";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results =
        List.map (fun instance -> Analyze.all ols instance raw) instances
      in
      let results = Analyze.merge ols instances results in
      Hashtbl.iter
        (fun _instance tbl ->
          let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
          List.sort (fun (a, _) (b, _) -> String.compare a b) rows
          |> List.iter (fun (name, ols_result) ->
                 match Analyze.OLS.estimates ols_result with
                 | Some [ est ] -> Fmt.pr "  %-44s %14.1f ns@." name est
                 | _ -> Fmt.pr "  %-44s (no estimate)@." name))
        results)
    (bechamel_tests ())

let () =
  (* `dune exec bench/main.exe -- explore` runs just the exploration
     benchmark (and writes BENCH_explore.json; `explore-quick` is the
     low-rep CI mode, comparable through rate fields); `-- pipeline` (or
     `pipeline-quick`, the CI smoke mode) just the pass-manager one
     (BENCH_pipeline.json); `-- parallel [jobs]` (or `parallel-quick
     [jobs]`) the sequential-vs-parallel comparison
     (BENCH_parallel.json); `-- refine` (or `refine-quick`) the
     validator-ladder differential and scaling comparison
     (BENCH_refine.json); `-- rmw` the lock-free atomic pack gates
     (BENCH_rmw.json); `-- portability` (or `portability-quick`) the
     pass x memory-model matrix (BENCH_portability.json);
     `-- obs-overhead` the disabled-telemetry cost guard (exits 1 when
     the guards are not free); the default runs the full reproduction
     suite. *)
  match Sys.argv with
  | [| _; "explore" |] -> explore_bench ()
  | [| _; "explore-quick" |] -> explore_bench ~quick:true ()
  | [| _; "obs-overhead" |] -> obs_overhead ()
  | [| _; "pipeline" |] -> pipeline_bench ()
  | [| _; "pipeline-quick" |] -> pipeline_bench ~quick:true ()
  | [| _; "parallel" |] -> parallel_bench ~jobs:4 ()
  | [| _; "parallel"; j |] -> parallel_bench ~jobs:(int_of_string j) ()
  | [| _; "parallel-quick" |] -> parallel_bench ~quick:true ~jobs:2 ()
  | [| _; "parallel-quick"; j |] ->
      parallel_bench ~quick:true ~jobs:(int_of_string j) ()
  | [| _; "refine" |] -> refine_bench ()
  | [| _; "refine-quick" |] -> refine_bench ~quick:true ()
  | [| _; "rmw" |] -> rmw_bench ()
  | [| _; "portability" |] -> portability_bench ()
  | [| _; "portability-quick" |] -> portability_bench ~quick:true ()
  | _ ->
      e1 ();
      e2 ();
      e3 ();
      e4 ();
      e5 ();
      e6 ();
      e7 ();
      e8 ();
      e9 ();
      e10 ();
      e11 ();
      e12 ();
      e13 ();
      e14 ();
      p1 ();
      p2 ();
      explore_bench ();
      pipeline_bench ();
      parallel_bench ~jobs:4 ();
      refine_bench ();
      rmw_bench ();
      portability_bench ();
      run_bechamel ();
      Fmt.pr "@.done.@."
