(** Abstract thread systems.

    The execution-enumeration engine ({!Explorer}) is parametric in how
    threads produce their actions, so that both explicit tracesets
    ({!Traceset_system}) and the small-step semantics of the section-6
    language ([Safeopt_lang.Thread_system]) plug into the same exhaustive
    scheduler.

    A thread offers {e steps}.  Reads are offered as a location together
    with a continuation: in a sequentially consistent execution a read
    must see the most recent write, so the scheduler computes that value
    and asks the thread whether it can read it.  This keeps enumeration
    free of any "guess a value" blow-up. *)

open Safeopt_trace

type 'ts step =
  | Emit of Action.t * 'ts
      (** An unconditional action (write, lock, unlock, external, start).
          Must not be used for reads. *)
  | Read of Location.t * (Value.t -> 'ts option)
      (** A read of the given location; the continuation receives the
          value supplied by the scheduler and declines it with [None]. *)
  | Rmw of Location.t * (Value.t -> (Value.t * 'ts) list)
      (** An atomic read-modify-write of the given location: the
          continuation receives the current value and returns the
          possible (written value, successor state) outcomes — [[]] to
          decline, a list to allow nondeterministic systems (explicit
          tracesets) to offer several.  The scheduler performs the read
          and the write in one indivisible transition, emitting
          [Action.Rmw (l, read, written)]. *)

type 'ts t = {
  initial : 'ts list;  (** One state per thread; index = thread id. *)
  steps : 'ts -> 'ts step list;
      (** Thread-local possibilities from a state. *)
  key : 'ts -> string;
      (** A canonical key for memoisation: two states with the same key
          must have the same future. *)
}
