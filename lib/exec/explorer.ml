open Safeopt_trace
module Metrics = Safeopt_obs.Metrics
module Tracer = Safeopt_obs.Tracer
module Ev = Safeopt_obs.Event

exception Cyclic
exception Too_many_states of int

let default_max_states = 2_000_000

(* ------------------------------------------------------------------ *)
(* Exploration statistics                                              *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable states : int;
  mutable edges : int;
  mutable memo_hits : int;
  mutable por_cuts : int;
  mutable peak_frontier : int;
  mutable wall : float;
  mutable domains : int;
  mutable steals : int;
  mutable lock_waits : int;
}

let create_stats () =
  {
    states = 0;
    edges = 0;
    memo_hits = 0;
    por_cuts = 0;
    peak_frontier = 0;
    wall = 0.;
    domains = 0;
    steals = 0;
    lock_waits = 0;
  }

let reset_stats s =
  s.states <- 0;
  s.edges <- 0;
  s.memo_hits <- 0;
  s.por_cuts <- 0;
  s.peak_frontier <- 0;
  s.wall <- 0.;
  s.domains <- 0;
  s.steals <- 0;
  s.lock_waits <- 0

let merge_stats ~into s =
  into.states <- into.states + s.states;
  into.edges <- into.edges + s.edges;
  into.memo_hits <- into.memo_hits + s.memo_hits;
  into.por_cuts <- into.por_cuts + s.por_cuts;
  if s.peak_frontier > into.peak_frontier then
    into.peak_frontier <- s.peak_frontier;
  into.wall <- into.wall +. s.wall;
  if s.domains > into.domains then into.domains <- s.domains;
  into.steals <- into.steals + s.steals;
  into.lock_waits <- into.lock_waits + s.lock_waits

(* The mutable record remains the per-worker accumulation cell (workers
   merge privately and join, no synchronisation in the hot loops), but
   the one counter system is the {!Safeopt_obs.Metrics} registry:
   [publish] folds a record into a registry under "explorer.*" names,
   and the renderers below round-trip through a registry, so the record
   and the registry views can never drift. *)
let publish ~into s =
  let c name v = Metrics.add (Metrics.counter into name) v in
  c "explorer.states" s.states;
  c "explorer.edges" s.edges;
  c "explorer.memo_hits" s.memo_hits;
  c "explorer.por_cuts" s.por_cuts;
  c "explorer.steals" s.steals;
  c "explorer.lock_waits" s.lock_waits;
  let g name v = Metrics.record (Metrics.gauge into name) v in
  g "explorer.peak_frontier" (float_of_int s.peak_frontier);
  g "explorer.wall_s" s.wall;
  g "explorer.domains" (float_of_int s.domains)

let of_registry reg =
  let c name = Option.value ~default:0 (Metrics.find_counter reg name) in
  let gmax name =
    match Metrics.find_gauge reg name with
    | Some g -> int_of_float g.Metrics.g_max
    | None -> 0
  in
  let gsum name =
    match Metrics.find_gauge reg name with
    | Some g -> g.Metrics.g_mean *. float_of_int g.Metrics.g_count
    | None -> 0.
  in
  {
    states = c "explorer.states";
    edges = c "explorer.edges";
    memo_hits = c "explorer.memo_hits";
    por_cuts = c "explorer.por_cuts";
    peak_frontier = gmax "explorer.peak_frontier";
    wall = gsum "explorer.wall_s";
    domains = gmax "explorer.domains";
    steals = c "explorer.steals";
    lock_waits = c "explorer.lock_waits";
  }

let via_registry s =
  let reg = Metrics.create ~stripes:1 () in
  publish ~into:reg s;
  of_registry reg

let pp_stats ppf s =
  let s = via_registry s in
  Fmt.pf ppf
    "@[<v>exploration: %d states, %d transitions@ memo hits: %d, POR cuts: \
     %d@ peak frontier depth: %d@ wall time: %.6f s"
    s.states s.edges s.memo_hits s.por_cuts s.peak_frontier s.wall;
  if s.domains > 0 then
    Fmt.pf ppf "@ parallel: %d domains, %d steals, %d lock waits" s.domains
      s.steals s.lock_waits;
  Fmt.pf ppf "@]"

let stats_to_json s =
  let s = via_registry s in
  Printf.sprintf
    "{\"states\": %d, \"edges\": %d, \"memo_hits\": %d, \"por_cuts\": %d, \
     \"peak_frontier\": %d, \"wall_s\": %.6f, \"domains\": %d, \"steals\": \
     %d, \"lock_waits\": %d}"
    s.states s.edges s.memo_hits s.por_cuts s.peak_frontier s.wall s.domains
    s.steals s.lock_waits

(* A dummy sink so the hot loops mutate unconditionally instead of
   matching on an option at every step. *)
let sink = function Some s -> s | None -> create_stats ()

let copy_stats s = { s with states = s.states }

let delta_stats ~now ~before =
  {
    states = now.states - before.states;
    edges = now.edges - before.edges;
    memo_hits = now.memo_hits - before.memo_hits;
    por_cuts = now.por_cuts - before.por_cuts;
    peak_frontier = now.peak_frontier;
    wall = now.wall -. before.wall;
    domains = now.domains;
    steals = now.steals - before.steals;
    lock_waits = now.lock_waits - before.lock_waits;
  }

(* In-flight tracking for the heartbeat sampler.

   [publish] only lands a run's counters in the global registry at
   entry-point *end*, so a sampler reading just the registry would see
   a long exploration as a flat line.  Instead every stats record a
   run is actively mutating — the entry point's record and, under
   parallelism, each per-worker record — is registered here with a
   baseline copy.  {!live_progress} folds the registry together with
   the in-flight deltas; [finish] removes an entry and runs its
   publish/merge continuation {e under the same lock}, so any unit of
   work is visible exactly once — still in flight or already
   published, never both, never neither.  That hand-off is what makes
   consecutive heartbeat snapshots monotone in every cumulative
   counter (the property the snapshot tests pin).

   Reading an in-flight record from the sampler domain races with the
   worker mutating it: the fields are mutable ints and one boxed float
   — word-atomic under the OCaml memory model, never torn; a stale
   read only under-counts for one tick.  The hot loops are untouched
   (the sampler pulls), so a disabled heartbeat costs exploration
   nothing at all. *)
module Live = struct
  let mu = Mutex.create ()
  let cells : (stats * stats) list ref = ref []

  let track s base =
    Mutex.lock mu;
    cells := (s, base) :: !cells;
    Mutex.unlock mu

  let finish s commit =
    Mutex.lock mu;
    cells := List.filter (fun (c, _) -> not (c == s)) !cells;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) commit
end

let live_progress () =
  Mutex.lock Live.mu;
  let s = of_registry Metrics.global in
  List.iter
    (fun (c, base) ->
      merge_stats ~into:s (delta_stats ~now:(copy_stats c) ~before:base))
    !Live.cells;
  Mutex.unlock Live.mu;
  s

(* Entry-point wrapper replacing the old [timed]: accumulates wall time
   into the caller's record exactly as before and, when telemetry is
   live, materialises a record even for callers that passed none, then
   publishes this call's deltas into the global registry and closes one
   span per entry point with the result counters as attributes.  With
   telemetry off and no [?stats], the cost is the [live] test. *)
let observed name stats f =
  let live = Metrics.enabled () || Tracer.enabled () in
  match (stats, live) with
  | None, false -> f None
  | _ ->
      let s = match stats with Some s -> s | None -> create_stats () in
      let before = copy_stats s in
      let tracked = Metrics.enabled () in
      if tracked then Live.track s before;
      let sp = if Tracer.enabled () then Tracer.span name else Tracer.none in
      let t0 = Clock.now () in
      Fun.protect
        ~finally:(fun () ->
          s.wall <- s.wall +. Clock.elapsed t0;
          if live then begin
            let d = delta_stats ~now:s ~before in
            if tracked then
              Live.finish s (fun () ->
                  publish ~into:Metrics.global d;
                  if d.wall > 0. && d.states > 0 then
                    Metrics.record
                      (Metrics.gauge Metrics.global "explorer.states_per_s")
                      (float_of_int d.states /. d.wall));
            if sp <> Tracer.none then
              let attempts = float_of_int (d.edges + 1) in
              Tracer.close_span
                ~attrs:
                  [
                    ("states", Ev.Int d.states);
                    ("edges", Ev.Int d.edges);
                    ("memo_hits", Ev.Int d.memo_hits);
                    ("por_cuts", Ev.Int d.por_cuts);
                    ( "intern_hit_rate",
                      Ev.Float
                        ((attempts -. float_of_int d.states) /. attempts) );
                  ]
                sp
          end)
        (fun () -> f (Some s))

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

module Intern = struct
  type t = (string, int) Hashtbl.t

  let create () : t = Hashtbl.create 256

  let id (t : t) s =
    match Hashtbl.find_opt t s with
    | Some i -> i
    | None ->
        let i = Hashtbl.length t in
        Hashtbl.add t s i;
        i
end

(* ------------------------------------------------------------------ *)
(* Hash-consed scheduler states                                        *)
(* ------------------------------------------------------------------ *)

(* A scheduler state carries its own digest pieces: [tkeys.(i)] is the
   interned key of thread [i]'s state, [mem_id]/[locks_id] the interned
   canonical serialisations of the shared memory and the monitor table.
   Successors update only the piece an action touches, so the O(|state|)
   re-serialisation of the old string keys happens at most once per
   changed component per transition, not once per component per visit. *)
type 'ts state = {
  threads : 'ts array;
  tkeys : int array;
  mem : Value.t Location.Map.t;
  mem_id : int;
  locks : (Thread_id.t * int) Monitor.Map.t;
  locks_id : int;
}

(* The interning context is a record of closures so the sequential
   engine (plain [Hashtbl]s, no synchronisation) and the parallel
   engine (striped tables from {!Par}) share every function below
   ([initial], [enabled], [state_id], ...) without the sequential path
   paying any mutex or atomic cost. *)
type 'ts ctx = {
  sys : 'ts System.t;
  tkey : string -> int;  (** thread-state keys *)
  lkey : string -> int;  (** locations *)
  mkey : string -> int;  (** monitors *)
  mems : int array -> int;  (** canonical memories *)
  lockts : int array -> int;  (** canonical monitor tables *)
  ids : int array -> int * bool;  (** full state digest -> (id, fresh) *)
  arena_words : unit -> int;  (** packed digest words across all tables *)
}

(* Both contexts store their int-array digests (memories, monitor
   tables, full states) in {!Par.Ptbl} packed arenas — unboxed bump
   allocation, open-addressing index, no per-state boxed key.  The
   sequential context uses the single-stripe mutex-free variant, so it
   pays no synchronisation; the parallel one the striped table. *)
let make_ctx sys =
  let tkey = Intern.create () in
  let lkey = Intern.create () in
  let mkey = Intern.create () in
  let mems = Par.Ptbl.create_local ~dummy:() () in
  let lockts = Par.Ptbl.create_local ~dummy:() () in
  let ids = Par.Ptbl.create_local ~dummy:() () in
  {
    sys;
    tkey = Intern.id tkey;
    lkey = Intern.id lkey;
    mkey = Intern.id mkey;
    mems = Par.Ptbl.intern mems;
    lockts = Par.Ptbl.intern lockts;
    ids = Par.Ptbl.intern_fresh ids;
    arena_words =
      (fun () ->
        Par.Ptbl.words mems + Par.Ptbl.words lockts + Par.Ptbl.words ids);
  }

(* Same context shape over the striped tables: safe to call from any
   domain of a pool.  Ids come from atomic counters, so their numeric
   order varies across runs; they are only used for equality. *)
let make_par_ctx sys =
  let tkey = Par.Intern.create () in
  let lkey = Par.Intern.create () in
  let mkey = Par.Intern.create () in
  let mems = Par.Ptbl.create ~dummy:() () in
  let lockts = Par.Ptbl.create ~dummy:() () in
  let ids = Par.Ptbl.create ~dummy:() () in
  {
    sys;
    tkey = Par.Intern.id tkey;
    lkey = Par.Intern.id lkey;
    mkey = Par.Intern.id mkey;
    mems = Par.Ptbl.intern mems;
    lockts = Par.Ptbl.intern lockts;
    ids = Par.Ptbl.intern_fresh ids;
    arena_words =
      (fun () ->
        Par.Ptbl.words mems + Par.Ptbl.words lockts + Par.Ptbl.words ids);
  }

let intern_mem ctx mem =
  let parts =
    Location.Map.fold (fun l v acc -> ctx.lkey l :: v :: acc) mem []
  in
  ctx.mems (Array.of_list parts)

let intern_locks ctx locks =
  let parts =
    Monitor.Map.fold
      (fun m (o, d) acc -> ctx.mkey m :: o :: d :: acc)
      locks []
  in
  ctx.lockts (Array.of_list parts)

let initial ctx =
  let threads = Array.of_list ctx.sys.System.initial in
  {
    threads;
    tkeys = Array.map (fun ts -> ctx.tkey (ctx.sys.System.key ts)) threads;
    mem = Location.Map.empty;
    mem_id = intern_mem ctx Location.Map.empty;
    locks = Monitor.Map.empty;
    locks_id = intern_locks ctx Monitor.Map.empty;
  }

let state_digest st =
  let n = Array.length st.tkeys in
  let d = Array.make (n + 2) 0 in
  Array.blit st.tkeys 0 d 0 n;
  d.(n) <- st.mem_id;
  d.(n + 1) <- st.locks_id;
  d

let state_id ctx st = ctx.ids (state_digest st)

let read_value st l =
  Option.value ~default:Value.default (Location.Map.find_opt l st.mem)

let set_thread ctx st tid ts' =
  let threads = Array.copy st.threads in
  threads.(tid) <- ts';
  let tkeys = Array.copy st.tkeys in
  tkeys.(tid) <- ctx.tkey (ctx.sys.System.key ts');
  (threads, tkeys)

(* All enabled transitions from a scheduler state:
   (thread id, action, successor state), in thread-index then step
   order — witness searches depend on this order being stable. *)
let enabled ctx st =
  let out = ref [] in
  Array.iteri
    (fun tid ts ->
      List.iter
        (fun step ->
          match step with
          | System.Read (l, k) -> (
              let v = read_value st l in
              match k v with
              | Some ts' ->
                  let threads, tkeys = set_thread ctx st tid ts' in
                  out :=
                    (tid, Action.Read (l, v), { st with threads; tkeys })
                    :: !out
              | None -> ())
          | System.Rmw (l, k) ->
              let v = read_value st l in
              List.iter
                (fun (w, ts') ->
                  let mem = Location.Map.add l w st.mem in
                  let st' = { st with mem; mem_id = intern_mem ctx mem } in
                  let threads, tkeys = set_thread ctx st' tid ts' in
                  out :=
                    (tid, Action.Rmw (l, v, w), { st' with threads; tkeys })
                    :: !out)
                (k v)
          | System.Emit (a, ts') -> (
              let commit st' =
                let threads, tkeys = set_thread ctx st' tid ts' in
                out := (tid, a, { st' with threads; tkeys }) :: !out
              in
              match a with
              | Action.Read _ ->
                  invalid_arg "Explorer: reads must use System.Read steps"
              | Action.Rmw _ ->
                  invalid_arg "Explorer: RMWs must use System.Rmw steps"
              | Action.Write (l, v) ->
                  let mem = Location.Map.add l v st.mem in
                  commit { st with mem; mem_id = intern_mem ctx mem }
              | Action.Lock m -> (
                  match Monitor.Map.find_opt m st.locks with
                  | None ->
                      let locks = Monitor.Map.add m (tid, 1) st.locks in
                      commit
                        { st with locks; locks_id = intern_locks ctx locks }
                  | Some (owner, d) when Thread_id.equal owner tid ->
                      let locks = Monitor.Map.add m (tid, d + 1) st.locks in
                      commit
                        { st with locks; locks_id = intern_locks ctx locks }
                  | Some _ -> ())
              | Action.Unlock m -> (
                  match Monitor.Map.find_opt m st.locks with
                  | Some (owner, d) when Thread_id.equal owner tid ->
                      let locks =
                        if d = 1 then Monitor.Map.remove m st.locks
                        else Monitor.Map.add m (tid, d - 1) st.locks
                      in
                      commit
                        { st with locks; locks_id = intern_locks ctx locks }
                  | _ -> ())
              | Action.External _ | Action.Start _ -> commit st))
        (ctx.sys.System.steps ts))
    st.threads;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Independence and sleep sets                                         *)
(* ------------------------------------------------------------------ *)

(* Two transitions of different threads commute iff their actions do not
   conflict as memory accesses (same location with a write involved —
   volatility is irrelevant for commutation, so the conflict test runs
   with an empty volatile set), do not touch the same monitor, and are
   not both external (external actions are the observable behaviour, so
   their relative order must be preserved).  Two RMWs of the same
   location do not {e conflict} (they never race — atomicity orders
   them), but they do not commute either: each one's read sees the
   other's write, so their order changes values.  They are therefore
   dependent here even though [Action.conflicting] excuses them. *)
let independent (t1, a1) (t2, a2) =
  let same_loc_rmw =
    match (a1, a2) with
    | Action.Rmw (l1, _, _), Action.Rmw (l2, _, _) -> Location.equal l1 l2
    | _ -> false
  in
  (not (Thread_id.equal t1 t2))
  && (not (Action.conflicting Location.Volatile.none a1 a2))
  && (not same_loc_rmw)
  && (match (Action.monitor a1, Action.monitor a2) with
     | Some m1, Some m2 -> not (Monitor.equal m1 m2)
     | _ -> true)
  && not (Action.is_external a1 && Action.is_external a2)

type sleeper = Thread_id.t * Action.t

let in_sleep sleep tid a =
  List.exists
    (fun (t, b) -> Thread_id.equal t tid && Action.equal b a)
    sleep

let sleep_subset s1 s2 = List.for_all (fun (t, a) -> in_sleep s2 t a) s1
let sleep_inter s1 s2 = List.filter (fun (t, a) -> in_sleep s2 t a) s1

(* Persistent-set selection, generalising the old singleton rule: if
   some thread's enabled transitions are all invisible and statically
   independent of every other thread ([local], plus start actions), that
   thread's transitions alone form a persistent set.

   The selection is deliberately a pure function of the state — in
   particular it does {e not} look at the arriving sleep set.  That
   makes the per-state exploration a monotone function of the sleep
   lattice (smaller sleep can only add children, never change which
   thread is selected), which is what lets revisits-with-refinement
   converge to an order-independent fixpoint: the reached state set is
   the same whatever order arrivals are processed in — the property the
   parallel engine's exact [count_states] parity rests on.  A selected
   set whose every transition is slept simply expands to nothing, which
   is sound: each slept transition is explored from a sibling branch by
   sleep-set coverage. *)
let persistent_select local succs =
  let is_local a = match a with Action.Start _ -> true | _ -> local a in
  let rec tids_of acc = function
    | [] -> List.rev acc
    | (tid, _, _) :: rest ->
        tids_of (if List.mem tid acc then acc else tid :: acc) rest
  in
  let candidate tid =
    List.for_all
      (fun (t, a, _) -> (not (Thread_id.equal t tid)) || is_local a)
      succs
  in
  match List.find_opt candidate (tids_of [] succs) with
  | Some tid -> List.filter (fun (t, _, _) -> Thread_id.equal t tid) succs
  | None -> succs

(* ------------------------------------------------------------------ *)
(* Memoised behaviour / state-count exploration with sleep sets        *)
(* ------------------------------------------------------------------ *)

(* The DFS core shared by [behaviours] and [count_states].  [visit] is
   called once per explored transition with the subtree's result; its
   accumulated value is memoised per (state, sleep set).

   Sleep sets with state matching (Godefroid): a memo entry records the
   sleep set it was computed under and may be reused only by visits
   whose sleep set subsumes it (those need a subset of the explored
   transitions).  A revisit with an incomparable sleep set re-explores
   under the intersection, which only ever shrinks, so the recursion
   terminates and the stored result only grows. *)
let explore_core (type r) ~(empty : r) ~(union : r -> r -> r)
    ~(label : Action.t -> r -> r) ~max_states ~local ~stats sys =
  let s = sink stats in
  let ctx = make_ctx sys in
  let memo : (int, sleeper list * r) Hashtbl.t = Hashtbl.create 997 in
  let on_stack : (int, unit) Hashtbl.t = Hashtbl.create 97 in
  let count = ref 0 in
  let reduce = Option.is_some local in
  let local_pred = match local with Some f -> f | None -> fun _ -> false in
  let rec go st sleep depth =
    let id, fresh = state_id ctx st in
    if fresh then begin
      incr count;
      s.states <- s.states + 1;
      if !count > max_states then raise (Too_many_states !count)
    end;
    match Hashtbl.find_opt memo id with
    | Some (stored, r) when (not reduce) || sleep_subset stored sleep ->
        s.memo_hits <- s.memo_hits + 1;
        r
    | prior ->
        if Hashtbl.mem on_stack id then raise Cyclic;
        Hashtbl.add on_stack id ();
        if depth > s.peak_frontier then s.peak_frontier <- depth;
        let sleep =
          match prior with
          | Some (stored, _) -> sleep_inter stored sleep
          | None -> sleep
        in
        let succs = enabled ctx st in
        let selected =
          if reduce then persistent_select local_pred succs else succs
        in
        s.por_cuts <- s.por_cuts + (List.length succs - List.length selected);
        let result = ref empty in
        let explored = ref [] in
        List.iter
          (fun (tid, a, st') ->
            if reduce && in_sleep sleep tid a then
              s.por_cuts <- s.por_cuts + 1
            else begin
              s.edges <- s.edges + 1;
              let child_sleep =
                if reduce then
                  List.filter
                    (fun e -> independent e (tid, a))
                    (List.rev_append !explored sleep)
                else []
              in
              let sub = go st' child_sleep (depth + 1) in
              result := union !result (label a sub);
              if reduce then explored := (tid, a) :: !explored
            end)
          selected;
        Hashtbl.remove on_stack id;
        Hashtbl.replace memo id (sleep, !result);
        !result
  in
  let r = go (initial ctx) [] 1 in
  (r, !count)

(* ------------------------------------------------------------------ *)
(* Domain-parallel exploration                                         *)
(* ------------------------------------------------------------------ *)

(* The parallel engine splits the work the sequential DFS does in one
   pass into two phases:

   Phase 1 (parallel): frontier discovery over per-worker {!Par.Ws}
   work-stealing deques.  Workers expand states ([enabled] — the
   expensive part: successor construction, interning, hashing) from
   their own deque bottoms (LIFO: the search stays depth-first-ish and
   cache-hot) and steal oldest-first from each other when empty; the
   striped digest table dedupes (the worker that interns a state first
   owns its expansion).

   Phase 2 (sequential): a memoised suffix fold over the discovered
   compact int graph — the cheap part — computing the same result the
   sequential DFS would, including raising [Cyclic] on cycles.

   [par_discover] is the plain (non-reduced) discovery used by the
   witness searches and the TSO/PSO graph machines: edges and BFS-tree
   parents accumulate in per-worker lists (no sharing, no locks).  The
   sleep-set-aware discovery used by [behaviours]/[count_states] lives
   in [par_explore_core] below. *)

(* Per-worker instrumentation hooks for a {!Par.Ws} run.  The branch on
   the metrics flag is hoisted out: disabled runs get bare closures,
   paying nothing per wait, steal, or push. *)
let ws_hooks (s : stats) =
  if Metrics.enabled () then begin
    let waits = Metrics.histogram Metrics.global "par.lock_wait_s" in
    let steals = Metrics.counter Metrics.global "par.steals" in
    let depth = Metrics.gauge Metrics.global "par.deque_depth" in
    ( (fun dt ->
        s.lock_waits <- s.lock_waits + 1;
        Metrics.observe waits dt),
      (fun n ->
        s.steals <- s.steals + 1;
        Metrics.add steals n),
      fun d ->
        if d > s.peak_frontier then s.peak_frontier <- d;
        Metrics.record depth (float_of_int d) )
  end
  else
    ( (fun (_ : float) -> s.lock_waits <- s.lock_waits + 1),
      (fun (_ : int) -> s.steals <- s.steals + 1),
      fun d -> if d > s.peak_frontier then s.peak_frontier <- d )

let record_arena ctx extra =
  if Metrics.enabled () then
    Metrics.record
      (Metrics.gauge Metrics.global "par.arena_words")
      (float_of_int (ctx.arena_words () + extra))

(* Per-worker records accumulate off-registry until the join, so the
   heartbeat would see a parallel run as a flat line; track each one
   (base = its creation-time zeros).  [join_wstats] replaces the plain
   merge loop: each worker's hand-off from "in flight" to "inside the
   entry-point record" happens under the live lock, keeping the
   sampler's view monotone.  [untrack_wstats] is the abort path
   (Too_many_states, Cyclic): drop the partial deltas, as the
   sequential engine does — a no-op for already-joined workers. *)
let track_wstats (ws : stats array) =
  if Metrics.enabled () then
    Array.iter (fun w -> Live.track w (copy_stats w)) ws

let join_wstats ~into (ws : stats array) =
  Array.iter (fun w -> Live.finish w (fun () -> merge_stats ~into w)) ws

let untrack_wstats (ws : stats array) =
  Array.iter (fun w -> Live.finish w (fun () -> ())) ws

let par_discover (type st lbl) ~pool ~max_states ~(wstats : stats array)
    ~(expand : int -> st -> (lbl * st) list)
    ~(intern : st -> int * bool) (st0 : st) :
    int * (lbl * int) list array * (int * lbl) option array * int =
  let nw = Par.Pool.size pool in
  let ws : (int * st) Par.Ws.t = Par.Ws.create nw in
  let edges : (int * lbl * int) list array = Array.make nw [] in
  let parents : (int * int * lbl) list array = Array.make nw [] in
  let total = Atomic.make 1 in
  let id0, fresh0 = intern st0 in
  assert fresh0;
  wstats.(0).states <- wstats.(0).states + 1;
  Par.Ws.seed ws (id0, st0);
  let sp =
    if Tracer.enabled () then Tracer.span "explore.discover" else Tracer.none
  in
  Fun.protect
    ~finally:(fun () ->
      Tracer.close_span ~attrs:[ ("states", Ev.Int (Atomic.get total)) ] sp)
    (fun () ->
      Par.Pool.run pool (fun w ->
          let s = wstats.(w) in
          let on_wait, on_steal, on_peak = ws_hooks s in
          Par.Ws.run ws w ~on_wait ~on_steal ~on_peak
            (fun (id, st) push ->
              List.iter
                (fun (lbl, st') ->
                  s.edges <- s.edges + 1;
                  let id', fresh = intern st' in
                  edges.(w) <- (id, lbl, id') :: edges.(w);
                  if fresh then begin
                    s.states <- s.states + 1;
                    parents.(w) <- (id', id, lbl) :: parents.(w);
                    let n = Atomic.fetch_and_add total 1 + 1 in
                    if n > max_states then raise (Too_many_states n);
                    push (id', st')
                  end)
                (expand w st))));
  let n = Atomic.get total in
  let succ : (lbl * int) list array = Array.make n [] in
  Array.iter
    (List.iter (fun (u, l, v) -> succ.(u) <- (l, v) :: succ.(u)))
    edges;
  let parent = Array.make n None in
  Array.iter
    (List.iter (fun (v, u, l) -> parent.(v) <- Some (u, l)))
    parents;
  (n, succ, parent, id0)

(* Memoised suffix fold over the discovered graph — the parallel
   counterpart of [explore_core]'s result computation, on compact int
   ids.  Raises [Cyclic] exactly when a cycle is reachable, like the
   sequential engine. *)
let fold_graph (type r lbl) ~(empty : r) ~(union : r -> r -> r)
    ~(label : lbl -> r -> r) ~(stats : stats)
    (succ : (lbl * int) list array) id0 : r =
  let n = Array.length succ in
  let memo : r option array = Array.make n None in
  let on_stack = Array.make n false in
  let rec go id =
    match memo.(id) with
    | Some r ->
        stats.memo_hits <- stats.memo_hits + 1;
        r
    | None ->
        if on_stack.(id) then raise Cyclic;
        on_stack.(id) <- true;
        let r =
          List.fold_left
            (fun acc (l, id') -> union acc (label l (go id')))
            empty succ.(id)
        in
        on_stack.(id) <- false;
        memo.(id) <- Some r;
        r
  in
  let sp =
    if Tracer.enabled () then Tracer.span "explore.fold" else Tracer.none
  in
  Fun.protect ~finally:(fun () -> Tracer.close_span sp) (fun () -> go id0)

(* Sleep-set-aware parallel discovery.

   Each work item carries its own sleep set (source-set style), so the
   parallel search prunes exactly as hard as the sequential sleep-set
   DFS.  The digest table's per-entry meta holds the state's current
   sleep set, a version counter, and the edge list of its latest
   accepted expansion:

   - An arrival whose sleep set is subsumed by the stored one is
     dropped: everything it would explore is already covered.
   - Otherwise the stored sleep set is refined to the intersection
     (strictly smaller), the version is bumped, and the arrival is
     (re-)expanded under the refined set.  Refinement is a locked
     read-modify-write ({!Par.Ptbl.update}), so concurrent arrivals
     serialise per state.
   - An expansion writes its edges back guarded by its version
     ({!Par.Ptbl.sync}): only the expansion of the {e latest} version
     publishes, so the final graph is the one expanded under each
     state's final (smallest) sleep set.

   Order-independence: per state, the sleep set only ever shrinks
   (a meet-semilattice descent, which terminates), selection is a pure
   function of the state, and a smaller sleep set only adds children —
   so the set of (state, final sleep) pairs is the least fixpoint of a
   monotone operator and independent of arrival order and worker
   count.  The reached state set — hence [count_states] — is therefore
   {e exactly} equal across jobs 1, 2, ..., N.  Re-expansions can
   revisit edges, so [edges]/[por_cuts] may exceed the sequential
   figures under reduction (never under plain enumeration, where sleep
   sets are all empty and every state expands exactly once). *)

type pmeta = {
  mutable psleep : sleeper list;  (** current (smallest) sleep set *)
  mutable pversion : int;  (** bumped on every refinement *)
  mutable pedges : (Action.t * int) list;  (** latest accepted expansion *)
}

let par_explore_core (type r) ~(empty : r) ~(union : r -> r -> r)
    ~(label : Action.t -> r -> r) ~pool ~max_states ~local ~stats sys =
  let s = sink stats in
  let ctx = make_par_ctx sys in
  let nw = Par.Pool.size pool in
  let wstats = Array.init nw (fun _ -> create_stats ()) in
  track_wstats wstats;
  Fun.protect ~finally:(fun () -> untrack_wstats wstats) @@ fun () ->
  let reduce = Option.is_some local in
  let local_pred = match local with Some f -> f | None -> fun _ -> false in
  let dummy = { psleep = []; pversion = 0; pedges = [] } in
  let tbl : pmeta Par.Ptbl.t = Par.Ptbl.create ~dummy () in
  let total = Atomic.make 0 in
  let ws = Par.Ws.create nw in
  (* Intern [st] arriving with [sleep]; decide expansion vs drop under
     the stripe lock.  [f] must not raise, so the budget check happens
     on the returned freshness outside the lock. *)
  let arrive st sleep =
    let d = state_digest st in
    let id, decision =
      Par.Ptbl.update tbl d (function
        | None ->
            let m =
              { psleep = sleep; pversion = 0; pedges = [] }
            in
            (m, `Expand (d, m, 0, sleep, true))
        | Some m ->
            if (not reduce) || sleep_subset m.psleep sleep then (m, `Drop)
            else begin
              m.psleep <- sleep_inter m.psleep sleep;
              m.pversion <- m.pversion + 1;
              (m, `Expand (d, m, m.pversion, m.psleep, false))
            end)
    in
    (id, decision)
  in
  let budget (s : stats) fresh =
    if fresh then begin
      s.states <- s.states + 1;
      let n = Atomic.fetch_and_add total 1 + 1 in
      if n > max_states then raise (Too_many_states n)
    end
  in
  let st0 = initial ctx in
  let id0, decision0 = arrive st0 [] in
  (match decision0 with
  | `Expand (d, m, version, sleep, fresh) ->
      budget wstats.(0) fresh;
      Par.Ws.seed ws (st0, d, m, version, sleep)
  | `Drop -> assert false);
  let sp =
    if Tracer.enabled () then Tracer.span "explore.discover" else Tracer.none
  in
  Fun.protect
    ~finally:(fun () ->
      Tracer.close_span ~attrs:[ ("states", Ev.Int (Atomic.get total)) ] sp)
    (fun () ->
      Par.Pool.run pool (fun w ->
          let s = wstats.(w) in
          let on_wait, on_steal, on_peak = ws_hooks s in
          Par.Ws.run ws w ~on_wait ~on_steal ~on_peak
            (fun (st, d, m, version, sleep) push ->
              let succs = enabled ctx st in
              let selected =
                if reduce then persistent_select local_pred succs else succs
              in
              if reduce then
                s.por_cuts <-
                  s.por_cuts + (List.length succs - List.length selected);
              let explored = ref [] in
              let es = ref [] in
              List.iter
                (fun (tid, a, st') ->
                  if reduce && in_sleep sleep tid a then
                    s.por_cuts <- s.por_cuts + 1
                  else begin
                    s.edges <- s.edges + 1;
                    let child_sleep =
                      if reduce then
                        List.filter
                          (fun e -> independent e (tid, a))
                          (List.rev_append !explored sleep)
                      else []
                    in
                    let id', decision = arrive st' child_sleep in
                    es := (a, id') :: !es;
                    (match decision with
                    | `Expand (d', m', v', sleep', fresh) ->
                        budget s fresh;
                        push (st', d', m', v', sleep')
                    | `Drop -> ());
                    if reduce then explored := (tid, a) :: !explored
                  end)
                selected;
              (* Publish this expansion's edges unless a refinement has
                 already superseded it: the in-flight item for the
                 latest version always publishes last under the stripe
                 lock, so the final graph is each state's expansion
                 under its final sleep set. *)
              Par.Ptbl.sync tbl d (fun () ->
                  if m.pversion = version then m.pedges <- !es))));
  record_arena ctx (Par.Ptbl.words tbl);
  let n = Par.Ptbl.length tbl in
  let succ : (Action.t * int) list array = Array.make n [] in
  Par.Ptbl.iter tbl (fun id m -> succ.(id) <- m.pedges);
  let r = fold_graph ~empty ~union ~label ~stats:s succ id0 in
  join_wstats ~into:s wstats;
  s.domains <- max s.domains nw;
  (r, n)

let run_par = Par.dispatch

let beh_label a sub =
  match a with
  | Action.External v -> Behaviour.Set.map (fun b -> v :: b) sub
  | _ -> sub

let behaviours ?(max_states = default_max_states) ?local ?stats ?jobs ?pool
    sys =
  observed "explorer.behaviours" stats (fun stats ->
      run_par ?jobs ?pool
        ~seq:(fun () ->
          fst
            (explore_core
               ~empty:(Behaviour.Set.singleton [])
               ~union:Behaviour.Set.union ~label:beh_label ~max_states ~local
               ~stats sys))
        ~par:(fun p ->
          fst
            (par_explore_core
               ~empty:(Behaviour.Set.singleton [])
               ~union:Behaviour.Set.union ~label:beh_label ~pool:p ~max_states
               ~local ~stats sys))
        ())

let count_states ?(max_states = default_max_states) ?local ?stats ?jobs ?pool
    sys =
  observed "explorer.count_states" stats (fun stats ->
      run_par ?jobs ?pool
        ~seq:(fun () ->
          snd
            (explore_core ~empty:() ~union:(fun () () -> ())
               ~label:(fun _ () -> ())
               ~max_states ~local ~stats sys))
        ~par:(fun p ->
          snd
            (par_explore_core ~empty:() ~union:(fun () () -> ())
               ~label:(fun _ () -> ())
               ~pool:p ~max_states ~local ~stats sys))
        ())

(* ------------------------------------------------------------------ *)
(* Streaming executions                                                *)
(* ------------------------------------------------------------------ *)

let maximal_executions_seq ?(max_steps = 1_000_000) ?stats sys =
  let s = sink stats in
  let ctx = make_ctx sys in
  let steps = ref 0 in
  let rec go st rev_path : Interleaving.t Seq.t =
   fun () ->
    match enabled ctx st with
    | [] -> Seq.Cons (List.rev rev_path, Seq.empty)
    | succs ->
        Seq.flat_map
          (fun (tid, a, st') () ->
            incr steps;
            s.edges <- s.edges + 1;
            if !steps > max_steps then raise (Too_many_states !steps);
            go st' (Interleaving.pair tid a :: rev_path) ())
          (List.to_seq succs) ()
  in
  go (initial ctx) []

let maximal_executions ?max_steps ?stats sys =
  observed "explorer.executions" stats (fun _ ->
      List.of_seq (maximal_executions_seq ?max_steps ?stats:None sys))

let count_executions ?max_steps ?stats sys =
  observed "explorer.executions" stats (fun _ ->
      Seq.fold_left
        (fun n _ -> n + 1)
        0
        (maximal_executions_seq ?max_steps ?stats:None sys))

(* ------------------------------------------------------------------ *)
(* Witness searches                                                    *)
(* ------------------------------------------------------------------ *)

(* wall time and telemetry are handled by [observed] in the entry point *)
let seq_find_adjacent_race ~max_states ?stats vol sys =
  let s = sink stats in
  let ctx = make_ctx sys in
  let visited : (int, unit) Hashtbl.t = Hashtbl.create 997 in
  (* Each state's enabled set is needed both when the state is
     visited and for the adjacent-race check on every incoming edge:
     compute it once and cache it by state id. *)
  let succ_tbl = Hashtbl.create 997 in
  let succs_of id st =
    match Hashtbl.find_opt succ_tbl id with
    | Some l -> l
    | None ->
        let l = enabled ctx st in
        Hashtbl.add succ_tbl id l;
        l
  in
  let count = ref 0 in
  let exception Found of Interleaving.t in
  let rec go id succs rev_path depth =
    Hashtbl.add visited id ();
    incr count;
    s.states <- s.states + 1;
    if !count > max_states then raise (Too_many_states !count);
    if depth > s.peak_frontier then s.peak_frontier <- depth;
    List.iter
      (fun (tid, a, st') ->
        s.edges <- s.edges + 1;
        let id', _ = state_id ctx st' in
        let succs' = succs_of id' st' in
        List.iter
          (fun (tid', b, _) ->
            if
              (not (Thread_id.equal tid tid'))
              && Action.conflicting vol a b
            then
              raise
                (Found
                   (List.rev
                      (Interleaving.pair tid' b
                      :: Interleaving.pair tid a
                      :: rev_path))))
          succs';
        if not (Hashtbl.mem visited id') then
          go id' succs'
            (Interleaving.pair tid a :: rev_path)
            (depth + 1))
      succs
  in
  let st0 = initial ctx in
  let id0, _ = state_id ctx st0 in
  try
    go id0 (succs_of id0 st0) [] 1;
    None
  with Found i -> Some i

(* Parallel race search: phase-1 discovery records (thread, action)
   edge labels and BFS-tree parents (a fresh state's parent edge is
   fixed by whichever worker interned it first — a well-founded chain
   back to the root); the adjacent-conflict scan and witness-path
   reconstruction then run sequentially on the compact graph.  The DRF
   verdict is deterministic; when a program does race, the particular
   witness interleaving may differ from the sequential engine's (and
   between parallel runs), as any adjacent race is a valid witness. *)
let par_find_adjacent_race ~pool ~max_states ?stats vol sys =
  let s = sink stats in
  let ctx = make_par_ctx sys in
  let nw = Par.Pool.size pool in
  let wstats = Array.init nw (fun _ -> create_stats ()) in
  track_wstats wstats;
  Fun.protect ~finally:(fun () -> untrack_wstats wstats) @@ fun () ->
  let expand _w st =
    List.map (fun (tid, a, st') -> ((tid, a), st')) (enabled ctx st)
  in
  let n, succ, parent, id0 =
    par_discover ~pool ~max_states ~wstats ~expand
      ~intern:(fun st -> state_id ctx st)
      (initial ctx)
  in
  record_arena ctx 0;
  join_wstats ~into:s wstats;
  s.domains <- max s.domains nw;
  let path_to u =
    let rec up id acc =
      if id = id0 then acc
      else
        match parent.(id) with
        | Some (p, (tid, a)) -> up p (Interleaving.pair tid a :: acc)
        | None -> acc
    in
    up u []
  in
  let exception Found of Interleaving.t in
  try
    for u = 0 to n - 1 do
      List.iter
        (fun ((tid, a), v) ->
          List.iter
            (fun ((tid', b), _) ->
              if
                (not (Thread_id.equal tid tid'))
                && Action.conflicting vol a b
              then
                raise
                  (Found
                     (path_to u
                     @ [
                         Interleaving.pair tid a; Interleaving.pair tid' b;
                       ])))
            succ.(v))
        succ.(u)
    done;
    None
  with Found i -> Some i

let find_adjacent_race ?(max_states = default_max_states) ?stats ?jobs ?pool
    vol sys =
  observed "explorer.race_search" stats (fun stats ->
      run_par ?jobs ?pool
        ~seq:(fun () -> seq_find_adjacent_race ~max_states ?stats vol sys)
        ~par:(fun p ->
          par_find_adjacent_race ~pool:p ~max_states ?stats vol sys)
        ())

let is_drf ?max_states ?stats ?jobs ?pool vol sys =
  Option.is_none (find_adjacent_race ?max_states ?stats ?jobs ?pool vol sys)

let find_deadlock ?(max_states = default_max_states) ?stats sys =
  observed "explorer.deadlock" stats (fun stats ->
      let s = sink stats in
      let ctx = make_ctx sys in
      let visited : (int, unit) Hashtbl.t = Hashtbl.create 997 in
      let count = ref 0 in
      let exception Found of Interleaving.t in
      let rec go st rev_path depth =
        let id, fresh = state_id ctx st in
        if fresh then begin
          Hashtbl.add visited id ();
          incr count;
          s.states <- s.states + 1;
          if !count > max_states then raise (Too_many_states !count);
          if depth > s.peak_frontier then s.peak_frontier <- depth;
          match enabled ctx st with
          | [] ->
              let blocked =
                Array.exists
                  (fun ts -> ctx.sys.System.steps ts <> [])
                  st.threads
              in
              if blocked then raise (Found (List.rev rev_path))
          | succs ->
              List.iter
                (fun (tid, a, st') ->
                  s.edges <- s.edges + 1;
                  go st' (Interleaving.pair tid a :: rev_path) (depth + 1))
                succs
        end
      in
      try
        go (initial ctx) [] 1;
        None
      with Found i -> Some i)

(* ------------------------------------------------------------------ *)
(* Randomised sampling                                                 *)
(* ------------------------------------------------------------------ *)

let sample_runs ?(max_actions = 10_000) ~seed ~runs sys =
  let ctx = make_ctx sys in
  Seq.init runs (fun run ->
      (* one generator per run, so the stream is re-evaluable and a
         consumer may stop after any prefix without changing the rest *)
      let rng = Random.State.make [| seed; run |] in
      let rec go st rev_beh n =
        if n >= max_actions then List.rev rev_beh
        else
          match enabled ctx st with
          | [] -> List.rev rev_beh
          | succs ->
              let _, a, st' =
                List.nth succs (Random.State.int rng (List.length succs))
              in
              let rev_beh =
                match a with
                | Action.External v -> v :: rev_beh
                | _ -> rev_beh
              in
              go st' rev_beh (n + 1)
      in
      go (initial ctx) [] 0)

let sample_behaviours ?max_actions ~seed ~runs ?stats sys =
  observed "explorer.sample" stats (fun _ ->
      Seq.fold_left
        (fun acc b ->
          Behaviour.Set.union acc
            (Behaviour.Set.of_list (Behaviour.Set.list_prefixes b)))
        Behaviour.Set.empty
        (sample_runs ?max_actions ~seed ~runs sys))

(* ------------------------------------------------------------------ *)
(* Generic graph engine (TSO/PSO machines)                             *)
(* ------------------------------------------------------------------ *)

type 'st graph = {
  graph_initial : 'st;
  graph_transitions : 'st -> (Action.t option * 'st) list;
  graph_digest : 'st -> int list;
}

let graph_label a sub =
  match a with
  | Some (Action.External v) -> Behaviour.Set.map (fun b -> v :: b) sub
  | _ -> sub

let seq_graph_behaviours ~max_states ?stats g =
  observed "explorer.graph" stats (fun stats ->
      let s = sink stats in
      let ids = Par.Ptbl.create_local ~dummy:() () in
      let memo : (int, Behaviour.Set.t) Hashtbl.t = Hashtbl.create 997 in
      let on_stack : (int, unit) Hashtbl.t = Hashtbl.create 97 in
      let count = ref 0 in
      let rec go st depth =
        let id = Par.Ptbl.intern ids (Array.of_list (g.graph_digest st)) in
        match Hashtbl.find_opt memo id with
        | Some set ->
            s.memo_hits <- s.memo_hits + 1;
            set
        | None ->
            if Hashtbl.mem on_stack id then raise Cyclic;
            Hashtbl.add on_stack id ();
            incr count;
            s.states <- s.states + 1;
            if !count > max_states then raise (Too_many_states !count);
            if depth > s.peak_frontier then s.peak_frontier <- depth;
            let set =
              List.fold_left
                (fun acc (a, st') ->
                  s.edges <- s.edges + 1;
                  let sub = go st' (depth + 1) in
                  Behaviour.Set.union acc (graph_label a sub))
                (Behaviour.Set.singleton [])
                (g.graph_transitions st)
            in
            Hashtbl.remove on_stack id;
            Hashtbl.replace memo id set;
            set
      in
      go g.graph_initial 1)

let par_graph_behaviours ~pool ~max_states ?stats g =
  observed "explorer.graph" stats (fun stats ->
      let s = sink stats in
      let ids = Par.Ptbl.create ~dummy:() () in
      let nw = Par.Pool.size pool in
      let wstats = Array.init nw (fun _ -> create_stats ()) in
      track_wstats wstats;
      Fun.protect ~finally:(fun () -> untrack_wstats wstats) @@ fun () ->
      let _n, succ, _parents, id0 =
        par_discover ~pool ~max_states ~wstats
          ~expand:(fun _ st -> g.graph_transitions st)
          ~intern:(fun st ->
            Par.Ptbl.intern_fresh ids (Array.of_list (g.graph_digest st)))
          g.graph_initial
      in
      let r =
        fold_graph
          ~empty:(Behaviour.Set.singleton [])
          ~union:Behaviour.Set.union ~label:graph_label ~stats:s succ id0
      in
      join_wstats ~into:s wstats;
      s.domains <- max s.domains nw;
      r)

let graph_behaviours ?(max_states = default_max_states) ?stats ?jobs ?pool g =
  run_par ?jobs ?pool
    ~seq:(fun () -> seq_graph_behaviours ~max_states ?stats g)
    ~par:(fun p -> par_graph_behaviours ~pool:p ~max_states ?stats g)
    ()
