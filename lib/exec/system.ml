open Safeopt_trace

type 'ts step =
  | Emit of Action.t * 'ts
  | Read of Location.t * (Value.t -> 'ts option)
  | Rmw of Location.t * (Value.t -> (Value.t * 'ts) list)

type 'ts t = {
  initial : 'ts list;
  steps : 'ts -> 'ts step list;
  key : 'ts -> string;
}
