type t = int array

let equal (a : int array) (b : int array) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i =
    i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
  in
  go 0

let hash (a : int array) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length a - 1 do
    h := (!h lxor Array.unsafe_get a i) * 0x01000193 land max_int
  done;
  !h
