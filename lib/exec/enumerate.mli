(** Exhaustive enumeration of sequentially consistent executions.

    Compatibility façade over {!Explorer}, which owns the actual
    engine: hash-consed scheduler states, sleep-set partial-order
    reduction, streaming executions and exploration statistics.  New
    code should use {!Explorer} directly; these re-exports keep the
    historical signatures (and add the optional [stats] sink).

    All analyses are exact for systems whose global state graph is
    finite and acyclic (bounded programs; the language front-end
    guarantees acyclicity with a fuel counter).  A cyclic graph raises
    {!Cyclic}; exceeding the state budget raises {!Too_many_states}. *)

open Safeopt_trace

exception Cyclic
exception Too_many_states of int

val default_max_states : int

val behaviours :
  ?max_states:int ->
  ?local:(Action.t -> bool) ->
  ?stats:Explorer.stats ->
  'ts System.t ->
  Behaviour.Set.t
(** The set of behaviours of all executions.  Prefix-closed.

    [local] enables a sound partial-order reduction (persistent-set
    selection plus sleep sets; see {!Explorer.behaviours}): it must
    return [true] only for actions that are {e invisible} (not
    external) and {e independent of every other thread} — reads and
    writes of locations accessed by a single thread.  The behaviour set
    is identical with and without the reduction.  Default: no
    reduction. *)

val maximal_executions :
  ?max_steps:int -> ?stats:Explorer.stats -> 'ts System.t ->
  Interleaving.t list
(** All executions that cannot be extended (every execution is a prefix
    of one of these).  Exponential in general; for early-exit searches
    use {!maximal_executions_seq}.  [max_steps] bounds the total number
    of scheduler transitions explored. *)

val maximal_executions_seq :
  ?max_steps:int -> ?stats:Explorer.stats -> 'ts System.t ->
  Interleaving.t Seq.t
(** Lazy stream variant of {!maximal_executions}; consuming a prefix
    only pays for the transitions actually traversed. *)

val find_adjacent_race :
  ?max_states:int ->
  ?stats:Explorer.stats ->
  Location.Volatile.t ->
  'ts System.t ->
  Interleaving.t option
(** A witness execution whose last two actions are adjacent conflicting
    accesses by different threads, if one exists. *)

val is_drf :
  ?max_states:int -> ?stats:Explorer.stats -> Location.Volatile.t ->
  'ts System.t -> bool
(** No execution has an (adjacent) data race. *)

val count_states :
  ?max_states:int ->
  ?local:(Action.t -> bool) ->
  ?stats:Explorer.stats ->
  'ts System.t ->
  int
(** Number of distinct scheduler states explored (for benchmarks);
    [local] as in {!behaviours}. *)

val count_executions :
  ?max_steps:int -> ?stats:Explorer.stats -> 'ts System.t -> int
(** Number of maximal executions (no memoisation; benchmarks/tests). *)

val find_deadlock :
  ?max_states:int -> ?stats:Explorer.stats -> 'ts System.t ->
  Interleaving.t option
(** A witness execution reaching a state where no transition is enabled
    but some thread still offers steps (it is blocked on a lock) —
    i.e. a deadlock.  [None] if every blocked-free path ends with all
    threads out of steps. *)

val sample_behaviours :
  ?max_actions:int ->
  seed:int ->
  runs:int ->
  ?stats:Explorer.stats ->
  'ts System.t ->
  Behaviour.Set.t
(** A randomised scheduler: [runs] executions with uniformly chosen
    enabled transitions, collecting their behaviours (prefix-closed).
    Sound under-approximation of {!behaviours} for systems too large to
    enumerate; deterministic for a fixed [seed]. *)
