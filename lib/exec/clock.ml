(* The clock (and its C stub) lives in Safeopt_obs so the telemetry
   layer can timestamp without depending on this library; re-exported
   here for the existing call sites. *)

let now = Safeopt_obs.Clock.now
let elapsed = Safeopt_obs.Clock.elapsed
