open Safeopt_trace

let adjacent_race vol i =
  let arr = Array.of_list i in
  let n = Array.length arr in
  let rec go k =
    if k + 1 >= n then None
    else
      let p = arr.(k) and q = arr.(k + 1) in
      if
        (not (Thread_id.equal p.Interleaving.tid q.Interleaving.tid))
        && Action.conflicting vol p.Interleaving.action q.Interleaving.action
      then Some (k, k + 1)
      else go (k + 1)
  in
  go 0

let has_adjacent_race vol i = Option.is_some (adjacent_race vol i)

let hb_race vol i =
  let hb = Happens_before.make vol i in
  let arr = Array.of_list i in
  let n = Array.length arr in
  let found = ref None in
  (try
     for a = 0 to n - 1 do
       for b = a + 1 to n - 1 do
         if
           (not
              (Thread_id.equal arr.(a).Interleaving.tid
                 arr.(b).Interleaving.tid))
           && Action.conflicting vol arr.(a).Interleaving.action
                arr.(b).Interleaving.action
           && not (Happens_before.ordered hb a b)
         then begin
           found := Some (a, b);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

let has_hb_race vol i = Option.is_some (hb_race vol i)

let find_racy_execution vol ts ~max_states =
  Explorer.find_adjacent_race ~max_states vol (Traceset_system.make ts)

let traceset_drf vol ts ~max_states =
  Option.is_none (find_racy_execution vol ts ~max_states)
