(** Int-array hash keys for state digests.

    The generic [Hashtbl.hash] only inspects a bounded prefix of a
    structure, which degenerates for scheduler states differing only
    deep in memory; this module hashes the full array (FNV-1a).  Shared
    by the sequential explorer's hash-consing tables and the sharded
    tables of the parallel engine ({!Par}). *)

type t = int array

val equal : t -> t -> bool
val hash : t -> int
