(** The unified exploration engine.

    A depth-first scheduler over an abstract thread system
    ({!System.t}) and a generic memoised search over explicit transition
    graphs ({!type-graph}).  All exhaustive analyses in the repository —
    behaviour enumeration, state counting, race and deadlock witness
    searches, TSO/PSO machine exploration — run on this engine.

    Three properties distinguish it from a naive search:

    - {b Hash-consed states.}  Scheduler states are digested to compact
      int tuples: thread-state keys are interned once per distinct
      thread configuration, shared memory and the monitor table are
      interned once per distinct value, and the memo/visited tables are
      keyed on the resulting digest.  Successor states update only the
      digest component their action touches.

    - {b Sleep-set partial-order reduction.}  When a [local] predicate
      is supplied, exploration combines persistent-set selection with
      Godefroid-style sleep sets over an independence relation derived
      from {!Action.conflicting} (plus monitor and external-action
      dependence).  Reduced and unreduced behaviour sets coincide; see
      DESIGN.md for the soundness argument.

    - {b Streaming.}  Maximal executions are produced as a lazy
      {!Seq.t}, so consumers searching for a witness stop at the first
      hit instead of materialising the full (exponential) list.

    Analyses are exact for systems whose global state graph is finite
    and acyclic.  A cycle raises {!Cyclic}; exceeding the state budget
    raises {!Too_many_states}. *)

open Safeopt_trace

exception Cyclic
exception Too_many_states of int

val default_max_states : int

(** {1 Exploration statistics} *)

type stats = {
  mutable states : int;  (** distinct states visited *)
  mutable edges : int;  (** transitions traversed *)
  mutable memo_hits : int;  (** visits answered from the memo table *)
  mutable por_cuts : int;  (** transitions pruned by the reduction *)
  mutable peak_frontier : int;
      (** maximum DFS stack depth (sequential) or per-worker frontier
          buffer length (parallel) *)
  mutable wall : float;  (** accumulated wall-clock seconds (monotonic) *)
  mutable domains : int;  (** pool size of the last parallel run; 0 if
                              every run was sequential *)
  mutable steals : int;
      (** successful steal scans across workers (each moves up to half
          of a victim deque) *)
  mutable lock_waits : int;
      (** genuine starvation parks across workers: a worker slept on
          the scheduler's condition variable and woke to more work
          (termination and abort wakeups are not counted) *)
}

val create_stats : unit -> stats
val reset_stats : stats -> unit

val merge_stats : into:stats -> stats -> unit
(** Aggregate a (per-domain) record into an accumulator: counters add,
    [peak_frontier] and [domains] take the maximum.  Parallel runs keep
    one private record per worker domain and merge them at join, so no
    two domains ever mutate the same record. *)

val pp_stats : Format.formatter -> stats -> unit
(** Human-readable rendering.  The parallel counters are printed only
    when [domains > 0], so sequential output is unchanged. *)

val stats_to_json : stats -> string
(** One-line JSON object (states, edges, memo_hits, por_cuts,
    peak_frontier, wall_s, domains, steals, lock_waits). *)

val publish : into:Safeopt_obs.Metrics.t -> stats -> unit
(** Record a stats delta into a metrics registry ([explorer.*]
    counters and gauges).  [pp_stats] and [stats_to_json] render
    through a fresh one-stripe registry via this, so the registry is
    the single source of truth for the compatibility views. *)

val of_registry : Safeopt_obs.Metrics.t -> stats
(** Read the [explorer.*] metrics of a registry back into a stats
    record (inverse of {!publish} on a fresh registry). *)

val live_progress : unit -> stats
(** A consistent point-in-time view of total exploration progress:
    everything already published into [Metrics.global] {e plus} the
    deltas of every stats record a run is actively mutating (entry
    points in flight, per-worker records of a parallel run).  Safe to
    call from any domain — this is the heartbeat sampler's progress
    source.  The hand-off from "in flight" to "published" happens under
    the same lock this reads, so consecutive calls are monotone in
    every cumulative counter, and after the run returns the view equals
    the registry alone.  Meaningful only while [Metrics.enabled ()]. *)

(** {1 Independence} *)

val independent : Thread_id.t * Action.t -> Thread_id.t * Action.t -> bool
(** The static independence relation underlying the reduction: two
    transitions commute iff they belong to different threads, their
    actions do not conflict as memory accesses (volatility is irrelevant
    for commutation), they do not touch the same monitor, and they are
    not both external (the order of external actions is the observable
    behaviour). *)

(** {1 Exhaustive analyses over thread systems}

    {2 Parallel exploration}

    The exhaustive analyses below accept [?jobs] / [?pool] to run the
    state-space search across multiple domains ({!Par}).  [?pool] (a
    caller-managed {!Par.Pool.t}, reused across many explorations)
    takes precedence over [?jobs] (a one-shot pool per call, resolved
    through {!Par.resolve_jobs}: [0] means all recommended cores).
    When neither is given, or the resolved size is 1, the sequential
    engine runs completely unchanged — no mutexes, no atomics.

    The parallel engine discovers the state graph across per-worker
    work-stealing deques ({!Par.Ws}: own deque LIFO, steals FIFO;
    dedupe through the striped packed digest table {!Par.Ptbl}), then
    folds results over the discovered compact graph sequentially.  The
    full reduction survives parallelism: persistent-set selection is a
    pure per-state decision, and sleep sets travel {e inside} each work
    item, with per-state refinement (intersection + re-expansion) in
    the digest table's meta slots converging to an order-independent
    fixpoint.  {b Results are identical} to the sequential engine:
    same behaviour sets, same state counts — [count_states] at
    [jobs N] equals [jobs 1] {e exactly}, with or without [local] —
    same DRF verdicts, same [Cyclic] / [Too_many_states] outcomes.
    Only race-witness {e choice} may differ where several witnesses
    exist, and under reduction the [edges]/[por_cuts] {e work}
    counters may exceed the sequential figures (sleep-set refinements
    re-expand a state; the state and result sets are unaffected). *)

val behaviours :
  ?max_states:int ->
  ?local:(Action.t -> bool) ->
  ?stats:stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  'ts System.t ->
  Behaviour.Set.t
(** The set of behaviours of all executions.  Prefix-closed.

    [local] enables the reduction (sleep sets sequentially, persistent
    sets under [jobs]/[pool]); it must return [true] only for actions
    that are invisible (not external) and independent of every other
    thread — accesses to locations touched by a single thread.  The
    behaviour set is identical with and without [local], and with and
    without parallelism. *)

val count_states :
  ?max_states:int ->
  ?local:(Action.t -> bool) ->
  ?stats:stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  'ts System.t ->
  int
(** Number of distinct scheduler states explored; [local] as in
    {!behaviours} (the reduced count can be much smaller).  The count
    is exact across parallelism: [jobs N] equals [jobs 1] for every
    [N], with or without [local] — parallel work items carry their own
    sleep sets, so the parallel search prunes exactly as hard as the
    sequential one. *)

val maximal_executions_seq :
  ?max_steps:int -> ?stats:stats -> 'ts System.t -> Interleaving.t Seq.t
(** All executions that cannot be extended, as a lazy stream in
    scheduler order.  Consuming a prefix only pays for the transitions
    actually traversed; [max_steps] bounds that number across the whole
    stream.  The stream is re-evaluable (each traversal restarts the
    search, re-counting steps). *)

val maximal_executions :
  ?max_steps:int -> ?stats:stats -> 'ts System.t -> Interleaving.t list
(** [List.of_seq (maximal_executions_seq ...)]. *)

val count_executions : ?max_steps:int -> ?stats:stats -> 'ts System.t -> int

val find_adjacent_race :
  ?max_states:int ->
  ?stats:stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Location.Volatile.t ->
  'ts System.t ->
  Interleaving.t option
(** A witness execution whose last two actions are adjacent conflicting
    accesses by different threads, if one exists.  Each state's enabled
    set is computed once and shared between the visit and the per-edge
    race checks.  Under [jobs]/[pool] the existence verdict is
    deterministic and agrees with the sequential search; the particular
    witness returned may differ (any adjacent race is a valid
    witness). *)

val is_drf :
  ?max_states:int ->
  ?stats:stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Location.Volatile.t ->
  'ts System.t ->
  bool

val find_deadlock :
  ?max_states:int -> ?stats:stats -> 'ts System.t -> Interleaving.t option
(** A witness execution reaching a state with no enabled transition
    while some thread still offers steps (blocked on a lock). *)

(** {1 Randomised sampling} *)

val sample_runs :
  ?max_actions:int -> seed:int -> runs:int -> 'ts System.t -> Behaviour.t Seq.t
(** A lazy stream of [runs] behaviours from a randomised scheduler.
    Run [i] derives its generator from [(seed, i)], so any prefix of the
    stream is deterministic and independent of how much is consumed. *)

val sample_behaviours :
  ?max_actions:int ->
  seed:int ->
  runs:int ->
  ?stats:stats ->
  'ts System.t ->
  Behaviour.Set.t
(** Prefix-closed union of {!sample_runs}.  Sound under-approximation of
    {!behaviours} for systems too large to enumerate. *)

(** {1 Generic graph exploration}

    For machines whose transition relation is not a {!System.t} — the
    TSO and PSO store-buffer machines — the engine exposes a memoised
    behaviour search over an explicit graph. *)

type 'st graph = {
  graph_initial : 'st;
  graph_transitions : 'st -> (Action.t option * 'st) list;
      (** [None] labels an internal transition (e.g. a buffer drain). *)
  graph_digest : 'st -> int list;
      (** An injective int encoding of the state; the engine interns it. *)
}

val graph_behaviours :
  ?max_states:int ->
  ?stats:stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  'st graph ->
  Behaviour.Set.t
(** Prefix-closed behaviour set of the graph, memoised on the interned
    digest.  Raises {!Cyclic} / {!Too_many_states} as above.
    [jobs]/[pool] parallelise the graph discovery as described under
    {e Parallel exploration}; the resulting set is identical.  Under
    [jobs]/[pool] the engine calls [graph_transitions] and
    [graph_digest] from several worker domains concurrently, so any
    state the closures share (e.g. interning tables) must be
    thread-safe — {!Par.Intern} is made for this. *)
