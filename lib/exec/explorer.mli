(** The unified exploration engine.

    A depth-first scheduler over an abstract thread system
    ({!System.t}) and a generic memoised search over explicit transition
    graphs ({!type-graph}).  All exhaustive analyses in the repository —
    behaviour enumeration, state counting, race and deadlock witness
    searches, TSO/PSO machine exploration — run on this engine.

    Three properties distinguish it from a naive search:

    - {b Hash-consed states.}  Scheduler states are digested to compact
      int tuples: thread-state keys are interned once per distinct
      thread configuration, shared memory and the monitor table are
      interned once per distinct value, and the memo/visited tables are
      keyed on the resulting digest.  Successor states update only the
      digest component their action touches.

    - {b Sleep-set partial-order reduction.}  When a [local] predicate
      is supplied, exploration combines persistent-set selection with
      Godefroid-style sleep sets over an independence relation derived
      from {!Action.conflicting} (plus monitor and external-action
      dependence).  Reduced and unreduced behaviour sets coincide; see
      DESIGN.md for the soundness argument.

    - {b Streaming.}  Maximal executions are produced as a lazy
      {!Seq.t}, so consumers searching for a witness stop at the first
      hit instead of materialising the full (exponential) list.

    Analyses are exact for systems whose global state graph is finite
    and acyclic.  A cycle raises {!Cyclic}; exceeding the state budget
    raises {!Too_many_states}. *)

open Safeopt_trace

exception Cyclic
exception Too_many_states of int

val default_max_states : int

(** {1 Exploration statistics} *)

type stats = {
  mutable states : int;  (** distinct states visited *)
  mutable edges : int;  (** transitions traversed *)
  mutable memo_hits : int;  (** visits answered from the memo table *)
  mutable por_cuts : int;  (** transitions pruned by the reduction *)
  mutable peak_frontier : int;  (** maximum DFS stack depth *)
  mutable wall : float;  (** accumulated wall-clock seconds *)
}

val create_stats : unit -> stats
val reset_stats : stats -> unit
val pp_stats : Format.formatter -> stats -> unit

val stats_to_json : stats -> string
(** One-line JSON object (states, edges, memo_hits, por_cuts,
    peak_frontier, wall_s). *)

(** {1 Independence} *)

val independent : Thread_id.t * Action.t -> Thread_id.t * Action.t -> bool
(** The static independence relation underlying the reduction: two
    transitions commute iff they belong to different threads, their
    actions do not conflict as memory accesses (volatility is irrelevant
    for commutation), they do not touch the same monitor, and they are
    not both external (the order of external actions is the observable
    behaviour). *)

(** {1 Exhaustive analyses over thread systems} *)

val behaviours :
  ?max_states:int ->
  ?local:(Action.t -> bool) ->
  ?stats:stats ->
  'ts System.t ->
  Behaviour.Set.t
(** The set of behaviours of all executions.  Prefix-closed.

    [local] enables the sleep-set reduction; it must return [true] only
    for actions that are invisible (not external) and independent of
    every other thread — accesses to locations touched by a single
    thread.  The behaviour set is identical with and without [local]. *)

val count_states :
  ?max_states:int ->
  ?local:(Action.t -> bool) ->
  ?stats:stats ->
  'ts System.t ->
  int
(** Number of distinct scheduler states explored; [local] as in
    {!behaviours} (the reduced count can be much smaller). *)

val maximal_executions_seq :
  ?max_steps:int -> ?stats:stats -> 'ts System.t -> Interleaving.t Seq.t
(** All executions that cannot be extended, as a lazy stream in
    scheduler order.  Consuming a prefix only pays for the transitions
    actually traversed; [max_steps] bounds that number across the whole
    stream.  The stream is re-evaluable (each traversal restarts the
    search, re-counting steps). *)

val maximal_executions :
  ?max_steps:int -> ?stats:stats -> 'ts System.t -> Interleaving.t list
(** [List.of_seq (maximal_executions_seq ...)]. *)

val count_executions : ?max_steps:int -> ?stats:stats -> 'ts System.t -> int

val find_adjacent_race :
  ?max_states:int ->
  ?stats:stats ->
  Location.Volatile.t ->
  'ts System.t ->
  Interleaving.t option
(** A witness execution whose last two actions are adjacent conflicting
    accesses by different threads, if one exists.  Each state's enabled
    set is computed once and shared between the visit and the per-edge
    race checks. *)

val is_drf :
  ?max_states:int -> ?stats:stats -> Location.Volatile.t -> 'ts System.t ->
  bool

val find_deadlock :
  ?max_states:int -> ?stats:stats -> 'ts System.t -> Interleaving.t option
(** A witness execution reaching a state with no enabled transition
    while some thread still offers steps (blocked on a lock). *)

(** {1 Randomised sampling} *)

val sample_runs :
  ?max_actions:int -> seed:int -> runs:int -> 'ts System.t -> Behaviour.t Seq.t
(** A lazy stream of [runs] behaviours from a randomised scheduler.
    Run [i] derives its generator from [(seed, i)], so any prefix of the
    stream is deterministic and independent of how much is consumed. *)

val sample_behaviours :
  ?max_actions:int ->
  seed:int ->
  runs:int ->
  ?stats:stats ->
  'ts System.t ->
  Behaviour.Set.t
(** Prefix-closed union of {!sample_runs}.  Sound under-approximation of
    {!behaviours} for systems too large to enumerate. *)

(** {1 Generic graph exploration}

    For machines whose transition relation is not a {!System.t} — the
    TSO and PSO store-buffer machines — the engine exposes a memoised
    behaviour search over an explicit graph. *)

type 'st graph = {
  graph_initial : 'st;
  graph_transitions : 'st -> (Action.t option * 'st) list;
      (** [None] labels an internal transition (e.g. a buffer drain). *)
  graph_digest : 'st -> int list;
      (** An injective int encoding of the state; the engine interns it. *)
}

val graph_behaviours :
  ?max_states:int -> ?stats:stats -> 'st graph -> Behaviour.Set.t
(** Prefix-closed behaviour set of the graph, memoised on the interned
    digest.  Raises {!Cyclic} / {!Too_many_states} as above. *)
