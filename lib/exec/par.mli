(** Domain-parallel work-pool primitives for the exploration engine.

    Built on the stdlib multicore primitives only ([Domain], [Atomic],
    [Mutex], [Condition]) — no external scheduler dependency.  Three
    layers:

    - {!Pool}: a fixed pool of worker domains reusable across many
      parallel sections (spawning a domain is expensive; a pool
      amortises it over a corpus of explorations).
    - {!Wq}: a shared chunked work queue of frontier states with
      termination detection via an atomic in-flight counter — the
      substrate of the parallel state-space search.
    - {!Intern} / {!Itbl}: sharded (striped) hash tables for the
      hash-consing the engine keys everything on: one mutex per stripe,
      ids drawn from an atomic counter.  Ids are stable within a run
      (same key, same id) but their numeric order varies between runs;
      they are only ever used for equality, so every derived result
      (state counts, behaviour sets) is deterministic.

    Determinism contract: parallel explorations built on these
    primitives visit the same state set and produce the same canonical
    result values as their sequential counterparts; only internal id
    assignment and witness-path {e choice} (where several witnesses
    exist) may differ. *)

val resolve_jobs : int -> int
(** [resolve_jobs 0] is [Domain.recommended_domain_count ()]; positive
    [n] is [n].  @raise Invalid_argument on negative input. *)

(** {1 Domain pool} *)

module Pool : sig
  type t

  val create : int -> t
  (** [create n] spawns [n - 1] worker domains (the caller participates
      as worker 0 in every {!run}).  [n <= 1] creates a pool that runs
      everything in the calling domain. *)

  val size : t -> int
  (** Total workers, caller included. *)

  val run : t -> (int -> unit) -> unit
  (** [run t f] executes [f w] on every worker [w] in [0 .. size-1]
      (worker 0 is the calling domain) and returns when all have
      finished.  If any worker raises, the first exception is re-raised
      in the caller after the join.  Not reentrant: do not call [run]
      from inside [f].  When the {!Safeopt_obs.Tracer} sink is live,
      each worker's participation is recorded as a ["pool.worker"] span
      on its own domain lane; with tracing disabled the job runs
      untouched. *)

  val map_list : t -> (int -> 'a -> 'b) -> 'a list -> 'b list
  (** Dynamic parallel map: elements are claimed one at a time from an
      atomic counter, so uneven task costs balance across workers.
      Results are returned in input order.  [f] receives the element
      index and the element. *)

  val shutdown : t -> unit
  (** Join all worker domains.  The pool must not be used afterwards. *)

  val with_pool : int -> (t -> 'a) -> 'a
  (** [with_pool jobs f]: create (after {!resolve_jobs}), run [f],
      always shutdown. *)
end

val dispatch :
  ?jobs:int ->
  ?pool:Pool.t ->
  seq:(unit -> 'a) ->
  par:(Pool.t -> 'a) ->
  unit ->
  'a
(** The one dispatcher behind every [?jobs ?pool] entry point: [?pool]
    wins over [?jobs]; a size-1 pool or a job count resolving to 1 runs
    [seq] — the sequential path, unchanged, paying no synchronisation.
    With [?jobs] (and no pool) a one-shot pool is created for the call
    and shut down afterwards. *)

(** {1 Shared chunked work queue} *)

module Wq : sig
  type 'a t

  val create : unit -> 'a t

  val seed : 'a t -> 'a -> unit
  (** Enqueue an initial item (before workers start). *)

  val run :
    'a t ->
    ?on_wait:(float -> unit) ->
    ?on_chunk:(int -> unit) ->
    ?on_peak:(int -> unit) ->
    ('a -> ('a -> unit) -> unit) ->
    unit
  (** Worker loop: repeatedly take an item and call [f item push],
      where [push] enqueues newly discovered work.  Each worker keeps a
      local LIFO buffer and spills chunks to the shared queue when the
      buffer grows past a threshold or when other workers are starving;
      [on_chunk] fires per shared chunk taken with the shared queue
      depth (chunks still queued) observed right after the pop,
      [on_wait] per block on the queue's condition variable with the
      measured wait in seconds (monotonic clock), [on_peak] with the
      local buffer length after each push.  Returns when the in-flight
      counter hits zero (all discovered work processed) or when any
      worker raised — the exception aborts the queue (waking all
      waiters) and is re-raised from that worker's [run]. *)
end

(** {1 Sharded hash-consing tables} *)

module Intern : sig
  type t

  val create : unit -> t

  val id : t -> string -> int
  (** Thread-safe interning: equal strings get equal ids; fresh strings
      draw the next id from an atomic counter.  Striped by hash, one
      mutex per stripe. *)
end

module Itbl : sig
  type t

  val create : unit -> t

  val intern : t -> Ikey.t -> int
  (** Thread-safe interning of int-array digests. *)

  val intern_fresh : t -> Ikey.t -> int * bool
  (** Like {!intern}, also reporting whether the key was fresh.  The
      worker that interns a state first (and only that worker) sees
      [true] — the parallel search uses this to expand each state
      exactly once. *)

  val length : t -> int
end
