(** Domain-parallel work-pool primitives for the exploration engine.

    Built on the stdlib multicore primitives only ([Domain], [Atomic],
    [Mutex], [Condition]) — no external scheduler dependency.  Four
    layers:

    - {!Pool}: a fixed pool of worker domains reusable across many
      parallel sections (spawning a domain is expensive; a pool
      amortises it over a corpus of explorations).
    - {!Deque}: a lock-free Chase–Lev work-stealing deque — the owner
      pushes and pops at the bottom (LIFO, cache-hot), thieves take at
      the top (FIFO, oldest and typically largest subtrees first).
    - {!Ws}: the work-stealing scheduler tying one deque per worker to
      an atomic in-flight termination protocol and a spin-then-park
      idle path — the substrate of the parallel state-space search.
    - {!Intern} / {!Ptbl}: concurrent hash-consing.  [Intern] is the
      sharded string table; [Ptbl] packs int-array digests into
      unboxed arenas behind striped open-addressing index tables, with
      one mutable meta slot per entry for engine bookkeeping.  Ids are
      drawn from an atomic counter: stable within a run (same key,
      same id), dense in [0, length)], but their numeric order varies
      between runs — they are only ever used for equality and array
      indexing, so every derived result (state counts, behaviour sets)
      is deterministic.

    Determinism contract: parallel explorations built on these
    primitives visit the same state set and produce the same canonical
    result values as their sequential counterparts; only internal id
    assignment and witness-path {e choice} (where several witnesses
    exist) may differ. *)

val resolve_jobs : int -> int
(** [resolve_jobs 0] is [Domain.recommended_domain_count ()]; positive
    [n] is [n].  @raise Invalid_argument on negative input. *)

(** {1 Domain pool} *)

module Pool : sig
  type t

  val create : int -> t
  (** [create n] spawns [n - 1] worker domains (the caller participates
      as worker 0 in every {!run}).  [n <= 1] creates a pool that runs
      everything in the calling domain. *)

  val size : t -> int
  (** Total workers, caller included. *)

  val run : t -> (int -> unit) -> unit
  (** [run t f] executes [f w] on every worker [w] in [0 .. size-1]
      (worker 0 is the calling domain) and returns when all have
      finished.  If any worker raises, the first exception is re-raised
      in the caller after the join.  Not reentrant: do not call [run]
      from inside [f].  When the {!Safeopt_obs.Tracer} sink is live,
      each worker's participation is recorded as a ["pool.worker"] span
      on its own domain lane; with tracing disabled the job runs
      untouched. *)

  val map_list : t -> (int -> 'a -> 'b) -> 'a list -> 'b list
  (** Dynamic parallel map: elements are claimed one at a time from an
      atomic counter, so uneven task costs balance across workers.
      Results are returned in input order.  [f] receives the element
      index and the element. *)

  val shutdown : t -> unit
  (** Join all worker domains.  The pool must not be used afterwards. *)

  val with_pool : int -> (t -> 'a) -> 'a
  (** [with_pool jobs f]: create (after {!resolve_jobs}), run [f],
      always shutdown. *)
end

val dispatch :
  ?jobs:int ->
  ?pool:Pool.t ->
  seq:(unit -> 'a) ->
  par:(Pool.t -> 'a) ->
  unit ->
  'a
(** The one dispatcher behind every [?jobs ?pool] entry point: [?pool]
    wins over [?jobs]; a size-1 pool or a job count resolving to 1 runs
    [seq] — the sequential path, unchanged, paying no synchronisation.
    With [?jobs] (and no pool) a one-shot pool is created for the call
    and shut down afterwards. *)

(** {1 Chase–Lev work-stealing deque} *)

module Deque : sig
  type 'a t

  val create : unit -> 'a t

  val push : 'a t -> 'a -> unit
  (** Owner only: push at the bottom.  Grows the (atomic-published)
      circular buffer by doubling when full; the old buffer is never
      mutated again, so in-flight steals validate safely. *)

  val pop : 'a t -> 'a option
  (** Owner only: pop at the bottom (LIFO).  On the last element the
      owner races pending thieves with a CAS on [top]. *)

  val steal : 'a t -> 'a option
  (** Any domain: take the oldest element (FIFO).  One CAS on [top] is
      the linearisation point; [None] means the deque looked empty or
      the CAS lost a race (callers just move to the next victim). *)

  val steal_half : 'a t -> into:'a t -> ('a * int) option
  (** Steal up to half of the victim's observed size — one CAS per
      element, never a single CAS over a range (a range-CAS is unsound
      against a concurrent owner [pop], which only synchronises on the
      very last element).  The first stolen element is returned to be
      processed immediately; the rest are pushed into [into] (the
      thief's own deque, whose owner the caller must be).  The [int] is
      the total number of elements taken. *)

  val size : 'a t -> int
  (** Racy size estimate: exact when called by the owner, a lower
      bound for thieves deciding whether a victim is worth a visit. *)
end

(** {1 Work-stealing scheduler} *)

module Ws : sig
  type 'a t

  val create : int -> 'a t
  (** [create nw]: one deque per worker [0 .. nw-1]. *)

  val seed : 'a t -> 'a -> unit
  (** Enqueue an initial item into worker 0's deque (before workers
      start). *)

  val run :
    'a t ->
    int ->
    ?on_wait:(float -> unit) ->
    ?on_steal:(int -> unit) ->
    ?on_peak:(int -> unit) ->
    ('a -> ('a -> unit) -> unit) ->
    unit
  (** [run t w f]: worker [w]'s loop.  Repeatedly pop the own deque and
      call [f item push], where [push] makes newly discovered work
      available (own deque, bottom).  An empty deque triggers one
      round-robin steal scan over the other workers ({!Deque.steal_half}
      per victim), then a bounded spin, then a park on a condition
      variable; pushers wake parked workers through a sleeper count, so
      the un-contended push path stays lock-free.  Returns when the
      in-flight counter hits zero (every discovered item processed) or
      when any worker raised — the exception aborts the scheduler
      (waking all waiters) and is re-raised from that worker's [run].

      [on_steal] fires per successful steal scan with the number of
      items taken; [on_peak] with the own deque size after each push;
      [on_wait] with the seconds spent parked (monotonic clock) — only
      for parks that wake up to more work, i.e. genuine starvation:
      termination and abort wakeups are bookkeeping, not contention,
      and are not counted. *)
end

(** {1 Sharded hash-consing tables} *)

module Intern : sig
  type t

  val create : unit -> t

  val id : t -> string -> int
  (** Thread-safe interning: equal strings get equal ids; fresh strings
      draw the next id from an atomic counter.  Striped by hash, one
      mutex per stripe. *)
end

(** Packed-arena digest table: the visited-set of the exploration
    engine.  Digests are copied once into a bump-allocated unboxed
    [int array] arena and addressed through open-addressing slot
    tables (linear probing, offsets never move) — no per-state boxed
    key, no bucket cons cells.  Each entry carries one ['a] meta slot
    read-modified under the stripe lock. *)
module Ptbl : sig
  type 'a t

  val create : ?stripes:int -> dummy:'a -> unit -> 'a t
  (** Concurrent table: [stripes] (a power of two, default 64)
      independently locked shards.  [dummy] fills unused meta slots;
      it is never returned for an interned entry. *)

  val create_local : dummy:'a -> unit -> 'a t
  (** Single-stripe variant with the mutex elided — same packed
      layout for the sequential engine, no synchronisation cost. *)

  val update : 'a t -> Ikey.t -> ('a option -> 'a * 'r) -> int * 'r
  (** [update t d f]: the one locked read-modify-write.  Under the
      stripe lock of digest [d], call [f None] if [d] is fresh (the
      returned meta is stored and [d] is assigned the next id) or
      [f (Some meta)] if present (the returned meta replaces the
      stored one).  Returns [d]'s id and [f]'s second component.
      [f] must be small and must not re-enter the table. *)

  val sync : 'a t -> Ikey.t -> (unit -> 'r) -> 'r
  (** [sync t d f]: run [f] under the stripe lock of digest [d]
      without probing — for publishing mutations of a meta record
      obtained from an earlier {!update}.  Lock-free tables
      ({!create_local}) run [f] directly. *)

  val intern : unit t -> Ikey.t -> int
  (** Plain hash-consing for tables with no per-entry bookkeeping. *)

  val intern_fresh : unit t -> Ikey.t -> int * bool
  (** Like {!intern}, also reporting whether the key was fresh.  The
      worker that interns a digest first (and only that worker) sees
      [true]. *)

  val iter : 'a t -> (int -> 'a -> unit) -> unit
  (** Iterate over every (id, meta) entry.  Takes no locks: call only
      once all workers have joined. *)

  val length : 'a t -> int

  val words : 'a t -> int
  (** Arena occupancy: total packed digest words (including the
      per-entry length header) across all stripes. *)

  val slot_words : 'a t -> int
  (** Index occupancy: total open-addressing slots allocated. *)
end
