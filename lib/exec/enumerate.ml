(* Compatibility layer over the unified {!Explorer} engine. *)

exception Cyclic = Explorer.Cyclic
exception Too_many_states = Explorer.Too_many_states

let default_max_states = Explorer.default_max_states
let behaviours = Explorer.behaviours
let maximal_executions = Explorer.maximal_executions
let maximal_executions_seq = Explorer.maximal_executions_seq
let find_adjacent_race = Explorer.find_adjacent_race
let is_drf = Explorer.is_drf
let count_states = Explorer.count_states
let count_executions = Explorer.count_executions
let find_deadlock = Explorer.find_deadlock
let sample_behaviours = Explorer.sample_behaviours
