(* Domain-parallel work-pool primitives: a reusable fixed pool of
   domains, per-worker Chase–Lev work-stealing deques with in-flight
   termination detection, and a packed-arena open-addressing digest
   table.  Stdlib multicore only (Domain / Atomic / Mutex /
   Condition). *)

let resolve_jobs n =
  if n < 0 then invalid_arg "Par.resolve_jobs: negative job count"
  else if n = 0 then Domain.recommended_domain_count ()
  else n

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type t = {
    size : int;
    mu : Mutex.t;
    start : Condition.t;
    finished : Condition.t;
    mutable job : (int -> unit) option;
    mutable epoch : int;  (** bumped per job; workers wait for a change *)
    mutable running : int;  (** workers still inside the current job *)
    mutable closed : bool;
    error : exn option Atomic.t;  (** first failure of the current job *)
    mutable domains : unit Domain.t list;
  }

  let size t = t.size

  let record_error t exn =
    ignore (Atomic.compare_and_set t.error None (Some exn))

  let worker t w =
    let seen = ref 0 in
    let rec loop () =
      Mutex.lock t.mu;
      while (not t.closed) && t.epoch = !seen do
        Condition.wait t.start t.mu
      done;
      if t.closed then Mutex.unlock t.mu
      else begin
        seen := t.epoch;
        let job = Option.get t.job in
        Mutex.unlock t.mu;
        (try job w with exn -> record_error t exn);
        Mutex.lock t.mu;
        t.running <- t.running - 1;
        if t.running = 0 then Condition.broadcast t.finished;
        Mutex.unlock t.mu;
        loop ()
      end
    in
    loop ()

  let create n =
    let size = max 1 n in
    let t =
      {
        size;
        mu = Mutex.create ();
        start = Condition.create ();
        finished = Condition.create ();
        job = None;
        epoch = 0;
        running = 0;
        closed = false;
        error = Atomic.make None;
        domains = [];
      }
    in
    t.domains <-
      List.init (size - 1) (fun i ->
          Domain.spawn (fun () -> worker t (i + 1)));
    t

  (* When a trace sink is live, each worker's participation in a job
     becomes a "pool.worker" span on its own domain lane.  Disabled, the
     job function is returned untouched: no wrapper, no allocation. *)
  let traced f =
    if not (Safeopt_obs.Tracer.enabled ()) then f
    else
      fun w ->
        let sp =
          Safeopt_obs.Tracer.span
            ~attrs:[ ("worker", Safeopt_obs.Event.Int w) ]
            "pool.worker"
        in
        Fun.protect
          ~finally:(fun () -> Safeopt_obs.Tracer.close_span sp)
          (fun () -> f w)

  let run t f =
    let f = traced f in
    if t.size = 1 then f 0
    else begin
      Mutex.lock t.mu;
      t.job <- Some f;
      t.running <- t.size - 1;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.start;
      Mutex.unlock t.mu;
      (try f 0 with exn -> record_error t exn);
      Mutex.lock t.mu;
      while t.running > 0 do
        Condition.wait t.finished t.mu
      done;
      t.job <- None;
      Mutex.unlock t.mu;
      match Atomic.exchange t.error None with
      | Some exn -> raise exn
      | None -> ()
    end

  let shutdown t =
    Mutex.lock t.mu;
    t.closed <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mu;
    List.iter Domain.join t.domains;
    t.domains <- []

  let with_pool jobs f =
    let t = create (resolve_jobs jobs) in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

  let map_list t f xs =
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    run t (fun _ ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            out.(i) <- Some (f i arr.(i));
            loop ()
          end
        in
        loop ());
    Array.to_list (Array.map Option.get out)
end

(* One dispatcher shared by every [?jobs ?pool] entry point in the
   repository: an explicit pool wins over a job count; a resolved
   parallelism of 1 takes the untouched sequential path. *)
let dispatch ?jobs ?pool ~seq ~par () =
  match pool with
  | Some p -> if Pool.size p > 1 then par p else seq ()
  | None -> (
      match jobs with
      | None -> seq ()
      | Some j ->
          let j = resolve_jobs j in
          if j <= 1 then seq () else Pool.with_pool j par)

(* ------------------------------------------------------------------ *)
(* Chase–Lev work-stealing deque                                       *)
(* ------------------------------------------------------------------ *)

(* The classic Chase–Lev deque (SPAA 2005) on OCaml 5 SC atomics: the
   owner pushes and pops at [bottom] (LIFO, no synchronisation beyond
   the atomic stores), thieves take at [top] (FIFO) with one CAS per
   element.  Element cells are read {e before} the validating CAS; this
   is safe under the OCaml memory model because (a) the cell at index
   [i] was published by the owner's atomic store of [bottom > i], which
   the thief has observed, and (b) a cell is only ever overwritten (by
   a buffer lap or a grow) after [top] has advanced past it, which
   makes the thief's CAS on [top] fail.  Reads can therefore never
   observe a torn or future value, only a stale one that the CAS then
   rejects.

   Multi-item steals deliberately take one CAS per element instead of a
   single CAS over a range: with a range-CAS, a concurrent owner [pop]
   that observes a stale [top] may plain-take an element inside the
   thief's claimed range (the owner only CASes on the very last
   element), handing the same item to both sides.  Iterated single
   steals keep the owner protocol untouched and make each element's CAS
   its linearisation point. *)

module Deque = struct
  type 'a t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    tab : 'a array Atomic.t;  (** length is a power of two (or 0) *)
  }

  let create () =
    { top = Atomic.make 0; bottom = Atomic.make 0; tab = Atomic.make [||] }

  (* Racy size estimate: exact for the owner, a lower bound for
     thieves deciding whether a victim is worth visiting. *)
  let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

  (* Owner only.  The new buffer is published through the [tab] atomic;
     the old buffer is never mutated again, so a thief holding it can
     still validate its pending steal. *)
  let grow t b witness =
    let old = Atomic.get t.tab in
    let n = Array.length old in
    let n' = max 16 (2 * n) in
    let fresh = Array.make n' witness in
    let top = Atomic.get t.top in
    for i = top to b - 1 do
      fresh.(i land (n' - 1)) <- old.(i land (n - 1))
    done;
    Atomic.set t.tab fresh

  let push t x =
    let b = Atomic.get t.bottom in
    let tab = Atomic.get t.tab in
    let n = Array.length tab in
    if n = 0 || b - Atomic.get t.top >= n then begin
      grow t b x;
      let tab = Atomic.get t.tab in
      tab.(b land (Array.length tab - 1)) <- x
    end
    else tab.(b land (n - 1)) <- x;
    Atomic.set t.bottom (b + 1)

  let pop t =
    let b = Atomic.get t.bottom - 1 in
    Atomic.set t.bottom b;
    let tp = Atomic.get t.top in
    if b < tp then begin
      (* already empty: restore the canonical empty shape *)
      Atomic.set t.bottom tp;
      None
    end
    else
      let tab = Atomic.get t.tab in
      let x = tab.(b land (Array.length tab - 1)) in
      if b > tp then Some x
      else begin
        (* last element: race the thieves for it *)
        let won = Atomic.compare_and_set t.top tp (tp + 1) in
        Atomic.set t.bottom (tp + 1);
        if won then Some x else None
      end

  let steal t =
    let tp = Atomic.get t.top in
    let b = Atomic.get t.bottom in
    if b - tp <= 0 then None
    else
      let tab = Atomic.get t.tab in
      let n = Array.length tab in
      if n = 0 then None
      else
        let x = tab.(tp land (n - 1)) in
        if Atomic.compare_and_set t.top tp (tp + 1) then Some x else None

  (* Steal-half policy: claim up to half of the victim's observed size
     (always at least one), one CAS per element; surplus elements land
     in the thief's own deque.  Returns the first stolen element and
     the number taken. *)
  let steal_half victim ~into =
    let target = max 1 ((size victim + 1) / 2) in
    match steal victim with
    | None -> None
    | Some first ->
        let taken = ref 1 in
        let continue = ref true in
        while !continue && !taken < target do
          match steal victim with
          | Some x ->
              push into x;
              incr taken
          | None -> continue := false
        done;
        Some (first, !taken)
end

(* ------------------------------------------------------------------ *)
(* Work-stealing scheduler                                             *)
(* ------------------------------------------------------------------ *)

module Ws = struct
  type 'a t = {
    deques : 'a Deque.t array;
    in_flight : int Atomic.t;  (** items discovered but not yet processed *)
    aborted : bool Atomic.t;
    mu : Mutex.t;
    wake : Condition.t;
    sleepers : int Atomic.t;  (** parked workers; written under [mu] *)
  }

  let create nw =
    {
      deques = Array.init (max 1 nw) (fun _ -> Deque.create ());
      in_flight = Atomic.make 0;
      aborted = Atomic.make false;
      mu = Mutex.create ();
      wake = Condition.create ();
      sleepers = Atomic.make 0;
    }

  let seed t x =
    Atomic.incr t.in_flight;
    Deque.push t.deques.(0) x

  (* The last finished item wakes every parked worker so they can
     observe completion; so does an abort. *)
  let finish_item t =
    if Atomic.fetch_and_add t.in_flight (-1) = 1 then begin
      Mutex.lock t.mu;
      Condition.broadcast t.wake;
      Mutex.unlock t.mu
    end

  let abort t =
    Atomic.set t.aborted true;
    Mutex.lock t.mu;
    Condition.broadcast t.wake;
    Mutex.unlock t.mu

  (* No lost wakeups: a parked worker registers in [sleepers] under
     [mu] and re-scans every deque before waiting; a producer pushes
     (an SC atomic store of [bottom]) and then reads [sleepers].
     Either the producer sees the sleeper and signals under [mu], or
     the sleeper's registration came later in the SC order and its
     scan sees the pushed item. *)
  let signal_sleepers t =
    if Atomic.get t.sleepers > 0 then begin
      Mutex.lock t.mu;
      Condition.broadcast t.wake;
      Mutex.unlock t.mu
    end

  let any_stealable t =
    Array.exists (fun d -> Deque.size d > 0) t.deques

  let spin_rounds = 32

  let run t w ?(on_wait = fun (_ : float) -> ())
      ?(on_steal = fun (_ : int) -> ()) ?(on_peak = fun (_ : int) -> ()) f =
    let nw = Array.length t.deques in
    let mine = t.deques.(w) in
    let push x =
      Atomic.incr t.in_flight;
      Deque.push mine x;
      on_peak (Deque.size mine);
      if nw > 1 then signal_sleepers t
    in
    let process x =
      match f x push with
      | () -> finish_item t
      | exception exn ->
          finish_item t;
          raise exn
    in
    (* one round-robin pass over the other workers' deques *)
    let try_steal () =
      let rec scan i =
        if i >= nw - 1 then None
        else
          let v = t.deques.((w + 1 + i) mod nw) in
          match Deque.steal_half v ~into:mine with
          | Some (x, taken) ->
              on_steal taken;
              Some x
          | None -> scan (i + 1)
      in
      scan 0
    in
    let park () =
      Mutex.lock t.mu;
      Atomic.incr t.sleepers;
      if
        Atomic.get t.aborted
        || Atomic.get t.in_flight = 0
        || any_stealable t
      then begin
        Atomic.decr t.sleepers;
        Mutex.unlock t.mu
      end
      else begin
        let t0 = Clock.now () in
        Condition.wait t.wake t.mu;
        let dt = Clock.elapsed t0 in
        Atomic.decr t.sleepers;
        Mutex.unlock t.mu;
        (* Genuine starvation only: a wakeup for termination (or an
           abort) is bookkeeping, not contention, and is not counted. *)
        if Atomic.get t.in_flight > 0 && not (Atomic.get t.aborted) then
          on_wait dt
      end
    in
    let rec loop () =
      if Atomic.get t.aborted then ()
      else
        match Deque.pop mine with
        | Some x ->
            process x;
            loop ()
        | None -> acquire 0
    and acquire spins =
      if Atomic.get t.aborted then ()
      else
        match try_steal () with
        | Some x ->
            process x;
            loop ()
        | None ->
            if Atomic.get t.in_flight = 0 then ()
            else if spins < spin_rounds then begin
              Domain.cpu_relax ();
              acquire (spins + 1)
            end
            else begin
              park ();
              loop ()
            end
    in
    try loop ()
    with exn ->
      abort t;
      raise exn
end

(* ------------------------------------------------------------------ *)
(* Sharded hash-consing tables                                         *)
(* ------------------------------------------------------------------ *)

let stripes = 64 (* power of two; stripe = hash land (stripes - 1) *)

module Intern = struct
  type t = {
    counter : int Atomic.t;
    locks : Mutex.t array;
    tbls : (string, int) Hashtbl.t array;
  }

  let create () =
    {
      counter = Atomic.make 0;
      locks = Array.init stripes (fun _ -> Mutex.create ());
      tbls = Array.init stripes (fun _ -> Hashtbl.create 64);
    }

  let id t s =
    let i = Hashtbl.hash s land (stripes - 1) in
    Mutex.lock t.locks.(i);
    let r =
      match Hashtbl.find_opt t.tbls.(i) s with
      | Some id -> id
      | None ->
          let id = Atomic.fetch_and_add t.counter 1 in
          Hashtbl.add t.tbls.(i) s id;
          id
    in
    Mutex.unlock t.locks.(i);
    r
end

(* ------------------------------------------------------------------ *)
(* Packed-state arena with open-addressing digest table               *)
(* ------------------------------------------------------------------ *)

(* The hot visited-set of the exploration engine.  Digests (small int
   arrays) are copied once into a bump-allocated unboxed int arena and
   addressed through an open-addressing (linear probing) slot table —
   no per-state boxed key, no hash-bucket cons cells, no rehash of
   stored keys on resize (slots store arena offsets; the digest words
   never move within a stripe's arena).  Each entry owns one ['a] meta
   slot for engine bookkeeping (sleep sets, edge lists), read-modified
   under the stripe lock.  Global ids are drawn from one atomic
   counter, so they are dense in [0, length) and usable as array
   indices; their numeric order varies between runs and they are only
   ever compared for equality. *)

module Ptbl = struct
  type 'a stripe = {
    mu : Mutex.t;
    mutable slots : int array;  (** local index + 1; 0 = empty *)
    mutable nslots : int;  (** power of two *)
    mutable n : int;  (** entries in this stripe *)
    mutable offs : int array;  (** local index -> arena offset of [len] *)
    mutable gids : int array;  (** local index -> global id *)
    mutable metas : 'a array;  (** local index -> meta slot *)
    mutable arena : int array;  (** [len; words...] packed digests *)
    mutable used : int;
  }

  type 'a t = {
    locked : bool;
    mask : int;  (** stripe count - 1 *)
    counter : int Atomic.t;
    tab : 'a stripe array;
  }

  let make_stripe dummy =
    {
      mu = Mutex.create ();
      slots = Array.make 64 0;
      nslots = 64;
      n = 0;
      offs = Array.make 32 0;
      gids = Array.make 32 0;
      metas = Array.make 32 dummy;
      arena = Array.make 256 0;
      used = 0;
    }

  let create ?(stripes = 64) ~dummy () =
    if stripes land (stripes - 1) <> 0 || stripes <= 0 then
      invalid_arg "Par.Ptbl.create: stripe count must be a power of two";
    {
      locked = stripes > 1;
      mask = stripes - 1;
      counter = Atomic.make 0;
      tab = Array.init stripes (fun _ -> make_stripe dummy);
    }

  (* Single-stripe, lock-free variant for the sequential engine: same
     arena layout, no mutex on the hot path. *)
  let create_local ~dummy () =
    {
      locked = false;
      mask = 0;
      counter = Atomic.make 0;
      tab = [| make_stripe dummy |];
    }

  let length t = Atomic.get t.counter

  let words t =
    Array.fold_left (fun acc s -> acc + s.used) 0 t.tab

  let slot_words t =
    Array.fold_left (fun acc s -> acc + s.nslots) 0 t.tab

  let digest_equal st off (d : int array) =
    let len = Array.length d in
    st.arena.(off) = len
    &&
    let rec go i =
      i >= len || (st.arena.(off + 1 + i) = Array.unsafe_get d i && go (i + 1))
    in
    go 0

  (* Find the slot holding [d], or the empty slot where it belongs. *)
  let probe st h d =
    let m = st.nslots - 1 in
    let rec go i =
      let s = st.slots.(i) in
      if s = 0 then i
      else if digest_equal st st.offs.(s - 1) d then i
      else go ((i + 1) land m)
    in
    go (h land m)

  let rehash st =
    let old = st.slots in
    st.nslots <- st.nslots * 2;
    st.slots <- Array.make st.nslots 0;
    let m = st.nslots - 1 in
    Array.iter
      (fun s ->
        if s <> 0 then begin
          let off = st.offs.(s - 1) in
          (* re-derive the hash from the packed digest *)
          let len = st.arena.(off) in
          let h = ref 0x811c9dc5 in
          for i = off + 1 to off + len do
            h := (!h lxor st.arena.(i)) * 0x01000193 land max_int
          done;
          let rec place i =
            if st.slots.(i) = 0 then st.slots.(i) <- s
            else place ((i + 1) land m)
          in
          place (!h / stripes land m)
        end)
      old

  let grow_entries st dummy =
    let cap = Array.length st.offs in
    if st.n >= cap then begin
      let cap' = 2 * cap in
      let copy a fill =
        let b = Array.make cap' fill in
        Array.blit a 0 b 0 cap;
        b
      in
      st.offs <- copy st.offs 0;
      st.gids <- copy st.gids 0;
      st.metas <- copy st.metas dummy
    end

  let append_arena st (d : int array) =
    let len = Array.length d in
    let need = st.used + len + 1 in
    if need > Array.length st.arena then begin
      let cap' = max need (2 * Array.length st.arena) in
      let fresh = Array.make cap' 0 in
      Array.blit st.arena 0 fresh 0 st.used;
      st.arena <- fresh
    end;
    let off = st.used in
    st.arena.(off) <- len;
    Array.blit d 0 st.arena (off + 1) len;
    st.used <- need;
    off

  (* The one locked read-modify-write every caller goes through:
     [f None] creates the meta for a fresh digest, [f (Some m)] reads
     or mutates the existing one; both run under the stripe lock (keep
     them small and never re-enter the table from [f]). *)
  let update t (d : int array) f =
    let h = Ikey.hash d in
    let st = t.tab.(h land t.mask) in
    if t.locked then Mutex.lock st.mu;
    let r =
      match
        let i = probe st (h / stripes) d in
        let s = st.slots.(i) in
        if s <> 0 then `Found (s - 1)
        else `Empty i
      with
      | `Found l ->
          let meta, r = f (Some st.metas.(l)) in
          st.metas.(l) <- meta;
          (st.gids.(l), r)
      | `Empty i ->
          let meta, r = f None in
          grow_entries st meta;
          let l = st.n in
          st.n <- l + 1;
          st.offs.(l) <- append_arena st d;
          let gid = Atomic.fetch_and_add t.counter 1 in
          st.gids.(l) <- gid;
          st.metas.(l) <- meta;
          st.slots.(i) <- l + 1;
          if 4 * st.n > 3 * st.nslots then rehash st;
          (gid, r)
    in
    if t.locked then Mutex.unlock st.mu;
    r

  (* Unit-specialised entry points for callers that only want
     hash-consed ids with no per-entry bookkeeping. *)
  let intern (t : unit t) d =
    fst (update t d (function Some () -> ((), false) | None -> ((), true)))

  let intern_fresh (t : unit t) d =
    update t d (function Some () -> ((), false) | None -> ((), true))

  (* Run [f] under the stripe lock of digest [d] without probing —
     for publishing updates to a meta record obtained earlier. *)
  let sync t (d : int array) f =
    if not t.locked then f ()
    else begin
      let st = t.tab.(Ikey.hash d land t.mask) in
      Mutex.lock st.mu;
      let r = try f () with exn -> Mutex.unlock st.mu; raise exn in
      Mutex.unlock st.mu;
      r
    end

  (* Sequential iteration over every entry (id, meta).  Call only after
     all workers have joined: no locks are taken. *)
  let iter t f =
    Array.iter
      (fun st ->
        for l = 0 to st.n - 1 do
          f st.gids.(l) st.metas.(l)
        done)
      t.tab
end
