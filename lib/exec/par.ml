(* Domain-parallel work-pool primitives: a reusable fixed pool of
   domains, a shared chunked work queue with in-flight termination
   detection, and sharded hash-consing tables.  Stdlib multicore only
   (Domain / Atomic / Mutex / Condition). *)

let resolve_jobs n =
  if n < 0 then invalid_arg "Par.resolve_jobs: negative job count"
  else if n = 0 then Domain.recommended_domain_count ()
  else n

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type t = {
    size : int;
    mu : Mutex.t;
    start : Condition.t;
    finished : Condition.t;
    mutable job : (int -> unit) option;
    mutable epoch : int;  (** bumped per job; workers wait for a change *)
    mutable running : int;  (** workers still inside the current job *)
    mutable closed : bool;
    error : exn option Atomic.t;  (** first failure of the current job *)
    mutable domains : unit Domain.t list;
  }

  let size t = t.size

  let record_error t exn =
    ignore (Atomic.compare_and_set t.error None (Some exn))

  let worker t w =
    let seen = ref 0 in
    let rec loop () =
      Mutex.lock t.mu;
      while (not t.closed) && t.epoch = !seen do
        Condition.wait t.start t.mu
      done;
      if t.closed then Mutex.unlock t.mu
      else begin
        seen := t.epoch;
        let job = Option.get t.job in
        Mutex.unlock t.mu;
        (try job w with exn -> record_error t exn);
        Mutex.lock t.mu;
        t.running <- t.running - 1;
        if t.running = 0 then Condition.broadcast t.finished;
        Mutex.unlock t.mu;
        loop ()
      end
    in
    loop ()

  let create n =
    let size = max 1 n in
    let t =
      {
        size;
        mu = Mutex.create ();
        start = Condition.create ();
        finished = Condition.create ();
        job = None;
        epoch = 0;
        running = 0;
        closed = false;
        error = Atomic.make None;
        domains = [];
      }
    in
    t.domains <-
      List.init (size - 1) (fun i ->
          Domain.spawn (fun () -> worker t (i + 1)));
    t

  (* When a trace sink is live, each worker's participation in a job
     becomes a "pool.worker" span on its own domain lane.  Disabled, the
     job function is returned untouched: no wrapper, no allocation. *)
  let traced f =
    if not (Safeopt_obs.Tracer.enabled ()) then f
    else
      fun w ->
        let sp =
          Safeopt_obs.Tracer.span
            ~attrs:[ ("worker", Safeopt_obs.Event.Int w) ]
            "pool.worker"
        in
        Fun.protect
          ~finally:(fun () -> Safeopt_obs.Tracer.close_span sp)
          (fun () -> f w)

  let run t f =
    let f = traced f in
    if t.size = 1 then f 0
    else begin
      Mutex.lock t.mu;
      t.job <- Some f;
      t.running <- t.size - 1;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.start;
      Mutex.unlock t.mu;
      (try f 0 with exn -> record_error t exn);
      Mutex.lock t.mu;
      while t.running > 0 do
        Condition.wait t.finished t.mu
      done;
      t.job <- None;
      Mutex.unlock t.mu;
      match Atomic.exchange t.error None with
      | Some exn -> raise exn
      | None -> ()
    end

  let shutdown t =
    Mutex.lock t.mu;
    t.closed <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mu;
    List.iter Domain.join t.domains;
    t.domains <- []

  let with_pool jobs f =
    let t = create (resolve_jobs jobs) in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

  let map_list t f xs =
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    run t (fun _ ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            out.(i) <- Some (f i arr.(i));
            loop ()
          end
        in
        loop ());
    Array.to_list (Array.map Option.get out)
end

(* One dispatcher shared by every [?jobs ?pool] entry point in the
   repository: an explicit pool wins over a job count; a resolved
   parallelism of 1 takes the untouched sequential path. *)
let dispatch ?jobs ?pool ~seq ~par () =
  match pool with
  | Some p -> if Pool.size p > 1 then par p else seq ()
  | None -> (
      match jobs with
      | None -> seq ()
      | Some j ->
          let j = resolve_jobs j in
          if j <= 1 then seq () else Pool.with_pool j par)

(* ------------------------------------------------------------------ *)
(* Work queue                                                          *)
(* ------------------------------------------------------------------ *)

module Wq = struct
  type 'a t = {
    mu : Mutex.t;
    nonempty : Condition.t;
    chunks : 'a list Queue.t;  (** protected by [mu] *)
    queued : int Atomic.t;  (** chunk count, read locklessly for spills *)
    in_flight : int Atomic.t;  (** items discovered but not yet processed *)
    aborted : bool Atomic.t;
  }

  let create () =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      chunks = Queue.create ();
      queued = Atomic.make 0;
      in_flight = Atomic.make 0;
      aborted = Atomic.make false;
    }

  let spill t chunk =
    Mutex.lock t.mu;
    Queue.push chunk t.chunks;
    Atomic.incr t.queued;
    Condition.signal t.nonempty;
    Mutex.unlock t.mu

  let seed t x =
    Atomic.incr t.in_flight;
    spill t [ x ]

  (* The last finished item wakes every idle worker so they can observe
     completion.  Finishing happens outside [mu]; the waiter either
     sees in_flight = 0 on its locked re-check or is woken by this
     broadcast (which must take [mu], hence cannot slip into the window
     between a waiter's check and its wait). *)
  let finish_item t =
    if Atomic.fetch_and_add t.in_flight (-1) = 1 then begin
      Mutex.lock t.mu;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mu
    end

  let abort t =
    Atomic.set t.aborted true;
    Mutex.lock t.mu;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mu

  let take_shared t ~on_wait ~on_chunk =
    Mutex.lock t.mu;
    let rec go () =
      if Atomic.get t.aborted then begin
        Mutex.unlock t.mu;
        None
      end
      else if not (Queue.is_empty t.chunks) then begin
        let c = Queue.pop t.chunks in
        Atomic.decr t.queued;
        let depth = Atomic.get t.queued in
        Mutex.unlock t.mu;
        on_chunk depth;
        Some c
      end
      else if Atomic.get t.in_flight = 0 then begin
        Mutex.unlock t.mu;
        None
      end
      else begin
        let t0 = Clock.now () in
        Condition.wait t.nonempty t.mu;
        on_wait (Clock.elapsed t0);
        go ()
      end
    in
    go ()

  let max_local = 64

  let run t ?(on_wait = fun (_ : float) -> ()) ?(on_chunk = fun (_ : int) -> ())
      ?(on_peak = ignore) f =
    let local = ref [] in
    let nlocal = ref 0 in
    let spill_half () =
      (* keep the newer (hotter) half locally, share the older half *)
      let keep = !nlocal / 2 in
      let rec split i acc rest =
        if i = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> (List.rev acc, [])
          | x :: rest -> split (i - 1) (x :: acc) rest
      in
      let mine, shared = split keep [] !local in
      local := mine;
      nlocal := keep;
      if shared <> [] then spill t shared
    in
    let push x =
      Atomic.incr t.in_flight;
      local := x :: !local;
      incr nlocal;
      on_peak !nlocal;
      (* spill when the buffer overflows, or eagerly when other
         workers appear starved (shared queue empty) *)
      if !nlocal >= max_local || (!nlocal >= 2 && Atomic.get t.queued = 0)
      then spill_half ()
    in
    let process x =
      match f x push with
      | () -> finish_item t
      | exception exn ->
          finish_item t;
          raise exn
    in
    let rec drain () =
      if Atomic.get t.aborted then ()
      else
        match !local with
        | x :: rest ->
            local := rest;
            decr nlocal;
            process x;
            drain ()
        | [] -> (
            match take_shared t ~on_wait ~on_chunk with
            | Some chunk ->
                local := chunk;
                nlocal := List.length chunk;
                drain ()
            | None -> ())
    in
    try drain ()
    with exn ->
      abort t;
      raise exn
end

(* ------------------------------------------------------------------ *)
(* Sharded hash-consing tables                                         *)
(* ------------------------------------------------------------------ *)

let stripes = 64 (* power of two; stripe = hash land (stripes - 1) *)

module Intern = struct
  type t = {
    counter : int Atomic.t;
    locks : Mutex.t array;
    tbls : (string, int) Hashtbl.t array;
  }

  let create () =
    {
      counter = Atomic.make 0;
      locks = Array.init stripes (fun _ -> Mutex.create ());
      tbls = Array.init stripes (fun _ -> Hashtbl.create 64);
    }

  let id t s =
    let i = Hashtbl.hash s land (stripes - 1) in
    Mutex.lock t.locks.(i);
    let r =
      match Hashtbl.find_opt t.tbls.(i) s with
      | Some id -> id
      | None ->
          let id = Atomic.fetch_and_add t.counter 1 in
          Hashtbl.add t.tbls.(i) s id;
          id
    in
    Mutex.unlock t.locks.(i);
    r
end

module Itbl = struct
  module H = Hashtbl.Make (Ikey)

  type t = {
    counter : int Atomic.t;
    locks : Mutex.t array;
    tbls : int H.t array;
  }

  let create () =
    {
      counter = Atomic.make 0;
      locks = Array.init stripes (fun _ -> Mutex.create ());
      tbls = Array.init stripes (fun _ -> H.create 64);
    }

  let intern_fresh t key =
    let i = Ikey.hash key land (stripes - 1) in
    Mutex.lock t.locks.(i);
    let r =
      match H.find_opt t.tbls.(i) key with
      | Some id -> (id, false)
      | None ->
          let id = Atomic.fetch_and_add t.counter 1 in
          H.add t.tbls.(i) key id;
          (id, true)
    in
    Mutex.unlock t.locks.(i);
    r

  let intern t key = fst (intern_fresh t key)
  let length t = Atomic.get t.counter
end
