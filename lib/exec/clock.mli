(** Monotonic timing for exploration statistics and benchmarks.

    [Unix.gettimeofday] is wall-clock time: NTP can step it backwards,
    which would make accumulated {!Explorer.stats} wall times and bench
    speedup ratios negative or nonsensical.  This module wraps
    [clock_gettime(CLOCK_MONOTONIC)]: readings are meaningful only as
    differences, and those differences are always non-negative. *)

val now : unit -> float
(** Seconds on the monotonic clock, from an arbitrary epoch.  Only
    differences between two readings are meaningful. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0]: seconds since the earlier reading
    [t0].  Never negative. *)
