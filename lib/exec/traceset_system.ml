open Safeopt_trace

let successors ts prefix =
  (* All actions [a] such that [prefix ++ [a]] is in [ts]. *)
  Traceset.fold
    (fun t acc ->
      if Trace.length t = Trace.length prefix + 1 && Trace.is_prefix prefix t
      then
        match List.nth_opt t (Trace.length prefix) with
        | Some a -> a :: acc
        | None -> acc
      else acc)
    ts []

let make ts =
  let tids = Traceset.thread_ids ts in
  let n = match List.rev tids with [] -> 0 | t :: _ -> t + 1 in
  let steps (tid, prefix) =
    let succ = successors ts prefix in
    (* Entry points: from the empty trace, thread [tid] may only start
       itself. *)
    let succ =
      List.filter
        (fun a ->
          match a with
          | Action.Start e -> prefix = [] && Thread_id.equal e tid
          | _ -> prefix <> [])
        succ
    in
    let read_locs =
      List.filter_map
        (function Action.Read (l, _) -> Some l | _ -> None)
        succ
      |> List.sort_uniq Location.compare
    in
    let reads =
      List.map
        (fun l ->
          System.Read
            ( l,
              fun v ->
                let ext = prefix @ [ Action.Read (l, v) ] in
                if Traceset.mem ext ts then Some (tid, ext) else None ))
        read_locs
    in
    let rmw_locs =
      List.filter_map
        (function Action.Rmw (l, _, _) -> Some l | _ -> None)
        succ
      |> List.sort_uniq Location.compare
    in
    let rmws =
      List.map
        (fun l ->
          System.Rmw
            ( l,
              fun v ->
                (* Offer every successor RMW of [l] whose read value is
                   the one the scheduler supplies. *)
                List.filter_map
                  (function
                    | Action.Rmw (l', r, w)
                      when Location.equal l l' && Value.equal r v ->
                        Some (w, (tid, prefix @ [ Action.Rmw (l, v, w) ]))
                    | _ -> None)
                  succ ))
        rmw_locs
    in
    let others =
      List.filter_map
        (fun a ->
          match a with
          | Action.Read _ | Action.Rmw _ -> None
          | _ -> Some (System.Emit (a, (tid, prefix @ [ a ]))))
        succ
    in
    reads @ rmws @ others
  in
  let key (tid, prefix) =
    Printf.sprintf "%d:%s" tid (Trace.to_string prefix)
  in
  { System.initial = List.init n (fun i -> (i, [])); steps; key }
