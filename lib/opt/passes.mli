(** Dataflow optimisation passes over the section-6 language.

    Two kinds of passes:

    - {e trace-preserving} register-level passes (constant and copy
      propagation).  They never add, drop or change a shared-memory
      access, so they are identity transformations in the trace
      semantics — the paper's observation that such optimisations are
      trivially safe (section 2.1, "trace preserving transformations");
    - {e rule-driven} redundancy elimination, computed as a fixpoint of
      the Fig. 10 rules, returning the rule chain that justifies the
      result.

    {!introduce_irrelevant_reads} and {!eliminate_reads_across_acquires}
    reproduce the paper's Fig. 3 pipeline: each step is individually
    defensible (the first preserves SC behaviour, the second is a
    legitimate Definition-1 elimination) but their composition breaks
    the DRF guarantee — the paper's "surprising limitation". *)

open Safeopt_lang

val constant_propagation : Ast.program -> Ast.program
(** Forward-propagate known register constants into register moves and
    test operands.  Trace-preserving. *)

val copy_propagation : Ast.program -> Ast.program
(** Replace uses of a register by its unkilled source register.
    Trace-preserving. *)

val eliminate_redundancy : Ast.program -> Ast.program * Transform.chain
(** Apply the Fig. 10 elimination rules to a fixpoint (first applicable
    instance each round); the returned chain justifies every step. *)

val reorder_fixpoint :
  prefer:string list -> Ast.program -> Ast.program * Transform.chain
(** Apply the named Fig. 11 rules (e.g. [\["R-WL"; "R-UW"\]] for roach
    motel) to a fixpoint. *)

val reorder_load_store : Ast.program -> Ast.program
(** Hoist a non-volatile store above an immediately preceding
    non-volatile load of a different location (Fig. 11 R-RW, plus the
    silent-move commutation needed for the desugared [x := n] pattern
    [Load; Move; Store]).  Safe under SC by Theorem 4 — but {b not}
    portable to TSO/PSO, where the hoisted store can be buffered and
    the pair observed out of order by another thread: on the [lb]
    litmus shape it manufactures the forbidden [r1 = r2 = 1] outcome.
    The portability matrix exists to catch exactly this pass. *)

val introduce_irrelevant_reads : Ast.program -> Ast.program
(** Prefix every thread that starts with a memory access with an
    irrelevant load of that location into a fresh dead register
    (Fig. 3, step (a) to (b)).  {b Not} one of the paper's safe
    transformations: preserves SC behaviour but can destroy data race
    freedom. *)

val e_rar_across_acquires : Rule.t
(** The rule behind {!eliminate_reads_across_acquires}, usable with the
    {!Transform} engine directly. *)

val eliminate_reads_across_acquires : Ast.program -> Ast.program
(** Redundant-read elimination whose window may cross lock
    acquisitions (but no release-acquire pair) — the elimination
    proposed for C++0x in the paper's citation [12] and used in Fig. 3
    step (b) to (c).  Justified by Definition 1 (which only forbids a
    {e release followed by an acquire} between the reads), though not
    by the conservative syntactic rule E-RAR. *)

val dead_moves : Ast.program -> Ast.program
(** Remove moves to registers that are dead afterwards.  Moves are
    silent, so this is trace-preserving. *)

val dead_loads : Ast.program -> Ast.program
(** Remove loads into dead registers — irrelevant reads, whose removal
    is a Definition-1 clause-3 semantic elimination (safe under the DRF
    guarantee but {e not} trace-preserving). *)

val dead_stores_cfg :
  Ast.program ->
  Ast.program
  * (Safeopt_trace.Thread_id.t * Safeopt_analysis.Cfg.path * Ast.stmt) list
(** Dead-store elimination across branches: remove a non-volatile store
    when a backward must-analysis over the thread CFG proves that every
    path from it reaches another store to the same location before any
    read of it, any synchronisation, or thread exit.  Each removal is
    an overwritten-write elimination (Definition 1 clause 5, rule
    E-WBW's semantic core) valid on {e every} execution because the
    window is sync-free on all paths — strictly stronger than the
    straight-line syntactic rule.  Returns the removed stores with
    their CFG paths as provenance. *)

val fold_branches : Ast.program -> Ast.program
(** Resolve conditionals and loops whose tests compare literals.
    Trace-preserving (COND/LOOP steps are silent). *)

val normalise : Ast.program -> Ast.program
(** Flatten blocks and drop skips.  Trace-preserving. *)

val unroll_loops : depth:int -> Ast.program -> Ast.program
(** Peel [depth] iterations off every loop ([while (T) S] becomes
    [if (T) { S; ... }] nests).  Trace-preserving — the paper's
    section-2.1 observation that loop unrolling is an identity in the
    trace semantics. *)

val optimise : Ast.program -> Ast.program
(** The pipeline a small compiler would run: constant propagation,
    copy propagation, rule-driven redundancy elimination, dead-move
    removal, normalisation. *)

val named_passes : (string * (Ast.program -> Ast.program)) list
(** The pass registry used by [drfopt opt --passes]. *)

val run_pipeline :
  string list -> Ast.program -> (Ast.program, string) Result.t
(** Apply the named passes left to right. *)
