open Safeopt_trace
open Safeopt_lang

(* --- Constant propagation ------------------------------------------- *)

module Cenv = struct
  type t = int Reg.Map.t

  let join a b =
    Reg.Map.merge
      (fun _ x y ->
        match (x, y) with Some v, Some w when v = w -> Some v | _ -> None)
      a b

  let kill_assigned assigned env =
    Reg.Set.fold (fun r env -> Reg.Map.remove r env) assigned env
end

let rec assigned_regs_stmt = function
  | Ast.Load (r, _) | Ast.Move (r, _) | Ast.Atomic (r, _, _) ->
      Reg.Set.singleton r
  | Ast.Store _ | Ast.Lock _ | Ast.Unlock _ | Ast.Skip | Ast.Print _ ->
      Reg.Set.empty
  | Ast.Block l -> assigned_regs_thread l
  | Ast.If (_, s1, s2) ->
      Reg.Set.union (assigned_regs_stmt s1) (assigned_regs_stmt s2)
  | Ast.While (_, s) -> assigned_regs_stmt s

and assigned_regs_thread l =
  List.fold_left
    (fun acc s -> Reg.Set.union acc (assigned_regs_stmt s))
    Reg.Set.empty l

let cp_operand env = function
  | Ast.Reg r as o -> (
      match Reg.Map.find_opt r env with Some c -> Ast.Nat c | None -> o)
  | Ast.Nat _ as o -> o

let cp_test env = function
  | Ast.Eq (a, b) -> Ast.Eq (cp_operand env a, cp_operand env b)
  | Ast.Ne (a, b) -> Ast.Ne (cp_operand env a, cp_operand env b)

let rec cp_stmt env (s : Ast.stmt) : Ast.stmt * Cenv.t =
  match s with
  | Ast.Move (r, o) -> (
      let o = cp_operand env o in
      match o with
      | Ast.Nat i -> (Ast.Move (r, o), Reg.Map.add r i env)
      | Ast.Reg _ -> (Ast.Move (r, o), Reg.Map.remove r env))
  | Ast.Load (r, l) -> (Ast.Load (r, l), Reg.Map.remove r env)
  | Ast.Atomic (r, l, k) ->
      (* Substituting a known-constant operand never changes the values
         the RMW writes; the destination register takes a memory value,
         so it leaves the constant environment. *)
      let k =
        match k with
        | Ast.Cas (e, d) -> Ast.Cas (cp_operand env e, cp_operand env d)
        | Ast.Faa o -> Ast.Faa (cp_operand env o)
        | Ast.Xchg o -> Ast.Xchg (cp_operand env o)
      in
      (Ast.Atomic (r, l, k), Reg.Map.remove r env)
  | Ast.Store _ | Ast.Lock _ | Ast.Unlock _ | Ast.Skip | Ast.Print _ ->
      (s, env)
  | Ast.Block l ->
      let l', env' = cp_thread env l in
      (Ast.Block l', env')
  | Ast.If (t, s1, s2) ->
      let t = cp_test env t in
      let s1', env1 = cp_stmt env s1 in
      let s2', env2 = cp_stmt env s2 in
      (Ast.If (t, s1', s2'), Cenv.join env1 env2)
  | Ast.While (t, body) ->
      let inv = Cenv.kill_assigned (assigned_regs_stmt body) env in
      let t = cp_test inv t in
      let body', _ = cp_stmt inv body in
      (Ast.While (t, body'), inv)

and cp_thread env = function
  | [] -> ([], env)
  | s :: rest ->
      let s', env' = cp_stmt env s in
      let rest', env'' = cp_thread env' rest in
      (s' :: rest', env'')

let constant_propagation (p : Ast.program) =
  {
    p with
    Ast.threads =
      List.map (fun t -> fst (cp_thread Reg.Map.empty t)) p.Ast.threads;
  }

(* --- Copy propagation ------------------------------------------------ *)

module Penv = struct
  (* r -> r': uses of r may be replaced by r'. *)
  type t = Reg.t Reg.Map.t

  let resolve env r = Option.value ~default:r (Reg.Map.find_opt r env)

  let kill r env =
    Reg.Map.filter (fun tgt src -> (not (Reg.equal tgt r)) && not (Reg.equal src r)) env

  let join a b =
    Reg.Map.merge
      (fun _ x y ->
        match (x, y) with
        | Some v, Some w when Reg.equal v w -> Some v
        | _ -> None)
      a b

  let kill_assigned assigned env =
    Reg.Set.fold (fun r env -> kill r env) assigned env
end

let pp_operand env = function
  | Ast.Reg r -> Ast.Reg (Penv.resolve env r)
  | Ast.Nat _ as o -> o

let pp_test env = function
  | Ast.Eq (a, b) -> Ast.Eq (pp_operand env a, pp_operand env b)
  | Ast.Ne (a, b) -> Ast.Ne (pp_operand env a, pp_operand env b)

let rec cpy_stmt env (s : Ast.stmt) : Ast.stmt * Penv.t =
  match s with
  | Ast.Move (r, Ast.Reg r') ->
      let src = Penv.resolve env r' in
      let env = Penv.kill r env in
      if Reg.equal src r then (Ast.Move (r, Ast.Reg src), env)
      else (Ast.Move (r, Ast.Reg src), Reg.Map.add r src env)
  | Ast.Move (r, (Ast.Nat _ as o)) -> (Ast.Move (r, o), Penv.kill r env)
  | Ast.Load (r, l) -> (Ast.Load (r, l), Penv.kill r env)
  | Ast.Atomic (r, l, k) ->
      let k =
        match k with
        | Ast.Cas (e, d) -> Ast.Cas (pp_operand env e, pp_operand env d)
        | Ast.Faa o -> Ast.Faa (pp_operand env o)
        | Ast.Xchg o -> Ast.Xchg (pp_operand env o)
      in
      (Ast.Atomic (r, l, k), Penv.kill r env)
  | Ast.Store (l, r) -> (Ast.Store (l, Penv.resolve env r), env)
  | Ast.Print r -> (Ast.Print (Penv.resolve env r), env)
  | Ast.Lock _ | Ast.Unlock _ | Ast.Skip -> (s, env)
  | Ast.Block l ->
      let l', env' = cpy_thread env l in
      (Ast.Block l', env')
  | Ast.If (t, s1, s2) ->
      let t = pp_test env t in
      let s1', env1 = cpy_stmt env s1 in
      let s2', env2 = cpy_stmt env s2 in
      (Ast.If (t, s1', s2'), Penv.join env1 env2)
  | Ast.While (t, body) ->
      let inv = Penv.kill_assigned (assigned_regs_stmt body) env in
      let t = pp_test inv t in
      let body', _ = cpy_stmt inv body in
      (Ast.While (t, body'), inv)

and cpy_thread env = function
  | [] -> ([], env)
  | s :: rest ->
      let s', env' = cpy_stmt env s in
      let rest', env'' = cpy_thread env' rest in
      (s' :: rest', env'')

let copy_propagation (p : Ast.program) =
  {
    p with
    Ast.threads =
      List.map (fun t -> fst (cpy_thread Reg.Map.empty t)) p.Ast.threads;
  }

(* --- Rule-driven fixpoints ------------------------------------------- *)

let fixpoint rules p =
  let rec go p chain_rev seen =
    match Transform.program_rewrites rules p with
    | [] -> (p, List.rev chain_rev)
    | s :: _ ->
        let k = Pp.program_to_string s.Transform.after in
        if List.mem k seen then (p, List.rev chain_rev)
        else go s.Transform.after (s :: chain_rev) (k :: seen)
  in
  go p [] [ Pp.program_to_string p ]

let eliminate_redundancy p = fixpoint Rule.eliminations p

let reorder_fixpoint ~prefer p =
  let rules = List.filter_map Rule.by_name prefer in
  fixpoint rules p

(* --- Fig. 3 pipeline -------------------------------------------------- *)

let introduce_irrelevant_reads (p : Ast.program) =
  {
    p with
    Ast.threads =
      List.map
        (fun thread ->
          let ctx = Ast.regs_thread thread in
          match Rule.i_ir.Rule.rewrites_at p.Ast.volatile ~ctx thread with
          | t' :: _ -> t'
          | [] -> thread)
        p.Ast.threads;
  }

(* Sync summaries for release-then-acquire detection. *)
type sync_summary = {
  has_acq : bool;
  has_rel : bool;
  rel_then_acq : bool;
}

let empty_summary = { has_acq = false; has_rel = false; rel_then_acq = false }

let seq_summary a b =
  {
    has_acq = a.has_acq || b.has_acq;
    has_rel = a.has_rel || b.has_rel;
    rel_then_acq = a.rel_then_acq || b.rel_then_acq || (a.has_rel && b.has_acq);
  }

let rec stmt_summary vol = function
  | Ast.Lock _ -> { empty_summary with has_acq = true }
  | Ast.Unlock _ -> { empty_summary with has_rel = true }
  | Ast.Load (_, l) when Location.Volatile.mem vol l ->
      { empty_summary with has_acq = true }
  | Ast.Store (l, _) when Location.Volatile.mem vol l ->
      { empty_summary with has_rel = true }
  (* An RMW acquires and releases in one action, so a window containing
     one always has a release "followed by" an acquire. *)
  | Ast.Atomic _ -> { has_acq = true; has_rel = true; rel_then_acq = true }
  | Ast.Load _ | Ast.Store _ | Ast.Move _ | Ast.Skip | Ast.Print _ ->
      empty_summary
  | Ast.Block l -> thread_summary vol l
  | Ast.If (_, s1, s2) ->
      let a = stmt_summary vol s1 and b = stmt_summary vol s2 in
      {
        has_acq = a.has_acq || b.has_acq;
        has_rel = a.has_rel || b.has_rel;
        rel_then_acq = a.rel_then_acq || b.rel_then_acq;
      }
  | Ast.While (_, s) ->
      let a = stmt_summary vol s in
      {
        a with
        rel_then_acq = a.rel_then_acq || (a.has_rel && a.has_acq);
      }

and thread_summary vol l =
  List.fold_left (fun acc s -> seq_summary acc (stmt_summary vol s)) empty_summary l

(* E-RAR whose window may contain acquires (and releases, as long as no
   release is followed by an acquire) — Definition 1's actual
   interference condition. *)
let e_rar_across_acquires =
  {
    Rule.name = "E-RAR-ACQ";
    descr = "r1:=x; S; r2:=x ~> r1:=x; S; r2:=r1  (S may acquire)";
    rewrites_at =
      (fun vol ~ctx:_ l ->
        match l with
        | Ast.Load (r1, x) :: rest when not (Location.Volatile.mem vol x) ->
            let rec windows middle_rev = function
              | [] -> []
              | last :: after -> (
                  let middle = List.rev middle_rev in
                  let continue = windows (last :: middle_rev) after in
                  match last with
                  | Ast.Load (r2, x') when Location.equal x x' ->
                      let locs, regs = Rule.names_of_run middle in
                      let summary = thread_summary vol middle in
                      if
                        (not summary.rel_then_acq)
                        && (not (Location.Set.mem x locs))
                        && (not (Reg.Set.mem r1 regs))
                        && not (Reg.Set.mem r2 regs)
                      then
                        (Ast.Load (r1, x)
                         :: middle
                         @ (Ast.Move (r2, Ast.Reg r1) :: after))
                        :: continue
                      else continue
                  | _ -> continue)
            in
            windows [] rest
        | _ -> []);
  }

let eliminate_reads_across_acquires p =
  fst (fixpoint [ e_rar_across_acquires ] p)

(* --- Load/store reordering (R-RW as a pass) --------------------------- *)

(* Hoist a store above an unrelated load it follows: [r := x; y := r']
   becomes [y := r'; r := x] when the locations differ, neither is
   volatile and the store's register is not the load's target.  Each
   swap is a Fig. 11 R-RW reordering (plus a silent move commutation
   when the stored value is a desugared constant), so the pass is
   SC-safe (Theorem 4) — but its output issues a store followed by a
   load, exactly the pair the store buffer relaxes, so it is not
   portable to TSO/PSO: on load buffering it manufactures the
   forbidden r1 = r2 = 1 outcome.  The portability matrix pins this. *)
let reorder_load_store (p : Ast.program) =
  let vol = p.Ast.volatile in
  let nv x = not (Location.Volatile.mem vol x) in
  let rec swap_list = function
    | Ast.Load (r, x) :: Ast.Store (y, r') :: rest
      when nv x && nv y
           && (not (Location.equal x y))
           && not (Reg.equal r r') ->
        Ast.Store (y, r') :: swap_list (Ast.Load (r, x) :: rest)
    | Ast.Load (r, x) :: Ast.Move (t, o) :: Ast.Store (y, t') :: rest
      when Reg.equal t t'
           && (not (Reg.equal r t))
           && (match o with
              | Ast.Reg s -> not (Reg.equal s r)
              | Ast.Nat _ -> true)
           && nv x && nv y
           && not (Location.equal x y) ->
        Ast.Move (t, o) :: Ast.Store (y, t')
        :: swap_list (Ast.Load (r, x) :: rest)
    | s :: rest -> swap_stmt s :: swap_list rest
    | [] -> []
  and swap_stmt = function
    | Ast.Block l -> Ast.Block (swap_list l)
    | Ast.If (t, s1, s2) -> Ast.If (t, swap_stmt s1, swap_stmt s2)
    | Ast.While (t, s) -> Ast.While (t, swap_stmt s)
    | s -> s
  in
  { p with Ast.threads = List.map swap_list p.Ast.threads }

(* --- Dead-code elimination (liveness-driven) -------------------------- *)

(* Generic backward sweep: [kill s live_out] says whether to drop the
   statement.  The live-out used for each statement is computed on the
   already-transformed tail, which is sound (removals only delete
   uses, so liveness shrinks monotonically). *)
let rec dce_thread ~kill (l : Ast.thread) (live_out : Reg.Set.t) : Ast.thread =
  match l with
  | [] -> []
  | s :: rest ->
      let rest' = dce_thread ~kill rest live_out in
      let live_after_s = Liveness.thread rest' live_out in
      if kill s live_after_s then rest'
      else dce_stmt ~kill s live_after_s :: rest'

and dce_stmt ~kill (s : Ast.stmt) (live_out : Reg.Set.t) : Ast.stmt =
  match s with
  | Ast.Block l -> Ast.Block (dce_thread ~kill l live_out)
  | Ast.If (t, s1, s2) ->
      Ast.If (t, dce_stmt ~kill s1 live_out, dce_stmt ~kill s2 live_out)
  | Ast.While (t, body) ->
      (* conservative: anything live into the loop stays live inside *)
      let inside =
        Reg.Set.union live_out (Liveness.stmt (Ast.While (t, body)) live_out)
      in
      Ast.While (t, dce_stmt ~kill body inside)
  | _ -> s

let dce ~kill (p : Ast.program) =
  {
    p with
    Ast.threads =
      List.map (fun t -> dce_thread ~kill t Reg.Set.empty) p.Ast.threads;
  }

let dead_moves p = dce ~kill:Liveness.dead_move p

let dead_loads p = dce ~kill:Liveness.dead_load p

(* --- Dead-store elimination across branches (CFG dataflow) ------------ *)

(* E-WBW strengthened with control-flow facts: the syntactic rule only
   fires when the overwriting store is a *statement* in the same block;
   the CFG version removes a store when {e every} path from it reaches
   another store of the same location before any read of it, any
   synchronisation (lock, unlock, volatile access), or thread exit.
   The removal of each such store is an Overwritten_write elimination
   (Definition 1 clause 5) on every trace, so Theorem 3 applies; the
   register side conditions of the syntactic rule are unnecessary
   because the statement is deleted, not substituted. *)

module Overwrite_lattice = struct
  type t = Location.Set.t

  let equal = Location.Set.equal
  let join = Location.Set.inter (* must: overwritten on every path *)

  let pp ppf s =
    Fmt.(braces (list ~sep:comma Location.pp)) ppf (Location.Set.elements s)
end

module Overwrite_solver = Safeopt_analysis.Dataflow.Make (Overwrite_lattice)

(* Backward transfer: the set of locations every path from this point
   overwrites before observing them.  Synchronisation edges clear the
   set (the E-WBW window must be sync-free), exit seeds it empty (a
   final write is visible to other threads). *)
let overwritten_ahead vol (e : Safeopt_analysis.Cfg.edge) dead =
  let open Safeopt_analysis in
  match e.Cfg.instr with
  | Cfg.Store (x, _) ->
      if Location.Volatile.mem vol x then Location.Set.empty
      else Location.Set.add x dead
  | Cfg.Load (_, x) ->
      if Location.Volatile.mem vol x then Location.Set.empty
      else Location.Set.remove x dead
  | Cfg.Lock _ | Cfg.Unlock _ | Cfg.Atomic _ -> Location.Set.empty
  | Cfg.Move _ | Cfg.Print _ | Cfg.Assume _ | Cfg.Nop -> dead

let dead_store_paths vol thread =
  let open Safeopt_analysis in
  let g = Cfg.of_thread thread in
  let facts =
    Overwrite_solver.backward g ~init:Location.Set.empty
      ~transfer:(overwritten_ahead vol)
  in
  List.filter_map
    (fun (e : Cfg.edge) ->
      match e.Cfg.instr with
      | Cfg.Store (x, _) when not (Location.Volatile.mem vol x) -> (
          match facts.(e.Cfg.dst) with
          | Some dead when Location.Set.mem x dead -> Some e.Cfg.path
          | _ -> None)
      | _ -> None)
    g.Cfg.edges
  |> List.sort_uniq Cfg.compare_path

(* Navigate a CFG edge path (statement index within a thread or block,
   0/1 for If branches, 0 for a While body) back into the AST. *)
let rec update_stmt_at s path f =
  match (path, s) with
  | [], _ -> f s
  | _, Ast.Block l -> Ast.Block (update_thread_at l path f)
  | 0 :: rest, Ast.If (t, s1, s2) -> Ast.If (t, update_stmt_at s1 rest f, s2)
  | 1 :: rest, Ast.If (t, s1, s2) -> Ast.If (t, s1, update_stmt_at s2 rest f)
  | 0 :: rest, Ast.While (t, body) ->
      Ast.While (t, update_stmt_at body rest f)
  | _ -> s

and update_thread_at l path f =
  match path with
  | i :: rest ->
      List.mapi (fun j s -> if j = i then update_stmt_at s rest f else s) l
  | [] -> l

let dead_stores_cfg (p : Ast.program) =
  let vol = p.Ast.volatile in
  (* One store at a time, to a fixpoint: each removal is individually a
     clause-5 elimination of the *current* program, so the whole pass
     is a chain of semantic eliminations. *)
  let rec thread_fix t sites_rev =
    match dead_store_paths vol t with
    | [] -> (t, List.rev sites_rev)
    | path :: _ -> (
        let removed = ref None in
        let t' =
          update_thread_at t path (fun s ->
              removed := Some s;
              Ast.Skip)
        in
        match !removed with
        | Some s when not (Ast.equal_thread t t') ->
            thread_fix t' ((path, s) :: sites_rev)
        | _ -> (t, List.rev sites_rev))
  in
  let threads, sites =
    List.fold_left
      (fun (threads_rev, sites) (tid, t) ->
        let t', thread_sites = thread_fix t [] in
        ( t' :: threads_rev,
          sites @ List.map (fun (path, s) -> (tid, path, s)) thread_sites ))
      ([], [])
      (List.mapi (fun i t -> (i, t)) p.Ast.threads)
  in
  ({ p with Ast.threads = List.rev threads }, sites)

(* --- Branch folding and normalisation --------------------------------- *)

let const_test = function
  | Ast.Eq (Ast.Nat a, Ast.Nat b) -> Some (a = b)
  | Ast.Ne (Ast.Nat a, Ast.Nat b) -> Some (a <> b)
  | _ -> None

let rec fold_stmt = function
  | Ast.If (t, s1, s2) -> (
      match const_test t with
      | Some true -> fold_stmt s1
      | Some false -> fold_stmt s2
      | None -> Ast.If (t, fold_stmt s1, fold_stmt s2))
  | Ast.While (t, body) -> (
      match const_test t with
      | Some false -> Ast.Skip
      | _ -> Ast.While (t, fold_stmt body))
  | Ast.Block l -> Ast.Block (List.map fold_stmt l)
  | s -> s

let fold_branches (p : Ast.program) =
  { p with Ast.threads = List.map (List.map fold_stmt) p.Ast.threads }

let rec norm_list l = List.concat_map norm_stmt l

and norm_stmt = function
  | Ast.Skip -> []
  | Ast.Block l -> norm_list l
  | Ast.If (t, s1, s2) ->
      [ Ast.If (t, block_of (norm_stmt s1), block_of (norm_stmt s2)) ]
  | Ast.While (t, s) -> [ Ast.While (t, block_of (norm_stmt s)) ]
  | s -> [ s ]

and block_of = function
  | [] -> Ast.Skip
  | [ s ] -> s
  | l -> Ast.Block l

let normalise (p : Ast.program) =
  { p with Ast.threads = List.map norm_list p.Ast.threads }

(* --- Loop unrolling ----------------------------------------------------- *)

let rec unroll_stmt depth = function
  | Ast.While (t, body) ->
      let body = unroll_stmt depth body in
      let rec peel n =
        if n = 0 then Ast.While (t, body)
        else Ast.If (t, Ast.Block [ body; peel (n - 1) ], Ast.Skip)
      in
      peel depth
  | Ast.If (t, s1, s2) ->
      Ast.If (t, unroll_stmt depth s1, unroll_stmt depth s2)
  | Ast.Block l -> Ast.Block (List.map (unroll_stmt depth) l)
  | s -> s

let unroll_loops ~depth (p : Ast.program) =
  { p with Ast.threads = List.map (List.map (unroll_stmt depth)) p.Ast.threads }

(* --- The pipeline -------------------------------------------------------- *)

let optimise p =
  let p = constant_propagation p in
  let p = copy_propagation p in
  let p = fst (eliminate_redundancy p) in
  let p = dead_moves p in
  normalise p

let named_passes =
  [
    ("constprop", constant_propagation);
    ("copyprop", copy_propagation);
    ("redundancy", fun p -> fst (eliminate_redundancy p));
    ("dead-moves", dead_moves);
    ("dead-loads", dead_loads);
    ("fold-branches", fold_branches);
    ("normalise", normalise);
    ("unroll1", unroll_loops ~depth:1);
    ("unroll2", unroll_loops ~depth:2);
    ("read-intro", introduce_irrelevant_reads);
    ("cross-acquire-elim", eliminate_reads_across_acquires);
    ("roach-motel", fun p ->
      fst (reorder_fixpoint ~prefer:[ "R-WL"; "R-RL"; "R-UW"; "R-UR" ] p));
    ("store-load-reorder", reorder_load_store);
  ]

let run_pipeline names p =
  let rec go p = function
    | [] -> Ok p
    | n :: rest -> (
        match List.assoc_opt n named_passes with
        | Some f -> go (f p) rest
        | None -> Error (Printf.sprintf "unknown pass %S" n))
  in
  go p names
