open Safeopt_trace
open Safeopt_lang
open Safeopt_exec
module Tracer = Safeopt_obs.Tracer
module Ev = Safeopt_obs.Event
module Model = Safeopt_model.Memory_model

type relation =
  | Unchecked
  | Elimination
  | Reordering
  | Elimination_then_reordering

let pp_relation ppf = function
  | Unchecked -> Fmt.string ppf "unchecked"
  | Elimination -> Fmt.string ppf "elimination"
  | Reordering -> Fmt.string ppf "reordering"
  | Elimination_then_reordering ->
      Fmt.string ppf "elimination-then-reordering"

type report = {
  model : Model.t;
  original_drf : bool;
  transformed_drf : bool;
  new_behaviour : Behaviour.t option;
  race_witness : Interleaving.t option;
  relation : relation;
  relation_holds : bool option;
  relation_counterexample : Trace.t option;
}

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>model: %a@ original DRF: %b@ transformed DRF: %b@ new behaviour: \
     %a@ relation (%a): %a@]"
    Model.pp r.model r.original_drf r.transformed_drf
    Fmt.(option ~none:(any "none") Behaviour.pp)
    r.new_behaviour pp_relation r.relation
    Fmt.(option ~none:(any "n/a") bool)
    r.relation_holds;
  Option.iter
    (fun t -> Fmt.pf ppf "@ unwitnessed trace: %a" Trace.pp t)
    r.relation_counterexample

(* The model's racy-behaviour semantics decide the criterion.  Under
   SC racy programs catch fire, so the DRF guarantee is all there is to
   check — and it is vacuous for racy originals.  Under the hardware
   models every program has defined machine behaviour, so the only
   sound reading of "safe" is plain behaviour inclusion: no new
   behaviour, racy or not. *)
let behaviours_ok r =
  if Model.catch_fire r.model then
    (not r.original_drf)
    || (r.transformed_drf && Option.is_none r.new_behaviour)
  else Option.is_none r.new_behaviour

let ok r =
  behaviours_ok r
  && match r.relation_holds with None -> true | Some b -> b

(* The static fast path for the two DRF questions every validation
   asks.  `Static_race.certified_drf` is a sound certificate (see its
   documentation), so a positive answer avoids the exponential schedule
   enumeration entirely; a negative answer only means "unknown" and
   falls back to the exhaustive check. *)
let drf_fast ?fuel ?max_states ?stats ?jobs ?pool p =
  Safeopt_analysis.Static_race.certified_drf p
  || Interp.is_drf ?fuel ?max_states ?stats ?jobs ?pool p

let find_race_fast ?fuel ?max_states ?stats ?jobs ?pool p =
  if Safeopt_analysis.Static_race.certified_drf p then None
  else Interp.find_race ?fuel ?max_states ?stats ?jobs ?pool p

let validate_with ?fuel ?max_states ?stats ?jobs ?pool
    ?(model = Model.Sc) ~relation ~relation_check ~original ~transformed () =
  (* one span per differential validation; its children are the
     explorer entry spans of the enumerations below *)
  let sp =
    if Tracer.enabled () then
      Tracer.span
        ~attrs:
          [
            ("relation", Ev.Str (Fmt.str "%a" pp_relation relation));
            ("model", Ev.Str (Model.name model));
          ]
        "validate"
    else Tracer.none
  in
  let finish r =
    Tracer.close_span
      ~attrs:
        [
          ("original_drf", Ev.Bool r.original_drf);
          ("transformed_drf", Ev.Bool r.transformed_drf);
          ("new_behaviour", Ev.Bool (Option.is_some r.new_behaviour));
          ("ok", Ev.Bool (ok r));
        ]
      sp;
    r
  in
  match
    let b_orig =
      Model.behaviours ?fuel ?max_states ?stats ?jobs ?pool model original
    in
    let b_trans =
      Model.behaviours ?fuel ?max_states ?stats ?jobs ?pool model transformed
    in
    let new_behaviour = Safeopt_core.Safety.behaviour_subset b_trans b_orig in
    (* The DRF legs are SC questions under every model: data races are
       a property of the language semantics, and the DRF guarantee is
       what ports SC verdicts to the hardware models. *)
    let original_drf = drf_fast ?fuel ?max_states ?stats ?jobs ?pool original in
    let race_witness =
      find_race_fast ?fuel ?max_states ?stats ?jobs ?pool transformed
    in
    let relation_holds, relation_counterexample = relation_check () in
    {
      model;
      original_drf;
      transformed_drf = Option.is_none race_witness;
      new_behaviour;
      race_witness;
      relation;
      relation_holds;
      relation_counterexample;
    }
  with
  | r -> finish r
  | exception e ->
      Tracer.close_span ~attrs:[ ("error", Ev.Str (Printexc.to_string e)) ] sp;
      raise e

let validate ?fuel ?max_states ?stats ?jobs ?pool ?model ~original
    ~transformed () =
  validate_with ?fuel ?max_states ?stats ?jobs ?pool ?model
    ~relation:Unchecked
    ~relation_check:(fun () -> (None, None))
    ~original ~transformed ()

(* Structured counterexample extraction: a failed report becomes a
   witness carrying the program pair and the strongest evidence the
   report holds — an introduced race beats a new behaviour beats a
   failed relation check (the first two break the DRF guarantee
   itself; the last only breaks the claimed §4/§6 justification). *)
let witness ~original ~transformed (r : report) :
    Ast.program Safeopt_core.Witness.t option =
  if ok r then None
  else
    let evidence =
      if Model.catch_fire r.model then
        match (r.race_witness, r.new_behaviour, r.relation_counterexample) with
        | Some i, _, _ when r.original_drf ->
            Some (Safeopt_core.Witness.Race_introduced i)
        | _, Some b, _ when r.original_drf ->
            Some (Safeopt_core.Witness.New_behaviour b)
        | _, _, Some t -> Some (Safeopt_core.Witness.Relation_failure t)
        | _ -> None
      else
        (* Hardware models fail on inclusion alone: the evidence is the
           model-level behaviour the original cannot produce. *)
        Option.map
          (fun b -> Safeopt_core.Witness.New_behaviour b)
          r.new_behaviour
    in
    Option.map
      (Safeopt_core.Witness.make ~model:(Model.name r.model) ~original
         ~transformed)
      evidence

let validate_semantic ?fuel ?max_states ?stats ?jobs ?pool ?(max_len = 12)
    ~relation ~original ~transformed () =
  let universe = Denote.joint_universe [ original; transformed ] in
  let vol = original.Ast.volatile in
  let relation_check () =
    match relation with
    | Unchecked -> (None, None)
    | _ ->
        let ts_trans = Denote.traceset ~universe ~max_len transformed in
        let orig_len = max_len + Ast.program_size original + 1 in
        let ts_orig = Denote.traceset ~universe ~max_len:orig_len original in
        let cex =
          match relation with
          | Unchecked -> None
          | Elimination ->
              Safeopt_core.Elimination.find_unwitnessed vol ~original:ts_orig
                ~universe ~transformed:ts_trans
          | Reordering ->
              Safeopt_core.Reorder.find_undepermutable vol
                ~mem:(fun t -> Traceset.mem t ts_orig)
                ~transformed:ts_trans
          | Elimination_then_reordering ->
              let mem =
                Safeopt_core.Elimination.memoised_member vol
                  ~original:ts_orig ~universe
              in
              Safeopt_core.Reorder.find_undepermutable vol ~mem
                ~transformed:ts_trans
        in
        (Some (Option.is_none cex), cex)
  in
  validate_with ?fuel ?max_states ?stats ?jobs ?pool ~relation ~relation_check
    ~original ~transformed ()

(* Batch parallelism: a list of independent per-program (or per-pair)
   jobs spread across the pool, each job running the ordinary
   sequential analyses — the pool must not be re-entered from inside a
   worker.  Every job writes to its own stats record; the records are
   merged into the caller's sink after the join, so reports and
   aggregate statistics are independent of the schedule. *)
let batch_map ?stats ?jobs ?pool f xs =
  Par.dispatch ?jobs ?pool
    ~seq:(fun () -> List.map (f stats) xs)
    ~par:(fun p ->
      let n = List.length xs in
      let wstats =
        match stats with
        | None -> [||]
        | Some _ -> Array.init n (fun _ -> Explorer.create_stats ())
      in
      let stat_of i = if Array.length wstats = 0 then None else Some wstats.(i) in
      let ys = Par.Pool.map_list p (fun i x -> f (stat_of i) x) xs in
      Option.iter
        (fun s ->
          Array.iter (fun w -> Explorer.merge_stats ~into:s w) wstats;
          s.Explorer.domains <- max s.Explorer.domains (Par.Pool.size p))
        stats;
      ys)
    ()

let validate_batch ?fuel ?max_states ?stats ?jobs ?pool ?model pairs =
  batch_map ?stats ?jobs ?pool
    (fun stats (original, transformed) ->
      validate ?fuel ?max_states ?stats ?model ~original ~transformed ())
    pairs

(* --- The validator escalation ladder ----------------------------------- *)

module Refine = Safeopt_analysis.Refine
module Metrics = Safeopt_obs.Metrics

type validator = Static | Refinement | Exhaustive | Auto

let pp_validator ppf = function
  | Static -> Fmt.string ppf "static"
  | Refinement -> Fmt.string ppf "refine"
  | Exhaustive -> Fmt.string ppf "exhaustive"
  | Auto -> Fmt.string ppf "auto"

type method_ = Equal_programs | Refined | Enumerated | Inconclusive

type outcome = {
  out_validator : validator;
  out_method : method_;
  out_ok : bool;
  out_refine : Refine.t option;
  out_report : report option;
  out_note : string option;
}

let method_tag o =
  match o.out_method with
  | Equal_programs -> "static"
  | Refined -> "refine"
  | Enumerated -> "exhaustive"
  | Inconclusive -> "inconclusive"

let outcome_ok o = o.out_ok

let outcome_witness ~original ~transformed o =
  if o.out_ok then None
  else
    match (o.out_report, o.out_refine) with
    | Some r, _ -> witness ~original ~transformed r
    | None, Some r -> Refine.witness ~original ~transformed r
    | None, None -> None

let pp_outcome ppf o =
  Fmt.pf ppf "@[<v>validator: %a; decided by: %s; verdict: %s" pp_validator
    o.out_validator (method_tag o)
    (if o.out_ok then "ok"
     else
       match o.out_method with
       | Inconclusive -> "UNDECIDED"
       | _ -> "FAILED");
  Option.iter (fun n -> Fmt.pf ppf "@ note: %s" n) o.out_note;
  Option.iter (fun r -> Fmt.pf ppf "@ %a" Refine.pp r) o.out_refine;
  Option.iter (fun r -> Fmt.pf ppf "@ %a" pp_report r) o.out_report;
  Fmt.pf ppf "@]"

let vcount name =
  if Metrics.enabled () then Metrics.add (Metrics.counter Metrics.global name) 1

(* The ladder.  Rung 1 (static): syntactic program equality — trivially
   ok, no semantics consulted.  Rung 2 (refine): the thread-local
   refinement analysis; a [Safe] verdict establishes Lemma 5's relation
   on the bounded denotations, which implies the DRF guarantee for any
   original (Theorems 3-5) — ok without enumerating one interleaving.
   Rung 3 (exhaustive): the interpreter-level differential validation
   (itself using the static lockset certificate for its two DRF legs).

   The relation of rung 2 is sufficient but not necessary, so in [Auto]
   a refine counterexample escalates to rung 3 rather than rejecting:
   [Auto]'s verdict always equals [Exhaustive]'s.  Forcing a single
   rung ([Static]/[Refinement]) reports [Inconclusive] (not ok, no
   witness) when that rung cannot decide.

   Under a hardware model ([model] = Tso/Pso) the static rung is still
   sound (equal programs have equal behaviours under any model), but
   the refinement rung argues over SC tracesets only.  [Auto] applies
   it just the same when both programs carry a static DRF certificate:
   by the DRF guarantee their model behaviours coincide with SC, so an
   SC-safe verdict ports.  In every other case [Auto] escalates
   straight to model-exhaustive enumeration, and forcing [Refinement]
   is [Inconclusive]. *)
let run_validator ?fuel ?max_states ?stats ?jobs ?pool ?max_len ?max_traces
    ?(model = Model.Sc) validator ~original ~transformed () =
  vcount "validate.outcomes";
  vcount ("validate.model." ^ Model.name model);
  let outcome out_method out_ok out_refine out_report out_note =
    { out_validator = validator; out_method; out_ok; out_refine; out_report;
      out_note }
  in
  let exhaustive ?refine ?note () =
    vcount "validate.exhaustive_runs";
    let r =
      validate ?fuel ?max_states ?stats ?jobs ?pool ~model ~original
        ~transformed ()
    in
    outcome Enumerated (ok r) refine (Some r) note
  in
  if Ast.equal_program original transformed then begin
    vcount "validate.static_hits";
    outcome Equal_programs true None None
      (Some "programs syntactically equal")
  end
  else
    match model with
    | Model.Tso | Model.Pso -> (
        match validator with
        | Static ->
            outcome Inconclusive false None None
              (Some
                 "programs differ: the static rung cannot relate distinct \
                  programs (use exhaustive or auto)")
        | Exhaustive -> exhaustive ()
        | Refinement ->
            outcome Inconclusive false None None
              (Some
                 (Fmt.str
                    "the refinement rung argues over SC tracesets and cannot \
                     decide the %a model (use exhaustive or auto)"
                    Model.pp model))
        | Auto ->
            if
              Safeopt_analysis.Static_race.certified_drf original
              && Safeopt_analysis.Static_race.certified_drf transformed
            then (
              (* DRF applicability: both programs are certified DRF, so
                 their model behaviours equal their SC behaviours
                 (Theorem 2) and the SC refinement verdict ports. *)
              let r =
                Refine.check ?max_len ?max_traces ~original ~transformed ()
              in
              match Refine.verdict r with
              | Refine.Safe ->
                  vcount "validate.refine_hits";
                  outcome Refined true (Some r) None
                    (Some
                       (Fmt.str
                          "both programs statically DRF: the SC refinement \
                           verdict ports to %a by the DRF guarantee"
                          Model.pp model))
              | Refine.Counterexample _ | Refine.Unknown _ ->
                  vcount "validate.refine_misses";
                  exhaustive ~refine:r
                    ~note:
                      (Fmt.str
                         "refinement could not decide; escalated to \
                          %a-exhaustive enumeration"
                         Model.pp model)
                    ())
            else
              exhaustive
                ~note:
                  (Fmt.str
                     "the static/refine rungs are SC-sound arguments; \
                      escalated to %a-exhaustive enumeration"
                     Model.pp model)
                ())
    | Model.Sc -> (
        match validator with
        | Static ->
            outcome Inconclusive false None None
              (Some
                 "programs differ: the static rung cannot relate distinct \
                  programs (use refine, exhaustive or auto)")
        | Exhaustive -> exhaustive ()
        | Refinement -> (
            let r =
              Refine.check ?max_len ?max_traces ~original ~transformed ()
            in
            match Refine.verdict r with
            | Refine.Safe ->
                vcount "validate.refine_hits";
                outcome Refined true (Some r) None None
            | Refine.Counterexample _ ->
                outcome Refined false (Some r) None
                  (Some "a transformed thread trace has no \
                         elimination/reordering witness")
            | Refine.Unknown reason ->
                outcome Inconclusive false (Some r) None (Some reason))
        | Auto -> (
            let r =
              Refine.check ?max_len ?max_traces ~original ~transformed ()
            in
            match Refine.verdict r with
            | Refine.Safe ->
                vcount "validate.refine_hits";
                outcome Refined true (Some r) None None
            | Refine.Counterexample _ ->
                vcount "validate.refine_misses";
                exhaustive ~refine:r
                  ~note:"refinement found an unwitnessed trace; escalated to \
                         exhaustive enumeration"
                  ()
            | Refine.Unknown reason ->
                vcount "validate.refine_misses";
                exhaustive ~refine:r
                  ~note:(reason ^ "; escalated to exhaustive enumeration")
                  ()))

type chain_report = { pairwise : report list; end_to_end : report }

let pp_chain_report ppf c =
  List.iteri
    (fun i r -> Fmt.pf ppf "@[<v2>step %d -> %d:@ %a@]@ " i (i + 1) pp_report r)
    c.pairwise;
  Fmt.pf ppf "@[<v2>end to end:@ %a@]" pp_report c.end_to_end

let chain_ok c = List.for_all ok c.pairwise && ok c.end_to_end

let validate_chain ?fuel ?max_states ?stats ?jobs ?pool programs =
  match programs with
  | [] -> invalid_arg "Validate.validate_chain: empty chain"
  | _ ->
      (* Enumerate each program's behaviours and race witness exactly
         once: a middle program is the transformed side of one pair and
         the original side of the next, and the end-to-end report reuses
         the first and last programs' results.  The per-program
         enumerations are independent, so they shard across the pool. *)
      let data =
        batch_map ?stats ?jobs ?pool
          (fun stats p ->
            ( Interp.behaviours ?fuel ?max_states ?stats p,
              find_race_fast ?fuel ?max_states ?stats p ))
          programs
      in
      let report_of (b_orig, race_orig) (b_trans, race_trans) =
        {
          model = Model.Sc;
          original_drf = Option.is_none race_orig;
          transformed_drf = Option.is_none race_trans;
          new_behaviour = Safeopt_core.Safety.behaviour_subset b_trans b_orig;
          race_witness = race_trans;
          relation = Unchecked;
          relation_holds = None;
          relation_counterexample = None;
        }
      in
      let rec pairs = function
        | a :: (b :: _ as rest) -> report_of a b :: pairs rest
        | _ -> []
      in
      let first = List.hd data in
      let last = List.fold_left (fun _ d -> d) first data in
      { pairwise = pairs data; end_to_end = report_of first last }
