open Safeopt_trace
open Safeopt_lang

type step = {
  rule : string;
  thread : Thread_id.t;
  before : Ast.program;
  after : Ast.program;
}

let pp_step ppf s =
  Fmt.pf ppf "%s @@ thread %a" s.rule Thread_id.pp s.thread

type chain = step list

let pp_chain ppf c = Fmt.(list ~sep:(any " ; ") pp_step) ppf c

(* All rewrites of a statement list: rule windows starting at every
   position, plus recursive rewrites inside compound heads. *)
let rec list_rewrites rule vol ~ctx (l : Ast.thread) : Ast.thread list =
  let at_head = rule.Rule.rewrites_at vol ~ctx l in
  let deeper =
    match l with
    | [] -> []
    | s :: rest ->
        let in_head =
          stmt_rewrites rule vol ~ctx s |> List.map (fun s' -> s' :: rest)
        in
        let in_rest =
          list_rewrites rule vol ~ctx rest |> List.map (fun rest' -> s :: rest')
        in
        in_head @ in_rest
  in
  at_head @ deeper

and stmt_rewrites rule vol ~ctx (s : Ast.stmt) : Ast.stmt list =
  match s with
  | Ast.Block l ->
      list_rewrites rule vol ~ctx l |> List.map (fun l' -> Ast.Block l')
  | Ast.If (t, s1, s2) ->
      let left =
        stmt_rewrites rule vol ~ctx s1
        |> List.map (fun s1' -> Ast.If (t, s1', s2))
      in
      let right =
        stmt_rewrites rule vol ~ctx s2
        |> List.map (fun s2' -> Ast.If (t, s1, s2'))
      in
      left @ right
  | Ast.While (t, body) ->
      stmt_rewrites rule vol ~ctx body
      |> List.map (fun body' -> Ast.While (t, body'))
  | Ast.Store _ | Ast.Load _ | Ast.Move _ | Ast.Lock _ | Ast.Unlock _
  | Ast.Skip | Ast.Print _ | Ast.Atomic _ ->
      []

let thread_rewrites rule vol thread =
  let ctx = Ast.regs_thread thread in
  list_rewrites rule vol ~ctx thread

let program_rewrites rules (p : Ast.program) =
  List.concat_map
    (fun rule ->
      List.concat
        (List.mapi
           (fun tid thread ->
             thread_rewrites rule p.Ast.volatile thread
             |> List.map (fun thread' ->
                    let threads =
                      List.mapi
                        (fun i t -> if i = tid then thread' else t)
                        p.Ast.threads
                    in
                    {
                      rule = rule.Rule.name;
                      thread = tid;
                      before = p;
                      after = { p with Ast.threads };
                    }))
           p.Ast.threads))
    rules

let program_key p = Pp.program_to_string p

let reachable ?(max_programs = 10_000) rules p =
  let seen = Hashtbl.create 97 in
  let out = ref [] in
  let queue = Queue.create () in
  Queue.add p queue;
  Hashtbl.add seen (program_key p) ();
  (try
     while not (Queue.is_empty queue) do
       let q = Queue.pop queue in
       out := q :: !out;
       if Hashtbl.length seen < max_programs then
         List.iter
           (fun s ->
             let k = program_key s.after in
             if not (Hashtbl.mem seen k) then begin
               Hashtbl.add seen k ();
               Queue.add s.after queue
             end)
           (program_rewrites rules q)
     done
   with Exit -> ());
  List.rev !out

let find_chain ?(max_programs = 10_000) rules ~source ~target =
  let target_key = program_key target in
  let seen : (string, chain) Hashtbl.t = Hashtbl.create 97 in
  let queue = Queue.create () in
  Queue.add (source, []) queue;
  Hashtbl.add seen (program_key source) [];
  let found = ref None in
  while (not (Queue.is_empty queue)) && !found = None do
    let q, chain_rev = Queue.pop queue in
    if program_key q = target_key then found := Some (List.rev chain_rev)
    else if Hashtbl.length seen < max_programs then
      List.iter
        (fun s ->
          let k = program_key s.after in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.add seen k (s :: chain_rev);
            Queue.add (s.after, s :: chain_rev) queue
          end)
        (program_rewrites rules q)
  done;
  !found

let apply_named name p =
  match Rule.by_name name with
  | None -> Error (Printf.sprintf "unknown rule %S" name)
  | Some rule -> (
      match program_rewrites [ rule ] p with
      | [] -> Error (Printf.sprintf "rule %s does not apply" name)
      | s :: _ -> Ok s.after)
