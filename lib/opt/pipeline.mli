(** The pass manager: a registry of first-class {!Pass.t}s, a spec
    parser for pipeline strings like ["cse;dse;load-hoist*"], and a
    driver that runs the passes in order with optional differential
    validation after every pass.

    Validation is the tool-level reading of the paper's composition
    results: each pass's output is checked against its input (original
    DRF implies transformed DRF with no new behaviour — Theorems 1–4
    for the safe passes), so a pipeline of validated steps composes by
    Lemma 5 into a validated whole.  A failing pass stops the pipeline
    and yields a structured {!Safeopt_core.Witness.t} naming the
    program pair and the concrete evidence — which is how the Fig. 3
    composition and the mutation-test passes are caught. *)

open Safeopt_lang
open Safeopt_exec

(** {1 Registry} *)

val registry : Pass.t list
(** Every syntactic pass in {!Passes}, wrapped with provenance, plus
    the deliberately unsafe control passes used by the mutation tests.
    Names are unique. *)

val find : string -> Pass.t option
(** Look up by name or alias ([cse] = [redundancy], [dse] =
    [dead-stores], [load-hoist] = [read-intro]). *)

val safe_names : string list
(** Names of the registered passes with [safe = true] — the pool the
    property tests draw random pipelines from. *)

(** {1 Pipeline specs} *)

type step = {
  pass : Pass.t;
  fixpoint : bool;  (** [*] suffix: iterate this pass until no change *)
}

type spec = step list

val parse : string -> (spec, string) Result.t
(** Grammar: [spec := name['*'] (';' name['*'])*] with optional blanks.
    Unknown names are reported with the list of known ones. *)

val pp_spec : spec Fmt.t

(** {1 Running} *)

type pass_stats = {
  ps_pass : string;  (** pass name *)
  ps_iterations : int;  (** runs performed (>1 only for [*] steps) *)
  ps_sites : Pass.site list;  (** provenance: every rewrite performed *)
  ps_validation : Validate.outcome option;
      (** differential outcome vs. this pass's input, when validating:
          carries the deciding rung ({!Validate.method_tag}), the
          refinement analysis and/or the exhaustive report *)
  ps_validation_wall : float;  (** seconds spent validating this pass *)
  ps_explorer : Explorer.stats;
      (** exploration work done by this pass's validation *)
}

val pp_pass_stats : pass_stats Fmt.t

type outcome = {
  final : Ast.program;
      (** the last {e accepted} program: on failure, the failing pass's
          output is rejected and [final] is its input *)
  steps : pass_stats list;  (** in execution order *)
  failure : (string * Ast.program Safeopt_core.Witness.t) option;
      (** the failing pass and its counterexample witness *)
}

val run :
  ?fuel:int ->
  ?max_states:int ->
  ?validate_each:bool ->
  ?max_iters:int ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?validator:Validate.validator ->
  ?model:Safeopt_model.Memory_model.t ->
  spec ->
  Ast.program ->
  outcome
(** Run the spec left to right.  A [*] step re-runs its pass until the
    program stops changing (or [max_iters], default 16, is hit).  With
    [validate_each] (default [false]), every pass's output is validated
    against its input under [validator] (default
    {!Validate.Exhaustive}; {!Validate.Auto} climbs the
    static/refine/exhaustive ladder and records the deciding rung in
    {!pass_stats.ps_validation}) and [model] (default [Sc]) — a pass
    that is safe under SC may be rejected under [Tso]/[Pso] when it
    manufactures a behaviour the weaker machine could not otherwise
    produce; the first failing pass aborts the
    pipeline with a witness.  A pass whose output equals its input is
    never validated (nothing to check).

    [jobs]/[pool] parallelise the validations: the (cheap, inherently
    sequential) rewrites run first, then every changed step's
    differential validation fans out across the pool, and the verdicts
    are folded in pipeline order, cutting at the earliest failure — the
    outcome is identical to the sequential run. *)

val pp_trace : outcome Fmt.t
(** The [--trace-passes] rendering: one block per executed pass with
    its sites, validation verdict and exploration stats, then the
    failure witness if any. *)
