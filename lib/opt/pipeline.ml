open Safeopt_trace
open Safeopt_lang
open Safeopt_exec
module Metrics = Safeopt_obs.Metrics
module Tracer = Safeopt_obs.Tracer
module Ev = Safeopt_obs.Event

(* --- The unsafe mutation-control pass ---------------------------------- *)

(* Reorder a store past the lock release that follows it: [l := r;
   unlock m] becomes [unlock m; l := r].  No Fig. 11 rule permits this
   (the reorderable pairs R-WL/R-UW etc. only move accesses {e into}
   critical sections — the "roach motel" direction); moving the store
   out lets it race with accesses the lock used to order it against.
   Registered [safe = false] purely as a mutation-test control: the
   differential validator must reject it with a race witness. *)
let store_past_release (p : Ast.program) =
  let rec swap_list = function
    | Ast.Store (x, r) :: Ast.Unlock m :: rest
      when not (Location.Volatile.mem p.Ast.volatile x) ->
        Ast.Unlock m :: Ast.Store (x, r) :: swap_list rest
    | s :: rest -> swap_stmt s :: swap_list rest
    | [] -> []
  and swap_stmt = function
    | Ast.Block l -> Ast.Block (swap_list l)
    | Ast.If (t, s1, s2) -> Ast.If (t, swap_stmt s1, swap_stmt s2)
    | Ast.While (t, s) -> Ast.While (t, swap_stmt s)
    | s -> s
  in
  { p with Ast.threads = List.map swap_list p.Ast.threads }

(* --- Registry ----------------------------------------------------------- *)

let trace_preserving = "§2.1 trace-preserving (Theorem 5 applies trivially)"

let dead_stores_pass (p : Ast.program) =
  let p', removed = Passes.dead_stores_cfg p in
  {
    Pass.program = p';
    sites =
      List.map
        (fun (tid, path, s) ->
          {
            Pass.site_thread = tid;
            site_rule = Fmt.str "E-WBW/cfg @@ %a" Safeopt_analysis.Cfg.pp_path path;
            site_before = Pp.stmt_compact s;
            site_after = "skip;";
          })
        removed;
  }

let registry =
  [
    Pass.of_rewrite ~name:"constprop" ~kind:Pass.Cleanup
      ~descr:"propagate constant register values" ~paper:trace_preserving
      Passes.constant_propagation;
    Pass.of_rewrite ~name:"copyprop" ~kind:Pass.Cleanup
      ~descr:"propagate register copies" ~paper:trace_preserving
      Passes.copy_propagation;
    Pass.of_chain ~name:"redundancy" ~kind:Pass.Elimination
      ~descr:"Fig. 10 redundancy elimination to a fixpoint"
      ~paper:"Fig. 10 (E-RAR/E-RAW/E-WAR/E-WBW/E-IR), Theorem 3"
      Passes.eliminate_redundancy;
    Pass.of_rewrite ~name:"dead-moves" ~kind:Pass.Cleanup
      ~descr:"drop moves to dead registers (CFG liveness)"
      ~paper:trace_preserving Passes.dead_moves;
    Pass.of_rewrite ~name:"dead-loads" ~kind:Pass.Elimination
      ~descr:"drop loads into dead registers (CFG liveness)"
      ~paper:"Definition 1 clause 3 (irrelevant read), Theorem 3"
      Passes.dead_loads;
    Pass.of_sites ~name:"dead-stores" ~kind:Pass.Elimination
      ~descr:"remove stores overwritten on every CFG path"
      ~paper:"Definition 1 clause 5 (overwritten write), Theorem 3"
      dead_stores_pass;
    Pass.of_rewrite ~name:"fold-branches" ~kind:Pass.Cleanup
      ~descr:"resolve literal conditionals and loops" ~paper:trace_preserving
      Passes.fold_branches;
    Pass.of_rewrite ~name:"normalise" ~kind:Pass.Cleanup
      ~descr:"flatten blocks, drop skips" ~paper:trace_preserving
      Passes.normalise;
    Pass.of_rewrite ~name:"unroll1" ~kind:Pass.Cleanup
      ~descr:"peel one iteration off every loop" ~paper:trace_preserving
      (Passes.unroll_loops ~depth:1);
    Pass.of_rewrite ~name:"unroll2" ~kind:Pass.Cleanup
      ~descr:"peel two iterations off every loop" ~paper:trace_preserving
      (Passes.unroll_loops ~depth:2);
    Pass.of_chain ~name:"roach-motel" ~kind:Pass.Reordering
      ~descr:"move accesses into critical sections"
      ~paper:"Fig. 11 (R-WL/R-RL/R-UW/R-UR), Theorem 4" (fun p ->
        Passes.reorder_fixpoint ~prefer:[ "R-WL"; "R-RL"; "R-UW"; "R-UR" ] p);
    Pass.of_rewrite ~name:"store-load-reorder" ~kind:Pass.Reordering
      ~descr:"hoist stores above unrelated preceding loads"
      ~paper:"Fig. 11 (R-RW), Theorem 4; not TSO/PSO-portable \
              (arXiv:2504.17646)"
      Passes.reorder_load_store;
    Pass.of_rewrite ~name:"cross-acquire-elim" ~kind:Pass.Elimination
      ~descr:"redundant-read elimination across lock acquires"
      ~paper:"Definition 1 clause 1 (no release-acquire pair), Theorem 3"
      Passes.eliminate_reads_across_acquires;
    Pass.of_rewrite ~name:"read-intro" ~kind:Pass.Reordering ~safe:false
      ~descr:"introduce an irrelevant read before the first access"
      ~paper:"Fig. 3 step (a)->(b): SC-preserving but can break DRF"
      Passes.introduce_irrelevant_reads;
    Pass.of_rewrite ~name:"unsafe-store-release" ~kind:Pass.Reordering
      ~safe:false
      ~descr:"reorder a store past the following lock release"
      ~paper:"mutation control: no Fig. 11 rule moves an access out of a \
              critical section"
      store_past_release;
  ]

let aliases =
  [
    ("cse", "redundancy");
    ("dse", "dead-stores");
    ("load-hoist", "read-intro");
    ("dce", "dead-moves");
  ]

let find name =
  let name =
    match List.assoc_opt name aliases with Some n -> n | None -> name
  in
  List.find_opt (fun (p : Pass.t) -> p.Pass.name = name) registry

let safe_names =
  List.filter_map
    (fun (p : Pass.t) -> if p.Pass.safe then Some p.Pass.name else None)
    registry

(* --- Spec parsing ------------------------------------------------------- *)

type step = { pass : Pass.t; fixpoint : bool }
type spec = step list

let parse s =
  let items =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  if items = [] then Error "empty pipeline spec"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
          let name, fixpoint =
            if String.length item > 1 && item.[String.length item - 1] = '*'
            then (String.trim (String.sub item 0 (String.length item - 1)), true)
            else (item, false)
          in
          match find name with
          | Some pass -> go ({ pass; fixpoint } :: acc) rest
          | None ->
              Error
                (Fmt.str "unknown pass %S (known: %s)" name
                   (String.concat ", "
                      (List.map (fun (p : Pass.t) -> p.Pass.name) registry)))
    in
    go [] items

let pp_spec ppf spec =
  Fmt.(list ~sep:(any ";") string)
    ppf
    (List.map
       (fun { pass; fixpoint } ->
         pass.Pass.name ^ if fixpoint then "*" else "")
       spec)

(* --- Driver ------------------------------------------------------------- *)

type pass_stats = {
  ps_pass : string;
  ps_iterations : int;
  ps_sites : Pass.site list;
  ps_validation : Validate.outcome option;
  ps_validation_wall : float;
  ps_explorer : Explorer.stats;
}

let pp_pass_stats ppf ps =
  Fmt.pf ppf "@[<v>pass %s: %d site%s in %d iteration%s@," ps.ps_pass
    (List.length ps.ps_sites)
    (if List.length ps.ps_sites = 1 then "" else "s")
    ps.ps_iterations
    (if ps.ps_iterations = 1 then "" else "s");
  List.iter (fun s -> Fmt.pf ppf "  %a@," Pass.pp_site s) ps.ps_sites;
  (match ps.ps_validation with
  | None -> Fmt.pf ppf "  validation: skipped"
  | Some o ->
      Fmt.pf ppf "  validation: %s [%s] (states %d, %.1f ms)"
        (if Validate.outcome_ok o then "ok" else "FAILED")
        (Validate.method_tag o) ps.ps_explorer.Explorer.states
        (ps.ps_validation_wall *. 1000.));
  Fmt.pf ppf "@]"

type outcome = {
  final : Ast.program;
  steps : pass_stats list;
  failure : (string * Ast.program Safeopt_core.Witness.t) option;
}

(* Run one step, iterating [*] steps to a syntactic fixpoint.  Sites
   accumulate across iterations — the provenance of the step is the
   concatenation of each round's rewrites. *)
let run_step ~max_iters { pass; fixpoint } p =
  let rec go p sites_rev iters =
    let r = pass.Pass.run p in
    let sites_rev = List.rev_append r.Pass.sites sites_rev in
    if fixpoint && iters < max_iters
       && not (Ast.equal_program r.Pass.program p)
    then go r.Pass.program sites_rev (iters + 1)
    else (r.Pass.program, List.rev sites_rev, iters)
  in
  go p [] 1

(* Telemetry for one finished step: counters into the global registry
   and the attribute list its "pass" span closes with. *)
let publish_step ps =
  if Metrics.enabled () then begin
    let c name v = Metrics.add (Metrics.counter Metrics.global name) v in
    c "pipeline.passes" 1;
    c "pipeline.rewrite_sites" (List.length ps.ps_sites);
    match ps.ps_validation with
    | None -> ()
    | Some o ->
        c "pipeline.validations" 1;
        if not (Validate.outcome_ok o) then c "pipeline.validation_failures" 1
  end

let verdict_of ps =
  match ps.ps_validation with
  | None -> "skipped"
  | Some o -> if Validate.outcome_ok o then "ok" else "FAILED"

let step_attrs ps =
  [
    ("iterations", Ev.Int ps.ps_iterations);
    ("sites", Ev.Int (List.length ps.ps_sites));
    ("verdict", Ev.Str (verdict_of ps));
    ( "method",
      Ev.Str
        (match ps.ps_validation with
        | None -> "skipped"
        | Some o -> Validate.method_tag o) );
    ("validation_wall", Ev.Float ps.ps_validation_wall);
    ("states", Ev.Int ps.ps_explorer.Explorer.states);
  ]

let run ?fuel ?max_states ?(validate_each = false) ?(max_iters = 16) ?jobs
    ?pool ?(validator = Validate.Exhaustive)
    ?(model = Safeopt_model.Memory_model.Sc) spec p =
  let validate_step stats pin pout =
    if validate_each && not (Ast.equal_program pout pin) then begin
      let t0 = Clock.now () in
      let o =
        Validate.run_validator ?fuel ?max_states ~stats ~model validator
          ~original:pin ~transformed:pout ()
      in
      Some (o, Clock.elapsed t0)
    end
    else None
  in
  let mk_ps step iters sites stats validation =
    let ps =
      {
        ps_pass = step.pass.Pass.name;
        ps_iterations = iters;
        ps_sites = sites;
        ps_validation = Option.map fst validation;
        ps_validation_wall =
          (match validation with Some (_, w) -> w | None -> 0.);
        ps_explorer = stats;
      }
    in
    publish_step ps;
    ps
  in
  let failure_of step pin pout o =
    match Validate.outcome_witness ~original:pin ~transformed:pout o with
    | Some w -> Some (step.pass.Pass.name, w)
    | None -> None
  in
  let seq () =
    let rec go p steps_rev = function
      | [] -> { final = p; steps = List.rev steps_rev; failure = None }
      | step :: rest -> (
          let sp =
            if Tracer.enabled () then
              Tracer.span
                ~attrs:[ ("pass", Ev.Str step.pass.Pass.name) ]
                "pass"
            else Tracer.none
          in
          let p', sites, iters = run_step ~max_iters step p in
          let stats = Explorer.create_stats () in
          let validation = validate_step stats p p' in
          let ps = mk_ps step iters sites stats validation in
          Tracer.close_span ~attrs:(step_attrs ps) sp;
          let steps_rev = ps :: steps_rev in
          match validation with
          | Some (o, _) when not (Validate.outcome_ok o) ->
              (* reject the pass's output: the pipeline stops at its input *)
              {
                final = p;
                steps = List.rev steps_rev;
                failure = failure_of step p p' o;
              }
          | _ -> go p' steps_rev rest)
    in
    go p [] spec
  in
  (* Speculative parallel validation: the syntactic rewrites are cheap
     and inherently sequential (each pass consumes its predecessor's
     output), so they all run first; the per-step differential
     validations — the expensive part — are independent of each other
     and fan out across the pool.  Folding the verdicts in pipeline
     order and cutting at the earliest failure reproduces the
     sequential outcome exactly: steps past a failure are validated
     speculatively but their records and programs are discarded. *)
  let par pl =
    let rec transform p acc = function
      | [] -> List.rev acc
      | step :: rest ->
          (* the "pass" span covers only the syntactic rewrite here; the
             speculative validations carry their own "validate" spans on
             the worker lanes, and the verdicts land as instants when
             the fold below reaches each step *)
          let sp =
            if Tracer.enabled () then
              Tracer.span ~attrs:[ ("pass", Ev.Str step.pass.Pass.name) ] "pass"
            else Tracer.none
          in
          let p', sites, iters = run_step ~max_iters step p in
          Tracer.close_span
            ~attrs:
              [
                ("iterations", Ev.Int iters);
                ("sites", Ev.Int (List.length sites));
              ]
            sp;
          transform p' ((step, p, p', sites, iters) :: acc) rest
    in
    let staged = transform p [] spec in
    let stats =
      Array.init (List.length staged) (fun _ -> Explorer.create_stats ())
    in
    let validations =
      Par.Pool.map_list pl
        (fun i (_, pin, pout, _, _) -> validate_step stats.(i) pin pout)
        staged
    in
    let rec cut final steps_rev staged validations i =
      match (staged, validations) with
      | [], _ | _, [] ->
          { final; steps = List.rev steps_rev; failure = None }
      | (step, pin, pout, sites, iters) :: staged', validation :: validations'
        -> (
          let ps = mk_ps step iters sites stats.(i) validation in
          if Tracer.enabled () then
            Tracer.instant
              ~attrs:
                [
                  ("pass", Ev.Str step.pass.Pass.name);
                  ("verdict", Ev.Str (verdict_of ps));
                ]
              "pass.verdict";
          let steps_rev = ps :: steps_rev in
          match validation with
          | Some (o, _) when not (Validate.outcome_ok o) ->
              {
                final = pin;
                steps = List.rev steps_rev;
                failure = failure_of step pin pout o;
              }
          | _ -> cut pout steps_rev staged' validations' (i + 1))
    in
    cut p [] staged validations 0
  in
  let sp =
    if Tracer.enabled () then
      Tracer.span
        ~attrs:
          [
            ("spec", Ev.Str (Fmt.str "%a" pp_spec spec));
            ("model", Ev.Str (Safeopt_model.Memory_model.name model));
          ]
        "pipeline"
    else Tracer.none
  in
  match Par.dispatch ?jobs ?pool ~seq ~par () with
  | o ->
      Tracer.close_span
        ~attrs:
          [
            ("passes", Ev.Int (List.length o.steps));
            ( "verdict",
              Ev.Str
                (match o.failure with
                | None -> "ok"
                | Some (name, _) -> "REJECTED at " ^ name) );
          ]
        sp;
      o
  | exception e ->
      Tracer.close_span ~attrs:[ ("error", Ev.Str (Printexc.to_string e)) ] sp;
      raise e

let pp_trace ppf o =
  Fmt.pf ppf "@[<v>";
  List.iter (fun ps -> Fmt.pf ppf "%a@," pp_pass_stats ps) o.steps;
  (match o.failure with
  | None ->
      Fmt.pf ppf "pipeline ok: %d pass%s run@," (List.length o.steps)
        (if List.length o.steps = 1 then "" else "es")
  | Some (name, w) ->
      Fmt.pf ppf "pipeline REJECTED at pass %s:@,%a@," name
        (Safeopt_core.Witness.pp (Fmt.of_to_string Pp.program_to_string))
        w);
  Fmt.pf ppf "@]"
