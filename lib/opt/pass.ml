open Safeopt_trace
open Safeopt_lang

type kind = Elimination | Reordering | Cleanup

let pp_kind ppf = function
  | Elimination -> Fmt.string ppf "elimination"
  | Reordering -> Fmt.string ppf "reordering"
  | Cleanup -> Fmt.string ppf "cleanup"

type site = {
  site_thread : Thread_id.t;
  site_rule : string;
  site_before : string;
  site_after : string;
}

let pp_site ppf s =
  Fmt.pf ppf "%s @@ thread %a: %s ~> %s" s.site_rule Thread_id.pp
    s.site_thread s.site_before s.site_after

type result = { program : Ast.program; sites : site list }

type t = {
  name : string;
  descr : string;
  kind : kind;
  safe : bool;
  paper : string;
  run : Ast.program -> result;
}

let pp ppf p =
  Fmt.pf ppf "%s [%a%s] %s (%s)" p.name pp_kind p.kind
    (if p.safe then "" else "; UNSAFE")
    p.descr p.paper

(* A chain step rewrites exactly one thread; summarise it as that
   thread's before/after text. *)
let site_of_step (s : Transform.step) =
  let tid = s.Transform.thread in
  let frag p =
    match List.nth_opt p.Ast.threads tid with
    | Some th -> Pp.thread_compact th
    | None -> "?"
  in
  {
    site_thread = tid;
    site_rule = s.Transform.rule;
    site_before = frag s.Transform.before;
    site_after = frag s.Transform.after;
  }

let of_chain ~name ~descr ~kind ?(safe = true) ~paper f =
  let run p =
    let p', chain = f p in
    { program = p'; sites = List.map site_of_step chain }
  in
  { name; descr; kind; safe; paper; run }

let diff_sites ~rule ~before ~after =
  let thread_sites tid t t' =
    if Ast.equal_thread t t' then []
    else if List.length t = List.length t' then
      (* statement count preserved: report each rewritten position *)
      List.concat
        (List.map2
           (fun s s' ->
             if Ast.equal_stmt s s' then []
             else
               [
                 {
                   site_thread = tid;
                   site_rule = rule;
                   site_before = Pp.stmt_compact s;
                   site_after = Pp.stmt_compact s';
                 };
               ])
           t t')
    else
      [
        {
          site_thread = tid;
          site_rule = rule;
          site_before = Pp.thread_compact t;
          site_after = Pp.thread_compact t';
        };
      ]
  in
  let rec go tid ts ts' =
    match (ts, ts') with
    | [], [] -> []
    | t :: rest, t' :: rest' -> thread_sites tid t t' @ go (tid + 1) rest rest'
    | _ -> []
  in
  go 0 before.Ast.threads after.Ast.threads

let of_rewrite ~name ~descr ~kind ?(safe = true) ~paper f =
  let run p =
    let p' = f p in
    { program = p'; sites = diff_sites ~rule:name ~before:p ~after:p' }
  in
  { name; descr; kind; safe; paper; run }

let of_sites ~name ~descr ~kind ?(safe = true) ~paper run =
  { name; descr; kind; safe; paper; run }
