(** Backward register-liveness analysis for the section-6 language.

    A register is {e live} at a program point if some path from that
    point reads it (in a store, print, move source, or test operand)
    before writing it.  Used by the dead-code passes: a move to a dead
    register is silent in the trace semantics and can be dropped
    outright; a load into a dead register is an {e irrelevant read}
    whose removal is a Definition-1 semantic elimination (clause 3).

    Implemented as a backward may-analysis (join = union) on the
    {!Safeopt_analysis.Cfg} thread graph, solved by the
    {!Safeopt_analysis.Dataflow} worklist engine — the same framework
    the lockset analysis runs on. *)

open Safeopt_lang

type t = Reg.Set.t
(** The live-out set at a point. *)

val stmt : Ast.stmt -> t -> t
(** [stmt s live_out] is the live-in set before [s]. *)

val thread : Ast.thread -> t -> t
(** Live-in of a statement list given live-out after it. *)

val annotate : Ast.thread -> (Ast.stmt * t) list
(** Each top-level statement paired with the registers live {e after}
    it (the whole thread's live-out is empty). *)

val dead_move : Ast.stmt -> t -> bool
(** Is the statement a move whose target is dead after it? *)

val dead_load : Ast.stmt -> t -> bool
(** Is the statement a load whose target is dead after it? *)
