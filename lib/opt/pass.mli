(** First-class optimisation passes with per-rewrite provenance.

    A pass packages a program rewrite together with the metadata the
    §6 story needs: its {!kind} (which class of semantic transformation
    every rewrite it performs instantiates), whether it is {e safe}
    under the DRF guarantee (Theorems 1–4), the paper reference backing
    that claim, and a {e provenance emitter} — every run returns the
    rewritten program {e and} the list of {!site}s it changed, each
    tagged with the Fig. 7–11 rule (or pass-specific tag) that fired
    there.

    Provenance is what turns "the pipeline produced P'" into "P' is the
    composition of these n semantic-transformation instances", which is
    exactly the shape of the paper's compositionality theorems: the
    {!Pipeline} driver validates the instances pass by pass and the
    sites say which rewrite to blame when validation fails. *)

open Safeopt_trace
open Safeopt_lang

type kind =
  | Elimination  (** instances of Definition 1 / Fig. 10 (Theorem 3) *)
  | Reordering  (** instances of §4 reordering / Fig. 11 (Theorem 4) *)
  | Cleanup
      (** trace-preserving transformations (§2.1): identities in the
          trace semantics, trivially safe *)

val pp_kind : kind Fmt.t

type site = {
  site_thread : Thread_id.t;
  site_rule : string;
      (** the Fig. 10/11 rule name, or a pass tag like ["constprop"] *)
  site_before : string;  (** compact source fragment before the rewrite *)
  site_after : string;  (** the fragment after *)
}

val pp_site : site Fmt.t

type result = { program : Ast.program; sites : site list }

type t = {
  name : string;
  descr : string;
  kind : kind;
  safe : bool;
      (** [true] iff every rewrite is an instance of a paper-safe
          transformation, so any pipeline over safe passes inherits
          Theorems 1–4.  Unsafe passes (irrelevant-read introduction,
          the mutation-test controls) must be requested explicitly and
          are expected to be caught by [--validate-each]. *)
  paper : string;
      (** provenance anchor: the figure/§ and theorem that justify (or,
          for unsafe passes, indict) the rewrites *)
  run : Ast.program -> result;
}

val pp : t Fmt.t

(** {1 Constructors} *)

val of_chain :
  name:string ->
  descr:string ->
  kind:kind ->
  ?safe:bool ->
  paper:string ->
  (Ast.program -> Ast.program * Transform.chain) ->
  t
(** Wrap a rule-driven fixpoint: each {!Transform.step} of the returned
    chain becomes one provenance site carrying its rule name. *)

val of_rewrite :
  name:string ->
  descr:string ->
  kind:kind ->
  ?safe:bool ->
  paper:string ->
  (Ast.program -> Ast.program) ->
  t
(** Wrap a whole-program rewrite without native site reporting.  Sites
    are recovered by structural diff: per-thread, position-wise when
    the statement count is preserved (constant/copy propagation,
    folding), else one site for the whole thread. *)

val of_sites :
  name:string ->
  descr:string ->
  kind:kind ->
  ?safe:bool ->
  paper:string ->
  (Ast.program -> result) ->
  t
(** A pass that reports its own sites (the CFG-driven passes). *)

val diff_sites :
  rule:string -> before:Ast.program -> after:Ast.program -> site list
(** The structural diff used by {!of_rewrite}, exposed for tests. *)
