open Safeopt_lang
open Safeopt_analysis

type t = Reg.Set.t

let use_operand acc = function
  | Ast.Reg r -> Reg.Set.add r acc
  | Ast.Nat _ -> acc

let use_test acc = function
  | Ast.Eq (a, b) | Ast.Ne (a, b) -> use_operand (use_operand acc a) b

(* Liveness as an instance of the generic monotone framework: a
   backward may-analysis over the thread CFG (join = union), replacing
   the bespoke structural fixpoint this module used to carry.  Loops
   need no special-casing — the worklist solver iterates the back edge
   to the fixpoint. *)

module L = struct
  type nonrec t = t

  let equal = Reg.Set.equal
  let join = Reg.Set.union
  let pp ppf s = Fmt.(braces (list ~sep:comma string)) ppf (Reg.Set.elements s)
end

module Solver = Dataflow.Make (L)

let transfer (e : Cfg.edge) live =
  match e.Cfg.instr with
  | Cfg.Store (_, r) | Cfg.Print r -> Reg.Set.add r live
  | Cfg.Load (r, _) -> Reg.Set.remove r live
  | Cfg.Move (r, o) -> use_operand (Reg.Set.remove r live) o
  | Cfg.Atomic (r, _, k) ->
      let live = Reg.Set.remove r live in
      (match k with
      | Ast.Cas (e, d) -> use_operand (use_operand live e) d
      | Ast.Faa o | Ast.Xchg o -> use_operand live o)
  | Cfg.Assume (t, _) -> use_test live t
  | Cfg.Lock _ | Cfg.Unlock _ | Cfg.Nop -> live

let thread (l : Ast.thread) (live_out : t) : t =
  let g = Cfg.of_thread l in
  let facts = Solver.backward g ~init:live_out ~transfer in
  Option.value ~default:Reg.Set.empty facts.(g.Cfg.entry)

let stmt (s : Ast.stmt) (live_out : t) : t = thread [ s ] live_out

let annotate l =
  let rec go = function
    | [] -> ([], Reg.Set.empty)
    | s :: rest ->
        let annotated, live_after_rest = go rest in
        ((s, live_after_rest) :: annotated, stmt s live_after_rest)
  in
  fst (go l)

let dead_move s live_out =
  match s with
  | Ast.Move (r, _) -> not (Reg.Set.mem r live_out)
  | _ -> false

let dead_load s live_out =
  match s with
  | Ast.Load (r, _) -> not (Reg.Set.mem r live_out)
  | _ -> false
