open Safeopt_trace
open Safeopt_lang

type t = {
  name : string;
  descr : string;
  rewrites_at :
    Location.Volatile.t -> ctx:Reg.Set.t -> Ast.thread -> Ast.thread list;
}

let pp ppf r = Fmt.pf ppf "%s (%s)" r.name r.descr

let names_of_run run =
  ( Ast.fv_thread run,
    List.fold_left
      (fun acc s -> Reg.Set.union acc (Ast.regs_stmt s))
      Reg.Set.empty run )

let window_ok vol x regs run =
  Ast.sync_free_thread vol run
  &&
  let locs, rs = names_of_run run in
  (not (Location.Set.mem x locs))
  && List.for_all (fun r -> not (Reg.Set.mem r rs)) regs

(* Split a list into (middle, last, rest-after-last) for every possible
   window: middle of length 0..n-2, followed by the window's last
   statement. *)
let windows_after (l : Ast.thread) : (Ast.stmt list * Ast.stmt * Ast.thread) list =
  let rec go middle_rev = function
    | [] -> []
    | last :: rest ->
        (List.rev middle_rev, last, rest) :: go (last :: middle_rev) rest
  in
  go [] l

let non_volatile vol x = not (Location.Volatile.mem vol x)

(* --- Fig. 10: eliminations --- *)

let e_rar =
  {
    name = "E-RAR";
    descr = "r1:=x; S; r2:=x ~> r1:=x; S; r2:=r1";
    rewrites_at =
      (fun vol ~ctx:_ l ->
        match l with
        | Ast.Load (r1, x) :: rest when non_volatile vol x ->
            windows_after rest
            |> List.filter_map (fun (middle, last, after) ->
                   match last with
                   | Ast.Load (r2, x') when Location.equal x x' ->
                       if window_ok vol x [ r1; r2 ] middle then
                         Some
                           (Ast.Load (r1, x)
                            :: middle
                            @ (Ast.Move (r2, Ast.Reg r1) :: after))
                       else None
                   | _ -> None)
        | _ -> []);
  }

let e_raw =
  {
    name = "E-RAW";
    descr = "x:=r1; S; r2:=x ~> x:=r1; S; r2:=r1";
    rewrites_at =
      (fun vol ~ctx:_ l ->
        match l with
        | Ast.Store (x, r1) :: rest when non_volatile vol x ->
            windows_after rest
            |> List.filter_map (fun (middle, last, after) ->
                   match last with
                   | Ast.Load (r2, x') when Location.equal x x' ->
                       if window_ok vol x [ r1; r2 ] middle then
                         Some
                           (Ast.Store (x, r1)
                            :: middle
                            @ (Ast.Move (r2, Ast.Reg r1) :: after))
                       else None
                   | _ -> None)
        | _ -> []);
  }

let e_war =
  {
    name = "E-WAR";
    descr = "r:=x; S; x:=r ~> r:=x; S";
    rewrites_at =
      (fun vol ~ctx:_ l ->
        match l with
        | Ast.Load (r, x) :: rest when non_volatile vol x ->
            windows_after rest
            |> List.filter_map (fun (middle, last, after) ->
                   match last with
                   | Ast.Store (x', r') when Location.equal x x' && Reg.equal r r'
                     ->
                       if window_ok vol x [ r ] middle then
                         Some ((Ast.Load (r, x) :: middle) @ after)
                       else None
                   | _ -> None)
        | _ -> []);
  }

let e_wbw =
  {
    name = "E-WBW";
    descr = "x:=r1; S; x:=r2 ~> S; x:=r2";
    rewrites_at =
      (fun vol ~ctx:_ l ->
        match l with
        | Ast.Store (x, r1) :: rest when non_volatile vol x ->
            windows_after rest
            |> List.filter_map (fun (middle, last, after) ->
                   match last with
                   | Ast.Store (x', r2) when Location.equal x x' ->
                       if window_ok vol x [ r1; r2 ] middle then
                         Some (middle @ (Ast.Store (x, r2) :: after))
                       else None
                   | _ -> None)
        | _ -> []);
  }

let e_ir =
  {
    name = "E-IR";
    descr = "r:=x; r:=i ~> r:=i";
    rewrites_at =
      (fun vol ~ctx:_ l ->
        match l with
        | Ast.Load (r, x) :: Ast.Move (r', (Ast.Nat _ as i)) :: rest
          when Reg.equal r r' && non_volatile vol x ->
            [ Ast.Move (r, i) :: rest ]
        | _ -> []);
  }

let eliminations = [ e_rar; e_raw; e_war; e_wbw; e_ir ]

(* --- Fig. 11: reorderings (adjacent swaps) --- *)

let swap2 name descr matcher =
  {
    name;
    descr;
    rewrites_at =
      (fun vol ~ctx:_ l ->
        match l with
        | s1 :: s2 :: rest ->
            if matcher vol s1 s2 then [ s2 :: s1 :: rest ] else []
        | _ -> []);
  }

let r_rr =
  swap2 "R-RR" "r1:=x; r2:=y ~> r2:=y; r1:=x" (fun vol s1 s2 ->
      match (s1, s2) with
      | Ast.Load (r1, x), Ast.Load (r2, _y) ->
          (not (Reg.equal r1 r2)) && non_volatile vol x
      | _ -> false)

let r_ww =
  swap2 "R-WW" "x:=r1; y:=r2 ~> y:=r2; x:=r1" (fun vol s1 s2 ->
      match (s1, s2) with
      | Ast.Store (x, _r1), Ast.Store (y, _r2) ->
          (not (Location.equal x y)) && non_volatile vol y
      | _ -> false)

let r_wr =
  swap2 "R-WR" "x:=r1; r2:=y ~> r2:=y; x:=r1" (fun vol s1 s2 ->
      match (s1, s2) with
      | Ast.Store (x, r1), Ast.Load (r2, y) ->
          (not (Reg.equal r1 r2))
          && (not (Location.equal x y))
          && (non_volatile vol x || non_volatile vol y)
      | _ -> false)

let r_rw =
  swap2 "R-RW" "r1:=x; y:=r2 ~> y:=r2; r1:=x" (fun vol s1 s2 ->
      match (s1, s2) with
      | Ast.Load (r1, x), Ast.Store (y, r2) ->
          (not (Reg.equal r1 r2))
          && (not (Location.equal x y))
          && non_volatile vol x && non_volatile vol y
      | _ -> false)

let r_wl =
  swap2 "R-WL" "x:=r; lock m ~> lock m; x:=r" (fun vol s1 s2 ->
      match (s1, s2) with
      | Ast.Store (x, _), Ast.Lock _ -> non_volatile vol x
      | _ -> false)

let r_rl =
  swap2 "R-RL" "r:=x; lock m ~> lock m; r:=x" (fun vol s1 s2 ->
      match (s1, s2) with
      | Ast.Load (_, x), Ast.Lock _ -> non_volatile vol x
      | _ -> false)

let r_uw =
  swap2 "R-UW" "unlock m; x:=r ~> x:=r; unlock m" (fun vol s1 s2 ->
      match (s1, s2) with
      | Ast.Unlock _, Ast.Store (x, _) -> non_volatile vol x
      | _ -> false)

let r_ur =
  swap2 "R-UR" "unlock m; r:=x ~> r:=x; unlock m" (fun vol s1 s2 ->
      match (s1, s2) with
      | Ast.Unlock _, Ast.Load (_, x) -> non_volatile vol x
      | _ -> false)

let r_xr =
  swap2 "R-XR" "print r1; r2:=x ~> r2:=x; print r1" (fun vol s1 s2 ->
      match (s1, s2) with
      | Ast.Print r1, Ast.Load (r2, x) ->
          (not (Reg.equal r1 r2)) && non_volatile vol x
      | _ -> false)

let r_xw =
  swap2 "R-XW" "print r1; x:=r2 ~> x:=r2; print r1" (fun vol s1 s2 ->
      match (s1, s2) with
      | Ast.Print _, Ast.Store (x, _) -> non_volatile vol x
      | _ -> false)

let reorderings =
  [ r_rr; r_ww; r_wr; r_rw; r_wl; r_rl; r_uw; r_ur; r_xr; r_xw ]

(* Register moves are silent in the trace semantics, so commuting a
   move with an adjacent statement (respecting register dependencies)
   is an identity transformation on tracesets — trivially safe (the
   paper's "trace preserving transformations", section 2.1).  These
   rules let the window-based rules fire on programs where desugaring
   interleaved moves between memory accesses. *)

let move_mentions r = function
  | Ast.Store (_, r') | Ast.Print r' -> Reg.equal r r'
  | Ast.Load (r', _) -> Reg.equal r r'
  | Ast.Move (r', o) ->
      Reg.equal r r' || (match o with Ast.Reg r'' -> Reg.equal r r'' | _ -> false)
  | Ast.Lock _ | Ast.Unlock _ | Ast.Skip -> false
  | Ast.Atomic _ -> true (* conservative: never commute a move past an RMW *)
  | Ast.Block _ | Ast.If _ | Ast.While _ -> true (* conservative *)

let move_assigns = function
  | Ast.Load (r, _) | Ast.Move (r, _) -> Some r
  | _ -> None

let movable_past (r, o) s =
  (not (move_mentions r s))
  &&
  match o with
  | Ast.Reg src -> (
      match move_assigns s with
      | Some r' -> not (Reg.equal r' src)
      | None -> true)
  | Ast.Nat _ -> true

let m_fwd =
  swap2 "M-FWD" "r:=ri; S ~> S; r:=ri  (moves are silent)" (fun _vol s1 s2 ->
      match s1 with
      | Ast.Move (r, o) -> movable_past (r, o) s2
      | _ -> false)

let m_bwd =
  swap2 "M-BWD" "S; r:=ri ~> r:=ri; S  (moves are silent)" (fun _vol s1 s2 ->
      match s2 with
      | Ast.Move (r, o) -> movable_past (r, o) s1
      | _ -> false)

let moves = [ m_fwd; m_bwd ]

let rec read_locations_stmt = function
  | Ast.Load (_, l) -> Location.Set.singleton l
  (* An RMW's read is not eligible for irrelevant-read introduction:
     deliberately excluded, so report no read locations for it. *)
  | Ast.Store _ | Ast.Move _ | Ast.Lock _ | Ast.Unlock _ | Ast.Skip
  | Ast.Print _ | Ast.Atomic _ ->
      Location.Set.empty
  | Ast.Block body ->
      List.fold_left
        (fun acc s -> Location.Set.union acc (read_locations_stmt s))
        Location.Set.empty body
  | Ast.If (_, s1, s2) ->
      Location.Set.union (read_locations_stmt s1) (read_locations_stmt s2)
  | Ast.While (_, s) -> read_locations_stmt s

let i_ir =
  {
    name = "I-IR";
    descr = "S ~> r:=x; S  (irrelevant read introduction; unsafe in general)";
    rewrites_at =
      (fun vol ~ctx l ->
        if l = [] then []
        else
          (* Introduce, ahead of the remaining statements, a read of any
             non-volatile location they read, into a register fresh for
             the whole thread ([ctx]) so the value is never used — e.g.
             a compiler hoisting a loop-invariant load (section 2.1). *)
          let locs =
            List.fold_left
              (fun acc s -> Location.Set.union acc (read_locations_stmt s))
              Location.Set.empty l
            |> Location.Set.filter (non_volatile vol)
          in
          let _, regs = names_of_run l in
          let r = Ast.fresh_reg (Reg.Set.union ctx regs) in
          Location.Set.elements locs
          |> List.map (fun x -> Ast.Load (r, x) :: l));
  }

let all = eliminations @ reorderings

let by_name n =
  List.find_opt
    (fun r -> String.lowercase_ascii r.name = String.lowercase_ascii n)
    ((i_ir :: moves) @ all)
