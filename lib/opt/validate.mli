(** Program-level validation of transformations (the tool face of
    Theorems 1-5).

    Given an original program and a candidate transformation of it,
    check by exhaustive enumeration:
    - data race freedom of both programs,
    - inclusion of observable behaviours, and
    - optionally, that the transformation is justified semantically: the
      bounded denotation of the transformed program is related to the
      original's by elimination, reordering, or elimination followed by
      reordering (Lemma 5's composition).

    The headline predicate {!ok} is the DRF guarantee: {e if} the
    original is DRF, the transformed program must be DRF and add no
    behaviours.  For racy originals the guarantee is vacuous, but
    {!report.new_behaviour} still tells you what changed. *)

open Safeopt_trace
open Safeopt_lang
open Safeopt_exec

type relation =
  | Unchecked
  | Elimination
  | Reordering
  | Elimination_then_reordering

val pp_relation : relation Fmt.t

type report = {
  original_drf : bool;
  transformed_drf : bool;
  new_behaviour : Behaviour.t option;
      (** a behaviour of the transformed program the original lacks *)
  race_witness : Interleaving.t option;
      (** a racy execution of the transformed program when the original
          is DRF but the transformed is not *)
  relation : relation;
  relation_holds : bool option;  (** [None] when [Unchecked] *)
  relation_counterexample : Trace.t option;
      (** when a relation check fails: a transformed trace with no
          witness (no eliminable embedding / no de-permuting function) *)
}

val pp_report : report Fmt.t

val ok : report -> bool
(** [original_drf] implies ([transformed_drf] and no new behaviour);
    and the relation check, if performed, succeeded. *)

val behaviours_ok : report -> bool
(** The DRF-guarantee part alone. *)

val validate :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  original:Ast.program ->
  transformed:Ast.program ->
  unit ->
  report
(** Interpreter-level checks only ([relation = Unchecked]).

    Both DRF questions first try the static lockset certificate
    ({!Safeopt_analysis.Static_race.certified_drf}); only when the
    analysis reports potential races does the exhaustive interleaving
    enumeration run.  [jobs]/[pool] parallelise those enumerations at
    the state-space level; the report is unchanged. *)

val drf_fast :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program ->
  bool
(** [is_drf] with the static fast path: a lockset certificate first,
    enumeration only as fallback. *)

val find_race_fast :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program ->
  Interleaving.t option
(** [find_race] with the static fast path: returns [None] without
    enumerating when the program is statically certified DRF. *)

val validate_batch :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  (Ast.program * Ast.program) list ->
  report list
(** Validate many (original, transformed) pairs, sharded across the
    pool (one pair per job, claimed dynamically).  Reports come back in
    input order and are identical to [List.map] of {!validate}; each
    job accumulates into a private stats record, merged into [stats]
    after the join. *)

val witness :
  original:Ast.program ->
  transformed:Ast.program ->
  report ->
  Ast.program Safeopt_core.Witness.t option
(** Turn a failed report into a structured counterexample: the program
    pair plus the strongest evidence it carries (an introduced race,
    then a new behaviour, then an unwitnessed trace from a relation
    check).  [None] when the report satisfies {!ok} — or in the
    degenerate case where it fails but records no concrete evidence
    (e.g. a racy original, where the DRF guarantee is vacuous). *)

type chain_report = {
  pairwise : report list;  (** adjacent pairs, in order *)
  end_to_end : report;  (** first program vs last *)
}

val pp_chain_report : chain_report Fmt.t

val chain_ok : chain_report -> bool
(** Every pairwise report and the end-to-end report satisfy {!ok} —
    the paper's main composition result: a finite chain of safe
    transformations starting from a DRF program adds no behaviours. *)

val validate_chain :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program list ->
  chain_report
(** Validate a chain of at least one program ([relation = Unchecked]
    per pair).  Each program's behaviours and race witness are computed
    once and shared between the pairwise and end-to-end reports; under
    [jobs]/[pool] the per-program enumerations shard across domains.
    @raise Invalid_argument on an empty chain. *)

val validate_semantic :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?max_len:int ->
  relation:relation ->
  original:Ast.program ->
  transformed:Ast.program ->
  unit ->
  report
(** Additionally check the claimed traceset relation on the programs'
    bounded denotations ([max_len], default 12, bounds trace length;
    both denotations use their joint value universe).  Expensive —
    intended for litmus-sized programs. *)
