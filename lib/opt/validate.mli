(** Program-level validation of transformations (the tool face of
    Theorems 1-5).

    Given an original program and a candidate transformation of it,
    check by exhaustive enumeration:
    - data race freedom of both programs,
    - inclusion of observable behaviours, and
    - optionally, that the transformation is justified semantically: the
      bounded denotation of the transformed program is related to the
      original's by elimination, reordering, or elimination followed by
      reordering (Lemma 5's composition).

    The headline predicate {!ok} is the DRF guarantee: {e if} the
    original is DRF, the transformed program must be DRF and add no
    behaviours.  For racy originals the guarantee is vacuous, but
    {!report.new_behaviour} still tells you what changed.

    Every check is parameterised by a {!Safeopt_model.Memory_model.t}
    (default {!Safeopt_model.Memory_model.Sc}).  The model supplies
    both the behaviour sets being compared {e and} the safety
    criterion, via its racy-behaviour semantics: SC catches fire on
    races (the DRF-guarantee criterion above), while the hardware
    models give racy programs defined machine behaviour, so under
    TSO/PSO {!ok} is plain behaviour inclusion. *)

open Safeopt_trace
open Safeopt_lang
open Safeopt_exec

type relation =
  | Unchecked
  | Elimination
  | Reordering
  | Elimination_then_reordering

val pp_relation : relation Fmt.t

type report = {
  model : Safeopt_model.Memory_model.t;
      (** the model whose behaviours were compared and whose criterion
          {!ok} applies *)
  original_drf : bool;
  transformed_drf : bool;
  new_behaviour : Behaviour.t option;
      (** a behaviour of the transformed program the original lacks,
          under {!report.model} *)
  race_witness : Interleaving.t option;
      (** a racy execution of the transformed program when the original
          is DRF but the transformed is not *)
  relation : relation;
  relation_holds : bool option;  (** [None] when [Unchecked] *)
  relation_counterexample : Trace.t option;
      (** when a relation check fails: a transformed trace with no
          witness (no eliminable embedding / no de-permuting function) *)
}

val pp_report : report Fmt.t

val ok : report -> bool
(** Under a catch-fire model: [original_drf] implies
    ([transformed_drf] and no new behaviour).  Under a hardware model:
    no new behaviour, full stop.  In both cases the relation check, if
    performed, must have succeeded. *)

val behaviours_ok : report -> bool
(** The model-criterion part alone (no relation check). *)

val validate :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?model:Safeopt_model.Memory_model.t ->
  original:Ast.program ->
  transformed:Ast.program ->
  unit ->
  report
(** Interpreter-level checks only ([relation = Unchecked]).  [model]
    (default [Sc]) selects the backend whose behaviour sets are
    compared; the DRF legs are SC questions under every model.

    Both DRF questions first try the static lockset certificate
    ({!Safeopt_analysis.Static_race.certified_drf}); only when the
    analysis reports potential races does the exhaustive interleaving
    enumeration run.  [jobs]/[pool] parallelise those enumerations at
    the state-space level; the report is unchanged. *)

val drf_fast :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program ->
  bool
(** [is_drf] with the static fast path: a lockset certificate first,
    enumeration only as fallback. *)

val find_race_fast :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program ->
  Interleaving.t option
(** [find_race] with the static fast path: returns [None] without
    enumerating when the program is statically certified DRF. *)

val validate_batch :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?model:Safeopt_model.Memory_model.t ->
  (Ast.program * Ast.program) list ->
  report list
(** Validate many (original, transformed) pairs, sharded across the
    pool (one pair per job, claimed dynamically).  Reports come back in
    input order and are identical to [List.map] of {!validate}; each
    job accumulates into a private stats record, merged into [stats]
    after the join. *)

val witness :
  original:Ast.program ->
  transformed:Ast.program ->
  report ->
  Ast.program Safeopt_core.Witness.t option
(** Turn a failed report into a structured counterexample: the program
    pair plus the strongest evidence it carries (an introduced race,
    then a new behaviour, then an unwitnessed trace from a relation
    check).  [None] when the report satisfies {!ok} — or in the
    degenerate case where it fails but records no concrete evidence
    (e.g. a racy original, where the DRF guarantee is vacuous). *)

(** {1 The validator escalation ladder}

    Three ways to decide the DRF guarantee for a program pair, ordered
    by cost:

    - {e static}: syntactic program equality (and, inside the
      exhaustive rung, the lockset certificate for the DRF legs) — no
      semantics at all;
    - {e refine}: the thread-local refinement analysis
      ({!Safeopt_analysis.Refine}) — per-thread traceset matching,
      no interleavings;
    - {e exhaustive}: the interpreter-level differential validation
      ({!validate}) — the full interleaving enumeration.

    [Auto] climbs the ladder and stops at the first rung that decides.
    A refine counterexample does {e not} reject in [Auto] — the
    traceset relation is sufficient for safety but not necessary — it
    escalates, so [Auto]'s verdict always equals [Exhaustive]'s.
    Forcing a single rung reports inconclusive when it cannot decide.

    Under a hardware model the static rung still applies, but the
    refinement rung is an SC-sound argument: [Auto] only uses it when
    both programs carry a static DRF certificate (their model
    behaviours then coincide with SC by the DRF guarantee) and
    otherwise escalates to model-exhaustive enumeration, so its
    verdict still always equals [Exhaustive]'s under that model;
    forcing [Refinement] reports inconclusive. *)

type validator = Static | Refinement | Exhaustive | Auto

val pp_validator : validator Fmt.t

type method_ =
  | Equal_programs  (** decided by syntactic equality (static rung) *)
  | Refined  (** decided by per-thread refinement *)
  | Enumerated  (** decided by exhaustive enumeration *)
  | Inconclusive  (** a forced rung could not decide *)

type outcome = {
  out_validator : validator;  (** the mode that was requested *)
  out_method : method_;  (** the rung that produced the verdict *)
  out_ok : bool;
      (** the DRF guarantee holds ([Inconclusive] is never ok) *)
  out_refine : Safeopt_analysis.Refine.t option;
      (** the refinement analysis, whenever it ran *)
  out_report : report option;
      (** the exhaustive report, iff the enumeration ran *)
  out_note : string option;  (** why a rung was skipped or escalated *)
}

val method_tag : outcome -> string
(** Short provenance tag: ["static"], ["refine"], ["exhaustive"] or
    ["inconclusive"]. *)

val outcome_ok : outcome -> bool

val outcome_witness :
  original:Ast.program ->
  transformed:Ast.program ->
  outcome ->
  Ast.program Safeopt_core.Witness.t option
(** Structured counterexample for a failed outcome: from the
    exhaustive report when the enumeration ran ({!witness}), otherwise
    from the refine counterexample
    ({!Safeopt_analysis.Refine.witness}). *)

val pp_outcome : outcome Fmt.t

val run_validator :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?max_len:int ->
  ?max_traces:int ->
  ?model:Safeopt_model.Memory_model.t ->
  validator ->
  original:Ast.program ->
  transformed:Ast.program ->
  unit ->
  outcome
(** Decide the pair under the given mode and model.
    [max_len]/[max_traces] bound the refine rung's per-thread
    enumerations; [fuel], [max_states], [stats], [jobs], [pool]
    parameterise the exhaustive rung exactly as in {!validate}.  When
    the {!Safeopt_obs.Metrics} registry is enabled, publishes the
    fast-path hit-rate counters [validate.outcomes],
    [validate.static_hits], [validate.refine_hits],
    [validate.refine_misses] and [validate.exhaustive_runs], plus a
    per-model [validate.model.<name>] counter. *)

type chain_report = {
  pairwise : report list;  (** adjacent pairs, in order *)
  end_to_end : report;  (** first program vs last *)
}

val pp_chain_report : chain_report Fmt.t

val chain_ok : chain_report -> bool
(** Every pairwise report and the end-to-end report satisfy {!ok} —
    the paper's main composition result: a finite chain of safe
    transformations starting from a DRF program adds no behaviours. *)

val validate_chain :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program list ->
  chain_report
(** Validate a chain of at least one program ([relation = Unchecked]
    per pair).  Each program's behaviours and race witness are computed
    once and shared between the pairwise and end-to-end reports; under
    [jobs]/[pool] the per-program enumerations shard across domains.
    @raise Invalid_argument on an empty chain. *)

val validate_semantic :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?max_len:int ->
  relation:relation ->
  original:Ast.program ->
  transformed:Ast.program ->
  unit ->
  report
(** Additionally check the claimed traceset relation on the programs'
    bounded denotations ([max_len], default 12, bounds trace length;
    both denotations use their joint value universe).  Expensive —
    intended for litmus-sized programs. *)
