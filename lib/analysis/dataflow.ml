module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val pp : t Fmt.t
end

module Make (L : LATTICE) = struct
  type fact = L.t option

  let solve ~num_nodes ~start ~init ~out_edges ~target ~transfer =
    let value = Array.make num_nodes None in
    value.(start) <- Some init;
    let in_queue = Array.make num_nodes false in
    let queue = Queue.create () in
    Queue.add start queue;
    in_queue.(start) <- true;
    let enqueue n =
      if not in_queue.(n) then begin
        in_queue.(n) <- true;
        Queue.add n queue
      end
    in
    while not (Queue.is_empty queue) do
      let n = Queue.pop queue in
      in_queue.(n) <- false;
      match value.(n) with
      | None -> ()
      | Some v ->
          List.iter
            (fun e ->
              let d = target e in
              let nv = transfer e v in
              let merged, changed =
                match value.(d) with
                | None -> (nv, true)
                | Some old ->
                    let j = L.join old nv in
                    (j, not (L.equal j old))
              in
              if changed then begin
                value.(d) <- Some merged;
                enqueue d
              end)
            (out_edges n)
    done;
    value

  let forward (g : Cfg.t) ~init ~transfer =
    let succs = Cfg.succs g in
    solve ~num_nodes:g.Cfg.num_nodes ~start:g.Cfg.entry ~init
      ~out_edges:(fun n -> succs.(n))
      ~target:(fun e -> e.Cfg.dst)
      ~transfer

  let backward (g : Cfg.t) ~init ~transfer =
    let preds = Cfg.preds g in
    solve ~num_nodes:g.Cfg.num_nodes ~start:g.Cfg.exit_node ~init
      ~out_edges:(fun n -> preds.(n))
      ~target:(fun e -> e.Cfg.src)
      ~transfer

  let pp_fact ppf = function
    | None -> Fmt.string ppf "unreachable"
    | Some v -> L.pp ppf v
end
