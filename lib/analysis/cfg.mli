(** Control-flow graphs over the Fig. 6 AST.

    One graph per thread: nodes are program points, edges are labelled
    with the primitive instruction executed between them.  Structured
    control flow is compiled the standard way — [If] forks on a pair of
    [Assume] edges and rejoins at a fresh node; [While] gets a header
    node with an [Assume]-true edge into the body (looping back to the
    header) and an [Assume]-false edge out.  The graph over-approximates
    the thread's executions: every run of the small-step semantics
    follows some graph path, so forward dataflow facts computed here are
    sound for every interleaving.

    Every edge carries the {!path} of the statement it was generated
    from — the list of child indices navigating the AST (statement
    index within a thread or [Block]; [0]/[1] for the [If] branches;
    [0] for a [While] body) — so analyses can report results against
    the source program. *)

open Safeopt_trace
open Safeopt_lang

type path = int list
(** Position of a statement in a thread: child indices from the root. *)

val pp_path : path Fmt.t
val compare_path : path -> path -> int

type instr =
  | Store of Location.t * Reg.t
  | Load of Reg.t * Location.t
  | Move of Reg.t * Ast.operand
  | Atomic of Reg.t * Location.t * Ast.rmw
      (** one atomic RMW edge: reads and writes its location *)
  | Lock of Monitor.t
  | Unlock of Monitor.t
  | Print of Reg.t
  | Assume of Ast.test * bool  (** branch edge: test assumed true/false *)
  | Nop  (** skip, joins, loop-header links *)

val pp_instr : instr Fmt.t
val pp_test : Ast.test Fmt.t

type node = int
type edge = { src : node; dst : node; instr : instr; path : path }

type t = {
  entry : node;
  exit_node : node;
  num_nodes : int;
  edges : edge list;
}

val of_thread : Ast.thread -> t
(** Entry is node 0; nodes are numbered [0 .. num_nodes - 1]. *)

val succs : t -> edge list array
(** Outgoing edges, indexed by source node. *)

val preds : t -> edge list array
(** Incoming edges, indexed by destination node. *)

val pp : t Fmt.t
