open Safeopt_trace
open Safeopt_lang
module Metrics = Safeopt_obs.Metrics
module Tracer = Safeopt_obs.Tracer
module Ev = Safeopt_obs.Event

type thread_verdict =
  | Identical
  | Refines of { traces : int }
  | Fails of Trace.t
  | Bounded of string

let pp_thread_verdict ppf = function
  | Identical -> Fmt.string ppf "identical"
  | Refines { traces } -> Fmt.pf ppf "refines (%d traces witnessed)" traces
  | Fails t -> Fmt.pf ppf "FAILS: unwitnessed trace %a" Trace.pp t
  | Bounded reason -> Fmt.pf ppf "inconclusive (%s)" reason

type t = {
  blocked : string option;
  threads : (Thread_id.t * thread_verdict) list;
  max_len : int;
}

let pp ppf r =
  match r.blocked with
  | Some reason -> Fmt.pf ppf "refinement not applicable: %s" reason
  | None ->
      Fmt.pf ppf "@[<v>%a@]"
        Fmt.(
          list ~sep:cut (fun ppf (tid, v) ->
              pf ppf "thread %a: %a" Thread_id.pp tid pp_thread_verdict v))
        r.threads

type verdict =
  | Safe
  | Counterexample of Thread_id.t * Trace.t
  | Unknown of string

let pp_verdict ppf = function
  | Safe -> Fmt.string ppf "SAFE (per-thread refinement)"
  | Counterexample (tid, t) ->
      Fmt.pf ppf "COUNTEREXAMPLE in thread %a: unwitnessed trace %a"
        Thread_id.pp tid Trace.pp t
  | Unknown reason -> Fmt.pf ppf "UNKNOWN (%s)" reason

let verdict r =
  match r.blocked with
  | Some reason -> Unknown reason
  | None -> (
      let fails =
        List.find_map
          (function tid, Fails t -> Some (tid, t) | _ -> None)
          r.threads
      in
      match fails with
      | Some (tid, t) -> Counterexample (tid, t)
      | None -> (
          let bounded =
            List.find_map
              (function
                | tid, Bounded reason ->
                    Some (Fmt.str "thread %a: %s" Thread_id.pp tid reason)
                | _ -> None)
              r.threads
          in
          match bounded with
          | Some reason -> Unknown reason
          | None -> Safe))

let count name v =
  if Metrics.enabled () then Metrics.add (Metrics.counter Metrics.global name) v

(* One thread: enumerate both single-thread denotations and match every
   transformed trace into the original's elimination closure via the
   reordering search (Lemma 5's composition).  A positive verdict needs
   the transformed enumeration to be complete — otherwise an unexplored
   longer trace could be unwitnessed; a negative verdict needs the
   original enumeration to be complete — otherwise the witness might
   live past the truncation. *)
let rec has_atomic_stmt = function
  | Ast.Atomic _ -> true
  | Ast.Block l -> List.exists has_atomic_stmt l
  | Ast.If (_, s1, s2) -> has_atomic_stmt s1 || has_atomic_stmt s2
  | Ast.While (_, s) -> has_atomic_stmt s
  | Ast.Store _ | Ast.Load _ | Ast.Move _ | Ast.Lock _ | Ast.Unlock _
  | Ast.Skip | Ast.Print _ ->
      false

let check_thread ~vol ~universe ~max_len ~max_traces tid torig ttrans =
  if Ast.equal_thread torig ttrans then Identical
  else if
    List.exists has_atomic_stmt torig || List.exists has_atomic_stmt ttrans
  then
    (* An RMW's written value is a function of the value read (e.g.
       [faa] adds), so tracesets over the literal-derived universe are
       not closed under updates and a per-thread comparison could be
       read-incomplete.  Escalate instead of guessing: [Bounded] makes
       the auto ladder fall through to the exhaustive product check,
       which needs no value universe. *)
    Bounded "thread performs atomic updates; universe not update-closed"
  else
    let ts_trans, trans_complete =
      Denote.thread_traces ~max_traces ~universe ~max_len ~tid ttrans
    in
    if not trans_complete then
      Bounded "transformed thread denotation truncated"
    else
      let orig_len = max_len + Ast.thread_size torig + 1 in
      let ts_orig, orig_complete =
        Denote.thread_traces ~max_traces ~universe ~max_len:orig_len ~tid torig
      in
      let mem =
        Safeopt_core.Elimination.memoised_member vol ~original:ts_orig
          ~universe
      in
      let unwitnessed =
        List.find_opt
          (fun t -> Option.is_none (Safeopt_core.Reorder.find vol t ~mem))
          (Traceset.to_list ts_trans)
      in
      match unwitnessed with
      | None -> Refines { traces = Traceset.cardinal ts_trans }
      | Some cex ->
          if orig_complete then Fails cex
          else Bounded "original thread denotation truncated"

let check ?(max_len = 12) ?(max_traces = 50_000) ~original ~transformed () =
  count "refine.checks" 1;
  let sp = if Tracer.enabled () then Tracer.span "refine" else Tracer.none in
  let r =
    if
      List.length original.Ast.threads
      <> List.length transformed.Ast.threads
    then { blocked = Some "thread count changed"; threads = []; max_len }
    else if
      not
        (Location.Volatile.equal original.Ast.volatile
           transformed.Ast.volatile)
    then
      { blocked = Some "volatile annotations changed"; threads = []; max_len }
    else
      let universe = Denote.joint_universe [ original; transformed ] in
      let vol = original.Ast.volatile in
      let threads =
        List.mapi
          (fun tid (torig, ttrans) ->
            let v =
              check_thread ~vol ~universe ~max_len ~max_traces tid torig
                ttrans
            in
            (match v with
            | Identical -> count "refine.threads_identical" 1
            | Refines _ -> count "refine.threads_refined" 1
            | Fails _ -> count "refine.threads_failed" 1
            | Bounded _ -> count "refine.threads_bounded" 1);
            (tid, v))
          (List.combine original.Ast.threads transformed.Ast.threads)
      in
      { blocked = None; threads; max_len }
  in
  let tag =
    match verdict r with
    | Safe ->
        count "refine.safe" 1;
        "safe"
    | Counterexample _ ->
        count "refine.counterexamples" 1;
        "counterexample"
    | Unknown _ ->
        count "refine.unknown" 1;
        "unknown"
  in
  Tracer.close_span
    ~attrs:
      [
        ("verdict", Ev.Str tag);
        ("threads", Ev.Int (List.length r.threads));
      ]
    sp;
  r

let witness ~original ~transformed r =
  match verdict r with
  | Counterexample (_, t) ->
      Some
        (Safeopt_core.Witness.make ~original ~transformed
           (Safeopt_core.Witness.Relation_failure t))
  | Safe | Unknown _ -> None
