open Safeopt_trace
open Safeopt_lang

module Must = Dataflow.Make (struct
  type t = Monitor.Set.t

  let equal = Monitor.Set.equal
  let join = Monitor.Set.inter

  let pp ppf s =
    Fmt.(braces (list ~sep:comma Monitor.pp)) ppf (Monitor.Set.elements s)
end)

let transfer (e : Cfg.edge) held =
  match e.Cfg.instr with
  | Cfg.Lock m -> Monitor.Set.add m held
  | Cfg.Unlock m -> Monitor.Set.remove m held
  | Cfg.Store _ | Cfg.Load _ | Cfg.Move _ | Cfg.Atomic _ | Cfg.Print _
  | Cfg.Assume _ | Cfg.Nop ->
      held

let held_at g = Must.forward g ~init:Monitor.Set.empty ~transfer

type kind = Read | Write | Update

let pp_kind ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"
  | Update -> Fmt.string ppf "update"

type access = {
  tid : Thread_id.t;
  site : int;
  path : Cfg.path;
  kind : kind;
  loc : Location.t;
  locked : Monitor.Set.t;
  volatile : bool;
}

let pp_access ppf a =
  Fmt.pf ppf "thread %a site %d: %a %a%s held %a" Thread_id.pp a.tid a.site
    pp_kind a.kind Location.pp a.loc
    (if a.volatile then " (volatile)" else "")
    Must.pp_fact (Some a.locked)

(* Accesses on edges whose source node is unreachable are dropped: the
   semantics can never execute them, so they cannot participate in a
   race.  For reachable edges the must-held set under-approximates the
   monitors held whenever the access executes, which is the sound
   direction for race checking. *)
let thread_accesses vol tid (thread : Ast.thread) =
  let g = Cfg.of_thread thread in
  let held = held_at g in
  let site = ref 0 in
  List.filter_map
    (fun (e : Cfg.edge) ->
      let mk kind loc =
        match held.(e.Cfg.src) with
        | None -> None
        | Some locked ->
            let a =
              {
                tid;
                site = !site;
                path = e.Cfg.path;
                kind;
                loc;
                locked;
                volatile = Location.Volatile.mem vol loc;
              }
            in
            incr site;
            Some a
      in
      match e.Cfg.instr with
      | Cfg.Store (l, _) -> mk Write l
      | Cfg.Load (_, l) -> mk Read l
      | Cfg.Atomic (_, l, _) -> mk Update l
      | Cfg.Move _ | Cfg.Lock _ | Cfg.Unlock _ | Cfg.Print _ | Cfg.Assume _
      | Cfg.Nop ->
          None)
    g.Cfg.edges

let program_accesses (p : Ast.program) =
  List.concat (List.mapi (fun tid t -> thread_accesses p.volatile tid t) p.threads)

(* May-access summary: which locations each thread can read or write at
   all (reachability included), for quick disjointness arguments. *)
type summary = {
  s_tid : Thread_id.t;
  reads : Location.Set.t;
  writes : Location.Set.t;
}

let summarise (p : Ast.program) =
  List.mapi
    (fun tid thread ->
      let accs = thread_accesses p.volatile tid thread in
      List.fold_left
        (fun s a ->
          match a.kind with
          | Read -> { s with reads = Location.Set.add a.loc s.reads }
          | Write -> { s with writes = Location.Set.add a.loc s.writes }
          | Update ->
              {
                s with
                reads = Location.Set.add a.loc s.reads;
                writes = Location.Set.add a.loc s.writes;
              })
        { s_tid = tid; reads = Location.Set.empty; writes = Location.Set.empty }
        accs)
    p.threads

let pp_summary ppf s =
  Fmt.pf ppf "thread %a reads %a writes %a" Thread_id.pp s.s_tid
    Fmt.(braces (list ~sep:comma Location.pp))
    (Location.Set.elements s.reads)
    Fmt.(braces (list ~sep:comma Location.pp))
    (Location.Set.elements s.writes)

(* --- source windows --------------------------------------------------- *)

(* Flatten a thread into (path, text) lines mirroring the paths the CFG
   assigns, so an access can be pinpointed in its surrounding source. *)
let rec stmt_lines path indent s =
  let pad = String.make (2 * indent) ' ' in
  let prim txt = [ (Some path, pad ^ txt) ] in
  match s with
  | Ast.Store _ | Ast.Load _ | Ast.Move _ | Ast.Lock _ | Ast.Unlock _
  | Ast.Skip | Ast.Print _ | Ast.Atomic _ ->
      prim (Pp.stmt_compact s)
  | Ast.Block l ->
      [ (None, pad ^ "{") ]
      @ List.concat (List.mapi (fun i s -> stmt_lines (path @ [ i ]) (indent + 1) s) l)
      @ [ (None, pad ^ "}") ]
  | Ast.If (t, s1, s2) ->
      [ (None, pad ^ Fmt.str "if (%a)" Cfg.pp_test t) ]
      @ stmt_lines (path @ [ 0 ]) (indent + 1) s1
      @ [ (None, pad ^ "else") ]
      @ stmt_lines (path @ [ 1 ]) (indent + 1) s2
  | Ast.While (t, s) ->
      [ (None, pad ^ Fmt.str "while (%a)" Cfg.pp_test t) ]
      @ stmt_lines (path @ [ 0 ]) (indent + 1) s

let thread_lines (thread : Ast.thread) =
  List.concat (List.mapi (fun i s -> stmt_lines [ i ] 1 s) thread)

let source_window ?(context = 2) (thread : Ast.thread) (path : Cfg.path) =
  let lines = thread_lines thread in
  let mark =
    List.mapi
      (fun i (p, _) ->
        match p with
        | Some p when Cfg.compare_path p path = 0 -> Some i
        | _ -> None)
      lines
    |> List.find_map Fun.id
  in
  match mark with
  | None -> []
  | Some m ->
      let lo = max 0 (m - context) in
      let hi = min (List.length lines - 1) (m + context) in
      List.filteri (fun i _ -> i >= lo && i <= hi) lines
      |> List.mapi (fun i (_, txt) ->
             (if lo + i = m then ">" else "|") ^ " " ^ txt)
