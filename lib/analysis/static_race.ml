open Safeopt_trace
open Safeopt_lang

type pair = { fst_access : Lockset.access; snd_access : Lockset.access }

let pp_pair ppf { fst_access = a; snd_access = b } =
  Fmt.pf ppf "@[<v>%a: thread %a %a vs thread %a %a@]" Location.pp
    a.Lockset.loc Thread_id.pp a.Lockset.tid Lockset.pp_kind a.Lockset.kind
    Thread_id.pp b.Lockset.tid Lockset.pp_kind b.Lockset.kind

type report = { accesses : Lockset.access list; races : pair list }

(* Two accesses form a race candidate exactly when they could become
   the paper's adjacent conflicting pair in some interleaving: distinct
   threads, same non-volatile location, at least one write — unless a
   common monitor is definitely held around both, in which case mutual
   exclusion keeps them apart in every execution.  An atomic update
   counts as a write against plain accesses, but two updates of the
   same location never race: atomicity totally orders them. *)
let write_like = function
  | Lockset.Write | Lockset.Update -> true
  | Lockset.Read -> false

let candidate (a : Lockset.access) (b : Lockset.access) =
  (not (Thread_id.equal a.tid b.tid))
  && Location.equal a.loc b.loc
  && (not a.volatile)
  && (write_like a.kind || write_like b.kind)
  && (not (a.kind = Lockset.Update && b.kind = Lockset.Update))
  && Monitor.Set.is_empty (Monitor.Set.inter a.locked b.locked)

(* One report per unordered candidate pair: orient each pair so the
   earlier source window comes first ((tid, site) lexicographic, the
   order the program text lists the accesses) and collapse duplicates,
   so a race never shows up both as (a, b) and as (b, a). *)
let access_key (a : Lockset.access) = (a.Lockset.tid, a.Lockset.site)

let canonical a b =
  if access_key a <= access_key b then { fst_access = a; snd_access = b }
  else { fst_access = b; snd_access = a }

let pair_key pr = (access_key pr.fst_access, access_key pr.snd_access)

let analyse (p : Ast.program) =
  let accesses = Lockset.program_accesses p in
  let rec pairs = function
    | [] -> []
    | a :: rest ->
        List.filter_map
          (fun b -> if candidate a b then Some (canonical a b) else None)
          rest
        @ pairs rest
  in
  let races =
    List.sort_uniq
      (fun p q -> compare (pair_key p) (pair_key q))
      (pairs accesses)
  in
  { accesses; races }

let certified_drf p = (analyse p).races = []

let pp_report ppf r =
  Fmt.pf ppf "@[<v>per-access locksets:@ %a@ "
    Fmt.(list ~sep:cut (fun ppf a -> pf ppf "  %a" Lockset.pp_access a))
    r.accesses;
  match r.races with
  | [] -> Fmt.pf ppf "verdict: DRF (certified statically)@]"
  | races ->
      Fmt.pf ppf "potential races (%d):@ %a@ verdict: POTENTIAL RACES@]"
        (List.length races)
        Fmt.(list ~sep:cut (fun ppf p -> pf ppf "  %a" pp_pair p))
        races

(* Full CLI-facing report with source windows around each racing
   access. *)
let pp_race_with_windows (p : Ast.program) ppf pr =
  let window (a : Lockset.access) =
    match List.nth_opt p.Ast.threads a.tid with
    | None -> []
    | Some thread -> Lockset.source_window thread a.path
  in
  let side tag (a : Lockset.access) =
    Fmt.pf ppf "  %s thread %a site %d (%a, held %a):@ " tag Thread_id.pp
      a.tid a.site Lockset.pp_kind a.kind Lockset.Must.pp_fact (Some a.locked);
    List.iter (fun l -> Fmt.pf ppf "      %s@ " l) (window a)
  in
  Fmt.pf ppf "@[<v>race on %a:@ " Location.pp pr.fst_access.Lockset.loc;
  side "a)" pr.fst_access;
  side "b)" pr.snd_access;
  Fmt.pf ppf "@]"
