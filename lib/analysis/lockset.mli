(** Lockset analysis: the set of monitors {e definitely} held at every
    shared-memory access, thread by thread.

    An instance of the monotone framework ({!Dataflow.Make}) on the
    lattice of monitor sets ordered by reverse inclusion: [join] is set
    intersection (a must-analysis), [lock m] adds [m], [unlock m]
    removes it, everything else is the identity.  The fixpoint at a
    node under-approximates the monitors held on {e every} execution
    reaching that point; under-approximation is the sound direction for
    race checking, because protection is only ever claimed when the
    lock is provably held — reentrancy and even unbalanced locking just
    lose precision, never soundness.

    Accesses on statically unreachable edges are dropped entirely: the
    semantics cannot execute them, so they cannot race. *)

open Safeopt_trace
open Safeopt_lang

module Must : sig
  type fact = Monitor.Set.t option

  val forward :
    Cfg.t ->
    init:Monitor.Set.t ->
    transfer:(Cfg.edge -> Monitor.Set.t -> Monitor.Set.t) ->
    fact array

  val backward :
    Cfg.t ->
    init:Monitor.Set.t ->
    transfer:(Cfg.edge -> Monitor.Set.t -> Monitor.Set.t) ->
    fact array

  val pp_fact : fact Fmt.t
end

val held_at : Cfg.t -> Must.fact array
(** Monitors definitely held at each node ([None] = unreachable). *)

type kind = Read | Write | Update  (** [Update]: an atomic RMW, both *)

val pp_kind : kind Fmt.t

type access = {
  tid : Thread_id.t;
  site : int;  (** unique within the thread, in program order *)
  path : Cfg.path;  (** position of the generating statement *)
  kind : kind;
  loc : Location.t;
  locked : Monitor.Set.t;  (** monitors definitely held at the access *)
  volatile : bool;
}

val pp_access : access Fmt.t

val thread_accesses :
  Location.Volatile.t -> Thread_id.t -> Ast.thread -> access list
(** All reachable shared accesses of one thread with their locksets. *)

val program_accesses : Ast.program -> access list
(** {!thread_accesses} over every thread, threads numbered from 0. *)

type summary = {
  s_tid : Thread_id.t;
  reads : Location.Set.t;
  writes : Location.Set.t;
}
(** May-access summary: the locations a thread can touch at all. *)

val summarise : Ast.program -> summary list
val pp_summary : summary Fmt.t

val source_window : ?context:int -> Ast.thread -> Cfg.path -> string list
(** The access's source line marked with [>], with [context] (default
    2) surrounding lines marked [|]; empty if the path is not found. *)
