(** Static data-race detection over per-thread locksets — the fast path
    of the DRF guarantee.

    Combines the {!Lockset} summaries of all threads and reports every
    pair of accesses that could become the paper's adjacent conflicting
    pair in some interleaving: distinct threads, same non-volatile
    location, at least one write, and no monitor definitely held around
    both.  If no such pair exists the program is {e certified} data race
    free — soundly, for every interleaving and without enumerating any:
    if two conflicting accesses shared no definitely-held monitor were
    adjacent in an execution, both threads would hold no common lock at
    that point, while any reported common monitor would have to be held
    by both threads simultaneously, contradicting mutual exclusion.

    The converse does not hold: reported pairs are {e potential} races
    (the analysis is value- and path-insensitive), so a non-empty
    report means "fall back to enumeration", not "racy". *)

open Safeopt_lang

type pair = { fst_access : Lockset.access; snd_access : Lockset.access }

val pp_pair : pair Fmt.t

type report = { accesses : Lockset.access list; races : pair list }

val analyse : Ast.program -> report
(** All reachable accesses with locksets, plus every unprotected
    conflicting cross-thread pair.  Each unordered pair is reported
    exactly once — never both as [(a, b)] and [(b, a)] — oriented so
    the access with the earlier source window (lexicographic on
    (thread, site)) comes first, and sorted in that order. *)

val certified_drf : Ast.program -> bool
(** [true] iff {!analyse} reports no potential race: a sound static
    certificate that the program is DRF under any schedule. *)

val pp_report : report Fmt.t

val pp_race_with_windows : Ast.program -> pair Fmt.t
(** One potential race with marked source windows for both sides. *)
