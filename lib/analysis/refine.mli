(** Thread-local refinement: decide pass safety per thread, without
    enumerating a single interleaving.

    The paper justifies a transformation by relating whole-program
    tracesets: the transformed denotation must be an elimination of the
    original's (Theorem 3), a reordering (Theorem 4), or an elimination
    followed by a reordering (Lemma 5).  But [[P]] is a {e union of
    per-thread trace sets} — every trace starts with [S(i)] and [S(i)]
    is never eliminable or reorderable — so a transformed thread-[i]
    trace can only ever be witnessed by an original thread-[i] trace.
    The relation therefore decomposes thread by thread, and checking it
    needs no scheduler: this is Poetzl & Kroening's observation
    (arXiv:1510.07171) that the DRF-soundness question answered
    globally by the exhaustive differential validator can be decided by
    per-thread refinement relations, at a cost {e linear} in the number
    of threads instead of exponential in the interleavings.

    For each thread this module enumerates the bounded single-thread
    denotations of the original and transformed program
    ({!Safeopt_lang.Denote.thread_traces}) and asks whether every
    transformed trace de-permutes — via the reordering search
    ({!Safeopt_core.Reorder.find}) over the memoised elimination
    closure ({!Safeopt_core.Elimination.memoised_member}) — into the
    original's traces: exactly Lemma 5's composition, which subsumes
    pure eliminations (identity permutation) and pure reorderings
    (empty elimination).

    Soundness of a {!Safe} verdict: witness validity is checked against
    the exact replay oracle (all wildcard instances must belong to the
    original denotation), and the transformed enumeration carries a
    completeness certificate, so [Safe] means the bounded relation
    really holds — and then Theorems 3–5 give the DRF guarantee for
    {e any} original, racy or not.  The converse direction is lossy by
    design: the relation is sufficient, not necessary, so a
    {!Counterexample} or {!Unknown} verdict only means "escalate to the
    exhaustive validator", never "reject" (the [auto] validator ladder
    in {!Safeopt_opt.Validate} does precisely that). *)

open Safeopt_trace
open Safeopt_lang

type thread_verdict =
  | Identical  (** the thread is syntactically unchanged *)
  | Refines of { traces : int }
      (** every transformed trace ([traces] of them) has an
          elimination-then-reordering witness into the original
          thread's complete bounded denotation *)
  | Fails of Trace.t
      (** a transformed trace with no witness — a structured
          counterexample (the original enumeration was complete, so the
          trace is genuinely unwitnessed within the bound) *)
  | Bounded of string
      (** an enumeration was truncated ([max_len]/[max_traces]), so no
          verdict for this thread *)

val pp_thread_verdict : thread_verdict Fmt.t

type t = {
  blocked : string option;
      (** a structural precondition failed (thread count or volatile
          annotations changed) — no per-thread analysis was run *)
  threads : (Thread_id.t * thread_verdict) list;
  max_len : int;  (** transformed-side trace length bound used *)
}

val pp : t Fmt.t

type verdict =
  | Safe
      (** every thread refines: the transformation satisfies Lemma 5's
          relation, hence the DRF guarantee (Theorems 3–5) *)
  | Counterexample of Thread_id.t * Trace.t
      (** a transformed thread trace with no witness *)
  | Unknown of string
      (** structural mismatch or truncated enumeration: escalate *)

val verdict : t -> verdict
(** Aggregate the per-thread verdicts: any {!Fails} wins (first such
    thread), else any {!Bounded} makes the result {!Unknown}, else
    {!Safe}. *)

val pp_verdict : verdict Fmt.t

val check :
  ?max_len:int ->
  ?max_traces:int ->
  original:Ast.program ->
  transformed:Ast.program ->
  unit ->
  t
(** Run the per-thread refinement analysis.  [max_len] (default 12)
    bounds transformed-side trace length; the original side is
    enumerated to [max_len + thread size + 1] so every witness that
    exists syntactically fits.  [max_traces] (default 50_000) bounds
    each per-thread enumeration; exceeding it yields {!Bounded}, not an
    exception.  Threads equal syntactically are {!Identical} without
    enumeration — the dominant fast path, since most passes touch one
    thread.

    When the {!Safeopt_obs.Metrics} registry is enabled the check
    publishes [refine.*] counters (checks, per-thread verdict tallies,
    aggregate verdicts), and a ["refine"] tracer span wraps the
    analysis. *)

val witness :
  original:Ast.program ->
  transformed:Ast.program ->
  t ->
  Ast.program Safeopt_core.Witness.t option
(** A structured counterexample for a failed check: the program pair
    with the unwitnessed trace as {!Safeopt_core.Witness.Relation_failure}
    evidence.  [None] unless {!verdict} is {!Counterexample}. *)
