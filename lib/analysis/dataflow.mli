(** A generic monotone dataflow framework with a worklist fixpoint
    solver, functorized over the lattice so every analysis pass reuses
    the same engine.

    The solver computes, for every CFG node, the join over all paths of
    the composed edge transfer functions — the MOP solution when the
    transfers distribute over [join], a sound over-approximation
    otherwise.  Facts are ['a option]: [None] marks nodes not reachable
    from the start node, and acts as the identity of the join, so
    lattices need no artificial bottom element.

    Direction is a parameter in the usual way: {!Make.forward}
    propagates from [entry] along edges, {!Make.backward} from
    [exit_node] against them.

    Termination requires the usual monotone-framework conditions: every
    [transfer] monotone and the lattice of finite height.  All lattices
    in this repository (subsets of a program's finite monitor/location
    alphabet) satisfy both. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** The merge applied where control-flow paths meet.  A must-analysis
      (e.g. locksets definitely held) supplies intersection here; a
      may-analysis supplies union. *)

  val pp : t Fmt.t
end

module Make (L : LATTICE) : sig
  type fact = L.t option
  (** [None] = node unreachable from the start node. *)

  val forward :
    Cfg.t -> init:L.t -> transfer:(Cfg.edge -> L.t -> L.t) -> fact array
  (** Least fixpoint of the forward equations: the returned array maps
      each node to the join of [transfer]-images over all incoming
      edges, with [init] at [entry]. *)

  val backward :
    Cfg.t -> init:L.t -> transfer:(Cfg.edge -> L.t -> L.t) -> fact array
  (** Same engine against the edges, seeded with [init] at
      [exit_node]. *)

  val pp_fact : fact Fmt.t
end
