open Safeopt_trace
open Safeopt_lang

type path = int list

let pp_path ppf p = Fmt.(list ~sep:(any ".") int) ppf p
let compare_path = Stdlib.compare

type instr =
  | Store of Location.t * Reg.t
  | Load of Reg.t * Location.t
  | Move of Reg.t * Ast.operand
  | Atomic of Reg.t * Location.t * Ast.rmw
  | Lock of Monitor.t
  | Unlock of Monitor.t
  | Print of Reg.t
  | Assume of Ast.test * bool
  | Nop

let pp_operand ppf = function
  | Ast.Reg r -> Reg.pp ppf r
  | Ast.Nat i -> Fmt.int ppf i

let pp_test ppf = function
  | Ast.Eq (a, b) -> Fmt.pf ppf "%a == %a" pp_operand a pp_operand b
  | Ast.Ne (a, b) -> Fmt.pf ppf "%a != %a" pp_operand a pp_operand b

let pp_instr ppf = function
  | Store (l, r) -> Fmt.pf ppf "%a := %a" Location.pp l Reg.pp r
  | Load (r, l) -> Fmt.pf ppf "%a := %a" Reg.pp r Location.pp l
  | Move (r, o) -> Fmt.pf ppf "%a := %a" Reg.pp r pp_operand o
  | Atomic (r, l, Ast.Cas (e, d)) ->
      Fmt.pf ppf "%a := cas(%a, %a, %a)" Reg.pp r Location.pp l pp_operand e
        pp_operand d
  | Atomic (r, l, Ast.Faa o) ->
      Fmt.pf ppf "%a := faa(%a, %a)" Reg.pp r Location.pp l pp_operand o
  | Atomic (r, l, Ast.Xchg o) ->
      Fmt.pf ppf "%a := xchg(%a, %a)" Reg.pp r Location.pp l pp_operand o
  | Lock m -> Fmt.pf ppf "lock %a" Monitor.pp m
  | Unlock m -> Fmt.pf ppf "unlock %a" Monitor.pp m
  | Print r -> Fmt.pf ppf "print %a" Reg.pp r
  | Assume (t, b) ->
      Fmt.pf ppf "assume%s (%a)" (if b then "" else " not") pp_test t
  | Nop -> Fmt.string ppf "nop"

type node = int
type edge = { src : node; dst : node; instr : instr; path : path }

type t = {
  entry : node;
  exit_node : node;
  num_nodes : int;
  edges : edge list;
}

(* Construction: one fresh node per program point, edges labelled with
   the primitive instruction executed between them.  [If] forks on two
   [Assume] edges and rejoins; [While] is a header node with an
   [Assume]-true edge into the body (which loops back) and an
   [Assume]-false edge out. *)

type builder = { mutable next : int; mutable acc : edge list }

let fresh b =
  let n = b.next in
  b.next <- n + 1;
  n

let add b e = b.acc <- e :: b.acc

let rec build_stmt b path src = function
  | Ast.Store (l, r) ->
      let d = fresh b in
      add b { src; dst = d; instr = Store (l, r); path };
      d
  | Ast.Load (r, l) ->
      let d = fresh b in
      add b { src; dst = d; instr = Load (r, l); path };
      d
  | Ast.Move (r, o) ->
      let d = fresh b in
      add b { src; dst = d; instr = Move (r, o); path };
      d
  | Ast.Lock m ->
      let d = fresh b in
      add b { src; dst = d; instr = Lock m; path };
      d
  | Ast.Unlock m ->
      let d = fresh b in
      add b { src; dst = d; instr = Unlock m; path };
      d
  | Ast.Print r ->
      let d = fresh b in
      add b { src; dst = d; instr = Print r; path };
      d
  | Ast.Atomic (r, l, k) ->
      let d = fresh b in
      add b { src; dst = d; instr = Atomic (r, l, k); path };
      d
  | Ast.Skip ->
      let d = fresh b in
      add b { src; dst = d; instr = Nop; path };
      d
  | Ast.Block l -> build_seq b path src l
  | Ast.If (t, s1, s2) ->
      let then_in = fresh b in
      let else_in = fresh b in
      add b { src; dst = then_in; instr = Assume (t, true); path };
      add b { src; dst = else_in; instr = Assume (t, false); path };
      let then_out = build_stmt b (path @ [ 0 ]) then_in s1 in
      let else_out = build_stmt b (path @ [ 1 ]) else_in s2 in
      let join = fresh b in
      add b { src = then_out; dst = join; instr = Nop; path };
      add b { src = else_out; dst = join; instr = Nop; path };
      join
  | Ast.While (t, s) ->
      let header = fresh b in
      add b { src; dst = header; instr = Nop; path };
      let body_in = fresh b in
      add b { src = header; dst = body_in; instr = Assume (t, true); path };
      let body_out = build_stmt b (path @ [ 0 ]) body_in s in
      add b { src = body_out; dst = header; instr = Nop; path };
      let exit_ = fresh b in
      add b { src = header; dst = exit_; instr = Assume (t, false); path };
      exit_

and build_seq b path src stmts =
  List.fold_left
    (fun (i, src) s -> (i + 1, build_stmt b (path @ [ i ]) src s))
    (0, src) stmts
  |> snd

let of_thread (thread : Ast.thread) =
  let b = { next = 1; acc = [] } in
  let exit_node = build_seq b [] 0 thread in
  { entry = 0; exit_node; num_nodes = b.next; edges = List.rev b.acc }

let succs g =
  let a = Array.make g.num_nodes [] in
  List.iter (fun e -> a.(e.src) <- e :: a.(e.src)) g.edges;
  Array.map List.rev a

let preds g =
  let a = Array.make g.num_nodes [] in
  List.iter (fun e -> a.(e.dst) <- e :: a.(e.dst)) g.edges;
  Array.map List.rev a

let pp ppf g =
  Fmt.pf ppf "@[<v>entry %d, exit %d, %d nodes@ %a@]" g.entry g.exit_node
    g.num_nodes
    Fmt.(
      list ~sep:cut (fun ppf e ->
          pf ppf "%d -> %d: %a" e.src e.dst pp_instr e.instr))
    g.edges
