let us ts = ts *. 1e6

let attr_args attrs = Json.Obj (List.map (fun (k, v) -> (k, Event.value_to_json v)) attrs)

let to_string (events : Event.t list) =
  (* Spans end with an empty name: recover names (and merge begin-side
     attrs) from the matching Begin via the span id. *)
  let begins = Hashtbl.create 64 in
  List.iter
    (fun (e : Event.t) ->
      if e.kind = Event.Begin then Hashtbl.replace begins e.id e)
    events;
  let domains = Hashtbl.create 8 in
  let records =
    List.filter_map
      (fun (e : Event.t) ->
        if not (Hashtbl.mem domains e.domain) then
          Hashtbl.add domains e.domain ();
        let base name ph =
          [
            ("name", Json.String name);
            ("ph", Json.String ph);
            ("ts", Json.Float (us e.ts));
            ("pid", Json.Int 0);
            ("tid", Json.Int e.domain);
          ]
        in
        match e.kind with
        | Event.Begin ->
            let fields = base e.name "B" in
            let fields =
              if e.attrs = [] then fields
              else fields @ [ ("args", attr_args e.attrs) ]
            in
            Some (Json.Obj fields)
        | Event.End ->
            let name, tid =
              match Hashtbl.find_opt begins e.id with
              | Some b -> (b.Event.name, b.Event.domain)
              | None -> (Printf.sprintf "span#%d" e.id, e.domain)
            in
            (* close on the begin lane: Chrome pairs B/E per tid *)
            let fields =
              [
                ("name", Json.String name);
                ("ph", Json.String "E");
                ("ts", Json.Float (us e.ts));
                ("pid", Json.Int 0);
                ("tid", Json.Int tid);
              ]
            in
            let fields =
              if e.attrs = [] then fields
              else fields @ [ ("args", attr_args e.attrs) ]
            in
            Some (Json.Obj fields)
        | Event.Instant ->
            Some
              (Json.Obj
                 (base e.name "i"
                 @ [ ("s", Json.String "t") ]
                 @ if e.attrs = [] then [] else [ ("args", attr_args e.attrs) ]))
        | Event.Counter ->
            Some (Json.Obj (base e.name "C" @ [ ("args", attr_args e.attrs) ])))
      events
  in
  let lanes =
    Hashtbl.fold (fun d () acc -> d :: acc) domains []
    |> List.sort compare
    |> List.map (fun d ->
           Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 0);
               ("tid", Json.Int d);
               ( "args",
                 Json.Obj
                   [
                     ( "name",
                       Json.String
                         (if d = 0 then "main" else Printf.sprintf "domain %d" d)
                     );
                   ] );
             ])
  in
  Json.to_string (Json.Obj [ ("traceEvents", Json.List (lanes @ records)) ])
