(** The span/event tracer behind a process-global sink.

    When no sink is installed ({!enabled} is false) every entry point is
    a no-op guarded by a single flag read — callers write

    {[
      let sp = if Tracer.enabled () then Tracer.span "pass" else Tracer.none in
      ...
      Tracer.close_span sp
    ]}

    and pay one load and one branch per site when tracing is off; no
    closure is allocated (the [obs-overhead] bench mode pins this).

    Spans are plain ints ({!none} = [-1]); {!close_span} on {!none} is
    free.  Events carry monotonic timestamps relative to {!start}, the
    recording domain's id, and optional key/value attributes.  Events
    are appended to a mutex-protected in-memory buffer — the tracer is
    safe to use from every domain of a {!Safeopt_exec.Par} pool — and
    written out at {!stop}. *)

type span = int

val none : span
(** The absent span: closing it is a no-op; using it as [parent] means
    "no parent". *)

type format = Jsonl | Chrome_trace

type sink =
  | File of { path : string; format : format }
      (** write the buffered events to [path] at {!stop} *)
  | Memory  (** keep them for {!stop} to return (tests, benches) *)

val start : sink -> unit
(** Install a sink and reset the event buffer, span-id counter and
    clock origin.  Tracing is enabled until {!stop}. *)

val stop : unit -> Event.t list
(** Disable tracing, flush the sink (writing the file for [File] sinks)
    and return the buffered events in emission order.  A no-op returning
    [[]] when no sink is installed. *)

val enabled : unit -> bool
(** One mutable flag read; the only cost at a disabled call site. *)

(** {1 Recording}

    All of these are no-ops (beyond the flag branch) when disabled. *)

val span : ?parent:span -> ?attrs:(string * Event.value) list -> string -> span
(** Open a span: emits a [Begin] event, returns the id to close. *)

val close_span : ?attrs:(string * Event.value) list -> span -> unit
(** Emit the matching [End] event.  Attributes given here are attached
    to the end event (results: counts, verdicts). *)

val instant : ?attrs:(string * Event.value) list -> string -> unit

val counter : string -> float -> unit
(** Emit a [Counter] sample (a timestamped value, e.g. queue depth). *)

val with_span :
  ?parent:span -> ?attrs:(string * Event.value) list -> string ->
  (unit -> 'a) -> ('a -> (string * Event.value) list) -> 'a
(** [with_span name f attrs_of] wraps [f] in a span whose end event
    carries [attrs_of result]; exceptions close the span with an
    ["error"] attribute and re-raise.  Allocates a closure — for cold
    paths; hot paths use {!span}/{!close_span} directly. *)

val now_rel : unit -> float
(** Seconds since {!start} (0 when never started). *)
