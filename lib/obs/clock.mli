(** Monotonic clock — the timebase of the telemetry layer.

    Wall-clock time can step backwards under NTP adjustment, corrupting
    span durations, accumulated statistics and benchmark ratios;
    [CLOCK_MONOTONIC] only ever moves forward.  {!Safeopt_exec.Clock}
    re-exports this module so the exploration engine and the telemetry
    layer share one timebase (span timestamps and [stats.wall] are
    directly comparable). *)

val now : unit -> float
(** Seconds on the monotonic clock.  The epoch is unspecified (boot
    time on Linux); only differences are meaningful. *)

val elapsed : float -> float
(** [elapsed t0] is [now () - t0], clamped to be non-negative. *)
