type span_row = {
  sr_id : int;
  sr_name : string;
  sr_domain : int;
  sr_start : float;
  sr_stop : float;
  sr_parent : int;
  sr_attrs : (string * Event.value) list;
}

type t = {
  events : int;
  spans : span_row list;
  wall : float;
  counters : (string * float) list;
}

let aggregate (events : Event.t list) =
  let begins : (int, span_row) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let counters = ref [] in
  let wall = ref 0. in
  List.iter
    (fun (e : Event.t) ->
      if e.ts > !wall then wall := e.ts;
      match e.kind with
      | Event.Begin ->
          let row =
            {
              sr_id = e.id;
              sr_name = e.name;
              sr_domain = e.domain;
              sr_start = e.ts;
              sr_stop = Float.nan;
              sr_parent = e.parent;
              sr_attrs = e.attrs;
            }
          in
          Hashtbl.replace begins e.id row;
          order := e.id :: !order
      | Event.End -> (
          match Hashtbl.find_opt begins e.id with
          | None -> ()
          | Some row ->
              Hashtbl.replace begins e.id
                { row with sr_stop = e.ts; sr_attrs = row.sr_attrs @ e.attrs })
      | Event.Instant -> ()
      | Event.Counter ->
          let v =
            match List.assoc_opt "v" e.attrs with
            | Some (Event.Float f) -> f
            | Some (Event.Int i) -> float_of_int i
            | _ -> Float.nan
          in
          if List.mem_assoc e.name !counters then
            counters := List.map (fun (n, old) -> if n = e.name then (n, v) else (n, old)) !counters
          else counters := (e.name, v) :: !counters)
    events;
  let spans = List.rev !order |> List.map (fun id -> Hashtbl.find begins id) in
  {
    events = List.length events;
    spans;
    wall = !wall;
    counters = List.rev !counters;
  }

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go (lineno + 1) acc
        | line -> (
            match Json.of_string line with
            | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
            | Ok j -> (
                match Event.of_json j with
                | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
                | Ok e -> go (lineno + 1) (e :: acc)))
      in
      go 1 [])

let span_wall r = if Float.is_nan r.sr_stop then None else Some (r.sr_stop -. r.sr_start)

let phase_walls t =
  List.fold_left
    (fun acc r ->
      match span_wall r with
      | None -> acc
      | Some w -> (
          match List.assoc_opt r.sr_name acc with
          | Some (n, tot) ->
              List.map
                (fun (name, cell) ->
                  if name = r.sr_name then (name, (n + 1, tot +. w)) else (name, cell))
                acc
          | None -> acc @ [ (r.sr_name, (1, w)) ]))
    [] t.spans
  |> List.map (fun (name, (n, tot)) -> (name, n, tot))

(* Self time per span: its wall minus the wall of its direct children
   (spans whose [sr_parent] is its id).  Unclosed spans contribute
   nothing, matching {!phase_walls}. *)
let self_walls t =
  let child_wall =
    List.fold_left
      (fun acc r ->
        match span_wall r with
        | None -> acc
        | Some w -> (
            if r.sr_parent < 0 then acc
            else
              match List.assoc_opt r.sr_parent acc with
              | Some tot -> (r.sr_parent, tot +. w) :: List.remove_assoc r.sr_parent acc
              | None -> (r.sr_parent, w) :: acc))
      [] t.spans
  in
  List.filter_map
    (fun r ->
      match span_wall r with
      | None -> None
      | Some w ->
          let inside =
            Option.value ~default:0. (List.assoc_opt r.sr_id child_wall)
          in
          Some (r, Float.max 0. (w -. inside)))
    t.spans

(* The phases table's rows: per span name, (count, total, self), total
   descending with the name as tie-break — a deterministic ordering
   whatever order the spans were emitted in. *)
let phase_rows t =
  let selves = self_walls t in
  let add name w self acc =
    match List.assoc_opt name acc with
    | Some (n, tot, sf) ->
        (name, (n + 1, tot +. w, sf +. self)) :: List.remove_assoc name acc
    | None -> (name, (1, w, self)) :: acc
  in
  List.fold_left
    (fun acc (r, self) ->
      match span_wall r with
      | None -> acc
      | Some w -> add r.sr_name w self acc)
    [] selves
  |> List.map (fun (name, (n, tot, self)) -> (name, n, tot, self))
  |> List.sort (fun (na, _, ta, _) (nb, _, tb, _) ->
         match Float.compare tb ta with 0 -> String.compare na nb | c -> c)

let span_attr r k =
  (* end attrs were appended after begin attrs; last binding wins *)
  List.fold_left
    (fun acc (k', v) -> if k' = k then Some v else acc)
    None r.sr_attrs

let attr_str r k = match span_attr r k with Some (Event.Str s) -> s | _ -> "-"

let attr_int r k =
  match span_attr r k with
  | Some (Event.Int i) -> string_of_int i
  | Some (Event.Float f) -> Printf.sprintf "%g" f
  | _ -> "-"

let ms w = Printf.sprintf "%.3fms" (w *. 1e3)

let pp ppf t =
  let open Format in
  let ended = List.length (List.filter (fun r -> not (Float.is_nan r.sr_stop)) t.spans) in
  fprintf ppf "trace: %d events, %d spans (%d closed), wall %.3fms@."
    t.events (List.length t.spans) ended (t.wall *. 1e3);
  let phases = phase_rows t in
  if phases <> [] then begin
    fprintf ppf "@.phases:@.";
    fprintf ppf "  %-28s %5s %12s %12s %12s@." "phase" "count" "total" "self"
      "mean";
    List.iter
      (fun (name, n, tot, self) ->
        fprintf ppf "  %-28s %5d %12s %12s %12s@." name n (ms tot) (ms self)
          (ms (tot /. float_of_int n)))
      phases
  end;
  let passes = List.filter (fun r -> r.sr_name = "pass") t.spans in
  if passes <> [] then begin
    fprintf ppf "@.passes:@.";
    fprintf ppf "  %-12s %5s %5s %8s %12s %12s@." "pass" "iters" "sites"
      "verdict" "validation" "wall";
    List.iter
      (fun r ->
        let wall = match span_wall r with Some w -> ms w | None -> "-" in
        let vwall =
          match span_attr r "validation_wall" with
          | Some (Event.Float f) -> ms f
          | _ -> "-"
        in
        fprintf ppf "  %-12s %5s %5s %8s %12s %12s@." (attr_str r "pass")
          (attr_int r "iterations") (attr_int r "sites") (attr_str r "verdict")
          vwall wall)
      passes
  end;
  if t.counters <> [] then begin
    fprintf ppf "@.counters:@.";
    List.iter
      (fun (name, v) ->
        if Float.is_integer v && Float.abs v < 1e15 then
          fprintf ppf "  %-28s %d@." name (int_of_float v)
        else fprintf ppf "  %-28s %g@." name v)
      t.counters
  end
