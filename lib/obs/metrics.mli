(** A metrics registry: named counters, gauges and log-scale
    histograms, stripe-sharded so parallel domains record without
    contention, merged at join like [Explorer.merge_stats].

    Every metric's cells are striped by domain id ([Domain.self () mod
    stripes]), so concurrent recorders from a {!Safeopt_exec.Par} pool
    land on distinct cache lines in the common case.  Counter cells are
    atomic, so counter totals are {e exact} at any level of
    parallelism.  Gauge and histogram cells are plain mutable words
    (reads/writes are word-atomic, never torn, per the OCaml memory
    model); two domains whose ids collide modulo [stripes] can lose an
    update under simultaneous writes — acceptable for latency
    distributions and sampled depths, never used for verdicts.

    A process-global registry ({!global}) behind an enable flag
    ({!enabled}/{!set_enabled}) is the sink the instrumented layers
    record into; the flag read compiles to a load and a branch, so
    disabled instrumentation costs nothing measurable (see the
    [obs-overhead] bench mode). *)

type t
type counter
type gauge
type histogram

val create : ?stripes:int -> unit -> t
(** A fresh registry.  [stripes] (default 8) is rounded up to a power
    of two. *)

(** {1 Counters} *)

val counter : t -> string -> counter
(** Register (or look up) a counter by name.  Registration takes the
    registry mutex; hold on to the handle in hot paths. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges}

    A gauge keeps the last, minimum, maximum, sum and count of the
    recorded samples (per stripe; {!gauge_summary} folds stripes). *)

val gauge : t -> string -> gauge
val record : gauge -> float -> unit

type gauge_summary = {
  g_last : float;  (** last recorded sample (of the last active stripe) *)
  g_min : float;
  g_max : float;
  g_mean : float;
  g_count : int;
}

val gauge_summary : gauge -> gauge_summary option
(** [None] when nothing was recorded. *)

(** {1 Histograms}

    Log-scale latency histograms over seconds: bucket [0] holds
    sub-nanosecond samples, bucket [i > 0] holds samples in
    [[2^(i-1), 2^i)] nanoseconds.  64 buckets cover every
    representable duration. *)

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit

val bucket_of : float -> int
(** The bucket index a sample in seconds falls into. *)

val bucket_bounds : int -> float * float
(** [(lo, hi)] in seconds: samples [s] with [lo <= s < hi] land in this
    bucket (bucket 0 has [lo = 0]). *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (int * int) list
(** Non-empty buckets as [(index, count)], ascending. *)

val quantile : histogram -> float -> float option
(** [quantile h q]: an upper bound on the q-th quantile (the upper edge
    of the occupied bucket holding it); [None] when the histogram is
    empty.  [q] is clamped into [[0,1]]: [q = 0] answers from the first
    occupied bucket, [q = 1] from the last — never the edge of an empty
    tail bucket. *)

(** {1 Aggregation and rendering} *)

val merge : into:t -> t -> unit
(** Fold a registry into an accumulator: counters and histogram buckets
    add; gauges combine min/max/sum/count (the merged last is the
    source's when it recorded anything).  Metrics missing from [into]
    are registered.  Counter totals after merging per-worker registries
    equal the totals of a sequential run — the sharded-merge equality
    the tests pin. *)

val names : t -> string list
(** Registered names, in registration order. *)

val find_counter : t -> string -> int option
(** The value of a registered counter, by name. *)

val find_gauge : t -> string -> gauge_summary option
(** The summary of a registered gauge, by name; [None] when absent or
    never recorded. *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}]. *)

val pp : Format.formatter -> t -> unit
(** Human summary tree, grouped by dotted name prefix. *)

(** {1 The process-global registry} *)

val global : t

val enabled : unit -> bool
(** Whether the instrumented layers should record into {!global}.  A
    single mutable flag read — the disabled cost is one branch. *)

val set_enabled : bool -> unit

val reset_global : unit -> unit
(** Drop every metric registered in {!global} (tests and benches). *)
