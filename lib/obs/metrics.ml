(* Named counters / gauges / log-scale histograms, striped by domain id
   so parallel recorders stay off each other's cache lines.  Counters
   are atomic (exact under any interleaving); gauge and histogram cells
   are plain mutable words — word-atomic, so never torn, but a stripe
   collision under simultaneous writes can lose an update.  Verdicts
   never come from gauges or histograms. *)

let default_stripes = 8

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Per-stripe gauge cell: all-float record, unboxed fields. *)
type gcell = {
  mutable last : float;
  mutable min : float;
  mutable max : float;
  mutable sum : float;
  mutable count : float;
}

let nbuckets = 64

type metric =
  | Counter of int Atomic.t array  (** one atomic per stripe *)
  | Gauge of gcell array
  | Histogram of int array array  (** stripes x buckets *)

type t = {
  stripes : int;
  mu : Mutex.t;
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (** registration order, reversed *)
}

type counter = int Atomic.t array
type gauge = gcell array
type histogram = int array array

let create ?(stripes = default_stripes) () =
  {
    stripes = round_pow2 (max 1 stripes);
    mu = Mutex.create ();
    tbl = Hashtbl.create 32;
    order = [];
  }

let register t name mk extract =
  Mutex.lock t.mu;
  let m =
    match Hashtbl.find_opt t.tbl name with
    | Some m -> m
    | None ->
        let m = mk () in
        Hashtbl.add t.tbl name m;
        t.order <- name :: t.order;
        m
  in
  Mutex.unlock t.mu;
  extract name m

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let counter t name : counter =
  let cells = register t name
      (fun () -> Counter (Array.init t.stripes (fun _ -> Atomic.make 0)))
      (fun name m ->
        match m with
        | Counter c -> c
        | _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter"))
  in
  cells

let add_at (c : counter) i n = ignore (Atomic.fetch_and_add c.(i) n)

let add (c : counter) n =
  add_at c ((Domain.self () :> int) land (Array.length c - 1)) n

let incr c = add c 1

let counter_value (c : counter) =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

let gauge t name : gauge =
  register t name
    (fun () ->
      Gauge
        (Array.init t.stripes (fun _ ->
             { last = 0.; min = infinity; max = neg_infinity; sum = 0.; count = 0. })))
    (fun name m ->
      match m with
      | Gauge g -> g
      | _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge"))

let record (g : gauge) v =
  let c = g.((Domain.self () :> int) land (Array.length g - 1)) in
  c.last <- v;
  if v < c.min then c.min <- v;
  if v > c.max then c.max <- v;
  c.sum <- c.sum +. v;
  c.count <- c.count +. 1.

type gauge_summary = {
  g_last : float;
  g_min : float;
  g_max : float;
  g_mean : float;
  g_count : int;
}

let gauge_summary (g : gauge) =
  let min', max', sum, count, last =
    Array.fold_left
      (fun (mn, mx, sum, n, last) c ->
        ( Float.min mn c.min,
          Float.max mx c.max,
          sum +. c.sum,
          n +. c.count,
          if c.count > 0. then c.last else last ))
      (infinity, neg_infinity, 0., 0., 0.)
      g
  in
  if count = 0. then None
  else
    Some
      {
        g_last = last;
        g_min = min';
        g_max = max';
        g_mean = sum /. count;
        g_count = int_of_float count;
      }

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

(* Bucket 0: < 1ns.  Bucket i > 0: [2^(i-1), 2^i) ns. *)
let bucket_of (s : float) =
  let ns = s *. 1e9 in
  if not (ns >= 1.) then 0
  else
    let rec go i lim = if ns < lim || i = nbuckets - 1 then i else go (i + 1) (lim *. 2.) in
    go 1 2.

let bucket_bounds i =
  if i <= 0 then (0., 1e-9)
  else
    let lo = Float.of_int (1 lsl min i 62) /. 2. in
    (lo *. 1e-9, lo *. 2e-9)

let histogram t name : histogram =
  register t name
    (fun () -> Histogram (Array.init t.stripes (fun _ -> Array.make nbuckets 0)))
    (fun name m ->
      match m with
      | Histogram h -> h
      | _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram"))

let observe (h : histogram) v =
  let row = h.((Domain.self () :> int) land (Array.length h - 1)) in
  let b = bucket_of v in
  row.(b) <- row.(b) + 1

let fold_buckets (h : histogram) =
  let acc = Array.make nbuckets 0 in
  Array.iter (fun row -> Array.iteri (fun i n -> acc.(i) <- acc.(i) + n) row) h;
  acc

let histogram_count h = Array.fold_left ( + ) 0 (fold_buckets h)

let histogram_sum h =
  (* approximate: each sample counted at its bucket's geometric centre *)
  let acc = fold_buckets h in
  let sum = ref 0. in
  Array.iteri
    (fun i n ->
      if n > 0 then
        let lo, hi = bucket_bounds i in
        sum := !sum +. (float_of_int n *. ((lo +. hi) /. 2.)))
    acc;
  !sum

let histogram_buckets h =
  let acc = fold_buckets h in
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    if acc.(i) > 0 then out := (i, acc.(i)) :: !out
  done;
  !out

let quantile h q =
  let acc = fold_buckets h in
  let total = Array.fold_left ( + ) 0 acc in
  if total = 0 then None
  else
    (* q is clamped into [0,1]: p=0 answers from the first occupied
       bucket, p=1 from the last.  target >= 1 means the scan can only
       stop on an occupied bucket (seen grows nowhere else), so the
       bound returned always covers at least one real sample — never
       the upper edge of an empty tail bucket. *)
    let q = if Float.is_nan q then 1. else Float.max 0. (Float.min 1. q) in
    let target = Float.max 1. (Float.of_int total *. q) in
    let last_occupied = ref 0 in
    let rec go i seen =
      if i >= nbuckets then Some (snd (bucket_bounds !last_occupied))
      else begin
        if acc.(i) > 0 then last_occupied := i;
        let seen = seen + acc.(i) in
        if Float.of_int seen >= target then Some (snd (bucket_bounds i))
        else go (i + 1) seen
      end
    in
    go 0 0

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let names t = List.rev t.order

let find t name =
  Mutex.lock t.mu;
  let m = Hashtbl.find_opt t.tbl name in
  Mutex.unlock t.mu;
  m

let find_counter t name =
  match find t name with
  | Some (Counter c) -> Some (counter_value c)
  | _ -> None

let find_gauge t name =
  match find t name with Some (Gauge g) -> gauge_summary g | _ -> None

let merge ~into src =
  List.iter
    (fun name ->
      match find src name with
      | None -> ()
      | Some (Counter c) -> add_at (counter into name) 0 (counter_value c)
      | Some (Gauge g) -> (
          match gauge_summary g with
          | None -> ignore (gauge into name)
          | Some s ->
              let cell = (gauge into name).(0) in
              cell.last <- s.g_last;
              if s.g_min < cell.min then cell.min <- s.g_min;
              if s.g_max > cell.max then cell.max <- s.g_max;
              cell.sum <- cell.sum +. (s.g_mean *. float_of_int s.g_count);
              cell.count <- cell.count +. float_of_int s.g_count)
      | Some (Histogram h) ->
          let dst = (histogram into name).(0) in
          let acc = fold_buckets h in
          Array.iteri (fun i n -> dst.(i) <- dst.(i) + n) acc)
    (names src)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let to_json t =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun name ->
      match find t name with
      | None -> ()
      | Some (Counter c) ->
          counters := (name, Json.Int (counter_value c)) :: !counters
      | Some (Gauge g) -> (
          match gauge_summary g with
          | None -> ()
          | Some s ->
              gauges :=
                ( name,
                  Json.Obj
                    [
                      ("last", Json.Float s.g_last);
                      ("min", Json.Float s.g_min);
                      ("max", Json.Float s.g_max);
                      ("mean", Json.Float s.g_mean);
                      ("count", Json.Int s.g_count);
                    ] )
                :: !gauges)
      | Some (Histogram h) ->
          let bs = histogram_buckets h in
          if bs <> [] then
            histograms :=
              ( name,
                Json.Obj
                  [
                    ("count", Json.Int (histogram_count h));
                    ("sum_s", Json.Float (histogram_sum h));
                    ( "buckets",
                      Json.List
                        (List.map
                           (fun (i, n) ->
                             let lo, _ = bucket_bounds i in
                             Json.List [ Json.Float lo; Json.Int n ])
                           bs) );
                  ] )
              :: !histograms)
    (names t);
  Json.Obj
    [
      ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !histograms));
    ]

let pp_duration ppf s =
  if s < 1e-6 then Fmt.pf ppf "%.0fns" (s *. 1e9)
  else if s < 1e-3 then Fmt.pf ppf "%.1fus" (s *. 1e6)
  else if s < 1. then Fmt.pf ppf "%.2fms" (s *. 1e3)
  else Fmt.pf ppf "%.3fs" s

(* Summary tree grouped by the first dotted segment:
     metrics:
       explorer:
         states   123
       par:
         lock_wait_s  count=4 p50<=2.0us max<=8.0us *)
let pp ppf t =
  let group name =
    match String.index_opt name '.' with
    | Some i -> (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
    | None -> ("", name)
  in
  let groups =
    List.fold_left
      (fun acc name ->
        let g, rest = group name in
        let cur = try List.assoc g acc with Not_found -> [] in
        (g, (rest, name) :: cur) :: List.remove_assoc g acc)
      [] (names t)
  in
  let groups = List.rev_map (fun (g, items) -> (g, List.rev items)) groups |> List.rev in
  Fmt.pf ppf "@[<v>metrics:";
  List.iter
    (fun (g, items) ->
      if g <> "" then Fmt.pf ppf "@   %s:" g;
      List.iter
        (fun (short, name) ->
          let indent = if g = "" then "  " else "    " in
          match find t name with
          | None -> ()
          | Some (Counter c) ->
              Fmt.pf ppf "@ %s%-24s %d" indent short (counter_value c)
          | Some (Gauge gc) -> (
              match gauge_summary gc with
              | None -> Fmt.pf ppf "@ %s%-24s (no samples)" indent short
              | Some s ->
                  Fmt.pf ppf "@ %s%-24s last=%g min=%g max=%g mean=%.2f n=%d"
                    indent short s.g_last s.g_min s.g_max s.g_mean s.g_count)
          | Some (Histogram h) ->
              let n = histogram_count h in
              if n = 0 then Fmt.pf ppf "@ %s%-24s (no samples)" indent short
              else
                let q v = Option.value ~default:0. (quantile h v) in
                Fmt.pf ppf "@ %s%-24s n=%d p50<=%a p99<=%a max<=%a" indent
                  short n pp_duration (q 0.5) pp_duration (q 0.99) pp_duration
                  (q 1.))
        items)
    groups;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* The process-global registry                                         *)
(* ------------------------------------------------------------------ *)

let global = create ()
let on = ref false
let enabled () = !on
let set_enabled b = on := b

let reset_global () =
  Mutex.lock global.mu;
  Hashtbl.reset global.tbl;
  global.order <- [];
  Mutex.unlock global.mu
