type span = int

let none : span = -1

type format = Jsonl | Chrome_trace

type sink =
  | File of { path : string; format : format }
  | Memory

(* The disabled fast path must be a single flag read: [on] is the only
   state a disabled call site touches. *)
let on = ref false
let enabled () = !on

let sink_ref : sink option ref = ref None
let t0 = ref 0.
let next_id = Atomic.make 0

(* Emission-order buffer.  The mutex is uncontended except when several
   domains emit simultaneously; events in hot layers are per-phase, not
   per-state, so this is never on the exploration fast path. *)
let mu = Mutex.create ()
let buf : Event.t list ref = ref []
let count = ref 0

let now_rel () = if !t0 = 0. then 0. else Clock.elapsed !t0

let emit kind name id parent attrs =
  let e =
    {
      Event.kind;
      name;
      id;
      parent;
      domain = (Domain.self () :> int);
      ts = Clock.elapsed !t0;
      attrs;
    }
  in
  Mutex.lock mu;
  buf := e :: !buf;
  incr count;
  Mutex.unlock mu

let start sink =
  Mutex.lock mu;
  buf := [];
  count := 0;
  Mutex.unlock mu;
  Atomic.set next_id 0;
  t0 := Clock.now ();
  sink_ref := Some sink;
  on := true

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let stop () =
  match !sink_ref with
  | None ->
      on := false;
      []
  | Some sink ->
      on := false;
      sink_ref := None;
      Mutex.lock mu;
      let events = List.rev !buf in
      buf := [];
      count := 0;
      Mutex.unlock mu;
      (match sink with
      | Memory -> ()
      | File { path; format = Jsonl } ->
          let b = Buffer.create 4096 in
          List.iter
            (fun e ->
              Buffer.add_string b (Json.to_string (Event.to_json e));
              Buffer.add_char b '\n')
            events;
          write_file path (Buffer.contents b)
      | File { path; format = Chrome_trace } ->
          write_file path (Chrome.to_string events));
      events

let span ?(parent = none) ?(attrs = []) name =
  if not !on then none
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    emit Event.Begin name id parent attrs;
    id
  end

let close_span ?(attrs = []) sp =
  if !on && sp >= 0 then emit Event.End "" sp none attrs

let instant ?(attrs = []) name =
  if !on then emit Event.Instant name none none attrs

let counter name v =
  if !on then emit Event.Counter name none none [ ("v", Event.Float v) ]

let with_span ?parent ?attrs name f attrs_of =
  if not !on then f ()
  else begin
    let sp = span ?parent ?attrs name in
    match f () with
    | r ->
        close_span ~attrs:(attrs_of r) sp;
        r
    | exception e ->
        close_span ~attrs:[ ("error", Event.Str (Printexc.to_string e)) ] sp;
        raise e
  end
