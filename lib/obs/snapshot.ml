(* The heartbeat sampler: a ticker domain that periodically freezes the
   global metrics registry plus a caller-supplied progress view into
   versioned JSONL snapshot lines, optionally echoing a one-line
   progress summary to stderr for interactive runs.

   Design constraints, in order:

   - Zero hot-path cost.  The sampler *pulls*: the explorer's hot loops
     are completely unchanged, and the only coupling is the progress
     closure handed to [start] (which reads word-atomic mutable fields
     of in-flight stats records — racy but never torn).  Disabled, the
     whole module is one flag read ([enabled]).

   - Monotone snapshots.  Each tick reads the registry and the
     in-flight deltas under the explorer's live lock (inside the
     progress closure), so a unit of work is counted exactly once —
     either still in flight or already published, never both, never
     neither.  Consecutive snapshots therefore never decrease in any
     cumulative counter.

   - The final snapshot equals the end-of-run registry.  [stop] takes
     one last sample after callers have finished publishing, then joins
     the ticker, so line [seq = last] is the same view [Metrics.global]
     renders at exit. *)

let schema = "heartbeat/v1"

type t = {
  interval : float;  (** seconds between ticks *)
  progress : unit -> (string * Json.t) list;
  oc : out_channel option;
  echo : bool;
  seq : int ref;  (** ticks emitted so far (sampler domain only) *)
  stop_flag : bool Atomic.t;
  mutable last_states : float;  (** for the derived states/sec *)
  mutable last_ts : float;
  mutable ticker : unit Domain.t option;
}

let on = ref false
let enabled () = !on

(* One running sampler per process (mirrors Tracer's process-global
   sink); [start] while running stops the previous one. *)
let current : t option ref = ref None

let progress_states fields =
  match List.assoc_opt "states" fields with
  | Some (Json.Int n) -> float_of_int n
  | Some (Json.Float f) -> f
  | _ -> 0.

let sample t =
  let ts = Clock.now () in
  let fields = t.progress () in
  let states = progress_states fields in
  let dt = ts -. t.last_ts in
  let rate =
    if !(t.seq) > 0 && dt > 0. && states > t.last_states then
      (states -. t.last_states) /. dt
    else 0.
  in
  t.last_states <- states;
  t.last_ts <- ts;
  let line =
    Json.Obj
      [
        ("schema", Json.String schema);
        ("seq", Json.Int !(t.seq));
        ("ts", Json.Float ts);
        ("progress", Json.Obj (fields @ [ ("states_per_s", Json.Float rate) ]));
        ("metrics", Metrics.to_json Metrics.global);
      ]
  in
  incr t.seq;
  (match t.oc with
  | Some oc ->
      output_string oc (Json.to_string line);
      output_char oc '\n';
      flush oc
  | None -> ());
  if t.echo then begin
    let field name =
      match List.assoc_opt name fields with
      | Some (Json.Int n) -> string_of_int n
      | Some (Json.Float f) -> Printf.sprintf "%.0f" f
      | _ -> "0"
    in
    Printf.eprintf "\rheartbeat #%d: %s states (%.0f/s), %s edges, frontier %s%!"
      (!(t.seq) - 1) (field "states") rate (field "edges")
      (field "peak_frontier")
  end

(* The ticker sleeps in short slices so [stop] is never more than one
   slice away from being honoured, whatever the interval. *)
let rec ticker_loop t =
  if not (Atomic.get t.stop_flag) then begin
    let slice = Float.min t.interval 0.01 in
    let rec doze left =
      if left > 0. && not (Atomic.get t.stop_flag) then begin
        Unix.sleepf (Float.min slice left);
        doze (left -. slice)
      end
    in
    doze t.interval;
    if not (Atomic.get t.stop_flag) then begin
      sample t;
      ticker_loop t
    end
  end

let stop () =
  match !current with
  | None -> ()
  | Some t ->
      current := None;
      on := false;
      Atomic.set t.stop_flag true;
      Option.iter Domain.join t.ticker;
      t.ticker <- None;
      (* the final sample runs after every publish the caller awaited,
         so its metrics object equals the end-of-run registry *)
      sample t;
      if t.echo then prerr_newline ();
      Option.iter close_out t.oc

let start ?path ?(echo = false) ~interval_ms progress =
  stop ();
  let interval = Float.max 0.001 (float_of_int interval_ms /. 1000.) in
  let t =
    {
      interval;
      progress;
      oc = Option.map open_out path;
      echo;
      seq = ref 0;
      stop_flag = Atomic.make false;
      last_states = 0.;
      last_ts = Clock.now ();
      ticker = None;
    }
  in
  current := Some t;
  on := true;
  t.ticker <- Some (Domain.spawn (fun () -> ticker_loop t))

(* ------------------------------------------------------------------ *)
(* Reading heartbeats back (tests, future `drfopt serve /stats`)       *)
(* ------------------------------------------------------------------ *)

type line = {
  l_seq : int;
  l_ts : float;
  l_progress : (string * Json.t) list;
  l_metrics : Json.t;
}

let line_of_json j =
  match
    ( Json.member "schema" j,
      Json.member "seq" j,
      Json.member "ts" j,
      Json.member "progress" j,
      Json.member "metrics" j )
  with
  | Some (Json.String s), _, _, _, _ when s <> schema ->
      Error (Printf.sprintf "unsupported heartbeat schema %S" s)
  | Some _, Some seq, Some ts, Some (Json.Obj fields), Some metrics -> (
      match (Json.to_int seq, Json.to_float ts) with
      | Some l_seq, Some l_ts ->
          Ok { l_seq; l_ts; l_progress = fields; l_metrics = metrics }
      | _ -> Error "heartbeat line: non-numeric seq/ts")
  | _ -> Error "heartbeat line: missing field"

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go (lineno + 1) acc
        | l -> (
            match Json.of_string l with
            | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
            | Ok j -> (
                match line_of_json j with
                | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
                | Ok hb -> go (lineno + 1) (hb :: acc)))
      in
      go 1 [])

let progress_int l name =
  match List.assoc_opt name l.l_progress with
  | Some (Json.Int n) -> Some n
  | Some (Json.Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
