external now : unit -> float = "safeopt_clock_monotonic_s"

let elapsed t0 = Float.max 0. (now () -. t0)
