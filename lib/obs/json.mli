(** A minimal JSON value type with a printer and a parser.

    The telemetry layer is zero-dependency, so it carries its own JSON:
    just enough to serialise span/event/metric records to JSONL and to
    read them back for offline aggregation ({!Report}).  The parser
    accepts general JSON (objects, arrays, strings with escapes,
    numbers, booleans, null); it is not a validating parser for
    adversarial input — its job is round-tripping what {!to_string}
    wrote. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering.  Strings are escaped per JSON; control
    characters become [\uXXXX].  Non-finite floats (which JSON cannot
    represent) are rendered as [null]. *)

val pp : Format.formatter -> t -> unit
(** Same rendering as {!to_string}. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing garbage after the value is an
    error.  Numbers without [.], [e] or [E] parse as {!Int}, the rest
    as {!Float}. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup on an {!Obj}; [None] on missing field or non-object. *)

val to_int : t -> int option
(** {!Int} directly; {!Float} when integral. *)

val to_float : t -> float option
val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
val equal : t -> t -> bool
