type kind = Begin | End | Instant | Counter

type value = Str of string | Int of int | Float of float | Bool of bool

type t = {
  kind : kind;
  name : string;
  id : int;
  parent : int;
  domain : int;
  ts : float;
  attrs : (string * value) list;
}

let kind_str = function Begin -> "b" | End -> "e" | Instant -> "i" | Counter -> "c"

let value_to_json = function
  | Str s -> Json.String s
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b

let pp_value ppf = function
  | Str s -> Format.pp_print_string ppf s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.pp_print_bool ppf b

let to_json e =
  let fields = ref [] in
  let put k v = fields := (k, v) :: !fields in
  if e.attrs <> [] then
    put "at" (Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) e.attrs));
  put "ts" (Json.Float e.ts);
  if e.domain <> 0 then put "dom" (Json.Int e.domain);
  if e.parent >= 0 then put "par" (Json.Int e.parent);
  if e.id >= 0 then put "id" (Json.Int e.id);
  if e.name <> "" then put "name" (Json.String e.name);
  put "k" (Json.String (kind_str e.kind));
  Json.Obj !fields

let of_json j =
  let ( let* ) = Result.bind in
  let str k = Option.bind (Json.member k j) Json.to_str in
  let int_or k d = Option.value ~default:d (Option.bind (Json.member k j) Json.to_int) in
  let* kind =
    match str "k" with
    | Some "b" -> Ok Begin
    | Some "e" -> Ok End
    | Some "i" -> Ok Instant
    | Some "c" -> Ok Counter
    | Some k -> Error (Printf.sprintf "unknown event kind %S" k)
    | None -> Error "missing event kind"
  in
  let* ts =
    match Option.bind (Json.member "ts" j) Json.to_float with
    | Some ts -> Ok ts
    | None -> Error "missing ts"
  in
  let attrs =
    match Json.member "at" j with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) ->
            match v with
            | Json.String s -> Some (k, Str s)
            | Json.Int i -> Some (k, Int i)
            | Json.Float f -> Some (k, Float f)
            | Json.Bool b -> Some (k, Bool b)
            | _ -> None)
          fields
    | _ -> []
  in
  Ok
    {
      kind;
      name = Option.value ~default:"" (str "name");
      id = int_or "id" (-1);
      parent = int_or "par" (-1);
      domain = int_or "dom" 0;
      ts;
      attrs;
    }
