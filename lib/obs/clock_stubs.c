/* Monotonic clock for exploration timing.

   Wall-clock time (gettimeofday) can step backwards under NTP
   adjustment, corrupting accumulated `stats.wall` values and benchmark
   speedup ratios.  CLOCK_MONOTONIC only ever moves forward. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value safeopt_clock_monotonic_s(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec);
}
