(** Chrome [trace_event] export.

    Renders an event list as the JSON object format understood by
    Perfetto and [chrome://tracing]: [{"traceEvents":[...]}] with one
    duration pair (ph ["B"]/["E"], timestamps in microseconds) per
    span, instants as ph ["i"], counters as ph ["C"], and a thread-name
    metadata record per domain so each domain renders as its own worker
    lane ([tid] = domain id, [pid] = 0). *)

val to_string : Event.t list -> string
