(** The span-tree profiler: self vs. total time, hot spans, collapsed
    stacks.

    Where {!Report} flattens spans into per-phase wall totals, this
    module rebuilds the span {e tree} (Begin/End matched by id, nested
    under [parent]) and computes, per span, its {e self} time — wall
    time minus the time spent inside child spans.  Two renderings:

    - {!pp_top}: the top-k hot spans aggregated by name, self time
      descending (name as tie-break, so the ordering is deterministic);
    - {!pp_collapsed}: flamegraph.pl's folded-stack format, one
      ["root;child;leaf <µs>"] line per distinct stack, weighted by
      self time in microseconds and sorted lexicographically.
      speedscope and flamegraph.pl both consume it directly.

    Unclosed spans (truncated traces) are clamped to the last timestamp
    in the stream so their time still shows up. *)

type agg = {
  a_name : string;
  a_count : int;
  a_total : float;  (** wall seconds inside spans of this name *)
  a_self : float;  (** [a_total] minus time inside child spans *)
}

val aggregate : Event.t list -> agg list
(** Per-name rows, self time descending, ties broken by name. *)

val top_k : int -> Event.t list -> agg list
(** The first [k] rows of {!aggregate}. *)

val collapsed : Event.t list -> (string * int) list
(** Folded stacks: [(stack, self_µs)], stacks sorted lexicographically,
    zero-weight stacks omitted.  [';'] inside span names is rewritten
    to [':'] (the folded format reserves it). *)

val pp_top : ?k:int -> Format.formatter -> Event.t list -> unit
(** The [drfopt report --profile] table ([k] defaults to 10). *)

val pp_collapsed : Format.formatter -> Event.t list -> unit
(** The [drfopt report --flamegraph] output: one folded line per
    stack. *)
