(** The heartbeat sampler: live JSONL snapshots of a run in flight.

    A ticker domain wakes every [interval_ms], calls the caller's
    progress closure, and appends one versioned JSON line ({!schema})
    combining that progress view with a frozen {!Metrics.global}:

    {v
    {"schema":"heartbeat/v1","seq":3,"ts":12.04,
     "progress":{"states":48123,"edges":...,"states_per_s":52031.0},
     "metrics":{"counters":{...},"gauges":{...},"histograms":{...}}}
    v}

    The sampler {e pulls}: exploration hot loops are untouched, so a
    disabled heartbeat costs the instrumented code nothing at all (the
    [obs-overhead] bench pins {!enabled} at one flag read and zero
    allocation).  Snapshots are monotone in every cumulative counter
    when the progress closure reads a consistent view (see
    {!Safeopt_exec.Explorer.live_progress}), and the final line written
    by {!stop} equals the end-of-run registry — [stop] samples once
    more after the run has published everything.

    One sampler runs per process, like the tracer's process-global
    sink; a second {!start} stops the first. *)

val schema : string
(** ["heartbeat/v1"]. *)

val start :
  ?path:string ->
  ?echo:bool ->
  interval_ms:int ->
  (unit -> (string * Json.t) list) ->
  unit
(** Spawn the ticker.  [path] appends one JSONL line per tick (flushed
    immediately, so a crashed run keeps its last heartbeat); [echo]
    rewrites a one-line progress summary on stderr for interactive
    runs.  The progress closure runs on the ticker domain — it must be
    safe to call concurrently with the run (word-atomic reads are
    enough; see the explorer's live tracker).  A derived
    ["states_per_s"] field (rate between consecutive ticks) is appended
    to the progress object. *)

val stop : unit -> unit
(** Join the ticker, take one final sample (so the last line equals the
    end-of-run registry), close the file.  No-op when not running. *)

val enabled : unit -> bool
(** One mutable flag read — the only cost at a disabled call site. *)

(** {1 Reading heartbeats back} *)

type line = {
  l_seq : int;
  l_ts : float;
  l_progress : (string * Json.t) list;
  l_metrics : Json.t;
}

val read_file : string -> (line list, string) result
(** Parse a heartbeat JSONL file; fails on the first malformed line
    with its line number. *)

val progress_int : line -> string -> int option
(** A progress field as an int ([states], [edges], ...). *)
