(** Noise-aware comparison of two BENCH_*.json files: the engine behind
    [drfopt bench diff old.json new.json], CI's perf gate.

    Schema-agnostic: both documents are walked in parallel and
    comparable points are extracted wherever the harness recognises one
    — an object with ["units_per_sec"] compares by rate (higher is
    better; rates are reps-independent, so a quick run compares cleanly
    against a committed full run), an object with only ["wall_s"]
    compares by wall (lower is better), and every boolean field is a
    claim whose [true → false] transition is a regression regardless of
    thresholds.  Arrays of named objects pair by ["name"], not index.

    Noise: a numeric point whose wall is under [min_wall] (default
    0.05 s) on both sides is skipped; a surviving point regresses when
    its relative delta in the bad direction exceeds [threshold]
    (default 0.25). *)

type dir = Lower_better | Higher_better

type status =
  | Ok_same
  | Improved of float  (** relative delta in the good direction *)
  | Regressed of float  (** relative delta in the bad direction *)
  | Noise  (** both walls under the floor; not compared *)
  | Claim_broken  (** boolean [true] in old, [false] in new *)

type row = {
  r_path : string;  (** dotted path, named array items as [k[name]] *)
  r_old : float;
  r_new : float;
  r_dir : dir;
  r_status : status;
}

type t = { rows : row list; compared : int; regressions : int }

val default_threshold : float
(** 0.25 — a quarter in the bad direction. *)

val default_min_wall : float
(** 0.05 s. *)

val diff :
  ?threshold:float ->
  ?min_wall:float ->
  old_json:Json.t ->
  new_json:Json.t ->
  unit ->
  (t, string) result
(** [Error] when the two documents share no comparable point. *)

val diff_files :
  ?threshold:float -> ?min_wall:float -> string -> string -> (t, string) result
(** [diff_files old_path new_path]: read, parse, {!diff}. *)

val regressed : t -> bool
(** Any [Regressed] or [Claim_broken] row — the non-zero-exit signal. *)

val pp : Format.formatter -> t -> unit
(** One row per point with old/new values and a verdict, then a
    [N compared, M regressions] summary line. *)
