type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that round-trips through float_of_string;
   always contains a '.' or an exponent so it re-parses as Float. *)
let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_str f)
      else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Fail of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "at offset %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* encode the code point as UTF-8 (BMP only: our own
                      output never emits surrogate pairs) *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let is_num_char c =
      match c with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          fields []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elems []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b || (Float.is_nan a && Float.is_nan b)
  | String a, String b -> String.equal a b
  | List a, List b -> (
      try List.for_all2 equal a b with Invalid_argument _ -> false)
  | Obj a, Obj b -> (
      try List.for_all2 (fun (k, v) (k', v') -> k = k' && equal v v') a b
      with Invalid_argument _ -> false)
  | _ -> false
