(* Noise-aware comparison of two BENCH_*.json files: the engine behind
   `drfopt bench diff old.json new.json`.

   The harness is schema-agnostic: it walks both documents in parallel
   and extracts comparable *points* wherever it recognises one —

   - an object carrying "units_per_sec" compares by that rate (higher
     is better).  Rates are reps-independent, so a quick bench run
     (fewer reps, smaller walls) still compares cleanly against a
     committed full run;
   - an object carrying only "wall_s" compares by wall (lower is
     better) — e.g. the per-phase tables;
   - every boolean field is a claim: true in the old file and false in
     the new one is a regression regardless of thresholds.

   Arrays of named objects ("experiments": [{"name": ...}]) pair by
   name, not index, so reordering or appending experiments never
   misaligns the comparison.

   Noise handling: a numeric point whose measured wall is below
   [min_wall] on both sides is skipped — sub-floor timings are scheduler
   noise, and CI runners are noisy machines.  A surviving point
   regresses when its relative delta in the bad direction exceeds
   [threshold]. *)

type dir = Lower_better | Higher_better

type status =
  | Ok_same
  | Improved of float  (** relative delta in the good direction *)
  | Regressed of float  (** relative delta in the bad direction *)
  | Noise  (** both walls under the floor; not compared *)
  | Claim_broken  (** boolean true -> false *)

type row = {
  r_path : string;
  r_old : float;
  r_new : float;
  r_dir : dir;
  r_status : status;
}

type t = { rows : row list; compared : int; regressions : int }

(* ------------------------------------------------------------------ *)
(* Point extraction                                                    *)
(* ------------------------------------------------------------------ *)

type point =
  | Num of { dir : dir; value : float; wall : float }
  | Claim of bool

let num j = match Json.to_float j with Some f -> Some f | None -> None

let obj_field name fields =
  Option.bind (List.assoc_opt name fields) num

(* Depth-first extraction: (path, point) in document order. *)
let rec points path (j : Json.t) acc =
  match j with
  | Json.Obj fields ->
      let here p = if path = "" then p else path ^ "." ^ p in
      let acc =
        match
          (obj_field "units_per_sec" fields, obj_field "wall_s" fields)
        with
        | Some rate, wall ->
            (* rate point; the wall (when present) is only the noise
               gate.  A missing wall is treated as trustworthy. *)
            ( here "units_per_sec",
              Num
                {
                  dir = Higher_better;
                  value = rate;
                  wall = Option.value ~default:Float.infinity wall;
                } )
            :: acc
        | None, Some wall ->
            (here "wall_s", Num { dir = Lower_better; value = wall; wall })
            :: acc
        | None, None -> acc
      in
      List.fold_left
        (fun acc (k, v) ->
          match v with
          | Json.Bool b -> (here k, Claim b) :: acc
          | Json.Obj _ -> points (here k) v acc
          | Json.List items ->
              List.fold_left
                (fun acc item ->
                  match item with
                  | Json.Obj ifields -> (
                      match List.assoc_opt "name" ifields with
                      | Some (Json.String n) ->
                          points (here k ^ "[" ^ n ^ "]") item acc
                      | _ -> acc)
                  | _ -> acc)
                acc items
          | _ -> acc)
        acc fields
  | _ -> acc

let extract j = List.rev (points "" j [])

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let default_threshold = 0.25
let default_min_wall = 0.05

let compare_points ~threshold ~min_wall olds news =
  let rows =
    List.filter_map
      (fun (path, old_pt) ->
        match (old_pt, List.assoc_opt path news) with
        | _, None -> None
        | Claim old_b, Some (Claim new_b) ->
            let status =
              if old_b && not new_b then Claim_broken else Ok_same
            in
            Some
              {
                r_path = path;
                r_old = (if old_b then 1. else 0.);
                r_new = (if new_b then 1. else 0.);
                r_dir = Higher_better;
                r_status = status;
              }
        | Num o, Some (Num n) when o.dir = n.dir ->
            let status =
              if Float.max o.wall n.wall < min_wall then Noise
              else if o.value = 0. then Ok_same
              else
                let bad =
                  match o.dir with
                  | Lower_better -> (n.value -. o.value) /. o.value
                  | Higher_better -> (o.value -. n.value) /. o.value
                in
                if bad > threshold then Regressed bad
                else if bad < -.threshold then Improved (-.bad)
                else Ok_same
            in
            Some
              {
                r_path = path;
                r_old = o.value;
                r_new = n.value;
                r_dir = o.dir;
                r_status = status;
              }
        | _ -> None)
      olds
  in
  let compared =
    List.length (List.filter (fun r -> r.r_status <> Noise) rows)
  in
  let regressions =
    List.length
      (List.filter
         (fun r ->
           match r.r_status with
           | Regressed _ | Claim_broken -> true
           | _ -> false)
         rows)
  in
  { rows; compared; regressions }

let diff ?(threshold = default_threshold) ?(min_wall = default_min_wall)
    ~old_json ~new_json () =
  let olds = extract old_json and news = extract new_json in
  let t = compare_points ~threshold ~min_wall olds news in
  if t.compared = 0 then
    Error "no comparable points (are these the same benchmark's files?)"
  else Ok t

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      Result.map_error (fun e -> path ^ ": " ^ e) (Json.of_string s))

let diff_files ?threshold ?min_wall old_path new_path =
  match (read_file old_path, read_file new_path) with
  | Error e, _ | _, Error e -> Error e
  | Ok old_json, Ok new_json -> diff ?threshold ?min_wall ~old_json ~new_json ()

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let regressed t = t.regressions > 0

let value_string dir v =
  match dir with
  | Lower_better -> Printf.sprintf "%.4fs" v
  | Higher_better ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Printf.sprintf "%.0f" v
      else Printf.sprintf "%.2f" v

let pp ppf t =
  let open Format in
  fprintf ppf "  %-44s %12s %12s  %s@." "metric" "old" "new" "verdict";
  List.iter
    (fun r ->
      let verdict =
        match r.r_status with
        | Ok_same -> "ok"
        | Improved d -> Printf.sprintf "improved %.0f%%" (d *. 100.)
        | Regressed d -> Printf.sprintf "REGRESSED %.0f%%" (d *. 100.)
        | Noise -> "skipped (noise floor)"
        | Claim_broken -> "CLAIM BROKEN"
      in
      fprintf ppf "  %-44s %12s %12s  %s@." r.r_path
        (value_string r.r_dir r.r_old)
        (value_string r.r_dir r.r_new)
        verdict)
    t.rows;
  fprintf ppf "%d compared, %d regression%s@." t.compared t.regressions
    (if t.regressions = 1 then "" else "s")
