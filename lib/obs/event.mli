(** One trace event: a span begin/end, an instant marker, or a counter
    sample.

    Serialised as one compact JSON object per line (JSONL) with short
    keys, omitting defaults:

    {v
    {"k":"b","name":"pass","id":3,"par":1,"dom":0,"ts":0.000123,
     "at":{"pass":"cse"}}
    v}

    - ["k"]: ["b"] begin, ["e"] end, ["i"] instant, ["c"] counter
    - ["name"]: span or counter name (present on begin/instant/counter;
      omitted on end, which is matched to its begin by ["id"])
    - ["id"]: span id (begin/end only)
    - ["par"]: parent span id (omitted when the span has no parent)
    - ["dom"]: domain id (omitted when 0)
    - ["ts"]: seconds since the sink was started (monotonic clock)
    - ["at"]: key/value attributes (omitted when empty) *)

type kind = Begin | End | Instant | Counter

type value = Str of string | Int of int | Float of float | Bool of bool

type t = {
  kind : kind;
  name : string;  (** empty on [End] *)
  id : int;  (** span id; [-1] on [Instant]/[Counter] *)
  parent : int;  (** parent span id; [-1] for none *)
  domain : int;
  ts : float;  (** seconds since sink start *)
  attrs : (string * value) list;
}

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val value_to_json : value -> Json.t
val pp_value : Format.formatter -> value -> unit
