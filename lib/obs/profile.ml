(* The span-tree profiler over the tracer's event stream.

   [Report] folds spans into flat per-phase wall totals; this module
   keeps the tree.  Each Begin/End pair becomes a node under its
   [parent] span, self time is total minus the children's totals, and
   two views come out: a per-name aggregate (count, total, self) for
   the hot-span table, and collapsed stacks ("root;child;leaf N") for
   flamegraph.pl / speedscope.

   Determinism: unclosed spans are clamped to the last timestamp in the
   stream, aggregate rows sort by self time descending with the span
   name as tie-break, and collapsed stacks sort lexicographically — the
   same trace always renders the same bytes (the cram tests pin this on
   a committed fixed-timestamp trace). *)

type node = {
  n_name : string;
  n_start : float;
  n_stop : float;
  n_children : int list;  (** span ids, in begin order *)
}

type agg = {
  a_name : string;
  a_count : int;
  a_total : float;  (** wall seconds inside spans of this name *)
  a_self : float;  (** total minus time inside child spans *)
}

(* Build the span forest: nodes indexed by span id, roots in begin
   order.  Unclosed spans (a crashed or truncated trace) get the last
   timestamp seen, so their time is still accounted for. *)
let forest (events : Event.t list) =
  let last_ts =
    List.fold_left (fun acc (e : Event.t) -> Float.max acc e.ts) 0. events
  in
  let nodes : (int, node) Hashtbl.t = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Begin ->
          Hashtbl.replace nodes e.id
            {
              n_name = e.name;
              n_start = e.ts;
              n_stop = last_ts;
              n_children = [];
            };
          if e.parent >= 0 && Hashtbl.mem nodes e.parent then begin
            let p = Hashtbl.find nodes e.parent in
            Hashtbl.replace nodes e.parent
              { p with n_children = e.id :: p.n_children }
          end
          else roots := e.id :: !roots
      | Event.End -> (
          match Hashtbl.find_opt nodes e.id with
          | Some n -> Hashtbl.replace nodes e.id { n with n_stop = e.ts }
          | None -> ())
      | Event.Instant | Event.Counter -> ())
    events;
  let nodes =
    Hashtbl.fold
      (fun id n acc ->
        Hashtbl.replace acc id { n with n_children = List.rev n.n_children };
        acc)
      nodes
      (Hashtbl.create (Hashtbl.length nodes))
  in
  (nodes, List.rev !roots)

let wall n = Float.max 0. (n.n_stop -. n.n_start)

let self_time nodes n =
  let inside =
    List.fold_left
      (fun acc id ->
        match Hashtbl.find_opt nodes id with
        | Some c -> acc +. wall c
        | None -> acc)
      0. n.n_children
  in
  Float.max 0. (wall n -. inside)

(* ------------------------------------------------------------------ *)
(* Hot-span aggregate                                                  *)
(* ------------------------------------------------------------------ *)

let aggregate events =
  let nodes, _ = forest events in
  let by_name : (string, int * float * float) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ n ->
      let count, total, self =
        Option.value ~default:(0, 0., 0.) (Hashtbl.find_opt by_name n.n_name)
      in
      Hashtbl.replace by_name n.n_name
        (count + 1, total +. wall n, self +. self_time nodes n))
    nodes;
  let rows =
    Hashtbl.fold
      (fun name (count, total, self) acc ->
        { a_name = name; a_count = count; a_total = total; a_self = self }
        :: acc)
      by_name []
  in
  List.sort
    (fun a b ->
      match Float.compare b.a_self a.a_self with
      | 0 -> String.compare a.a_name b.a_name
      | c -> c)
    rows

let top_k k events =
  let rows = aggregate events in
  List.filteri (fun i _ -> i < k) rows

let ms w = Printf.sprintf "%.3fms" (w *. 1e3)

let pp_top ?(k = 10) ppf events =
  let open Format in
  let rows = top_k k events in
  if rows = [] then fprintf ppf "no spans in trace@."
  else begin
    fprintf ppf "hot spans (top %d by self time):@." (List.length rows);
    fprintf ppf "  %-28s %5s %12s %12s %6s@." "span" "count" "self" "total"
      "self%";
    let grand = List.fold_left (fun acc r -> acc +. r.a_self) 0. rows in
    List.iter
      (fun r ->
        let pct = if grand > 0. then 100. *. r.a_self /. grand else 0. in
        fprintf ppf "  %-28s %5d %12s %12s %5.1f%%@." r.a_name r.a_count
          (ms r.a_self) (ms r.a_total) pct)
      rows
  end

(* ------------------------------------------------------------------ *)
(* Collapsed stacks                                                    *)
(* ------------------------------------------------------------------ *)

(* flamegraph.pl's folded format: one line per distinct stack,
   "root;child;leaf <weight>", weight a non-negative integer.  We weigh
   by self time in microseconds so the leaf frames of a flamegraph are
   the code that actually burned the time.  speedscope auto-detects
   this format. *)
let collapsed events =
  let nodes, roots = forest events in
  let stacks : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let rec walk prefix id =
    match Hashtbl.find_opt nodes id with
    | None -> ()
    | Some n ->
        let frame =
          (* the folded format reserves ';' as the separator *)
          String.map (fun c -> if c = ';' then ':' else c) n.n_name
        in
        let stack = if prefix = "" then frame else prefix ^ ";" ^ frame in
        let us = int_of_float (Float.round (self_time nodes n *. 1e6)) in
        if us > 0 then
          Hashtbl.replace stacks stack
            (us + Option.value ~default:0 (Hashtbl.find_opt stacks stack));
        List.iter (walk stack) n.n_children
  in
  List.iter (walk "") roots;
  Hashtbl.fold (fun stack us acc -> (stack, us) :: acc) stacks []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_collapsed ppf events =
  List.iter
    (fun (stack, us) -> Format.fprintf ppf "%s %d@." stack us)
    (collapsed events)
