(** Offline aggregation of a JSONL event log: the engine behind
    [drfopt report FILE.jsonl].

    Matches span [End] events to their [Begin] by id, then folds the
    durations into per-phase wall-time totals, a per-pass table (spans
    named ["pass"], with iteration/site/verdict attributes merged from
    both ends of the span), and the final value of every counter
    series. *)

type span_row = {
  sr_id : int;  (** the span id the end event was matched on *)
  sr_name : string;
  sr_domain : int;
  sr_start : float;
  sr_stop : float;  (** [nan] when the end event is missing *)
  sr_parent : int;
  sr_attrs : (string * Event.value) list;
      (** begin attrs, then end attrs (end wins on duplicate keys via
          [List.assoc] order — they are appended after) *)
}

type t = {
  events : int;
  spans : span_row list;  (** in begin order *)
  wall : float;  (** last timestamp seen *)
  counters : (string * float) list;
      (** final sample of each counter series, in first-seen order *)
}

val aggregate : Event.t list -> t

val read_file : string -> (Event.t list, string) result
(** Parse a JSONL event log; fails on the first malformed line with its
    line number. *)

val phase_walls : t -> (string * int * float) list
(** Per span name: (name, count, total wall), in first-seen order,
    spans missing their end excluded. *)

val phase_rows : t -> (string * int * float * float) list
(** Per span name: (name, count, total wall, self wall) — self is wall
    minus the wall of direct child spans — ordered by total descending
    with the name as tie-break (deterministic whatever order spans were
    emitted in).  The phases table of {!pp}. *)

val span_attr : span_row -> string -> Event.value option
(** Last binding wins, so end-side attributes shadow begin-side. *)

val pp : Format.formatter -> t -> unit
(** The [drfopt report] rendering: summary line, per-phase wall-time
    table, per-pass table (when ["pass"] spans exist), counters. *)
