type t = string

let equal = String.equal
let compare = String.compare
let hash (m : t) = Hashtbl.hash m
let pp = Fmt.string

module Map = Map.Make (String)
module Set = Set.Make (String)
