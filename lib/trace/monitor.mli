(** Monitor (lock) names, ranged over by [m], [m1], [m2] in the paper. *)

type t = string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
