(** Memory actions (paper, section 3).

    A trace is a sequence of the actions of a single thread:
    - [R\[l=v\]] — a read from location [l] of value [v];
    - [W\[l=v\]] — a write to [l] of value [v];
    - [L\[m\]] — a lock of monitor [m];
    - [U\[m\]] — an unlock of [m];
    - [X(v)] — an external (input/output) action with value [v];
    - [S(e)] — a thread start action with entry point [e];
    - [U\[l:r→w\]] — an atomic read-modify-write of location [l] that
      read value [r] and wrote value [w] in one indivisible step.

    Classification predicates (volatile access, acquire, release,
    synchronisation, conflict, release-acquire pair) are parameterised by
    the set of volatile locations of the enclosing program. *)

type t =
  | Read of Location.t * Value.t
  | Write of Location.t * Value.t
  | Lock of Monitor.t
  | Unlock of Monitor.t
  | External of Value.t
  | Start of Thread_id.t
  | Rmw of Location.t * Value.t * Value.t
      (** [Rmw (l, r, w)]: atomically read [r] from [l] and write [w] to
          [l].  An RMW synchronises like a volatile access whatever the
          volatility of [l]: it is both an acquire and a release. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : t Fmt.t
(** Paper notation: [R[x=1]], [W[y=0]], [L[m]], [U[m]], [X(1)], [S(0)].
    An RMW prints as [U[l:r→w]] (for "update"): location, the value
    read, a UTF-8 rightwards arrow, the value written — e.g.
    [U[x:0→1]] for a successful [cas(x, 0, 1)].  The form is stable and
    round-trips through {!Syntax.parse_action} (which also accepts the
    ASCII arrow [->]); the monitor form [U[m]] is distinguished from it
    by the absence of a [:] after the identifier. *)

val to_string : t -> string

(** {1 Shape predicates (volatility-independent)} *)

val is_read : t -> bool

val is_write : t -> bool
(** A write or an RMW (an RMW writes memory). *)

val is_access : t -> bool
(** A memory access: a read, a write or an RMW. *)

val is_lock : t -> bool
val is_unlock : t -> bool
val is_external : t -> bool
val is_start : t -> bool
val is_rmw : t -> bool

val location : t -> Location.t option
(** The location accessed, for reads, writes and RMWs. *)

val accesses : t -> Location.t -> bool
(** [accesses a l] iff [a] is a read, write or RMW of location [l]. *)

val value : t -> Value.t option
(** The value carried by a read, write or external action; for an RMW,
    the value written (its memory effect). *)

val rmw_values : t -> (Value.t * Value.t) option
(** [Some (read, written)] for an RMW, [None] otherwise. *)

val monitor : t -> Monitor.t option
(** The monitor of a lock or unlock. *)

(** {1 Volatility-sensitive classification (paper, section 3)} *)

val is_volatile_access : Location.Volatile.t -> t -> bool
val is_volatile_read : Location.Volatile.t -> t -> bool
val is_volatile_write : Location.Volatile.t -> t -> bool

val is_normal_access : Location.Volatile.t -> t -> bool
(** An access to a non-volatile location. *)

val is_normal_read : Location.Volatile.t -> t -> bool
val is_normal_write : Location.Volatile.t -> t -> bool

val is_acquire : Location.Volatile.t -> t -> bool
(** A lock, a volatile read, or any RMW. *)

val is_release : Location.Volatile.t -> t -> bool
(** An unlock, a volatile write, or any RMW. *)

val is_sync : Location.Volatile.t -> t -> bool
(** A synchronisation action: an acquire or a release. *)

val is_sync_or_external : Location.Volatile.t -> t -> bool
(** Synchronisation and external actions have their relative order
    preserved by all untransformations (sections 4-5), so they are often
    classified together. *)

val conflicting : Location.Volatile.t -> t -> t -> bool
(** Two actions conflict iff they access the same {e non-volatile}
    location and at least one of them is a write (section 3) — except
    that two RMWs never conflict: their atomicity totally orders them,
    like two volatile accesses.  An RMW against a {e plain} access of
    the same non-volatile location does conflict (mixing atomic and
    non-atomic accesses is unsynchronised). *)

val release_acquire_pair : Location.Volatile.t -> t -> t -> bool
(** [release_acquire_pair vol a b] iff [a] is an unlock of a monitor [m]
    and [b] a lock of [m], or [a] is a write to a volatile location [l]
    and [b] a read of [l] (section 3, synchronises-with).  An RMW acts
    as both sides: two RMWs of the same location always pair, and an
    RMW pairs with a read (resp. a write pairs with an RMW) of the same
    volatile location. *)

val reorderable : Location.Volatile.t -> t -> t -> bool
(** [reorderable vol a b]: may an earlier [a] be swapped with a later
    [b]?  Per section 4, true iff either
    (i) [a] is a non-volatile memory access, and [b] is a non-conflicting
    non-volatile memory access, an acquire, or an external action; or
    (ii) [b] is a non-volatile memory access, and [a] is a non-conflicting
    non-volatile memory access, a release, or an external action.

    The relation is intentionally asymmetric (roach-motel reordering): a
    normal access may move past a later acquire, and a release may move
    past a later normal access, but not vice versa.

    An RMW is both an acquire and a release, so it moves in neither
    direction: [reorderable vol a b] is false whenever [a] or [b] is an
    RMW. *)
