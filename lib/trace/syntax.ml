type pos = int

exception Error of pos * string

type state = { src : string; mutable pos : int }

let err st fmt = Fmt.kstr (fun m -> raise (Error (st.pos, m))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> err st "expected %C, found %C" c c'
  | None -> err st "expected %C, found end of input" c

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let ident st =
  skip_ws st;
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_ident_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then err st "expected an identifier"
  else String.sub st.src start (st.pos - start)

let number st =
  skip_ws st;
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when c >= '0' && c <= '9' ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then err st "expected a number"
  else int_of_string (String.sub st.src start (st.pos - start))

(* The arrow of the RMW form: the UTF-8 rightwards arrow or ASCII "->". *)
let arrow st =
  skip_ws st;
  let has s =
    let n = String.length s in
    st.pos + n <= String.length st.src && String.sub st.src st.pos n = s
  in
  if has "\xE2\x86\x92" then st.pos <- st.pos + 3
  else if has "->" then st.pos <- st.pos + 2
  else err st "expected an arrow (\xE2\x86\x92 or ->)"

(* R[x=1] or R[x=*], W[x=1], L[m], U[m], U[l:r→w], X(1), S(0) *)
let element st : Wildcard.elt =
  skip_ws st;
  match peek st with
  | Some ('R' | 'r') ->
      advance st;
      expect st '[';
      let l = ident st in
      expect st '=';
      skip_ws st;
      let e =
        match peek st with
        | Some '*' ->
            advance st;
            Wildcard.Wild_read l
        | _ -> Wildcard.Concrete (Action.Read (l, number st))
      in
      expect st ']';
      e
  | Some ('W' | 'w') ->
      advance st;
      expect st '[';
      let l = ident st in
      expect st '=';
      let v = number st in
      expect st ']';
      Wildcard.Concrete (Action.Write (l, v))
  | Some ('L' | 'l') ->
      advance st;
      expect st '[';
      let m = ident st in
      expect st ']';
      Wildcard.Concrete (Action.Lock m)
  | Some ('U' | 'u') ->
      advance st;
      expect st '[';
      let m = ident st in
      (* U[m] is an unlock; U[l:r→w] is an RMW (update) of l. *)
      skip_ws st;
      let e =
        match peek st with
        | Some ':' ->
            advance st;
            let r = number st in
            arrow st;
            let w = number st in
            Wildcard.Concrete (Action.Rmw (m, r, w))
        | _ -> Wildcard.Concrete (Action.Unlock m)
      in
      expect st ']';
      e
  | Some ('X' | 'x') ->
      advance st;
      expect st '(';
      let v = number st in
      expect st ')';
      Wildcard.Concrete (Action.External v)
  | Some ('S' | 's') ->
      advance st;
      expect st '(';
      let t = number st in
      expect st ')';
      Wildcard.Concrete (Action.Start t)
  | Some c -> err st "expected an action (R/W/L/U/X/S), found %C" c
  | None -> err st "expected an action, found end of input"

let parse_wildcard src : Wildcard.t =
  let st = { src; pos = 0 } in
  skip_ws st;
  (match peek st with Some '[' -> advance st | _ -> ());
  let rec elements acc =
    skip_ws st;
    match peek st with
    | None | Some ']' -> List.rev acc
    | Some (';' | ',') ->
        advance st;
        elements acc
    | Some _ -> elements (element st :: acc)
  in
  let es = elements [] in
  skip_ws st;
  (match peek st with Some ']' -> advance st | _ -> ());
  skip_ws st;
  (match peek st with
  | None -> ()
  | Some c -> err st "trailing input starting with %C" c);
  es

let parse_trace src =
  let w = parse_wildcard src in
  match Wildcard.to_trace w with
  | Some t -> t
  | None -> raise (Error (0, "wildcard reads are not allowed here"))

let parse_action src =
  match parse_wildcard src with
  | [ Wildcard.Concrete a ] -> a
  | [ Wildcard.Wild_read _ ] ->
      raise (Error (0, "wildcard reads are not allowed here"))
  | _ -> raise (Error (0, "expected exactly one action"))
