type t = Action.t list

let equal = List.equal Action.equal
let compare = List.compare Action.compare
let pp = Fmt.(brackets (list ~sep:semi Action.pp))
let to_string = Fmt.to_to_string pp
let length = List.length

let nth t i =
  match List.nth_opt t i with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Trace.nth: index %d out of range" i)

let dom t = List.init (length t) Fun.id

let rec is_prefix t t' =
  match (t, t') with
  | [], _ -> true
  | _, [] -> false
  | a :: t, a' :: t' -> Action.equal a a' && is_prefix t t'

let is_strict_prefix t t' = length t < length t' && is_prefix t t'

let prefixes t =
  let rec go acc rev_pre = function
    | [] -> List.rev acc
    | a :: rest ->
        let rev_pre = a :: rev_pre in
        go (List.rev rev_pre :: acc) rev_pre rest
  in
  go [ [] ] [] t

let restrict t is =
  let is = List.sort_uniq Int.compare is in
  let rec go i t is =
    match (t, is) with
    | _, [] | [], _ -> []
    | a :: t, j :: is' ->
        if i = j then a :: go (i + 1) t is' else go (i + 1) t is
  in
  go 0 t is

let complement t is =
  let keep = List.sort_uniq Int.compare is in
  List.filter (fun i -> not (List.mem i keep)) (dom t)

let filteri p t =
  List.filteri (fun i a -> p i a) t

let indices_where p t =
  List.mapi (fun i a -> (i, a)) t
  |> List.filter (fun (i, a) -> p i a)
  |> List.map fst

let lock_depth t m =
  List.fold_left
    (fun d a ->
      match a with
      | Action.Lock m' when Monitor.equal m m' -> d + 1
      | Action.Unlock m' when Monitor.equal m m' -> d - 1
      | _ -> d)
    0 t

let well_locked t =
  (* Running lock counters must never go negative. *)
  let module M = Monitor.Map in
  let rec go depth = function
    | [] -> true
    | Action.Unlock m :: rest ->
        let d = Option.value ~default:0 (M.find_opt m depth) in
        d > 0 && go (M.add m (d - 1) depth) rest
    | Action.Lock m :: rest ->
        let d = Option.value ~default:0 (M.find_opt m depth) in
        go (M.add m (d + 1) depth) rest
    | _ :: rest -> go depth rest
  in
  go M.empty t

let properly_started = function
  | [] -> true
  | a :: _ -> Action.is_start a

let locations t =
  List.fold_left
    (fun acc a ->
      match Action.location a with
      | Some l -> Location.Set.add l acc
      | None -> acc)
    Location.Set.empty t

let has_release_acquire_pair_between vol t lo hi =
  let release_at = indices_where (fun i a -> lo < i && i < hi && Action.is_release vol a) t in
  let acquire_at = indices_where (fun i a -> lo < i && i < hi && Action.is_acquire vol a) t in
  List.exists (fun r -> List.exists (fun a -> r < a) acquire_at) release_at

let final_values t =
  List.fold_left
    (fun m a ->
      match a with
      | Action.Write (l, v) | Action.Rmw (l, _, v) -> Location.Map.add l v m
      | _ -> m)
    Location.Map.empty t
