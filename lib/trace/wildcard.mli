(** Wildcard traces (section 4).

    A wildcard trace generalises a trace: each element is either a
    concrete action or a wildcard read [R\[l=*\]], expressing that the
    validity of the trace does not depend on the value read.  A concrete
    trace [t] is an {e instance} of a wildcard trace [w] if [t] is
    obtained by replacing every wildcard with some concrete value.  A
    wildcard trace {e belongs-to} a traceset [T] if {e all} its instances
    are in [T]. *)

type elt =
  | Concrete of Action.t
  | Wild_read of Location.t  (** [R\[l=*\]] *)

type t = elt list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val pp_elt : elt Fmt.t
val to_string : t -> string

val of_trace : Trace.t -> t
(** Embed a concrete trace (no wildcards). *)

val is_concrete : t -> bool

val to_trace : t -> Trace.t option
(** [Some] the underlying trace if [t] has no wildcards. *)

val length : t -> int

val wildcard_indices : t -> int list
(** Indices of the wildcard reads, increasing. *)

val wildcard_count : t -> int

val instantiate : t -> Value.t list -> Trace.t option
(** [instantiate w vs] replaces the [i]-th wildcard with the [i]-th value
    of [vs].  [None] if [List.length vs <> wildcard_count w]. *)

val instances : universe:Value.t list -> t -> Trace.t Seq.t
(** All instances with each wildcard drawn independently from
    [universe].  There are [|universe| ^ wildcard_count] of them. *)

val is_instance : t -> Trace.t -> bool
(** [is_instance w t] iff [t] is obtained from [w] by filling wildcards
    with some values. *)

val matches_action : elt -> Action.t -> bool
(** [matches_action e a]: a concrete element matches an equal action; a
    wildcard [R\[l=*\]] matches any read of [l]. *)

val action_of_elt : default:Value.t -> elt -> Action.t
(** Resolve an element to an action, using [default] for wildcards. *)

val restrict : t -> int list -> t
(** As {!Trace.restrict}, on wildcard traces. *)

(** {1 Classification lifted to wildcard elements}

    A wildcard read of [l] classifies exactly as a read of [l] with an
    arbitrary value: it is an access to [l], an acquire iff [l] is
    volatile, and never a write, external, lock, unlock or start. *)

val is_read : elt -> bool
val is_write : elt -> bool

val is_rmw : elt -> bool
(** A concrete RMW element; a wildcard read never is. *)

val is_access : elt -> bool
val location : elt -> Location.t option
val is_acquire : Location.Volatile.t -> elt -> bool
val is_release : Location.Volatile.t -> elt -> bool
val is_sync : Location.Volatile.t -> elt -> bool
val is_sync_or_external : Location.Volatile.t -> elt -> bool
val is_external : elt -> bool
val is_normal_access : Location.Volatile.t -> elt -> bool

val conflicting : Location.Volatile.t -> elt -> elt -> bool
(** Conflict between wildcard elements: value-independent, so defined
    exactly as on actions (same non-volatile location, at least one
    write, not two RMWs). *)

val has_release_acquire_pair_between :
  Location.Volatile.t -> t -> int -> int -> bool
