type t =
  | Read of Location.t * Value.t
  | Write of Location.t * Value.t
  | Lock of Monitor.t
  | Unlock of Monitor.t
  | External of Value.t
  | Start of Thread_id.t
  | Rmw of Location.t * Value.t * Value.t

let equal a b =
  match (a, b) with
  | Read (l1, v1), Read (l2, v2) | Write (l1, v1), Write (l2, v2) ->
      Location.equal l1 l2 && Value.equal v1 v2
  | Lock m1, Lock m2 | Unlock m1, Unlock m2 -> Monitor.equal m1 m2
  | External v1, External v2 -> Value.equal v1 v2
  | Start t1, Start t2 -> Thread_id.equal t1 t2
  | Rmw (l1, r1, w1), Rmw (l2, r2, w2) ->
      Location.equal l1 l2 && Value.equal r1 r2 && Value.equal w1 w2
  | (Read _ | Write _ | Lock _ | Unlock _ | External _ | Start _ | Rmw _), _
    ->
      false

let tag = function
  | Read _ -> 0
  | Write _ -> 1
  | Lock _ -> 2
  | Unlock _ -> 3
  | External _ -> 4
  | Start _ -> 5
  | Rmw _ -> 6

let compare a b =
  match (a, b) with
  | Read (l1, v1), Read (l2, v2) | Write (l1, v1), Write (l2, v2) ->
      let c = Location.compare l1 l2 in
      if c <> 0 then c else Value.compare v1 v2
  | Lock m1, Lock m2 | Unlock m1, Unlock m2 -> Monitor.compare m1 m2
  | External v1, External v2 -> Value.compare v1 v2
  | Start t1, Start t2 -> Thread_id.compare t1 t2
  | Rmw (l1, r1, w1), Rmw (l2, r2, w2) ->
      let c = Location.compare l1 l2 in
      if c <> 0 then c
      else
        let c = Value.compare r1 r2 in
        if c <> 0 then c else Value.compare w1 w2
  | _ -> Int.compare (tag a) (tag b)

let hash = Hashtbl.hash

let pp ppf = function
  | Read (l, v) -> Fmt.pf ppf "R[%a=%a]" Location.pp l Value.pp v
  | Write (l, v) -> Fmt.pf ppf "W[%a=%a]" Location.pp l Value.pp v
  | Lock m -> Fmt.pf ppf "L[%a]" Monitor.pp m
  | Unlock m -> Fmt.pf ppf "U[%a]" Monitor.pp m
  | External v -> Fmt.pf ppf "X(%a)" Value.pp v
  | Start t -> Fmt.pf ppf "S(%a)" Thread_id.pp t
  | Rmw (l, r, w) ->
      Fmt.pf ppf "U[%a:%a\xE2\x86\x92%a]" Location.pp l Value.pp r Value.pp w

let to_string = Fmt.to_to_string pp

(* Shape predicates *)

let is_read = function Read _ -> true | _ -> false
let is_write = function Write _ | Rmw _ -> true | _ -> false
let is_access = function Read _ | Write _ | Rmw _ -> true | _ -> false
let is_lock = function Lock _ -> true | _ -> false
let is_unlock = function Unlock _ -> true | _ -> false
let is_external = function External _ -> true | _ -> false
let is_start = function Start _ -> true | _ -> false
let is_rmw = function Rmw _ -> true | _ -> false

let location = function
  | Read (l, _) | Write (l, _) | Rmw (l, _, _) -> Some l
  | _ -> None

let accesses a l =
  match location a with Some l' -> Location.equal l l' | None -> false

let value = function
  | Read (_, v) | Write (_, v) | External v -> Some v
  | Rmw (_, _, w) -> Some w
  | Lock _ | Unlock _ | Start _ -> None

let rmw_values = function Rmw (_, r, w) -> Some (r, w) | _ -> None

let monitor = function Lock m | Unlock m -> Some m | _ -> None

(* Volatility-sensitive classification.  An RMW reads and writes in one
   indivisible step and synchronises like a volatile access regardless
   of its location's volatility (section 3's acquire/release roles):
   it is an acquire {e and} a release, never a "normal" access. *)

let is_volatile_access vol = function
  | Read (l, _) | Write (l, _) | Rmw (l, _, _) -> Location.Volatile.mem vol l
  | _ -> false

let is_volatile_read vol = function
  | Read (l, _) -> Location.Volatile.mem vol l
  | _ -> false

let is_volatile_write vol = function
  | Write (l, _) -> Location.Volatile.mem vol l
  | _ -> false

let is_normal_access vol = function
  | Read (l, _) | Write (l, _) -> not (Location.Volatile.mem vol l)
  | _ -> false

let is_normal_read vol = function
  | Read (l, _) -> not (Location.Volatile.mem vol l)
  | _ -> false

let is_normal_write vol = function
  | Write (l, _) -> not (Location.Volatile.mem vol l)
  | _ -> false

let is_acquire vol a = is_lock a || is_volatile_read vol a || is_rmw a
let is_release vol a = is_unlock a || is_volatile_write vol a || is_rmw a
let is_sync vol a = is_acquire vol a || is_release vol a
let is_sync_or_external vol a = is_sync vol a || is_external a

(* Two RMWs of the same location never conflict: they are totally
   ordered by their atomicity (like two volatile accesses).  An RMW
   against a {e plain} access of the same non-volatile location is still
   a race — mixing atomic and non-atomic accesses is unsynchronised. *)
let conflicting vol a b =
  match (location a, location b) with
  | Some la, Some lb ->
      Location.equal la lb
      && (not (Location.Volatile.mem vol la))
      && (is_write a || is_write b)
      && not (is_rmw a && is_rmw b)
  | _ -> false

let release_acquire_pair vol a b =
  match (a, b) with
  | Unlock m1, Lock m2 -> Monitor.equal m1 m2
  | Write (l1, _), Read (l2, _) ->
      Location.equal l1 l2 && Location.Volatile.mem vol l1
  | Rmw (l1, _, _), Rmw (l2, _, _) -> Location.equal l1 l2
  | Rmw (l1, _, _), Read (l2, _) ->
      Location.equal l1 l2 && Location.Volatile.mem vol l1
  | Write (l1, _), Rmw (l2, _, _) ->
      Location.equal l1 l2 && Location.Volatile.mem vol l1
  | _ -> false

(* An RMW is both an acquire and a release, so it moves in neither
   direction: exclude it from the roach-motel relation outright. *)
let reorderable vol a b =
  let non_conflicting_normal x y =
    is_normal_access vol y && not (conflicting vol x y)
  in
  (not (is_rmw a || is_rmw b))
  && ((is_normal_access vol a
      && (non_conflicting_normal a b || is_acquire vol b || is_external b))
     || is_normal_access vol b
        && (non_conflicting_normal b a || is_release vol a || is_external a))
