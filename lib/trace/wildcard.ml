type elt = Concrete of Action.t | Wild_read of Location.t
type t = elt list

let equal_elt a b =
  match (a, b) with
  | Concrete x, Concrete y -> Action.equal x y
  | Wild_read l, Wild_read l' -> Location.equal l l'
  | (Concrete _ | Wild_read _), _ -> false

let compare_elt a b =
  match (a, b) with
  | Concrete x, Concrete y -> Action.compare x y
  | Wild_read l, Wild_read l' -> Location.compare l l'
  | Concrete _, Wild_read _ -> -1
  | Wild_read _, Concrete _ -> 1

let equal = List.equal equal_elt
let compare = List.compare compare_elt

let pp_elt ppf = function
  | Concrete a -> Action.pp ppf a
  | Wild_read l -> Fmt.pf ppf "R[%a=*]" Location.pp l

let pp = Fmt.(brackets (list ~sep:semi pp_elt))
let to_string = Fmt.to_to_string pp
let of_trace t = List.map (fun a -> Concrete a) t
let is_concrete t = List.for_all (function Concrete _ -> true | _ -> false) t

let to_trace t =
  if is_concrete t then
    Some (List.filter_map (function Concrete a -> Some a | _ -> None) t)
  else None

let length = List.length

let wildcard_indices t =
  List.mapi (fun i e -> (i, e)) t
  |> List.filter_map (function i, Wild_read _ -> Some i | _ -> None)

let wildcard_count t =
  List.fold_left
    (fun n -> function Wild_read _ -> n + 1 | Concrete _ -> n)
    0 t

let instantiate t vs =
  let rec go t vs acc =
    match (t, vs) with
    | [], [] -> Some (List.rev acc)
    | [], _ :: _ -> None
    | Concrete a :: t, vs -> go t vs (a :: acc)
    | Wild_read l :: t, v :: vs -> go t vs (Action.Read (l, v) :: acc)
    | Wild_read _ :: _, [] -> None
  in
  go t vs []

let instances ~universe t =
  let n = wildcard_count t in
  (* Enumerate all [universe]^n assignments lazily. *)
  let rec tuples k : Value.t list Seq.t =
    if k = 0 then Seq.return []
    else
      Seq.concat_map
        (fun rest -> List.to_seq universe |> Seq.map (fun v -> v :: rest))
        (tuples (k - 1))
  in
  tuples n
  |> Seq.filter_map (fun vs -> instantiate t vs)

let matches_action e a =
  match (e, a) with
  | Concrete x, _ -> Action.equal x a
  | Wild_read l, Action.Read (l', _) -> Location.equal l l'
  | Wild_read _, _ -> false

let is_instance w t =
  List.length w = List.length t && List.for_all2 matches_action w t

let action_of_elt ~default = function
  | Concrete a -> a
  | Wild_read l -> Action.Read (l, default)

let restrict t is =
  let is = List.sort_uniq Int.compare is in
  let rec go i t is =
    match (t, is) with
    | _, [] | [], _ -> []
    | a :: t, j :: is' ->
        if i = j then a :: go (i + 1) t is' else go (i + 1) t is
  in
  go 0 t is

let is_read = function
  | Concrete a -> Action.is_read a
  | Wild_read _ -> true

let is_write = function Concrete a -> Action.is_write a | Wild_read _ -> false
let is_rmw = function Concrete a -> Action.is_rmw a | Wild_read _ -> false

let is_access = function
  | Concrete a -> Action.is_access a
  | Wild_read _ -> true

let location = function
  | Concrete a -> Action.location a
  | Wild_read l -> Some l

let is_acquire vol = function
  | Concrete a -> Action.is_acquire vol a
  | Wild_read l -> Location.Volatile.mem vol l

let is_release vol = function
  | Concrete a -> Action.is_release vol a
  | Wild_read _ -> false

let is_sync vol e = is_acquire vol e || is_release vol e

let is_external = function
  | Concrete a -> Action.is_external a
  | Wild_read _ -> false

let is_sync_or_external vol e = is_sync vol e || is_external e

let is_normal_access vol = function
  | Concrete a -> Action.is_normal_access vol a
  | Wild_read l -> not (Location.Volatile.mem vol l)

let conflicting vol a b =
  match (location a, location b) with
  | Some la, Some lb ->
      Location.equal la lb
      && (not (Location.Volatile.mem vol la))
      && (is_write a || is_write b)
      && not (is_rmw a && is_rmw b)
  | _ -> false

let has_release_acquire_pair_between vol t lo hi =
  let indexed = List.mapi (fun i e -> (i, e)) t in
  let releases =
    List.filter_map
      (fun (i, e) -> if lo < i && i < hi && is_release vol e then Some i else None)
      indexed
  in
  let acquires =
    List.filter_map
      (fun (i, e) -> if lo < i && i < hi && is_acquire vol e then Some i else None)
      indexed
  in
  List.exists (fun r -> List.exists (fun a -> r < a) acquires) releases
