(** Parser for the paper's trace notation.

    Accepts the exact notation the library prints:
    {v S(0); R[x=1]; W[y=0]; L[m]; U[m]; U[x:0→1]; X(2); R[z=*] v}
    with [;] or [,] separators and optional surrounding brackets.
    [R\[l=*\]] denotes a wildcard read.  [U\[l:r→w\]] is an atomic RMW
    of [l] (the arrow may also be written as ASCII [->]); a plain
    [U\[m\]] remains an unlock.  Inverse of {!Wildcard.pp} /
    {!Trace.pp} (round-trip tested). *)

type pos = int
(** Character offset of an error. *)

exception Error of pos * string

val parse_wildcard : string -> Wildcard.t
(** @raise Error on malformed input. *)

val parse_trace : string -> Trace.t
(** As {!parse_wildcard}, but wildcards are rejected. *)

val parse_action : string -> Action.t
(** A single action. *)
