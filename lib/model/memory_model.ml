open Safeopt_exec
open Safeopt_lang

type t = Sc | Tso | Pso

let all = [ Sc; Tso; Pso ]
let name = function Sc -> "sc" | Tso -> "tso" | Pso -> "pso"
let pp ppf m = Fmt.string ppf (name m)

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "sc" -> Ok Sc
  | "tso" -> Ok Tso
  | "pso" -> Ok Pso
  | other ->
      Error (Printf.sprintf "unknown memory model %S (expected sc, tso or pso)" other)

let equal a b = a = b
let catch_fire = function Sc -> true | Tso | Pso -> false

let describe = function
  | Sc ->
      "sequential consistency (language model: racy programs catch fire, \
       safety is the DRF guarantee)"
  | Tso ->
      "total store order (hardware model: one FIFO store buffer per thread, \
       safety is behaviour inclusion)"
  | Pso ->
      "partial store order (hardware model: per-location store buffers, \
       safety is behaviour inclusion)"

let behaviours ?fuel ?max_states ?stats ?jobs ?pool m p =
  match m with
  | Sc -> Interp.behaviours ?fuel ?max_states ?stats ?jobs ?pool p
  | Tso -> Store_buffer.Tso.program_behaviours ?fuel ?max_states ?stats ?jobs ?pool p
  | Pso -> Store_buffer.Pso.program_behaviours ?fuel ?max_states ?stats ?jobs ?pool p

let system_behaviours ?max_states ?stats ?jobs ?pool m vol sys =
  match m with
  | Sc -> Explorer.behaviours ?max_states ?stats ?jobs ?pool sys
  | Tso -> Store_buffer.Tso.behaviours ?max_states ?stats ?jobs ?pool vol sys
  | Pso -> Store_buffer.Pso.behaviours ?max_states ?stats ?jobs ?pool vol sys

let replays ?fuel ?max_states ?jobs ?pool m p b =
  Behaviour.Set.mem b (behaviours ?fuel ?max_states ?jobs ?pool m p)
