(** The shared store-buffer machine behind the TSO and PSO models.

    Both hardware models are the same machine — per-thread write
    buffers in front of a flat memory, store-to-load forwarding,
    fencing operations (volatile writes, lock, unlock, RMW) gated on
    empty buffers, and a nondeterministic drain step — differing only
    in the buffer discipline: TSO keeps one FIFO per thread, PSO one
    FIFO per (thread, location).  The {!BUFFER} signature captures
    exactly that difference; {!Make} builds the rest of the machine
    once, on {!Safeopt_exec.Explorer.graph_behaviours} with hash-consed
    states, so the flush/drain/fencing logic lives in one place. *)

open Safeopt_trace
open Safeopt_exec
open Safeopt_lang

(** The per-thread buffer discipline: the only thing TSO and PSO
    disagree about. *)
module type BUFFER = sig
  type t

  val name : string
  (** Model name ("tso", "pso"): tags spans and spells the span name
      [name ^ ".behaviours"]. *)

  val empty : t

  val is_empty : t -> bool
  (** Fencing operations (volatile writes, lock, unlock, RMW) require
      this. *)

  val push : Location.t -> Value.t -> t -> t
  (** Enqueue a pending write (newest). *)

  val forward : t -> Location.t -> Value.t option
  (** Store-to-load forwarding: the newest pending write to the
      location, if any. *)

  val drains : t -> ((Location.t * Value.t) * t) list
  (** Every write that may drain to memory right now, with the buffer
      that remains: TSO offers only its single oldest entry, PSO the
      oldest entry of every per-location queue. *)

  val digest : (Location.t -> int) -> t -> int list
  (** Injective encoding (given the interner), for state hashing. *)
end

module Tso_buffer : BUFFER
(** One FIFO per thread: write-read reordering only. *)

module Pso_buffer : BUFFER
(** One FIFO per (thread, location): additionally write-write
    reordering. *)

(** The machine built over a buffer discipline. *)
module type MACHINE = sig
  val name : string

  val behaviours :
    ?max_states:int ->
    ?stats:Explorer.stats ->
    ?jobs:int ->
    ?pool:Par.Pool.t ->
    Location.Volatile.t ->
    'ts System.t ->
    Behaviour.Set.t
  (** All observable behaviours of the system under the model
      (prefix-closed), on the unified engine
      ({!Explorer.graph_behaviours}).  [jobs]/[pool] parallelise the
      state discovery; the resulting set is identical.
      @raise Explorer.Cyclic / @raise Explorer.Too_many_states as the
      SC engine does. *)

  val program_behaviours :
    ?fuel:int ->
    ?max_states:int ->
    ?stats:Explorer.stats ->
    ?jobs:int ->
    ?pool:Par.Pool.t ->
    Ast.program ->
    Behaviour.Set.t
end

module Make (_ : BUFFER) : MACHINE

module Tso : MACHINE
module Pso : MACHINE
