open Safeopt_trace
open Safeopt_exec
open Safeopt_lang

module type BUFFER = sig
  type t

  val name : string
  val empty : t
  val is_empty : t -> bool
  val push : Location.t -> Value.t -> t -> t
  val forward : t -> Location.t -> Value.t option
  val drains : t -> ((Location.t * Value.t) * t) list
  val digest : (Location.t -> int) -> t -> int list
end

(* Drop the last (oldest) element of a newest-first list. *)
let drop_oldest l = List.filteri (fun i _ -> i < List.length l - 1) l

module Tso_buffer = struct
  type t = (Location.t * Value.t) list (* newest first *)

  let name = "tso"
  let empty = []
  let is_empty b = b = []
  let push l v b = (l, v) :: b

  let forward b l =
    Option.map snd (List.find_opt (fun (l', _) -> Location.equal l l') b)

  let drains = function
    | [] -> []
    | b -> (
        match List.rev b with
        | oldest :: _ -> [ (oldest, drop_oldest b) ]
        | [] -> [])

  let digest intern b =
    List.concat_map (fun (l, v) -> [ intern l; v ]) b
end

module Pso_buffer = struct
  type t = Value.t list Location.Map.t (* newest first per location *)

  let name = "pso"
  let empty = Location.Map.empty
  let is_empty b = Location.Map.for_all (fun _ vs -> vs = []) b

  let push l v b =
    Location.Map.add l (v :: Option.value ~default:[] (Location.Map.find_opt l b)) b

  let forward b l =
    match Location.Map.find_opt l b with Some (v :: _) -> Some v | _ -> None

  let drains b =
    Location.Map.fold
      (fun l vs acc ->
        match List.rev vs with
        | [] -> acc
        | oldest :: _ ->
            let vs' = drop_oldest vs in
            let b' =
              if vs' = [] then Location.Map.remove l b
              else Location.Map.add l vs' b
            in
            ((l, oldest), b') :: acc)
      b []

  let digest intern b =
    Location.Map.fold
      (fun l vs acc -> vs @ (List.length vs :: intern l :: acc))
      b []
end

module type MACHINE = sig
  val name : string

  val behaviours :
    ?max_states:int ->
    ?stats:Explorer.stats ->
    ?jobs:int ->
    ?pool:Par.Pool.t ->
    Location.Volatile.t ->
    'ts System.t ->
    Behaviour.Set.t

  val program_behaviours :
    ?fuel:int ->
    ?max_states:int ->
    ?stats:Explorer.stats ->
    ?jobs:int ->
    ?pool:Par.Pool.t ->
    Ast.program ->
    Behaviour.Set.t
end

module Make (B : BUFFER) : MACHINE = struct
  let name = B.name

  type 'ts state = {
    threads : 'ts array;
    buffers : B.t array;
    mem : Value.t Location.Map.t;
    locks : (Thread_id.t * int) Monitor.Map.t;
  }

  (* Transitions: Some action for thread steps, None for buffer drains
     (invisible). *)
  let transitions vol sys st =
    let out = ref [] in
    (* Drain steps: any buffered write the discipline allows out. *)
    Array.iteri
      (fun tid buf ->
        List.iter
          (fun ((l, v), buf') ->
            let buffers = Array.copy st.buffers in
            buffers.(tid) <- buf';
            out :=
              (None, { st with buffers; mem = Location.Map.add l v st.mem })
              :: !out)
          (B.drains buf))
      st.buffers;
    (* Thread steps. *)
    Array.iteri
      (fun tid ts ->
        let buffer_empty = B.is_empty st.buffers.(tid) in
        List.iter
          (fun step ->
            match step with
            | System.Read (l, k) -> (
                (* Store-to-load forwarding: the thread's own newest
                   pending write to [l] wins over memory. *)
                let v =
                  match B.forward st.buffers.(tid) l with
                  | Some v -> v
                  | None ->
                      Option.value ~default:Value.default
                        (Location.Map.find_opt l st.mem)
                in
                match k v with
                | Some ts' ->
                    let threads = Array.copy st.threads in
                    threads.(tid) <- ts';
                    out :=
                      (Some (Action.Read (l, v)), { st with threads }) :: !out
                | None -> ())
            | System.Rmw (l, k) ->
                (* An RMW fences (x86 LOCK prefix): it requires the
                   thread's own buffered writes to have drained and
                   reads and writes memory directly, so it can neither
                   see nor leave behind a buffered value. *)
                if buffer_empty then
                  let v =
                    Option.value ~default:Value.default
                      (Location.Map.find_opt l st.mem)
                  in
                  List.iter
                    (fun (w, ts') ->
                      let threads = Array.copy st.threads in
                      threads.(tid) <- ts';
                      out :=
                        ( Some (Action.Rmw (l, v, w)),
                          { st with threads; mem = Location.Map.add l w st.mem
                          } )
                        :: !out)
                    (k v)
            | System.Emit (a, ts') -> (
                let commit st' =
                  let threads = Array.copy st'.threads in
                  threads.(tid) <- ts';
                  out := (Some a, { st' with threads }) :: !out
                in
                match a with
                | Action.Read _ ->
                    invalid_arg
                      (String.capitalize_ascii B.name
                      ^ ": reads must use System.Read steps")
                | Action.Rmw _ ->
                    invalid_arg
                      (String.capitalize_ascii B.name
                      ^ ": RMWs must use System.Rmw steps")
                | Action.Write (l, v) ->
                    if Location.Volatile.mem vol l then begin
                      (* Fencing write: needs empty buffers, goes
                         straight to memory. *)
                      if buffer_empty then
                        commit { st with mem = Location.Map.add l v st.mem }
                    end
                    else begin
                      let buffers = Array.copy st.buffers in
                      buffers.(tid) <- B.push l v st.buffers.(tid);
                      commit { st with buffers }
                    end
                | Action.Lock m ->
                    if buffer_empty then (
                      match Monitor.Map.find_opt m st.locks with
                      | None ->
                          commit
                            {
                              st with
                              locks = Monitor.Map.add m (tid, 1) st.locks;
                            }
                      | Some (owner, d) when Thread_id.equal owner tid ->
                          commit
                            {
                              st with
                              locks = Monitor.Map.add m (tid, d + 1) st.locks;
                            }
                      | Some _ -> ())
                | Action.Unlock m ->
                    if buffer_empty then (
                      match Monitor.Map.find_opt m st.locks with
                      | Some (owner, d) when Thread_id.equal owner tid ->
                          let locks =
                            if d = 1 then Monitor.Map.remove m st.locks
                            else Monitor.Map.add m (tid, d - 1) st.locks
                          in
                          commit { st with locks }
                      | _ -> ())
                | Action.External _ | Action.Start _ -> commit st))
          (sys.System.steps ts))
      st.threads;
    List.rev !out

  (* Length-prefixed injective int encoding of a machine state; thread
     keys, locations and monitors are interned per [behaviours] call.
     The interning tables are the sharded thread-safe ones because
     [Explorer.graph_behaviours] may call the digest from several
     worker domains at once under [jobs]/[pool]. *)
  let digest ~tkey ~lkey ~mkey sys st =
    let intern = Par.Intern.id in
    let acc = ref [] in
    let push x = acc := x :: !acc in
    Monitor.Map.iter
      (fun m (o, d) ->
        push (intern mkey m);
        push o;
        push d)
      st.locks;
    push (Monitor.Map.cardinal st.locks);
    Location.Map.iter
      (fun l v ->
        push (intern lkey l);
        push v)
      st.mem;
    push (Location.Map.cardinal st.mem);
    Array.iter
      (fun buf ->
        let enc = B.digest (intern lkey) buf in
        List.iter push enc;
        push (List.length enc))
      st.buffers;
    Array.iter (fun ts -> push (intern tkey (sys.System.key ts))) st.threads;
    !acc

  let behaviours ?max_states ?stats ?jobs ?pool vol sys =
    let sp =
      if Safeopt_obs.Tracer.enabled () then
        Safeopt_obs.Tracer.span
          ~attrs:[ ("model", Safeopt_obs.Event.Str B.name) ]
          (B.name ^ ".behaviours")
      else Safeopt_obs.Tracer.none
    in
    Fun.protect
      ~finally:(fun () -> Safeopt_obs.Tracer.close_span sp)
      (fun () ->
        let tkey = Par.Intern.create () in
        let lkey = Par.Intern.create () in
        let mkey = Par.Intern.create () in
        Explorer.graph_behaviours ?max_states ?stats ?jobs ?pool
          {
            Explorer.graph_initial =
              {
                threads = Array.of_list sys.System.initial;
                buffers =
                  Array.make (List.length sys.System.initial) B.empty;
                mem = Location.Map.empty;
                locks = Monitor.Map.empty;
              };
            graph_transitions = (fun st -> transitions vol sys st);
            graph_digest = (fun st -> digest ~tkey ~lkey ~mkey sys st);
          })

  let program_behaviours ?fuel ?max_states ?stats ?jobs ?pool
      (p : Ast.program) =
    behaviours ?max_states ?stats ?jobs ?pool p.Ast.volatile
      (Thread_system.make ?fuel p)
end

module Tso = Make (Tso_buffer)
module Pso = Make (Pso_buffer)
