(** First-class memory models: the backend seam of the validation
    stack.

    A memory model is what turns a program into a set of observable
    behaviours, together with a stance on data races:

    - {e Sc} is the language-level model of the paper: behaviours are
      the SC interleavings ({!Safeopt_lang.Interp}), and racy programs
      "catch fire" — the DRF guarantee promises nothing about them, so
      transformation safety is judged by the catch-fire criterion (a
      DRF original must stay DRF and gain no behaviours; racy originals
      are vacuously fine).
    - {e Tso}/{e Pso} are hardware models: every program, racy or not,
      has defined behaviour (the store-buffer machine,
      {!Store_buffer}), so transformation safety is plain behaviour
      inclusion under the model.

    That asymmetry is exactly what the portability matrix measures: a
    transformation can be SC-safe (vacuous on a racy program) yet
    introduce hardware-observable behaviour — load;store reordering
    under TSO — or SC-unsafe (it breaks DRF) yet harmless on hardware,
    where nothing catches fire — irrelevant-read introduction. *)

open Safeopt_exec
open Safeopt_lang

type t = Sc | Tso | Pso

val all : t list
(** [[Sc; Tso; Pso]], strongest first. *)

val name : t -> string
(** ["sc"], ["tso"], ["pso"] — the tag used by [--model], span/metric
    labels and witness provenance. *)

val pp : t Fmt.t

val of_string : string -> (t, string) result

val equal : t -> t -> bool

val catch_fire : t -> bool
(** The model's racy-behaviour semantics: [true] for {!Sc} (racy
    programs have undefined behaviour, so the DRF-guarantee criterion
    applies), [false] for the hardware models (racy programs have
    defined machine behaviour, so safety is behaviour inclusion). *)

val describe : t -> string
(** One-line summary of the model and its safety criterion. *)

val behaviours :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  t ->
  Ast.program ->
  Behaviour.Set.t
(** The program's observable behaviours under the model
    (prefix-closed): SC interleavings for {!Sc}, the store-buffer
    machine for {!Tso}/{!Pso}.  [jobs]/[pool] parallelise the
    exploration; the set is identical. *)

val system_behaviours :
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  t ->
  Safeopt_trace.Location.Volatile.t ->
  'ts System.t ->
  Behaviour.Set.t
(** As {!behaviours}, over an explicit {!Safeopt_exec.System}. *)

val replays :
  ?fuel:int ->
  ?max_states:int ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  t ->
  Ast.program ->
  Behaviour.t ->
  bool
(** Witness replay: re-enumerate the program under the model and check
    the behaviour is (still) observable — how portability witnesses
    are validated before they are reported. *)
