(** A store-buffer (TSO) machine for the section-6 language.

    The paper's section 8 reports that the Sun/SPARC TSO memory model
    can be explained by the paper's transformations (write-read
    reordering and read-after-write elimination, i.e. store-to-load
    forwarding).  This module provides the standard operational
    presentation of TSO so that claim can be tested: each thread owns a
    FIFO buffer of pending writes;

    - a normal write enqueues into the thread's buffer;
    - a read takes the newest pending write to its location from the
      thread's own buffer (store-to-load forwarding), else memory;
    - at any moment the oldest buffered write of any thread may drain
      to memory;
    - volatile writes, locks and unlocks are fencing: they require the
      thread's buffer to be empty (volatile reads are plain loads, as
      on x86/SPARC TSO).

    Threads are supplied through the same {!Safeopt_exec.System}
    abstraction the SC engine uses, so the two enumerations differ only
    in the memory model. *)

open Safeopt_trace
open Safeopt_exec
open Safeopt_lang

val behaviours :
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Location.Volatile.t ->
  'ts System.t ->
  Behaviour.Set.t
(** All observable behaviours of the system under TSO (prefix-closed),
    computed on the unified engine ({!Explorer.graph_behaviours}) with
    hash-consed machine states.  [jobs]/[pool] parallelise the state
    discovery ({!Safeopt_exec.Par}); the resulting set is identical.
    @raise Explorer.Cyclic / @raise Explorer.Too_many_states as the
    SC engine does. *)

val program_behaviours :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program ->
  Behaviour.Set.t
(** TSO behaviours of a program. *)

val weak_behaviours :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program ->
  Behaviour.Set.t
(** TSO behaviours that are not SC behaviours — the program's observable
    store-buffering weakness (empty for DRF programs; Theorem 2 +
    section 8). *)

val explained_by_transformations :
  ?fuel:int ->
  ?max_states:int ->
  ?max_programs:int ->
  Ast.program ->
  Behaviour.Set.t * Behaviour.Set.t * bool
(** [(tso, transformed_sc, included)]: TSO behaviours of the program,
    the union of SC behaviours of all programs reachable from it via
    the syntactic rules R-WR (write-read reordering) and E-RAW
    (store-to-load forwarding), and whether the former is a subset of
    the latter — the section-8 claim, checked per program. *)
