(** A PSO (partial store order) machine: per-location store buffers.

    Section 8 of the paper conjectures that results similar to the TSO
    explanation "can be achieved for other processor memory models".
    PSO (SPARC's weaker sibling) lets a thread's writes to {e different
    locations} drain out of order, so it additionally exhibits
    write-write reordering: message passing breaks.  Its weak
    behaviours should accordingly be reproduced under SC by programs
    reachable through W-W reordering (R-WW) in addition to TSO's R-WR
    and E-RAW — which {!explained_by_transformations} checks.

    Mechanics: each thread owns one FIFO buffer {e per location}; a
    write enqueues to its location's buffer; at any moment the oldest
    entry of any (thread, location) buffer may drain; reads forward
    from the thread's own buffer for that location; volatile writes,
    locks and unlocks require all of the thread's buffers to be
    empty (volatile reads are plain loads). *)

open Safeopt_trace
open Safeopt_exec
open Safeopt_lang

val behaviours :
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Location.Volatile.t ->
  'ts System.t ->
  Behaviour.Set.t
(** As {!Machine.behaviours}, under PSO.  [jobs]/[pool] parallelise the
    state discovery; the resulting set is identical. *)

val program_behaviours :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program ->
  Behaviour.Set.t

val weak_behaviours :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program ->
  Behaviour.Set.t
(** PSO behaviours that are not SC behaviours. *)

val weak_beyond_tso :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program ->
  Behaviour.Set.t
(** PSO behaviours that are not even TSO behaviours (the observable
    effect of write-write reordering alone). *)

val explained_by_transformations :
  ?fuel:int ->
  ?max_states:int ->
  ?max_programs:int ->
  Ast.program ->
  Behaviour.Set.t * Behaviour.Set.t * bool
(** [(pso, transformed_sc, included)] with the rule set
    {R-WW, R-WR, E-RAW}. *)
