open Safeopt_trace
open Safeopt_exec
open Safeopt_lang

(* Per-thread, per-location FIFO buffers; list newest-first. *)
type 'ts state = {
  threads : 'ts array;
  buffers : Value.t list Location.Map.t array;
  mem : Value.t Location.Map.t;
  locks : (Thread_id.t * int) Monitor.Map.t;
}

let buffer_of st tid l =
  Option.value ~default:[] (Location.Map.find_opt l st.buffers.(tid))

let buffers_empty st tid = Location.Map.for_all (fun _ vs -> vs = []) st.buffers.(tid)

let read_value st tid l =
  match buffer_of st tid l with
  | v :: _ -> v (* newest pending write to l *)
  | [] -> Option.value ~default:Value.default (Location.Map.find_opt l st.mem)

let transitions vol sys st =
  let out = ref [] in
  (* Drain: the oldest entry of any per-location queue. *)
  Array.iteri
    (fun tid bufs ->
      Location.Map.iter
        (fun l vs ->
          match List.rev vs with
          | [] -> ()
          | oldest :: _ ->
              let vs' = List.filteri (fun i _ -> i < List.length vs - 1) vs in
              let buffers = Array.copy st.buffers in
              buffers.(tid) <-
                (if vs' = [] then Location.Map.remove l bufs
                 else Location.Map.add l vs' bufs);
              out :=
                (None, { st with buffers; mem = Location.Map.add l oldest st.mem })
                :: !out)
        bufs)
    st.buffers;
  (* Thread steps. *)
  Array.iteri
    (fun tid ts ->
      List.iter
        (fun step ->
          match step with
          | System.Read (l, k) -> (
              let v = read_value st tid l in
              match k v with
              | Some ts' ->
                  let threads = Array.copy st.threads in
                  threads.(tid) <- ts';
                  out := (Some (Action.Read (l, v)), { st with threads }) :: !out
              | None -> ())
          | System.Rmw (l, k) ->
              (* Fence-like, as under TSO: all the thread's per-location
                 buffers must have drained before the RMW hits memory. *)
              if buffers_empty st tid then
                let v =
                  Option.value ~default:Value.default
                    (Location.Map.find_opt l st.mem)
                in
                List.iter
                  (fun (w, ts') ->
                    let threads = Array.copy st.threads in
                    threads.(tid) <- ts';
                    out :=
                      ( Some (Action.Rmw (l, v, w)),
                        { st with threads; mem = Location.Map.add l w st.mem }
                      )
                      :: !out)
                  (k v)
          | System.Emit (a, ts') -> (
              let commit st' =
                let threads = Array.copy st'.threads in
                threads.(tid) <- ts';
                out := (Some a, { st' with threads }) :: !out
              in
              match a with
              | Action.Read _ ->
                  invalid_arg "Pso: reads must use System.Read steps"
              | Action.Rmw _ ->
                  invalid_arg "Pso: RMWs must use System.Rmw steps"
              | Action.Write (l, v) ->
                  if Location.Volatile.mem vol l then begin
                    if buffers_empty st tid then
                      commit { st with mem = Location.Map.add l v st.mem }
                  end
                  else begin
                    let buffers = Array.copy st.buffers in
                    buffers.(tid) <-
                      Location.Map.add l (v :: buffer_of st tid l)
                        st.buffers.(tid);
                    commit { st with buffers }
                  end
              | Action.Lock m ->
                  if buffers_empty st tid then (
                    match Monitor.Map.find_opt m st.locks with
                    | None ->
                        commit
                          { st with locks = Monitor.Map.add m (tid, 1) st.locks }
                    | Some (owner, d) when Thread_id.equal owner tid ->
                        commit
                          {
                            st with
                            locks = Monitor.Map.add m (tid, d + 1) st.locks;
                          }
                    | Some _ -> ())
              | Action.Unlock m ->
                  if buffers_empty st tid then (
                    match Monitor.Map.find_opt m st.locks with
                    | Some (owner, d) when Thread_id.equal owner tid ->
                        let locks =
                          if d = 1 then Monitor.Map.remove m st.locks
                          else Monitor.Map.add m (tid, d - 1) st.locks
                        in
                        commit { st with locks }
                    | _ -> ())
              | Action.External _ | Action.Start _ -> commit st))
        (sys.System.steps ts))
    st.threads;
  List.rev !out

(* Length-prefixed injective int encoding; interners shared with the
   digest's caller (see {!Machine.digest} for the TSO analogue). *)
let digest ~tkey ~lkey ~mkey sys st =
  let intern = Par.Intern.id in
  let acc = ref [] in
  let push x = acc := x :: !acc in
  Monitor.Map.iter
    (fun m (o, d) ->
      push (intern mkey m);
      push o;
      push d)
    st.locks;
  push (Monitor.Map.cardinal st.locks);
  Location.Map.iter
    (fun l v ->
      push (intern lkey l);
      push v)
    st.mem;
  push (Location.Map.cardinal st.mem);
  Array.iter
    (fun bufs ->
      Location.Map.iter
        (fun l vs ->
          List.iter push vs;
          push (List.length vs);
          push (intern lkey l))
        bufs;
      push (Location.Map.cardinal bufs))
    st.buffers;
  Array.iter (fun ts -> push (intern tkey (sys.System.key ts))) st.threads;
  !acc

let behaviours ?max_states ?stats ?jobs ?pool vol sys =
  let sp =
    if Safeopt_obs.Tracer.enabled () then
      Safeopt_obs.Tracer.span "pso.behaviours"
    else Safeopt_obs.Tracer.none
  in
  Fun.protect
    ~finally:(fun () -> Safeopt_obs.Tracer.close_span sp)
    (fun () ->
      let tkey = Par.Intern.create () in
      let lkey = Par.Intern.create () in
      let mkey = Par.Intern.create () in
      Explorer.graph_behaviours ?max_states ?stats ?jobs ?pool
        {
          Explorer.graph_initial =
            {
              threads = Array.of_list sys.System.initial;
              buffers =
                Array.make (List.length sys.System.initial) Location.Map.empty;
              mem = Location.Map.empty;
              locks = Monitor.Map.empty;
            };
          graph_transitions = (fun st -> transitions vol sys st);
          graph_digest = (fun st -> digest ~tkey ~lkey ~mkey sys st);
        })

let program_behaviours ?fuel ?max_states ?stats ?jobs ?pool (p : Ast.program)
    =
  behaviours ?max_states ?stats ?jobs ?pool p.Ast.volatile
    (Thread_system.make ?fuel p)

let weak_behaviours ?fuel ?max_states ?stats ?jobs ?pool p =
  Behaviour.Set.diff
    (program_behaviours ?fuel ?max_states ?stats ?jobs ?pool p)
    (Interp.behaviours ?fuel ?max_states ?stats ?jobs ?pool p)

let weak_beyond_tso ?fuel ?max_states ?stats ?jobs ?pool p =
  Behaviour.Set.diff
    (program_behaviours ?fuel ?max_states ?stats ?jobs ?pool p)
    (Machine.program_behaviours ?fuel ?max_states ?stats ?jobs ?pool p)

let explained_by_transformations ?fuel ?max_states ?(max_programs = 2_000) p =
  let pso = program_behaviours ?fuel ?max_states p in
  let rules =
    (* the silent move-commutation rules only make desugared stores
       adjacent; they are identity transformations on tracesets *)
    Safeopt_opt.Rule.moves
    @ List.filter_map Safeopt_opt.Rule.by_name [ "R-WW"; "R-WR"; "E-RAW" ]
  in
  let reachable = Safeopt_opt.Transform.reachable ~max_programs rules p in
  let sc_union =
    List.fold_left
      (fun acc q ->
        Behaviour.Set.union acc (Interp.behaviours ?fuel ?max_states q))
      Behaviour.Set.empty reachable
  in
  (pso, sc_union, Behaviour.Set.subset pso sc_union)
