open Safeopt_exec
open Safeopt_lang

(* Per-thread, per-location FIFO buffers; the machine is
   {!Safeopt_model.Store_buffer} instantiated at {!Pso_buffer}.  This
   module keeps the PSO-specific derived queries. *)
module M = Safeopt_model.Store_buffer.Pso

let behaviours = M.behaviours
let program_behaviours = M.program_behaviours

let weak_behaviours ?fuel ?max_states ?stats ?jobs ?pool p =
  Behaviour.Set.diff
    (program_behaviours ?fuel ?max_states ?stats ?jobs ?pool p)
    (Interp.behaviours ?fuel ?max_states ?stats ?jobs ?pool p)

let weak_beyond_tso ?fuel ?max_states ?stats ?jobs ?pool p =
  Behaviour.Set.diff
    (program_behaviours ?fuel ?max_states ?stats ?jobs ?pool p)
    (Machine.program_behaviours ?fuel ?max_states ?stats ?jobs ?pool p)

let explained_by_transformations ?fuel ?max_states ?(max_programs = 2_000) p =
  let pso = program_behaviours ?fuel ?max_states p in
  let rules =
    (* the silent move-commutation rules only make desugared stores
       adjacent; they are identity transformations on tracesets *)
    Safeopt_opt.Rule.moves
    @ List.filter_map Safeopt_opt.Rule.by_name [ "R-WW"; "R-WR"; "E-RAW" ]
  in
  let reachable = Safeopt_opt.Transform.reachable ~max_programs rules p in
  let sc_union =
    List.fold_left
      (fun acc q ->
        Behaviour.Set.union acc (Interp.behaviours ?fuel ?max_states q))
      Behaviour.Set.empty reachable
  in
  (pso, sc_union, Behaviour.Set.subset pso sc_union)
