open Safeopt_trace
open Safeopt_exec
open Safeopt_lang

type 'ts state = {
  threads : 'ts array;
  buffers : (Location.t * Value.t) list array;  (** newest first *)
  mem : Value.t Location.Map.t;
  locks : (Thread_id.t * int) Monitor.Map.t;
}

let read_value st tid l =
  (* Store-to-load forwarding: newest buffered write to [l] wins. *)
  match List.find_opt (fun (l', _) -> Location.equal l l') st.buffers.(tid) with
  | Some (_, v) -> Some v
  | None -> Location.Map.find_opt l st.mem

(* Transitions: Some action for thread steps, None for buffer drains
   (invisible). *)
let transitions vol sys st =
  let out = ref [] in
  (* Drain steps. *)
  Array.iteri
    (fun tid buf ->
      match List.rev buf with
      | [] -> ()
      | (l, v) :: _older_rev ->
          let buffers = Array.copy st.buffers in
          buffers.(tid) <- List.filteri (fun i _ -> i < List.length buf - 1) buf;
          out :=
            (None, { st with buffers; mem = Location.Map.add l v st.mem })
            :: !out)
    st.buffers;
  (* Thread steps. *)
  Array.iteri
    (fun tid ts ->
      let buffer_empty = st.buffers.(tid) = [] in
      List.iter
        (fun step ->
          match step with
          | System.Read (l, k) -> (
              let v =
                Option.value ~default:Value.default (read_value st tid l)
              in
              match k v with
              | Some ts' ->
                  let threads = Array.copy st.threads in
                  threads.(tid) <- ts';
                  out := (Some (Action.Read (l, v)), { st with threads }) :: !out
              | None -> ())
          | System.Rmw (l, k) ->
              (* An RMW fences (x86 LOCK prefix): it requires the
                 thread's own store buffer to be empty and reads and
                 writes memory directly, so it can neither see nor
                 leave behind a buffered value. *)
              if buffer_empty then
                let v =
                  Option.value ~default:Value.default
                    (Location.Map.find_opt l st.mem)
                in
                List.iter
                  (fun (w, ts') ->
                    let threads = Array.copy st.threads in
                    threads.(tid) <- ts';
                    out :=
                      ( Some (Action.Rmw (l, v, w)),
                        { st with threads; mem = Location.Map.add l w st.mem }
                      )
                      :: !out)
                  (k v)
          | System.Emit (a, ts') -> (
              let commit st' =
                let threads = Array.copy st'.threads in
                threads.(tid) <- ts';
                out := (Some a, { st' with threads }) :: !out
              in
              match a with
              | Action.Read _ ->
                  invalid_arg "Tso: reads must use System.Read steps"
              | Action.Rmw _ ->
                  invalid_arg "Tso: RMWs must use System.Rmw steps"
              | Action.Write (l, v) ->
                  if Location.Volatile.mem vol l then begin
                    (* Fencing write: needs an empty buffer, goes
                       straight to memory. *)
                    if buffer_empty then
                      commit { st with mem = Location.Map.add l v st.mem }
                  end
                  else begin
                    let buffers = Array.copy st.buffers in
                    buffers.(tid) <- (l, v) :: st.buffers.(tid);
                    commit { st with buffers }
                  end
              | Action.Lock m ->
                  if buffer_empty then (
                    match Monitor.Map.find_opt m st.locks with
                    | None ->
                        commit
                          { st with locks = Monitor.Map.add m (tid, 1) st.locks }
                    | Some (owner, d) when Thread_id.equal owner tid ->
                        commit
                          {
                            st with
                            locks = Monitor.Map.add m (tid, d + 1) st.locks;
                          }
                    | Some _ -> ())
              | Action.Unlock m ->
                  if buffer_empty then (
                    match Monitor.Map.find_opt m st.locks with
                    | Some (owner, d) when Thread_id.equal owner tid ->
                        let locks =
                          if d = 1 then Monitor.Map.remove m st.locks
                          else Monitor.Map.add m (tid, d - 1) st.locks
                        in
                        commit { st with locks }
                    | _ -> ())
              | Action.External _ | Action.Start _ -> commit st))
        (sys.System.steps ts))
    st.threads;
  List.rev !out

(* Length-prefixed injective int encoding of a machine state; thread
   keys, locations and monitors are interned per [behaviours] call.
   The interning tables are the sharded thread-safe ones because
   [Explorer.graph_behaviours] may call the digest from several worker
   domains at once under [jobs]/[pool]. *)
let digest ~tkey ~lkey ~mkey sys st =
  let intern = Par.Intern.id in
  let acc = ref [] in
  let push x = acc := x :: !acc in
  Monitor.Map.iter
    (fun m (o, d) ->
      push (intern mkey m);
      push o;
      push d)
    st.locks;
  push (Monitor.Map.cardinal st.locks);
  Location.Map.iter
    (fun l v ->
      push (intern lkey l);
      push v)
    st.mem;
  push (Location.Map.cardinal st.mem);
  Array.iter
    (fun buf ->
      List.iter
        (fun (l, v) ->
          push (intern lkey l);
          push v)
        buf;
      push (List.length buf))
    st.buffers;
  Array.iter (fun ts -> push (intern tkey (sys.System.key ts))) st.threads;
  !acc

let behaviours ?max_states ?stats ?jobs ?pool vol sys =
  let sp =
    if Safeopt_obs.Tracer.enabled () then
      Safeopt_obs.Tracer.span "tso.behaviours"
    else Safeopt_obs.Tracer.none
  in
  Fun.protect
    ~finally:(fun () -> Safeopt_obs.Tracer.close_span sp)
    (fun () ->
      let tkey = Par.Intern.create () in
      let lkey = Par.Intern.create () in
      let mkey = Par.Intern.create () in
      Explorer.graph_behaviours ?max_states ?stats ?jobs ?pool
        {
          Explorer.graph_initial =
            {
              threads = Array.of_list sys.System.initial;
              buffers = Array.make (List.length sys.System.initial) [];
              mem = Location.Map.empty;
              locks = Monitor.Map.empty;
            };
          graph_transitions = (fun st -> transitions vol sys st);
          graph_digest = (fun st -> digest ~tkey ~lkey ~mkey sys st);
        })

let program_behaviours ?fuel ?max_states ?stats ?jobs ?pool (p : Ast.program)
    =
  behaviours ?max_states ?stats ?jobs ?pool p.Ast.volatile
    (Thread_system.make ?fuel p)

let weak_behaviours ?fuel ?max_states ?stats ?jobs ?pool p =
  let tso = program_behaviours ?fuel ?max_states ?stats ?jobs ?pool p in
  let sc = Interp.behaviours ?fuel ?max_states ?stats ?jobs ?pool p in
  Behaviour.Set.diff tso sc

let explained_by_transformations ?fuel ?max_states ?(max_programs = 2_000) p =
  let tso = program_behaviours ?fuel ?max_states p in
  let rules =
    (* the silent move-commutation rules only make desugared stores
       adjacent; they are identity transformations on tracesets *)
    Safeopt_opt.Rule.moves
    @ List.filter_map Safeopt_opt.Rule.by_name [ "R-WR"; "E-RAW" ]
  in
  let reachable =
    Safeopt_opt.Transform.reachable ~max_programs rules p
  in
  let sc_union =
    List.fold_left
      (fun acc q ->
        Behaviour.Set.union acc (Interp.behaviours ?fuel ?max_states q))
      Behaviour.Set.empty reachable
  in
  (tso, sc_union, Behaviour.Set.subset tso sc_union)
