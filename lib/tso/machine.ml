open Safeopt_exec
open Safeopt_lang

(* The machine itself — buffers, drains, fencing, digests — lives in
   {!Safeopt_model.Store_buffer}, shared with PSO; this module keeps
   the TSO-specific derived queries (weakness, the section-8
   explanation) that need the optimisation layer. *)
module M = Safeopt_model.Store_buffer.Tso

let behaviours = M.behaviours
let program_behaviours = M.program_behaviours

let weak_behaviours ?fuel ?max_states ?stats ?jobs ?pool p =
  let tso = program_behaviours ?fuel ?max_states ?stats ?jobs ?pool p in
  let sc = Interp.behaviours ?fuel ?max_states ?stats ?jobs ?pool p in
  Behaviour.Set.diff tso sc

let explained_by_transformations ?fuel ?max_states ?(max_programs = 2_000) p =
  let tso = program_behaviours ?fuel ?max_states p in
  let rules =
    (* the silent move-commutation rules only make desugared stores
       adjacent; they are identity transformations on tracesets *)
    Safeopt_opt.Rule.moves
    @ List.filter_map Safeopt_opt.Rule.by_name [ "R-WR"; "E-RAW" ]
  in
  let reachable =
    Safeopt_opt.Transform.reachable ~max_programs rules p
  in
  let sc_union =
    List.fold_left
      (fun acc q ->
        Behaviour.Set.union acc (Interp.behaviours ?fuel ?max_states q))
      Behaviour.Set.empty reachable
  in
  (tso, sc_union, Behaviour.Set.subset tso sc_union)
