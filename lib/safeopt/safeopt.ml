(** The umbrella module: one [open Safeopt] exposes the whole library
    under short names.

    {v
    open Safeopt
    let p = Parser.parse_program "thread { x := 1; }"
    let b = Interp.behaviours p
    v}

    Layered structure (see DESIGN.md):
    - trace semantics: {!Value}, {!Location}, {!Monitor}, {!Thread_id},
      {!Action}, {!Trace}, {!Wildcard}, {!Traceset}, {!Syntax};
    - executions: {!Interleaving}, {!Happens_before}, {!Race},
      {!Behaviour}, {!System}, {!Explorer};
    - the section-6 language: {!Ast}, {!Parser}, {!Pp}, {!Semantics},
      {!Denote}, {!Interp}, {!Thread_system};
    - the paper's transformations: {!Eliminable}, {!Elimination},
      {!Reorder}, {!Unelimination}, {!Unordering}, {!Origin}, {!Safety},
      {!Witness};
    - the syntactic layer: {!Rule}, {!Transform}, {!Passes}, {!Pass},
      {!Pipeline}, {!Liveness}, {!Validate};
    - static analysis: {!Cfg}, {!Dataflow}, {!Lockset}, {!Static_race};
    - memory models: {!Memory_model} (the first-class model interface:
      SC, TSO, PSO behind one [behaviours]/[replays] face),
      {!Store_buffer} (the shared buffered-machine functor);
    - hardware models: {!Tso}, {!Pso}, {!Robustness};
    - corpus and generators: {!Litmus}, {!Corpus}, {!Generators},
      {!Portability} (the pass × model portability matrix);
    - telemetry: {!Metrics}, {!Tracer}, {!Trace_event}, {!Trace_report}. *)

(* trace *)
module Value = Safeopt_trace.Value
module Location = Safeopt_trace.Location
module Monitor = Safeopt_trace.Monitor
module Thread_id = Safeopt_trace.Thread_id
module Action = Safeopt_trace.Action
module Trace = Safeopt_trace.Trace
module Wildcard = Safeopt_trace.Wildcard
module Traceset = Safeopt_trace.Traceset
module Syntax = Safeopt_trace.Syntax

(* exec *)
module Interleaving = Safeopt_exec.Interleaving
module Happens_before = Safeopt_exec.Happens_before
module Race = Safeopt_exec.Race
module Behaviour = Safeopt_exec.Behaviour
module System = Safeopt_exec.System
module Traceset_system = Safeopt_exec.Traceset_system
module Explorer = Safeopt_exec.Explorer

(* lang *)
module Reg = Safeopt_lang.Reg
module Ast = Safeopt_lang.Ast
module Lexer = Safeopt_lang.Lexer
module Parser = Safeopt_lang.Parser
module Pp = Safeopt_lang.Pp
module Semantics = Safeopt_lang.Semantics
module Denote = Safeopt_lang.Denote
module Interp = Safeopt_lang.Interp
module Thread_system = Safeopt_lang.Thread_system

(* core *)
module Eliminable = Safeopt_core.Eliminable
module Elimination = Safeopt_core.Elimination
module Reorder = Safeopt_core.Reorder
module Unelimination = Safeopt_core.Unelimination
module Unordering = Safeopt_core.Unordering
module Origin = Safeopt_core.Origin
module Safety = Safeopt_core.Safety
module Witness = Safeopt_core.Witness

(* opt *)
module Rule = Safeopt_opt.Rule
module Transform = Safeopt_opt.Transform
module Passes = Safeopt_opt.Passes
module Pass = Safeopt_opt.Pass
module Pipeline = Safeopt_opt.Pipeline
module Liveness = Safeopt_opt.Liveness
module Validate = Safeopt_opt.Validate

(* static analysis *)
module Cfg = Safeopt_analysis.Cfg
module Dataflow = Safeopt_analysis.Dataflow
module Lockset = Safeopt_analysis.Lockset
module Static_race = Safeopt_analysis.Static_race

(* memory models *)
module Memory_model = Safeopt_model.Memory_model
module Store_buffer = Safeopt_model.Store_buffer

(* hardware models *)
module Tso = Safeopt_tso.Machine
module Pso = Safeopt_tso.Pso
module Robustness = Safeopt_tso.Robustness

(* corpus and generators *)
module Litmus = Safeopt_litmus.Litmus
module Corpus = Safeopt_litmus.Corpus
module Portability = Safeopt_litmus.Portability
module Generators = Safeopt_gen.Generators

(* telemetry *)
module Metrics = Safeopt_obs.Metrics
module Tracer = Safeopt_obs.Tracer
module Trace_event = Safeopt_obs.Event
module Trace_report = Safeopt_obs.Report
