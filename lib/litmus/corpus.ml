let make = Litmus.make

(* --- Paper examples --------------------------------------------------- *)

let intro_racy =
  make ~name:"intro_racy"
    ~descr:"section 1 motivating example (request/response flags), racy"
    ~drf:false
    ~can:[ [ 2 ]; [] ]
    ~cannot:[ [ 1 ] ]
    {|
thread {
  data := 1;
  askReady := 1;
  r1 := ansReady;
  if (r1 == 1) { r2 := data; print r2; }
}
thread {
  r3 := askReady;
  if (r3 == 1) { data := 2; ansReady := 1; }
}
|}

let intro_racy_opt =
  make ~name:"intro_racy_opt"
    ~descr:"section 1 example after constant propagation: can print 1"
    ~drf:false
    ~can:[ [ 1 ]; [] ]
    ~cannot:[ [ 2 ] ]
    {|
thread {
  data := 1;
  askReady := 1;
  r1 := ansReady;
  if (r1 == 1) { r2 := 1; print r2; }
}
thread {
  r3 := askReady;
  if (r3 == 1) { data := 2; ansReady := 1; }
}
|}

let intro_volatile =
  make ~name:"intro_volatile"
    ~descr:"section 1 example with volatile flags: DRF, prints only 2"
    ~drf:true
    ~can:[ [ 2 ]; [] ]
    ~cannot:[ [ 1 ] ]
    {|
volatile askReady, ansReady;
thread {
  data := 1;
  askReady := 1;
  r1 := ansReady;
  if (r1 == 1) { r2 := data; print r2; }
}
thread {
  r3 := askReady;
  if (r3 == 1) { data := 2; ansReady := 1; }
}
|}

let fig1_original =
  make ~name:"fig1_original"
    ~descr:"Fig. 1 original: overwritten write and duplicated read present"
    ~drf:false
    ~can:[ [ 1; 1 ]; [ 1; 2 ]; [ 0; 0 ] ]
    ~cannot:[ [ 1; 0 ] ]
    {|
thread {
  x := 2;
  y := 1;
  x := 1;
}
thread {
  r1 := y;
  print r1;
  r1 := x;
  r2 := x;
  print r2;
}
|}

let fig1_transformed =
  make ~name:"fig1_transformed"
    ~descr:"Fig. 1 transformed: can output 1 then 0"
    ~drf:false
    ~can:[ [ 1; 0 ]; [ 1; 1 ]; [ 0; 0 ] ]
    {|
thread {
  y := 1;
  x := 1;
}
thread {
  r1 := y;
  print r1;
  r1 := x;
  r2 := r1;
  print r2;
}
|}

let fig2_original =
  make ~name:"fig2_original"
    ~descr:"Fig. 2 original: read of y before write of x; cannot print 1"
    ~drf:false
    ~can:[ [ 0 ] ]
    ~cannot:[ [ 1 ] ]
    {|
thread {
  r2 := y;
  x := 1;
  print r2;
}
thread {
  r1 := x;
  y := r1;
}
|}

let fig2_transformed =
  make ~name:"fig2_transformed"
    ~descr:"Fig. 2 transformed: write of x hoisted; can print 1"
    ~drf:false
    ~can:[ [ 0 ]; [ 1 ] ]
    {|
thread {
  x := 1;
  r2 := y;
  print r2;
}
thread {
  r1 := x;
  y := r1;
}
|}

let fig3_a =
  make ~name:"fig3_a"
    ~descr:"Fig. 3 (a): lock-protected prints; DRF; cannot print two zeros"
    ~drf:true
    ~can:[ [ 0; 1 ] ]
    ~cannot:[ [ 0; 0 ] ]
    {|
thread {
  lock m;
  x := 1;
  print y;
  unlock m;
}
thread {
  lock m;
  y := 1;
  print x;
  unlock m;
}
|}

let fig3_b =
  make ~name:"fig3_b"
    ~descr:"Fig. 3 (b): irrelevant reads introduced; racy; still cannot print \
            two zeros under SC"
    ~drf:false
    ~can:[ [ 0; 1 ] ]
    ~cannot:[ [ 0; 0 ] ]
    {|
thread {
  r1 := y;
  lock m;
  x := 1;
  print y;
  unlock m;
}
thread {
  r2 := x;
  lock m;
  y := 1;
  print x;
  unlock m;
}
|}

let fig3_c =
  make ~name:"fig3_c"
    ~descr:"Fig. 3 (c): introduced reads reused; can print two zeros"
    ~drf:false
    ~can:[ [ 0; 0 ]; [ 0; 1 ] ]
    {|
thread {
  r1 := y;
  lock m;
  x := 1;
  print r1;
  unlock m;
}
thread {
  r2 := x;
  lock m;
  y := 1;
  print r2;
  unlock m;
}
|}

let oota =
  make ~name:"oota"
    ~descr:"section 5 out-of-thin-air candidate: relays x and y; cannot \
            output 42"
    ~drf:false
    ~can:[ [ 0 ] ]
    ~cannot:[ [ 42 ]; [ 1 ] ]
    {|
thread {
  r2 := y;
  x := r2;
  print r2;
}
thread {
  r1 := x;
  y := r1;
}
|}

let sec4_elim_original =
  make ~name:"sec4_elim_original"
    ~descr:"section 4 elimination example, original single thread"
    ~drf:true
    ~can:[ [ 1 ] ]
    {|
thread {
  x := 1;
  r1 := y;
  r2 := x;
  print r2;
  if (r2 != 0) {
    lock m;
    x := 2;
    x := r2;
    unlock m;
  }
}
|}

let sec4_elim_transformed =
  make ~name:"sec4_elim_transformed"
    ~descr:"section 4 elimination example, transformed single thread"
    ~drf:true
    ~can:[ [ 1 ] ]
    {|
thread {
  x := 1;
  print 1;
  lock m;
  x := 1;
  unlock m;
}
|}

let sec5_unelim =
  make ~name:"sec5_unelim"
    ~descr:"section 5 program for the Fig. 5 unelimination construction"
    ~drf:true
    ~can:[ [ 0 ]; [ 1 ] ]
    {|
volatile v;
thread {
  v := 1;
  y := 1;
}
thread {
  r1 := x;
  r2 := v;
  print r2;
}
|}

(* --- Classical litmus shapes ----------------------------------------- *)

let sb =
  make ~name:"sb" ~descr:"store buffering: SC forbids 0,0" ~drf:false
    ~can:[ [ 0; 1 ]; [ 1; 1 ] ]
    ~cannot:[ [ 0; 0 ] ]
    {|
thread {
  x := 1;
  r1 := y;
  print r1;
}
thread {
  y := 1;
  r2 := x;
  print r2;
}
|}

let mp =
  make ~name:"mp" ~descr:"message passing with plain flag: racy" ~drf:false
    ~can:[ [ 1 ]; [] ]
    ~cannot:[ [ 0 ] ]
    {|
thread {
  data := 1;
  flag := 1;
}
thread {
  r1 := flag;
  if (r1 == 1) { r2 := data; print r2; }
}
|}

let mp_volatile =
  make ~name:"mp_volatile"
    ~descr:"message passing with volatile flag: DRF, reader sees the data"
    ~drf:true
    ~can:[ [ 1 ]; [] ]
    ~cannot:[ [ 0 ] ]
    {|
volatile flag;
thread {
  data := 1;
  flag := 1;
}
thread {
  r1 := flag;
  if (r1 == 1) { r2 := data; print r2; }
}
|}

let mp_locked =
  make ~name:"mp_locked" ~descr:"message passing under a lock: DRF" ~drf:true
    ~can:[ [ 1 ]; [] ]
    ~cannot:[ [ 0 ] ]
    {|
thread {
  lock m;
  data := 1;
  flag := 1;
  unlock m;
}
thread {
  lock m;
  r1 := flag;
  r2 := data;
  unlock m;
  if (r1 == 1) print r2;
}
|}

let lb =
  make ~name:"lb" ~descr:"load buffering: SC forbids 1,1" ~drf:false
    ~can:[ [ 0; 0 ]; [ 0; 1 ] ]
    ~cannot:[ [ 1; 1 ] ]
    {|
thread {
  r1 := y;
  x := 1;
  print r1;
}
thread {
  r2 := x;
  y := 1;
  print r2;
}
|}

let corr =
  make ~name:"corr"
    ~descr:"read-read coherence: after seeing 1, cannot see 0 again"
    ~drf:false
    ~can:[ [ 0; 0 ]; [ 0; 1 ]; [ 1; 1 ] ]
    ~cannot:[ [ 1; 0 ] ]
    {|
thread {
  x := 1;
}
thread {
  r1 := x;
  r2 := x;
  print r1;
  print r2;
}
|}

let iriw =
  make ~name:"iriw"
    ~descr:"independent reads of independent writes: SC forbids both \
            observers disagreeing on the order"
    ~drf:false
    ~can:[ [ 2 ]; [ 3 ] ]
    ~cannot:[ [ 2; 3 ]; [ 3; 2 ] ]
    {|
thread { x := 1; }
thread { y := 1; }
thread {
  r1 := x;
  r2 := y;
  if (r1 == 1) if (r2 == 0) print 2;
}
thread {
  r3 := y;
  r4 := x;
  if (r3 == 1) if (r4 == 0) print 3;
}
|}

let dekker_volatile =
  make ~name:"dekker_volatile"
    ~descr:"Dekker core with volatile flags: DRF, at most one enters"
    ~drf:true
    ~can:[ [ 1 ]; [ 2 ]; [] ]
    ~cannot:[ [ 1; 2 ]; [ 2; 1 ] ]
    {|
volatile f0, f1;
thread {
  f0 := 1;
  r1 := f1;
  if (r1 == 0) print 1;
}
thread {
  f1 := 1;
  r2 := f0;
  if (r2 == 0) print 2;
}
|}

let wrc =
  make ~name:"wrc"
    ~descr:"write-to-read causality: once the chain is observed, the data \
            must be visible"
    ~drf:false
    ~can:[ [ 1 ]; [] ]
    ~cannot:[ [ 0 ] ]
    {|
thread { x := 1; }
thread {
  r1 := x;
  if (r1 == 1) y := 1;
}
thread {
  r2 := y;
  if (r2 == 1) { r3 := x; print r3; }
}
|}

let sb_volatile =
  make ~name:"sb_volatile"
    ~descr:"store buffering with volatile locations: DRF and SC forbids 0,0"
    ~drf:true
    ~can:[ [ 0; 1 ]; [ 1; 1 ] ]
    ~cannot:[ [ 0; 0 ] ]
    {|
volatile x, y;
thread {
  x := 1;
  r1 := y;
  print r1;
}
thread {
  y := 1;
  r2 := x;
  print r2;
}
|}

let peterson_once =
  make ~name:"peterson_once"
    ~descr:"test-once Peterson with volatile flags and turn: DRF, mutual \
            exclusion"
    ~drf:true
    ~can:[ [ 1 ]; [ 2 ]; [] ]
    ~cannot:[ [ 1; 2 ]; [ 2; 1 ] ]
    {|
volatile f0, f1, turn;
thread {
  f0 := 1;
  turn := 1;
  r1 := f1;
  r2 := turn;
  if (r1 == 0) print 1;
  else if (r2 == 0) print 1;
}
thread {
  f1 := 1;
  turn := 0;
  r3 := f0;
  r4 := turn;
  if (r3 == 0) print 2;
  else if (r4 == 1) print 2;
}
|}

let co_ww_rr =
  make ~name:"co_ww_rr"
    ~descr:"write-write coherence observed by a reader: values cannot \
            appear out of store order"
    ~drf:false
    ~can:[ [ 9 ] ]
    ~cannot:[ [ 8 ] ]
    {|
thread {
  x := 1;
  x := 2;
}
thread {
  r1 := x;
  r2 := x;
  if (r1 == 2) if (r2 == 1) print 8;
  if (r1 == 1) if (r2 == 2) print 9;
}
|}

(* --- Lock-free atomics ------------------------------------------------ *)

let atomic_faa_counter =
  make ~name:"atomic_faa_counter"
    ~descr:"two threads fetch-and-add a shared counter: DRF, each sees a \
            distinct ticket"
    ~drf:true
    ~can:[ [ 0; 1 ]; [ 1; 0 ] ]
    ~cannot:[ [ 0; 0 ]; [ 1; 1 ] ]
    {|
thread {
  r1 := faa(c, 1);
  print r1;
}
thread {
  r2 := faa(c, 1);
  print r2;
}
|}

let atomic_ticket_lock =
  make ~name:"atomic_ticket_lock"
    ~descr:"ticket lock from faa tickets and a volatile serving counter: \
            DRF, critical sections never interleave"
    ~drf:true
    ~can:[ [ 1; 2 ]; [ 2; 1 ] ]
    ~cannot:[ [ 1; 1 ]; [ 2; 2 ] ]
    {|
volatile serving;
thread {
  r1 := faa(next, 1);
  r2 := serving;
  while (r2 != r1) r2 := serving;
  x := 1;
  r3 := x;
  print r3;
  r4 := faa(serving, 1);
}
thread {
  r5 := faa(next, 1);
  r6 := serving;
  while (r6 != r5) r6 := serving;
  x := 2;
  r7 := x;
  print r7;
  r8 := faa(serving, 1);
}
|}

let atomic_treiber =
  make ~name:"atomic_treiber"
    ~descr:"Treiber-style push/pop on a volatile top with cas retry loops: \
            DRF, pop returns the pushed cell or empty"
    ~drf:true
    ~can:[ [ 0 ]; [ 1 ] ]
    ~cannot:[ [ 2 ]; [ 0; 1 ]; [ 1; 0 ] ]
    {|
volatile top;
thread {
  r1 := top;
  r2 := cas(top, r1, 1);
  while (r2 != r1) {
    r1 := top;
    r2 := cas(top, r1, 1);
  }
}
thread {
  r3 := top;
  r4 := cas(top, r3, 0);
  while (r4 != r3) {
    r3 := top;
    r4 := cas(top, r3, 0);
  }
  print r3;
}
|}

let atomic_sense_barrier =
  make ~name:"atomic_sense_barrier"
    ~descr:"sense-reversing barrier (faa arrival count, volatile sense): \
            DRF, post-barrier reads see all pre-barrier writes"
    ~drf:true
    ~can:[ [ 1; 1 ]; [ 1 ] ]
    ~cannot:[ [ 0 ]; [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ] ]
    {|
volatile sense;
thread {
  x := 1;
  r1 := faa(count, 1);
  if (r1 == 1) sense := 1;
  r2 := sense;
  while (r2 != 1) r2 := sense;
  r3 := y;
  print r3;
}
thread {
  y := 1;
  r4 := faa(count, 1);
  if (r4 == 1) sense := 1;
  r5 := sense;
  while (r5 != 1) r5 := sense;
  r6 := x;
  print r6;
}
|}

let atomic_spin_then_block =
  make ~name:"atomic_spin_then_block"
    ~descr:"bounded spin on a volatile flag, then block on the lock (faa \
            registers the waiter): DRF, never reads stale data"
    ~drf:true
    ~can:[ [ 1 ]; [] ]
    ~cannot:[ [ 0 ] ]
    {|
volatile flag;
thread {
  data := 1;
  lock m;
  done := 1;
  flag := 1;
  unlock m;
}
thread {
  r1 := flag;
  if (r1 == 0) r1 := flag;
  if (r1 == 1) { r2 := data; print r2; }
  else {
    r6 := faa(waiters, 1);
    lock m;
    r3 := done;
    unlock m;
    if (r3 == 1) { r4 := data; print r4; }
  }
}
|}

let atomic_sb_xchg =
  make ~name:"atomic_sb_xchg"
    ~descr:"store buffering with xchg stores: racy (update vs plain read), \
            but even TSO cannot show 0,0 because RMWs flush the buffer"
    ~drf:false
    ~can:[ [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
    ~cannot:[ [ 0; 0 ] ]
    {|
thread {
  r1 := xchg(x, 1);
  r2 := y;
  print r2;
}
thread {
  r3 := xchg(y, 1);
  r4 := x;
  print r4;
}
|}

let all =
  [
    intro_racy;
    intro_racy_opt;
    intro_volatile;
    fig1_original;
    fig1_transformed;
    fig2_original;
    fig2_transformed;
    fig3_a;
    fig3_b;
    fig3_c;
    oota;
    sec4_elim_original;
    sec4_elim_transformed;
    sec5_unelim;
    sb;
    mp;
    mp_volatile;
    mp_locked;
    lb;
    corr;
    iriw;
    dekker_volatile;
    wrc;
    sb_volatile;
    peterson_once;
    co_ww_rr;
    atomic_faa_counter;
    atomic_ticket_lock;
    atomic_treiber;
    atomic_sense_barrier;
    atomic_spin_then_block;
    atomic_sb_xchg;
  ]

let by_name n = List.find_opt (fun (t : Litmus.t) -> t.Litmus.name = n) all
