(** The pass × memory-model portability matrix.

    The paper proves its transformations safe against the SC-based DRF
    guarantee; hardware models weaken the criterion in one direction
    (racy programs get defined machine behaviour instead of catching
    fire) and strengthen it in another (the machine itself reorders, so
    a compiler reordering that SC absorbs can become observable).  The
    matrix makes that portability boundary concrete: every registered
    pass is applied to every litmus-corpus program, and each changed
    program pair is differentially validated under each model — a cell
    is the corpus-relative verdict for one (pass, model) pair.

    The flagship asymmetry: [store-load-reorder] (Fig. 11 R-RW) is safe
    under SC by Theorem 4 but unsafe under TSO/PSO, where hoisting a
    store above a load lets the store buffer expose the reordering —
    on the [lb] shape it manufactures the SC-forbidden [r1 = r2 = 1]. *)

open Safeopt_lang
open Safeopt_exec
module Model = Safeopt_model.Memory_model

type unsafe_evidence = {
  u_test : string;  (** first corpus test exhibiting the violation *)
  u_witness : Ast.program Safeopt_core.Witness.t;
      (** structured counterexample; names the model *)
  u_behaviour : Behaviour.t option;
      (** the manufactured behaviour, when the evidence is one *)
  u_replayed : bool;
      (** the behaviour was independently re-enumerated: present in
          the transformed program, absent in the original, under the
          cell's model *)
}

type verdict =
  | Safe  (** every changed corpus program validates under the model *)
  | Unsafe of unsafe_evidence
  | Inert  (** the pass rewrote no corpus program — no evidence either way *)

type cell = {
  c_pass : string;
  c_model : Model.t;
  c_verdict : verdict;
  c_checked : int;  (** corpus programs the pass actually changed *)
}

type matrix = {
  passes : string list;
  models : Model.t list;
  tests : string list;
  cells : cell list;  (** one per pass × model, in sweep order *)
}

val sweep :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?passes:Safeopt_opt.Pass.t list ->
  ?models:Model.t list ->
  ?tests:Litmus.t list ->
  unit ->
  matrix
(** Build the matrix: defaults sweep the whole {!Safeopt_opt.Pipeline}
    registry over {!Model.all} and {!Corpus.all}.  Each pass's rewrite
    is applied once per test (it is model-independent); each changed
    pair is validated per model with {!Safeopt_opt.Validate.Auto} —
    whose verdict equals model-exhaustive enumeration — stopping at the
    first failing test.  Verdicts are corpus-relative: [Safe] is "no
    corpus counterexample", not a proof. *)

val cell : matrix -> pass:string -> model:Model.t -> cell option
val unsafe_cells : matrix -> (cell * unsafe_evidence) list
val verdict_tag : verdict -> string
(** ["safe"], ["unsafe"] or ["inert"]. *)

val pp_verdict : verdict Fmt.t
val pp : matrix Fmt.t
(** The table: one row per pass, one column per model. *)

val pp_witnesses : matrix Fmt.t
(** Every unsafe cell's counterexample, with its replay status. *)
