(** Litmus tests: named programs with expected SC verdicts.

    Each test carries concrete syntax (exercising the parser), an
    expected data-race-freedom verdict, and behaviours that must /
    must not be observable under sequential consistency.  {!check}
    runs the exhaustive interpreter and compares. *)

open Safeopt_exec
open Safeopt_lang

type t = {
  name : string;
  descr : string;
  source : string;  (** concrete syntax *)
  drf : bool;  (** expected: is the program data race free? *)
  can : Behaviour.t list;  (** behaviours that must be observable *)
  cannot : Behaviour.t list;  (** behaviours that must not be observable *)
}

type outcome = {
  test : t;
  program : Ast.program;
  drf_actual : bool;
  behaviours : Behaviour.Set.t;
  failures : string list;  (** empty iff all expectations hold *)
}

val program : t -> Ast.program
(** Parse the test's source. *)

val check :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?model:Safeopt_model.Memory_model.t ->
  t ->
  outcome
(** [stats], when given, accumulates exploration statistics
    ({!Safeopt_exec.Explorer.stats}) across the DRF check and the
    behaviour enumeration.

    [model] (default [Sc]) selects the machine whose behaviours are
    enumerated.  The [can]/[cannot] expectations stay SC expectations
    and the DRF leg stays an SC question, so running a weak model
    deliberately surfaces its relaxations as failures — [sb] under
    [Tso] reports the SC-forbidden [\[0; 0\]] as observable. *)

val check_all :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?model:Safeopt_model.Memory_model.t ->
  t list ->
  outcome list
(** Check a corpus, one test per pool job under [jobs]/[pool]
    ([Safeopt_exec.Par]).  Outcomes come back in input order and are
    identical to [List.map check]; per-job stats records are merged
    into [stats] after the join. *)

val passed : outcome -> bool

val pp_outcome : outcome Fmt.t

val make :
  name:string ->
  descr:string ->
  ?drf:bool ->
  ?can:Behaviour.t list ->
  ?cannot:Behaviour.t list ->
  string ->
  t
(** [make ~name ~descr src]; [drf] defaults to [true]. *)
