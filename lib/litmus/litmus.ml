open Safeopt_exec
open Safeopt_lang
module Tracer = Safeopt_obs.Tracer
module Ev = Safeopt_obs.Event
module Model = Safeopt_model.Memory_model

type t = {
  name : string;
  descr : string;
  source : string;
  drf : bool;
  can : Behaviour.t list;
  cannot : Behaviour.t list;
}

type outcome = {
  test : t;
  program : Ast.program;
  drf_actual : bool;
  behaviours : Behaviour.Set.t;
  failures : string list;
}

let program t = Parser.parse_program t.source

let make ~name ~descr ?(drf = true) ?(can = []) ?(cannot = []) source =
  { name; descr; source; drf; can; cannot }

(* One span per test; [check_all]'s parallel path calls [check] from
   pool workers, so corpus runs get per-test spans on each domain's
   lane without further plumbing. *)
let check ?fuel ?max_states ?stats ?(model = Model.Sc) t =
  let sp =
    if Tracer.enabled () then
      Tracer.span
        ~attrs:
          [ ("test", Ev.Str t.name); ("model", Ev.Str (Model.name model)) ]
        "litmus"
    else Tracer.none
  in
  match
    let p = program t in
    (* Data race freedom is an SC (program-logic) question under every
       model; only the behaviour set is model-relative.  The [can] /
       [cannot] expectations are SC expectations, so checking a weak
       model deliberately surfaces the relaxations: [sb] under TSO
       reports the SC-forbidden [0; 0] as a failure. *)
    let drf_actual = Interp.is_drf ?fuel ?max_states ?stats p in
    let behaviours = Model.behaviours ?fuel ?max_states ?stats model p in
    let failures = ref [] in
    let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
    if drf_actual <> t.drf then
      fail "expected %s but found %s"
        (if t.drf then "data race free" else "racy")
        (if drf_actual then "data race free" else "racy");
    List.iter
      (fun b ->
        if not (Behaviour.Set.mem b behaviours) then
          fail "expected possible behaviour %a is not observable" Behaviour.pp
            b)
      t.can;
    List.iter
      (fun b ->
        if Behaviour.Set.mem b behaviours then
          fail "forbidden behaviour %a is observable" Behaviour.pp b)
      t.cannot;
    {
      test = t;
      program = p;
      drf_actual;
      behaviours;
      failures = List.rev !failures;
    }
  with
  | o ->
      Tracer.close_span
        ~attrs:
          [
            ("passed", Ev.Bool (o.failures = []));
            ("drf", Ev.Bool o.drf_actual);
          ]
        sp;
      o
  | exception e ->
      Tracer.close_span ~attrs:[ ("error", Ev.Str (Printexc.to_string e)) ] sp;
      raise e

(* Corpus runs shard one test per pool job (claimed dynamically, so a
   handful of expensive tests do not serialise the rest); each job
   accumulates into a private stats record, merged after the join. *)
let check_all ?fuel ?max_states ?stats ?jobs ?pool ?model tests =
  Par.dispatch ?jobs ?pool
    ~seq:(fun () -> List.map (check ?fuel ?max_states ?stats ?model) tests)
    ~par:(fun p ->
      let wstats =
        match stats with
        | None -> [||]
        | Some _ ->
            Array.init (List.length tests) (fun _ ->
                Explorer.create_stats ())
      in
      let outcomes =
        Par.Pool.map_list p
          (fun i t ->
            let stats =
              if Array.length wstats = 0 then None else Some wstats.(i)
            in
            check ?fuel ?max_states ?stats ?model t)
          tests
      in
      Option.iter
        (fun s ->
          Array.iter (fun w -> Explorer.merge_stats ~into:s w) wstats;
          s.Explorer.domains <- max s.Explorer.domains (Par.Pool.size p))
        stats;
      outcomes)
    ()

let passed o = o.failures = []

let pp_outcome ppf o =
  if passed o then Fmt.pf ppf "%-18s ok" o.test.name
  else
    Fmt.pf ppf "@[<v>%-18s FAILED@ %a@]" o.test.name
      Fmt.(list ~sep:cut string)
      o.failures
