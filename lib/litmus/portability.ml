open Safeopt_lang
open Safeopt_exec
module Model = Safeopt_model.Memory_model
module Pass = Safeopt_opt.Pass
module Pipeline = Safeopt_opt.Pipeline
module Validate = Safeopt_opt.Validate
module Witness = Safeopt_core.Witness
module Tracer = Safeopt_obs.Tracer
module Ev = Safeopt_obs.Event

type unsafe_evidence = {
  u_test : string;
  u_witness : Ast.program Witness.t;
  u_behaviour : Behaviour.t option;
  u_replayed : bool;
}

type verdict = Safe | Unsafe of unsafe_evidence | Inert

type cell = {
  c_pass : string;
  c_model : Model.t;
  c_verdict : verdict;
  c_checked : int;
}

type matrix = {
  passes : string list;
  models : Model.t list;
  tests : string list;
  cells : cell list;
}

let verdict_tag = function
  | Safe -> "safe"
  | Unsafe _ -> "unsafe"
  | Inert -> "inert"

let cell m ~pass ~model =
  List.find_opt
    (fun c -> String.equal c.c_pass pass && Model.equal c.c_model model)
    m.cells

(* A cell's verdict is corpus-relative: [Safe] means "no corpus test
   exhibits a violation", not a proof.  [Unsafe] carries the first
   failing test, a structured counterexample naming the model, and a
   replay bit: the witness behaviour was re-enumerated from scratch in
   the transformed program (present) and the original (absent) under
   the cell's model, so the matrix never reports a counterexample the
   machine cannot actually reproduce. *)
let check_cell ?fuel ?max_states ?stats ?jobs ?pool ~(pass : Pass.t) ~model
    changed =
  let sp =
    if Tracer.enabled () then
      Tracer.span
        ~attrs:
          [
            ("pass", Ev.Str pass.Pass.name);
            ("model", Ev.Str (Model.name model));
          ]
        "portability.cell"
    else Tracer.none
  in
  let rec go = function
    | [] -> if changed = [] then Inert else Safe
    | (name, p, p') :: rest -> (
        let o =
          Validate.run_validator ?fuel ?max_states ?stats ?jobs ?pool ~model
            Validate.Auto ~original:p ~transformed:p' ()
        in
        if Validate.outcome_ok o then go rest
        else
          match Validate.outcome_witness ~original:p ~transformed:p' o with
          | None -> go rest
          | Some w ->
              let b =
                match w.Witness.evidence with
                | Witness.New_behaviour b -> Some b
                | _ -> None
              in
              let replayed =
                match b with
                | None -> false
                | Some b ->
                    Model.replays ?fuel ?max_states ?jobs ?pool model p' b
                    && not (Model.replays ?fuel ?max_states ?jobs ?pool model p b)
              in
              Unsafe
                {
                  u_test = name;
                  u_witness = w;
                  u_behaviour = b;
                  u_replayed = replayed;
                })
  in
  let v = go changed in
  Tracer.close_span ~attrs:[ ("verdict", Ev.Str (verdict_tag v)) ] sp;
  {
    c_pass = pass.Pass.name;
    c_model = model;
    c_verdict = v;
    c_checked = List.length changed;
  }

let sweep ?fuel ?max_states ?stats ?jobs ?pool ?(passes = Pipeline.registry)
    ?(models = Model.all) ?(tests = Corpus.all) () =
  let sp =
    if Tracer.enabled () then
      Tracer.span
        ~attrs:
          [
            ("passes", Ev.Int (List.length passes));
            ("models", Ev.Int (List.length models));
            ("tests", Ev.Int (List.length tests));
          ]
        "portability.sweep"
    else Tracer.none
  in
  let programs =
    List.map (fun (t : Litmus.t) -> (t.Litmus.name, Litmus.program t)) tests
  in
  let cells =
    List.concat_map
      (fun (pass : Pass.t) ->
        (* The rewrite is model-independent: apply the pass once per
           test and validate only the programs it actually changed,
           under every model. *)
        let changed =
          List.filter_map
            (fun (name, p) ->
              let r = pass.Pass.run p in
              if Ast.equal_program r.Pass.program p then None
              else Some (name, p, r.Pass.program))
            programs
        in
        List.map
          (fun model ->
            check_cell ?fuel ?max_states ?stats ?jobs ?pool ~pass ~model
              changed)
          models)
      passes
  in
  Tracer.close_span
    ~attrs:
      [
        ( "unsafe",
          Ev.Int
            (List.length
               (List.filter
                  (fun c ->
                    match c.c_verdict with Unsafe _ -> true | _ -> false)
                  cells)) );
      ]
    sp;
  {
    passes = List.map (fun (p : Pass.t) -> p.Pass.name) passes;
    models;
    tests = List.map (fun (t : Litmus.t) -> t.Litmus.name) tests;
    cells;
  }

let unsafe_cells m =
  List.filter_map
    (fun c ->
      match c.c_verdict with Unsafe u -> Some (c, u) | _ -> None)
    m.cells

let pp_verdict ppf = function
  | Safe -> Fmt.string ppf "safe"
  | Unsafe u -> Fmt.pf ppf "UNSAFE(%s)" u.u_test
  | Inert -> Fmt.string ppf "inert"

let pp ppf m =
  let width =
    List.fold_left (fun acc p -> max acc (String.length p)) 4 m.passes
  in
  let cell_width =
    4
    + List.fold_left
        (fun acc c ->
          max acc (String.length (Fmt.str "%a" pp_verdict c.c_verdict)))
        4 m.cells
  in
  Fmt.pf ppf "%-*s" width "pass";
  List.iter
    (fun model -> Fmt.pf ppf "  %-*s" cell_width (Model.name model))
    m.models;
  Fmt.pf ppf "@.";
  List.iter
    (fun pass ->
      Fmt.pf ppf "%-*s" width pass;
      List.iter
        (fun model ->
          let s =
            match cell m ~pass ~model with
            | Some c -> Fmt.str "%a" pp_verdict c.c_verdict
            | None -> "-"
          in
          Fmt.pf ppf "  %-*s" cell_width s)
        m.models;
      Fmt.pf ppf "@.")
    m.passes

let pp_witnesses ppf m =
  List.iter
    (fun (c, u) ->
      Fmt.pf ppf "@.%s under %a: unsafe on litmus test %s@." c.c_pass Model.pp
        c.c_model u.u_test;
      (match u.u_behaviour with
      | Some b ->
          Fmt.pf ppf "  new behaviour %a (replayed from scratch: %b)@."
            Behaviour.pp b u.u_replayed
      | None -> ());
      Fmt.pf ppf "  @[<v>%a@]@." (Witness.pp Pp.program) u.u_witness)
    (unsafe_cells m)
