(** The litmus corpus: every program the paper discusses, plus the
    classical shared-memory litmus shapes.

    Paper examples keep their figure/section names; transformed
    variants end in [_opt].  The [can]/[cannot] expectations encode the
    paper's claims about each program under sequential consistency
    (e.g. "Fig. 1's transformed program can output 1 then 0, the
    original cannot"). *)

val intro_racy : Litmus.t
(** The section-1 motivating example (request/response flags). *)

val intro_racy_opt : Litmus.t
(** Its constant-propagated version that can print 1. *)

val intro_volatile : Litmus.t
(** The same with volatile flags — data race free (section 3). *)

val fig1_original : Litmus.t
val fig1_transformed : Litmus.t
val fig2_original : Litmus.t
val fig2_transformed : Litmus.t

val fig3_a : Litmus.t
(** Fig. 3 (a): lock-protected, DRF, cannot print two zeros. *)

val fig3_b : Litmus.t
(** Fig. 3 (b): with introduced irrelevant reads — racy, still cannot
    print two zeros under SC. *)

val fig3_c : Litmus.t
(** Fig. 3 (c): after reusing the introduced reads — prints two zeros. *)

val oota : Litmus.t
(** The section-5 out-of-thin-air candidate (relay of x and y). *)

val sec4_elim_original : Litmus.t
val sec4_elim_transformed : Litmus.t
(** The section-4 elimination example around a lock. *)

val sec5_unelim : Litmus.t
(** The section-5 program used for the Fig. 5 unelimination. *)

val sb : Litmus.t
(** Store buffering: racy; SC forbids r1 = r2 = 0. *)

val mp : Litmus.t
(** Message passing with plain flags: racy. *)

val mp_volatile : Litmus.t
(** Message passing with a volatile flag: DRF, reader sees the data. *)

val mp_locked : Litmus.t
(** Message passing under a lock: DRF. *)

val lb : Litmus.t
(** Load buffering: racy; SC forbids r1 = r2 = 1. *)

val corr : Litmus.t
(** Coherence of read-read: two reads of the same location by one
    thread cannot see values out of order under SC. *)

val iriw : Litmus.t
(** Independent reads of independent writes (4 threads). *)

val dekker_volatile : Litmus.t
(** The core of Dekker's mutual exclusion with volatile flags: DRF and
    at most one thread enters. *)

val wrc : Litmus.t
(** Write-to-read causality chain across three threads. *)

val sb_volatile : Litmus.t
(** Store buffering on volatile locations: DRF; the TSO machine must
    not weaken it. *)

val peterson_once : Litmus.t
(** Test-once Peterson mutual exclusion with volatile flags and turn. *)

val co_ww_rr : Litmus.t
(** Write-write coherence as seen by a two-read observer. *)

val atomic_faa_counter : Litmus.t
(** Two threads fetch-and-add a shared counter: DRF, distinct tickets. *)

val atomic_ticket_lock : Litmus.t
(** Ticket lock built from [faa] tickets and a volatile serving
    counter: DRF, mutual exclusion of the critical sections. *)

val atomic_treiber : Litmus.t
(** Treiber-style push/pop on a volatile top with [cas] retry loops. *)

val atomic_sense_barrier : Litmus.t
(** Sense-reversing barrier ([faa] arrival count, volatile sense):
    post-barrier reads see all pre-barrier writes. *)

val atomic_spin_then_block : Litmus.t
(** Bounded spin on a volatile flag, then blocking on the lock. *)

val atomic_sb_xchg : Litmus.t
(** Store buffering with [xchg] stores: racy, but even TSO cannot show
    0,0 because RMWs flush the store buffer. *)

val all : Litmus.t list
val by_name : string -> Litmus.t option
