(** QCheck generators for traces, interleavings and programs.

    All generators draw from small alphabets (locations [x,y,z,v],
    registers [r1..r4], monitor [m], values [0..3]) so that exhaustive
    analyses of generated artefacts stay cheap and collisions —
    redundant accesses, races, lock contention — are frequent, which is
    what the properties need to exercise the interesting code paths. *)

open Safeopt_trace
open Safeopt_lang

val locations : Location.t list
val volatile_candidate : Location.t
(** A designated location ("v") that program generators mark volatile
    half of the time. *)

val action : Action.t QCheck2.Gen.t
(** An arbitrary action (not start), atomic RMWs included. *)

val trace : Trace.t QCheck2.Gen.t
(** A properly-started, well-locked trace of length <= ~8 for thread 0
    (pending unlocks are closed off at the end). *)

val wildcard_trace : Wildcard.t QCheck2.Gen.t
(** As {!trace}, with some reads generalised to wildcards. *)

val atomic_stmt : Ast.stmt QCheck2.Gen.t
(** An [Ast.Atomic] (cas/faa/xchg) with small operands. *)

val stmt : Ast.stmt QCheck2.Gen.t
(** A loop-free statement (depth <= 2); may contain atomic RMWs. *)

val thread : Ast.thread QCheck2.Gen.t
(** A lock-balanced, loop-free thread of <= ~6 statements. *)

val program : Ast.program QCheck2.Gen.t
(** 1-3 threads; the location "v" is volatile with probability 1/2. *)

val drf_program : Ast.program QCheck2.Gen.t
(** Programs filtered to be data race free (by construction attempts +
    checking; falls back to a lock-protected shape when random search
    fails). *)

val print_trace : Trace.t -> string
val print_program : Ast.program -> string
