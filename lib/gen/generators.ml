open Safeopt_trace
open Safeopt_lang
module G = QCheck2.Gen

let locations = [ "x"; "y"; "z"; "v" ]
let volatile_candidate = "v"
let registers = [ "r1"; "r2"; "r3"; "r4" ]
let monitors = [ "m" ]
let values = [ 0; 1; 2; 3 ]

let location = G.oneofl locations
let register = G.oneofl registers
let monitor = G.oneofl monitors
let value = G.oneofl values

let action =
  G.oneof
    [
      G.map2 (fun l v -> Action.Read (l, v)) location value;
      G.map2 (fun l v -> Action.Write (l, v)) location value;
      G.map (fun m -> Action.Lock m) monitor;
      G.map (fun m -> Action.Unlock m) monitor;
      G.map (fun v -> Action.External v) value;
      G.map3 (fun l r w -> Action.Rmw (l, r, w)) location value value;
    ]

(* Close pending locks so the trace is well-locked; unlocks of un-held
   monitors are dropped during generation. *)
let trace =
  let open G in
  let* n = int_range 0 8 in
  let* actions = list_repeat n action in
  let rec fix depth acc = function
    | [] ->
        let closing =
          Monitor.Map.fold
            (fun m d acc ->
              List.init d (fun _ -> Action.Unlock m) @ acc)
            depth []
        in
        List.rev acc @ closing
    | Action.Unlock m :: rest ->
        let d =
          Option.value ~default:0 (Monitor.Map.find_opt m depth)
        in
        if d > 0 then
          fix (Monitor.Map.add m (d - 1) depth) (Action.Unlock m :: acc) rest
        else fix depth acc rest
    | Action.Lock m :: rest ->
        let d = Option.value ~default:0 (Monitor.Map.find_opt m depth) in
        fix (Monitor.Map.add m (d + 1) depth) (Action.Lock m :: acc) rest
    | a :: rest -> fix depth (a :: acc) rest
  in
  return (Action.Start 0 :: fix Monitor.Map.empty [] actions)

let wildcard_trace =
  let open G in
  let* t = trace in
  let* flips = list_repeat (List.length t) bool in
  return
    (List.map2
       (fun a flip ->
         match a with
         | Action.Read (l, _) when flip -> Wildcard.Wild_read l
         | _ -> Wildcard.Concrete a)
       t flips)

let operand =
  G.oneof [ G.map (fun r -> Ast.Reg r) register; G.map (fun i -> Ast.Nat i) G.(int_range 0 3) ]

let test_gen =
  G.oneof
    [
      G.map2 (fun a b -> Ast.Eq (a, b)) operand operand;
      G.map2 (fun a b -> Ast.Ne (a, b)) operand operand;
    ]

let rmw_op =
  G.oneof
    [
      G.map2 (fun e d -> Ast.Cas (e, d)) operand operand;
      G.map (fun o -> Ast.Faa o) operand;
      G.map (fun o -> Ast.Xchg o) operand;
    ]

(* Atomic statements need no balancing (unlike lock/unlock), so they
   can appear anywhere a plain statement can; shrinking a compound
   statement away never strands one half of an RMW. *)
let atomic_stmt =
  G.map3 (fun r l k -> Ast.Atomic (r, l, k)) register location rmw_op

let simple_stmt =
  G.oneof
    [
      G.map2 (fun l r -> Ast.Store (l, r)) location register;
      G.map2 (fun r l -> Ast.Load (r, l)) register location;
      G.map2 (fun r o -> Ast.Move (r, o)) register operand;
      G.return Ast.Skip;
      G.map (fun r -> Ast.Print r) register;
      atomic_stmt;
    ]

let stmt =
  let open G in
  oneof
    [
      simple_stmt;
      map3 (fun t s1 s2 -> Ast.If (t, s1, s2)) test_gen simple_stmt simple_stmt;
      map2 (fun s1 s2 -> Ast.Block [ s1; s2 ]) simple_stmt simple_stmt;
    ]

(* Lock-balanced threads: insert a critical section with probability
   1/2, plus some free statements. *)
let thread =
  let open G in
  let* pre = list_size (int_range 0 3) stmt in
  let* with_cs = bool in
  let* m = monitor in
  let* cs = list_size (int_range 0 3) stmt in
  let* post = list_size (int_range 0 2) stmt in
  return
    (if with_cs then pre @ (Ast.Lock m :: cs) @ (Ast.Unlock m :: post)
     else pre @ post)

let program =
  let open G in
  let* n = int_range 1 3 in
  let* threads = list_repeat n thread in
  let* vol = bool in
  return
    {
      Ast.threads;
      volatile =
        (if vol then Location.Volatile.of_list [ volatile_candidate ]
         else Location.Volatile.none);
    }

(* A fallback DRF shape: every access under the same lock. *)
let locked_program =
  let open G in
  let* n = int_range 1 2 in
  let* bodies = list_repeat n (list_size (int_range 0 4) simple_stmt) in
  return
    {
      Ast.threads =
        List.map (fun b -> (Ast.Lock "m" :: b) @ [ Ast.Unlock "m" ]) bodies;
      volatile = Location.Volatile.none;
    }

let drf_program =
  let open G in
  let* candidates = list_repeat 8 program in
  let drf p = try Interp.is_drf ~max_states:200_000 p with _ -> false in
  match List.find_opt drf candidates with
  | Some p -> return p
  | None -> locked_program

let print_trace = Trace.to_string
let print_program = Pp.program_to_string
