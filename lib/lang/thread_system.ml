open Safeopt_trace
module System = Safeopt_exec.System

type state = {
  tid : Thread_id.t;
  started : bool;
  fuel : int option;
  config : Semantics.config;
}

let rec stmt_has_loop = function
  | Ast.While _ -> true
  | Ast.Block l -> List.exists stmt_has_loop l
  | Ast.If (_, s1, s2) -> stmt_has_loop s1 || stmt_has_loop s2
  | Ast.Store _ | Ast.Load _ | Ast.Move _ | Ast.Lock _ | Ast.Unlock _
  | Ast.Skip | Ast.Print _ | Ast.Atomic _ ->
      false

let has_loop p = List.exists (List.exists stmt_has_loop) p.Ast.threads

let make ?(fuel = 64) p =
  let fuel = if has_loop p then Some fuel else None in
  let initial =
    List.mapi
      (fun tid thread ->
        { tid; started = false; fuel; config = Semantics.initial thread })
      p.Ast.threads
  in
  let spend st = match st.fuel with Some f -> Some (f - 1) | None -> None in
  let steps st =
    if not st.started then
      [ System.Emit (Action.Start st.tid, { st with started = true }) ]
    else if st.fuel = Some 0 then []
    else
      match Semantics.next st.config with
      | Semantics.Done | Semantics.Diverged -> []
      | Semantics.Write (l, v, c) ->
          [ System.Emit
              (Action.Write (l, v), { st with config = c; fuel = spend st }) ]
      | Semantics.Read (l, k) ->
          [ System.Read
              (l, fun v -> Some { st with config = k v; fuel = spend st }) ]
      | Semantics.Rmw (l, k) ->
          [ System.Rmw
              ( l,
                fun v ->
                  let w, c = k v in
                  [ (w, { st with config = c; fuel = spend st }) ] ) ]
      | Semantics.Lock (m, c) ->
          [ System.Emit
              (Action.Lock m, { st with config = c; fuel = spend st }) ]
      | Semantics.Unlock (m, c) ->
          [ System.Emit
              (Action.Unlock m, { st with config = c; fuel = spend st }) ]
      | Semantics.Output (v, c) ->
          [ System.Emit
              (Action.External v, { st with config = c; fuel = spend st }) ]
  in
  let key st =
    Printf.sprintf "%d:%b:%s:%s" st.tid st.started
      (match st.fuel with None -> "-" | Some f -> string_of_int f)
      (Semantics.config_key st.config)
  in
  { System.initial; steps; key }

let local_actions p =
  (* locations accessed by at most one thread *)
  let tables = List.map Ast.fv_thread p.Ast.threads in
  let shared =
    List.concat_map Location.Set.elements tables
    |> List.sort Location.compare
    |> fun locs ->
    let rec dups = function
      | a :: (b :: _ as rest) ->
          if Location.equal a b then a :: dups rest else dups rest
      | _ -> []
    in
    Location.Set.of_list (dups locs)
  in
  fun a ->
    match Action.location a with
    | Some l -> not (Location.Set.mem l shared)
    | None -> false
