(** Hand-written lexer for the concrete syntax.

    Tokens: identifiers, natural-number literals, keywords ([thread],
    [volatile], [lock], [unlock], [skip], [print], [cas], [faa],
    [xchg], [if], [else], [while]), and the punctuation [:=], [==], [!=], [;], [,], [(], [)],
    [{], [}].  Line comments start with [//]; [/* ... */] block comments
    are supported.  Menhir is deliberately not used: the grammar is
    LL(1) and the substrate stays dependency-free (see DESIGN.md). *)

type token =
  | IDENT of string
  | NAT of int
  | THREAD
  | VOLATILE
  | LOCK
  | UNLOCK
  | SKIP
  | PRINT
  | CAS
  | FAA
  | XCHG
  | IF
  | ELSE
  | WHILE
  | ASSIGN  (** [:=] *)
  | EQ  (** [==] *)
  | NE  (** [!=] *)
  | SEMI
  | COMMA
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | EOF

type pos = { line : int; col : int }

exception Error of pos * string

val pp_token : token Fmt.t

val tokenize : string -> (token * pos) list
(** @raise Error on an unrecognised character or unterminated comment. *)
