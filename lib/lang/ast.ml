open Safeopt_trace

type operand = Reg of Reg.t | Nat of int
type test = Eq of operand * operand | Ne of operand * operand

type rmw =
  | Cas of operand * operand
  | Faa of operand
  | Xchg of operand

type stmt =
  | Store of Location.t * Reg.t
  | Load of Reg.t * Location.t
  | Move of Reg.t * operand
  | Lock of Monitor.t
  | Unlock of Monitor.t
  | Skip
  | Print of Reg.t
  | Atomic of Reg.t * Location.t * rmw
  | Block of stmt list
  | If of test * stmt * stmt
  | While of test * stmt

type thread = stmt list
type program = { threads : thread list; volatile : Location.Volatile.t }

let program ?(volatile = []) threads =
  { threads; volatile = Location.Volatile.of_list volatile }

let equal_operand a b =
  match (a, b) with
  | Reg r, Reg r' -> Reg.equal r r'
  | Nat i, Nat i' -> i = i'
  | (Reg _ | Nat _), _ -> false

let equal_test a b =
  match (a, b) with
  | Eq (x, y), Eq (x', y') | Ne (x, y), Ne (x', y') ->
      equal_operand x x' && equal_operand y y'
  | (Eq _ | Ne _), _ -> false

let equal_rmw a b =
  match (a, b) with
  | Cas (e, d), Cas (e', d') -> equal_operand e e' && equal_operand d d'
  | Faa o, Faa o' | Xchg o, Xchg o' -> equal_operand o o'
  | (Cas _ | Faa _ | Xchg _), _ -> false

let rec equal_stmt a b =
  match (a, b) with
  | Store (l, r), Store (l', r') -> Location.equal l l' && Reg.equal r r'
  | Load (r, l), Load (r', l') -> Reg.equal r r' && Location.equal l l'
  | Move (r, o), Move (r', o') -> Reg.equal r r' && equal_operand o o'
  | Lock m, Lock m' | Unlock m, Unlock m' -> Monitor.equal m m'
  | Skip, Skip -> true
  | Print r, Print r' -> Reg.equal r r'
  | Atomic (r, l, k), Atomic (r', l', k') ->
      Reg.equal r r' && Location.equal l l' && equal_rmw k k'
  | Block l, Block l' -> equal_thread l l'
  | If (t, s1, s2), If (t', s1', s2') ->
      equal_test t t' && equal_stmt s1 s1' && equal_stmt s2 s2'
  | While (t, s), While (t', s') -> equal_test t t' && equal_stmt s s'
  | ( ( Store _ | Load _ | Move _ | Lock _ | Unlock _ | Skip | Print _
      | Atomic _ | Block _ | If _ | While _ ),
      _ ) ->
      false

and equal_thread a b = List.equal equal_stmt a b

let equal_program a b =
  List.equal equal_thread a.threads b.threads
  && Location.Volatile.equal a.volatile b.volatile

let compare_stmt a b = Stdlib.compare a b

let rec fv_stmt = function
  | Store (l, _) | Load (_, l) | Atomic (_, l, _) -> Location.Set.singleton l
  | Move _ | Lock _ | Unlock _ | Skip | Print _ -> Location.Set.empty
  | Block l -> fv_thread l
  | If (_, s1, s2) -> Location.Set.union (fv_stmt s1) (fv_stmt s2)
  | While (_, s) -> fv_stmt s

and fv_thread l =
  List.fold_left
    (fun acc s -> Location.Set.union acc (fv_stmt s))
    Location.Set.empty l

let fv_program p =
  List.fold_left
    (fun acc t -> Location.Set.union acc (fv_thread t))
    Location.Set.empty p.threads

let regs_operand = function Reg r -> Reg.Set.singleton r | Nat _ -> Reg.Set.empty

let regs_test = function
  | Eq (a, b) | Ne (a, b) -> Reg.Set.union (regs_operand a) (regs_operand b)

let regs_rmw = function
  | Cas (e, d) -> Reg.Set.union (regs_operand e) (regs_operand d)
  | Faa o | Xchg o -> regs_operand o

let rec regs_stmt = function
  | Store (_, r) | Load (r, _) | Print r -> Reg.Set.singleton r
  | Move (r, o) -> Reg.Set.add r (regs_operand o)
  | Atomic (r, _, k) -> Reg.Set.add r (regs_rmw k)
  | Lock _ | Unlock _ | Skip -> Reg.Set.empty
  | Block l -> regs_thread l
  | If (t, s1, s2) ->
      Reg.Set.union (regs_test t) (Reg.Set.union (regs_stmt s1) (regs_stmt s2))
  | While (t, s) -> Reg.Set.union (regs_test t) (regs_stmt s)

and regs_thread l =
  List.fold_left (fun acc s -> Reg.Set.union acc (regs_stmt s)) Reg.Set.empty l

let rec sync_free_stmt vol = function
  | Store (l, _) | Load (_, l) -> not (Location.Volatile.mem vol l)
  | Move _ | Skip | Print _ -> true
  (* An RMW synchronises whatever its location's volatility. *)
  | Atomic _ -> false
  | Lock _ | Unlock _ -> false
  | Block l -> sync_free_thread vol l
  | If (_, s1, s2) -> sync_free_stmt vol s1 && sync_free_stmt vol s2
  | While (_, s) -> sync_free_stmt vol s

and sync_free_thread vol l = List.for_all (sync_free_stmt vol) l

let consts_operand = function Nat i -> [ i ] | Reg _ -> []

let consts_rmw = function
  | Cas (e, d) -> consts_operand e @ consts_operand d
  | Faa o | Xchg o -> consts_operand o

let rec constants_stmt = function
  | Move (_, Nat i) -> [ i ]
  (* literals an RMW can write to (or compare against) memory *)
  | Atomic (_, _, k) -> consts_rmw k
  | Move (_, Reg _) | Store _ | Load _ | Lock _ | Unlock _ | Skip | Print _ ->
      []
  | Block l -> constants_thread l
  | If (_, s1, s2) -> constants_stmt s1 @ constants_stmt s2
  | While (_, s) -> constants_stmt s

and constants_thread l = List.concat_map constants_stmt l

let constants_program p =
  List.concat_map constants_thread p.threads |> List.sort_uniq Int.compare

let consts_test = function
  | Eq (a, b) | Ne (a, b) -> consts_operand a @ consts_operand b

let rec all_constants_stmt = function
  | Move (_, o) -> consts_operand o
  | Atomic (_, _, k) -> consts_rmw k
  | Store _ | Load _ | Lock _ | Unlock _ | Skip | Print _ -> []
  | Block l -> List.concat_map all_constants_stmt l
  | If (t, s1, s2) ->
      consts_test t @ all_constants_stmt s1 @ all_constants_stmt s2
  | While (t, s) -> consts_test t @ all_constants_stmt s

let all_constants_program p =
  List.concat_map (List.concat_map all_constants_stmt) p.threads
  |> List.sort_uniq Int.compare

let rec monitors_stmt = function
  | Lock m | Unlock m -> [ m ]
  | Store _ | Load _ | Move _ | Skip | Print _ | Atomic _ -> []
  | Block l -> List.concat_map monitors_stmt l
  | If (_, s1, s2) -> monitors_stmt s1 @ monitors_stmt s2
  | While (_, s) -> monitors_stmt s

let monitors_program p =
  List.concat_map (List.concat_map monitors_stmt) p.threads
  |> List.sort_uniq Monitor.compare

let rec stmt_size = function
  | Store _ | Load _ | Move _ | Lock _ | Unlock _ | Skip | Print _ | Atomic _
    ->
      1
  | Block l -> 1 + thread_size l
  | If (_, s1, s2) -> 1 + stmt_size s1 + stmt_size s2
  | While (_, s) -> 1 + stmt_size s

and thread_size l = List.fold_left (fun n s -> n + stmt_size s) 0 l

let program_size p = List.fold_left (fun n t -> n + thread_size t) 0 p.threads

let fresh_reg used =
  let rec go i =
    let r = Printf.sprintf "rt%d" i in
    if Reg.Set.mem r used then go (i + 1) else r
  in
  go 0
