(** Abstract syntax of the simple concurrent language (paper, Fig. 6).

    {v
    ri ::= r | i
    T  ::= ri == ri | ri != ri
    A  ::= cas(l, ri, ri) | faa(l, ri) | xchg(l, ri)
    S  ::= l := r; | r := l; | r := ri; | lock m; | unlock m; | skip;
         | print r; | r := A; | {L} | if (T) S else S | while (T) S
    L  ::= S | S L
    P  ::= L || L || ... || L
    v}

    A program additionally carries its set of volatile locations
    (section 2: "the set of volatile locations should be part of a
    program").

    The atomic forms [A] extend Fig. 6 with read-modify-write updates:
    [r := cas(l, e, d);] atomically reads [l] into [r] and, if the value
    equals [e], writes [d] (a failed CAS writes the read value back, so
    every atomic statement performs exactly one RMW action);
    [r := faa(l, i);] adds [i]; [r := xchg(l, v);] writes [v].  In all
    three the destination register receives the {e old} value. *)

open Safeopt_trace

type operand = Reg of Reg.t | Nat of int  (** [ri ::= r | i] *)

type test =
  | Eq of operand * operand  (** [ri == ri] *)
  | Ne of operand * operand  (** [ri != ri] *)

type rmw =
  | Cas of operand * operand  (** [cas(l, expected, desired)] *)
  | Faa of operand  (** [faa(l, addend)] *)
  | Xchg of operand  (** [xchg(l, new)] *)

type stmt =
  | Store of Location.t * Reg.t  (** [l := r;] *)
  | Load of Reg.t * Location.t  (** [r := l;] *)
  | Move of Reg.t * operand  (** [r := ri;] *)
  | Lock of Monitor.t  (** [lock m;] *)
  | Unlock of Monitor.t  (** [unlock m;] *)
  | Skip  (** [skip;] *)
  | Print of Reg.t  (** [print r;] *)
  | Atomic of Reg.t * Location.t * rmw
      (** [r := cas(l, e, d);] / [r := faa(l, i);] / [r := xchg(l, v);] —
          one atomic RMW action; [r] receives the value read. *)
  | Block of stmt list  (** [{L}] *)
  | If of test * stmt * stmt  (** [if (T) S else S] *)
  | While of test * stmt  (** [while (T) S] *)

type thread = stmt list  (** [L] *)

type program = { threads : thread list; volatile : Location.Volatile.t }

val program : ?volatile:Location.t list -> thread list -> program

val equal_operand : operand -> operand -> bool
val equal_test : test -> test -> bool
val equal_rmw : rmw -> rmw -> bool
val equal_stmt : stmt -> stmt -> bool
val equal_thread : thread -> thread -> bool
val equal_program : program -> program -> bool
val compare_stmt : stmt -> stmt -> int

(** {1 Static analyses used by the transformation rules} *)

val fv_stmt : stmt -> Location.Set.t
(** [fv(S)]: all shared-memory locations occurring in [S] (Fig. 10's
    side conditions). *)

val fv_thread : thread -> Location.Set.t
val fv_program : program -> Location.Set.t

val regs_stmt : stmt -> Reg.Set.t
(** All register names occurring in [S] (read or written). *)

val regs_thread : thread -> Reg.Set.t

val sync_free_stmt : Location.Volatile.t -> stmt -> bool
(** [S] contains no lock/unlock statements, no atomic RMWs, and no
    accesses to volatile locations (section 6.1). *)

val sync_free_thread : Location.Volatile.t -> thread -> bool

val constants_stmt : stmt -> int list
(** All integer literals [i] occurring in statements of the form
    [r := i] or as atomic RMW operands (the ways the language can place
    a value in memory; used for the out-of-thin-air Theorem 5). *)

val constants_thread : thread -> int list
val constants_program : program -> int list

val all_constants_program : program -> int list
(** Every literal in the program, including those in tests (a superset
    of {!constants_program}; useful for choosing value universes). *)

val monitors_program : program -> Monitor.t list

val stmt_size : stmt -> int
(** Number of AST nodes (for generators and benchmarks). *)

val thread_size : thread -> int
val program_size : program -> int

val fresh_reg : Reg.Set.t -> Reg.t
(** A register name not in the given set (used by desugaring and
    transformations that need temporaries). *)
