open Safeopt_trace

type pos = Lexer.pos

exception Error of pos * string

(* Surface syntax before desugaring: arguments may be registers,
   locations or literals in any position. *)
type sarg = SReg of Reg.t | SLoc of Location.t | SNat of int

type scond = sarg * bool * sarg (* lhs, is_eq, rhs *)

type srmw = SCas of sarg * sarg | SFaa of sarg | SXchg of sarg

type sstmt =
  | SAssign of string * sarg * pos
  | SAtomic of string * Location.t * srmw * pos
  | SLock of Monitor.t
  | SUnlock of Monitor.t
  | SSkip
  | SPrint of sarg
  | SBlock of sstmt list
  | SIf of scond * sstmt * sstmt option
  | SWhile of scond * sstmt

type state = { mutable toks : (Lexer.token * pos) list }

let peek st =
  match st.toks with [] -> (Lexer.EOF, { Lexer.line = 0; col = 0 }) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let err pos fmt = Fmt.kstr (fun s -> raise (Error (pos, s))) fmt

let expect st tok what =
  let t, p = peek st in
  if t = tok then advance st
  else err p "expected %s, found %a" what Lexer.pp_token t

let ident st what =
  match peek st with
  | Lexer.IDENT s, _ ->
      advance st;
      s
  | t, p -> err p "expected %s, found %a" what Lexer.pp_token t

let arg st =
  match peek st with
  | Lexer.IDENT s, _ ->
      advance st;
      if Reg.is_register_name s then SReg s else SLoc s
  | Lexer.NAT i, _ ->
      advance st;
      SNat i
  | t, p -> err p "expected a register, location or literal, found %a" Lexer.pp_token t

let cond st =
  let lhs = arg st in
  let is_eq =
    match peek st with
    | Lexer.EQ, _ ->
        advance st;
        true
    | Lexer.NE, _ ->
        advance st;
        false
    | t, p -> err p "expected '==' or '!=', found %a" Lexer.pp_token t
  in
  let rhs = arg st in
  (lhs, is_eq, rhs)

let rec stmt st : sstmt =
  match peek st with
  | Lexer.LOCK, _ ->
      advance st;
      let m = ident st "a monitor name" in
      expect st Lexer.SEMI "';'";
      SLock m
  | Lexer.UNLOCK, _ ->
      advance st;
      let m = ident st "a monitor name" in
      expect st Lexer.SEMI "';'";
      SUnlock m
  | Lexer.SKIP, _ ->
      advance st;
      expect st Lexer.SEMI "';'";
      SSkip
  | Lexer.PRINT, _ ->
      advance st;
      let a = arg st in
      expect st Lexer.SEMI "';'";
      SPrint a
  | Lexer.LBRACE, _ ->
      advance st;
      let body = stmts st in
      expect st Lexer.RBRACE "'}'";
      SBlock body
  | Lexer.IF, _ ->
      advance st;
      expect st Lexer.LPAREN "'('";
      let c = cond st in
      expect st Lexer.RPAREN "')'";
      let s1 = stmt st in
      let s2 =
        match peek st with
        | Lexer.ELSE, _ ->
            advance st;
            Some (stmt st)
        | _ -> None
      in
      SIf (c, s1, s2)
  | Lexer.WHILE, _ ->
      advance st;
      expect st Lexer.LPAREN "'('";
      let c = cond st in
      expect st Lexer.RPAREN "')'";
      SWhile (c, stmt st)
  | Lexer.IDENT x, p -> (
      advance st;
      expect st Lexer.ASSIGN "':='";
      match peek st with
      | ((Lexer.CAS | Lexer.FAA | Lexer.XCHG) as tok), kp ->
          advance st;
          expect st Lexer.LPAREN "'('";
          let l = ident st "a location name" in
          if Reg.is_register_name l then
            err kp
              "atomic update of register '%s': the first argument must be a \
               shared location"
              l;
          expect st Lexer.COMMA "','";
          let op =
            match tok with
            | Lexer.CAS ->
                let e = arg st in
                expect st Lexer.COMMA "','";
                let d = arg st in
                SCas (e, d)
            | Lexer.FAA -> SFaa (arg st)
            | _ -> SXchg (arg st)
          in
          expect st Lexer.RPAREN "')'";
          expect st Lexer.SEMI "';'";
          SAtomic (x, l, op, p)
      | _ ->
          let rhs = arg st in
          expect st Lexer.SEMI "';'";
          SAssign (x, rhs, p))
  | t, p -> err p "expected a statement, found %a" Lexer.pp_token t

and stmts st : sstmt list =
  match peek st with
  | (Lexer.RBRACE | Lexer.EOF), _ -> []
  | _ ->
      let s = stmt st in
      s :: stmts st

(* --- Desugaring to the Fig. 6 core --- *)

type fresh = { mutable next : int; used : Reg.Set.t }

let fresh_reg f =
  let rec go () =
    let r = Printf.sprintf "rt%d" f.next in
    f.next <- f.next + 1;
    if Reg.Set.mem r f.used then go () else r
  in
  go ()

let rec used_regs_sstmt = function
  | SAssign (x, a, _) ->
      let from_arg = function SReg r -> Reg.Set.singleton r | _ -> Reg.Set.empty in
      Reg.Set.union
        (if Reg.is_register_name x then Reg.Set.singleton x else Reg.Set.empty)
        (from_arg a)
  | SAtomic (x, _, op, _) ->
      let from_arg = function SReg r -> Reg.Set.singleton r | _ -> Reg.Set.empty in
      let args =
        match op with SCas (e, d) -> [ e; d ] | SFaa o | SXchg o -> [ o ]
      in
      List.fold_left
        (fun acc a -> Reg.Set.union acc (from_arg a))
        (if Reg.is_register_name x then Reg.Set.singleton x else Reg.Set.empty)
        args
  | SLock _ | SUnlock _ | SSkip -> Reg.Set.empty
  | SPrint (SReg r) -> Reg.Set.singleton r
  | SPrint _ -> Reg.Set.empty
  | SBlock l -> used_regs_sstmts l
  | SIf ((a, _, b), s1, s2) ->
      let from_arg = function SReg r -> Reg.Set.singleton r | _ -> Reg.Set.empty in
      Reg.Set.union (from_arg a)
        (Reg.Set.union (from_arg b)
           (Reg.Set.union (used_regs_sstmt s1)
              (match s2 with Some s -> used_regs_sstmt s | None -> Reg.Set.empty)))
  | SWhile ((a, _, b), s) ->
      let from_arg = function SReg r -> Reg.Set.singleton r | _ -> Reg.Set.empty in
      Reg.Set.union (from_arg a) (Reg.Set.union (from_arg b) (used_regs_sstmt s))

and used_regs_sstmts l =
  List.fold_left (fun acc s -> Reg.Set.union acc (used_regs_sstmt s)) Reg.Set.empty l

(* Desugar an argument to a core operand, emitting prefix statements for
   location arguments (hoisted loads). *)
let desugar_arg f a : Ast.stmt list * Ast.operand =
  match a with
  | SReg r -> ([], Ast.Reg r)
  | SNat i -> ([], Ast.Nat i)
  | SLoc l ->
      let r = fresh_reg f in
      ([ Ast.Load (r, l) ], Ast.Reg r)

let desugar_cond f (a, is_eq, b) : Ast.stmt list * Ast.test =
  let pa, oa = desugar_arg f a in
  let pb, ob = desugar_arg f b in
  (pa @ pb, if is_eq then Ast.Eq (oa, ob) else Ast.Ne (oa, ob))

let rec desugar_stmt f (s : sstmt) : Ast.stmt list =
  match s with
  | SSkip -> [ Ast.Skip ]
  | SLock m -> [ Ast.Lock m ]
  | SUnlock m -> [ Ast.Unlock m ]
  | SPrint a -> (
      match a with
      | SReg r -> [ Ast.Print r ]
      | SNat i ->
          let r = fresh_reg f in
          [ Ast.Move (r, Ast.Nat i); Ast.Print r ]
      | SLoc l ->
          let r = fresh_reg f in
          [ Ast.Load (r, l); Ast.Print r ])
  | SAssign (x, rhs, pos) ->
      if Reg.is_register_name x then
        match rhs with
        | SReg r' -> [ Ast.Move (x, Ast.Reg r') ]
        | SNat i -> [ Ast.Move (x, Ast.Nat i) ]
        | SLoc l -> [ Ast.Load (x, l) ]
      else begin
        match rhs with
        | SReg r -> [ Ast.Store (x, r) ]
        | SNat i ->
            let r = fresh_reg f in
            [ Ast.Move (r, Ast.Nat i); Ast.Store (x, r) ]
        | SLoc l ->
            if Location.equal l x then
              err pos "self-assignment '%s := %s' has no core form" x l
            else
              let r = fresh_reg f in
              [ Ast.Load (r, l); Ast.Store (x, r) ]
      end
  | SAtomic (x, l, op, pos) ->
      if not (Reg.is_register_name x) then
        err pos
          "atomic result must go to a register, '%s' names a location" x;
      (* Location operands are hoisted to plain loads {e before} the
         atomic statement; only the update itself is one RMW action. *)
      let core =
        match op with
        | SCas (e, d) ->
            let pe, oe = desugar_arg f e in
            let pd, od = desugar_arg f d in
            pe @ pd @ [ Ast.Atomic (x, l, Ast.Cas (oe, od)) ]
        | SFaa o ->
            let p, oo = desugar_arg f o in
            p @ [ Ast.Atomic (x, l, Ast.Faa oo) ]
        | SXchg o ->
            let p, oo = desugar_arg f o in
            p @ [ Ast.Atomic (x, l, Ast.Xchg oo) ]
      in
      core
  | SBlock l -> [ Ast.Block (desugar_stmts f l) ]
  | SIf (c, s1, s2) ->
      let pre, t = desugar_cond f c in
      let d1 = block_of f s1 in
      let d2 =
        match s2 with Some s -> block_of f s | None -> Ast.Skip
      in
      pre @ [ Ast.If (t, d1, d2) ]
  | SWhile (((a, _, b) as c), s) ->
      (* A location in a loop condition would need the load re-executed
         on every iteration; hoisting it once would change the memory
         accesses, so we reject it rather than desugar incorrectly. *)
      let check = function
        | SLoc l ->
            err { Lexer.line = 0; col = 0 }
              "location '%s' in a while condition: load it into a register \
               inside the loop explicitly"
              l
        | _ -> ()
      in
      check a;
      check b;
      let _, t = desugar_cond f c in
      [ Ast.While (t, block_of f s) ]

and block_of f s =
  match desugar_stmt f s with
  | [ single ] -> single
  | many -> Ast.Block many

and desugar_stmts f l = List.concat_map (desugar_stmt f) l

let desugar_thread (l : sstmt list) : Ast.thread =
  let f = { next = 0; used = used_regs_sstmts l } in
  desugar_stmts f l

(* --- Top level --- *)

let parse_volatiles st =
  let rec go acc =
    match peek st with
    | Lexer.VOLATILE, _ ->
        advance st;
        let rec names acc =
          let l = ident st "a location name" in
          let acc = l :: acc in
          match peek st with
          | Lexer.COMMA, _ ->
              advance st;
              names acc
          | _ ->
              expect st Lexer.SEMI "';'";
              acc
        in
        go (names acc)
    | _ -> acc
  in
  List.rev (go [])

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let volatile = parse_volatiles st in
  let rec threads acc =
    match peek st with
    | Lexer.THREAD, _ ->
        advance st;
        expect st Lexer.LBRACE "'{'";
        let body = stmts st in
        expect st Lexer.RBRACE "'}'";
        threads (desugar_thread body :: acc)
    | Lexer.EOF, _ -> List.rev acc
    | t, p -> err p "expected 'thread', found %a" Lexer.pp_token t
  in
  let threads = threads [] in
  { Ast.threads; volatile = Location.Volatile.of_list volatile }

let parse_thread src =
  let st = { toks = Lexer.tokenize src } in
  let body = stmts st in
  expect st Lexer.EOF "end of input";
  desugar_thread body
