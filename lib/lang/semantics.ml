open Safeopt_trace

type config = {
  mons : int Monitor.Map.t;
  regs : Value.t Reg.Map.t;
  code : Ast.stmt list;
}

let initial thread =
  { mons = Monitor.Map.empty; regs = Reg.Map.empty; code = thread }

let config_key c =
  let b = Buffer.create 64 in
  Monitor.Map.iter
    (fun m d -> if d <> 0 then Buffer.add_string b (Printf.sprintf "%s:%d;" m d))
    c.mons;
  Buffer.add_char b '|';
  Reg.Map.iter
    (fun r v -> if v <> 0 then Buffer.add_string b (Printf.sprintf "%s:%d;" r v))
    c.regs;
  Buffer.add_char b '|';
  Buffer.add_string b (Pp.thread_compact c.code);
  Buffer.contents b

let value_of c = function
  | Ast.Nat i -> i
  | Ast.Reg r -> Option.value ~default:Value.default (Reg.Map.find_opt r c.regs)

let eval_test c = function
  | Ast.Eq (a, b) -> Value.equal (value_of c a) (value_of c b)
  | Ast.Ne (a, b) -> not (Value.equal (value_of c a) (value_of c b))

type outcome =
  | Done
  | Diverged
  | Write of Location.t * Value.t * config
  | Read of Location.t * (Value.t -> config)
  | Rmw of Location.t * (Value.t -> Value.t * config)
  | Lock of Monitor.t * config
  | Unlock of Monitor.t * config
  | Output of Value.t * config

let mon_depth c m = Option.value ~default:0 (Monitor.Map.find_opt m c.mons)

let rec next ?(tau_fuel = 100_000) c =
  if tau_fuel <= 0 then Diverged
  else
    match c.code with
    | [] -> Done
    | s :: k -> (
        let tau code = next ~tau_fuel:(tau_fuel - 1) { c with code } in
        match s with
        | Ast.Skip -> tau k
        | Ast.Block l -> tau (l @ k)
        | Ast.Move (r, o) ->
            next ~tau_fuel:(tau_fuel - 1)
              { c with regs = Reg.Map.add r (value_of c o) c.regs; code = k }
        | Ast.If (t, s1, s2) -> tau ((if eval_test c t then s1 else s2) :: k)
        | Ast.While (t, s) ->
            if eval_test c t then tau (s :: Ast.While (t, s) :: k) else tau k
        | Ast.Store (l, r) ->
            Write (l, value_of c (Ast.Reg r), { c with code = k })
        | Ast.Load (r, l) ->
            Read
              (l, fun v -> { c with regs = Reg.Map.add r v c.regs; code = k })
        | Ast.Lock m ->
            Lock
              ( m,
                {
                  c with
                  mons = Monitor.Map.add m (mon_depth c m + 1) c.mons;
                  code = k;
                } )
        | Ast.Unlock m ->
            let d = mon_depth c m in
            if d > 0 then
              Unlock
                (m, { c with mons = Monitor.Map.add m (d - 1) c.mons; code = k })
            else tau k (* E-ULK: unlock of an un-held monitor is silent *)
        | Ast.Print r -> Output (value_of c (Ast.Reg r), { c with code = k })
        | Ast.Atomic (r, l, op) ->
            (* One indivisible step: the scheduler supplies the current
               value; the thread answers with the value to write and the
               continuation.  A failed CAS writes the read value back, so
               every atomic statement performs exactly one RMW action.
               The destination register receives the old value. *)
            Rmw
              ( l,
                fun v ->
                  let w =
                    match op with
                    | Ast.Cas (e, d) ->
                        if Value.equal v (value_of c e) then value_of c d
                        else v
                    | Ast.Faa o -> v + value_of c o
                    | Ast.Xchg o -> value_of c o
                  in
                  (w, { c with regs = Reg.Map.add r v c.regs; code = k }) ))

let issues ?tau_fuel c t =
  let rec go c = function
    | [] -> true
    | a :: rest -> (
        match (next ?tau_fuel c, a) with
        | Write (l, v, c'), Action.Write (l', v') ->
            Location.equal l l' && Value.equal v v' && go c' rest
        | Read (l, k), Action.Read (l', v) ->
            Location.equal l l' && go (k v) rest
        | Rmw (l, k), Action.Rmw (l', r, w) ->
            Location.equal l l'
            &&
            let w', c' = k r in
            Value.equal w w' && go c' rest
        | Lock (m, c'), Action.Lock m' -> Monitor.equal m m' && go c' rest
        | Unlock (m, c'), Action.Unlock m' -> Monitor.equal m m' && go c' rest
        | Output (v, c'), Action.External v' -> Value.equal v v' && go c' rest
        | ( ( Done | Diverged | Write _ | Read _ | Rmw _ | Lock _ | Unlock _
            | Output _ ),
            _ ) ->
            false)
  in
  go c t

let run_sequential ?tau_fuel ?(max_actions = 100_000) c ~read ~write =
  let rec go c n acc =
    if n >= max_actions then List.rev acc
    else
      match next ?tau_fuel c with
      | Done | Diverged -> List.rev acc
      | Write (l, v, c') ->
          write l v;
          go c' (n + 1) (Action.Write (l, v) :: acc)
      | Read (l, k) ->
          let v = read l in
          go (k v) (n + 1) (Action.Read (l, v) :: acc)
      | Rmw (l, k) ->
          let v = read l in
          let w, c' = k v in
          write l w;
          go c' (n + 1) (Action.Rmw (l, v, w) :: acc)
      | Lock (m, c') -> go c' (n + 1) (Action.Lock m :: acc)
      | Unlock (m, c') -> go c' (n + 1) (Action.Unlock m :: acc)
      | Output (v, c') -> go c' (n + 1) (Action.External v :: acc)
  in
  go c 0 []
