(** Whole-program sequentially consistent analysis.

    Thin wrappers tying {!Thread_system} to the unified exploration
    engine in [Safeopt_exec.Explorer]: behaviours, data-race freedom,
    executions — the paper's section-3 notions computed for concrete
    programs.  Every analysis accepts an optional [stats] sink
    ({!Safeopt_exec.Explorer.stats}) that accumulates states visited,
    memo hits, POR cuts, peak frontier depth and wall time. *)

open Safeopt_trace
open Safeopt_exec

val behaviours :
  ?fuel:int ->
  ?max_states:int ->
  ?por:bool ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program ->
  Behaviour.Set.t
(** All observable behaviours of all SC executions (prefix-closed).
    [por] (default false) enables the partial-order reduction seeded
    with {!Thread_system.local_actions}; the result is unchanged, the
    exploration usually smaller.  [jobs]/[pool] run the exploration
    across domains ([Safeopt_exec.Par]); the behaviour set is identical
    to the sequential one. *)

val is_drf :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program ->
  bool
(** No execution has two adjacent conflicting accesses from different
    threads.  The verdict is deterministic under [jobs]/[pool]. *)

val find_race :
  ?fuel:int ->
  ?max_states:int ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program ->
  Interleaving.t option
(** A witness racy execution, if any.  Under [jobs]/[pool] the
    existence verdict matches the sequential search; the particular
    witness may differ. *)

val maximal_executions :
  ?fuel:int -> ?max_steps:int -> ?stats:Explorer.stats -> Ast.program ->
  Interleaving.t list

val maximal_executions_seq :
  ?fuel:int -> ?max_steps:int -> ?stats:Explorer.stats -> Ast.program ->
  Interleaving.t Seq.t
(** Lazy stream of maximal executions; consumers searching for a
    witness can stop at the first hit without materialising the rest. *)

val count_states :
  ?fuel:int ->
  ?max_states:int ->
  ?por:bool ->
  ?stats:Explorer.stats ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ast.program ->
  int

val find_deadlock :
  ?fuel:int -> ?max_states:int -> ?stats:Explorer.stats -> Ast.program ->
  Interleaving.t option
(** A witness execution reaching a state where every thread is blocked
    on a lock (and at least one is not finished). *)

val sample_behaviours :
  ?fuel:int ->
  ?max_actions:int ->
  seed:int ->
  runs:int ->
  ?stats:Explorer.stats ->
  Ast.program ->
  Behaviour.Set.t
(** Randomised-scheduler under-approximation of {!behaviours}, for
    programs too large to enumerate exhaustively. *)

val can_output : ?fuel:int -> ?max_states:int -> Ast.program -> Value.t -> bool
(** Does any behaviour contain the given value? *)

val behaviour_strings : Behaviour.Set.t -> string list
(** Human-readable maximal behaviours, e.g. ["print 1; print 0"]. *)
