(** Recursive-descent parser for the concrete syntax.

    {v
    program  ::= ("volatile" ident ("," ident)* ";")*  thread+
    thread   ::= "thread" "{" stmt* "}"
    stmt     ::= ident ":=" arg ";"
               | ident ":=" "cas" "(" ident "," arg "," arg ")" ";"
               | ident ":=" "faa" "(" ident "," arg ")" ";"
               | ident ":=" "xchg" "(" ident "," arg ")" ";"
               | "lock" ident ";" | "unlock" ident ";"
               | "skip" ";" | "print" arg ";"
               | "{" stmt* "}"
               | "if" "(" cond ")" stmt ("else" stmt)?
               | "while" "(" cond ")" stmt
    arg      ::= ident | nat
    cond     ::= arg ("==" | "!=") arg
    v}

    Identifiers beginning with ['r'] are registers; all others in
    assignment/argument positions are shared locations (the paper's
    section 2 convention).  Identifiers after [lock]/[unlock] are
    monitors.

    {b Desugaring.}  The paper's examples freely write [x := 1],
    [print x] or [if (x == 1)], which are not in the Fig. 6 core
    grammar.  The parser accepts them and desugars to the core with
    fresh temporaries ([rt0], [rt1], ...):
    [x := 1] becomes [rt0 := 1; x := rt0], [print x] becomes
    [rt0 := x; print rt0], and a location operand in a condition is
    hoisted to a load before the conditional.  A missing [else] is
    filled with [skip;].  In the atomic forms the first parenthesised
    argument must be a location and the destination a register;
    location operands are hoisted to loads before the atomic statement,
    so the update itself is always a single RMW action.  The desugaring makes the intended memory
    accesses of the informal examples explicit; figure reproductions
    that depend on exact traces write core syntax directly. *)

type pos = Lexer.pos

exception Error of pos * string

val parse_program : string -> Ast.program
(** @raise Error on syntax errors (also re-raises {!Lexer.Error}). *)

val parse_thread : string -> Ast.thread
(** Parse a bare statement list (no [thread {}] wrapper). *)
