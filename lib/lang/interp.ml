open Safeopt_trace
open Safeopt_exec

let behaviours ?fuel ?max_states ?(por = false) ?stats ?jobs ?pool p =
  let local =
    if por then Some (Thread_system.local_actions p) else None
  in
  Explorer.behaviours ?max_states ?local ?stats ?jobs ?pool
    (Thread_system.make ?fuel p)

let find_race ?fuel ?max_states ?stats ?jobs ?pool p =
  Explorer.find_adjacent_race ?max_states ?stats ?jobs ?pool p.Ast.volatile
    (Thread_system.make ?fuel p)

let is_drf ?fuel ?max_states ?stats ?jobs ?pool p =
  Option.is_none (find_race ?fuel ?max_states ?stats ?jobs ?pool p)

let maximal_executions ?fuel ?max_steps ?stats p =
  Explorer.maximal_executions ?max_steps ?stats (Thread_system.make ?fuel p)

let maximal_executions_seq ?fuel ?max_steps ?stats p =
  Explorer.maximal_executions_seq ?max_steps ?stats
    (Thread_system.make ?fuel p)

let count_states ?fuel ?max_states ?(por = false) ?stats ?jobs ?pool p =
  let local =
    if por then Some (Thread_system.local_actions p) else None
  in
  Explorer.count_states ?max_states ?local ?stats ?jobs ?pool
    (Thread_system.make ?fuel p)

let find_deadlock ?fuel ?max_states ?stats p =
  Explorer.find_deadlock ?max_states ?stats (Thread_system.make ?fuel p)

let sample_behaviours ?fuel ?max_actions ~seed ~runs ?stats p =
  Explorer.sample_behaviours ?max_actions ~seed ~runs ?stats
    (Thread_system.make ?fuel p)

let can_output ?fuel ?max_states p v =
  Behaviour.Set.exists
    (fun b -> List.exists (Value.equal v) b)
    (behaviours ?fuel ?max_states p)

let behaviour_strings bs =
  Behaviour.Set.maximal bs
  |> List.map (fun b ->
         match b with
         | [] -> "(no output)"
         | vs ->
             String.concat "; "
               (List.map (fun v -> "print " ^ Value.to_string v) vs))
