(** The traceset denotation [[P]] of a program (paper, section 6).

    [[P]] is the set of traces [S(i) :: t] where thread [i]'s initial
    configuration may issue [t], plus the empty trace; it is infinite
    whenever the program reads (a read may return any value).  Two
    views are provided:

    - a {e membership oracle} ({!issues_program}, {!belongs_to}) by
      deterministic replay against the small-step semantics — exact, no
      value enumeration for concrete traces;
    - an {e explicit enumeration} ({!traceset}) over a finite value
      universe, bounded in length, for the semantic-transformation
      checkers that need to search a traceset.

    The default universe ({!universe}) is the program's literals, 0 and
    two fresh values; for this equality-only language two fresh values
    distinguish everything a larger universe could (DESIGN.md,
    "small-model argument"). *)

open Safeopt_trace

val universe : Ast.program -> Value.t list
(** Literals of [P] (including test operands), 0, and two fresh
    values. *)

val joint_universe : Ast.program list -> Value.t list
(** A universe adequate for several programs at once (union of
    literals, 0, two values fresh for all of them) — use when comparing
    a program against its transformation. *)

val issues_program : ?tau_fuel:int -> Ast.program -> Trace.t -> bool
(** Is the trace in [[P]]? *)

val belongs_to : ?tau_fuel:int -> universe:Value.t list -> Ast.program -> Wildcard.t -> bool
(** Do all instances of the wildcard trace over [universe] lie in
    [[P]]? *)

val traceset :
  ?tau_fuel:int -> universe:Value.t list -> max_len:int -> Ast.program -> Traceset.t
(** All traces of [[P]] of length at most [max_len] whose read values
    are drawn from [universe].  Prefix-closed by construction. *)

val thread_traces :
  ?tau_fuel:int ->
  ?max_traces:int ->
  universe:Value.t list ->
  max_len:int ->
  tid:Thread_id.t ->
  Ast.thread ->
  Traceset.t * bool
(** The single-thread slice of the denotation: all traces
    [S(tid) :: t] of length at most [max_len] the thread may issue
    (reads drawn from [universe]), prefix-closed.  The boolean is a
    {e completeness} certificate: [true] means every enumerated maximal
    trace ends because the thread finished (or silently diverged), so
    the traceset is the thread's entire denotation over [universe] —
    the precondition for the thread-local refinement checker to trust a
    positive verdict.  It is [false] when some trace hit [max_len] with
    an action still issuable, or when more than [max_traces] traces
    (default unbounded) were generated.  [traceset] is the union of
    [thread_traces] over all threads. *)
