open Safeopt_trace

let operand ppf = function
  | Ast.Reg r -> Reg.pp ppf r
  | Ast.Nat i -> Fmt.int ppf i

let test ppf = function
  | Ast.Eq (a, b) -> Fmt.pf ppf "%a == %a" operand a operand b
  | Ast.Ne (a, b) -> Fmt.pf ppf "%a != %a" operand a operand b

let rec stmt ppf = function
  | Ast.Store (l, r) -> Fmt.pf ppf "%a := %a;" Location.pp l Reg.pp r
  | Ast.Load (r, l) -> Fmt.pf ppf "%a := %a;" Reg.pp r Location.pp l
  | Ast.Move (r, o) -> Fmt.pf ppf "%a := %a;" Reg.pp r operand o
  | Ast.Lock m -> Fmt.pf ppf "lock %a;" Monitor.pp m
  | Ast.Unlock m -> Fmt.pf ppf "unlock %a;" Monitor.pp m
  | Ast.Skip -> Fmt.pf ppf "skip;"
  | Ast.Print r -> Fmt.pf ppf "print %a;" Reg.pp r
  | Ast.Atomic (r, l, Ast.Cas (e, d)) ->
      Fmt.pf ppf "%a := cas(%a, %a, %a);" Reg.pp r Location.pp l operand e
        operand d
  | Ast.Atomic (r, l, Ast.Faa o) ->
      Fmt.pf ppf "%a := faa(%a, %a);" Reg.pp r Location.pp l operand o
  | Ast.Atomic (r, l, Ast.Xchg o) ->
      Fmt.pf ppf "%a := xchg(%a, %a);" Reg.pp r Location.pp l operand o
  | Ast.Block l -> Fmt.pf ppf "{@;<1 2>@[<v>%a@]@ }" thread l
  | Ast.If (t, s1, s2) ->
      Fmt.pf ppf "@[<v>if (%a)@;<1 2>%a@ else@;<1 2>%a@]" test t stmt s1 stmt
        s2
  | Ast.While (t, s) -> Fmt.pf ppf "@[<v>while (%a)@;<1 2>%a@]" test t stmt s

and thread ppf l = Fmt.(list ~sep:cut stmt) ppf l

let program ppf (p : Ast.program) =
  Fmt.pf ppf "@[<v>";
  if not (Location.Volatile.is_empty p.volatile) then
    Fmt.pf ppf "volatile %a;@ "
      Fmt.(list ~sep:(any ", ") Location.pp)
      (Location.Volatile.to_list p.volatile);
  Fmt.(list ~sep:cut)
    (fun ppf t -> Fmt.pf ppf "@[<v>thread {@;<1 2>@[<v>%a@]@ }@]" thread t)
    ppf p.threads;
  Fmt.pf ppf "@]"

let stmt_to_string s = Fmt.str "@[<v>%a@]" stmt s
let thread_to_string t = Fmt.str "@[<v>%a@]" thread t
let program_to_string p = Fmt.str "%a" program p

let compact s =
  String.concat " "
    (String.split_on_char '\n' s |> List.map String.trim
    |> List.filter (fun x -> x <> ""))

let stmt_compact s = compact (stmt_to_string s)
let thread_compact t = compact (thread_to_string t)
