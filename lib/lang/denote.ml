open Safeopt_trace

let universe_of_constants consts =
  let consts = List.sort_uniq Int.compare (0 :: consts) in
  let mx = List.fold_left max 0 consts in
  consts @ [ mx + 1; mx + 2 ]

let universe p = universe_of_constants (Ast.all_constants_program p)

let joint_universe ps =
  universe_of_constants (List.concat_map Ast.all_constants_program ps)

let issues_program ?tau_fuel p t =
  match t with
  | [] -> true
  | Action.Start i :: rest -> (
      match List.nth_opt p.Ast.threads i with
      | Some thread -> Semantics.issues ?tau_fuel (Semantics.initial thread) rest
      | None -> false)
  | _ -> false

let belongs_to ?tau_fuel ~universe p w =
  Seq.for_all (issues_program ?tau_fuel p) (Wildcard.instances ~universe w)

let thread_traces ?tau_fuel ?(max_traces = max_int) ~universe ~max_len ~tid
    thread =
  (* Enumerate one thread's traces by DFS over [Semantics.next], reads
     drawn from the universe.  All prefixes are collected.  The flag
     reports whether the enumeration is the thread's {e entire} bounded
     denotation: it turns false exactly when a trace reaches [max_len]
     with the thread still able to issue an action, or when the trace
     budget [max_traces] is exhausted. *)
  let acc = ref Traceset.empty in
  let count = ref 0 in
  let complete = ref true in
  let exception Budget in
  let add t =
    incr count;
    if !count > max_traces then begin
      complete := false;
      raise Budget
    end;
    acc := Traceset.add t !acc
  in
  let rec go c rev_trace len =
    add (List.rev rev_trace);
    match Semantics.next ?tau_fuel c with
    | Semantics.Done | Semantics.Diverged -> ()
    | _ when len >= max_len -> complete := false
    | Semantics.Write (l, v, c') ->
        go c' (Action.Write (l, v) :: rev_trace) (len + 1)
    | Semantics.Read (l, k) ->
        List.iter
          (fun v -> go (k v) (Action.Read (l, v) :: rev_trace) (len + 1))
          universe
    | Semantics.Rmw (l, k) ->
        (* The written value [w] is a function of the read value, so it
           may fall outside the universe (e.g. faa); the denotation is
           still read-complete over the universe. *)
        List.iter
          (fun v ->
            let w, c' = k v in
            go c' (Action.Rmw (l, v, w) :: rev_trace) (len + 1))
          universe
    | Semantics.Lock (m, c') -> go c' (Action.Lock m :: rev_trace) (len + 1)
    | Semantics.Unlock (m, c') -> go c' (Action.Unlock m :: rev_trace) (len + 1)
    | Semantics.Output (v, c') -> go c' (Action.External v :: rev_trace) (len + 1)
  in
  (try go (Semantics.initial thread) [ Action.Start tid ] 1
   with Budget -> ());
  (!acc, !complete)

let traceset ?tau_fuel ~universe ~max_len p =
  let acc = ref Traceset.empty in
  List.iteri
    (fun tid thread ->
      let ts, _ = thread_traces ?tau_fuel ~universe ~max_len ~tid thread in
      acc := Traceset.union ts !acc)
    p.Ast.threads;
  !acc
