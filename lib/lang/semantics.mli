(** Labelled small-step semantics (paper, Figs. 7-8).

    A thread-local configuration is [(sigma, s, C)]: the monitor state
    [sigma] (nesting level of each lock, used only to make an unlock of
    an un-held monitor silent, rule E-ULK), the register state [s]
    (all registers initially 0), and a code fragment.  We represent the
    code fragment as a statement list (the continuation); the
    structural rules SEQ/BLOCK/EV-SEQ/EV-BLOCK become list operations,
    which preserves the issued traces exactly.

    Silent ([tau]) steps are deterministic, so after [tau]-normalising
    a configuration either the thread is done, or it diverges silently,
    or it offers exactly one kind of visible action ({!outcome}).  All
    thread-level nondeterminism in the language comes from read values
    and scheduling. *)

open Safeopt_trace

type config = {
  mons : int Monitor.Map.t;  (** [sigma]: lock nesting per monitor *)
  regs : Value.t Reg.Map.t;  (** [s]: registers, default 0 *)
  code : Ast.stmt list;  (** continuation *)
}

val initial : Ast.thread -> config
(** [sigma_0] maps all monitors to 0 and [s_0] all registers to 0. *)

val config_key : config -> string
(** Canonical serialisation (two configs with equal key have equal
    futures); used for memoisation. *)

val value_of : config -> Ast.operand -> Value.t
(** [Val(s, ri)] of Fig. 7. *)

val eval_test : config -> Ast.test -> bool

type outcome =
  | Done  (** no code left *)
  | Diverged  (** [tau]-fuel exhausted: silent loop *)
  | Write of Location.t * Value.t * config
  | Read of Location.t * (Value.t -> config)
  | Rmw of Location.t * (Value.t -> Value.t * config)
      (** an atomic RMW of the location: given the current value, the
          value written and the continuation configuration (the
          destination register holds the value read) *)
  | Lock of Monitor.t * config
  | Unlock of Monitor.t * config
  | Output of Value.t * config

val next : ?tau_fuel:int -> config -> outcome
(** [tau]-normalise and report the unique next visible step.
    [tau_fuel] (default 100_000) bounds silent steps between actions. *)

val issues : ?tau_fuel:int -> config -> Trace.t -> bool
(** [(sigma,s,C) ~> t]: can the configuration issue exactly this
    sequence of actions (Fig. 8)?  Deterministic replay via {!next}. *)

val run_sequential : ?tau_fuel:int -> ?max_actions:int -> config
  -> read:(Location.t -> Value.t) -> write:(Location.t -> Value.t -> unit)
  -> Trace.t
(** Run a single thread to completion against a memory oracle,
    returning the issued trace (used by the quickstart example and the
    TSO machine's per-thread replay). *)
