type token =
  | IDENT of string
  | NAT of int
  | THREAD
  | VOLATILE
  | LOCK
  | UNLOCK
  | SKIP
  | PRINT
  | CAS
  | FAA
  | XCHG
  | IF
  | ELSE
  | WHILE
  | ASSIGN
  | EQ
  | NE
  | SEMI
  | COMMA
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | EOF

type pos = { line : int; col : int }

exception Error of pos * string

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | NAT i -> Fmt.pf ppf "literal %d" i
  | THREAD -> Fmt.string ppf "'thread'"
  | VOLATILE -> Fmt.string ppf "'volatile'"
  | LOCK -> Fmt.string ppf "'lock'"
  | UNLOCK -> Fmt.string ppf "'unlock'"
  | SKIP -> Fmt.string ppf "'skip'"
  | PRINT -> Fmt.string ppf "'print'"
  | CAS -> Fmt.string ppf "'cas'"
  | FAA -> Fmt.string ppf "'faa'"
  | XCHG -> Fmt.string ppf "'xchg'"
  | IF -> Fmt.string ppf "'if'"
  | ELSE -> Fmt.string ppf "'else'"
  | WHILE -> Fmt.string ppf "'while'"
  | ASSIGN -> Fmt.string ppf "':='"
  | EQ -> Fmt.string ppf "'=='"
  | NE -> Fmt.string ppf "'!='"
  | SEMI -> Fmt.string ppf "';'"
  | COMMA -> Fmt.string ppf "','"
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | EOF -> Fmt.string ppf "end of input"

let keyword = function
  | "thread" -> Some THREAD
  | "volatile" -> Some VOLATILE
  | "lock" -> Some LOCK
  | "unlock" -> Some UNLOCK
  | "skip" -> Some SKIP
  | "print" -> Some PRINT
  | "cas" -> Some CAS
  | "faa" -> Some FAA
  | "xchg" -> Some XCHG
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "while" -> Some WHILE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let pos i = { line = !line; col = i - !bol + 1 } in
  let toks = ref [] in
  let emit t p = toks := (t, p) :: !toks in
  let rec go i =
    if i >= n then emit EOF (pos i)
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
          incr line;
          bol := i + 1;
          go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
          go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          let rec skip j =
            if j + 1 >= n then raise (Error (pos i, "unterminated comment"))
            else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
            else begin
              if src.[j] = '\n' then begin
                incr line;
                bol := j + 1
              end;
              skip (j + 1)
            end
          in
          go (skip (i + 2))
      | ':' when i + 1 < n && src.[i + 1] = '=' ->
          emit ASSIGN (pos i);
          go (i + 2)
      | '=' when i + 1 < n && src.[i + 1] = '=' ->
          emit EQ (pos i);
          go (i + 2)
      | '!' when i + 1 < n && src.[i + 1] = '=' ->
          emit NE (pos i);
          go (i + 2)
      | ';' ->
          emit SEMI (pos i);
          go (i + 1)
      | ',' ->
          emit COMMA (pos i);
          go (i + 1)
      | '(' ->
          emit LPAREN (pos i);
          go (i + 1)
      | ')' ->
          emit RPAREN (pos i);
          go (i + 1)
      | '{' ->
          emit LBRACE (pos i);
          go (i + 1)
      | '}' ->
          emit RBRACE (pos i);
          go (i + 1)
      | c when is_digit c ->
          let rec scan j = if j < n && is_digit src.[j] then scan (j + 1) else j in
          let j = scan i in
          emit (NAT (int_of_string (String.sub src i (j - i)))) (pos i);
          go j
      | c when is_ident_start c ->
          let rec scan j =
            if j < n && is_ident_char src.[j] then scan (j + 1) else j
          in
          let j = scan i in
          let s = String.sub src i (j - i) in
          emit (Option.value ~default:(IDENT s) (keyword s)) (pos i);
          go j
      | c -> raise (Error (pos i, Printf.sprintf "unexpected character %C" c))
  in
  go 0;
  List.rev !toks
