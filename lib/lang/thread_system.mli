(** Programs as thread systems for the execution-enumeration engine.

    Each thread first emits its start action [S(i)] (rule PAR of Fig. 7)
    and then follows the small-step semantics.  If the program contains
    loops, an action-fuel counter is embedded in the thread state so
    that the global state graph is acyclic and the engine's analyses
    terminate (they are then exact up to executions of [fuel] actions
    per thread); loop-free programs carry no fuel and are analysed
    exactly. *)

type state

val make : ?fuel:int -> Ast.program -> state Safeopt_exec.System.t
(** [fuel] (default 64) is used only when the program contains a
    [while] loop. *)

val has_loop : Ast.program -> bool

val local_actions : Ast.program -> Safeopt_trace.Action.t -> bool
(** The partial-order-reduction predicate for {!Safeopt_exec.Explorer}:
    true for reads and writes of locations that, syntactically, only a
    single thread of the program accesses (such actions are invisible
    and independent of every other thread). *)
