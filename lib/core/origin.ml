open Safeopt_trace
open Safeopt_exec

let origin_index v t =
  let rec go i seen_read = function
    | [] -> None
    | a :: rest -> (
        match a with
        | Action.Read (_, v') when Value.equal v v' -> go (i + 1) true rest
        | (Action.Write (_, v') | Action.External v')
          when Value.equal v v' && not seen_read ->
            Some i
        | _ -> go (i + 1) seen_read rest)
  in
  go 0 false t

let is_origin v t = Option.is_some (origin_index v t)

let wild_is_origin v (w : Wildcard.t) =
  let rec go seen_read = function
    | [] -> false
    | Wildcard.Wild_read _ :: rest -> go seen_read rest
    | Wildcard.Concrete a :: rest -> (
        match a with
        | Action.Read (_, v') when Value.equal v v' -> go true rest
        | (Action.Write (_, v') | Action.External v')
          when Value.equal v v' && not seen_read ->
            true
        | _ -> go seen_read rest)
  in
  go false w

let traceset_has_origin v ts =
  Traceset.fold (fun t acc -> acc || is_origin v t) ts false

let interleaving_mentions v i =
  List.exists
    (fun (p : Interleaving.pair) ->
      match Action.value p.action with
      | Some v' -> Value.equal v v'
      | None -> false)
    i

let check_lemma3 v ts ~max_steps =
  if traceset_has_origin v ts then Ok ()
  else
    (* Stream the executions: a counterexample stops the search without
       materialising the remaining (exponentially many) interleavings. *)
    let execs =
      Explorer.maximal_executions_seq ~max_steps (Traceset_system.make ts)
    in
    match Seq.find (interleaving_mentions v) execs with
    | Some cex -> Error cex
    | None -> Ok ()
