(** Semantic eliminations (paper, section 4).

    A trace [t'] is an {e elimination} of a wildcard trace [t] if
    [t' = t|S] for some [S] whose complement is eliminable in [t]
    (Definition 1).  A traceset [T'] is an elimination of a traceset
    [T] if every [t' in T'] is an elimination of some wildcard trace
    that belongs-to [T].

    Witnesses are explicit: a witness for [t'] is the wildcard trace
    [t] together with the kept index set [S]. *)

open Safeopt_trace

type witness = {
  wild : Wildcard.t;  (** the wildcard trace [t] belonging-to [T] *)
  kept : int list;  (** [S], increasing; [t' = t|S] *)
}

val pp_witness : witness Fmt.t

val check_witness :
  ?proper:bool ->
  Location.Volatile.t ->
  transformed:Trace.t ->
  witness ->
  bool
(** Is the witness valid for [transformed] — i.e. [transformed =
    wild|kept] and every dropped index eliminable (properly eliminable
    if [proper], section 6.1)?  Does {e not} check belongs-to. *)

val embeddings :
  ?proper:bool ->
  Location.Volatile.t ->
  transformed:Trace.t ->
  wild:Wildcard.t ->
  int list list
(** All kept-sets [S] making [wild] a witness for [transformed]. *)

val trace_elimination_of :
  ?proper:bool ->
  Location.Volatile.t ->
  transformed:Trace.t ->
  wild:Wildcard.t ->
  int list option
(** The first embedding, if any. *)

val generalisations :
  belongs_to:(Wildcard.t -> bool) -> Trace.t -> Wildcard.t list
(** All wildcard traces obtained from a concrete trace by replacing
    some subset of its read positions with wildcards, that still belong
    to the original traceset (per the supplied oracle).  Exponential in
    the number of reads; intended for the bounded checkers. *)

val find_witness :
  ?proper:bool ->
  Location.Volatile.t ->
  belongs_to:(Wildcard.t -> bool) ->
  candidates:Trace.t list ->
  transformed:Trace.t ->
  witness option
(** Search for a witness for [transformed]: for every candidate
    original trace (typically the traces of [T] of length at least
    [|transformed|]), for every belongs-to generalisation, for every
    embedding. *)

val is_elimination :
  ?proper:bool ->
  Location.Volatile.t ->
  original:Traceset.t ->
  universe:Value.t list ->
  transformed:Traceset.t ->
  bool
(** Is [transformed] an elimination of [original] (every transformed
    trace has a witness)? *)

val find_unwitnessed :
  ?proper:bool ->
  Location.Volatile.t ->
  original:Traceset.t ->
  universe:Value.t list ->
  transformed:Traceset.t ->
  Trace.t option
(** The first transformed trace with no elimination witness — the
    diagnostic behind a negative {!is_elimination}. *)

val is_member :
  ?proper:bool ->
  Location.Volatile.t ->
  original:Traceset.t ->
  universe:Value.t list ->
  Trace.t ->
  bool
(** Membership in the {e elimination closure} of [original]: does the
    given trace have a witness?  Used as the intermediate-traceset
    oracle when checking syntactic reorderings (Lemma 5: syntactic
    reordering = semantic elimination followed by semantic
    reordering). *)

val memoised_member :
  ?proper:bool ->
  Location.Volatile.t ->
  original:Traceset.t ->
  universe:Value.t list ->
  Trace.t ->
  bool
(** A memoising elimination-closure membership oracle over a fixed
    [original] traceset, equivalent to {!is_member} query by query.
    Partially applying the named arguments yields a closure whose memo
    tables (membership verdicts and the belongs-to checks beneath them)
    are shared across queries — the shape every Lemma-5 reordering
    search wants, since [Reorder.find] probes the same intermediate
    traces over and over.  Used by the differential validator and the
    per-thread refinement checker. *)
