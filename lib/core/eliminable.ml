open Safeopt_trace

type kind =
  | Redundant_read_after_read of int
  | Redundant_read_after_write of int
  | Irrelevant_read
  | Redundant_write_after_read of int
  | Overwritten_write of int
  | Redundant_last_write
  | Redundant_release
  | Redundant_external

let pp_kind ppf = function
  | Redundant_read_after_read j -> Fmt.pf ppf "redundant read after read %d" j
  | Redundant_read_after_write j ->
      Fmt.pf ppf "redundant read after write %d" j
  | Irrelevant_read -> Fmt.string ppf "irrelevant read"
  | Redundant_write_after_read j ->
      Fmt.pf ppf "redundant write after read %d" j
  | Overwritten_write j -> Fmt.pf ppf "write overwritten by %d" j
  | Redundant_last_write -> Fmt.string ppf "redundant last write"
  | Redundant_release -> Fmt.string ppf "redundant release"
  | Redundant_external -> Fmt.string ppf "redundant external action"

let elt t i = List.nth t i

(* No write to [l] strictly between [lo] and [hi] (a wildcard read is
   never a write). *)
let no_write_between t l lo hi =
  not
    (List.exists2
       (fun k e -> lo < k && k < hi && Wildcard.is_write e
                   && Wildcard.location e = Some l)
       (List.init (List.length t) Fun.id)
       t)

(* No access to [l] strictly between [lo] and [hi] other than the
   endpoints. *)
let no_access_between t l lo hi =
  not
    (List.exists2
       (fun k e ->
         lo < k && k < hi && Wildcard.is_access e
         && Wildcard.location e = Some l)
       (List.init (List.length t) Fun.id)
       t)

let no_ra_pair_between vol t lo hi =
  not (Wildcard.has_release_acquire_pair_between vol t lo hi)

let indexed t = List.mapi (fun k e -> (k, e)) t

let classify vol (t : Wildcard.t) i =
  let n = List.length t in
  if i < 0 || i >= n then None
  else
    let ei = elt t i in
    if Wildcard.is_rmw ei then None
      (* An RMW is never eliminable: it is both an acquire and a
         release (so clauses 7-8 must not treat a trailing RMW as a
         redundant release), and its write is globally visible to the
         other threads' RMWs ordering through it. *)
    else
    let non_volatile l = not (Location.Volatile.mem vol l) in
    let clause1 () =
      match ei with
      | Wildcard.Concrete (Action.Read (l, v)) when non_volatile l ->
          List.find_map
            (fun (j, e) ->
              match e with
              | Wildcard.Concrete (Action.Read (l', v'))
                when j < i && Location.equal l l' && Value.equal v v'
                     && no_ra_pair_between vol t j i
                     && no_write_between t l j i ->
                  Some (Redundant_read_after_read j)
              | _ -> None)
            (indexed t)
      | _ -> None
    in
    let clause2 () =
      match ei with
      | Wildcard.Concrete (Action.Read (l, v)) when non_volatile l ->
          List.find_map
            (fun (j, e) ->
              match e with
              | Wildcard.Concrete (Action.Write (l', v'))
                when j < i && Location.equal l l' && Value.equal v v'
                     && no_ra_pair_between vol t j i
                     && no_write_between t l j i ->
                  Some (Redundant_read_after_write j)
              | _ -> None)
            (indexed t)
      | _ -> None
    in
    let clause3 () =
      match ei with
      | Wildcard.Wild_read l when non_volatile l -> Some Irrelevant_read
      | _ -> None
    in
    let clause4 () =
      match ei with
      | Wildcard.Concrete (Action.Write (l, v)) when non_volatile l ->
          List.find_map
            (fun (j, e) ->
              match e with
              | Wildcard.Concrete (Action.Read (l', v'))
                when j < i && Location.equal l l' && Value.equal v v'
                     && no_ra_pair_between vol t j i
                     && no_access_between t l j i ->
                  Some (Redundant_write_after_read j)
              | _ -> None)
            (indexed t)
      | _ -> None
    in
    let clause5 () =
      match ei with
      | Wildcard.Concrete (Action.Write (l, _)) when non_volatile l ->
          List.find_map
            (fun (j, e) ->
              match e with
              | Wildcard.Concrete (Action.Write (l', _))
                when j > i && Location.equal l l'
                     && no_ra_pair_between vol t i j
                     && no_access_between t l i j ->
                  Some (Overwritten_write j)
              | _ -> None)
            (indexed t)
      | _ -> None
    in
    let clause6 () =
      match ei with
      | Wildcard.Concrete (Action.Write (l, _)) when non_volatile l ->
          let later_bad =
            List.exists
              (fun (j, e) ->
                j > i
                && (Wildcard.is_release vol e
                   || (Wildcard.is_access e && Wildcard.location e = Some l)))
              (indexed t)
          in
          if later_bad then None else Some Redundant_last_write
      | _ -> None
    in
    let clause78 () =
      let is_rel = Wildcard.is_release vol ei in
      let is_ext = Wildcard.is_external ei in
      if not (is_rel || is_ext) then None
      else
        let later_bad =
          List.exists
            (fun (j, e) ->
              j > i && (Wildcard.is_sync vol e || Wildcard.is_external e))
            (indexed t)
        in
        if later_bad then None
        else if is_rel then Some Redundant_release
        else Some Redundant_external
    in
    List.find_map
      (fun f -> f ())
      [ clause1; clause2; clause3; clause4; clause5; clause6; clause78 ]

let eliminable vol t i = Option.is_some (classify vol t i)

let properly_eliminable vol t i =
  match classify vol t i with
  | Some
      ( Redundant_read_after_read _ | Redundant_read_after_write _
      | Irrelevant_read | Redundant_write_after_read _ | Overwritten_write _ )
    ->
      true
  | Some (Redundant_last_write | Redundant_release | Redundant_external)
  | None ->
      false

let eliminable_indices vol t =
  List.filteri (fun i _ -> eliminable vol t i) (List.init (List.length t) Fun.id)

let properly_eliminable_indices vol t =
  List.filteri
    (fun i _ -> properly_eliminable vol t i)
    (List.init (List.length t) Fun.id)
