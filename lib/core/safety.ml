open Safeopt_exec

type verdict = {
  original_drf : bool;
  transformed_drf : bool;
  behaviours_included : bool;
  relation_holds : bool;
  counterexample : Behaviour.t option;
}

let pp_verdict ppf v =
  Fmt.pf ppf
    "@[<v>original DRF: %b@ transformed DRF: %b@ behaviours included: %b@ \
     relation holds: %b%a@]"
    v.original_drf v.transformed_drf v.behaviours_included v.relation_holds
    Fmt.(
      option (fun ppf b ->
          pf ppf "@ new behaviour: %a" Behaviour.pp b))
    v.counterexample

let drf_guarantee_ok v =
  (not (v.original_drf && v.relation_holds))
  || (v.behaviours_included && v.transformed_drf)

let behaviour_subset b1 b2 =
  Behaviour.Set.fold
    (fun b acc ->
      match acc with
      | Some _ -> acc
      | None -> if Behaviour.Set.mem b b2 then None else Some b)
    b1 None

let check_with ~relation ?(max_states = Explorer.default_max_states) vol
    ~original ~transformed =
  let sys_o = Traceset_system.make original in
  let sys_t = Traceset_system.make transformed in
  let original_drf = Explorer.is_drf ~max_states vol sys_o in
  let transformed_drf = Explorer.is_drf ~max_states vol sys_t in
  let b_o = Explorer.behaviours ~max_states sys_o in
  let b_t = Explorer.behaviours ~max_states sys_t in
  let counterexample = behaviour_subset b_t b_o in
  {
    original_drf;
    transformed_drf;
    behaviours_included = Option.is_none counterexample;
    relation_holds = relation ();
    counterexample;
  }

let check_elimination ?proper ?max_states vol ~original ~transformed ~universe
    =
  check_with ?max_states vol ~original ~transformed ~relation:(fun () ->
      Elimination.is_elimination ?proper vol ~original ~universe ~transformed)

let check_reordering ?max_states vol ~original ~transformed =
  check_with ?max_states vol ~original ~transformed ~relation:(fun () ->
      Reorder.is_reordering vol ~original ~transformed)

let check_behaviours_only ?max_states vol ~original ~transformed =
  check_with ?max_states vol ~original ~transformed ~relation:(fun () -> true)
