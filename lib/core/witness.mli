(** Structured counterexample witnesses for failed transformations.

    When a validation step rejects a transformation, the caller needs
    more than a boolean: it needs the program pair that failed and the
    concrete evidence — a behaviour of the transformed program the
    original cannot produce, a racy interleaving introduced by the
    transformation, or a transformed trace with no semantic
    elimination/reordering justification (the §4/§6 relation checks).

    The type is polymorphic in the program representation so this
    module can live in [safeopt.core] (which is AST-agnostic): the
    traceset-level validators instantiate ['p] with
    {!Safeopt_trace.Traceset.t}, the program-level pipeline with
    [Safeopt_lang.Ast.program]. *)

open Safeopt_trace
open Safeopt_exec

type evidence =
  | New_behaviour of Behaviour.t
      (** an observable behaviour of the transformed program that the
          original lacks — the DRF guarantee's behaviour clause fails *)
  | Race_introduced of Interleaving.t
      (** a racy execution of the transformed program although the
          original is data race free — DRF preservation fails *)
  | Relation_failure of Trace.t
      (** a transformed trace with no elimination embedding / no
          de-permuting function into the original's traceset *)

type 'p t = {
  original : 'p;  (** the program (or traceset) before the failing step *)
  transformed : 'p;  (** the rejected result *)
  evidence : evidence;
  model : string;
      (** the memory model the evidence was observed under ("sc",
          "tso", "pso"): behaviours and races are model-relative, so a
          counterexample must name its backend to be replayable *)
}

val make : ?model:string -> original:'p -> transformed:'p -> evidence -> 'p t
(** [model] defaults to ["sc"]. *)

val pp_evidence : evidence Fmt.t

val pp : 'p Fmt.t -> 'p t Fmt.t
(** [pp pp_program] renders the pair and the evidence. *)

val map : ('p -> 'q) -> 'p t -> 'q t
