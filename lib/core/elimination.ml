open Safeopt_trace

type witness = { wild : Wildcard.t; kept : int list }

let pp_witness ppf w =
  Fmt.pf ppf "@[<h>%a keeping %a@]" Wildcard.pp w.wild
    Fmt.(brackets (list ~sep:comma int))
    w.kept

let check_witness ?(proper = false) vol ~transformed w =
  let n = Wildcard.length w.wild in
  let kept = List.sort_uniq Int.compare w.kept in
  let dropped =
    List.filter (fun i -> not (List.mem i kept)) (List.init n Fun.id)
  in
  let elim_ok =
    let p =
      if proper then Eliminable.properly_eliminable else Eliminable.eliminable
    in
    List.for_all (fun i -> p vol w.wild i) dropped
  in
  let restricted = Wildcard.restrict w.wild kept in
  elim_ok
  && List.length restricted = Trace.length transformed
  && List.for_all2
       (fun e a ->
         match e with
         | Wildcard.Concrete a' -> Action.equal a a'
         | Wildcard.Wild_read _ -> false)
       restricted transformed

let embeddings ?(proper = false) vol ~transformed ~wild =
  (* DFS: embed [transformed] as a concrete subsequence of [wild]; every
     skipped position must be eliminable.  Eliminability of a position
     depends only on [wild], so it is precomputed. *)
  let n = Wildcard.length wild in
  let arr = Array.of_list wild in
  let elim =
    let p =
      if proper then Eliminable.properly_eliminable else Eliminable.eliminable
    in
    Array.init n (fun i -> p vol wild i)
  in
  let results = ref [] in
  let rec go i rest kept_rev =
    match rest with
    | [] ->
        (* Remaining positions must all be eliminable. *)
        let rec tail_ok j = j >= n || (elim.(j) && tail_ok (j + 1)) in
        if tail_ok i then results := List.rev kept_rev :: !results
    | a :: rest' ->
        if i >= n then ()
        else begin
          (* Option 1: match position i. *)
          (match arr.(i) with
          | Wildcard.Concrete a' when Action.equal a a' ->
              go (i + 1) rest' (i :: kept_rev)
          | _ -> ());
          (* Option 2: skip position i if eliminable. *)
          if elim.(i) then go (i + 1) rest kept_rev
        end
  in
  go 0 transformed [];
  List.rev !results

let trace_elimination_of ?proper vol ~transformed ~wild =
  match embeddings ?proper vol ~transformed ~wild with
  | [] -> None
  | s :: _ -> Some s

let generalisations ~belongs_to t =
  (* Replace subsets of read positions by wildcards, keeping only the
     generalisations all of whose instances stay in the traceset. *)
  let n = List.length t in
  let read_positions =
    List.filter (fun i -> Action.is_read (List.nth t i)) (List.init n Fun.id)
  in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun ys -> x :: ys) s
  in
  let wildcardise positions =
    List.mapi
      (fun i a ->
        if List.mem i positions then
          match a with
          | Action.Read (l, _) -> Wildcard.Wild_read l
          | _ -> assert false
        else Wildcard.Concrete a)
      t
  in
  subsets read_positions
  |> List.map wildcardise
  |> List.filter belongs_to

let find_witness ?proper vol ~belongs_to ~candidates ~transformed =
  let tlen = Trace.length transformed in
  let candidates =
    List.filter (fun t -> Trace.length t >= tlen) candidates
    |> List.sort (fun a b -> Int.compare (Trace.length a) (Trace.length b))
  in
  List.find_map
    (fun t ->
      (* Fast path: try the fully concrete trace first. *)
      let concrete = Wildcard.of_trace t in
      let try_wild wild =
        match trace_elimination_of ?proper vol ~transformed ~wild with
        | Some kept -> Some { wild; kept }
        | None -> None
      in
      match (if belongs_to concrete then try_wild concrete else None) with
      | Some w -> Some w
      | None ->
          generalisations ~belongs_to t
          |> List.find_map (fun wild ->
                 if Wildcard.wildcard_count wild = 0 then None
                 else try_wild wild))
    candidates

let is_member ?proper vol ~original ~universe t =
  let belongs_to w = Traceset.belongs_to original w ~universe in
  let candidates = Traceset.to_list original in
  Option.is_some
    (find_witness ?proper vol ~belongs_to ~candidates ~transformed:t)

let memoised_member ?proper vol ~original ~universe =
  (* Two memo tables: one for closure-membership queries, one for the
     belongs-to checks underneath them.  The same wildcard
     generalisations recur across queries (every query walks the same
     candidate list), so caching belongs-to is the bigger win. *)
  let member_memo = Hashtbl.create 97 in
  let belongs_memo = Hashtbl.create 97 in
  let belongs_to w =
    let k = Wildcard.to_string w in
    match Hashtbl.find_opt belongs_memo k with
    | Some b -> b
    | None ->
        let b = Traceset.belongs_to original w ~universe in
        Hashtbl.add belongs_memo k b;
        b
  in
  let candidates = Traceset.to_list original in
  fun t ->
    let k = Trace.to_string t in
    match Hashtbl.find_opt member_memo k with
    | Some b -> b
    | None ->
        let b =
          Option.is_some
            (find_witness ?proper vol ~belongs_to ~candidates ~transformed:t)
        in
        Hashtbl.add member_memo k b;
        b

let find_unwitnessed ?proper vol ~original ~universe ~transformed =
  List.find_opt
    (fun t -> not (is_member ?proper vol ~original ~universe t))
    (Traceset.to_list transformed)

let is_elimination ?proper vol ~original ~universe ~transformed =
  Option.is_none (find_unwitnessed ?proper vol ~original ~universe ~transformed)
