open Safeopt_trace
open Safeopt_exec

type evidence =
  | New_behaviour of Behaviour.t
  | Race_introduced of Interleaving.t
  | Relation_failure of Trace.t

type 'p t = {
  original : 'p;
  transformed : 'p;
  evidence : evidence;
  model : string;
}

let make ?(model = "sc") ~original ~transformed evidence =
  { original; transformed; evidence; model }

let pp_evidence ppf = function
  | New_behaviour b ->
      Fmt.pf ppf "@[<v2>new behaviour (not producible by the original):@ %a@]"
        Behaviour.pp b
  | Race_introduced i ->
      Fmt.pf ppf
        "@[<v2>race introduced (original is DRF; last two actions \
         conflict):@ %a@]"
        Interleaving.pp i
  | Relation_failure t ->
      Fmt.pf ppf "@[<v2>transformed trace with no semantic witness:@ %a@]"
        Trace.pp t

let pp pp_program ppf w =
  Fmt.pf ppf "@[<v>@[<v2>original:@ %a@]@ @[<v2>transformed:@ %a@]@ %a%a@]"
    pp_program w.original pp_program w.transformed pp_evidence w.evidence
    (fun ppf m -> if m <> "sc" then Fmt.pf ppf "@ (under the %s memory model)" m)
    w.model

let map f w = { w with original = f w.original; transformed = f w.transformed }
