(** Eliminable indices of a wildcard trace (paper, Definition 1).

    An index [i] of a wildcard trace [t] is eliminable if it is one of:

    + {e redundant read after read}: [t_i = t_j = R\[l=v\]] for some
      non-volatile [l] and [j < i], with no release-acquire pair and no
      write to [l] strictly between [j] and [i];
    + {e redundant read after write}: [t_i = R\[l=v\]], [t_j = W\[l=v\]]
      for some non-volatile [l] and [j < i], with no release-acquire
      pair and no write to [l] between [j] and [i];
    + {e irrelevant read}: [t_i] is a wildcard non-volatile read;
    + {e redundant write after read}: [t_i = W\[l=v\]],
      [t_j = R\[l=v\]], [j < i], with no release-acquire pair and no
      {e other access} to [l] between [j] and [i];
    + {e overwritten write}: [t_i = W\[l=v\]] is overwritten by a later
      write [t_j = W\[l=v'\]] ([i < j]), with no release-acquire pair
      and no other access to [l] between [i] and [j].

      {b Deviation from the paper's literal text:} Definition 1 states
      clause 5 with [j < i], which would make the {e later} of two
      back-to-back writes eliminable; but the paper's own worked example
      (section 4: index 6, [W\[x=2\]], is eliminable in a trace where
      index 7 is [W\[x=1\]]) and the E-WBW syntactic rule both eliminate
      the {e earlier} write.  We take the example as authoritative.
    + {e redundant last write}: [t_i] a normal write with no later
      release action and no later memory access to the same location;
    + {e redundant release}: [t_i] a release with no later
      synchronisation or external action;
    + {e redundant external action}: [t_i] external, with no later
      synchronisation or external action.

    An atomic RMW ([U\[l:r→w\]]) is {e never} eliminable: it acquires
    and releases in one action, so the release clauses would otherwise
    wrongly admit a trailing RMW, and its write orders every other
    thread's update of the same location. *)

open Safeopt_trace

type kind =
  | Redundant_read_after_read of int  (** earlier read index [j] *)
  | Redundant_read_after_write of int  (** earlier write index [j] *)
  | Irrelevant_read
  | Redundant_write_after_read of int  (** earlier read index [j] *)
  | Overwritten_write of int  (** the later write index that overwrites *)
  | Redundant_last_write
  | Redundant_release
  | Redundant_external

val pp_kind : kind Fmt.t

val classify : Location.Volatile.t -> Wildcard.t -> int -> kind option
(** The first clause (in the order above) justifying elimination of
    index [i], if any. *)

val eliminable : Location.Volatile.t -> Wildcard.t -> int -> bool

val properly_eliminable : Location.Volatile.t -> Wildcard.t -> int -> bool
(** Clauses 1-5 only (section 6.1): the composable eliminations, which
    exclude the last-action clauses 6-8. *)

val eliminable_indices : Location.Volatile.t -> Wildcard.t -> int list
val properly_eliminable_indices : Location.Volatile.t -> Wildcard.t -> int list
