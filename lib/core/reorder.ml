open Safeopt_trace

type f = int array

let pp_f ppf f =
  Fmt.(brackets (list ~sep:comma (pair ~sep:(any "->") int int)))
    ppf
    (Array.to_list (Array.mapi (fun i j -> (i, j)) f))

let is_permutation f =
  let n = Array.length f in
  let seen = Array.make n false in
  Array.for_all
    (fun j ->
      j >= 0 && j < n
      &&
      if seen.(j) then false
      else begin
        seen.(j) <- true;
        true
      end)
    f

let is_reordering_function vol t f =
  let arr = Array.of_list t in
  let n = Array.length arr in
  Array.length f = n && is_permutation f
  &&
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if f.(j) < f.(i) && not (Action.reorderable vol arr.(j) arr.(i)) then
        ok := false
    done
  done;
  !ok

let depermute_prefix f t n =
  List.mapi (fun k a -> (k, a)) t
  |> List.filter (fun (k, _) -> k < n)
  |> List.sort (fun (k1, _) (k2, _) -> Int.compare f.(k1) f.(k2))
  |> List.map snd

let depermute f t = depermute_prefix f t (List.length t)

let de_permutes vol f t ~mem =
  is_reordering_function vol t f
  && List.for_all
       (fun n -> mem (depermute_prefix f t n))
       (List.init (List.length t + 1) Fun.id)

let identity n = Array.init n Fun.id

(* Search.  We maintain the current de-permutation of the prefix as a
   list of transformed-trace indices (in reconstructed-original order).
   Processing index [k], we may insert it at any position whose suffix
   contains only indices [i < k] with [t'_k] reorderable with [t'_i];
   the resulting sequence (as actions) must be in the original
   traceset.  On success the final arrangement determines [f]. *)
let find vol t ~mem =
  let arr = Array.of_list t in
  let n = Array.length arr in
  let exception Found of int list in
  let rec go k arrangement =
    if k = n then raise (Found arrangement)
    else begin
      let rec insertions prefix suffix =
        (* Try inserting k between prefix and suffix. *)
        (if
           List.for_all (fun i -> Action.reorderable vol arr.(k) arr.(i)) suffix
         then
           let candidate = prefix @ [ k ] @ suffix in
           let as_trace = List.map (fun i -> arr.(i)) candidate in
           if mem as_trace then go (k + 1) candidate);
        match suffix with
        | [] -> ()
        | x :: rest -> insertions (prefix @ [ x ]) rest
      in
      insertions [] arrangement
    end
  in
  if not (mem (depermute_prefix (identity n) t 0)) then None
  else
    try
      go 0 [];
      None
    with Found arrangement ->
      let f = Array.make n 0 in
      List.iteri (fun pos k -> f.(k) <- pos) arrangement;
      Some f

let find_undepermutable vol ~mem ~transformed =
  List.find_opt
    (fun t -> Option.is_none (find vol t ~mem))
    (Traceset.to_list transformed)

let is_reordering_of_oracle vol ~mem ~transformed =
  Option.is_none (find_undepermutable vol ~mem ~transformed)

let is_reordering vol ~original ~transformed =
  is_reordering_of_oracle vol
    ~mem:(fun t -> Traceset.mem t original)
    ~transformed

(* --- The reorderability matrix --- *)

let matrix_headers = [ "W"; "R"; "Acq"; "Rel"; "Ext"; "U" ]

let representative ~same_location ~first =
  let loc = if first || same_location then "x" else "y" in
  function
  | 0 -> Action.Write (loc, 1)
  | 1 -> Action.Read (loc, 1)
  | 2 -> Action.Lock "m"
  | 3 -> Action.Unlock "m"
  | 4 -> Action.External 1
  | 5 -> Action.Rmw (loc, 0, 1)
  | _ -> invalid_arg "representative"

let matrix ~same_location =
  let vol = Location.Volatile.none in
  let n = List.length matrix_headers in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let a = representative ~same_location ~first:true i
          and b = representative ~same_location ~first:false j in
          Action.reorderable vol a b))

let pp_matrix ppf () =
  let render title m =
    Fmt.pf ppf "%s@." title;
    Fmt.pf ppf "%8s" "a \\ b";
    List.iter (fun h -> Fmt.pf ppf "%6s" h) matrix_headers;
    Fmt.pf ppf "@.";
    List.iteri
      (fun i h ->
        Fmt.pf ppf "%8s" h;
        Array.iter
          (fun b -> Fmt.pf ppf "%6s" (if b then "yes" else "x"))
          m.(i);
        Fmt.pf ppf "@.")
      matrix_headers
  in
  render "distinct locations (x <> y):" (matrix ~same_location:false);
  render "same location (x = y):" (matrix ~same_location:true)
