(* The pass manager: registry, spec parsing, the driver's differential
   validation, and the two headline properties —

   - any random pipeline over the {e safe} pass set preserves the DRF
     guarantee on random programs (the tool-level reading of Lemma 5's
     composition of Theorems 1–4), and
   - the mutation control [unsafe-store-release] is rejected with a
     concrete race witness (the validator is not vacuous). *)

open Safeopt_lang
open Safeopt_opt
open Safeopt_gen

let program_t = Alcotest.testable (Fmt.of_to_string Pp.program_to_string)
    Ast.equal_program

let is_prefix ~affix s =
  String.length s >= String.length affix
  && String.sub s 0 (String.length affix) = affix

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* --- registry and spec parsing ---------------------------------------- *)

let test_registry_covers_passes () =
  (* every pass of the legacy [Passes.named_passes] registry is
     registered through the pass manager *)
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool)
        (name ^ " registered") true
        (Option.is_some (Pipeline.find name)))
    Passes.named_passes

let test_registry_names_unique () =
  let names = List.map (fun (p : Pass.t) -> p.Pass.name) Pipeline.registry in
  Alcotest.(check int)
    "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_aliases () =
  List.iter
    (fun (alias, canonical) ->
      match (Pipeline.find alias, Pipeline.find canonical) with
      | Some a, Some c ->
          Alcotest.(check string) alias c.Pass.name a.Pass.name
      | _ -> Alcotest.failf "alias %s or target %s missing" alias canonical)
    [ ("cse", "redundancy"); ("dse", "dead-stores"); ("load-hoist", "read-intro") ]

let test_parse_spec () =
  match Pipeline.parse "cse; dse ;load-hoist*" with
  | Error e -> Alcotest.fail e
  | Ok spec ->
      Alcotest.(check (list (pair string bool)))
        "parsed steps"
        [ ("redundancy", false); ("dead-stores", false); ("read-intro", true) ]
        (List.map
           (fun { Pipeline.pass; fixpoint } -> (pass.Pass.name, fixpoint))
           spec)

let test_parse_unknown () =
  match Pipeline.parse "cse;no-such-pass" with
  | Error e ->
      Alcotest.(check bool)
        "error names the pass" true
        (is_infix ~affix:"no-such-pass" e)
  | Ok _ -> Alcotest.fail "unknown pass accepted"

let test_parse_empty () =
  Alcotest.(check bool)
    "empty spec rejected" true
    (Result.is_error (Pipeline.parse "  ;  "))

(* --- dead stores across branches -------------------------------------- *)

let test_dead_stores_cfg () =
  (* both branch stores are overwritten by the post-join store on every
     path; the final store must survive *)
  let t0 =
    [
      Ast.Move ("r1", Ast.Nat 1);
      Ast.If (Ast.Eq (Ast.Reg "r1", Ast.Nat 1),
        Ast.Store ("x", "r1"),
        Ast.Store ("x", "r1"));
      Ast.Store ("x", "r1");
    ]
  in
  let p = Ast.program [ t0 ] in
  let p', removed = Passes.dead_stores_cfg p in
  Alcotest.(check int) "two stores removed" 2 (List.length removed);
  Alcotest.check program_t "final store survives"
    (Ast.program
       [
         [
           Ast.Move ("r1", Ast.Nat 1);
           Ast.If (Ast.Eq (Ast.Reg "r1", Ast.Nat 1), Ast.Skip, Ast.Skip);
           Ast.Store ("x", "r1");
         ];
       ])
    p'

let test_dead_stores_sync_window () =
  (* an unlock between the stores publishes the first one: not dead *)
  let t0 =
    [
      Ast.Move ("r1", Ast.Nat 1);
      Ast.Store ("x", "r1");
      Ast.Unlock "m";
      Ast.Store ("x", "r1");
    ]
  in
  let p = Ast.program [ [ Ast.Lock "m" ] @ t0 ] in
  let p', removed = Passes.dead_stores_cfg p in
  Alcotest.(check int) "nothing removed" 0 (List.length removed);
  Alcotest.check program_t "unchanged" p p'

let test_dead_stores_volatile () =
  let t0 = [ Ast.Move ("r1", Ast.Nat 1); Ast.Store ("v", "r1");
             Ast.Store ("v", "r1") ] in
  let p = Ast.program ~volatile:[ "v" ] [ t0 ] in
  let _, removed = Passes.dead_stores_cfg p in
  Alcotest.(check int) "volatile stores kept" 0 (List.length removed)

(* --- provenance -------------------------------------------------------- *)

let test_provenance_sites () =
  (* the dse pass reports one site per removed store, tagged E-WBW *)
  let t0 =
    [ Ast.Move ("r1", Ast.Nat 1); Ast.Store ("x", "r1");
      Ast.Store ("x", "r1") ]
  in
  let p = Ast.program [ t0 ] in
  let pass = Option.get (Pipeline.find "dse") in
  let r = pass.Pass.run p in
  Alcotest.(check int) "one site" 1 (List.length r.Pass.sites);
  let site = List.hd r.Pass.sites in
  Alcotest.(check bool)
    "rule tag mentions E-WBW" true
    (is_prefix ~affix:"E-WBW" site.Pass.site_rule)

(* --- the mutation test ------------------------------------------------- *)

let mutation_target =
  Ast.program
    [
      [ Ast.Lock "m"; Ast.Move ("r0", Ast.Nat 1); Ast.Store ("data", "r0");
        Ast.Unlock "m" ];
      [ Ast.Lock "m"; Ast.Load ("r1", "data"); Ast.Unlock "m";
        Ast.Print "r1" ];
    ]

let test_mutation_caught () =
  let spec =
    match Pipeline.parse "unsafe-store-release" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let o = Pipeline.run ~validate_each:true spec mutation_target in
  match o.Pipeline.failure with
  | None -> Alcotest.fail "unsound pass not rejected"
  | Some (name, w) ->
      Alcotest.(check string) "failing pass named" "unsafe-store-release" name;
      Alcotest.check program_t "witness original" mutation_target
        w.Safeopt_core.Witness.original;
      Alcotest.(check bool)
        "witness transformed differs" false
        (Ast.equal_program mutation_target w.Safeopt_core.Witness.transformed);
      (* the evidence is a concrete racy interleaving of the transformed
         program — the strongest possible counterexample *)
      (match w.Safeopt_core.Witness.evidence with
      | Safeopt_core.Witness.Race_introduced _ -> ()
      | e ->
          Alcotest.failf "expected a race witness, got %a"
            Safeopt_core.Witness.pp_evidence e);
      (* the pipeline rejects the output: the final program is the input *)
      Alcotest.check program_t "output rejected" mutation_target
        o.Pipeline.final

let test_mutation_unvalidated_slips_through () =
  (* without --validate-each the unsound rewrite goes through — the
     validation really is what catches it *)
  let spec = Result.get_ok (Pipeline.parse "unsafe-store-release") in
  let o = Pipeline.run ~validate_each:false spec mutation_target in
  Alcotest.(check bool) "no failure recorded" true
    (Option.is_none o.Pipeline.failure);
  Alcotest.(check bool) "program was mutated" false
    (Ast.equal_program mutation_target o.Pipeline.final)

(* --- random safe pipelines preserve the DRF guarantee ------------------ *)

let rand () = Random.State.make [| 0x5afe0; 42 |]
let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(rand ()) t

let spec_gen =
  let open QCheck2.Gen in
  let step =
    map2
      (fun name fixpoint ->
        { Pipeline.pass = Option.get (Pipeline.find name); fixpoint })
      (oneofl Pipeline.safe_names) bool
  in
  list_size (int_range 1 4) step

let print_case (spec, p) =
  Fmt.str "pipeline: %a@.%s" Pipeline.pp_spec spec (Generators.print_program p)

let safe_pipelines_validate =
  to_alcotest
    (QCheck2.Test.make ~name:"random safe pipelines preserve behaviours and DRF"
       ~count:300 ~print:print_case
       QCheck2.Gen.(pair spec_gen Generators.program)
       (fun (spec, p) ->
         let o = Pipeline.run ~validate_each:true spec p in
         Option.is_none o.Pipeline.failure))

let () =
  Alcotest.run "pipeline"
    [
      ( "registry",
        [
          Alcotest.test_case "covers named_passes" `Quick
            test_registry_covers_passes;
          Alcotest.test_case "unique names" `Quick test_registry_names_unique;
          Alcotest.test_case "aliases" `Quick test_aliases;
        ] );
      ( "parse",
        [
          Alcotest.test_case "spec" `Quick test_parse_spec;
          Alcotest.test_case "unknown pass" `Quick test_parse_unknown;
          Alcotest.test_case "empty" `Quick test_parse_empty;
        ] );
      ( "dead-stores",
        [
          Alcotest.test_case "across branches" `Quick test_dead_stores_cfg;
          Alcotest.test_case "sync window" `Quick test_dead_stores_sync_window;
          Alcotest.test_case "volatile kept" `Quick test_dead_stores_volatile;
          Alcotest.test_case "provenance sites" `Quick test_provenance_sites;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "unsound pass caught with witness" `Quick
            test_mutation_caught;
          Alcotest.test_case "slips through unvalidated" `Quick
            test_mutation_unvalidated_slips_through;
        ] );
      ("properties", [ safe_pipelines_validate ]);
    ]
