open Safeopt_trace
open Helpers

let check_b = Alcotest.(check bool)

let test_actions () =
  Alcotest.check action "read" (r "x" 1) (Syntax.parse_action "R[x=1]");
  Alcotest.check action "write" (w "y" 0) (Syntax.parse_action "W[y=0]");
  Alcotest.check action "lock" (lk "m") (Syntax.parse_action "L[m]");
  Alcotest.check action "unlock" (ul "m1") (Syntax.parse_action "U[m1]");
  Alcotest.check action "external" (ext 7) (Syntax.parse_action "X(7)");
  Alcotest.check action "start" (st 2) (Syntax.parse_action "S(2)")

let test_traces () =
  Alcotest.check trace "semicolons"
    [ st 0; r "x" 1; w "y" 1; ext 1 ]
    (Syntax.parse_trace "S(0); R[x=1]; W[y=1]; X(1)");
  Alcotest.check trace "brackets and commas"
    [ st 0; lk "m"; ul "m" ]
    (Syntax.parse_trace "[S(0), L[m], U[m]]");
  Alcotest.check trace "empty" [] (Syntax.parse_trace "");
  Alcotest.check trace "empty brackets" [] (Syntax.parse_trace "[]");
  Alcotest.check trace "whitespace tolerant"
    [ st 0; w "x" 12 ]
    (Syntax.parse_trace "  S( 0 ) ;  W[ x = 12 ]  ")

let test_wildcards () =
  Alcotest.check wildcard "wildcard read"
    [ c (st 0); wild "x"; c (w "y" 1) ]
    (Syntax.parse_wildcard "S(0); R[x=*]; W[y=1]");
  check_b "trace parser rejects wildcards" true
    (match Syntax.parse_trace "R[x=*]" with
    | exception Syntax.Error _ -> true
    | _ -> false)

let test_errors () =
  let fails s =
    match Syntax.parse_wildcard s with
    | exception Syntax.Error _ -> true
    | _ -> false
  in
  check_b "unknown action" true (fails "Q[x=1]");
  check_b "missing value" true (fails "R[x=]");
  check_b "missing bracket" true (fails "R[x=1");
  check_b "trailing garbage" true (fails "S(0) @");
  check_b "bad separator fine (commas ok)" false (fails "S(0), X(1)")

let test_roundtrip () =
  let samples =
    [
      [ c (st 0); c (r "x" 1); wild "y"; c (w "zz_1" 42) ];
      [ c (lk "m"); c (ul "m"); c (ext 0) ];
      [];
    ]
  in
  List.iter
    (fun w ->
      Alcotest.check wildcard "roundtrip" w
        (Syntax.parse_wildcard (Wildcard.to_string w)))
    samples;
  (* and against Trace.pp *)
  let t = [ st 1; w "x" 3; r "x" 3; ext 3 ] in
  Alcotest.check trace "trace roundtrip" t
    (Syntax.parse_trace (Trace.to_string t))

let test_rmw () =
  (* the stable notation is U[l:r→w]; the parser also accepts the
     ASCII arrow, and the colon keeps it distinct from unlock U[m] *)
  Alcotest.check action "utf-8 arrow"
    (Action.Rmw ("x", 0, 1))
    (Syntax.parse_action "U[x:0\xE2\x86\x921]");
  Alcotest.check action "ascii arrow"
    (Action.Rmw ("x", 0, 1))
    (Syntax.parse_action "U[x:0->1]");
  Alcotest.check action "no colon is an unlock" (ul "x")
    (Syntax.parse_action "U[x]");
  check_b "rmw pp reparses" true
    (Action.equal
       (Action.Rmw ("top", 2, 3))
       (Syntax.parse_action (Action.to_string (Action.Rmw ("top", 2, 3)))));
  let fails s =
    match Syntax.parse_action s with
    | exception Syntax.Error _ -> true
    | _ -> false
  in
  check_b "missing written value" true (fails "U[x:0->]");
  check_b "missing arrow" true (fails "U[x:0]");
  check_b "missing read value" true (fails "U[x:->1]")

let () =
  Alcotest.run "syntax"
    [
      ( "trace notation",
        [
          Alcotest.test_case "actions" `Quick test_actions;
          Alcotest.test_case "traces" `Quick test_traces;
          Alcotest.test_case "wildcards" `Quick test_wildcards;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "rmw notation" `Quick test_rmw;
        ] );
    ]
