(* The lib/obs telemetry layer: histogram bucketing, sharded-merge
   equality, counter exactness under real domains, event JSON
   round-trips, span-log well-formedness over random corpus runs at
   --jobs 1 and --jobs 2, and report aggregation. *)

open Safeopt_exec
open Safeopt_lang
open Safeopt_gen
module Metrics = Safeopt_obs.Metrics
module Tracer = Safeopt_obs.Tracer
module Event = Safeopt_obs.Event
module Report = Safeopt_obs.Report
module Json = Safeopt_obs.Json

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* --- histograms --------------------------------------------------- *)

let test_bucket_roundtrip () =
  List.iter
    (fun s ->
      let b = Metrics.bucket_of s in
      let lo, hi = Metrics.bucket_bounds b in
      check_b (Printf.sprintf "%g lands in [%g, %g)" s lo hi) true
        (lo <= s && s < hi))
    [ 0.; 1e-10; 5e-10; 1e-9; 1.5e-9; 2e-9; 1e-6; 3.2e-4; 0.5; 1.; 60.; 1e5 ];
  (* bucket edges: 2^(i-1) ns lands in bucket i, just under in i-1 *)
  List.iter
    (fun i ->
      let lo, _ = Metrics.bucket_bounds i in
      check_i (Printf.sprintf "lower edge of bucket %d" i) i
        (Metrics.bucket_of lo);
      check_i
        (Printf.sprintf "just under the edge of bucket %d" i)
        (i - 1)
        (Metrics.bucket_of (lo *. (1. -. epsilon_float))))
    [ 2; 3; 10; 30 ]

let test_histogram_counts () =
  let r = Metrics.create ~stripes:1 () in
  let h = Metrics.histogram r "h" in
  let samples = [ 1e-9; 2e-9; 1e-6; 1e-3; 1e-3; 2. ] in
  List.iter (Metrics.observe h) samples;
  check_i "count" (List.length samples) (Metrics.histogram_count h);
  (* the sum is approximated at bucket centres: within 2x of the truth *)
  let truth = List.fold_left ( +. ) 0. samples in
  let approx = Metrics.histogram_sum h in
  check_b "sum within bucket resolution" true
    (approx >= truth /. 2. && approx <= truth *. 2.);
  check_b "q=1 bound covers the max" true
    (match Metrics.quantile h 1.0 with Some hi -> hi >= 2. | None -> false);
  check_b "q=0 bound is tiny" true
    (match Metrics.quantile h 0.0 with
    | Some hi -> hi <= 2e-9
    | None -> false)

(* --- sharded merge equality --------------------------------------- *)

let test_merge_equality () =
  (* per-worker registries merged into an accumulator equal a
     sequential registry fed the same stream: counter for counter,
     bucket for bucket *)
  let seq = Metrics.create ~stripes:1 () in
  let workers = Array.init 4 (fun _ -> Metrics.create ~stripes:1 ()) in
  let rnd = Random.State.make [| 0x0b5 |] in
  for i = 0 to 999 do
    let w = workers.(i mod 4) in
    let n = Random.State.int rnd 5 in
    Metrics.add (Metrics.counter seq "c") n;
    Metrics.add (Metrics.counter w "c") n;
    let s = Random.State.float rnd 1e-3 in
    Metrics.observe (Metrics.histogram seq "h") s;
    Metrics.observe (Metrics.histogram w "h") s
  done;
  let acc = Metrics.create ~stripes:1 () in
  Array.iter (fun w -> Metrics.merge ~into:acc w) workers;
  check_i "counter totals equal"
    (Metrics.counter_value (Metrics.counter seq "c"))
    (Metrics.counter_value (Metrics.counter acc "c"));
  Alcotest.(check (list (pair int int)))
    "histogram buckets equal"
    (Metrics.histogram_buckets (Metrics.histogram seq "h"))
    (Metrics.histogram_buckets (Metrics.histogram acc "h"));
  check_i "histogram counts equal"
    (Metrics.histogram_count (Metrics.histogram seq "h"))
    (Metrics.histogram_count (Metrics.histogram acc "h"))

let test_counter_exact_parallel () =
  (* counters are atomic per stripe, so totals are exact at any level
     of parallelism *)
  let r = Metrics.create () in
  let c = Metrics.counter r "c" in
  let ds =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Metrics.incr c
            done))
  in
  Array.iter Domain.join ds;
  check_i "4 domains x 10k increments" 40_000 (Metrics.counter_value c)

(* --- event JSON round-trips --------------------------------------- *)

let rand () = Random.State.make [| 0x0b5e; 7 |]
let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(rand ()) t

(* Floats constrained to integer values so the %.12g writer is exact
   and structural equality is the right round-trip check. *)
let event_gen =
  let open QCheck2.Gen in
  let name_g = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let value_g =
    oneof
      [
        map (fun s -> Event.Str s) name_g;
        map (fun i -> Event.Int i) (int_range (-1000) 1000);
        map (fun i -> Event.Float (float_of_int i)) (int_range 0 1_000_000);
        map (fun b -> Event.Bool b) bool;
      ]
  in
  map
    (fun ((kind, name, id, parent), (domain, ts, attrs)) ->
      let name = if kind = Event.End then "" else name in
      let id =
        match kind with Event.Begin | Event.End -> abs id | _ -> -1
      in
      {
        Event.kind;
        name;
        id;
        parent = (if kind = Event.Begin then parent else -1);
        domain;
        ts = float_of_int ts;
        attrs;
      })
    (pair
       (quad
          (oneofl [ Event.Begin; Event.End; Event.Instant; Event.Counter ])
          name_g (int_range 0 10_000) (int_range (-1) 50))
       (triple (int_range 0 8) (int_range 0 1_000_000)
          (small_list (pair name_g value_g))))

let print_event e = Json.to_string (Event.to_json e)

let event_roundtrip =
  to_alcotest
    (QCheck2.Test.make ~name:"event JSON round-trips" ~count:500
       ~print:print_event event_gen (fun e ->
         match Json.of_string (print_event e) with
         | Error _ -> false
         | Ok j -> (
             match Event.of_json j with Ok e' -> e = e' | Error _ -> false)))

(* --- span-log well-formedness over random corpus runs ------------- *)

(* The three structural invariants [drfopt report] relies on: every
   [End] matches an earlier [Begin] (at most once), every recorded
   parent is a span that began no later, and each domain's timestamps
   are monotone in emission order. *)
let wellformed (events : Event.t list) =
  let begins = Hashtbl.create 64 and ended = Hashtbl.create 64 in
  let doms : (int, float) Hashtbl.t = Hashtbl.create 8 in
  List.for_all
    (fun (e : Event.t) ->
      let monotone =
        match Hashtbl.find_opt doms e.domain with
        | Some prev when e.ts < prev -> false
        | _ ->
            Hashtbl.replace doms e.domain e.ts;
            true
      in
      monotone
      &&
      match e.kind with
      | Event.Begin ->
          Hashtbl.replace begins e.id e.ts;
          (match Hashtbl.find_opt begins e.parent with
          | _ when e.parent = -1 -> true
          | Some pts -> pts <= e.ts
          | None -> false)
      | Event.End ->
          if Hashtbl.mem ended e.id then false
          else begin
            Hashtbl.replace ended e.id ();
            match Hashtbl.find_opt begins e.id with
            | Some bts -> bts <= e.ts
            | None -> false
          end
      | Event.Instant | Event.Counter -> true)
    events

let traced_events jobs p =
  Tracer.start Tracer.Memory;
  match
    ignore (Interp.behaviours ~fuel:24 ~jobs p);
    ignore (Interp.is_drf ~fuel:24 ~jobs p)
  with
  | () -> Tracer.stop ()
  | exception e ->
      ignore (Tracer.stop () : Event.t list);
      raise e

let span_log_wellformed jobs =
  to_alcotest
    (QCheck2.Test.make
       ~name:(Printf.sprintf "span logs well-formed at jobs %d" jobs)
       ~count:15 ~print:Generators.print_program Generators.program (fun p ->
         let evs = traced_events jobs p in
         evs <> [] && wellformed evs))

(* --- report aggregation ------------------------------------------- *)

let ev ?(name = "") ?(id = -1) ?(parent = -1) ?(domain = 0) ?(attrs = []) kind
    ts =
  { Event.kind; name; id; parent; domain; ts; attrs }

let test_report_aggregate () =
  let events =
    [
      ev Event.Begin ~name:"pipeline" ~id:0 0.0;
      ev Event.Begin ~name:"pass" ~id:1 ~parent:0
        ~attrs:[ ("pass", Event.Str "cse") ]
        0.001;
      ev Event.End ~id:1
        ~attrs:[ ("sites", Event.Int 2); ("verdict", Event.Str "ok") ]
        0.004;
      ev Event.Begin ~name:"pass" ~id:2 ~parent:0 0.005;
      ev Event.End ~id:2 0.006;
      ev Event.Begin ~name:"orphan" ~id:3 0.007;
      ev Event.End ~id:0 0.008;
      ev Event.Counter ~name:"explorer.states"
        ~attrs:[ ("v", Event.Float 10.) ]
        0.009;
      ev Event.Counter ~name:"explorer.states"
        ~attrs:[ ("v", Event.Float 24.) ]
        0.010;
    ]
  in
  let t = Report.aggregate events in
  check_i "events" 9 t.Report.events;
  check_i "spans" 4 (List.length t.Report.spans);
  check_b "wall is the last ts" true (abs_float (t.Report.wall -. 0.010) < 1e-9);
  (* the orphan span (no end) is excluded from phase walls *)
  let walls = Report.phase_walls t in
  check_b "pipeline wall" true
    (match List.find_opt (fun (n, _, _) -> n = "pipeline") walls with
    | Some (_, 1, w) -> abs_float (w -. 0.008) < 1e-9
    | _ -> false);
  check_b "pass wall folds both spans" true
    (match List.find_opt (fun (n, _, _) -> n = "pass") walls with
    | Some (_, 2, w) -> abs_float (w -. 0.004) < 1e-9
    | _ -> false);
  check_b "orphan excluded" true
    (not (List.exists (fun (n, _, _) -> n = "orphan") walls));
  (* end-side attributes shadow begin-side; counters keep the last value *)
  let pass1 = List.nth t.Report.spans 1 in
  check_b "merged attrs" true
    (Report.span_attr pass1 "verdict" = Some (Event.Str "ok")
    && Report.span_attr pass1 "pass" = Some (Event.Str "cse"));
  check_b "counter final value" true
    (t.Report.counters = [ ("explorer.states", 24.) ])

(* --- stats-as-view equality --------------------------------------- *)

let test_stats_registry_roundtrip () =
  (* Explorer stats published into a registry and read back are the
     same stats: the compatibility view [--stats] renders through *)
  let s = Explorer.create_stats () in
  s.Explorer.states <- 1234;
  s.Explorer.edges <- 5678;
  s.Explorer.memo_hits <- 42;
  s.Explorer.por_cuts <- 7;
  s.Explorer.peak_frontier <- 99;
  s.Explorer.wall <- 0.5;
  s.Explorer.domains <- 2;
  let r = Metrics.create ~stripes:1 () in
  Explorer.publish ~into:r s;
  let s' = Explorer.of_registry r in
  check_b "round-trips through a registry" true
    (s'.Explorer.states = s.Explorer.states
    && s'.Explorer.edges = s.Explorer.edges
    && s'.Explorer.memo_hits = s.Explorer.memo_hits
    && s'.Explorer.por_cuts = s.Explorer.por_cuts
    && s'.Explorer.peak_frontier = s.Explorer.peak_frontier
    && s'.Explorer.domains = s.Explorer.domains
    && abs_float (s'.Explorer.wall -. s.Explorer.wall) < 1e-9)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "bucket round-trip" `Quick test_bucket_roundtrip;
          Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
          Alcotest.test_case "sharded merge equality" `Quick
            test_merge_equality;
          Alcotest.test_case "parallel counter exactness" `Quick
            test_counter_exact_parallel;
          Alcotest.test_case "stats registry round-trip" `Quick
            test_stats_registry_roundtrip;
        ] );
      ("events", [ event_roundtrip ]);
      ( "spans",
        [ span_log_wellformed 1; span_log_wellformed 2 ] );
      ( "report",
        [ Alcotest.test_case "aggregation" `Quick test_report_aggregate ] );
    ]
