(* The lib/obs telemetry layer: histogram bucketing, sharded-merge
   equality, counter exactness under real domains, event JSON
   round-trips, span-log well-formedness over random corpus runs at
   --jobs 1 and --jobs 2, and report aggregation. *)

open Safeopt_exec
open Safeopt_lang
open Safeopt_gen
module Metrics = Safeopt_obs.Metrics
module Tracer = Safeopt_obs.Tracer
module Event = Safeopt_obs.Event
module Report = Safeopt_obs.Report
module Json = Safeopt_obs.Json
module Snapshot = Safeopt_obs.Snapshot
module Profile = Safeopt_obs.Profile
module Bench_diff = Safeopt_obs.Bench_diff

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* --- histograms --------------------------------------------------- *)

let test_bucket_roundtrip () =
  List.iter
    (fun s ->
      let b = Metrics.bucket_of s in
      let lo, hi = Metrics.bucket_bounds b in
      check_b (Printf.sprintf "%g lands in [%g, %g)" s lo hi) true
        (lo <= s && s < hi))
    [ 0.; 1e-10; 5e-10; 1e-9; 1.5e-9; 2e-9; 1e-6; 3.2e-4; 0.5; 1.; 60.; 1e5 ];
  (* bucket edges: 2^(i-1) ns lands in bucket i, just under in i-1 *)
  List.iter
    (fun i ->
      let lo, _ = Metrics.bucket_bounds i in
      check_i (Printf.sprintf "lower edge of bucket %d" i) i
        (Metrics.bucket_of lo);
      check_i
        (Printf.sprintf "just under the edge of bucket %d" i)
        (i - 1)
        (Metrics.bucket_of (lo *. (1. -. epsilon_float))))
    [ 2; 3; 10; 30 ]

let test_histogram_counts () =
  let r = Metrics.create ~stripes:1 () in
  let h = Metrics.histogram r "h" in
  let samples = [ 1e-9; 2e-9; 1e-6; 1e-3; 1e-3; 2. ] in
  List.iter (Metrics.observe h) samples;
  check_i "count" (List.length samples) (Metrics.histogram_count h);
  (* the sum is approximated at bucket centres: within 2x of the truth *)
  let truth = List.fold_left ( +. ) 0. samples in
  let approx = Metrics.histogram_sum h in
  check_b "sum within bucket resolution" true
    (approx >= truth /. 2. && approx <= truth *. 2.);
  check_b "q=1 bound covers the max" true
    (match Metrics.quantile h 1.0 with Some hi -> hi >= 2. | None -> false);
  check_b "q=0 bound is tiny" true
    (match Metrics.quantile h 0.0 with
    | Some hi -> hi <= 2e-9
    | None -> false)

let test_quantile_edges () =
  let r = Metrics.create ~stripes:1 () in
  let empty = Metrics.histogram r "empty" in
  check_b "empty histogram has no quantile" true
    (Metrics.quantile empty 0.5 = None);
  let h = Metrics.histogram r "h" in
  List.iter (Metrics.observe h) [ 1e-6; 1e-6; 1e-3; 1. ];
  let first = snd (Metrics.bucket_bounds (Metrics.bucket_of 1e-6)) in
  let last = snd (Metrics.bucket_bounds (Metrics.bucket_of 1.)) in
  check_b "p=0 is the first occupied bucket" true
    (Metrics.quantile h 0. = Some first);
  check_b "p=1 is the last occupied bucket" true
    (Metrics.quantile h 1. = Some last);
  check_b "p<0 clamps to the first occupied bucket" true
    (Metrics.quantile h (-3.) = Some first);
  check_b "p>1 clamps to the last occupied bucket" true
    (Metrics.quantile h 7. = Some last);
  check_b "nan clamps to the last occupied bucket" true
    (Metrics.quantile h Float.nan = Some last)

(* --- sharded merge equality --------------------------------------- *)

let test_merge_equality () =
  (* per-worker registries merged into an accumulator equal a
     sequential registry fed the same stream: counter for counter,
     bucket for bucket *)
  let seq = Metrics.create ~stripes:1 () in
  let workers = Array.init 4 (fun _ -> Metrics.create ~stripes:1 ()) in
  let rnd = Random.State.make [| 0x0b5 |] in
  for i = 0 to 999 do
    let w = workers.(i mod 4) in
    let n = Random.State.int rnd 5 in
    Metrics.add (Metrics.counter seq "c") n;
    Metrics.add (Metrics.counter w "c") n;
    let s = Random.State.float rnd 1e-3 in
    Metrics.observe (Metrics.histogram seq "h") s;
    Metrics.observe (Metrics.histogram w "h") s
  done;
  let acc = Metrics.create ~stripes:1 () in
  Array.iter (fun w -> Metrics.merge ~into:acc w) workers;
  check_i "counter totals equal"
    (Metrics.counter_value (Metrics.counter seq "c"))
    (Metrics.counter_value (Metrics.counter acc "c"));
  Alcotest.(check (list (pair int int)))
    "histogram buckets equal"
    (Metrics.histogram_buckets (Metrics.histogram seq "h"))
    (Metrics.histogram_buckets (Metrics.histogram acc "h"));
  check_i "histogram counts equal"
    (Metrics.histogram_count (Metrics.histogram seq "h"))
    (Metrics.histogram_count (Metrics.histogram acc "h"))

let test_counter_exact_parallel () =
  (* counters are atomic per stripe, so totals are exact at any level
     of parallelism *)
  let r = Metrics.create () in
  let c = Metrics.counter r "c" in
  let ds =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Metrics.incr c
            done))
  in
  Array.iter Domain.join ds;
  check_i "4 domains x 10k increments" 40_000 (Metrics.counter_value c)

(* --- event JSON round-trips --------------------------------------- *)

let rand () = Random.State.make [| 0x0b5e; 7 |]
let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(rand ()) t

(* Floats constrained to integer values so the %.12g writer is exact
   and structural equality is the right round-trip check. *)
let event_gen =
  let open QCheck2.Gen in
  let name_g = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let value_g =
    oneof
      [
        map (fun s -> Event.Str s) name_g;
        map (fun i -> Event.Int i) (int_range (-1000) 1000);
        map (fun i -> Event.Float (float_of_int i)) (int_range 0 1_000_000);
        map (fun b -> Event.Bool b) bool;
      ]
  in
  map
    (fun ((kind, name, id, parent), (domain, ts, attrs)) ->
      let name = if kind = Event.End then "" else name in
      let id =
        match kind with Event.Begin | Event.End -> abs id | _ -> -1
      in
      {
        Event.kind;
        name;
        id;
        parent = (if kind = Event.Begin then parent else -1);
        domain;
        ts = float_of_int ts;
        attrs;
      })
    (pair
       (quad
          (oneofl [ Event.Begin; Event.End; Event.Instant; Event.Counter ])
          name_g (int_range 0 10_000) (int_range (-1) 50))
       (triple (int_range 0 8) (int_range 0 1_000_000)
          (small_list (pair name_g value_g))))

let print_event e = Json.to_string (Event.to_json e)

let event_roundtrip =
  to_alcotest
    (QCheck2.Test.make ~name:"event JSON round-trips" ~count:500
       ~print:print_event event_gen (fun e ->
         match Json.of_string (print_event e) with
         | Error _ -> false
         | Ok j -> (
             match Event.of_json j with Ok e' -> e = e' | Error _ -> false)))

(* --- span-log well-formedness over random corpus runs ------------- *)

(* The three structural invariants [drfopt report] relies on: every
   [End] matches an earlier [Begin] (at most once), every recorded
   parent is a span that began no later, and each domain's timestamps
   are monotone in emission order. *)
let wellformed (events : Event.t list) =
  let begins = Hashtbl.create 64 and ended = Hashtbl.create 64 in
  let doms : (int, float) Hashtbl.t = Hashtbl.create 8 in
  List.for_all
    (fun (e : Event.t) ->
      let monotone =
        match Hashtbl.find_opt doms e.domain with
        | Some prev when e.ts < prev -> false
        | _ ->
            Hashtbl.replace doms e.domain e.ts;
            true
      in
      monotone
      &&
      match e.kind with
      | Event.Begin ->
          Hashtbl.replace begins e.id e.ts;
          (match Hashtbl.find_opt begins e.parent with
          | _ when e.parent = -1 -> true
          | Some pts -> pts <= e.ts
          | None -> false)
      | Event.End ->
          if Hashtbl.mem ended e.id then false
          else begin
            Hashtbl.replace ended e.id ();
            match Hashtbl.find_opt begins e.id with
            | Some bts -> bts <= e.ts
            | None -> false
          end
      | Event.Instant | Event.Counter -> true)
    events

let traced_events jobs p =
  Tracer.start Tracer.Memory;
  match
    ignore (Interp.behaviours ~fuel:24 ~jobs p);
    ignore (Interp.is_drf ~fuel:24 ~jobs p)
  with
  | () -> Tracer.stop ()
  | exception e ->
      ignore (Tracer.stop () : Event.t list);
      raise e

let span_log_wellformed jobs =
  to_alcotest
    (QCheck2.Test.make
       ~name:(Printf.sprintf "span logs well-formed at jobs %d" jobs)
       ~count:15 ~print:Generators.print_program Generators.program (fun p ->
         let evs = traced_events jobs p in
         evs <> [] && wellformed evs))

(* --- report aggregation ------------------------------------------- *)

let ev ?(name = "") ?(id = -1) ?(parent = -1) ?(domain = 0) ?(attrs = []) kind
    ts =
  { Event.kind; name; id; parent; domain; ts; attrs }

let test_report_aggregate () =
  let events =
    [
      ev Event.Begin ~name:"pipeline" ~id:0 0.0;
      ev Event.Begin ~name:"pass" ~id:1 ~parent:0
        ~attrs:[ ("pass", Event.Str "cse") ]
        0.001;
      ev Event.End ~id:1
        ~attrs:[ ("sites", Event.Int 2); ("verdict", Event.Str "ok") ]
        0.004;
      ev Event.Begin ~name:"pass" ~id:2 ~parent:0 0.005;
      ev Event.End ~id:2 0.006;
      ev Event.Begin ~name:"orphan" ~id:3 0.007;
      ev Event.End ~id:0 0.008;
      ev Event.Counter ~name:"explorer.states"
        ~attrs:[ ("v", Event.Float 10.) ]
        0.009;
      ev Event.Counter ~name:"explorer.states"
        ~attrs:[ ("v", Event.Float 24.) ]
        0.010;
    ]
  in
  let t = Report.aggregate events in
  check_i "events" 9 t.Report.events;
  check_i "spans" 4 (List.length t.Report.spans);
  check_b "wall is the last ts" true (abs_float (t.Report.wall -. 0.010) < 1e-9);
  (* the orphan span (no end) is excluded from phase walls *)
  let walls = Report.phase_walls t in
  check_b "pipeline wall" true
    (match List.find_opt (fun (n, _, _) -> n = "pipeline") walls with
    | Some (_, 1, w) -> abs_float (w -. 0.008) < 1e-9
    | _ -> false);
  check_b "pass wall folds both spans" true
    (match List.find_opt (fun (n, _, _) -> n = "pass") walls with
    | Some (_, 2, w) -> abs_float (w -. 0.004) < 1e-9
    | _ -> false);
  check_b "orphan excluded" true
    (not (List.exists (fun (n, _, _) -> n = "orphan") walls));
  (* end-side attributes shadow begin-side; counters keep the last value *)
  let pass1 = List.nth t.Report.spans 1 in
  check_b "merged attrs" true
    (Report.span_attr pass1 "verdict" = Some (Event.Str "ok")
    && Report.span_attr pass1 "pass" = Some (Event.Str "cse"));
  check_b "counter final value" true
    (t.Report.counters = [ ("explorer.states", 24.) ])

(* --- span-tree profiles ------------------------------------------- *)

let close f g = abs_float (f -. g) < 1e-9

let test_profile_self_total () =
  let events =
    [
      ev Event.Begin ~name:"pipeline" ~id:0 0.0;
      ev Event.Begin ~name:"pass" ~id:1 ~parent:0 0.001;
      ev Event.End ~id:1 0.004;
      ev Event.Begin ~name:"pass" ~id:2 ~parent:0 0.005;
      ev Event.End ~id:2 0.006;
      ev Event.End ~id:0 0.010;
    ]
  in
  (match Profile.aggregate events with
  | [ a; b ] ->
      (* pipeline: total 10ms, self 10 - 4 = 6ms; pass: 2 spans, total
         and self both 4ms *)
      check_b "pipeline row" true
        (a.Profile.a_name = "pipeline" && a.Profile.a_count = 1
        && close a.Profile.a_total 0.010
        && close a.Profile.a_self 0.006);
      check_b "pass row" true
        (b.Profile.a_name = "pass" && b.Profile.a_count = 2
        && close b.Profile.a_total 0.004
        && close b.Profile.a_self 0.004)
  | rows ->
      Alcotest.failf "expected 2 aggregate rows, got %d" (List.length rows));
  Alcotest.(check (list (pair string int)))
    "collapsed stacks, self-weighted, lexicographic"
    [ ("pipeline", 6000); ("pipeline;pass", 4000) ]
    (Profile.collapsed events)

let test_profile_tiebreak_and_clamp () =
  (* equal self times order by name; an unclosed span is clamped to the
     stream's last timestamp *)
  let events =
    [
      ev Event.Begin ~name:"b" ~id:0 0.0;
      ev Event.End ~id:0 0.002;
      ev Event.Begin ~name:"a" ~id:1 0.010;
      ev Event.End ~id:1 0.012;
      ev Event.Begin ~name:"orphan" ~id:2 0.014;
      ev Event.Instant ~name:"tick" 0.017;
    ]
  in
  match Profile.aggregate events with
  | [ o; a; b ] ->
      check_b "unclosed span clamps to last ts" true
        (o.Profile.a_name = "orphan" && close o.Profile.a_self 0.003);
      check_b "equal self ties break by name" true
        (a.Profile.a_name = "a" && b.Profile.a_name = "b")
  | rows ->
      Alcotest.failf "expected 3 aggregate rows, got %d" (List.length rows)

(* --- bench diff ---------------------------------------------------- *)

let bench_doc ?(wall = 1.0) ?(claim = true) rate =
  Json.Obj
    [
      ("schema", Json.String "bench_test/v1");
      ( "experiments",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String "e1");
                ("wall_s", Json.Float wall);
                ("units_per_sec", Json.Float rate);
              ];
          ] );
      ("claim_ok", Json.Bool claim);
    ]

let run_diff ?min_wall old_json new_json =
  match Bench_diff.diff ?min_wall ~old_json ~new_json () with
  | Ok t -> t
  | Error e -> Alcotest.failf "diff failed: %s" e

let test_bench_diff_verdicts () =
  let old_json = bench_doc 1000. in
  check_b "identical docs do not regress" false
    (Bench_diff.regressed (run_diff old_json old_json));
  let t = run_diff old_json (bench_doc 400.) in
  check_b "rate drop beyond threshold regresses" true
    (Bench_diff.regressed t
    && List.exists
         (fun r ->
           match r.Bench_diff.r_status with
           | Bench_diff.Regressed d -> close d 0.6
           | _ -> false)
         t.Bench_diff.rows);
  check_b "rate gain does not regress" false
    (Bench_diff.regressed (run_diff old_json (bench_doc 2000.)));
  check_b "sub-floor walls are noise, not regressions" false
    (Bench_diff.regressed
       (run_diff (bench_doc ~wall:0.001 1000.) (bench_doc ~wall:0.001 400.)));
  check_b "a broken boolean claim regresses regardless of rates" true
    (Bench_diff.regressed (run_diff old_json (bench_doc ~claim:false 1000.)));
  check_b "documents with no comparable point error out" true
    (match
       Bench_diff.diff
         ~old_json:(Json.Obj [ ("x", Json.String "y") ])
         ~new_json:(Json.Obj [ ("x", Json.String "y") ])
         ()
     with
    | Error _ -> true
    | Ok _ -> false)

(* --- heartbeat snapshots under live exploration -------------------- *)

let snapshot_progress () =
  let s = Explorer.live_progress () in
  [
    ("states", Json.Int s.Explorer.states);
    ("edges", Json.Int s.Explorer.edges);
  ]

(* Run a traced exploration with a 1ms heartbeat; return the parsed
   snapshot lines and the end-of-run registry view. *)
let heartbeat_run jobs p =
  let path = Filename.temp_file "hb" ".jsonl" in
  Metrics.reset_global ();
  Metrics.set_enabled true;
  let finish () =
    Snapshot.stop ();
    Metrics.set_enabled false
  in
  (match
     Snapshot.start ~path ~interval_ms:1 snapshot_progress;
     ignore (Interp.behaviours ~fuel:24 ~jobs p)
   with
  | () -> finish ()
  | exception e ->
      finish ();
      Sys.remove path;
      raise e);
  let lines = Snapshot.read_file path in
  let final = Explorer.of_registry Metrics.global in
  Metrics.reset_global ();
  Sys.remove path;
  (lines, final)

let snapshot_invariants jobs =
  to_alcotest
    (QCheck2.Test.make
       ~name:
         (Printf.sprintf "heartbeats monotone, final = registry at jobs %d"
            jobs)
       ~count:10 ~print:Generators.print_program Generators.program (fun p ->
         match heartbeat_run jobs p with
         | Error e, _ -> QCheck2.Test.fail_reportf "unreadable heartbeat: %s" e
         | Ok lines, final ->
             let states l =
               Option.value ~default:(-1) (Snapshot.progress_int l "states")
             in
             let edges l =
               Option.value ~default:(-1) (Snapshot.progress_int l "edges")
             in
             let rec monotone = function
               | a :: (b :: _ as rest) ->
                   states a <= states b && edges a <= edges b
                   && a.Snapshot.l_seq < b.Snapshot.l_seq
                   && monotone rest
               | _ -> true
             in
             let last = List.nth lines (List.length lines - 1) in
             let metric name =
               Option.bind
                 (Option.bind
                    (Json.member "counters" last.Snapshot.l_metrics)
                    (Json.member name))
                 Json.to_int
             in
             lines <> [] && monotone lines
             (* the final line (written by [stop] after the run
                published everything) agrees with the registry, both in
                the progress view and in the frozen metrics object *)
             && states last = final.Explorer.states
             && edges last = final.Explorer.edges
             && metric "explorer.states" = Some final.Explorer.states
             && metric "explorer.edges" = Some final.Explorer.edges))

(* --- stats-as-view equality --------------------------------------- *)

let test_stats_registry_roundtrip () =
  (* Explorer stats published into a registry and read back are the
     same stats: the compatibility view [--stats] renders through *)
  let s = Explorer.create_stats () in
  s.Explorer.states <- 1234;
  s.Explorer.edges <- 5678;
  s.Explorer.memo_hits <- 42;
  s.Explorer.por_cuts <- 7;
  s.Explorer.peak_frontier <- 99;
  s.Explorer.wall <- 0.5;
  s.Explorer.domains <- 2;
  let r = Metrics.create ~stripes:1 () in
  Explorer.publish ~into:r s;
  let s' = Explorer.of_registry r in
  check_b "round-trips through a registry" true
    (s'.Explorer.states = s.Explorer.states
    && s'.Explorer.edges = s.Explorer.edges
    && s'.Explorer.memo_hits = s.Explorer.memo_hits
    && s'.Explorer.por_cuts = s.Explorer.por_cuts
    && s'.Explorer.peak_frontier = s.Explorer.peak_frontier
    && s'.Explorer.domains = s.Explorer.domains
    && abs_float (s'.Explorer.wall -. s.Explorer.wall) < 1e-9)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "bucket round-trip" `Quick test_bucket_roundtrip;
          Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
          Alcotest.test_case "quantile edge cases" `Quick test_quantile_edges;
          Alcotest.test_case "sharded merge equality" `Quick
            test_merge_equality;
          Alcotest.test_case "parallel counter exactness" `Quick
            test_counter_exact_parallel;
          Alcotest.test_case "stats registry round-trip" `Quick
            test_stats_registry_roundtrip;
        ] );
      ("events", [ event_roundtrip ]);
      ( "spans",
        [ span_log_wellformed 1; span_log_wellformed 2 ] );
      ( "report",
        [ Alcotest.test_case "aggregation" `Quick test_report_aggregate ] );
      ( "profile",
        [
          Alcotest.test_case "self vs total" `Quick test_profile_self_total;
          Alcotest.test_case "tie-break and clamp" `Quick
            test_profile_tiebreak_and_clamp;
        ] );
      ( "bench-diff",
        [ Alcotest.test_case "verdicts" `Quick test_bench_diff_verdicts ] );
      ( "heartbeat",
        [ snapshot_invariants 1; snapshot_invariants 4 ] );
    ]
