(* The static analysis layer: CFG construction, the dataflow fixpoint,
   locksets, and the static race detector — including the empirical
   soundness property static-DRF => exhaustive-DRF over generated
   programs. *)

open Safeopt_trace
open Safeopt_lang
open Safeopt_analysis
open Helpers

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* --- cfg -------------------------------------------------------------- *)

let cfg_of src = Cfg.of_thread (List.hd (parse src).Ast.threads)

let count_instr p g =
  List.length (List.filter (fun e -> p e.Cfg.instr) g.Cfg.edges)

let test_cfg_straightline () =
  let g = cfg_of "thread { x := r1; r2 := y; skip; }" in
  check_i "three edges" 3 (List.length g.Cfg.edges);
  check_i "one store" 1
    (count_instr (function Cfg.Store _ -> true | _ -> false) g);
  check_i "one load" 1
    (count_instr (function Cfg.Load _ -> true | _ -> false) g);
  (* edges form a chain from entry to exit *)
  let succs = Cfg.succs g in
  check_i "entry out-degree" 1 (List.length succs.(g.Cfg.entry));
  check_i "exit out-degree" 0 (List.length succs.(g.Cfg.exit_node))

let test_cfg_if () =
  let g = cfg_of "thread { if (r1 == 0) { x := r1; } else { y := r1; } }" in
  check_i "two assume edges" 2
    (count_instr (function Cfg.Assume _ -> true | _ -> false) g);
  check_i "two stores" 2
    (count_instr (function Cfg.Store _ -> true | _ -> false) g);
  (* both branches rejoin: exit reachable from entry on both paths *)
  let preds = Cfg.preds g in
  check_i "join in-degree" 2 (List.length preds.(g.Cfg.exit_node))

let test_cfg_while () =
  let g = cfg_of "thread { while (r1 != 1) { r1 := x; } }" in
  check_i "assume true+false" 2
    (count_instr (function Cfg.Assume _ -> true | _ -> false) g);
  (* the loop body feeds back: some node has in-degree 2 (header) *)
  let preds = Cfg.preds g in
  let has_header =
    Array.exists (fun es -> List.length es >= 2) preds
  in
  check_b "loop header has two predecessors" true has_header

let test_cfg_paths () =
  let g = cfg_of "thread { x := r1; if (r2 == 0) { y := r1; } else { skip; } }" in
  let store_paths =
    List.filter_map
      (fun e ->
        match e.Cfg.instr with Cfg.Store _ -> Some e.Cfg.path | _ -> None)
      g.Cfg.edges
  in
  (* the parser wraps branches in a Block, hence the extra 0 *)
  Alcotest.(check (list (list int)))
    "paths locate statements" [ [ 0 ]; [ 1; 0; 0 ] ] store_paths

(* --- dataflow --------------------------------------------------------- *)

(* Reaching-monitors as a may-analysis instance: exercises the functor
   with union, the dual of the lockset instance. *)
module May = Dataflow.Make (struct
  type t = Monitor.Set.t

  let equal = Monitor.Set.equal
  let join = Monitor.Set.union

  let pp ppf s =
    Fmt.(braces (list ~sep:comma Monitor.pp)) ppf (Monitor.Set.elements s)
end)

let may_transfer (e : Cfg.edge) held =
  match e.Cfg.instr with
  | Cfg.Lock m -> Monitor.Set.add m held
  | _ -> held

let test_dataflow_fixpoint () =
  (* in a loop alternating lock/unlock, must-held at exit is empty but
     may-locked is {m} *)
  let g = cfg_of "thread { while (r1 != 1) { lock m; r1 := x; unlock m; } }" in
  let must = Lockset.held_at g in
  let may = May.forward g ~init:Monitor.Set.empty ~transfer:may_transfer in
  (match must.(g.Cfg.exit_node) with
  | Some s -> check_b "must-held at exit empty" true (Monitor.Set.is_empty s)
  | None -> Alcotest.fail "exit unreachable");
  match may.(g.Cfg.exit_node) with
  | Some s -> check_b "may-locked at exit = {m}" true (Monitor.Set.mem "m" s)
  | None -> Alcotest.fail "exit unreachable"

let test_dataflow_backward () =
  (* backward from exit: nodes after an infinite-loop-free chain all
     reach the exit *)
  let g = cfg_of "thread { x := r1; y := r1; }" in
  let back =
    May.backward g ~init:Monitor.Set.empty ~transfer:(fun _ s -> s)
  in
  check_b "entry reaches exit backwards" true (back.(g.Cfg.entry) <> None)

(* --- locksets --------------------------------------------------------- *)

let test_lockset_basic () =
  let p = parse "thread { lock m; x := r1; unlock m; r2 := y; }" in
  let accs = Lockset.program_accesses p in
  check_i "two accesses" 2 (List.length accs);
  let by_loc l = List.find (fun a -> Location.equal a.Lockset.loc l) accs in
  check_b "x under m" true (Monitor.Set.mem "m" (by_loc "x").Lockset.locked);
  check_b "y unprotected" true
    (Monitor.Set.is_empty (by_loc "y").Lockset.locked)

let test_lockset_branch_meet () =
  (* lock only on one branch: the join point must drop it *)
  let p =
    parse
      "thread { if (r1 == 0) { lock m; skip; } else { skip; } x := r1; }"
  in
  let accs = Lockset.program_accesses p in
  let x = List.find (fun a -> Location.equal a.Lockset.loc "x") accs in
  check_b "lockset is intersection over paths" true
    (Monitor.Set.is_empty x.Lockset.locked)

let test_lockset_nested () =
  let p = parse "thread { lock m; lock n; x := r1; unlock n; y := r1; unlock m; }" in
  let accs = Lockset.program_accesses p in
  let by_loc l = List.find (fun a -> Location.equal a.Lockset.loc l) accs in
  check_i "x under both" 2 (Monitor.Set.cardinal (by_loc "x").Lockset.locked);
  check_b "y under m only" true
    (Monitor.Set.equal (Monitor.Set.singleton "m") (by_loc "y").Lockset.locked)

let test_summaries () =
  let p = parse "thread { x := r1; r2 := y; }\nthread { r3 := x; }" in
  match Lockset.summarise p with
  | [ s0; s1 ] ->
      check_b "t0 writes x" true (Location.Set.mem "x" s0.Lockset.writes);
      check_b "t0 reads y" true (Location.Set.mem "y" s0.Lockset.reads);
      check_b "t1 reads x" true (Location.Set.mem "x" s1.Lockset.reads);
      check_b "t1 writes nothing" true (Location.Set.is_empty s1.Lockset.writes)
  | _ -> Alcotest.fail "expected two summaries"

let test_source_window () =
  let p = parse "thread { lock m; x := r1; unlock m; }" in
  let accs = Lockset.program_accesses p in
  let a = List.hd accs in
  let win = Lockset.source_window (List.hd p.Ast.threads) a.Lockset.path in
  check_b "window marks the access" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = '>') win);
  check_b "window shows context" true
    (List.exists (fun l -> contains_substring l "lock m") win)

(* --- static race detection ------------------------------------------- *)

let test_locked_counter_certified () =
  let p =
    parse
      "thread { lock m; r1 := c; c := r1; unlock m; }\n\
       thread { lock m; r2 := c; c := r2; unlock m; }"
  in
  check_b "lock-protected counter certified" true (Static_race.certified_drf p)

let test_store_store_race () =
  let p = parse "thread { x := r1; }\nthread { x := r2; }" in
  let r = Static_race.analyse p in
  check_i "one race pair" 1 (List.length r.Static_race.races);
  let pr = List.hd r.Static_race.races in
  check_b "pair on x" true
    (Location.equal pr.Static_race.fst_access.Lockset.loc "x");
  check_b "cross-thread" false
    (Thread_id.equal pr.Static_race.fst_access.Lockset.tid
       pr.Static_race.snd_access.Lockset.tid)

let test_race_pairs_deduped_oriented () =
  (* many conflicting accesses across three threads: each unordered
     pair reported exactly once (never both (a,b) and (b,a)), oriented
     with the earlier source window first, in source order *)
  let p =
    parse
      "thread { x := r1; r2 := x; }\n\
       thread { x := r3; }\n\
       thread { r4 := x; x := r5; }"
  in
  let r = Static_race.analyse p in
  let key (a : Lockset.access) = (a.Lockset.tid, a.Lockset.site) in
  let pkey pr =
    (key pr.Static_race.fst_access, key pr.Static_race.snd_access)
  in
  let keys = List.map pkey r.Static_race.races in
  check_i "seven candidate pairs" 7 (List.length keys);
  check_i "no duplicate pairs" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  check_b "no pair reported in both orientations" true
    (List.for_all (fun (a, b) -> not (List.mem (b, a) keys)) keys);
  check_b "earlier source window first in every pair" true
    (List.for_all (fun (a, b) -> a < b) keys);
  check_b "pairs sorted in source order" true
    (List.sort compare keys = keys)

let test_volatile_only_certified () =
  let p =
    parse "volatile v;\nthread { v := r1; }\nthread { r2 := v; v := r2; }"
  in
  check_b "volatile-only program certified" true (Static_race.certified_drf p)

let test_read_read_not_race () =
  let p = parse "thread { r1 := x; }\nthread { r2 := x; }" in
  check_b "read/read never races" true (Static_race.certified_drf p)

let test_disjoint_locations_certified () =
  let p = parse "thread { x := r1; }\nthread { y := r2; }" in
  check_b "disjoint locations certified" true (Static_race.certified_drf p)

let test_different_locks_race () =
  let p =
    parse
      "thread { lock m; x := r1; unlock m; }\n\
       thread { lock n; x := r2; unlock n; }"
  in
  check_b "different locks do not protect" false (Static_race.certified_drf p)

let test_loop_certified_without_enumeration () =
  (* an unbounded loop: exhaustive enumeration would need fuel, the
     static certificate does not *)
  let p =
    parse
      "thread { while (r1 == 0) { lock m; r1 := x; x := r1; unlock m; } }\n\
       thread { lock m; x := r2; unlock m; }"
  in
  check_b "looping program certified" true (Static_race.certified_drf p)

(* --- fast path in Validate -------------------------------------------- *)

let test_validate_fast_path () =
  let p =
    parse
      "thread { lock m; c := r1; unlock m; }\nthread { lock m; r2 := c; unlock m; }"
  in
  check_b "drf_fast agrees" true (Safeopt_opt.Validate.drf_fast p);
  check_b "find_race_fast finds nothing" true
    (Safeopt_opt.Validate.find_race_fast p = None);
  let racy = parse "thread { x := r1; }\nthread { x := r2; }" in
  check_b "fallback still finds the race" true
    (Safeopt_opt.Validate.find_race_fast racy <> None)

(* --- QCheck soundness ------------------------------------------------- *)

let rand () = Random.State.make [| 0x5afe0; 43 |]
let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(rand ()) t

(* Static certification is sound: a certificate implies the exhaustive
   interleaving enumeration finds no race. *)
let static_drf_sound =
  to_alcotest
    (QCheck2.Test.make ~name:"static DRF => exhaustive DRF" ~count:500
       ~print:Safeopt_gen.Generators.print_program
       Safeopt_gen.Generators.program (fun p ->
         (not (Static_race.certified_drf p))
         || Interp.is_drf ~max_states:500_000 p))

(* Completeness of the report: every exhaustively-found race is covered
   by some reported static pair (same location, same unordered thread
   pair). *)
let races_covered =
  to_alcotest
    (QCheck2.Test.make ~name:"exhaustive races covered by static pairs"
       ~count:300 ~print:Safeopt_gen.Generators.print_program
       Safeopt_gen.Generators.program (fun p ->
         match Interp.find_race ~max_states:500_000 p with
         | None -> true
         | Some i ->
             let arr = Array.of_list i in
             let n = Array.length arr in
             let a = arr.(n - 2) and b = arr.(n - 1) in
             let loc =
               match Action.location a.Safeopt_exec.Interleaving.action with
               | Some l -> l
               | None -> Alcotest.fail "racy witness without a location"
             in
             let tids =
               [ a.Safeopt_exec.Interleaving.tid;
                 b.Safeopt_exec.Interleaving.tid ]
               |> List.sort Thread_id.compare
             in
             List.exists
               (fun pr ->
                 Location.equal pr.Static_race.fst_access.Lockset.loc loc
                 && List.sort Thread_id.compare
                      [ pr.Static_race.fst_access.Lockset.tid;
                        pr.Static_race.snd_access.Lockset.tid ]
                    = tids)
               (Static_race.analyse p).Static_race.races))

let () =
  Alcotest.run "analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "straight line" `Quick test_cfg_straightline;
          Alcotest.test_case "if forks and rejoins" `Quick test_cfg_if;
          Alcotest.test_case "while loops back" `Quick test_cfg_while;
          Alcotest.test_case "edge paths" `Quick test_cfg_paths;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "must vs may fixpoints" `Quick
            test_dataflow_fixpoint;
          Alcotest.test_case "backward direction" `Quick test_dataflow_backward;
        ] );
      ( "lockset",
        [
          Alcotest.test_case "basic locksets" `Quick test_lockset_basic;
          Alcotest.test_case "branch meet" `Quick test_lockset_branch_meet;
          Alcotest.test_case "nested monitors" `Quick test_lockset_nested;
          Alcotest.test_case "may-access summaries" `Quick test_summaries;
          Alcotest.test_case "source window" `Quick test_source_window;
        ] );
      ( "static-race",
        [
          Alcotest.test_case "locked counter certified" `Quick
            test_locked_counter_certified;
          Alcotest.test_case "store/store race reported" `Quick
            test_store_store_race;
          Alcotest.test_case "race pairs deduped and oriented" `Quick
            test_race_pairs_deduped_oriented;
          Alcotest.test_case "volatile-only certified" `Quick
            test_volatile_only_certified;
          Alcotest.test_case "read/read no race" `Quick test_read_read_not_race;
          Alcotest.test_case "disjoint locations" `Quick
            test_disjoint_locations_certified;
          Alcotest.test_case "different locks race" `Quick
            test_different_locks_race;
          Alcotest.test_case "loop certified without enumeration" `Quick
            test_loop_certified_without_enumeration;
          Alcotest.test_case "Validate fast path" `Quick test_validate_fast_path;
        ] );
      ("soundness", [ static_drf_sound; races_covered ]);
    ]
