open Safeopt_trace
open Safeopt_exec
open Safeopt_core
open Helpers

let check_b = Alcotest.(check bool)

(* Fig. 2's transformed traceset executes; unorder into T-bar
   (original + the elimination-closure trace). *)
let t_bar = Traceset.add [ st 1; w "x" 1 ] fig2_original_traceset
let mem t = Traceset.mem t t_bar

(* An execution of the transformed program where the weak behaviour
   shows up: thread 1 writes x, thread 0 relays to y, thread 1 reads
   y=1 and prints 1. *)
let i' =
  il
    [
      (1, st 1);
      (1, w "x" 1);
      (0, st 0);
      (0, r "x" 1);
      (0, w "y" 1);
      (1, r "y" 1);
      (1, ext 1);
    ]

let test_construct () =
  check_b "i' is an execution of T'" true
    (Interleaving.is_execution_of fig2_transformed_traceset i');
  match Unordering.construct_from_oracle none ~mem i' with
  | None -> Alcotest.fail "expected an unordering"
  | Some { Unordering.interleaving; f } ->
      check_b "valid unordering" true
        (Unordering.is_unordering none ~mem ~transformed:i' ~f);
      (* result is a permutation of i' *)
      Alcotest.(check int) "same length" (Interleaving.length i')
        (Interleaving.length interleaving);
      (* behaviour is preserved (sync/external order kept) *)
      Alcotest.check behaviour "behaviour" (Interleaving.behaviour i')
        (Interleaving.behaviour interleaving);
      (* per-thread traces land in T-bar *)
      check_b "thread traces in T-bar" true
        (List.for_all
           (fun tid -> mem (Interleaving.trace_of tid interleaving))
           (Interleaving.threads interleaving))

let test_checker () =
  let n = Interleaving.length i' in
  check_b "identity is an unordering only if traces are in T" false
    (Unordering.is_unordering none ~mem:(fun t ->
         Traceset.mem t fig2_original_traceset)
       ~transformed:i' ~f:(Array.init n Fun.id));
  (* identity IS an unordering into the transformed traceset itself *)
  check_b "identity into T'" true
    (Unordering.is_unordering none
       ~mem:(fun t -> Traceset.mem t fig2_transformed_traceset)
       ~transformed:i'
       ~f:(Array.init n Fun.id))

(* Theorem 2 shape on a DRF example: reorder two independent writes in
   one thread; every execution of the transformed program unorders to
   an execution of the original with the same behaviour. *)
let test_drf_unordering () =
  let orig = parse "thread { rx := 1; x := rx; y := rx; print rx; }" in
  let trans = parse "thread { rx := 1; y := rx; x := rx; print rx; }" in
  let universe = Safeopt_lang.Denote.joint_universe [ orig; trans ] in
  let ts_o = Safeopt_lang.Denote.traceset ~universe ~max_len:8 orig in
  (* per Lemma 5, unorder into the ELIMINATION CLOSURE of the original:
     the de-permuted prefixes (e.g. [S(0); W[y=1]]) arise by
     eliminating the last write W[x=1] *)
  let memo = Hashtbl.create 97 in
  let mem t =
    let key = Trace.to_string t in
    match Hashtbl.find_opt memo key with
    | Some b -> b
    | None ->
        let b = Elimination.is_member none ~original:ts_o ~universe t in
        Hashtbl.add memo key b;
        b
  in
  let execs =
    Explorer.maximal_executions (Safeopt_lang.Thread_system.make trans)
  in
  check_b "has executions" true (execs <> []);
  List.iter
    (fun e ->
      match Unordering.construct_from_oracle none ~mem e with
      | None -> Alcotest.failf "no unordering for %a" Interleaving.pp e
      | Some { Unordering.interleaving; f } ->
          check_b "valid" true
            (Unordering.is_unordering none ~mem ~transformed:e ~f);
          check_b "instance is an execution of the original" true
            (Interleaving.is_execution_of ts_o interleaving);
          Alcotest.check behaviour "behaviour preserved"
            (Interleaving.behaviour e)
            (Interleaving.behaviour interleaving))
    execs

let test_sync_order_preserved () =
  (* unordering must keep the mutual order of sync/external actions *)
  let ts =
    Traceset.of_list
      [ [ st 0; ext 1; w "x" 1; ext 2 ]; [ st 1; ext 3 ] ]
  in
  let e =
    il [ (0, st 0); (0, ext 1); (0, w "x" 1); (1, st 1); (1, ext 3); (0, ext 2) ]
  in
  match Unordering.construct_from_oracle none ~mem:(fun t -> Traceset.mem t ts) e with
  | None -> Alcotest.fail "identity unordering should exist"
  | Some { Unordering.interleaving; _ } ->
      Alcotest.check behaviour "external order kept" [ 1; 3; 2 ]
        (Interleaving.behaviour interleaving)

let () =
  Alcotest.run "unordering"
    [
      ( "unordering",
        [
          Alcotest.test_case "Fig. 2 construction" `Quick test_construct;
          Alcotest.test_case "checker" `Quick test_checker;
          Alcotest.test_case "DRF executions unorder" `Quick
            test_drf_unordering;
          Alcotest.test_case "sync/external order" `Quick
            test_sync_order_preserved;
        ] );
    ]
