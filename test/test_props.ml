(* Property-based tests (QCheck) over randomly generated traces and
   programs.  Seeded for reproducibility. *)

open Safeopt_trace
open Safeopt_exec
open Safeopt_lang
open Safeopt_gen

let rand () = Random.State.make [| 0x5afe0; 42 |]

let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(rand ()) t

let test ?(count = 100) name gen ~print prop =
  to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

(* --- traces ----------------------------------------------------------- *)

let trace_wf =
  test "generated traces are well-formed" Generators.trace
    ~print:Generators.print_trace (fun t ->
      Trace.properly_started t && Trace.well_locked t)

let trace_prefixes =
  test "prefixes are prefixes and well-formed" Generators.trace
    ~print:Generators.print_trace (fun t ->
      List.for_all
        (fun p -> Trace.is_prefix p t && Trace.well_locked p)
        (Trace.prefixes t))

let restrict_partition =
  test "restrict/complement partition dom" Generators.trace
    ~print:Generators.print_trace (fun t ->
      let keep = List.filteri (fun i _ -> i mod 2 = 0) (Trace.dom t) in
      let dropped = Trace.complement t keep in
      Trace.length (Trace.restrict t keep)
      + Trace.length (Trace.restrict t dropped)
      = Trace.length t)

let wildcard_instances =
  test "instances match their wildcard" Generators.wildcard_trace
    ~print:Wildcard.to_string (fun w ->
      Seq.for_all
        (fun t -> Wildcard.is_instance w t)
        (Wildcard.instances ~universe:[ 0; 1 ] w))

let depermute_identity =
  test "identity de-permutation" Generators.trace
    ~print:Generators.print_trace (fun t ->
      Trace.equal t
        (Safeopt_core.Reorder.depermute
           (Safeopt_core.Reorder.identity (Trace.length t))
           t))

let trace_syntax_roundtrip =
  test "trace notation round-trips" Generators.wildcard_trace
    ~print:Wildcard.to_string (fun w ->
      Wildcard.equal w (Syntax.parse_wildcard (Wildcard.to_string w)))

let eliminable_proper_subset =
  test "properly eliminable implies eliminable" Generators.wildcard_trace
    ~print:Wildcard.to_string (fun w ->
      List.for_all
        (fun i -> Safeopt_core.Eliminable.eliminable Helpers.none w i)
        (Safeopt_core.Eliminable.properly_eliminable_indices Helpers.none w))

let reorder_find_complete =
  (* the insertion search agrees with brute force over all permutations
     on short traces *)
  test ~count:60 "Reorder.find is complete on short traces" Generators.trace
    ~print:Generators.print_trace (fun t ->
      if Trace.length t > 4 then QCheck2.assume_fail ()
      else
        let n = Trace.length t in
        (* membership oracle: prefix closure of the reversed trace, an
           arbitrary but reordering-friendly target *)
        let target = Traceset.of_list [ List.rev t ] in
        let mem u = Traceset.mem u target in
        let rec perms = function
          | [] -> [ [] ]
          | l ->
              List.concat_map
                (fun x ->
                  List.map
                    (fun p -> x :: p)
                    (perms (List.filter (fun y -> y <> x) l)))
                l
        in
        let brute =
          List.exists
            (fun order ->
              let f = Array.make n 0 in
              List.iteri (fun pos k -> f.(k) <- pos) order;
              Safeopt_core.Reorder.de_permutes Helpers.none f t ~mem)
            (perms (List.init n Fun.id))
        in
        let search = Safeopt_core.Reorder.find Helpers.none t ~mem <> None in
        brute = search)

(* --- programs --------------------------------------------------------- *)

let print_program = Generators.print_program

let parser_roundtrip =
  test "parse . pp = id" Generators.program ~print:print_program (fun p ->
      Ast.equal_program p (Parser.parse_program (Pp.program_to_string p)))

let race_definitions_agree =
  test ~count:60 "adjacent-race iff hb-race over all executions"
    Generators.program ~print:print_program (fun p ->
      let vol = p.Ast.volatile in
      match Interp.maximal_executions ~max_steps:200_000 p with
      | execs ->
          let adj =
            List.exists
              (fun e ->
                List.exists (Race.has_adjacent_race vol) (Interleaving.prefixes e))
              execs
          in
          let hb = List.exists (Race.has_hb_race vol) execs in
          adj = hb
      | exception Explorer.Too_many_states _ -> QCheck2.assume_fail ())

let interp_agrees_with_denotation =
  test ~count:40 "interpreter behaviours = explicit-traceset behaviours"
    Generators.program ~print:print_program (fun p ->
      let max_len = Ast.program_size p + 2 in
      let universe = Denote.universe p in
      let ts = Denote.traceset ~universe ~max_len p in
      match
        ( Interp.behaviours ~max_states:200_000 p,
          Explorer.behaviours ~max_states:200_000 (Traceset_system.make ts) )
      with
      | b1, b2 -> Behaviour.Set.equal b1 b2
      | exception Explorer.Too_many_states _ -> QCheck2.assume_fail ())

let theorems_3_4 =
  test ~count:30 "safe rules preserve DRF and behaviours (Thms 3-4)"
    Generators.drf_program ~print:print_program (fun p ->
      let steps =
        Safeopt_opt.Transform.program_rewrites Safeopt_opt.Rule.all p
      in
      List.for_all
        (fun s ->
          let r =
            Safeopt_opt.Validate.validate ~max_states:200_000 ~original:p
              ~transformed:s.Safeopt_opt.Transform.after ()
          in
          Safeopt_opt.Validate.behaviours_ok r)
        steps)

let lemma4_rules_are_semantic_eliminations =
  (* Lemma 4: every syntactic elimination-rule application denotes a
     semantic elimination of the original's (bounded) traceset. *)
  test ~count:10 "Lemma 4: rule eliminations are semantic eliminations"
    Generators.drf_program ~print:print_program (fun p ->
      if Ast.program_size p > 8 then QCheck2.assume_fail ()
      else
        let steps =
          Safeopt_opt.Transform.program_rewrites Safeopt_opt.Rule.eliminations
            p
        in
        List.for_all
          (fun s ->
            let r =
              Safeopt_opt.Validate.validate_semantic
                ~max_len:(Ast.program_size p + 2)
                ~relation:Safeopt_opt.Validate.Elimination ~original:p
                ~transformed:s.Safeopt_opt.Transform.after ()
            in
            r.Safeopt_opt.Validate.relation_holds = Some true)
          steps)

let trace_preserving_passes =
  test ~count:40 "constprop and copyprop preserve behaviours and races"
    Generators.program ~print:print_program (fun p ->
      let p' =
        Safeopt_opt.Passes.copy_propagation
          (Safeopt_opt.Passes.constant_propagation p)
      in
      Behaviour.Set.equal (Interp.behaviours p) (Interp.behaviours p')
      && Interp.is_drf p = Interp.is_drf p')

let oota_lemma6 =
  test ~count:40 "values outside the program text are never output"
    Generators.program ~print:print_program (fun p ->
      (* 17 is not produced by any generator *)
      not (Interp.can_output p 17))

let tso_includes_sc =
  test ~count:30 "SC behaviours are TSO behaviours" Generators.program
    ~print:print_program (fun p ->
      Behaviour.Set.subset (Interp.behaviours p)
        (Safeopt_tso.Machine.program_behaviours p))

let por_equivalence =
  test ~count:100 "POR preserves behaviours" Generators.program
    ~print:print_program (fun p ->
      Behaviour.Set.equal
        (Interp.behaviours ~max_states:200_000 p)
        (Interp.behaviours ~max_states:200_000 ~por:true p))

let tso_includes_in_pso =
  test ~count:25 "TSO behaviours are PSO behaviours" Generators.program
    ~print:print_program (fun p ->
      Behaviour.Set.subset
        (Safeopt_tso.Machine.program_behaviours p)
        (Safeopt_tso.Pso.program_behaviours p))

let robustness_enforce =
  test ~count:20 "enforce yields a DRF, TSO-robust program"
    Generators.program ~print:print_program (fun p ->
      let p', _ = Safeopt_tso.Robustness.enforce p in
      Interp.is_drf p' && Safeopt_tso.Robustness.is_robust p')

let drf_no_tso_weakness =
  test ~count:20 "DRF programs have no TSO-weak behaviours"
    Generators.drf_program ~print:print_program (fun p ->
      Behaviour.Set.is_empty (Safeopt_tso.Machine.weak_behaviours p))

let () =
  Alcotest.run "properties"
    [
      ( "traces",
        [
          trace_wf;
          trace_prefixes;
          restrict_partition;
          wildcard_instances;
          depermute_identity;
          trace_syntax_roundtrip;
          eliminable_proper_subset;
          reorder_find_complete;
        ] );
      ( "programs",
        [
          parser_roundtrip;
          race_definitions_agree;
          interp_agrees_with_denotation;
          theorems_3_4;
          lemma4_rules_are_semantic_eliminations;
          trace_preserving_passes;
          oota_lemma6;
          tso_includes_sc;
          por_equivalence;
          tso_includes_in_pso;
          robustness_enforce;
          drf_no_tso_weakness;
        ] );
    ]
