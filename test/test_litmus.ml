open Safeopt_litmus
module Validate = Safeopt_opt.Validate
module Pipeline = Safeopt_opt.Pipeline

let test_corpus () =
  List.iter
    (fun t ->
      let o = Litmus.check t in
      if not (Litmus.passed o) then
        Alcotest.failf "%a" Litmus.pp_outcome o)
    Corpus.all

let test_by_name () =
  Alcotest.(check bool) "sb found" true (Corpus.by_name "sb" <> None);
  Alcotest.(check bool) "unknown" true (Corpus.by_name "nope" = None);
  Alcotest.(check int) "corpus size" 32 (List.length Corpus.all)

let test_expect_machinery () =
  (* a deliberately wrong expectation is reported, not crashed *)
  let bogus =
    Litmus.make ~name:"bogus" ~descr:"wrong expectations" ~drf:false
      ~can:[ [ 9 ] ] ~cannot:[ [ 1 ] ]
      "thread { r1 := 1; print r1; }"
  in
  let o = Litmus.check bogus in
  Alcotest.(check bool) "failed" false (Litmus.passed o);
  Alcotest.(check int) "three failures" 3 (List.length o.Litmus.failures)

let test_sources_parse_and_print () =
  (* every corpus source pretty-prints and re-parses to the same AST *)
  List.iter
    (fun t ->
      let p = Litmus.program t in
      let p2 =
        Safeopt_lang.Parser.parse_program
          (Safeopt_lang.Pp.program_to_string p)
      in
      if not (Safeopt_lang.Ast.equal_program p p2) then
        Alcotest.failf "%s does not round-trip" t.Litmus.name)
    Corpus.all

(* The lock-free pack through the whole validator ladder: optimise each
   scenario with the default pipeline, then check that the auto ladder
   (static -> refine -> exhaustive, escalating on the atomic-update
   Bounded verdict) agrees with the pure exhaustive validator, on one
   domain and on a 2-domain pool. *)
let lock_free_pack =
  [
    Corpus.atomic_faa_counter;
    Corpus.atomic_ticket_lock;
    Corpus.atomic_treiber;
    Corpus.atomic_sense_barrier;
    Corpus.atomic_spin_then_block;
  ]

let test_lock_free_ladder () =
  let spec =
    match Pipeline.parse "constprop;copyprop;cse*;dead-moves;dse;normalise" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let pool2 = Safeopt_exec.Par.Pool.create 2 in
  List.iter
    (fun (t : Litmus.t) ->
      let original = Litmus.program t in
      let transformed = (Pipeline.run spec original).Pipeline.final in
      List.iter
        (fun pool ->
          let auto =
            Validate.run_validator ?pool Validate.Auto ~original ~transformed
              ()
          in
          let exh =
            Validate.run_validator ?pool Validate.Exhaustive ~original
              ~transformed ()
          in
          if not (Validate.outcome_ok auto) then
            Alcotest.failf "%s: auto rejects the optimised program"
              t.Litmus.name;
          if Validate.outcome_ok auto <> Validate.outcome_ok exh then
            Alcotest.failf "%s: auto and exhaustive verdicts differ"
              t.Litmus.name)
        [ None; Some pool2 ])
    lock_free_pack

let () =
  Alcotest.run "litmus"
    [
      ( "litmus",
        [
          Alcotest.test_case "corpus expectations" `Slow test_corpus;
          Alcotest.test_case "lookup" `Quick test_by_name;
          Alcotest.test_case "failure reporting" `Quick test_expect_machinery;
          Alcotest.test_case "sources round-trip" `Quick
            test_sources_parse_and_print;
          Alcotest.test_case "lock-free pack through the ladder" `Slow
            test_lock_free_ladder;
        ] );
    ]
