open Safeopt_exec
open Safeopt_lang
open Safeopt_opt
open Helpers

let check_b = Alcotest.(check bool)

let same_traceset p p' =
  (* trace-preservation: bounded denotations agree exactly *)
  let universe = Denote.joint_universe [ p; p' ] in
  Safeopt_trace.Traceset.equal
    (Denote.traceset ~universe ~max_len:10 p)
    (Denote.traceset ~universe ~max_len:10 p')

let test_constprop () =
  let p = parse "thread { r1 := 5; r2 := r1; x := r2; print r2; }" in
  let p' = Passes.constant_propagation p in
  check_b "propagated into move" true
    (Ast.equal_program p'
       (parse "thread { r1 := 5; r2 := 5; x := r2; print r2; }"));
  check_b "trace preserving" true (same_traceset p p');
  (* loads kill knowledge *)
  let q = parse "thread { r1 := 5; r1 := x; r2 := r1; }" in
  check_b "load kills" true
    (Ast.equal_program (Passes.constant_propagation q) q);
  (* joins: only agreeing constants survive *)
  let j =
    parse
      "thread { if (r9 == 0) r1 := 5; else r1 := 6; r2 := r1; if (r9 == 0) \
       r3 := 7; else r3 := 7; r4 := r3; }"
  in
  let j' = Passes.constant_propagation j in
  check_b "disagreeing branch not propagated" true
    (contains_substring (Pp.program_to_string j') "r2 := r1;");
  check_b "agreeing branch propagated" true
    (contains_substring (Pp.program_to_string j') "r4 := 7;");
  (* loop bodies invalidate assigned registers *)
  let l = parse "thread { r1 := 5; while (r9 == 0) { r1 := x; } r2 := r1; }" in
  let l' = Passes.constant_propagation l in
  check_b "loop kills" true
    (contains_substring (Pp.program_to_string l') "r2 := r1;")

let test_copyprop () =
  let p = parse "thread { r1 := x; r2 := r1; y := r2; print r2; }" in
  let p' = Passes.copy_propagation p in
  check_b "store uses source" true
    (contains_substring (Pp.program_to_string p') "y := r1;");
  check_b "print uses source" true
    (contains_substring (Pp.program_to_string p') "print r1;");
  check_b "trace preserving" true (same_traceset p p');
  (* overwriting the source kills the copy *)
  let q = parse "thread { r1 := x; r2 := r1; r1 := 5; y := r2; }" in
  let q' = Passes.copy_propagation q in
  check_b "killed copy not used" true
    (contains_substring (Pp.program_to_string q') "y := r2;")

let test_eliminate_redundancy () =
  let p = parse "thread { x := r1; r2 := x; y := r2; r3 := x; }" in
  let p', chain = Passes.eliminate_redundancy p in
  check_b "chain nonempty" true (chain <> []);
  check_b "chain is all elimination rules" true
    (List.for_all
       (fun s ->
         List.exists
           (fun r -> r.Rule.name = s.Transform.rule)
           Rule.eliminations)
       chain);
  (* the result has fewer memory accesses *)
  let count p =
    Safeopt_trace.Traceset.cardinal
      (Denote.traceset ~universe:[ 0; 1 ] ~max_len:10 p)
  in
  check_b "smaller denotation" true (count p' <= count p);
  (* and the DRF guarantee holds (single thread, DRF) *)
  let report = Validate.validate ~original:p ~transformed:p' () in
  check_b "validated" true (Validate.ok report)

let test_reorder_fixpoint () =
  let p = parse "thread { x := r1; lock m; r2 := y; unlock m; }" in
  let p', chain = Passes.reorder_fixpoint ~prefer:[ "R-WL" ] p in
  check_b "roach motel applied" true (List.length chain = 1);
  check_b "store now inside" true
    (Ast.equal_program p'
       (parse "thread { lock m; x := r1; r2 := y; unlock m; }"))

let test_fig3_pipeline () =
  let a = Safeopt_litmus.Litmus.program Safeopt_litmus.Corpus.fig3_a in
  let b = Passes.introduce_irrelevant_reads a in
  check_b "reads introduced" true (not (Ast.equal_program a b));
  check_b "SC behaviours preserved" true
    (Behaviour.Set.equal (Interp.behaviours a) (Interp.behaviours b));
  check_b "(a) DRF" true (Interp.is_drf a);
  check_b "(b) racy" false (Interp.is_drf b);
  let c = Passes.eliminate_reads_across_acquires b in
  check_b "elimination fired" true (not (Ast.equal_program b c));
  check_b "(c) prints two zeros" true
    (Behaviour.Set.mem [ 0; 0 ] (Interp.behaviours c));
  check_b "(b) does not" false (Behaviour.Set.mem [ 0; 0 ] (Interp.behaviours b))

let test_cross_acquire_rule () =
  (* E-RAR-ACQ fires across a lock but not across unlock-then-lock *)
  let p = parse "thread { r1 := x; lock m; r2 := x; unlock m; }" in
  check_b "across acquire ok" true
    (Transform.program_rewrites [ Passes.e_rar_across_acquires ] p <> []);
  let q =
    parse
      "thread { r1 := x; lock m; skip; unlock m; lock m; r2 := x; unlock m; }"
  in
  check_b "release-then-acquire blocks" true
    (Transform.program_rewrites [ Passes.e_rar_across_acquires ] q = [])

let test_dead_moves () =
  let p = parse "thread { r1 := 5; r2 := 6; x := r2; }" in
  let p' = Passes.dead_moves p in
  check_b "dead move gone" true
    (Ast.equal_program p' (parse "thread { r2 := 6; x := r2; }"));
  check_b "trace preserving" true (same_traceset p p');
  (* a move read inside a later loop is kept *)
  let q =
    parse "thread { r1 := 5; while (r9 != 1) { x := r1; r9 := y; } }"
  in
  check_b "loop use keeps move" true
    (Ast.equal_program (Passes.dead_moves q) q)

let test_dead_loads () =
  let p = parse "thread { r1 := x; r2 := y; print r2; }" in
  let p' = Passes.dead_loads p in
  check_b "dead load gone" true
    (Ast.equal_program p' (parse "thread { r2 := y; print r2; }"));
  (* irrelevant-read elimination is a semantic elimination, not
     trace-preserving *)
  check_b "not trace preserving" false (same_traceset p p');
  let r =
    Validate.validate_semantic ~max_len:8 ~relation:Validate.Elimination
      ~original:p ~transformed:p' ()
  in
  check_b "but a semantic elimination" true
    (r.Validate.relation_holds = Some true)

let test_fold_branches () =
  let p =
    parse
      "thread { if (1 == 1) x := r1; else y := r1; if (0 == 1) z := r1; \
       else skip; while (2 != 2) q := r1; }"
  in
  let p' = Passes.normalise (Passes.fold_branches p) in
  check_b "folded to the single store" true
    (Ast.equal_program p' (parse "thread { x := r1; }"));
  check_b "trace preserving" true (same_traceset p p')

let test_normalise () =
  let p =
    parse "thread { skip; { skip; x := r1; { y := r1; } } skip; }"
  in
  let p' = Passes.normalise p in
  check_b "flattened" true
    (Ast.equal_program p' (parse "thread { x := r1; y := r1; }"));
  check_b "trace preserving" true (same_traceset p p')

let test_unroll () =
  let p =
    parse
      "thread { while (r1 != 1) r1 := flag; print r1; }\n\
       thread { flag := 1; }"
  in
  let p' = Passes.unroll_loops ~depth:2 p in
  check_b "still has the loop" true (Safeopt_lang.Thread_system.has_loop p');
  (* unrolling is an identity in the trace semantics: same bounded
     denotation *)
  let universe = Denote.joint_universe [ p; p' ] in
  check_b "same denotation" true
    (Safeopt_trace.Traceset.equal
       (Denote.traceset ~universe ~max_len:7 p)
       (Denote.traceset ~universe ~max_len:7 p'));
  (* and same behaviours under the same fuel *)
  check_b "same behaviours" true
    (Behaviour.Set.equal
       (Interp.behaviours ~fuel:12 p)
       (Interp.behaviours ~fuel:12 p'))

let test_pipeline () =
  let p = parse "thread { r1 := 5; r2 := r1; x := r2; r3 := x; }" in
  (match Passes.run_pipeline [ "constprop"; "copyprop"; "dead-loads"; "dead-moves"; "normalise" ] p with
  | Ok p' ->
      check_b "pipeline shrinks" true
        (Ast.program_size p' < Ast.program_size p);
      let r = Validate.validate ~original:p ~transformed:p' () in
      check_b "validated" true (Validate.ok r)
  | Error e -> Alcotest.fail e);
  check_b "unknown pass rejected" true
    (Result.is_error (Passes.run_pipeline [ "nope" ] p));
  Alcotest.(check int) "registry size" 13 (List.length Passes.named_passes)

let test_optimise_safe_on_corpus () =
  List.iter
    (fun t ->
      let p = Safeopt_litmus.Litmus.program t in
      let p' = Passes.optimise p in
      let report = Validate.validate ~original:p ~transformed:p' () in
      if not (Validate.behaviours_ok report) then
        Alcotest.failf "%s: optimise broke the DRF guarantee"
          t.Safeopt_litmus.Litmus.name)
    Safeopt_litmus.Corpus.all

let () =
  Alcotest.run "passes"
    [
      ( "trace-preserving",
        [
          Alcotest.test_case "constant propagation" `Quick test_constprop;
          Alcotest.test_case "copy propagation" `Quick test_copyprop;
        ] );
      ( "rule-driven",
        [
          Alcotest.test_case "redundancy elimination" `Quick
            test_eliminate_redundancy;
          Alcotest.test_case "reorder fixpoint" `Quick test_reorder_fixpoint;
          Alcotest.test_case "fig 3 pipeline" `Quick test_fig3_pipeline;
          Alcotest.test_case "cross-acquire rule" `Quick
            test_cross_acquire_rule;
          Alcotest.test_case "optimise is safe on the corpus" `Slow
            test_optimise_safe_on_corpus;
        ] );
      ( "new passes",
        [
          Alcotest.test_case "dead moves" `Quick test_dead_moves;
          Alcotest.test_case "dead loads" `Quick test_dead_loads;
          Alcotest.test_case "branch folding" `Quick test_fold_branches;
          Alcotest.test_case "normalisation" `Quick test_normalise;
          Alcotest.test_case "loop unrolling" `Quick test_unroll;
          Alcotest.test_case "pipeline" `Quick test_pipeline;
        ] );
    ]
