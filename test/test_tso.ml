open Safeopt_exec
open Safeopt_lang
open Safeopt_litmus
open Safeopt_tso
open Helpers

let check_b = Alcotest.(check bool)

let test_sb_weak () =
  let sb = Litmus.program Corpus.sb in
  let weak = Machine.weak_behaviours sb in
  Alcotest.check behaviour_set "exactly the 0,0 outcome"
    (behaviours_of_list [ [ 0; 0 ] ])
    weak;
  (* TSO includes all SC behaviours *)
  check_b "SC subset of TSO" true
    (Behaviour.Set.subset (Interp.behaviours sb)
       (Machine.program_behaviours sb))

let test_tso_preserves_sc_per_thread_order () =
  (* MP and LB are not weakened by TSO (FIFO buffers) *)
  check_b "mp not weak" true
    (Behaviour.Set.is_empty (Machine.weak_behaviours (Litmus.program Corpus.mp)));
  check_b "lb not weak" true
    (Behaviour.Set.is_empty (Machine.weak_behaviours (Litmus.program Corpus.lb)));
  check_b "corr not weak" true
    (Behaviour.Set.is_empty
       (Machine.weak_behaviours (Litmus.program Corpus.corr)))

let test_store_forwarding () =
  (* a thread reads its own buffered write *)
  let p = parse "thread { x := 1; r1 := x; print r1; }" in
  let tso = Machine.program_behaviours p in
  check_b "sees own write" true (Behaviour.Set.mem [ 1 ] tso);
  check_b "never sees stale own write" false (Behaviour.Set.mem [ 0 ] tso)

let test_fences () =
  (* volatile writes drain the buffer: volatile SB is SC *)
  let p =
    parse
      "volatile x, y;\n\
       thread { x := 1; r1 := y; print r1; }\n\
       thread { y := 1; r2 := x; print r2; }"
  in
  check_b "volatile sb not weak" true
    (Behaviour.Set.is_empty (Machine.weak_behaviours p));
  (* locks drain too *)
  let q =
    parse
      "thread { lock m; x := 1; r1 := y; print r1; unlock m; }\n\
       thread { lock m; y := 1; r2 := x; print r2; unlock m; }"
  in
  check_b "locked sb not weak" true
    (Behaviour.Set.is_empty (Machine.weak_behaviours q))

let test_rmw_flushes_buffer () =
  (* an RMW behaves like an x86 LOCKed instruction: it waits for the
     thread's own buffer to drain and goes straight to memory, so SB
     with xchg stores has no relaxed outcome — unlike plain SB *)
  let p = Litmus.program Corpus.atomic_sb_xchg in
  check_b "sb-with-xchg not weak" true
    (Behaviour.Set.is_empty (Machine.weak_behaviours p));
  check_b "plain sb is weak (control)" false
    (Behaviour.Set.is_empty
       (Machine.weak_behaviours (Litmus.program Corpus.sb)));
  (* the RMW also cannot read its own buffered (unflushed) write stale:
     the preceding plain store drains first, so faa reads 1, returns 1,
     and leaves 2 in memory *)
  let q = parse "thread { x := 1; r1 := faa(x, 1); r2 := x; print r1; print r2; }" in
  Alcotest.check behaviour_set "faa sees the drained store"
    (Interp.behaviours q)
    (Machine.program_behaviours q);
  check_b "reads 1, leaves 2" true
    (Behaviour.Set.mem [ 1; 2 ] (Machine.program_behaviours q))

(* The central section-8 theorem check: DRF programs have no observable
   TSO weakness. *)
let test_drf_no_weakness () =
  List.iter
    (fun t ->
      if t.Litmus.drf then
        let p = Litmus.program t in
        let weak = Machine.weak_behaviours p in
        if not (Behaviour.Set.is_empty weak) then
          Alcotest.failf "%s: DRF program has TSO-weak behaviours %a"
            t.Litmus.name Behaviour.Set.pp weak)
    Corpus.all

(* And the explanation claim: TSO behaviours are covered by R-WR +
   E-RAW transformed programs under SC. *)
let test_explained () =
  List.iter
    (fun t ->
      let p = Litmus.program t in
      let _, _, ok = Machine.explained_by_transformations p in
      if not ok then
        Alcotest.failf "%s: TSO behaviours not explained by transformations"
          t.Litmus.name)
    [ Corpus.sb; Corpus.mp; Corpus.lb; Corpus.corr; Corpus.fig2_original ]

let () =
  Alcotest.run "tso"
    [
      ( "tso",
        [
          Alcotest.test_case "SB weakness" `Quick test_sb_weak;
          Alcotest.test_case "FIFO order preserved" `Quick
            test_tso_preserves_sc_per_thread_order;
          Alcotest.test_case "store forwarding" `Quick test_store_forwarding;
          Alcotest.test_case "fences" `Quick test_fences;
          Alcotest.test_case "RMWs flush the buffer" `Quick
            test_rmw_flushes_buffer;
          Alcotest.test_case "DRF implies no weakness" `Slow
            test_drf_no_weakness;
          Alcotest.test_case "explained by transformations" `Slow
            test_explained;
        ] );
    ]
