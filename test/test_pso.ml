open Safeopt_exec
open Safeopt_lang
open Safeopt_litmus
open Safeopt_tso
open Helpers

let check_b = Alcotest.(check bool)

let test_mp_weak () =
  (* PSO's signature weakness: message passing breaks (the data write
     may drain after the flag write) *)
  let mp = Litmus.program Corpus.mp in
  Alcotest.check behaviour_set "mp weak under PSO"
    (behaviours_of_list [ [ 0 ] ])
    (Pso.weak_behaviours mp);
  (* and this is strictly beyond TSO *)
  Alcotest.check behaviour_set "beyond TSO"
    (behaviours_of_list [ [ 0 ] ])
    (Pso.weak_beyond_tso mp)

let test_sb_weak () =
  let sb = Litmus.program Corpus.sb in
  check_b "sb weak like TSO" true
    (Behaviour.Set.mem [ 0; 0 ] (Pso.weak_behaviours sb));
  check_b "sb adds nothing beyond TSO" true
    (Behaviour.Set.is_empty (Pso.weak_beyond_tso sb))

let test_inclusions () =
  (* SC <= TSO <= PSO on a sample of corpus programs *)
  List.iter
    (fun t ->
      let p = Litmus.program t in
      let sc = Interp.behaviours p in
      let tso = Machine.program_behaviours p in
      let pso = Pso.program_behaviours p in
      check_b (t.Litmus.name ^ ": SC in TSO") true (Behaviour.Set.subset sc tso);
      check_b (t.Litmus.name ^ ": TSO in PSO") true
        (Behaviour.Set.subset tso pso))
    [ Corpus.sb; Corpus.mp; Corpus.lb; Corpus.corr; Corpus.fig2_original ]

let test_per_location_fifo () =
  (* same-location writes stay ordered (coherence preserved) *)
  let p = Litmus.program Corpus.co_ww_rr in
  let pso = Pso.program_behaviours p in
  check_b "no out-of-order same-location drain" false
    (Behaviour.Set.mem [ 8 ] pso)

let test_fences () =
  check_b "volatile mp not weak" true
    (Behaviour.Set.is_empty
       (Pso.weak_behaviours (Litmus.program Corpus.mp_volatile)));
  check_b "locked mp not weak" true
    (Behaviour.Set.is_empty
       (Pso.weak_behaviours (Litmus.program Corpus.mp_locked)));
  check_b "volatile sb not weak" true
    (Behaviour.Set.is_empty
       (Pso.weak_behaviours (Litmus.program Corpus.sb_volatile)))

let test_rmw_flushes_buffers () =
  (* an RMW waits until every per-location buffer of its thread has
     drained, so even PSO (which breaks plain MP) keeps MP with an
     xchg-published flag: the data write is in memory before the flag
     update is *)
  let p =
    parse
      "thread { data := 1; r0 := xchg(flag, 1); }\n\
       thread { r1 := flag; if (r1 == 1) { r2 := data; print r2; } }"
  in
  check_b "xchg-published mp not weak" true
    (Behaviour.Set.is_empty (Pso.weak_behaviours p));
  check_b "sb-with-xchg not weak" true
    (Behaviour.Set.is_empty
       (Pso.weak_behaviours (Litmus.program Corpus.atomic_sb_xchg)))

let test_drf_no_weakness () =
  List.iter
    (fun t ->
      if t.Litmus.drf then
        let p = Litmus.program t in
        let weak = Pso.weak_behaviours p in
        if not (Behaviour.Set.is_empty weak) then
          Alcotest.failf "%s: DRF program PSO-weak: %a" t.Litmus.name
            Behaviour.Set.pp weak)
    Corpus.all

let test_explained () =
  List.iter
    (fun t ->
      let p = Litmus.program t in
      let _, _, ok = Pso.explained_by_transformations p in
      if not ok then
        Alcotest.failf "%s: PSO behaviours not explained" t.Litmus.name)
    [ Corpus.sb; Corpus.mp; Corpus.lb; Corpus.corr ]

let () =
  Alcotest.run "pso"
    [
      ( "pso",
        [
          Alcotest.test_case "MP weakness" `Quick test_mp_weak;
          Alcotest.test_case "SB weakness" `Quick test_sb_weak;
          Alcotest.test_case "SC <= TSO <= PSO" `Quick test_inclusions;
          Alcotest.test_case "per-location FIFO" `Quick test_per_location_fifo;
          Alcotest.test_case "fences" `Quick test_fences;
          Alcotest.test_case "RMWs flush the buffers" `Quick
            test_rmw_flushes_buffers;
          Alcotest.test_case "DRF implies no weakness" `Slow
            test_drf_no_weakness;
          Alcotest.test_case "explained by transformations" `Slow
            test_explained;
        ] );
    ]
