(* The unified exploration engine — the repository's single exploration
   entry point: core engine semantics over explicit tracesets
   (behaviours, executions, locks, deadlock, sampling, budgets), stats
   consistency, sleep-set POR soundness over the litmus corpus, and
   streaming early exit. *)

open Safeopt_trace
open Safeopt_exec
open Safeopt_lang
open Safeopt_litmus
open Helpers

let corpus_programs () = List.map Litmus.program Corpus.all

let check = Alcotest.(check bool)
let check_b = check

(* --- engine semantics over explicit tracesets --------------------- *)

(* SB as an explicit traceset over {0,1}. *)
let sb_ts =
  Traceset.of_list
    (List.concat_map
       (fun v ->
         [ [ st 0; w "x" 1; r "y" v; ext v ]; [ st 1; w "y" 1; r "x" v; ext v ] ])
       [ 0; 1 ])

let test_behaviours () =
  let bs = Explorer.behaviours (Traceset_system.make sb_ts) in
  check_b "prefix closed" true (Behaviour.Set.is_prefix_closed bs);
  check_b "can 0,1" true (Behaviour.Set.mem [ 0; 1 ] bs);
  check_b "can 1,1" true (Behaviour.Set.mem [ 1; 1 ] bs);
  check_b "cannot 0,0 (SC)" false (Behaviour.Set.mem [ 0; 0 ] bs)

let test_executions () =
  let execs = Explorer.maximal_executions (Traceset_system.make sb_ts) in
  check_b "nonempty" true (execs <> []);
  check_b "all SC" true
    (List.for_all Interleaving.is_sequentially_consistent execs);
  check_b "all are executions of the traceset" true
    (List.for_all (Interleaving.is_execution_of sb_ts) execs);
  (* every maximal execution runs all 8 actions *)
  check_b "maximal length" true
    (List.for_all (fun i -> Interleaving.length i = 8) execs);
  Alcotest.(check int) "count matches count_executions"
    (List.length execs)
    (Explorer.count_executions (Traceset_system.make sb_ts))

let test_race_search () =
  check_b "sb racy" false (Explorer.is_drf none (Traceset_system.make sb_ts));
  let locked =
    Traceset.of_list
      [
        [ st 0; lk "m"; w "x" 1; ul "m" ];
        [ st 1; lk "m"; r "x" 0; ul "m" ];
        [ st 1; lk "m"; r "x" 1; ul "m" ];
      ]
  in
  check_b "locked drf" true (Explorer.is_drf none (Traceset_system.make locked))

let test_locks_block () =
  (* Two threads both want m; the engine must serialise them. *)
  let ts =
    Traceset.of_list
      [
        [ st 0; lk "m"; w "x" 1; ul "m" ];
        [ st 1; lk "m"; w "x" 2; ul "m" ];
      ]
  in
  let execs = Explorer.maximal_executions (Traceset_system.make ts) in
  check_b "all respect mutex" true
    (List.for_all Interleaving.respects_mutex execs);
  (* Deadlock shape: each thread holds one lock and wants the other;
     maximal executions may be stuck before completion. *)
  let dl =
    Traceset.of_list
      [
        [ st 0; lk "m"; lk "n"; ul "n"; ul "m" ];
        [ st 1; lk "n"; lk "m"; ul "m"; ul "n" ];
      ]
  in
  let dl_execs = Explorer.maximal_executions (Traceset_system.make dl) in
  check_b "some execution deadlocks" true
    (List.exists (fun i -> Interleaving.length i < 10) dl_execs);
  check_b "some execution completes" true
    (List.exists (fun i -> Interleaving.length i = 10) dl_execs)

let test_deadlock () =
  let dl =
    Traceset.of_list
      [
        [ st 0; lk "m"; lk "n"; ul "n"; ul "m" ];
        [ st 1; lk "n"; lk "m"; ul "m"; ul "n" ];
      ]
  in
  (match Explorer.find_deadlock (Traceset_system.make dl) with
  | Some i ->
      check_b "witness is a prefix execution" true
        (Interleaving.is_sequentially_consistent i)
  | None -> Alcotest.fail "lock inversion must deadlock");
  (* consistent lock order: no deadlock *)
  let ordered =
    Traceset.of_list
      [
        [ st 0; lk "m"; lk "n"; ul "n"; ul "m" ];
        [ st 1; lk "m"; lk "n"; ul "n"; ul "m" ];
      ]
  in
  check_b "ordered locks deadlock-free" true
    (Explorer.find_deadlock (Traceset_system.make ordered) = None)

let test_sampling () =
  let bs_full = Explorer.behaviours (Traceset_system.make sb_ts) in
  let bs_sample =
    Explorer.sample_behaviours ~seed:7 ~runs:200 (Traceset_system.make sb_ts)
  in
  check_b "sampled subset of exhaustive" true
    (Behaviour.Set.subset bs_sample bs_full);
  check_b "sampling finds something" true
    (Behaviour.Set.cardinal bs_sample > 1);
  (* determinism for a fixed seed *)
  check_b "deterministic" true
    (Behaviour.Set.equal bs_sample
       (Explorer.sample_behaviours ~seed:7 ~runs:200
          (Traceset_system.make sb_ts)))

let test_budget () =
  Alcotest.check_raises "state budget enforced"
    (Explorer.Too_many_states 3) (fun () ->
      ignore (Explorer.count_states ~max_states:2 (Traceset_system.make sb_ts)))

let test_count_states () =
  let n = Explorer.count_states (Traceset_system.make sb_ts) in
  check_b "some states" true (n > 10);
  (* memoisation: states are far fewer than execution steps *)
  let execs = Explorer.count_executions (Traceset_system.make sb_ts) in
  check_b "fewer states than 8 * executions" true (n < 8 * execs)

let test_reads_see_most_recent () =
  (* A reader that would read a stale value is never scheduled. *)
  let ts =
    Traceset.of_list
      [ [ st 0; w "x" 1 ]; [ st 1; r "x" 0; ext 0 ]; [ st 1; r "x" 1; ext 1 ] ]
  in
  let bs = Explorer.behaviours (Traceset_system.make ts) in
  check_b "can read 0 before write" true (Behaviour.Set.mem [ 0 ] bs);
  check_b "can read 1 after write" true (Behaviour.Set.mem [ 1 ] bs);
  let execs = Explorer.maximal_executions (Traceset_system.make ts) in
  check_b "every execution SC" true
    (List.for_all Interleaving.is_sequentially_consistent execs)

(* Per-program stats are internally consistent: a connected exploration
   visits at least one state, traverses at least [states - 1] edges
   (spanning tree), never answers more memo hits than visits it made,
   and the DFS stack is never deeper than the number of states. *)
let test_stats_consistent () =
  List.iter
    (fun p ->
      let s = Explorer.create_stats () in
      let n = Interp.count_states ~stats:s p in
      check "count matches stats" true (n = s.Explorer.states);
      check "at least one state" true (s.Explorer.states >= 1);
      check "spanning edges" true (s.Explorer.edges >= s.Explorer.states - 1);
      check "frontier bounded by states" true
        (s.Explorer.peak_frontier >= 1
        && s.Explorer.peak_frontier <= s.Explorer.states);
      check "wall time accumulates" true (s.Explorer.wall >= 0.);
      let s' = Explorer.create_stats () in
      let (_ : Behaviour.Set.t) = Interp.behaviours ~stats:s' p in
      check "behaviours visits = count_states visits" true
        (s'.Explorer.states = n);
      check "memo hits bounded by edges" true
        (s'.Explorer.memo_hits <= s'.Explorer.edges))
    (corpus_programs ())

(* Counters are monotone: re-running on the same sink only grows them. *)
let test_stats_monotone () =
  let p = Litmus.program Corpus.sb in
  let s = Explorer.create_stats () in
  let (_ : Behaviour.Set.t) = Interp.behaviours ~stats:s p in
  let snap =
    Explorer.
      (s.states, s.edges, s.memo_hits, s.por_cuts, s.peak_frontier, s.wall)
  in
  let (_ : Behaviour.Set.t) = Interp.behaviours ~por:true ~stats:s p in
  let states0, edges0, hits0, cuts0, peak0, wall0 = snap in
  check "states grew" true (s.Explorer.states >= states0);
  check "edges grew" true (s.Explorer.edges >= edges0);
  check "memo hits grew" true (s.Explorer.memo_hits >= hits0);
  check "por cuts grew" true (s.Explorer.por_cuts >= cuts0);
  check "peak kept" true (s.Explorer.peak_frontier >= peak0);
  check "wall grew" true (s.Explorer.wall >= wall0);
  Explorer.reset_stats s;
  check "reset zeroes states" true (s.Explorer.states = 0);
  check "reset zeroes wall" true (s.Explorer.wall = 0.)

(* The reduction actually cuts something on at least one corpus program
   (and never explores more states than the full search). *)
let test_por_cuts () =
  let cuts = ref 0 in
  List.iter
    (fun p ->
      let s = Explorer.create_stats () in
      let reduced = Interp.count_states ~por:true ~stats:s p in
      let full = Interp.count_states p in
      check "reduced <= full" true (reduced <= full);
      cuts := !cuts + s.Explorer.por_cuts)
    (corpus_programs ());
  check "POR cut transitions somewhere in the corpus" true (!cuts > 0)

(* The acceptance criterion: reduced and unreduced behaviour sets
   coincide on the entire corpus. *)
let test_por_sound_on_corpus () =
  List.iter2
    (fun t p ->
      check
        (Printf.sprintf "POR behaviours equal on %s" t.Litmus.name)
        true
        (Behaviour.Set.equal (Interp.behaviours p)
           (Interp.behaviours ~por:true p)))
    Corpus.all (corpus_programs ())

(* Streaming: taking the first maximal execution must traverse far
   fewer transitions than the whole tree, so a step budget that the
   eager enumeration blows is plenty for an early-exiting consumer. *)
let test_streaming_early_exit () =
  let p = Litmus.program Corpus.sb in
  let budget = 30 in
  (match Interp.maximal_executions ~max_steps:budget p with
  | _ -> Alcotest.fail "eager enumeration should exceed the budget"
  | exception Explorer.Too_many_states _ -> ());
  match Interp.maximal_executions_seq ~max_steps:budget p () with
  | Seq.Cons (first, _) ->
      check "first execution is nonempty" true (first <> [])
  | Seq.Nil -> Alcotest.fail "expected at least one execution"

(* The TSO machine runs on the same engine: its stats flow through the
   graph explorer. *)
let test_graph_stats () =
  let p = Litmus.program Corpus.sb in
  let s = Explorer.create_stats () in
  let (_ : Behaviour.Set.t) = Safeopt_tso.Machine.program_behaviours ~stats:s p in
  check "TSO explored states" true (s.Explorer.states > 0);
  check "TSO edges" true (s.Explorer.edges >= s.Explorer.states - 1)

let () =
  Alcotest.run "explorer"
    [
      ( "engine",
        [
          Alcotest.test_case "behaviours" `Quick test_behaviours;
          Alcotest.test_case "maximal executions" `Quick test_executions;
          Alcotest.test_case "race search" `Quick test_race_search;
          Alcotest.test_case "locks" `Quick test_locks_block;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock;
          Alcotest.test_case "random sampling" `Quick test_sampling;
          Alcotest.test_case "state budget" `Quick test_budget;
          Alcotest.test_case "count_states" `Quick test_count_states;
          Alcotest.test_case "reads see most recent" `Quick
            test_reads_see_most_recent;
        ] );
      ( "stats",
        [
          Alcotest.test_case "consistent over corpus" `Quick
            test_stats_consistent;
          Alcotest.test_case "monotone and resettable" `Quick
            test_stats_monotone;
          Alcotest.test_case "TSO graph stats" `Quick test_graph_stats;
        ] );
      ( "por",
        [
          Alcotest.test_case "cuts somewhere on corpus" `Quick test_por_cuts;
          Alcotest.test_case "sound on corpus" `Quick test_por_sound_on_corpus;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "early exit under budget" `Quick
            test_streaming_early_exit;
        ] );
    ]
