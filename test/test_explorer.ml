(* The unified exploration engine: stats consistency, sleep-set POR
   soundness over the litmus corpus, and streaming early exit. *)

open Safeopt_exec
open Safeopt_lang
open Safeopt_litmus

let corpus_programs () = List.map Litmus.program Corpus.all

let check = Alcotest.(check bool)

(* Per-program stats are internally consistent: a connected exploration
   visits at least one state, traverses at least [states - 1] edges
   (spanning tree), never answers more memo hits than visits it made,
   and the DFS stack is never deeper than the number of states. *)
let test_stats_consistent () =
  List.iter
    (fun p ->
      let s = Explorer.create_stats () in
      let n = Interp.count_states ~stats:s p in
      check "count matches stats" true (n = s.Explorer.states);
      check "at least one state" true (s.Explorer.states >= 1);
      check "spanning edges" true (s.Explorer.edges >= s.Explorer.states - 1);
      check "frontier bounded by states" true
        (s.Explorer.peak_frontier >= 1
        && s.Explorer.peak_frontier <= s.Explorer.states);
      check "wall time accumulates" true (s.Explorer.wall >= 0.);
      let s' = Explorer.create_stats () in
      let (_ : Behaviour.Set.t) = Interp.behaviours ~stats:s' p in
      check "behaviours visits = count_states visits" true
        (s'.Explorer.states = n);
      check "memo hits bounded by edges" true
        (s'.Explorer.memo_hits <= s'.Explorer.edges))
    (corpus_programs ())

(* Counters are monotone: re-running on the same sink only grows them. *)
let test_stats_monotone () =
  let p = Litmus.program Corpus.sb in
  let s = Explorer.create_stats () in
  let (_ : Behaviour.Set.t) = Interp.behaviours ~stats:s p in
  let snap =
    Explorer.
      (s.states, s.edges, s.memo_hits, s.por_cuts, s.peak_frontier, s.wall)
  in
  let (_ : Behaviour.Set.t) = Interp.behaviours ~por:true ~stats:s p in
  let states0, edges0, hits0, cuts0, peak0, wall0 = snap in
  check "states grew" true (s.Explorer.states >= states0);
  check "edges grew" true (s.Explorer.edges >= edges0);
  check "memo hits grew" true (s.Explorer.memo_hits >= hits0);
  check "por cuts grew" true (s.Explorer.por_cuts >= cuts0);
  check "peak kept" true (s.Explorer.peak_frontier >= peak0);
  check "wall grew" true (s.Explorer.wall >= wall0);
  Explorer.reset_stats s;
  check "reset zeroes states" true (s.Explorer.states = 0);
  check "reset zeroes wall" true (s.Explorer.wall = 0.)

(* The reduction actually cuts something on at least one corpus program
   (and never explores more states than the full search). *)
let test_por_cuts () =
  let cuts = ref 0 in
  List.iter
    (fun p ->
      let s = Explorer.create_stats () in
      let reduced = Interp.count_states ~por:true ~stats:s p in
      let full = Interp.count_states p in
      check "reduced <= full" true (reduced <= full);
      cuts := !cuts + s.Explorer.por_cuts)
    (corpus_programs ());
  check "POR cut transitions somewhere in the corpus" true (!cuts > 0)

(* The acceptance criterion: reduced and unreduced behaviour sets
   coincide on the entire corpus. *)
let test_por_sound_on_corpus () =
  List.iter2
    (fun t p ->
      check
        (Printf.sprintf "POR behaviours equal on %s" t.Litmus.name)
        true
        (Behaviour.Set.equal (Interp.behaviours p)
           (Interp.behaviours ~por:true p)))
    Corpus.all (corpus_programs ())

(* Streaming: taking the first maximal execution must traverse far
   fewer transitions than the whole tree, so a step budget that the
   eager enumeration blows is plenty for an early-exiting consumer. *)
let test_streaming_early_exit () =
  let p = Litmus.program Corpus.sb in
  let budget = 30 in
  (match Interp.maximal_executions ~max_steps:budget p with
  | _ -> Alcotest.fail "eager enumeration should exceed the budget"
  | exception Explorer.Too_many_states _ -> ());
  match Interp.maximal_executions_seq ~max_steps:budget p () with
  | Seq.Cons (first, _) ->
      check "first execution is nonempty" true (first <> [])
  | Seq.Nil -> Alcotest.fail "expected at least one execution"

(* The TSO machine runs on the same engine: its stats flow through the
   graph explorer. *)
let test_graph_stats () =
  let p = Litmus.program Corpus.sb in
  let s = Explorer.create_stats () in
  let (_ : Behaviour.Set.t) = Safeopt_tso.Machine.program_behaviours ~stats:s p in
  check "TSO explored states" true (s.Explorer.states > 0);
  check "TSO edges" true (s.Explorer.edges >= s.Explorer.states - 1)

let () =
  Alcotest.run "explorer"
    [
      ( "stats",
        [
          Alcotest.test_case "consistent over corpus" `Quick
            test_stats_consistent;
          Alcotest.test_case "monotone and resettable" `Quick
            test_stats_monotone;
          Alcotest.test_case "TSO graph stats" `Quick test_graph_stats;
        ] );
      ( "por",
        [
          Alcotest.test_case "cuts somewhere on corpus" `Quick test_por_cuts;
          Alcotest.test_case "sound on corpus" `Quick test_por_sound_on_corpus;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "early exit under budget" `Quick
            test_streaming_early_exit;
        ] );
    ]
