open Safeopt_trace
open Safeopt_exec
open Safeopt_core
open Helpers

let check_b = Alcotest.(check bool)

(* The section-5 / Fig. 5 example.  Original program (v volatile):
     thread 0: v := 1; y := 1        thread 1: r1 := x; r2 := v; print r2
   Eliminated program:
     thread 0: y := 1                thread 1: r2 := v; print r2
   I' = [(0,S(0)); (1,S(1)); (0,W[y=1]); (1,R[v=0]); (1,X(0))]. *)

let original_ts =
  Traceset.of_list
    (List.concat_map
       (fun vv ->
         [
           [ st 0; w "v" 1; w "y" 1 ];
           [ st 1; r "x" vv; r "v" 0; ext 0 ];
           [ st 1; r "x" vv; r "v" 1; ext 1 ];
         ])
       [ 0; 1 ])

let i' =
  il [ (0, st 0); (1, st 1); (0, w "y" 1); (1, r "v" 0); (1, ext 0) ]

let universe = [ 0; 1 ]

let construct () =
  Unelimination.construct_from_traceset vol_v ~original:original_ts ~universe
    i'

let test_fig5_construction () =
  match construct () with
  | None -> Alcotest.fail "expected an unelimination"
  | Some { Unelimination.wild; matching } ->
      (* the paper: f maps index 2 (W[y=1]) to the last position *)
      Alcotest.(check int) "|I| = 7" 7 (Interleaving.Wild.length wild);
      Alcotest.(check int) "f(2) = 6 (the paper's example)" 6 matching.(2);
      Alcotest.(check int) "f(0) = 0" 0 matching.(0);
      (* conditions (i)-(iv) *)
      check_b "valid unelimination function" true
        (Unelimination.is_unelimination_function vol_v ~transformed:i' ~wild
           ~f:matching);
      (* the wildcard interleaving belongs to the original traceset *)
      check_b "thread traces belong to T" true
        (List.for_all
           (fun tid ->
             Traceset.belongs_to original_ts
               (Interleaving.Wild.trace_of tid wild)
               ~universe)
           [ 0; 1 ]);
      (* the unique instance is an execution of T with behaviour X(0) *)
      let inst = Interleaving.Wild.instance wild in
      check_b "instance is an execution of T" true
        (Interleaving.is_execution_of original_ts inst);
      Alcotest.check behaviour "same behaviour" [ 0 ]
        (Interleaving.behaviour inst)

let test_checker_rejects () =
  match construct () with
  | None -> Alcotest.fail "expected an unelimination"
  | Some { Unelimination.wild; matching } ->
      (* break per-thread order *)
      let bad = Array.copy matching in
      let tmp = bad.(0) in
      bad.(0) <- bad.(2);
      bad.(2) <- tmp;
      check_b "swapped matching rejected" false
        (Unelimination.is_unelimination_function vol_v ~transformed:i' ~wild
           ~f:bad);
      (* non-injective *)
      let dup = Array.copy matching in
      dup.(1) <- dup.(0);
      check_b "non-injective rejected" false
        (Unelimination.is_unelimination_function vol_v ~transformed:i' ~wild
           ~f:dup)

(* Theorem-1-style check on Fig. 1: every execution of the transformed
   traceset uneliminates to an execution of the original with the same
   behaviour, provided the original is DRF.  Fig. 1 is racy, so instead
   we use a DRF single-thread example. *)
let test_drf_unelimination () =
  let orig =
    parse
      "thread { x := 1; r1 := x; r2 := x; print r2; lock m; x := 2; x := 1; \
       unlock m; }"
  in
  let trans = parse "thread { x := 1; r1 := x; print 1; lock m; x := 1; unlock m; }" in
  let universe = Safeopt_lang.Denote.joint_universe [ orig; trans ] in
  let ts_o = Safeopt_lang.Denote.traceset ~universe ~max_len:12 orig in
  let sys = Safeopt_lang.Thread_system.make trans in
  let execs = Explorer.maximal_executions sys in
  check_b "at least one execution" true (execs <> []);
  List.iter
    (fun e ->
      match
        Unelimination.construct_from_traceset none ~original:ts_o ~universe e
      with
      | None -> Alcotest.failf "no unelimination for %a" Interleaving.pp e
      | Some { Unelimination.wild; matching } ->
          check_b "valid" true
            (Unelimination.is_unelimination_function none ~transformed:e ~wild
               ~f:matching);
          let inst = Interleaving.Wild.instance wild in
          check_b "instance is an execution" true
            (Interleaving.is_execution_of ts_o inst);
          Alcotest.check behaviour "behaviour preserved"
            (Interleaving.behaviour e)
            (Interleaving.behaviour inst))
    execs

let test_empty_and_trivial () =
  (* empty interleaving *)
  (match
     Unelimination.construct_from_traceset none
       ~original:(Traceset.of_list [ [ st 0 ] ])
       ~universe:[ 0 ] []
   with
  | Some { Unelimination.wild; _ } ->
      Alcotest.(check int) "empty stays empty" 0
        (Interleaving.Wild.length wild)
  | None -> Alcotest.fail "empty should uneliminate");
  (* identity: nothing was eliminated *)
  let ts = Traceset.of_list [ [ st 0; w "x" 1; ext 1 ] ] in
  let e = il [ (0, st 0); (0, w "x" 1); (0, ext 1) ] in
  match Unelimination.construct_from_traceset none ~original:ts ~universe:[ 0; 1 ] e with
  | Some { Unelimination.wild; matching } ->
      Alcotest.(check int) "same length" 3 (Interleaving.Wild.length wild);
      check_b "identity matching" true (matching = [| 0; 1; 2 |])
  | None -> Alcotest.fail "identity unelimination"

let () =
  Alcotest.run "unelimination"
    [
      ( "unelimination",
        [
          Alcotest.test_case "Fig. 5 construction" `Quick
            test_fig5_construction;
          Alcotest.test_case "checker rejects bad matchings" `Quick
            test_checker_rejects;
          Alcotest.test_case "DRF executions uneliminate" `Quick
            test_drf_unelimination;
          Alcotest.test_case "degenerate cases" `Quick test_empty_and_trivial;
        ] );
    ]
