(* Domain-parallel exploration: every parallel entry point must produce
   results identical to its sequential counterpart (the Par determinism
   contract), and the pool/queue primitives themselves must behave. *)

open Safeopt_exec
open Safeopt_lang
open Safeopt_litmus
open Safeopt_gen
open Helpers

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* One pool for the whole binary: spawning domains per test case would
   dominate the runtime.  Size 4 also oversubscribes small CI hosts,
   which is exactly the scheduling noise the determinism tests should
   survive. *)
let pool = Par.Pool.create 4

(* A second, smaller pool so parity properties cover jobs ∈ {1, 2, 4}. *)
let pool2 = Par.Pool.create 2

(* --- primitives ------------------------------------------------------- *)

let test_resolve_jobs () =
  check_i "0 resolves to the recommended domain count"
    (Domain.recommended_domain_count ())
    (Par.resolve_jobs 0);
  check_i "positive job counts pass through" 3 (Par.resolve_jobs 3);
  Alcotest.check_raises "negative job counts are rejected"
    (Invalid_argument "Par.resolve_jobs: negative job count") (fun () ->
      ignore (Par.resolve_jobs (-1)))

let test_pool_map_list () =
  let xs = List.init 100 Fun.id in
  let ys = Par.Pool.map_list pool (fun i x -> (i, x * x)) xs in
  check_b "results in input order with their indices" true
    (List.for_all2 (fun x (i, y) -> i = x && y = x * x) xs ys)

exception Boom

let test_pool_exception () =
  check_b "a worker exception reaches the caller" true
    (try
       ignore
         (Par.Pool.map_list pool
            (fun _ x -> if x = 37 then raise Boom else x)
            (List.init 64 Fun.id));
       false
     with Boom -> true);
  check_i "the pool survives and runs the next job" 10
    (List.length (Par.Pool.map_list pool (fun _ x -> x) (List.init 10 Fun.id)))

(* --- Chase–Lev deque --------------------------------------------------- *)

let test_deque_orders () =
  let d = Par.Deque.create () in
  check_b "a fresh deque is empty" true (Par.Deque.pop d = None);
  check_b "a fresh deque yields no steals" true (Par.Deque.steal d = None);
  List.iter (Par.Deque.push d) [ 0; 1; 2; 3; 4 ];
  check_i "owner sees the deque size" 5 (Par.Deque.size d);
  check_b "owner pops newest first (LIFO)" true (Par.Deque.pop d = Some 4);
  check_b "thief steals oldest first (FIFO)" true (Par.Deque.steal d = Some 0);
  check_b "steal order advances" true (Par.Deque.steal d = Some 1);
  check_b "owner keeps popping from the bottom" true
    (Par.Deque.pop d = Some 3);
  check_b "last element goes to exactly one side" true
    (Par.Deque.pop d = Some 2);
  check_b "deque is empty again" true
    (Par.Deque.pop d = None && Par.Deque.steal d = None);
  (* growth across the initial buffer size preserves both orders *)
  let n = 1000 in
  for i = 0 to n - 1 do
    Par.Deque.push d i
  done;
  check_b "after growth, steals walk 0,1,2.." true
    (List.init 10 (fun _ -> Par.Deque.steal d)
    = List.init 10 (fun i -> Some i));
  check_b "after growth, pops walk n-1,n-2.." true
    (List.init 10 (fun _ -> Par.Deque.pop d)
    = List.init 10 (fun i -> Some (n - 1 - i)))

let test_deque_steal_half () =
  let victim = Par.Deque.create () in
  let mine = Par.Deque.create () in
  List.iter (Par.Deque.push victim) [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  (match Par.Deque.steal_half victim ~into:mine with
  | Some (first, taken) ->
      check_i "the oldest element is returned for processing" 0 first;
      check_i "half of the victim's items are claimed" 4 taken;
      check_i "surplus lands in the thief's deque" 3 (Par.Deque.size mine)
  | None -> Alcotest.fail "steal_half found nothing in a full deque");
  check_i "the victim keeps the other half" 4 (Par.Deque.size victim);
  check_b "thief's copies arrived in steal order" true
    (Par.Deque.steal mine = Some 1);
  check_b "stealing an empty victim reports None" true
    (Par.Deque.steal_half (Par.Deque.create ()) ~into:mine = None)

(* Two thief domains against a pushing-and-popping owner: every pushed
   element must come out exactly once, across all three parties. *)
let test_deque_stress () =
  let d = Par.Deque.create () in
  let n = 20_000 in
  let stop = Atomic.make false in
  let thief () =
    let acc = ref [] in
    let rec drain () =
      match Par.Deque.steal d with
      | Some x ->
          acc := x :: !acc;
          drain ()
      | None -> ()
    in
    while not (Atomic.get stop) do
      (match Par.Deque.steal d with
      | Some x -> acc := x :: !acc
      | None -> Domain.cpu_relax ());
      ()
    done;
    drain ();
    !acc
  in
  let t1 = Domain.spawn thief in
  let t2 = Domain.spawn thief in
  let mine = ref [] in
  for i = 0 to n - 1 do
    Par.Deque.push d i;
    if i mod 3 = 0 then
      match Par.Deque.pop d with
      | Some x -> mine := x :: !mine
      | None -> ()
  done;
  let rec drain () =
    match Par.Deque.pop d with
    | Some x ->
        mine := x :: !mine;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  let stolen1 = Domain.join t1 in
  let stolen2 = Domain.join t2 in
  let all = List.sort compare (!mine @ stolen1 @ stolen2) in
  check_i "every pushed element came out exactly once" n (List.length all);
  check_b "no element was lost or duplicated" true
    (List.for_all2 ( = ) all (List.init n Fun.id))

(* --- exploration determinism ----------------------------------------- *)

let test_corpus_determinism () =
  List.iter
    (fun (t : Litmus.t) ->
      let p = Litmus.program t in
      let seq = Interp.behaviours p in
      let par1 = Interp.behaviours ~pool p in
      let par2 = Interp.behaviours ~pool p in
      if not (Behaviour.Set.equal seq par1) then
        Alcotest.failf "%s: parallel behaviours differ from sequential"
          t.Litmus.name;
      if not (Behaviour.Set.equal par1 par2) then
        Alcotest.failf "%s: two parallel runs disagree" t.Litmus.name;
      if Interp.is_drf p <> Interp.is_drf ~pool p then
        Alcotest.failf "%s: parallel DRF verdict differs" t.Litmus.name;
      if Interp.count_states p <> Interp.count_states ~pool p then
        Alcotest.failf "%s: parallel state count differs" t.Litmus.name)
    Corpus.all

(* A one-shot ?jobs call (no pre-built pool) takes the pool-per-call
   path; jobs = 1 must stay on the sequential one. *)
let test_jobs_entry () =
  let p = Litmus.program Corpus.sb in
  Alcotest.check behaviour_set "jobs:2 equals sequential"
    (Interp.behaviours p)
    (Interp.behaviours ~jobs:2 p);
  Alcotest.check behaviour_set "jobs:1 equals sequential"
    (Interp.behaviours p)
    (Interp.behaviours ~jobs:1 p)

let rand () = Random.State.make [| 0x9a7a11e1; 7 |]

let qcheck_parallel_equiv =
  QCheck_alcotest.to_alcotest ~rand:(rand ())
    (QCheck2.Test.make
       ~name:"parallel behaviours equal sequential (300 random programs)"
       ~count:300 ~print:Generators.print_program Generators.program (fun p ->
         Behaviour.Set.equal (Interp.behaviours p) (Interp.behaviours ~pool p)))

(* The headline parity property of the work-stealing engine: behaviour
   sets AND state counts are identical across jobs ∈ {1, 2, 4}, with
   and without the reduction (parallel work items carry their own sleep
   sets, so POR prunes identically at any worker count).  The generated
   programs include Atomic/RMW threads (see Generators.simple_stmt). *)
let qcheck_jobs_parity =
  QCheck_alcotest.to_alcotest ~rand:(rand ())
    (QCheck2.Test.make
       ~name:
         "count_states and behaviours identical across jobs {1,2,4} (300 \
          random programs, POR on and off)"
       ~count:300 ~print:Generators.print_program Generators.program (fun p ->
         let parity por =
           let b1 = Interp.behaviours ~por p in
           let c1 = Interp.count_states ~por p in
           List.for_all
             (fun pl ->
               Behaviour.Set.equal b1 (Interp.behaviours ~por ~pool:pl p)
               && c1 = Interp.count_states ~por ~pool:pl p)
             [ pool2; pool ]
         in
         parity false && parity true))

(* Acceptance criterion: POR-reduced state counts match exactly across
   jobs 1/2/4 on the full litmus corpus. *)
let test_corpus_por_parity () =
  List.iter
    (fun (t : Litmus.t) ->
      let p = Litmus.program t in
      let c1 = Interp.count_states ~por:true p in
      let c2 = Interp.count_states ~por:true ~pool:pool2 p in
      let c4 = Interp.count_states ~por:true ~pool p in
      if not (c1 = c2 && c2 = c4) then
        Alcotest.failf
          "%s: reduced state counts differ across jobs (1:%d 2:%d 4:%d)"
          t.Litmus.name c1 c2 c4)
    Corpus.all

(* --- stats aggregation ------------------------------------------------ *)

let test_stats_aggregation () =
  let seq = Explorer.create_stats () in
  ignore (Litmus.check_all ~stats:seq Corpus.all);
  let par = Explorer.create_stats () in
  ignore (Litmus.check_all ~stats:par ~pool Corpus.all);
  check_i "aggregated states equal sequential" seq.Explorer.states
    par.Explorer.states;
  check_i "aggregated transitions equal sequential" seq.Explorer.edges
    par.Explorer.edges;
  check_i "aggregated memo hits equal sequential" seq.Explorer.memo_hits
    par.Explorer.memo_hits;
  check_b "parallel stats record the domain count" true
    (par.Explorer.domains >= 2);
  check_i "sequential stats record no domains" 0 seq.Explorer.domains

(* --- graph engine (TSO/PSO) ------------------------------------------ *)

let test_graph_parallel () =
  List.iter
    (fun (t : Litmus.t) ->
      let p = Litmus.program t in
      if
        not
          (Behaviour.Set.equal
             (Safeopt_tso.Machine.program_behaviours p)
             (Safeopt_tso.Machine.program_behaviours ~pool p))
      then Alcotest.failf "%s: parallel TSO behaviours differ" t.Litmus.name)
    (List.filteri (fun i _ -> i < 8) Corpus.all);
  let sb = Litmus.program Corpus.sb in
  Alcotest.check behaviour_set "parallel PSO behaviours equal sequential"
    (Safeopt_tso.Pso.program_behaviours sb)
    (Safeopt_tso.Pso.program_behaviours ~pool sb)

(* --- batch validation and the pipeline -------------------------------- *)

let test_validate_batch () =
  let open Safeopt_opt in
  let pairs =
    List.filter_map
      (fun t ->
        let p = Litmus.program t in
        let q = Passes.optimise p in
        if Ast.equal_program p q then None else Some (p, q))
      Corpus.all
  in
  check_b "corpus yields some non-trivial pairs" true (List.length pairs >= 3);
  let seq =
    List.map
      (fun (original, transformed) -> Validate.validate ~original ~transformed ())
      pairs
  in
  let par = Validate.validate_batch ~pool pairs in
  check_b "batch reports identical to sequential" true (seq = par)

let pipeline_spec s =
  match Safeopt_opt.Pipeline.parse s with
  | Ok spec -> spec
  | Error e -> failwith e

let test_pipeline_parallel () =
  let open Safeopt_opt in
  let spec = pipeline_spec "constprop;copyprop;cse*;dead-moves;dse;normalise" in
  List.iter
    (fun (t : Litmus.t) ->
      let p = Litmus.program t in
      let seq = Pipeline.run ~validate_each:true spec p in
      let par = Pipeline.run ~validate_each:true ~pool spec p in
      if not (Ast.equal_program seq.Pipeline.final par.Pipeline.final) then
        Alcotest.failf "%s: parallel pipeline result differs" t.Litmus.name;
      if
        Option.map fst seq.Pipeline.failure
        <> Option.map fst par.Pipeline.failure
      then Alcotest.failf "%s: parallel pipeline verdict differs" t.Litmus.name)
    Corpus.all

(* The speculative parallel pipeline must cut at the same failing pass
   as the incremental sequential one, discarding speculated suffixes. *)
let test_pipeline_reject_parallel () =
  let open Safeopt_opt in
  let spec = pipeline_spec "unsafe-store-release;normalise" in
  let p =
    parse
      "thread { lock m; r1 := c; c := r1; unlock m; }\n\
       thread { lock m; r2 := c; c := r2; unlock m; }"
  in
  let seq = Pipeline.run ~validate_each:true spec p in
  let par = Pipeline.run ~validate_each:true ~pool spec p in
  check_b "sequential run rejects" true (Option.is_some seq.Pipeline.failure);
  check_b "parallel run rejects at the same pass" true
    (Option.map fst seq.Pipeline.failure = Option.map fst par.Pipeline.failure);
  Alcotest.check program "both keep the last accepted program"
    seq.Pipeline.final par.Pipeline.final

let () =
  Alcotest.run "par"
    [
      ( "primitives",
        [
          Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
          Alcotest.test_case "pool map_list" `Quick test_pool_map_list;
          Alcotest.test_case "pool exceptions" `Quick test_pool_exception;
        ] );
      ( "deque",
        [
          Alcotest.test_case "owner LIFO / thief FIFO" `Quick
            test_deque_orders;
          Alcotest.test_case "steal half" `Quick test_deque_steal_half;
          Alcotest.test_case "concurrent steal stress" `Slow
            test_deque_stress;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "corpus" `Slow test_corpus_determinism;
          Alcotest.test_case "jobs entry points" `Quick test_jobs_entry;
          qcheck_parallel_equiv;
          qcheck_jobs_parity;
          Alcotest.test_case "corpus POR count parity" `Slow
            test_corpus_por_parity;
        ] );
      ( "aggregation",
        [ Alcotest.test_case "stats merge" `Slow test_stats_aggregation ] );
      ( "graph engine",
        [ Alcotest.test_case "tso/pso" `Slow test_graph_parallel ] );
      ( "batch",
        [
          Alcotest.test_case "validate_batch" `Slow test_validate_batch;
          Alcotest.test_case "pipeline" `Slow test_pipeline_parallel;
          Alcotest.test_case "pipeline rejection" `Quick
            test_pipeline_reject_parallel;
        ] );
    ]
