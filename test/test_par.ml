(* Domain-parallel exploration: every parallel entry point must produce
   results identical to its sequential counterpart (the Par determinism
   contract), and the pool/queue primitives themselves must behave. *)

open Safeopt_exec
open Safeopt_lang
open Safeopt_litmus
open Safeopt_gen
open Helpers

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* One pool for the whole binary: spawning domains per test case would
   dominate the runtime.  Size 4 also oversubscribes small CI hosts,
   which is exactly the scheduling noise the determinism tests should
   survive. *)
let pool = Par.Pool.create 4

(* --- primitives ------------------------------------------------------- *)

let test_resolve_jobs () =
  check_i "0 resolves to the recommended domain count"
    (Domain.recommended_domain_count ())
    (Par.resolve_jobs 0);
  check_i "positive job counts pass through" 3 (Par.resolve_jobs 3);
  Alcotest.check_raises "negative job counts are rejected"
    (Invalid_argument "Par.resolve_jobs: negative job count") (fun () ->
      ignore (Par.resolve_jobs (-1)))

let test_pool_map_list () =
  let xs = List.init 100 Fun.id in
  let ys = Par.Pool.map_list pool (fun i x -> (i, x * x)) xs in
  check_b "results in input order with their indices" true
    (List.for_all2 (fun x (i, y) -> i = x && y = x * x) xs ys)

exception Boom

let test_pool_exception () =
  check_b "a worker exception reaches the caller" true
    (try
       ignore
         (Par.Pool.map_list pool
            (fun _ x -> if x = 37 then raise Boom else x)
            (List.init 64 Fun.id));
       false
     with Boom -> true);
  check_i "the pool survives and runs the next job" 10
    (List.length (Par.Pool.map_list pool (fun _ x -> x) (List.init 10 Fun.id)))

(* --- exploration determinism ----------------------------------------- *)

let test_corpus_determinism () =
  List.iter
    (fun (t : Litmus.t) ->
      let p = Litmus.program t in
      let seq = Interp.behaviours p in
      let par1 = Interp.behaviours ~pool p in
      let par2 = Interp.behaviours ~pool p in
      if not (Behaviour.Set.equal seq par1) then
        Alcotest.failf "%s: parallel behaviours differ from sequential"
          t.Litmus.name;
      if not (Behaviour.Set.equal par1 par2) then
        Alcotest.failf "%s: two parallel runs disagree" t.Litmus.name;
      if Interp.is_drf p <> Interp.is_drf ~pool p then
        Alcotest.failf "%s: parallel DRF verdict differs" t.Litmus.name;
      if Interp.count_states p <> Interp.count_states ~pool p then
        Alcotest.failf "%s: parallel state count differs" t.Litmus.name)
    Corpus.all

(* A one-shot ?jobs call (no pre-built pool) takes the pool-per-call
   path; jobs = 1 must stay on the sequential one. *)
let test_jobs_entry () =
  let p = Litmus.program Corpus.sb in
  Alcotest.check behaviour_set "jobs:2 equals sequential"
    (Interp.behaviours p)
    (Interp.behaviours ~jobs:2 p);
  Alcotest.check behaviour_set "jobs:1 equals sequential"
    (Interp.behaviours p)
    (Interp.behaviours ~jobs:1 p)

let rand () = Random.State.make [| 0x9a7a11e1; 7 |]

let qcheck_parallel_equiv =
  QCheck_alcotest.to_alcotest ~rand:(rand ())
    (QCheck2.Test.make
       ~name:"parallel behaviours equal sequential (300 random programs)"
       ~count:300 ~print:Generators.print_program Generators.program (fun p ->
         Behaviour.Set.equal (Interp.behaviours p) (Interp.behaviours ~pool p)))

(* --- stats aggregation ------------------------------------------------ *)

let test_stats_aggregation () =
  let seq = Explorer.create_stats () in
  ignore (Litmus.check_all ~stats:seq Corpus.all);
  let par = Explorer.create_stats () in
  ignore (Litmus.check_all ~stats:par ~pool Corpus.all);
  check_i "aggregated states equal sequential" seq.Explorer.states
    par.Explorer.states;
  check_i "aggregated transitions equal sequential" seq.Explorer.edges
    par.Explorer.edges;
  check_i "aggregated memo hits equal sequential" seq.Explorer.memo_hits
    par.Explorer.memo_hits;
  check_b "parallel stats record the domain count" true
    (par.Explorer.domains >= 2);
  check_i "sequential stats record no domains" 0 seq.Explorer.domains

(* --- graph engine (TSO/PSO) ------------------------------------------ *)

let test_graph_parallel () =
  List.iter
    (fun (t : Litmus.t) ->
      let p = Litmus.program t in
      if
        not
          (Behaviour.Set.equal
             (Safeopt_tso.Machine.program_behaviours p)
             (Safeopt_tso.Machine.program_behaviours ~pool p))
      then Alcotest.failf "%s: parallel TSO behaviours differ" t.Litmus.name)
    (List.filteri (fun i _ -> i < 8) Corpus.all);
  let sb = Litmus.program Corpus.sb in
  Alcotest.check behaviour_set "parallel PSO behaviours equal sequential"
    (Safeopt_tso.Pso.program_behaviours sb)
    (Safeopt_tso.Pso.program_behaviours ~pool sb)

(* --- batch validation and the pipeline -------------------------------- *)

let test_validate_batch () =
  let open Safeopt_opt in
  let pairs =
    List.filter_map
      (fun t ->
        let p = Litmus.program t in
        let q = Passes.optimise p in
        if Ast.equal_program p q then None else Some (p, q))
      Corpus.all
  in
  check_b "corpus yields some non-trivial pairs" true (List.length pairs >= 3);
  let seq =
    List.map
      (fun (original, transformed) -> Validate.validate ~original ~transformed ())
      pairs
  in
  let par = Validate.validate_batch ~pool pairs in
  check_b "batch reports identical to sequential" true (seq = par)

let pipeline_spec s =
  match Safeopt_opt.Pipeline.parse s with
  | Ok spec -> spec
  | Error e -> failwith e

let test_pipeline_parallel () =
  let open Safeopt_opt in
  let spec = pipeline_spec "constprop;copyprop;cse*;dead-moves;dse;normalise" in
  List.iter
    (fun (t : Litmus.t) ->
      let p = Litmus.program t in
      let seq = Pipeline.run ~validate_each:true spec p in
      let par = Pipeline.run ~validate_each:true ~pool spec p in
      if not (Ast.equal_program seq.Pipeline.final par.Pipeline.final) then
        Alcotest.failf "%s: parallel pipeline result differs" t.Litmus.name;
      if
        Option.map fst seq.Pipeline.failure
        <> Option.map fst par.Pipeline.failure
      then Alcotest.failf "%s: parallel pipeline verdict differs" t.Litmus.name)
    Corpus.all

(* The speculative parallel pipeline must cut at the same failing pass
   as the incremental sequential one, discarding speculated suffixes. *)
let test_pipeline_reject_parallel () =
  let open Safeopt_opt in
  let spec = pipeline_spec "unsafe-store-release;normalise" in
  let p =
    parse
      "thread { lock m; r1 := c; c := r1; unlock m; }\n\
       thread { lock m; r2 := c; c := r2; unlock m; }"
  in
  let seq = Pipeline.run ~validate_each:true spec p in
  let par = Pipeline.run ~validate_each:true ~pool spec p in
  check_b "sequential run rejects" true (Option.is_some seq.Pipeline.failure);
  check_b "parallel run rejects at the same pass" true
    (Option.map fst seq.Pipeline.failure = Option.map fst par.Pipeline.failure);
  Alcotest.check program "both keep the last accepted program"
    seq.Pipeline.final par.Pipeline.final

let () =
  Alcotest.run "par"
    [
      ( "primitives",
        [
          Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
          Alcotest.test_case "pool map_list" `Quick test_pool_map_list;
          Alcotest.test_case "pool exceptions" `Quick test_pool_exception;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "corpus" `Slow test_corpus_determinism;
          Alcotest.test_case "jobs entry points" `Quick test_jobs_entry;
          qcheck_parallel_equiv;
        ] );
      ( "aggregation",
        [ Alcotest.test_case "stats merge" `Slow test_stats_aggregation ] );
      ( "graph engine",
        [ Alcotest.test_case "tso/pso" `Slow test_graph_parallel ] );
      ( "batch",
        [
          Alcotest.test_case "validate_batch" `Slow test_validate_batch;
          Alcotest.test_case "pipeline" `Slow test_pipeline_parallel;
          Alcotest.test_case "pipeline rejection" `Quick
            test_pipeline_reject_parallel;
        ] );
    ]
